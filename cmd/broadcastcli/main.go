// Command broadcastcli runs one Broadcast configuration from flags and
// prints the measured result.
//
// Usage:
//
//	broadcastcli -topo path -n 64 -model local -algo auto -seed 1
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/radio"
)

func main() {
	topo := flag.String("topo", "gnp", "topology: path|cycle|clique|star|k2k|grid|hypercube|tree|gnp|bdeg|caterpillar|lollipop")
	n := flag.Int("n", 32, "vertex count (interpretation depends on topology)")
	model := flag.String("model", "nocd", "channel model: nocd|cd|local")
	algo := flag.String("algo", "auto", "algorithm: auto|iterclust|theorem12|dtime|cdmerge|path|bounded|det|baseline")
	seed := flag.Uint64("seed", 1, "random seed")
	source := flag.Int("source", 0, "broadcasting vertex")
	lean := flag.Bool("lean", true, "experiment-scale constants for heavy algorithms")
	flag.Parse()

	g, err := buildGraph(*topo, *n, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	m, err := parseModel(*model)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	a, err := parseAlgo(*algo)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	opts := []core.Option{core.WithModel(m), core.WithAlgorithm(a), core.WithSeed(*seed)}
	if *lean {
		opts = append(opts, core.WithLeanScale())
	}
	res, err := core.Broadcast(g, *source, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	d, _ := g.Diameter()
	fmt.Printf("graph       %s (n=%d, m=%d, Delta=%d, D=%d)\n", g.Name(), g.N(), g.M(), g.MaxDegree(), d)
	fmt.Printf("model       %s\n", res.Model)
	fmt.Printf("algorithm   %s\n", res.Algorithm)
	fmt.Printf("informed    %v\n", res.AllInformed())
	fmt.Printf("time        %d slots\n", res.Slots)
	fmt.Printf("energy      max %d, total %d, mean %.1f\n",
		res.MaxEnergy(), res.TotalEnergy(), float64(res.TotalEnergy())/float64(g.N()))
}

func buildGraph(topo string, n int, seed uint64) (*graph.Graph, error) {
	switch strings.ToLower(topo) {
	case "path":
		return graph.Path(n), nil
	case "cycle":
		return graph.Cycle(n), nil
	case "clique":
		return graph.Clique(n), nil
	case "star":
		return graph.Star(n), nil
	case "k2k":
		return graph.K2k(n), nil
	case "grid":
		side := 1
		for side*side < n {
			side++
		}
		return graph.Grid(side, side), nil
	case "hypercube":
		d := 0
		for 1<<uint(d) < n {
			d++
		}
		return graph.Hypercube(d), nil
	case "tree":
		return graph.RandomTree(n, seed), nil
	case "gnp":
		return graph.GNP(n, 8.0/float64(n), seed), nil
	case "bdeg":
		return graph.RandomBoundedDegree(n, 4, seed), nil
	case "caterpillar":
		return graph.Caterpillar(n/4+1, 3), nil
	case "lollipop":
		return graph.Lollipop(n/2, n/2), nil
	default:
		return nil, fmt.Errorf("unknown topology %q", topo)
	}
}

func parseModel(s string) (radio.Model, error) {
	switch strings.ToLower(s) {
	case "nocd", "no-cd":
		return radio.NoCD, nil
	case "cd":
		return radio.CD, nil
	case "local":
		return radio.Local, nil
	default:
		return 0, fmt.Errorf("unknown model %q", s)
	}
}

func parseAlgo(s string) (core.Algorithm, error) {
	switch strings.ToLower(s) {
	case "auto":
		return core.AlgoAuto, nil
	case "iterclust":
		return core.AlgoIterClust, nil
	case "theorem12":
		return core.AlgoTheorem12, nil
	case "dtime":
		return core.AlgoDiamTime, nil
	case "cdmerge":
		return core.AlgoCDMerge, nil
	case "path":
		return core.AlgoPath, nil
	case "bounded":
		return core.AlgoBoundedDegree, nil
	case "det":
		return core.AlgoDeterministic, nil
	case "baseline":
		return core.AlgoBaselineDecay, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q", s)
	}
}
