// Command energybench runs the full evaluation suite: one experiment per
// row of the paper's Table 1 (plus the Partition(beta) lemmas and the
// decay baseline), printing measured time (slots) and energy
// (max transmit+listen per device) across size sweeps together with
// fitted growth shapes. Its output is the data recorded in
// EXPERIMENTS.md.
//
// Usage:
//
//	energybench [-quick] [-seeds k] [-workers n] [-manifest run.manifest.json]
//
// -manifest writes a run manifest (see internal/telemetry): trial
// counts, simulated-slot totals, and one timed phase per suite row, so
// a recorded evaluation carries its own provenance.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"

	"repro/internal/baseline"
	"repro/internal/cdmerge"
	"repro/internal/core"
	"repro/internal/dtime"
	"repro/internal/graph"
	"repro/internal/iterclust"
	"repro/internal/leader"
	"repro/internal/partition"
	"repro/internal/pathcast"
	"repro/internal/radio"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/telemetry"
)

var (
	quick    = flag.Bool("quick", false, "smaller sweeps")
	seeds    = flag.Int("seeds", 3, "trials per configuration")
	workers  = flag.Int("workers", 0, "parallel trials per configuration (0 = GOMAXPROCS)")
	manifest = flag.String("manifest", "", "write a run manifest (trial counts, per-row phase timings) to this file")

	// rec collects suite telemetry when -manifest asks for it; nil (all
	// hooks no-op) otherwise.
	rec *telemetry.Recorder
)

func main() {
	flag.Parse()
	if *manifest != "" {
		rec = telemetry.New()
	}
	fmt.Println("The Energy Complexity of Broadcast (PODC 2018) — measured reproduction")
	fmt.Println()
	// One timed manifest phase per suite row.
	for _, row := range []struct {
		name string
		fn   func()
	}{
		{"iterclust", rowIterClust},
		{"theorem12", rowTheorem12},
		{"cdmerge", rowCDMerge},
		{"diamtime", rowDiamTime},
		{"bounded-degree", rowBoundedDegree},
		{"path", rowPath},
		{"deterministic", rowDeterministic},
		{"lower-bounds", rowLowerBounds},
		{"partition", rowPartition},
		{"baseline", rowBaselineComparison},
		{"workload-sweeps", rowWorkloadSweeps},
	} {
		rec.Phase(row.name)
		row.fn()
	}
	if *manifest != "" {
		m := rec.BuildManifest("energybench", map[string]any{
			"quick": *quick, "seeds": *seeds,
		}, nil, *workers, 0)
		if err := m.WriteFile(*manifest); err != nil {
			fmt.Fprintln(os.Stderr, "energybench:", err)
			os.Exit(1)
		}
	}
}

func sizes(full []int, quickSizes []int) []int {
	if *quick {
		return quickSizes
	}
	return full
}

// measure runs fn over the seeds on the sweep engine's worker pool and
// returns mean slots and mean max energy (failing runs are skipped; at
// least one must succeed). Trials execute in parallel but samples are
// aggregated in seed order, so the output is identical to the old
// sequential loop.
func measure(fn func(seed uint64) (uint64, int, bool)) (float64, float64) {
	type sample struct{ slots, maxE float64 }
	out := sweep.CollectTrials(*seeds, *workers, func(i int) (sample, bool) {
		slots, maxE, ok := fn(uint64(i + 1))
		return sample{float64(slots), float64(maxE)}, ok
	})
	if len(out) == 0 {
		return 0, 0
	}
	ts := make([]float64, len(out))
	es := make([]float64, len(out))
	var slotSum float64
	for i, s := range out {
		ts[i], es[i] = s.slots, s.maxE
		slotSum += s.slots
	}
	rec.Add(len(out), uint64(slotSum))
	return stats.Mean(ts), stats.Mean(es)
}

func fitNote(ns, slot, energy []float64) string {
	return fmt.Sprintf("growth: time ~ n^%.2f, energy ~ n^%.2f",
		stats.LogLogSlope(ns, slot), stats.LogLogSlope(ns, energy))
}

func rowIterClust() {
	fmt.Println("== T1-R1 / T1-R8: randomized iterative clustering (Theorem 11) ==")
	fmt.Println("   paper: LOCAL O(n log n) time / O(log n) energy;")
	fmt.Println("          No-CD O(n logD log^2 n) time / O(logD log^2 n) energy")
	tbl := &stats.Table{Header: []string{"model", "graph", "n", "slots", "maxE"}}
	var ns, tl, el, tn, en []float64
	for _, n := range sizes([]int{16, 32, 64, 128}, []int{16, 32}) {
		g := graph.GNP(n, 4.0/float64(n)*2, 11)
		for _, model := range []radio.Model{radio.Local, radio.NoCD} {
			p := iterclust.NewParams(model, g.N(), g.MaxDegree())
			slots, maxE := measure(func(seed uint64) (uint64, int, bool) {
				out, err := iterclust.Broadcast(g, 0, "m", p, seed)
				if err != nil || !out.AllInformed() {
					return 0, 0, false
				}
				return out.Result.Slots, out.Result.MaxEnergy(), true
			})
			tbl.Add(model.String(), g.Name(), n, slots, maxE)
			if model == radio.Local {
				ns = append(ns, float64(n))
				tl, el = append(tl, slots), append(el, maxE)
			} else {
				tn, en = append(tn, slots), append(en, maxE)
			}
		}
	}
	fmt.Print(tbl)
	fmt.Println("   LOCAL " + fitNote(ns, tl, el))
	fmt.Println("   No-CD " + fitNote(ns, tn, en))
	fmt.Println()
}

func rowTheorem12() {
	fmt.Println("== T1-R5: CD iterative clustering (Theorem 12) ==")
	fmt.Println("   paper: O(n logD log^{2+eps} n/(eps loglog n)) time, O(log^2 n/(eps loglog n)) energy")
	tbl := &stats.Table{Header: []string{"graph", "n", "slots", "maxE"}}
	var ns, ts, es []float64
	for _, n := range sizes([]int{16, 32, 64, 128}, []int{16, 32}) {
		g := graph.GNP(n, 8.0/float64(n), 13)
		p := iterclust.NewTheorem12Params(g.N(), g.MaxDegree(), 0.5)
		slots, maxE := measure(func(seed uint64) (uint64, int, bool) {
			out, err := iterclust.Broadcast(g, 0, "m", p, seed)
			if err != nil || !out.AllInformed() {
				return 0, 0, false
			}
			return out.Result.Slots, out.Result.MaxEnergy(), true
		})
		tbl.Add(g.Name(), n, slots, maxE)
		ns, ts, es = append(ns, float64(n)), append(ts, slots), append(es, maxE)
	}
	fmt.Print(tbl)
	fmt.Println("   " + fitNote(ns, ts, es))
	fmt.Println()
}

func rowCDMerge() {
	fmt.Println("== T1-R6: CD merge algorithm (Theorem 20) ==")
	fmt.Println("   paper: O(Delta n^{1+xi}) time, O(log n(loglogD+1/xi)/logloglogD) energy")
	tbl := &stats.Table{Header: []string{"graph", "n", "slots", "maxE"}}
	var ns, ts, es []float64
	for _, n := range sizes([]int{12, 16, 24, 32}, []int{12, 16}) {
		g := graph.GNP(n, 6.0/float64(n), 17)
		p, err := cdmerge.NewParams(g.N(), g.MaxDegree(), 0.5)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			continue
		}
		p = p.Tune(10, 3, g.N())
		slots, maxE := measure(func(seed uint64) (uint64, int, bool) {
			out, err := cdmerge.Broadcast(g, 0, "m", p, seed)
			if err != nil || !out.AllInformed() {
				return 0, 0, false
			}
			return out.Result.Slots, out.Result.MaxEnergy(), true
		})
		tbl.Add(g.Name(), n, slots, maxE)
		ns, ts, es = append(ns, float64(n)), append(ts, slots), append(es, maxE)
	}
	fmt.Print(tbl)
	fmt.Println("   " + fitNote(ns, ts, es))
	fmt.Println("   (time is super-linear by design; energy stays polylog)")
	fmt.Println()
}

func rowDiamTime() {
	fmt.Println("== T1-R2: near-diameter time (Theorem 16) ==")
	fmt.Println("   paper: O(D^{1+eps} polylog n) time, O(polylog n) energy")
	fmt.Println("   shape check: on constant-diameter stars, time should grow far")
	fmt.Println("   slower than the Theta(n polylog) of iterative clustering.")
	tbl := &stats.Table{Header: []string{"graph", "n", "D", "dtime slots", "dtime maxE", "iterclust slots"}}
	for _, n := range sizes([]int{16, 32, 64}, []int{16, 32}) {
		g := graph.Star(n)
		p, err := dtime.NewParams(radio.CD, g.N(), g.MaxDegree(), 2, 0.5)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			continue
		}
		p = p.Tune(g.N(), 10, 6, 10, 1)
		slots, maxE := measure(func(seed uint64) (uint64, int, bool) {
			out, err := dtime.Broadcast(g, 0, "m", p, seed)
			if err != nil || !out.AllInformed() {
				return 0, 0, false
			}
			return out.Result.Slots, out.Result.MaxEnergy(), true
		})
		ip := iterclust.NewParams(radio.CD, g.N(), g.MaxDegree())
		icSlots, _ := measure(func(seed uint64) (uint64, int, bool) {
			out, err := iterclust.Broadcast(g, 0, "m", ip, seed)
			if err != nil || !out.AllInformed() {
				return 0, 0, false
			}
			return out.Result.Slots, out.Result.MaxEnergy(), true
		})
		tbl.Add(g.Name(), n, 2, slots, maxE, icSlots)
	}
	fmt.Print(tbl)
	fmt.Println()
}

func rowBoundedDegree() {
	fmt.Println("== T1-R3: bounded degree No-CD via LOCAL simulation (Corollary 13) ==")
	fmt.Println("   paper: O(n log n) time, O(log n) energy for Delta = O(1)")
	tbl := &stats.Table{Header: []string{"graph", "n", "slots", "maxE"}}
	var ns, ts, es []float64
	for _, n := range sizes([]int{12, 16, 24, 32}, []int{12, 16}) {
		g := graph.Cycle(n)
		slots, maxE := measure(func(seed uint64) (uint64, int, bool) {
			res, err := core.Broadcast(g, 0, core.WithAlgorithm(core.AlgoBoundedDegree),
				core.WithSeed(seed))
			if err != nil || !res.AllInformed() {
				return 0, 0, false
			}
			return res.Slots, res.MaxEnergy(), true
		})
		tbl.Add(g.Name(), n, slots, maxE)
		ns, ts, es = append(ns, float64(n)), append(ts, slots), append(es, maxE)
	}
	fmt.Print(tbl)
	fmt.Println("   " + fitNote(ns, ts, es))
	fmt.Println()
}

func rowPath() {
	fmt.Println("== Theorem 21 / Figure 1: the path algorithm ==")
	fmt.Println("   paper: worst-case 2n time, expected O(log n) per-vertex energy")
	tbl := &stats.Table{Header: []string{"n", "max recv slot", "2n bound", "mean E", "max E"}}
	var ns, es []float64
	for _, n := range sizes([]int{32, 64, 128, 256, 512}, []int{32, 128}) {
		g := graph.Path(n)
		type sample struct{ recv, meanE, maxE float64 }
		samples := sweep.CollectTrials(*seeds, *workers, func(i int) (sample, bool) {
			out, err := pathcast.Broadcast(g, 0, "m", pathcast.Params{}, uint64(i+1), nil)
			if err != nil || !out.AllInformed() {
				return sample{}, false
			}
			return sample{
				recv:  float64(out.MaxReceiveSlot()),
				meanE: float64(out.Result.TotalEnergy()) / float64(n),
				maxE:  float64(out.Result.MaxEnergy()),
			}, true
		})
		rec.Add(len(samples), 0)
		var recv, meanE, maxE []float64
		for _, s := range samples {
			recv = append(recv, s.recv)
			meanE = append(meanE, s.meanE)
			maxE = append(maxE, s.maxE)
		}
		tbl.Add(n, stats.Max(recv), 2*n, stats.Mean(meanE), stats.Max(maxE))
		ns, es = append(ns, float64(n)), append(es, stats.Mean(meanE))
	}
	fmt.Print(tbl)
	fmt.Printf("   mean-energy growth: ~ n^%.2f (logarithmic => near 0)\n", stats.LogLogSlope(ns, es))
	fmt.Println()
}

func rowDeterministic() {
	fmt.Println("== T1-R11 / T1-R12: deterministic algorithms (Theorems 25, 27) ==")
	fmt.Println("   paper: LOCAL O(n log n logN) time / O(log n logN) energy;")
	fmt.Println("          CD O(N^2 n log n logN) time / O(log^3 N log n) energy")
	tbl := &stats.Table{Header: []string{"model", "graph", "n", "slots", "maxE"}}
	for _, n := range sizes([]int{8, 12, 16, 24}, []int{8, 12}) {
		g := graph.GNP(n, 6.0/float64(n), 23)
		for _, model := range []radio.Model{radio.Local, radio.CD} {
			res, err := core.Broadcast(g, 0, core.WithModel(model),
				core.WithAlgorithm(core.AlgoDeterministic))
			if err != nil || !res.AllInformed() {
				tbl.Add(model.String(), g.Name(), n, "failed", "-")
				continue
			}
			tbl.Add(model.String(), g.Name(), n, res.Slots, res.MaxEnergy())
		}
	}
	fmt.Print(tbl)
	fmt.Println()
}

func rowLowerBounds() {
	fmt.Println("== T1-R4/R7/R9: lower-bound experiments ==")
	fmt.Println("   Theorem 2: Broadcast energy on K_{2,k} is at least half the")
	fmt.Println("   single-hop LeaderElection time; Theorem 1: Omega(log n) on paths.")
	tbl := &stats.Table{Header: []string{"experiment", "param", "measured", "bound side"}}
	for _, k := range sizes([]int{4, 8, 16, 32}, []int{4, 16}) {
		g := graph.K2k(k)
		p := iterclust.NewParams(radio.CD, g.N(), g.MaxDegree())
		_, maxE := measure(func(seed uint64) (uint64, int, bool) {
			out, err := iterclust.Broadcast(g, 0, "m", p, seed)
			if err != nil || !out.AllInformed() {
				return 0, 0, false
			}
			return out.Result.Slots, out.Result.MaxEnergy(), true
		})
		// Single-hop CD leader election time on a k-clique for reference.
		le := measureLE(k)
		tbl.Add("K2k CD energy vs LE time", k, maxE, le)
	}
	// Theorem 1 on paths: worst-vertex energy of the best path algorithm.
	for _, n := range sizes([]int{64, 256, 1024}, []int{64, 256}) {
		g := graph.Path(n)
		_, maxE := measure(func(seed uint64) (uint64, int, bool) {
			out, err := pathcast.Broadcast(g, 0, "m", pathcast.Params{}, seed, nil)
			if err != nil || !out.AllInformed() {
				return 0, 0, false
			}
			return out.Result.Slots, out.Result.MaxEnergy(), true
		})
		tbl.Add("path worst-vertex energy", n, maxE, fmt.Sprintf("Omega(log n)=%d/5", logi(n)))
	}
	fmt.Print(tbl)
	fmt.Println()
}

func logi(n int) int {
	l := 0
	for v := 1; v < n; v *= 2 {
		l++
	}
	return l
}

// simCaches hands each concurrent trial a private simulator cache so
// same-topology trials reuse one preallocated engine (the pool is
// per-P, so caches never cross goroutines mid-trial).
var simCaches = sync.Pool{New: func() any { return &radio.SimCache{} }}

func measureLE(k int) float64 {
	g := graph.Clique(k) // shared read-only across trials
	ts := sweep.CollectTrials(*seeds, *workers, func(i int) (float64, bool) {
		sims := simCaches.Get().(*radio.SimCache)
		defer simCaches.Put(sims)
		outs := make([]leader.Outcome, k)
		pop := make([]radio.Device, k)
		for j := 0; j < k; j++ {
			pop[j].Proc = leader.ElectCDProc(1, true, k, 4000, &outs[j])
		}
		if _, err := radio.RunDevices(radio.Config{Graph: g, Model: radio.CD, Seed: uint64(i + 1), Sims: sims}, pop); err != nil {
			return 0, false
		}
		return float64(outs[0].Slot), true
	})
	rec.Add(len(ts), 0)
	return stats.Mean(ts)
}

func rowPartition() {
	fmt.Println("== Lemmas 14-15: Partition(beta) ==")
	fmt.Println("   paper: P[edge cut] <= 2 beta; cluster diameter <= 3 beta D w.h.p.")
	tbl := &stats.Table{Header: []string{"beta", "graph", "cut fraction", "2*beta", "D", "cluster D"}}
	g := graph.Grid(8, 8)
	d0, _ := g.Diameter()
	for _, beta := range []float64{0.15, 0.3, 0.6} {
		type sample struct {
			cut, cd float64
			okCD    bool
		}
		samples := sweep.CollectTrials(*seeds, *workers, func(i int) (sample, bool) {
			p, err := partition.NewParams(radio.Local, g.N(), g.MaxDegree(), beta)
			if err != nil {
				return sample{}, false
			}
			out, err := partition.Partition(g, p, uint64(i+1))
			if err != nil {
				return sample{}, false
			}
			s := sample{cut: float64(out.CutEdges(g)) / float64(g.M())}
			cg, _ := out.ClusterGraph(g)
			if cg.N() > 0 {
				if cd, err := cg.Diameter(); err == nil {
					s.cd, s.okCD = float64(cd), true
				}
			}
			return s, true
		})
		rec.Add(len(samples), 0)
		var cuts, cds []float64
		for _, s := range samples {
			cuts = append(cuts, s.cut)
			if s.okCD {
				cds = append(cds, s.cd)
			}
		}
		tbl.Add(beta, g.Name(), stats.Mean(cuts), 2*beta, d0, stats.Mean(cds))
	}
	fmt.Print(tbl)
	fmt.Println()
}

// rowWorkloadSweeps exercises the pluggable-workload engine: Lemma 8's
// leader-election subroutine measured directly (success rate, time and
// energy of the single-hop elections the broadcast algorithms build on),
// the Theorem 16 beta dial as a sweep grid, and k-source broadcast with
// per-source informed fronts.
func rowWorkloadSweeps() {
	fmt.Println("== Workload sweeps: leader election, time/energy dial, k-source ==")
	fmt.Println("   paper: single-hop election is the broadcast subroutine (Lemma 8);")
	fmt.Println("   Theorem 16's beta trades time for energy on one frontier.")
	runSweep := func(spec sweep.Spec) {
		spec.Trials = *seeds
		spec.MasterSeed = 1
		// The engine's own instrumentation counts these trials; the
		// recorder's cell table ends up reflecting the last sweep run.
		rep, err := sweep.Run(spec, sweep.Options{Workers: *workers, Telemetry: rec})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		fmt.Print(rep.Table())
	}
	cliques := []sweep.Topology{{Kind: "clique", N: 16}, {Kind: "clique", N: 64}}
	if *quick {
		cliques = cliques[:1]
	}
	runSweep(sweep.Spec{
		Topologies:     cliques,
		Models:         []radio.Model{radio.CD, radio.NoCD},
		Workload:       "leader",
		WorkloadParams: map[string]string{"proto": "rand,det"},
	})
	runSweep(sweep.Spec{
		Topologies: []sweep.Topology{{Kind: "star", N: 24}},
		Models:     []radio.Model{radio.CD},
		Workload:   "tradeoff",
		Lean:       true,
	})
	runSweep(sweep.Spec{
		Topologies:     []sweep.Topology{{Kind: "cycle", N: 32}},
		Models:         []radio.Model{radio.Local},
		Workload:       "msrc",
		WorkloadParams: map[string]string{"k": "2,4"},
	})
	fmt.Println()
}

func rowBaselineComparison() {
	fmt.Println("== Baseline: BGI decay broadcast vs the paper's algorithms ==")
	fmt.Println("   shape: decay wins on time, loses on energy, with the energy gap")
	fmt.Println("   growing with n.")
	tbl := &stats.Table{Header: []string{"graph", "n", "decay slots", "decay maxE", "paper slots", "paper maxE"}}
	for _, n := range sizes([]int{32, 64, 128}, []int{32, 64}) {
		g := graph.Path(n)
		d, _ := g.Diameter()
		bp := baseline.NewParams(g.N(), g.MaxDegree(), d)
		bSlots, bE := measure(func(seed uint64) (uint64, int, bool) {
			out, err := baseline.Broadcast(g, 0, "m", bp, seed, radio.NoCD)
			if err != nil || !out.AllInformed() {
				return 0, 0, false
			}
			return out.Result.Slots, out.Result.MaxEnergy(), true
		})
		pSlots, pE := measure(func(seed uint64) (uint64, int, bool) {
			out, err := pathcast.Broadcast(g, 0, "m", pathcast.Params{}, seed, nil)
			if err != nil || !out.AllInformed() {
				return 0, 0, false
			}
			return out.Result.Slots, out.Result.MaxEnergy(), true
		})
		tbl.Add(g.Name(), n, bSlots, bE, pSlots, pE)
	}
	fmt.Print(tbl)
	fmt.Println()
}
