// Command sweepd is the distributed-sweep coordinator (see
// internal/fabric): it owns the experiment — spec, adaptive stopping
// decisions, checkpoint journal — and leases trial batches over TCP to
// workers started with `sweep -worker <addr>`. Workers execute batches
// with positional seeds and stream folded moment state back; the
// coordinator admits results through the same prefix-merge rule the
// single-machine engine uses, so the report JSON and the manifest's
// deterministic section are byte-identical to `sweep` run locally with
// the same flags — at any worker count, with workers crashing or
// joining mid-run, and across coordinator restarts (-resume).
//
// Usage:
//
//	sweepd -listen 127.0.0.1:7600 \
//	       -topo clique:64 -topo path:128 -algos auto \
//	       -ci 0.01 -max-trials 100000 [-checkpoint run.ckpt] \
//	       [-json out.json] [-manifest run.manifest.json] [-status :8080]
//	sweep -worker 127.0.0.1:7600   # on each machine
//
// Without -ci the run is a fixed sweep: every cell runs exactly
// -trials trials through the batch-journaled engine (the same engine
// `sweep -checkpoint` uses, so the outputs compare against that, not
// against the streaming fixed-sweep engine's percentile report).
//
// The run starts as soon as the first worker connects and finishes
// when every cell stops; workers silent past -lease-timeout are
// evicted and their batches reissued, and near the end of the run
// outstanding batches are duplicated to idle workers (work stealing) —
// duplicates merge exactly once. A worker built from different code is
// refused at the handshake (exit 2 on its side): byte-identity across
// machines is only claimed at one code version.
//
// -status serves /status (run counters, per-cell progress), /fabric
// (per-worker health, lease ages, fleet telemetry), and /metrics
// (Prometheus text exposition) over HTTP. -progress prints a periodic
// one-line ETA from the lease-admission rate, and -events appends a
// JSON-lines lifecycle log (cells, batch commits, worker joins/leaves,
// lease grants/steals, checkpoint fsyncs). SIGINT/SIGTERM stops the
// run gracefully: admitted batches are journaled, workers are
// dismissed, and with -checkpoint the run continues later with
// `sweepd -resume run.ckpt -listen ...`.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/experiment"
	"repro/internal/fabric"
	"repro/internal/sweep"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

type listFlags []string

func (t *listFlags) String() string { return fmt.Sprint(*t) }
func (t *listFlags) Set(s string) error {
	*t = append(*t, s)
	return nil
}

// adaptiveMeta mirrors cmd/sweep's manifest record field for field:
// the two tools must emit identical deterministic manifest sections
// (minus the tool name) for the same flags, and the fabric smoke
// byte-compares exactly that.
type adaptiveMeta struct {
	BatchSize   int      `json:"batchSize,omitempty"`
	MinTrials   int      `json:"minTrials,omitempty"`
	MaxTrials   int      `json:"maxTrials"`
	TargetRelCI float64  `json:"targetRelCI,omitempty"`
	Confidence  float64  `json:"confidence,omitempty"`
	Measures    []string `json:"measures,omitempty"`
	ResumedFrom string   `json:"resumedFrom,omitempty"`
}

func main() {
	var topos, wparams, faults listFlags
	flag.Var(&topos, "topo", "topology spec kind:sizes[:opts] (repeatable)")
	flag.Var(&faults, "fault", "fault-injection spec kind:rates[:w=window] (repeatable)")
	models := flag.String("models", "nocd", "comma-separated models: nocd,cd,cdstar,local")
	algos := flag.String("algos", "auto", "comma-separated algorithms (core.Algorithm names)")
	wl := flag.String("workload", "broadcast",
		"workload scenario: "+strings.Join(workload.Names(), ", "))
	flag.Var(&wparams, "wparam", "workload parameter key=value (repeatable)")
	trials := flag.Int("trials", 100, "fixed runs (-ci 0): trials per matrix cell")
	seed := flag.Uint64("seed", 1, "master seed for per-trial seed derivation")
	source := flag.Int("source", 0, "broadcast source vertex")
	lean := flag.Bool("lean", false, "experiment-scale constants for heavy algorithms")
	batchW := flag.Int("batchw", 0, "trial-batching width on the workers (results identical at any width)")
	ci := flag.Float64("ci", 0, "adaptive stop: target relative CI half-width per cell (0 = fixed -trials; requires -max-trials)")
	ciMeasure := flag.String("ci-measure", "slots,maxEnergy", "comma-separated measures the -ci rule targets")
	ciConf := flag.Float64("ci-conf", 0.95, "confidence level of the Student-t intervals")
	minTrials := flag.Int("min-trials", 0, "adaptive runs: trials before a cell may stop on CI grounds (0 = 2 batches)")
	maxTrials := flag.Int("max-trials", 0, "adaptive runs: per-cell trial cap (required with -ci)")
	batch := flag.Int("batch", 0, "trials per lease batch (0 = 100)")
	checkpoint := flag.String("checkpoint", "", "journal admitted batches to this file (an existing journal is refused — use -resume)")
	resume := flag.String("resume", "", "continue a checkpointed run from this journal (conflicts with matrix flags)")
	listen := flag.String("listen", "127.0.0.1:0", "TCP address workers dial (resolved address printed to stderr)")
	leaseTimeout := flag.Duration("lease-timeout", 10*time.Second, "evict workers silent this long and reissue their batches")
	jsonPath := flag.String("json", "", "write aggregate JSON to this file")
	manifestPath := flag.String("manifest", "", "write a run manifest to this file; defaults to <json>.manifest.json when -json is set; 'none' disables the default")
	status := flag.String("status", "", "serve live run status (/status, /fabric, /metrics) and pprof over HTTP on this address")
	progress := flag.Bool("progress", false, "print a periodic one-line progress report with ETA to stderr")
	eventsPath := flag.String("events", "", "append one JSON line per lifecycle event (cells, batch commits, worker joins/leaves, lease grants/steals, checkpoint fsyncs) to this file")
	flag.Parse()

	manifest := *manifestPath
	if manifest == "" && *jsonPath != "" {
		manifest = strings.TrimSuffix(*jsonPath, ".json") + ".manifest.json"
	} else if manifest == "none" {
		manifest = ""
	}

	if err := validateFlags(*trials, *ci, *maxTrials, *resume, [][2]string{
		{"json", *jsonPath}, {"checkpoint", *checkpoint}, {"manifest", manifest},
		{"events", *eventsPath},
	}); err != nil {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		os.Exit(2)
	}

	var rec *telemetry.Recorder
	if *status != "" || manifest != "" || *progress || *eventsPath != "" {
		rec = telemetry.New()
	}
	if *eventsPath != "" {
		lg, err := telemetry.CreateEventLog(*eventsPath)
		if err != nil {
			fatal(err)
		}
		rec.SetEventLog(lg)
		// fatal() and the interrupt path also run this (os.Exit skips
		// defers); a write error inside the log surfaces as a non-zero
		// exit.
		eventsClose = func() {
			eventsClose = nil
			if err := lg.Close(); err != nil {
				fatal(fmt.Errorf("events: %w", err))
			}
		}
		defer closeEvents()
	}

	// Build the controller: resumed runs take the whole experiment from
	// the journal, fresh runs from the matrix flags.
	var (
		lc   *experiment.LeaseController
		meta adaptiveMeta
		spec any
		err  error
	)
	if *resume != "" {
		meta = adaptiveMeta{ResumedFrom: *resume}
		lc, err = experiment.ResumeLeaseController(*resume, experiment.ResumeConfig{Telemetry: rec})
	} else {
		cfg := experiment.Config{
			BatchSize:   *batch,
			MinTrials:   *minTrials,
			MaxTrials:   *maxTrials,
			TargetRelCI: *ci,
			Confidence:  *ciConf,
			Measures:    splitMeasures(*ciMeasure),
			Checkpoint:  *checkpoint,
			Telemetry:   rec,
		}
		if *ci == 0 {
			cfg.MaxTrials = *trials // fixed run through the journaled engine
		}
		cfg.Spec, err = buildSpec(topos, wparams, faults, *models, *algos, *wl,
			*trials, *seed, *source, *lean, *batchW)
		if err == nil {
			spec = cfg.Spec
			meta = adaptiveMeta{BatchSize: cfg.BatchSize, MinTrials: cfg.MinTrials,
				MaxTrials: cfg.MaxTrials, TargetRelCI: cfg.TargetRelCI,
				Confidence: cfg.Confidence, Measures: cfg.Measures}
			lc, err = experiment.NewLeaseController(cfg)
		}
	}
	if err != nil {
		fatal(err)
	}

	co, err := fabric.StartCoordinator(fabric.CoordinatorConfig{
		Controller:   lc,
		ListenAddr:   *listen,
		LeaseTimeout: *leaseTimeout,
		Telemetry:    rec,
		Interrupt:    interruptChannel(),
		Log:          log.New(os.Stderr, "sweepd: ", 0),
	})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "sweepd: coordinating on %s — start workers with: sweep -worker %s\n",
		co.Addr(), co.Addr())

	if *status != "" {
		addr, shutdown, err := telemetry.StartStatusServer(*status, rec, co.MountStatus)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "sweepd: status endpoint on http://%s/status (workers on /fabric)\n", addr)
		rec.SetStatusAddr(addr)
		defer shutdown()
	}

	// -progress reuses cmd/sweep's reporter: the commit rate comes from
	// admitted leases (LeaseController.Admit feeds the same recorder).
	// MaxTrials per cell is exact for fixed runs and an upper bound for
	// adaptive ones (cells stop early), so the ETA renders as "<=" there.
	var stopProgress func()
	if *progress {
		lcCfg := lc.Config()
		total := uint64(len(lc.Runner().Cells())) * uint64(lcCfg.MaxTrials)
		stopProgress = rec.StartProgress(os.Stderr, time.Second, total, lcCfg.TargetRelCI > 0)
	}

	rep, err := co.Wait()
	if stopProgress != nil {
		stopProgress()
	}
	if errors.Is(err, experiment.ErrInterrupted) {
		ckpt := *checkpoint
		if *resume != "" {
			ckpt = *resume
		}
		if ckpt != "" {
			fmt.Fprintf(os.Stderr, "sweepd: interrupted; admitted batches are journaled — continue with: sweepd -resume %s -listen %s\n", ckpt, *listen)
		} else {
			fmt.Fprintln(os.Stderr, "sweepd: interrupted")
		}
		closeEvents()
		os.Exit(130)
	}
	if err != nil {
		fatal(err)
	}
	rec.Phase("output")
	fmt.Print(rep.Table())
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fatal(err)
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if manifest != "" && rec != nil {
		m := rec.BuildManifest("sweepd", spec, meta, 0, *batchW)
		if err := m.WriteFile(manifest); err != nil {
			fatal(err)
		}
	}
}

// buildSpec assembles the sweep spec from matrix flags — the same
// parsers and field population as cmd/sweep, so flag syntax, resolved
// cells, and the manifest's spec echo all agree between the two tools
// (Trials is ignored by the controller but part of the echoed spec).
func buildSpec(topos, wparams, faults []string, models, algos, wl string,
	trials int, seed uint64, source int, lean bool, batchW int) (sweep.Spec, error) {
	if len(topos) == 0 {
		return sweep.Spec{}, errors.New("at least one -topo is required")
	}
	spec := sweep.Spec{Trials: trials, MasterSeed: seed, Source: source, Lean: lean,
		Workload: wl, BatchW: batchW}
	for _, s := range topos {
		ts, err := sweep.ParseTopology(s)
		if err != nil {
			return sweep.Spec{}, err
		}
		spec.Topologies = append(spec.Topologies, ts...)
	}
	var err error
	if spec.Models, err = sweep.ParseModels(models); err != nil {
		return sweep.Spec{}, err
	}
	if spec.Algorithms, err = sweep.ParseAlgorithms(algos); err != nil {
		return sweep.Spec{}, err
	}
	if spec.WorkloadParams, err = sweep.ParseWorkloadParams(wparams); err != nil {
		return sweep.Spec{}, err
	}
	for _, s := range faults {
		fs, err := sweep.ParseFault(s)
		if err != nil {
			return sweep.Spec{}, err
		}
		spec.Faults = append(spec.Faults, fs...)
	}
	if _, err = spec.Expand(); err != nil {
		return sweep.Spec{}, err
	}
	return spec, nil
}

// matrixFlags define the experiment; -resume takes the definition from
// the journal, so combining them is a conflict.
var matrixFlags = map[string]bool{
	"topo": true, "models": true, "algos": true, "workload": true,
	"wparam": true, "fault": true, "trials": true, "seed": true, "source": true,
	"lean": true, "ci": true, "ci-measure": true, "ci-conf": true,
	"min-trials": true, "max-trials": true, "batch": true, "checkpoint": true,
}

func validateFlags(trials int, ci float64, maxTrials int, resume string, outputs [][2]string) error {
	if trials <= 0 {
		return fmt.Errorf("-trials must be positive, got %d", trials)
	}
	seen := map[string]string{}
	for _, o := range outputs {
		name, path := o[0], o[1]
		if path == "" {
			continue
		}
		if prev, dup := seen[path]; dup {
			return fmt.Errorf("-%s and -%s both write to %s", prev, name, path)
		}
		seen[path] = name
	}
	if ci < 0 {
		return fmt.Errorf("-ci must be non-negative, got %v", ci)
	}
	if ci > 0 && maxTrials <= 0 {
		return errors.New("-ci requires -max-trials (the per-cell cap that bounds a never-converging cell)")
	}
	if resume != "" {
		var conflicts []string
		flag.Visit(func(f *flag.Flag) {
			if matrixFlags[f.Name] {
				conflicts = append(conflicts, "-"+f.Name)
			}
		})
		if len(conflicts) > 0 {
			return fmt.Errorf("-resume takes the experiment definition from the journal; drop the conflicting flags: %s",
				strings.Join(conflicts, " "))
		}
	}
	return nil
}

func splitMeasures(s string) []string {
	var out []string
	for _, tok := range strings.Split(s, ",") {
		if tok = strings.TrimSpace(tok); tok != "" {
			out = append(out, tok)
		}
	}
	return out
}

// interruptChannel converts the first SIGINT or SIGTERM into a
// graceful coordinator stop; a second signal kills the process the
// default way.
func interruptChannel() <-chan struct{} {
	intr := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		signal.Stop(sig)
		fmt.Fprintln(os.Stderr, "sweepd: interrupt — dismissing workers and flushing the checkpoint (signal again to kill)")
		close(intr)
	}()
	return intr
}

// eventsClose closes the -events log; nil when none is open. fatal and
// the interrupt exit call it because os.Exit skips defers.
var eventsClose func()

func closeEvents() {
	if eventsClose != nil {
		eventsClose()
	}
}

func fatal(err error) {
	closeEvents()
	fmt.Fprintln(os.Stderr, "sweepd:", strings.TrimPrefix(err.Error(), "sweepd: "))
	os.Exit(1)
}
