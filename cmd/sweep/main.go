// Command sweep runs a parallel Monte-Carlo experiment matrix over the
// registered workloads and prints aggregate statistics, optionally
// exporting JSON or CSV. The matrix is topologies x models x algorithms
// x workload-parameter points, each cell run -trials times with
// reproducible per-trial seeds derived from -seed (identical results for
// any -workers value).
//
// Usage:
//
//	sweep -topo path:64,128 -topo gnp:32:p=0.25 \
//	      -models local,nocd -algos auto -trials 1000 \
//	      [-workload broadcast] [-wparam key=value]... \
//	      [-seed 1] [-source 0] [-workers 0] [-lean] \
//	      [-json out.json] [-csv out.csv] [-progress]
//
// Topology syntax: kind:size1,size2,...[:key=value,...] with kinds
// path, cycle, star, clique, grid (cols=...), k2k, hypercube, tree
// (seed=...), gnp (p=..., seed=...), rgg (r=..., seed=...), lollipop
// (tail=...).
//
// Workloads (see internal/workload): broadcast (default), msrc (k-source
// broadcast, -wparam k=2,4), leader (single-hop election, -wparam
// proto=rand,det), tradeoff (Theorem 16 dial, -wparam beta=...). Comma-
// separated -wparam values expand into one matrix cell per grid point.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/sweep"
	"repro/internal/workload"
)

type topoFlags []string

func (t *topoFlags) String() string { return fmt.Sprint(*t) }
func (t *topoFlags) Set(s string) error {
	*t = append(*t, s)
	return nil
}

func main() {
	var topos, wparams topoFlags
	flag.Var(&topos, "topo", "topology spec kind:sizes[:opts] (repeatable)")
	models := flag.String("models", "nocd", "comma-separated models: nocd,cd,cdstar,local")
	algos := flag.String("algos", "auto", "comma-separated algorithms (core.Algorithm names)")
	wl := flag.String("workload", "broadcast",
		"workload scenario: "+strings.Join(workload.Names(), ", "))
	flag.Var(&wparams, "wparam", "workload parameter key=value; comma-separated values expand into a grid (repeatable)")
	trials := flag.Int("trials", 100, "trials per matrix cell")
	seed := flag.Uint64("seed", 1, "master seed for per-trial seed derivation")
	source := flag.Int("source", 0, "broadcast source vertex")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	lean := flag.Bool("lean", false, "experiment-scale constants for heavy algorithms")
	jsonPath := flag.String("json", "", "write aggregate JSON to this file")
	csvPath := flag.String("csv", "", "write aggregate CSV to this file")
	progress := flag.Bool("progress", false, "print progress to stderr")
	flag.Parse()

	if len(topos) == 0 {
		fmt.Fprintln(os.Stderr, "sweep: at least one -topo is required")
		flag.Usage()
		os.Exit(2)
	}
	spec := sweep.Spec{Trials: *trials, MasterSeed: *seed, Source: *source, Lean: *lean, Workload: *wl}
	for _, s := range topos {
		ts, err := sweep.ParseTopology(s)
		if err != nil {
			fatal(err)
		}
		spec.Topologies = append(spec.Topologies, ts...)
	}
	var err error
	if spec.Models, err = sweep.ParseModels(*models); err != nil {
		fatal(err)
	}
	if spec.Algorithms, err = sweep.ParseAlgorithms(*algos); err != nil {
		fatal(err)
	}
	if spec.WorkloadParams, err = sweep.ParseWorkloadParams(wparams); err != nil {
		fatal(err)
	}
	// Resolve the workload and its parameter grid up front so an unknown
	// name or bad grid exits before any graph is built, listing the valid
	// names.
	if _, err = spec.Expand(); err != nil {
		fatal(err)
	}

	opt := sweep.Options{Workers: *workers}
	if *progress {
		opt.Progress = func(done, total int) {
			if done%100 == 0 || done == total {
				fmt.Fprintf(os.Stderr, "\rsweep: %d/%d trials", done, total)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
	}
	rep, err := sweep.Run(spec, opt)
	if err != nil {
		fatal(err)
	}
	fmt.Print(rep.Table())
	if *jsonPath != "" {
		if err := writeFile(*jsonPath, rep.WriteJSON); err != nil {
			fatal(err)
		}
	}
	if *csvPath != "" {
		if err := writeFile(*csvPath, rep.WriteCSV); err != nil {
			fatal(err)
		}
	}
}

func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	// Package errors already carry the "sweep: " prefix; avoid doubling it.
	fmt.Fprintln(os.Stderr, "sweep:", strings.TrimPrefix(err.Error(), "sweep: "))
	os.Exit(1)
}
