// Command sweep runs a parallel Monte-Carlo experiment matrix over the
// registered workloads and prints aggregate statistics, optionally
// exporting JSON or CSV. The matrix is topologies x models x algorithms
// x workload-parameter points, each cell run -trials times with
// reproducible per-trial seeds derived from -seed (identical results for
// any -workers value).
//
// Usage:
//
//	sweep -topo path:64,128 -topo gnp:32:p=0.25 \
//	      -models local,nocd -algos auto -trials 1000 \
//	      [-workload broadcast] [-wparam key=value]... \
//	      [-seed 1] [-source 0] [-workers 0] [-lean] \
//	      [-json out.json] [-csv out.csv] [-raw trials.csv] [-progress] \
//	      [-cpuprofile cpu.out] [-memprofile mem.out]
//
// -raw streams one CSV row per trial (cell id, trial index, seed,
// slots, max/total energy, events, informed count, completion, error)
// as trials finish, in deterministic (cell, trial) order — million-trial
// sweeps write to disk incrementally instead of buffering rows in
// memory.
//
// -cpuprofile / -memprofile write pprof profiles of the sweep itself, so
// engine performance work can profile real Monte-Carlo workloads instead
// of microbenchmarks: e.g.
//
//	sweep -topo gnp:256 -trials 2000 -cpuprofile cpu.out
//	go tool pprof cpu.out
//
// Topology syntax: kind:size1,size2,...[:key=value,...] with kinds
// path, cycle, star, clique, grid (cols=...), k2k, hypercube, tree
// (seed=...), gnp (p=..., seed=...), rgg (r=..., seed=...), lollipop
// (tail=...).
//
// Workloads (see internal/workload): broadcast (default), msrc (k-source
// broadcast, -wparam k=2,4), leader (single-hop election, -wparam
// proto=rand,det), tradeoff (Theorem 16 dial, -wparam beta=...). Comma-
// separated -wparam values expand into one matrix cell per grid point.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/sweep"
	"repro/internal/workload"
)

type topoFlags []string

func (t *topoFlags) String() string { return fmt.Sprint(*t) }
func (t *topoFlags) Set(s string) error {
	*t = append(*t, s)
	return nil
}

func main() {
	var topos, wparams topoFlags
	flag.Var(&topos, "topo", "topology spec kind:sizes[:opts] (repeatable)")
	models := flag.String("models", "nocd", "comma-separated models: nocd,cd,cdstar,local")
	algos := flag.String("algos", "auto", "comma-separated algorithms (core.Algorithm names)")
	wl := flag.String("workload", "broadcast",
		"workload scenario: "+strings.Join(workload.Names(), ", "))
	flag.Var(&wparams, "wparam", "workload parameter key=value; comma-separated values expand into a grid (repeatable)")
	trials := flag.Int("trials", 100, "trials per matrix cell")
	seed := flag.Uint64("seed", 1, "master seed for per-trial seed derivation")
	source := flag.Int("source", 0, "broadcast source vertex")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	lean := flag.Bool("lean", false, "experiment-scale constants for heavy algorithms")
	jsonPath := flag.String("json", "", "write aggregate JSON to this file")
	csvPath := flag.String("csv", "", "write aggregate CSV to this file")
	rawPath := flag.String("raw", "", "stream per-trial raw CSV (cell, trial, seed, slots, energy, informed, ...) to this file")
	progress := flag.Bool("progress", false, "print progress to stderr")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the sweep to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile (taken after the sweep) to this file")
	flag.Parse()

	// Profiling hooks: real sweep workloads are what the engine's perf
	// work optimizes for, so make them profileable directly instead of
	// approximating with microbenchmarks.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		// fatal() also runs this (os.Exit skips defers), so a failure
		// after a long sweep still leaves a usable flushed profile.
		cpuProfileStop = func() {
			pprof.StopCPUProfile()
			f.Close()
			cpuProfileStop = nil
		}
		defer stopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			runtime.GC() // materialize the post-sweep live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
	}

	if len(topos) == 0 {
		fmt.Fprintln(os.Stderr, "sweep: at least one -topo is required")
		flag.Usage()
		os.Exit(2)
	}
	spec := sweep.Spec{Trials: *trials, MasterSeed: *seed, Source: *source, Lean: *lean, Workload: *wl}
	for _, s := range topos {
		ts, err := sweep.ParseTopology(s)
		if err != nil {
			fatal(err)
		}
		spec.Topologies = append(spec.Topologies, ts...)
	}
	var err error
	if spec.Models, err = sweep.ParseModels(*models); err != nil {
		fatal(err)
	}
	if spec.Algorithms, err = sweep.ParseAlgorithms(*algos); err != nil {
		fatal(err)
	}
	if spec.WorkloadParams, err = sweep.ParseWorkloadParams(wparams); err != nil {
		fatal(err)
	}
	// Resolve the workload and its parameter grid up front so an unknown
	// name or bad grid exits before any graph is built, listing the valid
	// names.
	if _, err = spec.Expand(); err != nil {
		fatal(err)
	}

	opt := sweep.Options{Workers: *workers}
	if *rawPath != "" {
		// The raw export streams trial rows as they complete; buffer the
		// file writes so million-trial sweeps don't pay a syscall per row.
		f, err := os.Create(*rawPath)
		if err != nil {
			fatal(err)
		}
		bw := bufio.NewWriterSize(f, 1<<20)
		opt.Raw = bw
		// fatal() also runs this (os.Exit skips defers), so a failure
		// after the sweep — e.g. a bad -json path — still leaves the
		// completed raw rows flushed on disk.
		rawFlush = func() {
			rawFlush = nil
			if err := bw.Flush(); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}
		defer flushRaw()
	}
	if *progress {
		opt.Progress = func(done, total int) {
			if done%100 == 0 || done == total {
				fmt.Fprintf(os.Stderr, "\rsweep: %d/%d trials", done, total)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
	}
	rep, err := sweep.Run(spec, opt)
	if err != nil {
		fatal(err)
	}
	fmt.Print(rep.Table())
	if *jsonPath != "" {
		if err := writeFile(*jsonPath, rep.WriteJSON); err != nil {
			fatal(err)
		}
	}
	if *csvPath != "" {
		if err := writeFile(*csvPath, rep.WriteCSV); err != nil {
			fatal(err)
		}
	}
}

func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// cpuProfileStop flushes and closes an in-progress CPU profile; nil when
// none is running. fatal calls it because os.Exit skips defers.
var cpuProfileStop func()

func stopCPUProfile() {
	if cpuProfileStop != nil {
		cpuProfileStop()
	}
}

// rawFlush flushes and closes the raw per-trial export; nil when none
// is open. fatal calls it because os.Exit skips defers.
var rawFlush func()

func flushRaw() {
	if rawFlush != nil {
		rawFlush()
	}
}

func fatal(err error) {
	stopCPUProfile()
	flushRaw()
	// Package errors already carry the "sweep: " prefix; avoid doubling it.
	fmt.Fprintln(os.Stderr, "sweep:", strings.TrimPrefix(err.Error(), "sweep: "))
	os.Exit(1)
}
