// Command sweep runs a parallel Monte-Carlo experiment matrix over the
// registered workloads and prints aggregate statistics, optionally
// exporting JSON or CSV. The matrix is topologies x models x algorithms
// x workload-parameter points, each cell run -trials times with
// reproducible per-trial seeds derived from -seed (identical results for
// any -workers value).
//
// Usage:
//
//	sweep -topo path:64,128 -topo gnp:32:p=0.25 \
//	      -models local,nocd -algos auto -trials 1000 \
//	      [-workload broadcast] [-wparam key=value]... \
//	      [-fault kind:rates[:w=window]]... \
//	      [-seed 1] [-source 0] [-workers 0] [-lean] [-batchw 0] \
//	      [-json out.json] [-csv out.csv] [-raw trials.csv] [-progress] \
//	      [-status :8080] [-manifest run.manifest.json] \
//	      [-cpuprofile cpu.out] [-memprofile mem.out] [-trace trace.out]
//
// # Fault injection
//
// -fault adds a deterministic fault-injection axis to the matrix (see
// internal/fault): crash:0.001 removes devices permanently, sleep:0.01:w=8
// forces 8-slot idle windows, loss:0.05 erases successful deliveries —
// each rate a per-(device, slot) probability, each listed spec its own
// matrix cell. Fault decisions come from a positional hash stream
// disjoint from every protocol RNG stream, so a rate-0 spec reproduces
// the fault-free report byte for byte and results stay bit-identical
// for any -workers or -batchw. Faulted cells gain graceful-degradation
// columns (success, informedFrac, energyOverhead, wastedAwake) that
// adaptive runs can target with -ci-measure.
//
// # Observability
//
// -status addr serves the run live over HTTP (see internal/telemetry):
// /status returns a JSON snapshot — run counters, per-cell committed
// trials and wall-clock, convergence traces of adaptive runs — and
// /debug/pprof/ exposes the standard profiling handlers. The resolved
// address is printed to stderr (useful with ":0"). -progress prints a
// periodic one-line stderr report with an ETA extrapolated from the
// trial-commit rate. -manifest writes a run manifest (spec, seed,
// worker/batch config, counters, per-cell trials and timings, phase
// timings); with -json but no -manifest, the manifest is derived next
// to the report as <report>.manifest.json (-manifest none disables
// the default). Telemetry counters live in
// per-worker shards updated once per trial batch, so none of this
// perturbs measurements: the report JSON is byte-identical with and
// without it.
//
// # Adaptive runs and checkpoint/resume
//
// With -ci (and mandatory -max-trials), the run goes through the
// internal/experiment controller instead of the fixed-trials engine:
// cells run in -batch sized trial batches and each stops independently
// once every -ci-measure's Student-t relative CI half-width (confidence
// -ci-conf) is within the -ci target, reallocating workers to the cells
// that still need trials. -checkpoint journals every completed batch
// (CRC-framed, fsync'd); after a crash or Ctrl-C, `sweep -resume
// run.ckpt` continues the run — the journal holds the full experiment
// definition, so -resume conflicts with every matrix flag — and
// produces aggregate JSON byte-identical to an uninterrupted run.
// -checkpoint without -ci journals a fixed -trials sweep.
//
//	sweep -topo path:128,256 -topo gnp:64 -models nocd,cd \
//	      -ci 0.01 -ci-measure slots,maxEnergy \
//	      -min-trials 200 -max-trials 200000 \
//	      -checkpoint run.ckpt -json out.json
//	sweep -resume run.ckpt -json out.json   # after a kill
//
// # Distributed sweeps
//
// `sweep -worker host:port` turns the process into a fabric worker
// (see internal/fabric and cmd/sweepd): it dials the coordinator at
// that address, executes the batch leases it is handed, and streams
// folded results back until the coordinator reports the run complete.
// The experiment definition comes entirely from the coordinator, so
// -worker conflicts with every matrix and output flag; only -workers
// (the local capacity) rides along. A worker exits 0 when the run
// completes, 2 if the coordinator refuses it for running a different
// code version, and 1 if the coordinator stays unreachable past the
// redial window. The coordinator side guarantees report bytes
// identical to a single-machine run at any worker count.
//
// -raw streams one CSV row per trial (cell id, trial index, seed,
// slots, max/total energy, events, informed count, completion, error)
// as trials finish, in deterministic (cell, trial) order — million-trial
// sweeps write to disk incrementally instead of buffering rows in
// memory.
//
// -cpuprofile / -memprofile / -trace write pprof profiles and a
// runtime/trace of the sweep itself, so engine performance work can
// profile real Monte-Carlo workloads instead of microbenchmarks: e.g.
//
//	sweep -topo gnp:256 -trials 2000 -cpuprofile cpu.out -trace trace.out
//	go tool pprof cpu.out
//	go tool trace trace.out
//
// Topology syntax: kind:size1,size2,...[:key=value,...] with kinds
// path, cycle, star, clique, grid (cols=...), k2k, hypercube, tree
// (seed=...), gnp (p=..., seed=...), rgg (r=..., seed=...), lollipop
// (tail=...).
//
// Workloads (see internal/workload): broadcast (default), msrc (k-source
// broadcast, -wparam k=2,4), leader (single-hop election, -wparam
// proto=rand,det), tradeoff (Theorem 16 dial, -wparam beta=...). Comma-
// separated -wparam values expand into one matrix cell per grid point.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"
	"strings"
	"syscall"
	"time"

	"repro/internal/experiment"
	"repro/internal/fabric"
	"repro/internal/sweep"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

type topoFlags []string

func (t *topoFlags) String() string { return fmt.Sprint(*t) }
func (t *topoFlags) Set(s string) error {
	*t = append(*t, s)
	return nil
}

func main() {
	var topos, wparams, faults topoFlags
	flag.Var(&topos, "topo", "topology spec kind:sizes[:opts] (repeatable)")
	flag.Var(&faults, "fault", "fault-injection spec kind:rates[:w=window] with kinds crash, sleep, loss; comma-separated rates expand into a grid (repeatable)")
	models := flag.String("models", "nocd", "comma-separated models: nocd,cd,cdstar,local")
	algos := flag.String("algos", "auto", "comma-separated algorithms (core.Algorithm names)")
	wl := flag.String("workload", "broadcast",
		"workload scenario: "+strings.Join(workload.Names(), ", "))
	flag.Var(&wparams, "wparam", "workload parameter key=value; comma-separated values expand into a grid (repeatable)")
	trials := flag.Int("trials", 100, "trials per matrix cell")
	seed := flag.Uint64("seed", 1, "master seed for per-trial seed derivation")
	source := flag.Int("source", 0, "broadcast source vertex")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	lean := flag.Bool("lean", false, "experiment-scale constants for heavy algorithms")
	batchW := flag.Int("batchw", 0, "trial-batching width: run up to this many consecutive trials of a cell in lockstep on one batch engine (0/1 = solo; results identical at any width)")
	jsonPath := flag.String("json", "", "write aggregate JSON to this file")
	csvPath := flag.String("csv", "", "write aggregate CSV to this file")
	rawPath := flag.String("raw", "", "stream per-trial raw CSV (cell, trial, seed, slots, energy, informed, ...) to this file")
	progress := flag.Bool("progress", false, "print a periodic one-line progress report with ETA to stderr")
	eventsPath := flag.String("events", "", "append one JSON line per lifecycle event (cell start/stop, batch commits, checkpoint fsyncs, phase transitions) to this file")
	status := flag.String("status", "", "serve live run status and pprof over HTTP on this address (e.g. :8080 or 127.0.0.1:0; resolved address printed to stderr)")
	manifestPath := flag.String("manifest", "", "write a run manifest (spec, counters, per-cell trials and timings) to this file; defaults to <json>.manifest.json when -json is set; 'none' disables the default")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the sweep to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile (taken after the sweep) to this file")
	tracePath := flag.String("trace", "", "write a runtime/trace of the sweep to this file (view with go tool trace)")
	ci := flag.Float64("ci", 0, "adaptive stop: target relative CI half-width per cell (0 = fixed -trials; requires -max-trials)")
	ciMeasure := flag.String("ci-measure", "slots,maxEnergy", "comma-separated measures the -ci rule targets")
	ciConf := flag.Float64("ci-conf", 0.95, "confidence level of the Student-t intervals")
	minTrials := flag.Int("min-trials", 0, "adaptive runs: trials before a cell may stop on CI grounds (0 = 2 batches)")
	maxTrials := flag.Int("max-trials", 0, "adaptive runs: per-cell trial cap (required with -ci)")
	batch := flag.Int("batch", 0, "adaptive runs: trials per scheduling batch (0 = 100)")
	checkpoint := flag.String("checkpoint", "", "journal completed batches to this file (implies the adaptive engine; an existing journal is refused, not overwritten — use -resume)")
	resume := flag.String("resume", "", "continue a checkpointed run from this journal (conflicts with matrix flags)")
	worker := flag.String("worker", "", "run as a fabric worker for the coordinator (cmd/sweepd) at this host:port; conflicts with every flag except -workers")
	flag.Parse()

	// Worker mode: the coordinator owns the experiment; everything local
	// is just capacity.
	if *worker != "" {
		runWorker(*worker, *workers)
		return
	}

	// The manifest rides along with every exported report: derive its
	// default path before validation so collisions are caught up front.
	// -manifest none opts out (e.g. to compare against a telemetry-free
	// run; the report bytes must not change either way).
	manifest := *manifestPath
	if manifest == "" && *jsonPath != "" {
		manifest = strings.TrimSuffix(*jsonPath, ".json") + ".manifest.json"
	} else if manifest == "none" {
		manifest = ""
	}

	// Up-front flag validation: a bad combination exits 2 with a one-line
	// reason before any graph is built or file touched.
	outputs := [][2]string{
		{"json", *jsonPath}, {"csv", *csvPath}, {"raw", *rawPath},
		{"checkpoint", *checkpoint}, {"manifest", manifest}, {"events", *eventsPath},
		{"cpuprofile", *cpuProfile}, {"memprofile", *memProfile}, {"trace", *tracePath},
	}
	if err := validateFlags(*trials, *ci, *maxTrials, *resume, *checkpoint, *rawPath, *csvPath, outputs); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(2)
	}

	// Profiling hooks: real sweep workloads are what the engine's perf
	// work optimizes for, so make them profileable directly instead of
	// approximating with microbenchmarks.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		// fatal() also runs this (os.Exit skips defers), so a failure
		// after a long sweep still leaves a usable flushed profile.
		cpuProfileStop = func() {
			pprof.StopCPUProfile()
			f.Close()
			cpuProfileStop = nil
		}
		defer stopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			runtime.GC() // materialize the post-sweep live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		if err := rtrace.Start(f); err != nil {
			fatal(err)
		}
		// fatal() also runs this (os.Exit skips defers), so a failure
		// after a long sweep still leaves a usable flushed trace.
		traceStop = func() {
			rtrace.Stop()
			f.Close()
			traceStop = nil
		}
		defer stopTrace()
	}

	// Telemetry powers -status, -progress, -events, and the manifest;
	// off (nil recorder, zero instrumentation) unless one of them asks
	// for it.
	var rec *telemetry.Recorder
	if *status != "" || *progress || manifest != "" || *eventsPath != "" {
		rec = telemetry.New()
	}
	if *eventsPath != "" {
		lg, err := telemetry.CreateEventLog(*eventsPath)
		if err != nil {
			fatal(err)
		}
		rec.SetEventLog(lg)
		// fatal() also runs this (os.Exit skips defers), so a failure
		// still leaves the events written so far closed cleanly; a write
		// error inside the log surfaces here as a non-zero exit.
		eventsClose = func() {
			eventsClose = nil
			if err := lg.Close(); err != nil {
				fatal(fmt.Errorf("events: %w", err))
			}
		}
		defer closeEvents()
	}
	if *status != "" {
		addr, shutdown, err := telemetry.StartStatusServer(*status, rec)
		if err != nil {
			fatal(err)
		}
		// The resolved address makes ":0" usable by scripts, and the
		// manifest records it so tooling can find the endpoint later.
		fmt.Fprintf(os.Stderr, "sweep: status endpoint on http://%s/status\n", addr)
		rec.SetStatusAddr(addr)
		defer shutdown()
	}

	// Resume: the journal holds the whole experiment definition.
	if *resume != "" {
		runResume(*resume, *workers, *jsonPath, manifest, *progress, rec)
		return
	}

	if len(topos) == 0 {
		fmt.Fprintln(os.Stderr, "sweep: at least one -topo is required")
		flag.Usage()
		os.Exit(2)
	}
	spec := sweep.Spec{Trials: *trials, MasterSeed: *seed, Source: *source, Lean: *lean,
		Workload: *wl, BatchW: *batchW}
	for _, s := range topos {
		ts, err := sweep.ParseTopology(s)
		if err != nil {
			fatal(err)
		}
		spec.Topologies = append(spec.Topologies, ts...)
	}
	var err error
	if spec.Models, err = sweep.ParseModels(*models); err != nil {
		fatal(err)
	}
	if spec.Algorithms, err = sweep.ParseAlgorithms(*algos); err != nil {
		fatal(err)
	}
	if spec.WorkloadParams, err = sweep.ParseWorkloadParams(wparams); err != nil {
		fatal(err)
	}
	for _, s := range faults {
		fs, err := sweep.ParseFault(s)
		if err != nil {
			fatal(err)
		}
		spec.Faults = append(spec.Faults, fs...)
	}
	// Resolve the workload and its parameter grid up front so an unknown
	// name or bad grid exits before any graph is built, listing the valid
	// names.
	if _, err = spec.Expand(); err != nil {
		fatal(err)
	}

	// Adaptive / checkpointed runs go through the experiment controller.
	if *ci > 0 || *checkpoint != "" {
		mt := *maxTrials
		if mt == 0 {
			mt = *trials // -checkpoint without -ci: journaled fixed sweep
		}
		runAdaptive(experiment.Config{
			Spec:        spec,
			BatchSize:   *batch,
			MinTrials:   *minTrials,
			MaxTrials:   mt,
			TargetRelCI: *ci,
			Confidence:  *ciConf,
			Measures:    splitMeasures(*ciMeasure),
			Workers:     *workers,
			Checkpoint:  *checkpoint,
			Telemetry:   rec,
		}, *jsonPath, manifest, *progress)
		return
	}

	opt := sweep.Options{Workers: *workers, Telemetry: rec}
	if *rawPath != "" {
		// The raw export streams trial rows as they complete; buffer the
		// file writes so million-trial sweeps don't pay a syscall per row.
		f, err := os.Create(*rawPath)
		if err != nil {
			fatal(err)
		}
		bw := bufio.NewWriterSize(f, 1<<20)
		opt.Raw = bw
		// fatal() also runs this (os.Exit skips defers), so a failure
		// after the sweep — e.g. a bad -json path — still leaves the
		// completed raw rows flushed on disk.
		rawFlush = func() {
			rawFlush = nil
			if err := bw.Flush(); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}
		defer flushRaw()
	}
	var stopProgress func()
	if *progress {
		// spec.Expand already validated above, so the error is impossible
		// here; the cell count sizes the ETA's trial total.
		cells, _ := spec.Expand()
		stopProgress = rec.StartProgress(os.Stderr, time.Second, uint64(len(cells))*uint64(*trials), false)
	}
	rep, err := sweep.Run(spec, opt)
	if stopProgress != nil {
		stopProgress()
	}
	if err != nil {
		fatal(err)
	}
	rec.Phase("output")
	fmt.Print(rep.Table())
	if *jsonPath != "" {
		if err := writeFile(*jsonPath, rep.WriteJSON); err != nil {
			fatal(err)
		}
	}
	if *csvPath != "" {
		if err := writeFile(*csvPath, rep.WriteCSV); err != nil {
			fatal(err)
		}
	}
	writeManifest(rec, manifest, spec, nil, *workers, *batchW)
}

// matrixFlags define the experiment; -resume takes the definition from
// the journal, so combining them is a conflict.
var matrixFlags = map[string]bool{
	"topo": true, "models": true, "algos": true, "workload": true,
	"wparam": true, "fault": true, "trials": true, "seed": true, "source": true,
	"lean": true, "ci": true, "ci-measure": true, "ci-conf": true,
	"min-trials": true, "max-trials": true, "batch": true, "checkpoint": true,
}

// validateFlags rejects invalid flag combinations up front, before any
// graph is built or file touched. outputs lists every file-writing flag
// with its (possibly derived) path so collisions are caught before one
// output truncates another.
func validateFlags(trials int, ci float64, maxTrials int, resume, checkpoint, rawPath, csvPath string, outputs [][2]string) error {
	if trials <= 0 {
		return fmt.Errorf("-trials must be positive, got %d", trials)
	}
	seen := map[string]string{}
	for _, o := range outputs {
		name, path := o[0], o[1]
		if path == "" {
			continue
		}
		if prev, dup := seen[path]; dup {
			return fmt.Errorf("-%s and -%s both write to %s", prev, name, path)
		}
		seen[path] = name
	}
	if ci < 0 {
		return fmt.Errorf("-ci must be non-negative, got %v", ci)
	}
	if ci > 0 && maxTrials <= 0 {
		return errors.New("-ci requires -max-trials (the per-cell cap that bounds a never-converging cell)")
	}
	if resume != "" {
		var conflicts []string
		flag.Visit(func(f *flag.Flag) {
			if matrixFlags[f.Name] {
				conflicts = append(conflicts, "-"+f.Name)
			}
		})
		if len(conflicts) > 0 {
			return fmt.Errorf("-resume takes the experiment definition from the journal; drop the conflicting flags: %s",
				strings.Join(conflicts, " "))
		}
	}
	// The same value test main routes on, so validation and execution
	// can never disagree about which engine runs.
	if adaptive := ci > 0 || resume != "" || checkpoint != ""; adaptive {
		if rawPath != "" {
			return errors.New("-raw is only available for fixed (non-adaptive, non-checkpointed) sweeps")
		}
		if csvPath != "" {
			return errors.New("adaptive reports export JSON only; -csv is only for fixed sweeps")
		}
	}
	return nil
}

// splitMeasures parses the -ci-measure list.
func splitMeasures(s string) []string {
	var out []string
	for _, tok := range strings.Split(s, ",") {
		if tok = strings.TrimSpace(tok); tok != "" {
			out = append(out, tok)
		}
	}
	return out
}

// interruptChannel converts the first SIGINT or SIGTERM into a graceful
// controller stop: in-flight batches drain, the checkpoint flushes, any
// -trace stops cleanly, and the process exits with a resume hint.
// SIGTERM gets the identical treatment because orchestrators (systemd,
// Kubernetes, CI timeouts) deliver it where a terminal sends ^C — the
// journal must survive either. A second signal kills the process the
// default way (the handler resets after the first).
func interruptChannel() <-chan struct{} {
	intr := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		signal.Stop(sig)
		fmt.Fprintln(os.Stderr, "sweep: interrupt — draining in-flight batches and flushing the checkpoint (signal again to kill)")
		close(intr)
	}()
	return intr
}

// finishAdaptive renders and exports an adaptive report.
func finishAdaptive(rep *experiment.Report, jsonPath string) {
	fmt.Print(rep.Table())
	if jsonPath != "" {
		if err := writeFile(jsonPath, rep.WriteJSON); err != nil {
			fatal(err)
		}
	}
}

// adaptiveMeta is the manifest's record of the controller parameters,
// as invoked (pre-normalization: zeros mean defaults).
type adaptiveMeta struct {
	BatchSize   int      `json:"batchSize,omitempty"`
	MinTrials   int      `json:"minTrials,omitempty"`
	MaxTrials   int      `json:"maxTrials"`
	TargetRelCI float64  `json:"targetRelCI,omitempty"`
	Confidence  float64  `json:"confidence,omitempty"`
	Measures    []string `json:"measures,omitempty"`
	ResumedFrom string   `json:"resumedFrom,omitempty"`
}

// writeManifest builds and writes the run manifest; a no-op when no
// manifest was requested (path empty, rec nil).
func writeManifest(rec *telemetry.Recorder, path string, spec, adaptive any, workers, batchw int) {
	if path == "" || rec == nil {
		return
	}
	m := rec.BuildManifest("sweep", spec, adaptive, workers, batchw)
	if err := m.WriteFile(path); err != nil {
		fatal(err)
	}
}

// exitInterrupted reports a graceful SIGINT/SIGTERM stop. 130 is the
// conventional fatal-SIGINT exit status.
func exitInterrupted(checkpoint string) {
	stopCPUProfile()
	stopTrace()
	closeEvents()
	if checkpoint != "" {
		fmt.Fprintf(os.Stderr, "sweep: interrupted; completed batches are journaled — continue with: sweep -resume %s\n", checkpoint)
	} else {
		fmt.Fprintln(os.Stderr, "sweep: interrupted")
	}
	os.Exit(130)
}

// runAdaptive drives a fresh adaptive (or journaled fixed) run.
func runAdaptive(cfg experiment.Config, jsonPath, manifest string, progress bool) {
	cfg.Interrupt = interruptChannel()
	var stopProgress func()
	if progress {
		// MaxTrials per cell is an upper bound — adaptive cells stop
		// early — so the ETA renders as "<=".
		cells, _ := cfg.Spec.Expand()
		stopProgress = cfg.Telemetry.StartProgress(os.Stderr, time.Second,
			uint64(len(cells))*uint64(cfg.MaxTrials), true)
	}
	rep, err := experiment.Run(cfg)
	if stopProgress != nil {
		stopProgress()
	}
	if errors.Is(err, experiment.ErrInterrupted) {
		exitInterrupted(cfg.Checkpoint)
	}
	if err != nil {
		fatal(err)
	}
	cfg.Telemetry.Phase("output")
	finishAdaptive(rep, jsonPath)
	writeManifest(cfg.Telemetry, manifest, cfg.Spec, adaptiveMeta{
		BatchSize: cfg.BatchSize, MinTrials: cfg.MinTrials, MaxTrials: cfg.MaxTrials,
		TargetRelCI: cfg.TargetRelCI, Confidence: cfg.Confidence, Measures: cfg.Measures,
	}, cfg.Workers, cfg.Spec.BatchW)
}

// runWorker joins the fabric coordinator at addr as a worker. The
// coordinator defines the experiment, so every flag except -workers is
// a conflict; exits 0 on run completion, 2 on a refused handshake or a
// conflicting flag, 130 on interrupt, 1 on an unreachable coordinator.
func runWorker(addr string, capacity int) {
	var conflicts []string
	flag.Visit(func(f *flag.Flag) {
		if f.Name != "worker" && f.Name != "workers" {
			conflicts = append(conflicts, "-"+f.Name)
		}
	})
	if len(conflicts) > 0 {
		fmt.Fprintf(os.Stderr, "sweep: -worker takes the experiment from the coordinator; drop the conflicting flags: %s\n",
			strings.Join(conflicts, " "))
		os.Exit(2)
	}
	err := fabric.RunWorker(fabric.WorkerConfig{
		Addr: addr, Capacity: capacity, Interrupt: interruptChannel(),
		Log: log.New(os.Stderr, "sweep: ", 0),
	})
	switch {
	case err == nil:
		fmt.Fprintln(os.Stderr, "sweep: run complete, coordinator dismissed this worker")
	case errors.Is(err, fabric.ErrVersionMismatch):
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(2)
	case errors.Is(err, experiment.ErrInterrupted):
		fmt.Fprintln(os.Stderr, "sweep: interrupted")
		os.Exit(130)
	default:
		fatal(err)
	}
}

// runResume continues a checkpointed run. The experiment definition
// lives in the journal, so the manifest echoes only the journal path;
// its deterministic fields (committed counts, traces) still rebuild
// identically to the uninterrupted run's.
func runResume(path string, workers int, jsonPath, manifest string, progress bool, rec *telemetry.Recorder) {
	rc := experiment.ResumeConfig{Workers: workers, Interrupt: interruptChannel(), Telemetry: rec}
	var stopProgress func()
	if progress {
		// The trial total lives in the journal header; report rate only.
		stopProgress = rec.StartProgress(os.Stderr, time.Second, 0, false)
	}
	rep, err := experiment.Resume(path, rc)
	if stopProgress != nil {
		stopProgress()
	}
	if errors.Is(err, experiment.ErrInterrupted) {
		exitInterrupted(path)
	}
	if err != nil {
		fatal(err)
	}
	rec.Phase("output")
	finishAdaptive(rep, jsonPath)
	writeManifest(rec, manifest, nil, adaptiveMeta{ResumedFrom: path}, workers, 0)
}

func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// cpuProfileStop flushes and closes an in-progress CPU profile; nil when
// none is running. fatal calls it because os.Exit skips defers.
var cpuProfileStop func()

func stopCPUProfile() {
	if cpuProfileStop != nil {
		cpuProfileStop()
	}
}

// rawFlush flushes and closes the raw per-trial export; nil when none
// is open. fatal calls it because os.Exit skips defers.
var rawFlush func()

func flushRaw() {
	if rawFlush != nil {
		rawFlush()
	}
}

// traceStop flushes and closes an in-progress runtime/trace; nil when
// none is running. fatal calls it because os.Exit skips defers.
var traceStop func()

func stopTrace() {
	if traceStop != nil {
		traceStop()
	}
}

// eventsClose closes the -events log; nil when none is open. fatal
// calls it because os.Exit skips defers.
var eventsClose func()

func closeEvents() {
	if eventsClose != nil {
		eventsClose()
	}
}

func fatal(err error) {
	stopCPUProfile()
	stopTrace()
	flushRaw()
	closeEvents()
	// Package errors already carry the "sweep: " prefix; avoid doubling it.
	fmt.Fprintln(os.Stderr, "sweep:", strings.TrimPrefix(err.Error(), "sweep: "))
	os.Exit(1)
}
