// Command pathtrace regenerates Figure 1 of the paper: a timeline of
// message traffic in an example run of the Section 8 path algorithm.
// Each row is a time slot, each column a vertex; T marks a transmission,
// R a reception, and * the slot a vertex first holds the payload.
// Messages visibly propagate down-and-right except where a blocking
// vertex delays them, exactly as in the paper's figure.
//
// Usage:
//
//	pathtrace [-n 32] [-seed 7] [-slots 40]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/graph"
	"repro/internal/pathcast"
	"repro/internal/radio"
)

func main() {
	n := flag.Int("n", 32, "path length")
	seed := flag.Uint64("seed", 7, "random seed")
	maxRows := flag.Int("slots", 40, "timeline rows to print (0 = all)")
	flag.Parse()

	g := graph.Path(*n)
	type cell struct{ tx, rx bool }
	grid := map[uint64][]cell{}
	var maxSlot uint64
	trace := func(ev radio.Event) {
		row, ok := grid[ev.Slot]
		if !ok {
			row = make([]cell, *n)
			grid[ev.Slot] = row
		}
		switch ev.Kind {
		case radio.EventTransmit:
			row[ev.Dev].tx = true
		case radio.EventReceive:
			row[ev.Dev].rx = true
		}
		if ev.Slot > maxSlot {
			maxSlot = ev.Slot
		}
	}
	out, err := pathcast.Broadcast(g, 0, "payload", pathcast.Params{}, *seed, trace)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("Figure 1 reproduction: path algorithm on n=%d (seed %d)\n", *n, *seed)
	fmt.Printf("worst-case bound 2n' = %d; actual delivery completed at slot %d\n",
		2*nextPow2(*n), out.MaxReceiveSlot())
	fmt.Println("T = transmit, R = receive, * = first holds payload, . = asleep")
	fmt.Println()
	fmt.Print("slot  ")
	for v := 0; v < *n; v++ {
		fmt.Print(string(rune('0' + v%10)))
	}
	fmt.Println()
	rows := 0
	for s := uint64(1); s <= maxSlot; s++ {
		if *maxRows > 0 && rows >= *maxRows {
			fmt.Printf("... (%d more slots)\n", maxSlot-s+1)
			break
		}
		row, ok := grid[s]
		if !ok {
			continue
		}
		rows++
		fmt.Printf("%4d  ", s)
		for v := 0; v < *n; v++ {
			c := byte('.')
			switch {
			case row[v].tx && row[v].rx:
				c = 'B'
			case row[v].tx:
				c = 'T'
			case row[v].rx:
				c = 'R'
			}
			if out.Devices[v].ReceivedAt == s {
				c = '*'
			}
			fmt.Print(string(c))
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("per-vertex energy:")
	for v := 0; v < *n; v++ {
		fmt.Printf("%d ", out.Result.Energy[v])
	}
	fmt.Println()
	fmt.Printf("max energy %d over %d slots (devices sleep through the rest)\n",
		out.Result.MaxEnergy(), out.Result.Slots)
}

func nextPow2(x int) int {
	v := 1
	for v < x {
		v *= 2
	}
	return v
}
