// Benchmarks regenerating the paper's evaluation: one benchmark per row
// of Table 1 plus Figure 1, the Partition lemmas, and the baseline. Each
// reports the paper's two complexity measures as custom metrics:
// slots/op (time) and maxEnergy/op (energy). Absolute values are
// implementation-specific; the shape across the size parameters is what
// reproduces the paper (see EXPERIMENTS.md).
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/baseline"
	"repro/internal/cdmerge"
	"repro/internal/core"
	"repro/internal/dtime"
	"repro/internal/graph"
	"repro/internal/iterclust"
	"repro/internal/leader"
	"repro/internal/partition"
	"repro/internal/pathcast"
	"repro/internal/radio"
	"repro/internal/sweep"
	"repro/internal/telemetry"
)

// report runs fn once per iteration and reports mean slots and energy.
func report(b *testing.B, fn func(seed uint64) (uint64, int)) {
	b.Helper()
	var slots, energy float64
	for i := 0; i < b.N; i++ {
		s, e := fn(uint64(i + 1))
		slots += float64(s)
		energy += float64(e)
	}
	b.ReportMetric(slots/float64(b.N), "slots/op")
	b.ReportMetric(energy/float64(b.N), "maxEnergy/op")
}

// BenchmarkLocalIterClust is Table 1 row "randomized LOCAL: O(n log n)
// time, O(log n) energy" (Theorem 11).
func BenchmarkLocalIterClust(b *testing.B) {
	for _, n := range []int{16, 32, 64, 128} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := graph.GNP(n, 8.0/float64(n), 11)
			p := iterclust.NewParams(radio.Local, g.N(), g.MaxDegree())
			report(b, func(seed uint64) (uint64, int) {
				out, err := iterclust.Broadcast(g, 0, "m", p, seed)
				if err != nil {
					b.Fatal(err)
				}
				return out.Result.Slots, out.Result.MaxEnergy()
			})
		})
	}
}

// BenchmarkNoCDIterClust is Table 1 row "randomized No-CD:
// O(n logD log^2 n) time, O(logD log^2 n) energy" (Theorem 11).
func BenchmarkNoCDIterClust(b *testing.B) {
	for _, n := range []int{16, 32, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := graph.GNP(n, 8.0/float64(n), 11)
			p := iterclust.NewParams(radio.NoCD, g.N(), g.MaxDegree())
			report(b, func(seed uint64) (uint64, int) {
				out, err := iterclust.Broadcast(g, 0, "m", p, seed)
				if err != nil {
					b.Fatal(err)
				}
				return out.Result.Slots, out.Result.MaxEnergy()
			})
		})
	}
}

// BenchmarkCDIterClust is Table 1 row "randomized CD:
// O(n logD log^{2+eps} n/(eps loglog n)) time, O(log^2 n/(eps loglog n))
// energy" (Theorem 12).
func BenchmarkCDIterClust(b *testing.B) {
	for _, n := range []int{16, 32, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := graph.GNP(n, 8.0/float64(n), 13)
			p := iterclust.NewTheorem12Params(g.N(), g.MaxDegree(), 0.5)
			report(b, func(seed uint64) (uint64, int) {
				out, err := iterclust.Broadcast(g, 0, "m", p, seed)
				if err != nil {
					b.Fatal(err)
				}
				return out.Result.Slots, out.Result.MaxEnergy()
			})
		})
	}
}

// BenchmarkCDMerge is Table 1 row "randomized CD: O(Delta n^{1+xi}) time,
// O(log n(loglogDelta+1/xi)/logloglogDelta) energy" (Theorem 20).
func BenchmarkCDMerge(b *testing.B) {
	for _, n := range []int{12, 16, 24} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := graph.GNP(n, 6.0/float64(n), 17)
			p, err := cdmerge.NewParams(g.N(), g.MaxDegree(), 0.5)
			if err != nil {
				b.Fatal(err)
			}
			p = p.Tune(10, 3, g.N())
			report(b, func(seed uint64) (uint64, int) {
				out, err := cdmerge.Broadcast(g, 0, "m", p, seed)
				if err != nil {
					b.Fatal(err)
				}
				return out.Result.Slots, out.Result.MaxEnergy()
			})
		})
	}
}

// BenchmarkNoCDDiamTime is Table 1 row "randomized No-CD/CD:
// O(D^{1+eps} polylog n) time, O(polylog n) energy" (Theorem 16), on
// constant-diameter graphs where the contrast with Theta(n polylog)-time
// algorithms is visible.
func BenchmarkNoCDDiamTime(b *testing.B) {
	for _, n := range []int{16, 32, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := graph.Star(n)
			p, err := dtime.NewParams(radio.CD, g.N(), g.MaxDegree(), 2, 0.5)
			if err != nil {
				b.Fatal(err)
			}
			p = p.Tune(g.N(), 10, 6, 10, 1)
			report(b, func(seed uint64) (uint64, int) {
				out, err := dtime.Broadcast(g, 0, "m", p, seed)
				if err != nil {
					b.Fatal(err)
				}
				return out.Result.Slots, out.Result.MaxEnergy()
			})
		})
	}
}

// BenchmarkNoCDBoundedDegree is Table 1 row "randomized No-CD, Delta=O(1):
// O(n log n) time, O(log n) energy" (Corollary 13 via the Theorem 3
// simulation).
func BenchmarkNoCDBoundedDegree(b *testing.B) {
	for _, n := range []int{12, 16, 24} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := graph.Cycle(n)
			report(b, func(seed uint64) (uint64, int) {
				res, err := core.Broadcast(g, 0, core.WithAlgorithm(core.AlgoBoundedDegree),
					core.WithSeed(seed))
				if err != nil {
					b.Fatal(err)
				}
				return res.Slots, res.MaxEnergy()
			})
		})
	}
}

// BenchmarkPathBroadcast is Theorem 21 and Figure 1: 2n worst-case time,
// O(log n) expected per-vertex energy on paths.
func BenchmarkPathBroadcast(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := graph.Path(n)
			report(b, func(seed uint64) (uint64, int) {
				out, err := pathcast.Broadcast(g, 0, "m", pathcast.Params{}, seed, nil)
				if err != nil {
					b.Fatal(err)
				}
				return out.MaxReceiveSlot(), out.Result.MaxEnergy()
			})
		})
	}
}

// BenchmarkDetLocal is Table 1 row "deterministic LOCAL:
// O(n log n logN) time, O(log n logN) energy" (Theorem 25).
func BenchmarkDetLocal(b *testing.B) {
	for _, n := range []int{8, 12, 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := graph.GNP(n, 6.0/float64(n), 23)
			report(b, func(seed uint64) (uint64, int) {
				res, err := core.Broadcast(g, 0, core.WithModel(radio.Local),
					core.WithAlgorithm(core.AlgoDeterministic), core.WithSeed(seed))
				if err != nil {
					b.Fatal(err)
				}
				return res.Slots, res.MaxEnergy()
			})
		})
	}
}

// BenchmarkDetCD is Table 1 row "deterministic CD: O(N^2 n log n logN)
// time, O(log^3 N log n) energy" (Theorem 27).
func BenchmarkDetCD(b *testing.B) {
	for _, n := range []int{8, 12, 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := graph.GNP(n, 6.0/float64(n), 23)
			report(b, func(seed uint64) (uint64, int) {
				res, err := core.Broadcast(g, 0, core.WithModel(radio.CD),
					core.WithAlgorithm(core.AlgoDeterministic), core.WithSeed(seed))
				if err != nil {
					b.Fatal(err)
				}
				return res.Slots, res.MaxEnergy()
			})
		})
	}
}

// BenchmarkLowerBoundCD is Table 1 rows "any CD algorithm: Omega(log n)
// energy" / "No-CD: Omega(logDelta log n)" (Theorem 2): measured Broadcast
// energy on K_{2,k} against the single-hop LeaderElection time the
// reduction ties it to.
func BenchmarkLowerBoundCD(b *testing.B) {
	for _, k := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			g := graph.K2k(k)
			p := iterclust.NewParams(radio.CD, g.N(), g.MaxDegree())
			report(b, func(seed uint64) (uint64, int) {
				out, err := iterclust.Broadcast(g, 0, "m", p, seed)
				if err != nil {
					b.Fatal(err)
				}
				return out.Result.Slots, out.Result.MaxEnergy()
			})
		})
	}
}

// BenchmarkLeaderElectionCD measures the single-hop CD election the
// Theorem 2 reduction compares Broadcast energy against.
func BenchmarkLeaderElectionCD(b *testing.B) {
	for _, k := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			report(b, func(seed uint64) (uint64, int) {
				g := graph.Clique(k)
				outs := make([]leader.Outcome, k)
				pop := make([]radio.Device, k)
				for i := 0; i < k; i++ {
					pop[i].Proc = leader.ElectCDProc(1, true, k, 4000, &outs[i])
				}
				res, err := radio.RunDevices(radio.Config{Graph: g, Model: radio.CD, Seed: seed}, pop)
				if err != nil {
					b.Fatal(err)
				}
				return res.Slots, res.MaxEnergy()
			})
		})
	}
}

// BenchmarkLowerBoundLocalPath is Theorem 1: Omega(log n) worst-vertex
// energy on paths, matched by the path algorithm's O(log n).
func BenchmarkLowerBoundLocalPath(b *testing.B) {
	for _, n := range []int{64, 512} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := graph.Path(n)
			report(b, func(seed uint64) (uint64, int) {
				out, err := pathcast.Broadcast(g, 0, "m", pathcast.Params{}, seed, nil)
				if err != nil {
					b.Fatal(err)
				}
				return out.Result.Slots, out.Result.MaxEnergy()
			})
		})
	}
}

// BenchmarkPartition exercises Lemmas 14-15: Partition(beta) clustering
// cost and the cluster-graph diameter contraction.
func BenchmarkPartition(b *testing.B) {
	for _, beta := range []float64{0.25, 0.5} {
		b.Run(fmt.Sprintf("beta=%v", beta), func(b *testing.B) {
			g := graph.Grid(8, 8)
			p, err := partition.NewParams(radio.Local, g.N(), g.MaxDegree(), beta)
			if err != nil {
				b.Fatal(err)
			}
			var cd float64
			for i := 0; i < b.N; i++ {
				out, err := partition.Partition(g, p, uint64(i+1))
				if err != nil {
					b.Fatal(err)
				}
				cg, _ := out.ClusterGraph(g)
				if d, err := cg.Diameter(); err == nil {
					cd += float64(d)
				}
			}
			b.ReportMetric(cd/float64(b.N), "clusterDiam/op")
		})
	}
}

// BenchmarkBaselineDecay is the comparator: BGI decay broadcast — fast,
// but with per-vertex energy tracking elapsed time.
func BenchmarkBaselineDecay(b *testing.B) {
	for _, n := range []int{32, 128, 512} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := graph.Path(n)
			d, err := g.Diameter()
			if err != nil {
				b.Fatal(err)
			}
			p := baseline.NewParams(g.N(), g.MaxDegree(), d)
			report(b, func(seed uint64) (uint64, int) {
				out, err := baseline.Broadcast(g, 0, "m", p, seed, radio.NoCD)
				if err != nil {
					b.Fatal(err)
				}
				return out.Result.Slots, out.Result.MaxEnergy()
			})
		})
	}
}

// denseProc is the scheduler-bench device: 60 busy slots of randomized
// transmit/listen, as a resumable step proc the scheduler drives inline.
type denseProc struct {
	slots uint64
	s     uint64
}

func (p *denseProc) Step(ch radio.Channel, fb radio.Feedback) radio.Action {
	p.s++
	if p.s > p.slots {
		return radio.Halt()
	}
	if ch.Rand().Uint64()&3 == 0 {
		return radio.Transmit(p.s, p.s)
	}
	return radio.Listen(p.s)
}

// BenchmarkSchedulerDense256 measures the scheduler hot path on a
// 256-vertex graph: every device stays busy, so each slot forces a
// min-slot search and cohort collection over all pending requests. The
// simulator is reused across iterations — the Monte-Carlo shape the
// engine optimizes for — and the devices are inline step procs, so the
// bench isolates the engine's true per-action cost with zero goroutine
// park/wake.
func BenchmarkSchedulerDense256(b *testing.B) {
	const n = 256
	g := graph.GNP(n, 8.0/float64(n), 31)
	sim, err := radio.NewSimulator(g, radio.Config{Graph: g, Model: CDBench})
	if err != nil {
		b.Fatal(err)
	}
	procs := make([]denseProc, n)
	devs := make([]radio.Device, n)
	for v := 0; v < n; v++ {
		devs[v].Proc = &procs[v]
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for v := range procs {
			procs[v] = denseProc{slots: 60}
		}
		if _, err := sim.RunDevices(uint64(i), devs); err != nil {
			b.Fatal(err)
		}
	}
}

// sparseProc spreads its actions far apart (cohorts of size 1) and
// transmits non-constant integer payloads, interned through BoxInt so
// the engine's per-transmit boxing allocation disappears.
type sparseProc struct {
	n, idx uint64
	k      uint64
}

func (p *sparseProc) Step(ch radio.Channel, fb radio.Feedback) radio.Action {
	if p.k >= 40 {
		return radio.Halt()
	}
	s := p.k*p.n + p.idx + 1
	k := p.k
	p.k++
	if k&1 == 0 {
		return radio.Transmit(s, radio.BoxInt(ch, int(s)))
	}
	return radio.Listen(s)
}

// BenchmarkSchedulerSparse256 is the adversarial case for a linear-scan
// scheduler: 256 devices whose action slots are spread far apart, so
// nearly every cohort is a single device and the per-slot O(n) scans
// dominate. The min-heap brings each slot to O(log n); inline step
// procs remove the per-action park/wake, and BoxInt interning removes
// the non-constant-payload boxing allocation that used to dominate this
// bench's allocation profile.
func BenchmarkSchedulerSparse256(b *testing.B) {
	const n = 256
	g := graph.Path(n)
	sim, err := radio.NewSimulator(g, radio.Config{Graph: g, Model: CDBench})
	if err != nil {
		b.Fatal(err)
	}
	procs := make([]sparseProc, n)
	devs := make([]radio.Device, n)
	for v := 0; v < n; v++ {
		devs[v].Proc = &procs[v]
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for v := range procs {
			procs[v] = sparseProc{n: n, idx: uint64(v)}
		}
		if _, err := sim.RunDevices(uint64(i), devs); err != nil {
			b.Fatal(err)
		}
	}
}

// CDBench aliases the model used by the scheduler benchmarks so both
// stay in sync if the contention model is changed.
const CDBench = radio.CD

// BenchmarkSweepWorkers measures the Monte-Carlo engine's scaling with
// pool size: trials are independent, so throughput should grow
// near-linearly until GOMAXPROCS is saturated. Skipped in -short mode
// (CI runs the functional sweep tests instead).
func BenchmarkSweepWorkers(b *testing.B) {
	if testing.Short() {
		b.Skip("sweep scaling benchmark skipped in short mode")
	}
	spec := sweep.Spec{
		Topologies: []sweep.Topology{{Kind: "path", N: 64}},
		Models:     []radio.Model{radio.Local},
		Algorithms: []core.Algorithm{core.AlgoAuto},
		Trials:     256,
		MasterSeed: 1,
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := sweep.Run(spec, sweep.Options{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if rep.Cells[0].Completed != spec.Trials {
					b.Fatalf("only %d/%d trials completed", rep.Cells[0].Completed, spec.Trials)
				}
			}
			b.ReportMetric(float64(spec.Trials)*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
		})
	}
}

// BenchmarkSweepTelemetry measures the observability overhead on the
// sweep hot path: the same fixed matrix with telemetry disabled (nil
// recorder — every hook is a nil-receiver no-op) versus enabled (shard
// counters updated once per trial batch). The two trials/s figures
// should be indistinguishable; a gap means instrumentation leaked into
// the per-slot path.
func BenchmarkSweepTelemetry(b *testing.B) {
	spec := sweep.Spec{
		Topologies: []sweep.Topology{{Kind: "path", N: 32}},
		Models:     []radio.Model{radio.NoCD},
		Algorithms: []core.Algorithm{core.AlgoBaselineDecay},
		Trials:     64,
		MasterSeed: 1,
	}
	run := func(b *testing.B, rec *telemetry.Recorder) {
		for i := 0; i < b.N; i++ {
			rep, err := sweep.Run(spec, sweep.Options{Workers: 2, Telemetry: rec})
			if err != nil {
				b.Fatal(err)
			}
			if rep.Cells[0].Completed != spec.Trials {
				b.Fatalf("only %d/%d trials completed", rep.Cells[0].Completed, spec.Trials)
			}
		}
		b.ReportMetric(float64(spec.Trials)*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
	}
	b.Run("off", func(b *testing.B) { run(b, nil) })
	b.Run("on", func(b *testing.B) { run(b, telemetry.New()) })
}

// throughputProc is the substrate-bench device: 100 contended slots.
type throughputProc struct {
	s uint64
}

func (p *throughputProc) Step(ch radio.Channel, fb radio.Feedback) radio.Action {
	p.s++
	if p.s > 100 {
		return radio.Halt()
	}
	if ch.Rand().Uint64()&1 == 0 {
		return radio.Transmit(p.s, p.s)
	}
	return radio.Listen(p.s)
}

// BenchmarkSimulatorThroughput measures the substrate itself: device
// actions per second on a dense contention workload, with the simulator
// reused across iterations as a Monte-Carlo sweep would and the devices
// driven inline through the step ABI.
func BenchmarkSimulatorThroughput(b *testing.B) {
	g := graph.Clique(64)
	sim, err := radio.NewSimulator(g, radio.Config{Graph: g, Model: radio.CD})
	if err != nil {
		b.Fatal(err)
	}
	procs := make([]throughputProc, 64)
	devs := make([]radio.Device, 64)
	for v := 0; v < 64; v++ {
		devs[v].Proc = &procs[v]
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for v := range procs {
			procs[v] = throughputProc{}
		}
		if _, err := sim.RunDevices(uint64(i), devs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchSimulatorThroughput runs the same substrate workload
// through the lockstep batch engine, 8 lanes per call with the engine
// reused across iterations. runs/s is directly comparable with the solo
// BenchmarkSimulatorThroughput's iteration rate (each op here is 8
// lane-runs).
func BenchmarkBatchSimulatorThroughput(b *testing.B) {
	const n, w = 64, 8
	g := graph.Clique(n)
	bs, err := radio.NewBatchSimulator(g)
	if err != nil {
		b.Fatal(err)
	}
	procs := make([][]throughputProc, w)
	pops := make([][]radio.Device, w)
	seeds := make([]uint64, w)
	for l := 0; l < w; l++ {
		procs[l] = make([]throughputProc, n)
		pops[l] = make([]radio.Device, n)
		for v := 0; v < n; v++ {
			pops[l][v].Proc = &procs[l][v]
		}
	}
	cfg := radio.Config{Graph: g, Model: radio.CD}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for l := 0; l < w; l++ {
			seeds[l] = uint64(i*w + l)
			for v := range procs[l] {
				procs[l][v] = throughputProc{}
			}
		}
		_, errs, err := bs.RunBatch(cfg, seeds, pops)
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range errs {
			if e != nil {
				b.Fatal(e)
			}
		}
	}
	b.ReportMetric(float64(w)*float64(b.N)/b.Elapsed().Seconds(), "runs/s")
}

// BenchmarkBroadcastTrials measures trial-level batching where it pays:
// W seeded Theorem 16 trials on one topology, solo versus one
// BroadcastBatch call. The batch shares one plan — the uncached O(n*m)
// diameter computation, protocol constants, validation — across all W
// lanes and drives them in lockstep on one engine. trials/s is the
// comparable metric.
func BenchmarkBroadcastTrials(b *testing.B) {
	g := graph.Star(1024)
	const w = 16
	base := []core.Option{
		core.WithModel(radio.CD),
		core.WithAlgorithm(core.AlgoDiamTime),
		core.WithLeanScale(),
	}
	b.Run("solo", func(b *testing.B) {
		var sims radio.SimCache
		for i := 0; i < b.N; i++ {
			for t := 0; t < w; t++ {
				opts := append(append([]core.Option(nil), base...),
					core.WithSeed(uint64(i*w+t)), core.WithSimCache(&sims))
				if _, err := core.Broadcast(g, 0, opts...); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(w)*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
	})
	b.Run("batch16", func(b *testing.B) {
		var sims radio.SimCache
		opts := append(append([]core.Option(nil), base...), core.WithSimCache(&sims))
		seeds := make([]uint64, w)
		for i := 0; i < b.N; i++ {
			for t := range seeds {
				seeds[t] = uint64(i*w + t)
			}
			_, errs, err := core.BroadcastBatch(g, 0, seeds, opts...)
			if err != nil {
				b.Fatal(err)
			}
			for _, e := range errs {
				if e != nil {
					b.Fatal(e)
				}
			}
		}
		b.ReportMetric(float64(w)*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
	})
}
