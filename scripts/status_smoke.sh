#!/usr/bin/env bash
# status_smoke.sh — live observability smoke test.
#
# Starts an adaptive sweep with the full observability surface enabled
# (-status on an ephemeral port, -progress, -manifest, -events, -json),
# curls /status, /metrics, and /debug/pprof/ while the run is still in
# flight, and asserts via jq that the status document, the Prometheus
# exposition, the structured event log, and the run manifest are
# well-formed. A second run of the same spec with telemetry fully OFF
# (no status server, no progress, -manifest none — a nil recorder all
# the way down) must export a byte-identical JSON report: observability
# must never perturb results.
#
# Usage: scripts/status_smoke.sh [workdir]   (requires curl and jq)
set -euo pipefail

# curl_retry URL OUT — bounded retry with doubling backoff (8 attempts,
# 0.1s..2s, 5s per-request cap). The status server binds before the
# announcement line is written, but a heavily loaded CI box can still
# drop the first connection; one refused TCP handshake must not fail
# the smoke.
curl_retry() {
  local url="$1" out="$2" delay=0.1 attempt
  for attempt in $(seq 1 8); do
    if curl -sf --max-time 5 "$url" -o "$out" 2>/dev/null; then
      return 0
    fi
    sleep "$delay"
    delay=$(awk -v d="$delay" 'BEGIN { d *= 2; if (d > 2) d = 2; printf "%.2f", d }')
  done
  return 1
}

dir="${1:-$(mktemp -d)}"
mkdir -p "$dir"
bin="$dir/sweep"
go build -o "$bin" ./cmd/sweep

# The same matrix as resume_smoke, but single-worker and with a CI
# target tight enough that the run stays alive for a few seconds — long
# enough to poll the status endpoint mid-flight.
args=(-topo clique:8,12 -topo path:16,24 -algos baseline-decay
      -ci 0.0005 -ci-measure maxEnergy -min-trials 40 -max-trials 60000
      -batch 20 -seed 9 -workers 1)

echo "status_smoke: telemetry-off run"
"$bin" "${args[@]}" -json "$dir/off.json" -manifest none >/dev/null

echo "status_smoke: instrumented run with live status endpoint"
"$bin" "${args[@]}" -json "$dir/on.json" \
  -manifest "$dir/on.manifest.json" -status 127.0.0.1:0 -progress \
  -events "$dir/on.events.jsonl" \
  >/dev/null 2>"$dir/on.stderr" &
pid=$!

# The resolved ephemeral address is announced on stderr as
# "sweep: status endpoint on http://ADDR/status".
addr=""
for _ in $(seq 1 50); do
  addr=$(sed -n 's|^sweep: status endpoint on http://\([^/]*\)/status$|\1|p' "$dir/on.stderr" | head -1)
  [ -n "$addr" ] && break
  sleep 0.1
done
if [ -z "$addr" ]; then
  echo "status_smoke: FAIL — status endpoint never announced" >&2
  kill "$pid" 2>/dev/null || true
  exit 1
fi
echo "status_smoke: endpoint at $addr"

# Poll /status until a snapshot with committed trials arrives while the
# run is still alive — that is the "live during the run" assertion.
live=""
for _ in $(seq 1 100); do
  if ! kill -0 "$pid" 2>/dev/null; then break; fi
  if curl -sf --max-time 5 "http://$addr/status" -o "$dir/status.json" 2>/dev/null &&
     jq -e '.snapshot.trialsCommitted > 0 and (.cells | length) == 4' "$dir/status.json" >/dev/null 2>&1; then
    live=yes
    break
  fi
  sleep 0.1
done
if [ -z "$live" ]; then
  echo "status_smoke: FAIL — no live /status snapshot captured mid-run" >&2
  kill "$pid" 2>/dev/null || true
  exit 1
fi
echo "status_smoke: live snapshot — $(jq -c '{committed: .snapshot.trialsCommitted, inflight: .snapshot.batchesInFlight, cellsDone: .snapshot.cellsDone}' "$dir/status.json")"

# /metrics must serve a well-formed Prometheus text exposition on the
# same mux, mid-run: the right content type, HELP/TYPE lines, and a
# committed-trials counter that has already moved.
if ! curl -sf --max-time 5 -D "$dir/metrics.hdr" "http://$addr/metrics" -o "$dir/metrics.txt"; then
  echo "status_smoke: FAIL — /metrics not served" >&2
  kill "$pid" 2>/dev/null || true
  exit 1
fi
if ! grep -qi '^content-type: text/plain; version=0.0.4; charset=utf-8' "$dir/metrics.hdr"; then
  echo "status_smoke: FAIL — /metrics content type wrong" >&2
  cat "$dir/metrics.hdr" >&2
  kill "$pid" 2>/dev/null || true
  exit 1
fi
for want in \
  '^# HELP sweep_trials_committed_total ' \
  '^# TYPE sweep_trials_committed_total counter$' \
  '^# TYPE sweep_batch_seconds histogram$' \
  '^sweep_batch_seconds_bucket{le="+Inf"} ' \
  '^sweep_faults_injected_total{kind="crash"} '; do
  if ! grep -q "$want" "$dir/metrics.txt"; then
    echo "status_smoke: FAIL — /metrics lacks $want" >&2
    head -40 "$dir/metrics.txt" >&2
    kill "$pid" 2>/dev/null || true
    exit 1
  fi
done
committed=$(awk '$1 == "sweep_trials_committed_total" { print $2 }' "$dir/metrics.txt")
if ! awk -v c="${committed:-0}" 'BEGIN { exit !(c > 0) }'; then
  echo "status_smoke: FAIL — sweep_trials_committed_total = ${committed:-absent}, want > 0" >&2
  kill "$pid" 2>/dev/null || true
  exit 1
fi
echo "status_smoke: /metrics OK — $committed trials committed mid-run"

# pprof must be mounted on the same mux.
if ! curl_retry "http://$addr/debug/pprof/" /dev/null; then
  echo "status_smoke: FAIL — /debug/pprof/ not served" >&2
  kill "$pid" 2>/dev/null || true
  exit 1
fi
echo "status_smoke: /debug/pprof/ OK"

if ! wait "$pid"; then
  echo "status_smoke: FAIL — instrumented run exited non-zero" >&2
  exit 1
fi

# The manifest must exist, parse, and agree with the report on the
# deterministic facts: tool name, cell count, committed == total trials.
total=$(jq '.totalTrials' "$dir/on.json")
jq -e --argjson total "$total" '
  .tool == "sweep" and
  (.cells | length) == 4 and
  .snapshot.trialsCommitted == $total and
  (.phases | map(.name) | index("trials") != null) and
  ([.cells[].stop] | all(. == "ci" or . == "max-trials"))
' "$dir/on.manifest.json" >/dev/null || {
  echo "status_smoke: FAIL — manifest malformed or inconsistent with report" >&2
  jq . "$dir/on.manifest.json" >&2 || cat "$dir/on.manifest.json" >&2
  exit 1
}
echo "status_smoke: manifest OK — $total trials across $(jq '.cells | length' "$dir/on.manifest.json") cells"

# The event log must be JSONL with the envelope on every line and at
# least one event of each lifecycle kind this run exercises.
if ! jq -es 'all(.[]; (.event | type == "string") and (.t | type == "string"))' \
    "$dir/on.events.jsonl" >/dev/null; then
  echo "status_smoke: FAIL — event log has malformed lines" >&2
  head -5 "$dir/on.events.jsonl" >&2
  exit 1
fi
for kind in phase cell-start batch-commit cell-stop; do
  n=$(jq -s --arg k "$kind" '[.[] | select(.event == $k)] | length' "$dir/on.events.jsonl")
  if [ "$n" -lt 1 ]; then
    echo "status_smoke: FAIL — no \"$kind\" event logged" >&2
    jq -s 'group_by(.event) | map({(.[0].event): length}) | add' "$dir/on.events.jsonl" >&2
    exit 1
  fi
done
if ! jq -es '[.[] | select(.event == "cell-stop")] | length == 4 and all(.[]; .reason == "ci" or .reason == "max-trials")' \
    "$dir/on.events.jsonl" >/dev/null; then
  echo "status_smoke: FAIL — cell-stop events inconsistent with the 4-cell matrix" >&2
  exit 1
fi
echo "status_smoke: event log OK — $(wc -l < "$dir/on.events.jsonl") events, all four lifecycle kinds present"

# Observability must not perturb the experiment: telemetry-off and
# fully-instrumented runs export byte-identical reports.
if cmp -s "$dir/off.json" "$dir/on.json"; then
  echo "status_smoke: OK — instrumented report is byte-identical to the telemetry-off run"
else
  echo "status_smoke: FAIL — instrumented report diverges from the telemetry-off run" >&2
  diff "$dir/off.json" "$dir/on.json" | head -40 >&2 || true
  exit 1
fi
