#!/usr/bin/env bash
# status_smoke.sh — live observability smoke test.
#
# Starts an adaptive sweep with the full observability surface enabled
# (-status on an ephemeral port, -progress, -manifest, -json), curls
# /status and /debug/pprof/ while the run is still in flight, and
# asserts via jq that the status document and the run manifest are
# well-formed. A second run of the same spec with telemetry fully OFF
# (no status server, no progress, -manifest none — a nil recorder all
# the way down) must export a byte-identical JSON report: observability
# must never perturb results.
#
# Usage: scripts/status_smoke.sh [workdir]   (requires curl and jq)
set -euo pipefail

# curl_retry URL OUT — bounded retry with doubling backoff (8 attempts,
# 0.1s..2s, 5s per-request cap). The status server binds before the
# announcement line is written, but a heavily loaded CI box can still
# drop the first connection; one refused TCP handshake must not fail
# the smoke.
curl_retry() {
  local url="$1" out="$2" delay=0.1 attempt
  for attempt in $(seq 1 8); do
    if curl -sf --max-time 5 "$url" -o "$out" 2>/dev/null; then
      return 0
    fi
    sleep "$delay"
    delay=$(awk -v d="$delay" 'BEGIN { d *= 2; if (d > 2) d = 2; printf "%.2f", d }')
  done
  return 1
}

dir="${1:-$(mktemp -d)}"
mkdir -p "$dir"
bin="$dir/sweep"
go build -o "$bin" ./cmd/sweep

# The same matrix as resume_smoke, but single-worker and with a CI
# target tight enough that the run stays alive for a few seconds — long
# enough to poll the status endpoint mid-flight.
args=(-topo clique:8,12 -topo path:16,24 -algos baseline-decay
      -ci 0.0005 -ci-measure maxEnergy -min-trials 40 -max-trials 60000
      -batch 20 -seed 9 -workers 1)

echo "status_smoke: telemetry-off run"
"$bin" "${args[@]}" -json "$dir/off.json" -manifest none >/dev/null

echo "status_smoke: instrumented run with live status endpoint"
"$bin" "${args[@]}" -json "$dir/on.json" \
  -manifest "$dir/on.manifest.json" -status 127.0.0.1:0 -progress \
  >/dev/null 2>"$dir/on.stderr" &
pid=$!

# The resolved ephemeral address is announced on stderr as
# "sweep: status endpoint on http://ADDR/status".
addr=""
for _ in $(seq 1 50); do
  addr=$(sed -n 's|^sweep: status endpoint on http://\([^/]*\)/status$|\1|p' "$dir/on.stderr" | head -1)
  [ -n "$addr" ] && break
  sleep 0.1
done
if [ -z "$addr" ]; then
  echo "status_smoke: FAIL — status endpoint never announced" >&2
  kill "$pid" 2>/dev/null || true
  exit 1
fi
echo "status_smoke: endpoint at $addr"

# Poll /status until a snapshot with committed trials arrives while the
# run is still alive — that is the "live during the run" assertion.
live=""
for _ in $(seq 1 100); do
  if ! kill -0 "$pid" 2>/dev/null; then break; fi
  if curl -sf --max-time 5 "http://$addr/status" -o "$dir/status.json" 2>/dev/null &&
     jq -e '.snapshot.trialsCommitted > 0 and (.cells | length) == 4' "$dir/status.json" >/dev/null 2>&1; then
    live=yes
    break
  fi
  sleep 0.1
done
if [ -z "$live" ]; then
  echo "status_smoke: FAIL — no live /status snapshot captured mid-run" >&2
  kill "$pid" 2>/dev/null || true
  exit 1
fi
echo "status_smoke: live snapshot — $(jq -c '{committed: .snapshot.trialsCommitted, inflight: .snapshot.batchesInFlight, cellsDone: .snapshot.cellsDone}' "$dir/status.json")"

# pprof must be mounted on the same mux.
if ! curl_retry "http://$addr/debug/pprof/" /dev/null; then
  echo "status_smoke: FAIL — /debug/pprof/ not served" >&2
  kill "$pid" 2>/dev/null || true
  exit 1
fi
echo "status_smoke: /debug/pprof/ OK"

if ! wait "$pid"; then
  echo "status_smoke: FAIL — instrumented run exited non-zero" >&2
  exit 1
fi

# The manifest must exist, parse, and agree with the report on the
# deterministic facts: tool name, cell count, committed == total trials.
total=$(jq '.totalTrials' "$dir/on.json")
jq -e --argjson total "$total" '
  .tool == "sweep" and
  (.cells | length) == 4 and
  .snapshot.trialsCommitted == $total and
  (.phases | map(.name) | index("trials") != null) and
  ([.cells[].stop] | all(. == "ci" or . == "max-trials"))
' "$dir/on.manifest.json" >/dev/null || {
  echo "status_smoke: FAIL — manifest malformed or inconsistent with report" >&2
  jq . "$dir/on.manifest.json" >&2 || cat "$dir/on.manifest.json" >&2
  exit 1
}
echo "status_smoke: manifest OK — $total trials across $(jq '.cells | length' "$dir/on.manifest.json") cells"

# Observability must not perturb the experiment: telemetry-off and
# fully-instrumented runs export byte-identical reports.
if cmp -s "$dir/off.json" "$dir/on.json"; then
  echo "status_smoke: OK — instrumented report is byte-identical to the telemetry-off run"
else
  echo "status_smoke: FAIL — instrumented report diverges from the telemetry-off run" >&2
  diff "$dir/off.json" "$dir/on.json" | head -40 >&2 || true
  exit 1
fi
