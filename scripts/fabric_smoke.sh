#!/usr/bin/env bash
# fabric_smoke.sh — distributed-sweep fabric smoke test.
#
# Runs one adaptive matrix three ways through the real CLIs:
#
#   1. single machine:        sweep -checkpoint ... (the reference)
#   2. coordinator + workers: sweepd + two `sweep -worker` processes,
#      one of which is SIGKILLed mid-run (its leases must be reissued)
#
# and asserts that the fabric run's report JSON is byte-identical to
# the single-machine reference, and that the two manifests agree on
# every deterministic field (spec echo, adaptive parameters, committed
# trial counts, stop reasons, convergence traces — everything except
# the tool name and the timing/scheduling provenance).
#
# The coordinator runs fully instrumented (-status, -events): mid-run
# the smoke scrapes /metrics for fleet gauges, and post-run it checks
# the event log for the fabric lifecycle kinds (worker-join/leave,
# lease-grant) and the manifest's fleet table for worker identities.
#
# Usage: scripts/fabric_smoke.sh [workdir]   (requires curl and jq)
set -euo pipefail

dir="${1:-$(mktemp -d)}"
mkdir -p "$dir"
go build -o "$dir/sweep" ./cmd/sweep
go build -o "$dir/sweepd" ./cmd/sweepd

# The resume-smoke matrix: a CI target tight enough that the run lasts
# a few seconds — long enough to kill a worker while it holds leases.
args=(-topo clique:8,12 -topo path:16,24 -algos baseline-decay
      -ci 0.0015 -ci-measure maxEnergy -min-trials 40 -max-trials 30000
      -batch 20 -seed 9)

echo "fabric_smoke: single-machine reference run"
"$dir/sweep" "${args[@]}" -checkpoint "$dir/ref.ckpt" \
  -json "$dir/ref.json" -manifest "$dir/ref.manifest.json" \
  -events "$dir/ref.events.jsonl" >/dev/null

# The journaled reference run must log its checkpoint fsyncs.
if ! jq -es '[.[] | select(.event == "checkpoint-fsync")] | length > 0' \
    "$dir/ref.events.jsonl" >/dev/null; then
  echo "fabric_smoke: FAIL: journaled run logged no checkpoint-fsync events" >&2
  exit 1
fi

echo "fabric_smoke: coordinator + two workers (one SIGKILLed mid-run)"
"$dir/sweepd" "${args[@]}" -listen 127.0.0.1:0 -lease-timeout 5s \
  -json "$dir/fab.json" -manifest "$dir/fab.manifest.json" \
  -status 127.0.0.1:0 -events "$dir/fab.events.jsonl" \
  >/dev/null 2>"$dir/sweepd.stderr" &
dpid=$!

# The resolved ephemeral address is announced on stderr as
# "sweepd: coordinating on ADDR — ...".
addr=""
for _ in $(seq 1 50); do
  addr=$(sed -n 's/^sweepd: coordinating on \([^ ]*\) .*/\1/p' "$dir/sweepd.stderr" | head -1)
  [ -n "$addr" ] && break
  sleep 0.1
done
if [ -z "$addr" ]; then
  echo "fabric_smoke: FAIL: coordinator never announced its address" >&2
  cat "$dir/sweepd.stderr" >&2
  kill "$dpid" 2>/dev/null || true
  exit 1
fi

# The status endpoint is announced separately as
# "sweepd: status endpoint on http://ADDR/status (workers on /fabric)".
saddr=""
for _ in $(seq 1 50); do
  saddr=$(sed -n 's|^sweepd: status endpoint on http://\([^/]*\)/status.*|\1|p' "$dir/sweepd.stderr" | head -1)
  [ -n "$saddr" ] && break
  sleep 0.1
done
if [ -z "$saddr" ]; then
  echo "fabric_smoke: FAIL: status endpoint never announced" >&2
  cat "$dir/sweepd.stderr" >&2
  kill "$dpid" 2>/dev/null || true
  exit 1
fi

"$dir/sweep" -worker "$addr" -workers 2 2>"$dir/victim.stderr" &
victim=$!
"$dir/sweep" -worker "$addr" -workers 2 2>"$dir/survivor.stderr" &
survivor=$!

# Mid-run /metrics scrape: poll until the fleet is working — committed
# trials moving and per-worker gauges exported.
live=""
for _ in $(seq 1 100); do
  if ! kill -0 "$dpid" 2>/dev/null; then break; fi
  if curl -sf --max-time 5 "http://$saddr/metrics" -o "$dir/fab.metrics.txt" 2>/dev/null &&
     committed=$(awk '$1 == "sweep_trials_committed_total" { print $2 }' "$dir/fab.metrics.txt") &&
     awk -v c="${committed:-0}" 'BEGIN { exit !(c > 0) }' &&
     fleet=$(awk '$1 == "sweep_fabric_workers" { print $2 }' "$dir/fab.metrics.txt") &&
     awk -v f="${fleet:-0}" 'BEGIN { exit !(f > 0) }'; then
    live=yes
    break
  fi
  sleep 0.1
done
if [ -z "$live" ]; then
  echo "fabric_smoke: FAIL: no live /metrics scrape with fleet gauges captured mid-run" >&2
  kill "$dpid" 2>/dev/null || true
  exit 1
fi
for want in \
  '^# TYPE sweep_fabric_workers gauge$' \
  '^# TYPE sweep_fabric_worker_leases gauge$' \
  '^# TYPE sweep_lease_round_trip_seconds histogram$' \
  '^sweep_fabric_worker_leases{worker="' ; do
  if ! grep -q "$want" "$dir/fab.metrics.txt"; then
    echo "fabric_smoke: FAIL: /metrics lacks $want" >&2
    head -60 "$dir/fab.metrics.txt" >&2
    kill "$dpid" 2>/dev/null || true
    exit 1
  fi
done
echo "fabric_smoke: /metrics OK — $committed trials committed mid-run, fleet gauges live"

# Let the victim take leases, then SIGKILL it — no cleanup, its socket
# just dies. The coordinator must reissue its in-flight batches.
sleep 1
kill -9 "$victim" 2>/dev/null || true
wait "$victim" 2>/dev/null || true

if ! wait "$survivor"; then
  echo "fabric_smoke: FAIL: surviving worker exited non-zero" >&2
  cat "$dir/survivor.stderr" >&2
  exit 1
fi
if ! wait "$dpid"; then
  echo "fabric_smoke: FAIL: coordinator exited non-zero" >&2
  cat "$dir/sweepd.stderr" >&2
  exit 1
fi

echo "fabric_smoke: comparing report bytes"
if ! cmp "$dir/ref.json" "$dir/fab.json"; then
  echo "fabric_smoke: FAIL: fabric report differs from single-machine reference" >&2
  exit 1
fi

echo "fabric_smoke: comparing manifest deterministic sections"
# Everything deterministic must agree; only the tool name and the
# timing/scheduling fields (snapshot rates, wall-clocks, phases,
# statusAddr) may differ between sweep and sweepd.
det='{version, spec, adaptive,
      trialsCommitted: .snapshot.trialsCommitted,
      faultCrashes: (.snapshot.faultCrashes // 0),
      faultSleeps: (.snapshot.faultSleeps // 0),
      faultErasures: (.snapshot.faultErasures // 0),
      traceMeasures,
      cells: [.cells[] | {cell: .cell, label: .label, trials: .trials,
                          stop: .stop, trace: .trace}]}'
jq -S "$det" "$dir/ref.manifest.json" > "$dir/ref.det.json"
jq -S "$det" "$dir/fab.manifest.json" > "$dir/fab.det.json"
if ! diff -u "$dir/ref.det.json" "$dir/fab.det.json"; then
  echo "fabric_smoke: FAIL: manifest deterministic sections differ" >&2
  exit 1
fi

# The victim must have been noticed: the coordinator logs the lost
# connection and the returned leases.
if ! grep -q "worker .* left" "$dir/sweepd.stderr"; then
  echo "fabric_smoke: FAIL: coordinator never logged the killed worker" >&2
  cat "$dir/sweepd.stderr" >&2
  exit 1
fi

# The coordinator's event log must carry the fabric lifecycle: both
# workers joining, leases granted, and the victim's departure.
if ! jq -es 'all(.[]; (.event | type == "string") and (.t | type == "string"))' \
    "$dir/fab.events.jsonl" >/dev/null; then
  echo "fabric_smoke: FAIL: coordinator event log has malformed lines" >&2
  head -5 "$dir/fab.events.jsonl" >&2
  exit 1
fi
for check in \
  '[.[] | select(.event == "worker-join")] | length >= 2' \
  '[.[] | select(.event == "lease-grant")] | length >= 2' \
  '[.[] | select(.event == "worker-leave")] | length >= 1' \
  '[.[] | select(.event == "cell-stop")] | length == 4' \
  '[.[] | select(.event == "worker-join")] | all(.worker != "" and .addr != "" and .version != "")'; do
  if ! jq -es "$check" "$dir/fab.events.jsonl" >/dev/null; then
    echo "fabric_smoke: FAIL: event log check failed: $check" >&2
    jq -s 'group_by(.event) | map({(.[0].event): length}) | add' "$dir/fab.events.jsonl" >&2
    exit 1
  fi
done
echo "fabric_smoke: event log OK — $(wc -l < "$dir/fab.events.jsonl") events with fabric lifecycle kinds"

# The manifest's fleet table lists every worker with its code version
# and resolved remote address; the victim is flagged stale.
if ! jq -e '
  (.fleet | length) >= 2 and
  (.fleet | all(.name != "" and .addr != "" and .version != "")) and
  ([.fleet[] | select(.stale)] | length) >= 1 and
  ([.fleet[].snapshot.trialsRun] | add) >= .snapshot.trialsCommitted
' "$dir/fab.manifest.json" >/dev/null; then
  echo "fabric_smoke: FAIL: manifest fleet table malformed" >&2
  jq '.fleet' "$dir/fab.manifest.json" >&2
  exit 1
fi
echo "fabric_smoke: manifest fleet OK — $(jq '.fleet | length' "$dir/fab.manifest.json") workers, victim flagged stale"

echo "fabric_smoke: OK (report byte-identical, manifests agree, killed worker reissued)"
