#!/usr/bin/env bash
# fabric_smoke.sh — distributed-sweep fabric smoke test.
#
# Runs one adaptive matrix three ways through the real CLIs:
#
#   1. single machine:        sweep -checkpoint ... (the reference)
#   2. coordinator + workers: sweepd + two `sweep -worker` processes,
#      one of which is SIGKILLed mid-run (its leases must be reissued)
#
# and asserts that the fabric run's report JSON is byte-identical to
# the single-machine reference, and that the two manifests agree on
# every deterministic field (spec echo, adaptive parameters, committed
# trial counts, stop reasons, convergence traces — everything except
# the tool name and the timing/scheduling provenance).
#
# Usage: scripts/fabric_smoke.sh [workdir]   (requires jq)
set -euo pipefail

dir="${1:-$(mktemp -d)}"
mkdir -p "$dir"
go build -o "$dir/sweep" ./cmd/sweep
go build -o "$dir/sweepd" ./cmd/sweepd

# The resume-smoke matrix: a CI target tight enough that the run lasts
# a few seconds — long enough to kill a worker while it holds leases.
args=(-topo clique:8,12 -topo path:16,24 -algos baseline-decay
      -ci 0.0015 -ci-measure maxEnergy -min-trials 40 -max-trials 30000
      -batch 20 -seed 9)

echo "fabric_smoke: single-machine reference run"
"$dir/sweep" "${args[@]}" -checkpoint "$dir/ref.ckpt" \
  -json "$dir/ref.json" -manifest "$dir/ref.manifest.json" >/dev/null

echo "fabric_smoke: coordinator + two workers (one SIGKILLed mid-run)"
"$dir/sweepd" "${args[@]}" -listen 127.0.0.1:0 -lease-timeout 5s \
  -json "$dir/fab.json" -manifest "$dir/fab.manifest.json" \
  >/dev/null 2>"$dir/sweepd.stderr" &
dpid=$!

# The resolved ephemeral address is announced on stderr as
# "sweepd: coordinating on ADDR — ...".
addr=""
for _ in $(seq 1 50); do
  addr=$(sed -n 's/^sweepd: coordinating on \([^ ]*\) .*/\1/p' "$dir/sweepd.stderr" | head -1)
  [ -n "$addr" ] && break
  sleep 0.1
done
if [ -z "$addr" ]; then
  echo "fabric_smoke: FAIL: coordinator never announced its address" >&2
  cat "$dir/sweepd.stderr" >&2
  kill "$dpid" 2>/dev/null || true
  exit 1
fi

"$dir/sweep" -worker "$addr" -workers 2 2>"$dir/victim.stderr" &
victim=$!
"$dir/sweep" -worker "$addr" -workers 2 2>"$dir/survivor.stderr" &
survivor=$!

# Let the victim take leases, then SIGKILL it — no cleanup, its socket
# just dies. The coordinator must reissue its in-flight batches.
sleep 1
kill -9 "$victim" 2>/dev/null || true
wait "$victim" 2>/dev/null || true

if ! wait "$survivor"; then
  echo "fabric_smoke: FAIL: surviving worker exited non-zero" >&2
  cat "$dir/survivor.stderr" >&2
  exit 1
fi
if ! wait "$dpid"; then
  echo "fabric_smoke: FAIL: coordinator exited non-zero" >&2
  cat "$dir/sweepd.stderr" >&2
  exit 1
fi

echo "fabric_smoke: comparing report bytes"
if ! cmp "$dir/ref.json" "$dir/fab.json"; then
  echo "fabric_smoke: FAIL: fabric report differs from single-machine reference" >&2
  exit 1
fi

echo "fabric_smoke: comparing manifest deterministic sections"
# Everything deterministic must agree; only the tool name and the
# timing/scheduling fields (snapshot rates, wall-clocks, phases,
# statusAddr) may differ between sweep and sweepd.
det='{version, spec, adaptive,
      trialsCommitted: .snapshot.trialsCommitted,
      faultCrashes: (.snapshot.faultCrashes // 0),
      faultSleeps: (.snapshot.faultSleeps // 0),
      faultErasures: (.snapshot.faultErasures // 0),
      traceMeasures,
      cells: [.cells[] | {cell: .cell, label: .label, trials: .trials,
                          stop: .stop, trace: .trace}]}'
jq -S "$det" "$dir/ref.manifest.json" > "$dir/ref.det.json"
jq -S "$det" "$dir/fab.manifest.json" > "$dir/fab.det.json"
if ! diff -u "$dir/ref.det.json" "$dir/fab.det.json"; then
  echo "fabric_smoke: FAIL: manifest deterministic sections differ" >&2
  exit 1
fi

# The victim must have been noticed: the coordinator logs the lost
# connection and the returned leases.
if ! grep -q "worker .* left" "$dir/sweepd.stderr"; then
  echo "fabric_smoke: FAIL: coordinator never logged the killed worker" >&2
  cat "$dir/sweepd.stderr" >&2
  exit 1
fi

echo "fabric_smoke: OK (report byte-identical, manifests agree, killed worker reissued)"
