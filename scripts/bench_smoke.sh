#!/usr/bin/env bash
# bench_smoke.sh — run the engine perf-smoke benchmark trio and write the
# results as JSON (ns/op, B/op, allocs/op per benchmark), one data point
# of the repo's benchmark trajectory. Usage:
#
#   ./scripts/bench_smoke.sh [out.json]
#
# CI runs this with -benchtime=100x: fast enough for every push, stable
# enough to catch order-of-magnitude regressions in the scheduler and
# simulator hot paths.
set -euo pipefail
out="${1:-BENCH_pr3.json}"

go test -run '^$' \
  -bench 'BenchmarkSchedulerDense256$|BenchmarkSchedulerSparse256$|BenchmarkSimulatorThroughput$' \
  -benchmem -benchtime=100x . |
  awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
    /^Benchmark/ {
      name = $1
      sub(/^Benchmark/, "", name)
      sub(/-[0-9]+$/, "", name)
      rows[++n] = sprintf("    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}",
                          name, $3, $5, $7)
    }
    /^cpu:/ { cpu = substr($0, 6); gsub(/^[ \t]+|[ \t]+$/, "", cpu) }
    END {
      if (n == 0) { print "bench_smoke: no benchmark output parsed" > "/dev/stderr"; exit 1 }
      print "{"
      printf "  \"date\": \"%s\",\n", date
      printf "  \"cpu\": \"%s\",\n", cpu
      printf "  \"benchtime\": \"100x\",\n"
      print "  \"benchmarks\": ["
      for (i = 1; i <= n; i++) printf "%s%s\n", rows[i], (i < n ? "," : "")
      print "  ]"
      print "}"
    }' >"$out"

echo "bench_smoke: wrote $out" >&2
cat "$out"
