#!/usr/bin/env bash
# bench_smoke.sh — run the engine perf-smoke benchmark trio and write the
# results as JSON (ns/op, B/op, allocs/op per benchmark), one data point
# of the repo's benchmark trajectory. Usage:
#
#   ./scripts/bench_smoke.sh [out.json] [baseline.json]
#
# After writing out.json the script diffs it against baseline.json
# (default: the committed BENCH_pr4.json reference) and prints the
# per-benchmark ns/op and allocs/op deltas. The deltas themselves are
# REPORT-ONLY — they never fail the run — so the perf trajectory is
# visible in every CI log without shared-runner noise gating merges.
# A measured benchmark MISSING from the baseline does fail the run:
# a silent skip would hide a new benchmark from the trajectory forever.
#
# CI runs this with -benchtime=100x: fast enough for every push, stable
# enough to catch order-of-magnitude regressions in the scheduler and
# simulator hot paths.
set -euo pipefail
out="${1:-bench-smoke.json}"
baseline="${2:-BENCH_pr4.json}"

go test -run '^$' \
  -bench 'BenchmarkSchedulerDense256$|BenchmarkSchedulerSparse256$|BenchmarkSimulatorThroughput$|BenchmarkBatchSimulatorThroughput$|BenchmarkBroadcastTrials$|BenchmarkSweepTelemetry$' \
  -benchmem -benchtime=100x . |
  awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
    /^Benchmark/ {
      name = $1
      sub(/^Benchmark/, "", name)
      sub(/-[0-9]+$/, "", name)
      # Measurements are keyed by their unit token, not column position:
      # benchmarks with custom metrics (runs/s, trials/s) interleave extra
      # value/unit pairs between ns/op and the -benchmem columns.
      ns = by = al = "null"
      for (i = 3; i < NF; i += 2) {
        if ($(i + 1) == "ns/op") ns = $i
        else if ($(i + 1) == "B/op") by = $i
        else if ($(i + 1) == "allocs/op") al = $i
      }
      rows[++n] = sprintf("    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}",
                          name, ns, by, al)
    }
    /^cpu:/ { cpu = substr($0, 6); gsub(/^[ \t]+|[ \t]+$/, "", cpu) }
    END {
      if (n == 0) { print "bench_smoke: no benchmark output parsed" > "/dev/stderr"; exit 1 }
      print "{"
      printf "  \"date\": \"%s\",\n", date
      printf "  \"cpu\": \"%s\",\n", cpu
      printf "  \"benchtime\": \"100x\",\n"
      print "  \"benchmarks\": ["
      for (i = 1; i <= n; i++) printf "%s%s\n", rows[i], (i < n ? "," : "")
      print "  ]"
      print "}"
    }' >"$out"

echo "bench_smoke: wrote $out" >&2
cat "$out"

# Report-only trajectory diff against the committed baseline. Within a
# baseline file, later arrays win (BENCH_prN.json lists its own
# "benchmarks" after any historical "baseline_main" block), so the diff
# compares against that PR's measured point.
if [[ -f "$baseline" ]]; then
  echo
  echo "bench_smoke: delta vs $baseline (report-only; shared-runner noise ~10%)"
  awk '
    function fieldnum(line, key,   r) {
      if (match(line, "\"" key "\": [0-9.]+")) {
        r = substr(line, RSTART, RLENGTH)
        sub(/.*: /, "", r)
        return r + 0
      }
      return -1
    }
    /"name"/ {
      if (match($0, /"name": "[^"]+"/)) {
        name = substr($0, RSTART + 9, RLENGTH - 10)
        ns = fieldnum($0, "ns_per_op")
        al = fieldnum($0, "allocs_per_op")
        if (ns < 0) next # summary rows (e.g. vs_baseline) carry no measurements
        if (FILENAME == ARGV[1]) { bns[name] = ns; bal[name] = al }
        else {
          cns[name] = ns; cal[name] = al
          if (!(name in seen)) { seen[name] = 1; order[++m] = name }
        }
      }
    }
    END {
      printf "  %-28s %14s %14s %9s %9s\n", "benchmark", "base ns/op", "now ns/op", "ns", "allocs"
      missing = 0
      for (i = 1; i <= m; i++) {
        name = order[i]
        if (!(name in bns)) {
          printf "  %-28s %14s %14d %9s %9s\n", name, "MISSING", cns[name], "n/a", "n/a"
          missing++
          continue
        }
        dns = bns[name] > 0 ? sprintf("%+.1f%%", 100 * (cns[name] - bns[name]) / bns[name]) : "n/a"
        dal = bal[name] > 0 ? sprintf("%+.1f%%", 100 * (cal[name] - bal[name]) / bal[name]) : (cal[name] == 0 ? "+0.0%" : "n/a")
        printf "  %-28s %14d %14d %9s %9s\n", name, bns[name], cns[name], dns, dal
      }
      if (missing > 0) {
        printf "bench_smoke: %d measured benchmark(s) missing from baseline — add them to the baseline file\n", missing > "/dev/stderr"
        exit 1
      }
    }' "$baseline" "$out"
else
  echo "bench_smoke: baseline $baseline not found; skipping delta report" >&2
fi
