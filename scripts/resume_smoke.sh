#!/usr/bin/env bash
# resume_smoke.sh — checkpoint/resume round-trip smoke test.
#
# Runs the same adaptive sweep twice: once uninterrupted, once
# SIGKILLed mid-run and resumed from its journal. The two aggregate
# JSON exports must be byte-identical — the experiment controller's
# determinism contract, exercised end to end through the real CLI and a
# real kill -9 (torn trailing journal records included).
#
# Usage: scripts/resume_smoke.sh [workdir]
set -euo pipefail

dir="${1:-$(mktemp -d)}"
mkdir -p "$dir"
bin="$dir/sweep"
go build -o "$bin" ./cmd/sweep

# A mixed easy/hard matrix under the cheap decay comparator: enough
# work that the kill lands mid-run, little enough that the smoke stays
# fast. The spec must be identical in both runs.
args=(-topo clique:8,12 -topo path:16,24 -algos baseline-decay
      -ci 0.0015 -ci-measure maxEnergy -min-trials 40 -max-trials 30000
      -batch 20 -seed 9)

echo "resume_smoke: clean run"
"$bin" "${args[@]}" -json "$dir/clean.json" >/dev/null

echo "resume_smoke: killed run"
rm -f "$dir/run.ckpt" # -checkpoint refuses to overwrite an existing journal
"$bin" "${args[@]}" -checkpoint "$dir/run.ckpt" -json "$dir/unused.json" >/dev/null 2>&1 &
pid=$!
# Give the run time to journal a few batches, then kill it dead.
sleep 1
kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true
if [ ! -s "$dir/run.ckpt" ]; then
  echo "resume_smoke: FAIL — no journal written before the kill" >&2
  exit 1
fi
echo "resume_smoke: journal has $(stat -c %s "$dir/run.ckpt" 2>/dev/null || stat -f %z "$dir/run.ckpt") bytes after SIGKILL"

echo "resume_smoke: resuming"
"$bin" -resume "$dir/run.ckpt" -json "$dir/resumed.json" >/dev/null

if cmp -s "$dir/clean.json" "$dir/resumed.json"; then
  echo "resume_smoke: OK — resumed aggregate JSON is byte-identical to the uninterrupted run"
else
  echo "resume_smoke: FAIL — resumed aggregate JSON diverges from the uninterrupted run" >&2
  diff "$dir/clean.json" "$dir/resumed.json" | head -40 >&2 || true
  exit 1
fi
