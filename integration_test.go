// Cross-cutting integration tests: the public API against randomized
// topology / model / algorithm combinations, plus end-to-end invariants
// that no single package can check alone.
package repro_test

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/radio"
)

// TestBroadcastMatrix runs the fast algorithms across a topology matrix
// and asserts completion and basic measurement sanity.
func TestBroadcastMatrix(t *testing.T) {
	topologies := []*graph.Graph{
		graph.Path(14), graph.Cycle(12), graph.Star(14),
		graph.Grid(3, 4), graph.RandomTree(14, 3), graph.K2k(6),
	}
	configs := []struct {
		name string
		opts []core.Option
	}{
		{"local", []core.Option{core.WithModel(radio.Local)}},
		{"cd", []core.Option{core.WithModel(radio.CD)}},
		{"nocd", []core.Option{core.WithModel(radio.NoCD)}},
		{"baseline", []core.Option{core.WithAlgorithm(core.AlgoBaselineDecay)}},
	}
	for _, g := range topologies {
		for _, c := range configs {
			ok := false
			var last *core.Result
			for seed := uint64(1); seed <= 3 && !ok; seed++ {
				res, err := core.Broadcast(g, 0, append(c.opts, core.WithSeed(seed))...)
				if err != nil {
					t.Fatalf("%s/%s: %v", g.Name(), c.name, err)
				}
				last = res
				ok = res.AllInformed()
			}
			if !ok {
				t.Errorf("%s/%s: broadcast never completed", g.Name(), c.name)
				continue
			}
			if last.Slots == 0 {
				t.Errorf("%s/%s: zero slots", g.Name(), c.name)
			}
			if last.MaxEnergy() == 0 && g.N() > 1 {
				t.Errorf("%s/%s: zero energy", g.Name(), c.name)
			}
		}
	}
}

// TestBroadcastFromEverySource checks source-position independence on an
// asymmetric topology.
func TestBroadcastFromEverySource(t *testing.T) {
	g := graph.Lollipop(4, 6)
	for src := 0; src < g.N(); src++ {
		res, err := core.Broadcast(g, src, core.WithModel(radio.Local), core.WithSeed(uint64(src)+1))
		if err != nil {
			t.Fatalf("source %d: %v", src, err)
		}
		if !res.AllInformed() {
			t.Errorf("source %d: incomplete", src)
		}
	}
}

// TestBroadcastPropertyRandomGraphs is the repo-wide property test: for
// random connected graphs and seeds, the default broadcast informs
// everyone and energy never exceeds time.
func TestBroadcastPropertyRandomGraphs(t *testing.T) {
	f := func(rawN uint8, rawSeed uint16) bool {
		n := int(rawN)%12 + 4
		g := graph.GNP(n, 0.4, uint64(rawSeed))
		res, err := core.Broadcast(g, int(rawSeed)%n,
			core.WithModel(radio.Local), core.WithSeed(uint64(rawSeed)+1))
		if err != nil {
			return false
		}
		if !res.AllInformed() {
			return false
		}
		return uint64(res.MaxEnergy()) <= res.Slots
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 64}); err != nil {
		t.Error(err)
	}
}

// TestEnergySlotInvariantRegression pins the exact quick-check input that
// exposed the full-duplex double-count: rawN=0xf0, rawSeed=0x8149 maps to
// GNP(4, 0.4, 33097) — which happens to be a path, so AlgoAuto routes the
// LOCAL run to the full-duplex path algorithm — broadcast from source 1.
// Under the buggy 2-units-per-TransmitListen accounting this produced
// MaxEnergy 6 > Slots 5.
func TestEnergySlotInvariantRegression(t *testing.T) {
	g := graph.GNP(4, 0.4, 33097)
	res, err := core.Broadcast(g, 1, core.WithModel(radio.Local), core.WithSeed(33098))
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllInformed() {
		t.Error("broadcast incomplete")
	}
	if uint64(res.MaxEnergy()) > res.Slots {
		t.Errorf("awake-slot invariant violated: MaxEnergy %d > Slots %d", res.MaxEnergy(), res.Slots)
	}
}

// TestEnergyNeverExceedsSlotBudget: a device cannot be awake more often
// than there are slots. Full duplex is one awake slot (energy 1), so the
// bound is exactly Slots — no factor 2.
func TestEnergyNeverExceedsSlotBudget(t *testing.T) {
	g := graph.Path(24)
	res, err := core.Broadcast(g, 0, core.WithModel(radio.Local), core.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	for v, e := range res.Energy {
		if uint64(e) > res.Slots {
			t.Errorf("vertex %d: energy %d exceeds slots %d", v, e, res.Slots)
		}
	}
}

// TestSeedReproducibilityAcrossAPI: the same configuration twice gives
// bit-identical measurements through the public API.
func TestSeedReproducibilityAcrossAPI(t *testing.T) {
	g := graph.GNP(16, 0.3, 9)
	run := func() *core.Result {
		res, err := core.Broadcast(g, 0, core.WithModel(radio.CD), core.WithSeed(77))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Slots != b.Slots {
		t.Errorf("slots differ: %d vs %d", a.Slots, b.Slots)
	}
	for v := range a.Energy {
		if a.Energy[v] != b.Energy[v] {
			t.Errorf("energy of %d differs", v)
		}
	}
}

// TestModelEnergyOrdering: on the same graph and algorithm family, CD
// energy is at most No-CD energy (collision detection only helps) —
// checked as a statistical majority over seeds rather than per-run.
func TestModelEnergyOrdering(t *testing.T) {
	g := graph.GNP(20, 0.25, 4)
	wins := 0
	const trials = 3
	for seed := uint64(1); seed <= trials; seed++ {
		cd, err := core.Broadcast(g, 0, core.WithModel(radio.CD),
			core.WithAlgorithm(core.AlgoIterClust), core.WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		nocd, err := core.Broadcast(g, 0, core.WithModel(radio.NoCD),
			core.WithAlgorithm(core.AlgoIterClust), core.WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		if cd.MaxEnergy() < nocd.MaxEnergy() {
			wins++
		}
	}
	if wins < trials {
		t.Errorf("CD cheaper than No-CD in only %d/%d trials", wins, trials)
	}
}
