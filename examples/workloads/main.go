// Example workloads: a walkthrough of the pluggable workload subsystem.
// It lists the registry (every scenario's name, description and
// parameter schema), then runs each built-in through the sweep engine:
//
//   - broadcast: the engine's default, unchanged single-source behavior;
//   - msrc: k-source broadcast on a cycle, where the per-source informed
//     fronts show how the copies split the ring;
//   - leader: single-hop election on cliques, the paper's Lemma 8
//     subroutine, with the randomized and deterministic families side by
//     side;
//   - tradeoff: the Theorem 16 beta dial on a random geometric graph,
//     one matrix cell per beta grid point.
//
// Every sweep uses the same positional seed contract, so each table is
// bit-identical for any worker count.
package main

import (
	"fmt"
	"os"

	"repro/internal/radio"
	"repro/internal/sweep"
	"repro/internal/workload"
)

func run(title string, spec sweep.Spec) {
	fmt.Println(title)
	rep, err := sweep.Run(spec, sweep.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(rep.Table())
	fmt.Println()
}

func main() {
	fmt.Println("Registered workloads:")
	for _, name := range workload.Names() {
		w, err := workload.Lookup(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("  %-10s %s\n", w.Name(), w.Doc())
		for _, p := range w.Params() {
			def := p.Default
			if def == "" {
				def = "unset"
			}
			fmt.Printf("      %-10s %s (default %s)\n", p.Name, p.Doc, def)
		}
	}
	fmt.Println()

	run("broadcast — the default workload (historical sweep behavior):",
		sweep.Spec{
			Topologies: []sweep.Topology{{Kind: "path", N: 32}, {Kind: "star", N: 32}},
			Models:     []radio.Model{radio.Local},
			Trials:     100,
			MasterSeed: 1,
		})

	run("msrc — 1, 2 and 4 sources racing around a cycle:",
		sweep.Spec{
			Topologies:     []sweep.Topology{{Kind: "cycle", N: 32}},
			Models:         []radio.Model{radio.Local},
			Workload:       "msrc",
			WorkloadParams: map[string]string{"k": "1,2,4"},
			Trials:         50,
			MasterSeed:     2,
		})

	run("leader — Lemma 8's single-hop election subroutine on cliques:",
		sweep.Spec{
			Topologies:     []sweep.Topology{{Kind: "clique", N: 16}, {Kind: "clique", N: 64}},
			Models:         []radio.Model{radio.CD, radio.NoCD},
			Workload:       "leader",
			WorkloadParams: map[string]string{"proto": "rand,det"},
			Trials:         50,
			MasterSeed:     3,
		})

	run("tradeoff — Theorem 16's beta dial on a unit-disk graph:",
		sweep.Spec{
			Topologies: []sweep.Topology{{Kind: "rgg", N: 24, Seed: 7}},
			Models:     []radio.Model{radio.CD},
			Workload:   "tradeoff",
			Trials:     5,
			MasterSeed: 4,
			Lean:       true,
		})

	fmt.Println("Each cell's seeds derive from its matrix position (topology,")
	fmt.Println("model, algorithm, parameter point), so every table above is")
	fmt.Println("bit-identical for any worker count.")
}
