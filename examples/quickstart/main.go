// Quickstart: broadcast a message across a random multi-hop radio network
// and read off the paper's two complexity measures — time (slots) and
// energy (max transmit+listen count per device).
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/radio"
)

func main() {
	// A 64-vertex connected random network; vertex 0 broadcasts.
	g := graph.GNP(64, 0.1, 42)
	res, err := core.Broadcast(g, 0,
		core.WithModel(radio.NoCD),
		core.WithMessage("hello, multi-hop world"),
		core.WithSeed(7),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topology:   %s (Delta=%d)\n", g.Name(), g.MaxDegree())
	fmt.Printf("algorithm:  %s in the %s model\n", res.Algorithm, res.Model)
	fmt.Printf("complete:   %v\n", res.AllInformed())
	fmt.Printf("time:       %d slots\n", res.Slots)
	fmt.Printf("energy:     max %d per device (total %d)\n", res.MaxEnergy(), res.TotalEnergy())
	fmt.Println()
	fmt.Println("Devices slept through almost the whole schedule — that is the")
	fmt.Println("entire point of energy-aware broadcast.")
}
