// Longpath: the Section 8 special case — a chain of relay nodes. Runs the
// provably optimal path algorithm (Theorem 21: 2n worst-case time,
// O(log n) expected per-vertex energy) and prints the per-vertex energy
// profile plus a compact Figure-1-style timeline.
package main

import (
	"fmt"
	"log"

	"repro/internal/graph"
	"repro/internal/pathcast"
	"repro/internal/radio"
)

func main() {
	const n = 48
	g := graph.Path(n)
	var transmissions []radio.Event
	out, err := pathcast.Broadcast(g, 0, "payload", pathcast.Params{}, 9, func(ev radio.Event) {
		if ev.Kind == radio.EventTransmit {
			transmissions = append(transmissions, ev)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("path of %d relays; delivery completed at slot %d (bound 2n' = %d)\n",
		n, out.MaxReceiveSlot(), 2*nextPow2(n))
	fmt.Printf("total transmissions: %d; max per-vertex energy: %d\n\n",
		len(transmissions), out.Result.MaxEnergy())

	fmt.Println("vertex : energy : first-holds-payload slot")
	for v := 0; v < n; v += 4 {
		fmt.Printf("%6d : %6d : %d\n", v, out.Result.Energy[v], out.Devices[v].ReceivedAt)
	}
	fmt.Println()
	fmt.Println("Blocking vertices (large B) delay the payload but shield everyone")
	fmt.Println("downstream from synchronization chatter — the Figure 1 dynamic.")
}

func nextPow2(x int) int {
	v := 1
	for v < x {
		v *= 2
	}
	return v
}
