// Stepproc: the step-machine device ABI in miniature. Every device is a
// resumable step function (radio.Proc) the scheduler drives inline —
// zero goroutines, zero park/wake per action. Structured devices build
// their step machines from the Cont combinators instead of hand-rolled
// state structs; one run mixes both styles.
//
// The network is a star: the center listens, the leaves run the
// classical decay pattern until the center has heard one of them.
package main

import (
	"fmt"
	"log"

	"repro/internal/graph"
	"repro/internal/radio"
)

// leafProc is a hand-written step machine: transmit, then survive each
// following slot with probability 1/2 — the decay pattern. State lives
// in the struct; Step is called once per action with the feedback of
// the previous one.
type leafProc struct {
	payload any
	slot    uint64
	dead    bool
}

func (p *leafProc) Step(ch radio.Channel, fb radio.Feedback) radio.Action {
	if p.dead || p.slot >= 8 {
		return radio.Halt()
	}
	if p.slot > 0 && ch.Rand().Uint64()&1 == 0 {
		return radio.Halt() // decay: drop out with probability 1/2
	}
	p.slot++
	return radio.Transmit(p.slot, p.payload)
}

func main() {
	g := graph.Star(9) // vertex 0 is the hub, 1..8 the leaves
	heard := -1

	devs := make([]radio.Device, g.N())
	// The hub is written with the Cont combinators: listen in slots 1..8
	// until something is received. Each blocking-style call site becomes
	// a closure; no state enum needed.
	devs[0].Proc = radio.ContProc(func(ch radio.Channel) radio.Cont {
		var listen func(s uint64) radio.Cont
		listen = func(s uint64) radio.Cont {
			if s > 8 {
				return nil
			}
			return radio.Recv(s, func(fb radio.Feedback) radio.Cont {
				if fb.Status == radio.Received {
					heard = fb.Payload.(int)
					return nil
				}
				return listen(s + 1)
			})
		}
		return listen(1)
	})
	for v := 1; v < g.N(); v++ {
		devs[v].Proc = &leafProc{payload: v * 100}
	}

	res, err := radio.RunDevices(radio.Config{Graph: g, Model: radio.NoCD, Seed: 3}, devs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hub heard:  %d\n", heard)
	fmt.Printf("time:       %d slots, %d device actions\n", res.Slots, res.Events)
	fmt.Printf("energy:     max %d per device\n", res.MaxEnergy())
	fmt.Println()
	fmt.Println("No device ever owned a goroutine: the scheduler stepped their")
	fmt.Println("state machines inline, which is what makes million-trial")
	fmt.Println("Monte-Carlo sweeps run at memory speed (see BENCH_pr6.json).")
}
