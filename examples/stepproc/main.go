// Stepproc: the coroutine-style device ABI in miniature. A device can
// be a resumable step function (radio.Proc) that the scheduler drives
// inline — zero goroutines, zero park/wake per action — or a legacy
// blocking function (radio.Program) on its own goroutine; one run mixes
// both, and the measured results are identical either way.
//
// The network is a star: the center listens, the leaves run the
// classical decay pattern until the center has heard one of them.
package main

import (
	"fmt"
	"log"

	"repro/internal/graph"
	"repro/internal/radio"
)

// leafProc is a hand-written step machine: transmit, then survive each
// following slot with probability 1/2 — the decay pattern. State lives
// in the struct; Step is called once per action with the feedback of
// the previous one.
type leafProc struct {
	payload any
	slot    uint64
	dead    bool
}

func (p *leafProc) Step(ch radio.Channel, fb radio.Feedback) radio.Action {
	if p.dead || p.slot >= 8 {
		return radio.Halt()
	}
	if p.slot > 0 && ch.Rand().Uint64()&1 == 0 {
		return radio.Halt() // decay: drop out with probability 1/2
	}
	p.slot++
	return radio.Transmit(p.slot, p.payload)
}

func main() {
	g := graph.Star(9) // vertex 0 is the hub, 1..8 the leaves
	heard := -1

	devs := make([]radio.Device, g.N())
	// The hub stays on the legacy blocking ABI — ported and unported
	// devices share one run.
	devs[0].Program = func(e *radio.Env) {
		for s := uint64(1); s <= 8; s++ {
			if fb := e.Listen(s); fb.Status == radio.Received {
				heard = fb.Payload.(int)
				return
			}
		}
	}
	for v := 1; v < g.N(); v++ {
		devs[v].Proc = &leafProc{payload: v * 100}
	}

	res, err := radio.RunDevices(radio.Config{Graph: g, Model: radio.NoCD, Seed: 3}, devs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hub heard:  %d\n", heard)
	fmt.Printf("time:       %d slots, %d device actions\n", res.Slots, res.Events)
	fmt.Printf("energy:     max %d per device\n", res.MaxEnergy())
	fmt.Println()
	fmt.Println("The eight leaves never owned a goroutine: the scheduler stepped")
	fmt.Println("their state machines inline, which is what makes million-trial")
	fmt.Println("Monte-Carlo sweeps run at memory speed (see BENCH_pr4.json).")
}
