// Sensornet: the paper's motivating scenario — battery-powered sensors
// where transceiver usage dominates energy draw. A pipeline-monitoring
// deployment is a chain of relay sensors: exactly the Section 8 special
// case, where the paper gives a provably optimal algorithm. We compare
// it against the classical decay broadcast on the same chain.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/radio"
)

func main() {
	// 128 sensors strung along a pipeline; the head node broadcasts.
	g := graph.Path(128)
	fmt.Printf("pipeline of %d relay sensors\n\n", g.N())

	efficient, err := core.Broadcast(g, 0, core.WithModel(radio.Local), core.WithSeed(5))
	if err != nil {
		log.Fatal(err)
	}
	decay, err := core.Broadcast(g, 0, core.WithAlgorithm(core.AlgoBaselineDecay), core.WithSeed(5))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-26s %10s %12s %10s\n", "algorithm", "slots", "max energy", "complete")
	fmt.Printf("%-26s %10d %12d %10v\n", "path algorithm (Thm 21)",
		efficient.Slots, efficient.MaxEnergy(), efficient.AllInformed())
	fmt.Printf("%-26s %10d %12d %10v\n", "decay baseline",
		decay.Slots, decay.MaxEnergy(), decay.AllInformed())
	fmt.Println()
	fmt.Printf("Comparable completion time, but the most-drained sensor spends %.0fx\n",
		float64(decay.MaxEnergy())/float64(efficient.MaxEnergy()))
	fmt.Println("less energy under the paper's algorithm: per-vertex energy is")
	fmt.Println("O(log n) instead of growing with the waiting time. On general")
	fmt.Println("graphs the same gap opens asymptotically (polylog vs linear).")
}
