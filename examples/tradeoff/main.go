// Tradeoff: Theorem 16's continuous time/energy dial. Sweeps beta (the
// partition rate, standing in for eps via beta = log^{-1/eps} n) on a
// low-diameter network and prints the achieved (time, energy) pairs,
// together with the two fixed points: iterative clustering (slow, lean)
// and the decay baseline (fast, hungry).
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dtime"
	"repro/internal/graph"
	"repro/internal/radio"
)

func main() {
	g := graph.Star(48)
	d, err := g.Diameter()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %s (D=%d)\n\n", g.Name(), d)
	fmt.Printf("%-28s %12s %12s\n", "configuration", "slots", "max energy")

	for _, beta := range []float64{0.0625, 0.125, 0.25} {
		p, err := dtime.NewParamsBeta(radio.CD, g.N(), g.MaxDegree(), d, beta)
		if err != nil {
			log.Fatal(err)
		}
		p = p.Tune(g.N(), 0, 6, 10, 1) // lean C/CL, natural epoch counts
		out, err := dtime.Broadcast(g, 0, "m", p, 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Theorem 16, beta=%-8.4f   %12d %12d (informed: %v)\n",
			beta, out.Result.Slots, out.Result.MaxEnergy(), out.AllInformed())
	}

	ic, err := core.Broadcast(g, 0, core.WithModel(radio.CD), core.WithSeed(3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s %12d %12d\n", "iterclust (Theorem 12)", ic.Slots, ic.MaxEnergy())

	base, err := core.Broadcast(g, 0, core.WithAlgorithm(core.AlgoBaselineDecay), core.WithSeed(3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s %12d %12d\n", "decay baseline", base.Slots, base.MaxEnergy())
	fmt.Println()
	fmt.Println("Larger beta => fewer, coarser partition rounds (less time, more")
	fmt.Println("contention); the paper's eps knob moves along the same frontier.")
}
