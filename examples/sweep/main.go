// Example sweep: run a small Monte-Carlo matrix through the
// internal/sweep engine — the programmatic counterpart of cmd/sweep —
// and show the reproducibility contract: the aggregate is identical no
// matter how many workers execute the trials.
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/radio"
	"repro/internal/sweep"
)

func main() {
	spec := sweep.Spec{
		Topologies: []sweep.Topology{
			{Kind: "path", N: 32},
			{Kind: "star", N: 32},
			{Kind: "gnp", N: 32, P: 0.25, Seed: 11},
		},
		Models:     []radio.Model{radio.Local},
		Algorithms: []core.Algorithm{core.AlgoAuto},
		Trials:     200,
		MasterSeed: 1,
	}

	serial, err := sweep.Run(spec, sweep.Options{Workers: 1})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	parallel, err := sweep.Run(spec, sweep.Options{Workers: 8})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Println("600 trials, LOCAL model, master seed 1:")
	fmt.Println()
	fmt.Print(parallel.Table())
	fmt.Println()
	if serial.Table() == parallel.Table() {
		fmt.Println("1 worker and 8 workers agree bit-for-bit: seeds derive from")
		fmt.Println("trial position, not scheduling.")
	} else {
		fmt.Println("BUG: worker count changed the aggregate!")
		os.Exit(1)
	}
}
