// Package repro reproduces "The Energy Complexity of Broadcast" by
// Chang, Dani, Hayes, He, Li and Pettie (PODC 2018, arXiv:1710.01800):
// energy-aware Broadcast algorithms for multi-hop radio networks under
// the No-CD, CD, CD* and LOCAL collision models, both randomized and
// deterministic, together with the discrete-event radio-network simulator
// they run on, lower-bound experiment harnesses, the classical decay
// baseline, a parallel Monte-Carlo sweep engine, and a benchmark suite
// regenerating the shape of every row of the paper's Table 1 and its
// Figure 1.
//
// # Energy model
//
// Energy is awake-slot count, exactly as the paper defines it: a device
// is charged 1 for every slot in which it is not idle — transmitting,
// listening, or both at once (full duplex). A TransmitListen slot
// therefore costs 1 unit, not 2, although the Transmits/Listens action
// counters still advance by one each. This gives the repo-wide invariant
// MaxEnergy() <= Slots, which the integration tests enforce on random
// graphs.
//
// # Engine architecture
//
// internal/radio executes devices against a slot-synchronous scheduler
// through a single coroutine-style ABI: a device is a radio.Proc, a
// resumable step function Step(ch, feedback) -> Action that the
// scheduler drives inline on its own goroutine — no per-device
// goroutine, no park/wake per action, just one function call per
// device decision. The paper's algorithms are slot-driven state
// machines by construction, and every protocol package ships a native
// step machine; deeply nested passes (detcast, cdmerge, iterclust's
// cluster phases) are written against radio.Cont, a
// continuation-passing layer over the same interface, and procs nest
// under virtual channels (coloring's Theorem 3 simulation) by plain
// composition.
//
// Cohorts are ordered (slot, then device index) by a min-heap, with a
// lockstep fast path when every live device acts in the same slot, so
// the event stream is deterministic and pinned byte-for-byte by the
// golden trace test in internal/radio/testdata.
//
// Because every device is a pure step function, one scheduler can also
// advance W independent trials of the same topology in lockstep:
// radio.BatchSimulator runs W lanes over one shared CSR graph, each
// lane's slot sequence byte-identical to a solo run. The batch path
// surfaces as core.BroadcastBatch (one plan — diameter, protocol
// constants, validation — shared across all W lanes), the
// workload.BatchRunner interface, and the sweep engine's Spec.BatchW
// knob (CLI -batchw): a pure throughput dial, bit-identical at every
// width.
//
// Transmit payloads are interned in per-device mailbox cells for exactly
// one slot (listeners resolve them at delivery; the cells are cleared
// when the slot completes, so large payloads are collectable mid-run),
// small non-constant integers can be boxed allocation-free through
// radio.BoxInt's simulator-wide interning table, and collision
// resolution walks the topology's cached CSR adjacency — sorted by
// graph-construction invariant — with model-aware early exit.
//
// The engine is reusable: radio.NewSimulator preallocates envs,
// mailboxes, random streams and scheduler scratch once, and
// Run/RunDevices resets everything per run, allocating only the Result.
// The sweep engine keeps one radio.SimCache per worker (threaded
// through core.WithSimCache), so thousands of Monte-Carlo trials on
// one topology stop churning the allocator. BENCH_pr4.json records
// the step-ABI reference measurement (5.6-6.3x over the deleted PR-3
// goroutine engine with -97% to -99% allocations); BENCH_pr6.json
// adds the batching point — 2.2x trials/s on the plan-heavy Theorem
// 16 workload at BatchW=16 (BenchmarkBroadcastTrials), with the
// substrate itself at parity (BenchmarkBatchSimulatorThroughput) and
// the solo hot loop at 0 allocs/op.
//
// # Monte-Carlo sweeps
//
// internal/sweep runs a declarative matrix of topologies x models x
// algorithms x workload-parameter points, thousands of trials at a
// time, on a worker pool. Its reproducible-seed contract: every trial's
// seed derives only from the master seed and the trial's position in
// the matrix (sweep.TrialSeed), never from scheduling, so aggregate
// JSON/CSV output is bit-identical for any worker count or GOMAXPROCS.
// The cmd/sweep CLI exposes the matrix with a compact flag syntax, e.g.
//
//	sweep -topo path:64,128 -topo gnp:32:p=0.25 \
//	      -models local,nocd -algos auto -trials 1000 -json out.json
//
// # Fault model
//
// internal/fault makes robustness a first-class sweep dimension: three
// deterministic fault kinds injected at the engine's slot boundary —
// crash-stop (a device halts forever and is charged nothing further),
// sleep faults (a device is forced idle, its action suppressed, for a
// window of slots), and lossy slots (a delivery that would have
// succeeded is erased for one listener). Fault decisions come from a
// dedicated positional hash stream (fault.Plan.Fires(device, slot)),
// derived from the trial seed on a reserved child index disjoint from
// every device stream, and consume no protocol randomness: a plan at
// rate 0 reproduces the golden slot trace and golden sweep report byte
// for byte, and at any rate the injected fault set is a pure function
// of (seed, device, slot) — bit-identical between the solo and batch
// engines at every -batchw, and for any worker count. The awake-slot
// invariant MaxEnergy() <= Slots survives injection, since faults only
// ever remove awake slots.
//
// Faulted broadcast and msrc cells additionally run a same-seed
// fault-free twin and report graceful-degradation columns — success,
// informedFrac, energyOverhead (signed, vs the twin), wastedAwake —
// which are CI-eligible stopping targets for adaptive runs. The sweep
// matrix gains an innermost fault axis (CLI: repeated
// -fault kind:rates[:w=window]), fault labels appear in reports, CSV
// and cell telemetry only when a spec is active, injected-fault
// counters land in telemetry snapshots and the manifest's
// deterministic section, and the checkpoint journal carries per-batch
// fault counts so resumed runs rebuild identical totals. The journal
// frame parser itself is fuzzed (internal/experiment's
// FuzzJournalRead): corrupted checkpoints are detected and re-run,
// never wrongly resumed.
//
// # Adaptive runs and checkpoint/resume
//
// internal/experiment layers an adaptive controller above the sweep
// engine: cells run in trial batches, each cell maintains mergeable
// Welford moment state (internal/stats.Moments) per measure, and stops
// independently once every targeted measure's Student-t relative CI
// half-width is within the goal — dense cells that converge in hundreds
// of trials release their workers to the long-path cells that need tens
// of thousands. Stop decisions are evaluated only on batch-ordered
// prefix merges, so each cell's committed trial count — and the report's
// serialized bytes — are identical for any worker count. With a
// checkpoint configured, every completed batch is appended to a
// CRC-framed, fsync'd journal; positional seeding means a batch's
// identity is just its trial range, so resuming after a crash (even a
// SIGKILL that tears the trailing record) re-runs only unjournaled
// batches and produces aggregate JSON byte-identical to an
// uninterrupted run. The CLI spelling is
//
//	sweep -topo path:128,256 -models nocd,cd \
//	      -ci 0.01 -ci-measure slots,maxEnergy \
//	      -min-trials 200 -max-trials 200000 \
//	      -checkpoint run.ckpt -json out.json
//	sweep -resume run.ckpt -json out.json   # after a kill
//
// Workloads declare per-measure CI eligibility metadata
// (workload.CIMeasures): conditional columns like leader's
// success-only election slot are rejected as stopping targets.
//
// # Observability
//
// internal/telemetry instruments the sweep worker pool, the adaptive
// controller, and the batch engine without perturbing either results
// or performance: a nil *telemetry.Recorder no-ops every hook, and a
// live one is touched once per trial batch — per-worker padded shards
// of atomic counters merged only on read, never on the per-slot path
// (BenchmarkSweepTelemetry pins on/off parity; the simulator hot loop
// stays 0 allocs/op either way). On top of the counters the recorder
// keeps per-cell convergence traces (relative CI half-width per
// committed batch of an adaptive run), phase timings, and mergeable
// power-of-two latency histograms (batch execution, checkpoint fsync,
// fabric lease round-trip; recording is one bits.Len64 and an atomic
// add, 0 allocs/op). cmd/sweep and cmd/sweepd surface it as -status
// addr (live JSON snapshot at /status, a dependency-free Prometheus
// text exposition at /metrics — counters, gauges, and the latency
// histograms — plus net/http/pprof on the same mux), -progress
// (one-line stderr reporter with ETA from the trial-commit rate),
// -events path (a JSONL flight recorder: one line per lifecycle event
// — cell start/stop with reason, batch commits, checkpoint fsyncs,
// phase transitions, and on a coordinator worker join/leave and lease
// grant/steal/release — appended as it happens), and a run manifest —
// spec, seeds, worker/batch config, per-cell trials, wall-clock and
// stop reasons, phase timings — written next to every -json report as
// <report>.manifest.json (or to -manifest; "none" disables). The
// manifest's deterministic fields (committed counts, labels, stop
// reasons, traces) are bit-identical for any worker count and batch
// width, like the reports they describe; timings, speculation
// counters, latency histograms, and the fleet table are explicitly
// excluded from that pin. scripts/status_smoke.sh exercises the whole
// surface end to end in CI, including a mid-run /metrics scrape,
// jq-validating the event log, and byte-comparing an instrumented
// run's report against a telemetry-off run's.
//
// # Distributed sweeps
//
// internal/fabric splits one run across machines without giving up a
// single determinism guarantee: a coordinator (cmd/sweepd) owns the
// experiment — spec, adaptive stopping decisions, checkpoint journal —
// and hands out (cell, lo, hi) batch leases over a length-prefixed
// TCP/JSON protocol to workers started with `sweep -worker addr`.
// Workers build their own Runner from the handshook spec (seeds are
// positional, so both sides resolve the identical trial stream), fold
// executed batches into records (experiment.FoldBatch) with moment
// state in a stable binary encoding (stats wire codec), and stream
// them back; the coordinator admits results through the same
// batch-ordered prefix-merge rule the local drive loop uses
// (experiment.LeaseController). Report JSON and the manifest's
// deterministic section are byte-identical to a single-machine run at
// any worker count. Fault tolerance is lease-based: workers silent
// past the lease timeout are evicted and their batches reissued, a
// SIGKILLed worker's dead socket returns its leases immediately,
// outstanding batches are duplicated to idle workers near the end of a
// run (admission deduplicates, so a twice-run batch merges exactly
// once), and workers redial with bounded backoff across coordinator
// restarts, which resume from the journal. Both sides stamp their code
// version (telemetry.CodeVersion) into the handshake and mixed
// versions are refused — byte-identity across machines is only claimed
// at one code version. Observability is fleet-wide: each worker runs a
// process-lifetime Recorder and ships its merged snapshot inside every
// heartbeat and result frame, and the coordinator folds the shards
// into its own Snapshot (telemetry.WorkerShard) so /status, /metrics
// (with per-worker lease gauges), the manifest's fleet table — name,
// resolved address, code version, last shard — and the -events log
// cover every machine; an evicted worker's last shard is retained and
// flagged stale, and a re-joining worker's counters resume
// monotonically. scripts/fabric_smoke.sh runs the whole story in CI:
// coordinator plus two workers, one SIGKILLed mid-run, a live /metrics
// scrape, event-log and fleet-table validation, report byte-compared
// against the single-machine reference.
//
// # Workloads
//
// The per-trial scenario is pluggable: internal/workload keeps a
// registry of scenarios, each exposing a name, a parameter schema, and
// a Run(graph, point, seed, opts) contract returning the measured
// columns. Four are built in:
//
//   - broadcast: single-source broadcast (the default; its reports are
//     byte-identical with the pre-workload engine);
//   - msrc: k-source broadcast via core.WithSources, reporting the
//     per-source informed fronts (core.Result.InformedBy);
//   - leader: single-hop leader election over internal/leader — the
//     paper's Lemma 8 subroutine — measuring success rate, election
//     slot, agreement and energy;
//   - tradeoff: Theorem 16's continuous time/energy dial over
//     internal/dtime, one matrix cell per beta (or eps) grid value.
//
// Grid-valued parameters (comma lists) expand into one matrix cell per
// point, and the cell index — including the point — feeds the seed
// derivation, so workload sweeps inherit the bit-identical-aggregates
// guarantee. The CLI spelling is
//
//	sweep -topo clique:16,64 -models cd,nocd \
//	      -workload leader -wparam proto=rand,det -trials 1000
//
// See internal/sweep/README.md for the registry contract and
// examples/workloads for a walkthrough.
//
// Entry points:
//
//   - internal/core: the Broadcast façade over every algorithm
//     (single- and multi-source);
//   - internal/radio: the simulator (time slots, collision semantics,
//     per-device awake-slot energy metering, min-heap slot scheduler);
//   - internal/sweep: the parallel Monte-Carlo experiment engine;
//   - internal/experiment: the adaptive CI-stopping controller with
//     journaled checkpoint/resume above it;
//   - internal/workload: the pluggable scenario registry it fans out
//     over;
//   - internal/fault: the deterministic fault-injection plans behind
//     the sweep matrix's fault axis;
//   - internal/telemetry: the zero-overhead-when-disabled run
//     instrumentation behind -status, -progress and run manifests;
//   - cmd/energybench, cmd/sweep, cmd/pathtrace, cmd/broadcastcli: the
//     evaluation suite, the matrix sweep CLI, the Figure 1 regenerator,
//     and a one-shot CLI;
//   - bench_test.go: testing.B benchmarks, one per experiment, plus
//     scheduler and sweep-scaling microbenchmarks.
//
// See DESIGN.md for the system inventory and the per-experiment index,
// and EXPERIMENTS.md for measured results against the paper's claims.
package repro
