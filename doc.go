// Package repro reproduces "The Energy Complexity of Broadcast" by
// Chang, Dani, Hayes, He, Li and Pettie (PODC 2018, arXiv:1710.01800):
// energy-aware Broadcast algorithms for multi-hop radio networks under
// the No-CD, CD, CD* and LOCAL collision models, both randomized and
// deterministic, together with the discrete-event radio-network simulator
// they run on, lower-bound experiment harnesses, the classical decay
// baseline, and a benchmark suite regenerating the shape of every row of
// the paper's Table 1 and its Figure 1.
//
// Entry points:
//
//   - internal/core: the Broadcast façade over every algorithm;
//   - internal/radio: the simulator (time slots, collision semantics,
//     per-device energy metering);
//   - cmd/energybench, cmd/pathtrace, cmd/broadcastcli: the evaluation
//     suite, the Figure 1 regenerator, and a one-shot CLI;
//   - bench_test.go: testing.B benchmarks, one per experiment.
//
// See DESIGN.md for the system inventory and the per-experiment index,
// and EXPERIMENTS.md for measured results against the paper's claims.
package repro
