// Package repro reproduces "The Energy Complexity of Broadcast" by
// Chang, Dani, Hayes, He, Li and Pettie (PODC 2018, arXiv:1710.01800):
// energy-aware Broadcast algorithms for multi-hop radio networks under
// the No-CD, CD, CD* and LOCAL collision models, both randomized and
// deterministic, together with the discrete-event radio-network simulator
// they run on, lower-bound experiment harnesses, the classical decay
// baseline, a parallel Monte-Carlo sweep engine, and a benchmark suite
// regenerating the shape of every row of the paper's Table 1 and its
// Figure 1.
//
// # Energy model
//
// Energy is awake-slot count, exactly as the paper defines it: a device
// is charged 1 for every slot in which it is not idle — transmitting,
// listening, or both at once (full duplex). A TransmitListen slot
// therefore costs 1 unit, not 2, although the Transmits/Listens action
// counters still advance by one each. This gives the repo-wide invariant
// MaxEnergy() <= Slots, which the integration tests enforce on random
// graphs.
//
// # Monte-Carlo sweeps
//
// internal/sweep runs a declarative matrix of topologies x models x
// algorithms x sizes, thousands of trials at a time, on a worker pool.
// Its reproducible-seed contract: every trial's seed derives only from
// the master seed and the trial's position in the matrix
// (sweep.TrialSeed), never from scheduling, so aggregate JSON/CSV output
// is bit-identical for any worker count or GOMAXPROCS. The cmd/sweep CLI
// exposes the matrix with a compact flag syntax, e.g.
//
//	sweep -topo path:64,128 -topo gnp:32:p=0.25 \
//	      -models local,nocd -algos auto -trials 1000 -json out.json
//
// Entry points:
//
//   - internal/core: the Broadcast façade over every algorithm;
//   - internal/radio: the simulator (time slots, collision semantics,
//     per-device awake-slot energy metering, min-heap slot scheduler);
//   - internal/sweep: the parallel Monte-Carlo experiment engine;
//   - cmd/energybench, cmd/sweep, cmd/pathtrace, cmd/broadcastcli: the
//     evaluation suite, the matrix sweep CLI, the Figure 1 regenerator,
//     and a one-shot CLI;
//   - bench_test.go: testing.B benchmarks, one per experiment, plus
//     scheduler and sweep-scaling microbenchmarks.
//
// See DESIGN.md for the system inventory and the per-experiment index,
// and EXPERIMENTS.md for measured results against the paper's claims.
package repro
