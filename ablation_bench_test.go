// Ablation benchmarks for the design choices DESIGN.md calls out:
//
//   - the Remark 9 pre-check (CD receivers/senders leave irrelevant
//     SR-communication windows after O(1) slots) — the mechanism behind
//     Lemma 10's O(d + log n) CD energy;
//   - the Lemma 8 ACK slot (senders stop once their unique receiver is
//     served);
//   - decay phase count (failure probability vs energy in Lemma 7).
//
// Each reports energy metrics so `benchstat`-style comparison shows what
// the optimization buys.
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/srcomm"
)

// runCDWindow runs one CD SR-communication window on a long path where
// only one end hosts a sender-receiver pair: with the pre-check, all the
// far-away receivers drop out immediately.
func runCDWindow(b *testing.B, p srcomm.CDParams, seed uint64) (*radio.Result, bool) {
	b.Helper()
	const n = 32
	g := graph.Path(n)
	got := make([]any, n)
	ok := make([]bool, n)
	procs := make([]radio.Proc, n)
	for v := 0; v < n; v++ {
		switch v {
		case 0:
			procs[v] = srcomm.CDSendProc(1, p, "m")
		default:
			// Every other vertex is a would-be receiver; only vertex 1
			// has a sender neighbor.
			procs[v] = srcomm.CDReceiveProc(1, p, &got[v], &ok[v])
		}
	}
	res, err := radio.RunDevices(radio.Config{Graph: g, Model: radio.CD, Seed: seed},
		radio.Procs(procs))
	if err != nil {
		b.Fatal(err)
	}
	return res, ok[1]
}

// BenchmarkAblationPrecheck compares CD SR-communication energy with and
// without the Remark 9 relevance pre-check.
func BenchmarkAblationPrecheck(b *testing.B) {
	for _, precheck := range []bool{true, false} {
		b.Run(fmt.Sprintf("precheck=%v", precheck), func(b *testing.B) {
			p := srcomm.CDParams{Delta: 2, Epochs: srcomm.CDEpochsForFailure(32, 2),
				Precheck: precheck}
			var total, maxE, delivered float64
			for i := 0; i < b.N; i++ {
				res, got := runCDWindow(b, p, uint64(i+1))
				total += float64(res.TotalEnergy())
				maxE += float64(res.MaxEnergy())
				if got {
					delivered++
				}
			}
			b.ReportMetric(total/float64(b.N), "totalEnergy/op")
			b.ReportMetric(maxE/float64(b.N), "maxEnergy/op")
			b.ReportMetric(delivered/float64(b.N), "delivered/op")
		})
	}
}

// BenchmarkAblationAck compares sender energy with and without the
// Lemma 8 special-case ACK slot (single sender, single receiver, long
// window).
func BenchmarkAblationAck(b *testing.B) {
	for _, ack := range []bool{true, false} {
		b.Run(fmt.Sprintf("ack=%v", ack), func(b *testing.B) {
			g := graph.Path(2)
			p := srcomm.CDParams{Delta: 1, Epochs: 100, Ack: ack}
			var senderE float64
			for i := 0; i < b.N; i++ {
				var got any
				var ok bool
				procs := []radio.Proc{
					srcomm.CDSendProc(1, p, "m"),
					srcomm.CDReceiveProc(1, p, &got, &ok),
				}
				res, err := radio.RunDevices(radio.Config{Graph: g, Model: radio.CD,
					Seed: uint64(i + 1)}, radio.Procs(procs))
				if err != nil {
					b.Fatal(err)
				}
				senderE += float64(res.Energy[0])
			}
			b.ReportMetric(senderE/float64(b.N), "senderEnergy/op")
		})
	}
}

// BenchmarkAblationDecayPhases sweeps the decay phase count: energy is
// linear in phases, delivery failures vanish once phases reach the
// w.h.p. regime (Lemma 7's f = exp(-Theta(phases))).
func BenchmarkAblationDecayPhases(b *testing.B) {
	for _, phases := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("phases=%d", phases), func(b *testing.B) {
			const k = 16
			g := graph.Star(k + 1)
			p := srcomm.DecayParams{Delta: k, Phases: phases}
			var maxE, delivered float64
			for i := 0; i < b.N; i++ {
				var got any
				var ok bool
				procs := make([]radio.Proc, k+1)
				procs[0] = srcomm.DecayReceiveProc(1, p, &got, &ok)
				for j := 1; j <= k; j++ {
					procs[j] = srcomm.DecaySendProc(1, p, j)
				}
				res, err := radio.RunDevices(radio.Config{Graph: g, Model: radio.NoCD,
					Seed: uint64(i + 1)}, radio.Procs(procs))
				if err != nil {
					b.Fatal(err)
				}
				maxE += float64(res.MaxEnergy())
				if ok {
					delivered++
				}
			}
			b.ReportMetric(maxE/float64(b.N), "maxEnergy/op")
			b.ReportMetric(delivered/float64(b.N), "delivered/op")
		})
	}
}
