package sweep

import (
	"bytes"
	"encoding/csv"
	"errors"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/radio"
)

func rawSpec() Spec {
	return Spec{
		Topologies: []Topology{{Kind: "path", N: 8}, {Kind: "star", N: 9}},
		Models:     []radio.Model{radio.Local},
		Algorithms: []core.Algorithm{core.AlgoAuto},
		Trials:     12,
		MasterSeed: 7,
	}
}

// TestRawExportDeterministicAcrossWorkers pins the raw export contract:
// the streamed per-trial CSV is byte-identical for every worker count,
// because the writer goroutine restores (cell, trial) order.
func TestRawExportDeterministicAcrossWorkers(t *testing.T) {
	spec := rawSpec()
	var want []byte
	for _, workers := range []int{1, 2, 7} {
		var buf bytes.Buffer
		if _, err := Run(spec, Options{Workers: workers, Raw: &buf}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if want == nil {
			want = buf.Bytes()
			continue
		}
		if !bytes.Equal(want, buf.Bytes()) {
			t.Fatalf("workers=%d: raw export differs from single-worker export", workers)
		}
	}
}

// TestRawExportContent checks the row layout against the aggregate
// report: one row per (cell, trial) in order, with the seeds the
// positional derivation prescribes and an informed count consistent
// with completion.
func TestRawExportContent(t *testing.T) {
	spec := rawSpec()
	var buf bytes.Buffer
	rep, err := Run(spec, Options{Raw: &buf})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	wantHeader := "cell,trial,seed,slots,maxEnergy,totalEnergy,events,informed,completed,err"
	if got := strings.Join(rows[0], ","); got != wantHeader {
		t.Fatalf("header = %q, want %q", got, wantHeader)
	}
	body := rows[1:]
	if len(body) != len(rep.Cells)*spec.Trials {
		t.Fatalf("%d rows for %d cells x %d trials", len(body), len(rep.Cells), spec.Trials)
	}
	for i, row := range body {
		cell, trial := i/spec.Trials, i%spec.Trials
		if row[0] != strconv.Itoa(cell) || row[1] != strconv.Itoa(trial) {
			t.Fatalf("row %d is (%s,%s), want (%d,%d)", i, row[0], row[1], cell, trial)
		}
		wantSeed := strconv.FormatUint(TrialSeed(spec.MasterSeed, cell, trial), 10)
		if row[2] != wantSeed {
			t.Fatalf("row %d seed = %s, want %s", i, row[2], wantSeed)
		}
		informed, err := strconv.Atoi(row[7])
		if err != nil {
			t.Fatalf("row %d informed = %q", i, row[7])
		}
		n := rep.Cells[cell].N
		if row[8] == "true" && informed != n {
			t.Fatalf("row %d: completed but informed %d of %d", i, informed, n)
		}
		if informed < 1 || informed > n {
			t.Fatalf("row %d: informed %d outside [1, %d]", i, informed, n)
		}
	}
}

// brokenSink always errors, exercising the raw writer's error
// propagation (workers must not block on a broken sink).
type brokenSink struct{}

func (brokenSink) Write([]byte) (int, error) {
	return 0, errors.New("sink broke")
}

func TestRawExportWriteError(t *testing.T) {
	spec := rawSpec()
	_, err := Run(spec, Options{Workers: 4, Raw: brokenSink{}})
	if err == nil || !strings.Contains(err.Error(), "raw export") {
		t.Fatalf("want raw export error, got %v", err)
	}
}
