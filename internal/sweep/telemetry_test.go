package sweep

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/telemetry"
)

func telemetrySpec(batchw int) Spec {
	return Spec{
		Topologies: []Topology{{Kind: "clique", N: 6}, {Kind: "path", N: 8}},
		Trials:     24,
		MasterSeed: 7,
		BatchW:     batchw,
	}
}

// The manifest's deterministic fields — committed counts, labels, stop
// reasons — must be bit-identical for every worker count and batching
// width, and the report must be byte-identical with telemetry on or off
// (the attached event log is provenance, never part of the contract).
func TestTelemetryDeterministicAcrossWorkersAndBatchW(t *testing.T) {
	var wantDet []byte
	var wantReport []byte
	for _, batchw := range []int{1, 16} {
		for _, workers := range []int{1, 4, 8} {
			rec := telemetry.New()
			lg, err := telemetry.CreateEventLog(filepath.Join(t.TempDir(), "events.jsonl"))
			if err != nil {
				t.Fatal(err)
			}
			rec.SetEventLog(lg)
			rep, err := Run(telemetrySpec(batchw), Options{Workers: workers, Telemetry: rec})
			if err != nil {
				t.Fatalf("workers=%d batchw=%d: %v", workers, batchw, err)
			}
			if err := lg.Close(); err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := rep.WriteJSON(&buf); err != nil {
				t.Fatal(err)
			}
			if wantReport == nil {
				wantReport = buf.Bytes()
			} else if !bytes.Equal(wantReport, buf.Bytes()) {
				t.Errorf("workers=%d batchw=%d: report differs from workers=1 batchw=1", workers, batchw)
			}
			// BatchW is deliberately excluded from the pinned spec echo: it
			// is a throughput knob, not part of the experiment's identity.
			spec := telemetrySpec(batchw)
			spec.BatchW = 0
			m := rec.BuildManifest("sweep", spec, nil, workers, batchw)
			det, err := m.DeterministicJSON()
			if err != nil {
				t.Fatal(err)
			}
			if wantDet == nil {
				wantDet = det
			} else if !bytes.Equal(wantDet, det) {
				t.Errorf("workers=%d batchw=%d: deterministic manifest differs:\n%s\nvs\n%s",
					workers, batchw, wantDet, det)
			}
		}
	}
}

// Fixed sweeps commit every trial and mark every cell done; shard
// counters must agree with the matrix size.
func TestTelemetryCountsFixedSweep(t *testing.T) {
	rec := telemetry.New()
	spec := telemetrySpec(8)
	if _, err := Run(spec, Options{Workers: 3, Telemetry: rec}); err != nil {
		t.Fatal(err)
	}
	s := rec.Snapshot()
	total := uint64(2 * spec.Trials)
	if s.TrialsCommitted != total || s.TrialsRun != total {
		t.Fatalf("trials committed/run = %d/%d, want %d", s.TrialsCommitted, s.TrialsRun, total)
	}
	if s.SlotsSimulated == 0 {
		t.Fatal("no slots counted")
	}
	if s.BatchesInFlight != 0 {
		t.Fatalf("batches in flight after run = %d", s.BatchesInFlight)
	}
	if s.CellsDone != 2 || s.CellsTotal != 2 {
		t.Fatalf("cells %d/%d, want 2/2", s.CellsDone, s.CellsTotal)
	}
	// BatchW=8 on a batchable workload runs through the batch MRU.
	if s.SimCache.BatchHits+s.SimCache.BatchMisses == 0 {
		t.Fatal("no batch-cache traffic counted")
	}
	for _, c := range rec.Cells() {
		if c.Trials != uint64(spec.Trials) || c.Stop != "done" {
			t.Fatalf("cell %d: trials=%d stop=%q", c.Cell, c.Trials, c.Stop)
		}
		if c.WallSeconds <= 0 {
			t.Fatalf("cell %d: wall=%v", c.Cell, c.WallSeconds)
		}
	}
}

func TestCellLabels(t *testing.T) {
	r, err := NewRunner(Spec{
		Topologies: []Topology{{Kind: "star", N: 6}},
		Workload:   "tradeoff",
		Lean:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	labels := r.CellLabels()
	if len(labels) != len(r.Cells()) {
		t.Fatalf("labels %d, cells %d", len(labels), len(r.Cells()))
	}
	// tradeoff is parameterized, so the point label must ride along.
	if got := labels[0]; got != "star-6/No-CD/auto/beta=0.0625" {
		t.Fatalf("label = %q", got)
	}
}
