// Package sweep is the parallel Monte-Carlo experiment engine: it runs
// thousands of workload trials across a declarative matrix of
// topologies x models x algorithms x workload-parameter points on a
// worker pool, aggregates the paper's measures (slots, max/total energy,
// simulator events, plus workload-specific columns) through
// internal/stats, and exports JSON or CSV.
//
// The per-trial scenario is pluggable: Spec.Workload names a registered
// internal/workload scenario (single-source broadcast by default, the
// engine's historical behavior), and Spec.WorkloadParams feeds its
// parameter schema. Grid-valued parameters expand into one matrix cell
// per point, so a beta grid or a source-count grid sweeps exactly like a
// topology size list.
//
// Reproducible-seed contract: the seed of every trial is derived purely
// from the spec's MasterSeed and the trial's position in the matrix —
// cellSeed = rng.Child(MasterSeed, cellIndex), trialSeed =
// rng.Child(cellSeed, trialIndex) — never from worker identity or
// completion order. The cell index covers every axis including the
// workload-parameter point (points are the innermost axis, so the
// default single-point broadcast workload keeps its historical cell
// numbering). Workers write each trial's measurements into a slot
// pre-indexed by (cell, trial) and aggregation walks those slots in
// order, so the report (and its JSON/CSV serialization) is bit-identical
// for a fixed spec regardless of GOMAXPROCS or the Workers option.
package sweep

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Topology declares one network in the matrix.
type Topology struct {
	// Kind selects the generator: path, cycle, star, clique, grid, k2k,
	// hypercube, tree, gnp, rgg, lollipop.
	Kind string
	// N is the primary size parameter (vertices; k for k2k; dimension
	// for hypercube; clique size for lollipop).
	N int
	// M is the secondary size parameter: columns for grid (N = rows),
	// tail length for lollipop. Ignored elsewhere.
	M int
	// P is the gnp edge probability. Zero means the default 8/n
	// (capped at 1) — dense enough that small instances are almost
	// always connected.
	P float64
	// R is the rgg connection radius. Zero means the generator's
	// above-connectivity-threshold default.
	R float64
	// Seed is the generator seed for the random kinds (tree, gnp, rgg).
	Seed uint64
}

// TopologyKinds lists the valid Kind values in the order Build documents
// them.
func TopologyKinds() []string {
	return []string{"path", "cycle", "star", "clique", "grid", "k2k",
		"hypercube", "tree", "gnp", "rgg", "lollipop"}
}

// Build constructs the declared graph.
func (t Topology) Build() (*graph.Graph, error) {
	if t.N <= 0 {
		return nil, fmt.Errorf("sweep: topology %q needs N > 0", t.Kind)
	}
	switch strings.ToLower(t.Kind) {
	case "path":
		return graph.Path(t.N), nil
	case "cycle":
		return graph.Cycle(t.N), nil
	case "star":
		return graph.Star(t.N), nil
	case "clique":
		return graph.Clique(t.N), nil
	case "k2k":
		return graph.K2k(t.N), nil
	case "hypercube":
		return graph.Hypercube(t.N), nil
	case "grid":
		cols := t.M
		if cols == 0 {
			cols = t.N
		}
		return graph.Grid(t.N, cols), nil
	case "tree":
		return graph.RandomTree(t.N, t.Seed), nil
	case "gnp":
		p := t.P
		if p == 0 {
			p = 8.0 / float64(t.N)
			if p > 1 {
				p = 1
			}
		}
		return graph.GNP(t.N, p, t.Seed), nil
	case "rgg":
		return graph.RandomGeometric(t.N, t.R, t.Seed), nil
	case "lollipop":
		tail := t.M
		if tail == 0 {
			tail = t.N
		}
		return graph.Lollipop(t.N, tail), nil
	default:
		return nil, fmt.Errorf("sweep: unknown topology kind %q (valid: %s)",
			t.Kind, strings.Join(TopologyKinds(), ", "))
	}
}

// Spec declares the full experiment matrix: every topology is run under
// every model with every algorithm at every workload-parameter point,
// Trials times each.
type Spec struct {
	Topologies []Topology
	Models     []radio.Model
	Algorithms []core.Algorithm
	// Workload names the registered internal/workload scenario executed
	// per trial. Empty means "broadcast", the engine's historical
	// single-source behavior.
	Workload string
	// WorkloadParams feeds the workload's parameter schema. Values may
	// be comma-separated grids; each grid point becomes its own matrix
	// cell (the innermost axis).
	WorkloadParams map[string]string
	// Trials is the number of seeded runs per cell.
	Trials int
	// MasterSeed roots the per-trial seed derivation.
	MasterSeed uint64
	// Source is the broadcast source vertex (default 0). Workloads that
	// place several sources derive the rest from it deterministically.
	Source int
	// Lean applies core.WithLeanScale to the heavy algorithms.
	Lean bool
	// BatchW is the trial-batching width: workloads implementing
	// workload.BatchRunner advance up to BatchW consecutive trials of one
	// cell in lockstep on a shared batch engine (radio.BatchSimulator),
	// amortizing per-trial planning (diameter, protocol constants) and
	// scheduler setup. Zero or one runs trials solo. Purely a throughput
	// knob: seeds stay positional, so aggregates, raw CSV rows, and
	// checkpoint replay are bit-identical for every width.
	BatchW int `json:",omitempty"`
	// Faults is the fault-injection axis (see internal/fault): every
	// matrix cell is run once per listed spec, innermost after the
	// workload-parameter point. Empty means one fault-free pass per cell
	// — exactly the pre-fault matrix, same cell numbering, same seeds.
	// An inactive spec in the list (kind "" or rate 0) also reproduces
	// the fault-free cell bit-for-bit: fault decisions come from a
	// positional hash stream disjoint from every protocol RNG stream, so
	// enabling the axis never perturbs protocol coin flips.
	Faults []fault.Spec `json:",omitempty"`
}

// Cell identifies one point of the expanded matrix.
type Cell struct {
	Topology  Topology
	Model     radio.Model
	Algorithm core.Algorithm
	// Point is the workload-parameter point of this cell.
	Point workload.Point
	// Fault is the cell's fault-injection spec (inactive when the spec
	// declares no fault axis).
	Fault fault.Spec
}

// Trial is the measurement of a single seeded run.
type Trial struct {
	Seed        uint64            `json:"seed"`
	Slots       uint64            `json:"slots"`
	Events      uint64            `json:"events"`
	MaxEnergy   int               `json:"maxEnergy"`
	TotalEnergy int               `json:"totalEnergy"`
	Completed   bool              `json:"completed"`
	Informed    int               `json:"informed"`
	Extra       []workload.Sample `json:"extra,omitempty"`
	// FaultCrashes/FaultSleeps/FaultErasures count the faults the engine
	// injected during the trial (all zero — and omitted — without an
	// active fault spec).
	FaultCrashes  int    `json:"faultCrashes,omitempty"`
	FaultSleeps   int    `json:"faultSleeps,omitempty"`
	FaultErasures int    `json:"faultErasures,omitempty"`
	Err           string `json:"err,omitempty"`
}

// ExtraColumn is the aggregate of one workload-specific measure column.
type ExtraColumn struct {
	Name string `json:"name"`
	stats.Summary
}

// CellReport aggregates the trials of one cell.
type CellReport struct {
	Graph     string `json:"graph"`
	N         int    `json:"n"`
	Model     string `json:"model"`
	Algorithm string `json:"algorithm"`
	// Params is the workload-parameter point label (e.g. "beta=0.125");
	// empty for the default point of a parameterless workload.
	Params string `json:"params,omitempty"`
	// Fault is the cell's fault-spec label (e.g. "crash:0.001"); empty
	// for fault-free cells, so fault-free reports keep their shape.
	Fault       string        `json:"fault,omitempty"`
	Trials      int           `json:"trials"`
	Completed   int           `json:"completed"` // trials meeting the workload's success criterion
	Errors      int           `json:"errors"`
	Slots       stats.Summary `json:"slots"`
	MaxEnergy   stats.Summary `json:"maxEnergy"`
	TotalEnergy stats.Summary `json:"totalEnergy"`
	Events      stats.Summary `json:"events"`
	// Extra aggregates the workload's own measure columns, in the
	// workload's column order. Omitted when the workload adds none, so
	// the default broadcast report keeps its historical shape.
	Extra []ExtraColumn `json:"extra,omitempty"`
}

// Report is the output of one sweep.
type Report struct {
	MasterSeed uint64 `json:"masterSeed"`
	// Workload names the scenario; omitted for the default broadcast
	// workload to keep its serialization byte-identical with the
	// pre-workload engine.
	Workload string       `json:"workload,omitempty"`
	Trials   int          `json:"trialsPerCell"`
	Cells    []CellReport `json:"cells"`
}

// Options tunes the execution without affecting the measurements.
type Options struct {
	// Workers is the pool size (default GOMAXPROCS). The report is
	// identical for every value.
	Workers int
	// Progress, if non-nil, is called after each completed trial with
	// (done, total). It may be called concurrently from worker
	// goroutines.
	Progress func(done, total int)
	// Raw, if non-nil, receives one CSV row per trial (cell id, trial
	// index, seed, slots, energies, events, informed count, completion,
	// error). Rows are streamed as trials complete — a dedicated writer
	// goroutine reorders them into deterministic (cell, trial) order, so
	// the export is bit-identical for any worker count while buffering
	// only a bounded reorder window: job issuance is gated on the writer
	// having flushed all but the last rawWindow(workers) rows, so one
	// pathologically slow trial stalls the pool instead of letting
	// completed rows pile up in memory. Million-trial raw exports
	// therefore stream to disk instead of accumulating in memory.
	Raw io.Writer
	// Telemetry, if non-nil, receives run counters, per-cell progress,
	// and phase timings (see internal/telemetry). Workers update their
	// own shard once per trial batch — the per-slot hot path is never
	// instrumented — so enabling it does not perturb measurements or the
	// engine's zero-alloc steady state. nil disables all instrumentation.
	Telemetry *telemetry.Recorder
}

// rawWindow bounds the raw export's reorder buffer: at most this many
// trial rows may be issued beyond the oldest unwritten row, so the
// writer's pending map never exceeds it. With trial batching the window
// grows to keep every worker able to hold a full batch of row tokens at
// once — the invariant that keeps the gate deadlock-free (the oldest
// unwritten row's worker acquired all its tokens before taking the job,
// so it is never blocked on the gate).
func rawWindow(workers, step int) int {
	w := 8*workers + 16
	if ws := workers*step + 16; ws > w {
		w = ws
	}
	return w
}

// rawHeader is the raw per-trial export's column set.
var rawHeader = []string{"cell", "trial", "seed", "slots", "maxEnergy",
	"totalEnergy", "events", "informed", "completed", "err"}

// rawWriter drains completed trials from jobs, restores deterministic
// job order with a reorder buffer (bounded by the issuance gate: at
// most rawWindow jobs are in flight past the oldest unwritten row),
// and appends one CSV row each. Every written row releases one gate
// token. The first write error is reported on done; later rows are
// still consumed (and their tokens released) so workers never block on
// a broken sink.
func rawWriter(w io.Writer, trials int, jobs <-chan rawRow, gate <-chan struct{}, done chan<- error) {
	cw := csv.NewWriter(w)
	var firstErr error
	write := func(row []string) {
		if firstErr != nil {
			return
		}
		if err := cw.Write(row); err != nil {
			firstErr = err
		}
	}
	write(rawHeader)
	pending := make(map[int]Trial)
	next := 0
	u := func(x uint64) string { return strconv.FormatUint(x, 10) }
	for r := range jobs {
		pending[r.job] = r.t
		for {
			t, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			write([]string{
				strconv.Itoa(next / trials), strconv.Itoa(next % trials),
				u(t.Seed), u(t.Slots), strconv.Itoa(t.MaxEnergy),
				strconv.Itoa(t.TotalEnergy), u(t.Events),
				strconv.Itoa(t.Informed), strconv.FormatBool(t.Completed),
				t.Err,
			})
			next++
			<-gate // row flushed: let another job into the window
		}
	}
	cw.Flush()
	if firstErr == nil {
		firstErr = cw.Error()
	}
	done <- firstErr
}

// rawRow carries one finished trial to the raw-export writer.
type rawRow struct {
	job int
	t   Trial
}

// Expand lists the matrix cells in their canonical order — the order that
// fixes each cell's index in the seed derivation: topology-major, then
// model, then algorithm, then workload-parameter point. The error covers
// workload resolution and parameter-grid expansion.
func (s *Spec) Expand() ([]Cell, error) {
	_, cells, err := s.resolve()
	return cells, err
}

// resolve looks up the spec's workload, expands its parameter grid and
// lists the matrix cells.
func (s *Spec) resolve() (workload.Workload, []Cell, error) {
	w, err := workload.Lookup(s.Workload)
	if err != nil {
		return nil, nil, err
	}
	points, err := w.Expand(s.WorkloadParams)
	if err != nil {
		return nil, nil, err
	}
	models := s.Models
	if len(models) == 0 {
		models = []radio.Model{radio.NoCD}
	}
	algos := s.Algorithms
	if len(algos) == 0 {
		algos = []core.Algorithm{core.AlgoAuto}
	}
	faults := s.Faults
	if len(faults) == 0 {
		// No fault axis: a single inactive spec keeps the expansion — and
		// with it cell numbering and seed derivation — identical to the
		// pre-fault matrix.
		faults = []fault.Spec{{}}
	}
	anyActive := false
	for _, fs := range faults {
		if err := fs.Validate(); err != nil {
			return nil, nil, fmt.Errorf("sweep: %w", err)
		}
		anyActive = anyActive || fs.Active()
	}
	if anyActive && !workload.SupportsFaults(w) {
		return nil, nil, fmt.Errorf("sweep: workload %s does not support fault injection", w.Name())
	}
	var cells []Cell
	for _, t := range s.Topologies {
		for _, m := range models {
			for _, a := range algos {
				for _, pt := range points {
					for _, fs := range faults {
						cells = append(cells, Cell{Topology: t, Model: m, Algorithm: a, Point: pt, Fault: fs})
					}
				}
			}
		}
	}
	return w, cells, nil
}

// TrialSeed returns the reproducible seed of trial number `trial` of cell
// number `cell` under the given master seed.
func TrialSeed(master uint64, cell, trial int) uint64 {
	return rng.Child(rng.Child(master, uint64(cell)), uint64(trial))
}

// Runner is the batch-granular execution surface of the engine: a Spec
// resolved once — workload looked up, matrix cells expanded, graphs
// built — against which callers run arbitrary trial ranges of
// individual cells on their own schedule. Run is its whole-matrix
// client; internal/experiment's adaptive controller is the
// batch-at-a-time one. A Runner is safe for concurrent RunTrials calls
// (its state is read-only after construction) as long as each caller
// goroutine passes its own SimCache.
type Runner struct {
	spec   Spec
	wl     workload.Workload
	cells  []Cell
	graphs []*graph.Graph
}

// NewRunner resolves the spec. Spec.Trials is not consulted — trial
// counts are the caller's to choose per RunTrials call.
func NewRunner(spec Spec) (*Runner, error) {
	if len(spec.Topologies) == 0 {
		return nil, fmt.Errorf("sweep: no topologies")
	}
	wl, cells, err := spec.resolve()
	if err != nil {
		return nil, err
	}
	graphs := make([]*graph.Graph, len(cells))
	for i, c := range cells {
		g, err := c.Topology.Build()
		if err != nil {
			return nil, err
		}
		if spec.Source < 0 || spec.Source >= g.N() {
			return nil, fmt.Errorf("sweep: source %d out of range for %s", spec.Source, g.Name())
		}
		graphs[i] = g
	}
	return &Runner{spec: spec, wl: wl, cells: cells, graphs: graphs}, nil
}

// Workload returns the resolved workload.
func (r *Runner) Workload() workload.Workload { return r.wl }

// Cells lists the expanded matrix cells in canonical (seed-derivation)
// order. The slice is shared; do not mutate it.
func (r *Runner) Cells() []Cell { return r.cells }

// Graph returns the built topology of one cell.
func (r *Runner) Graph(cell int) *graph.Graph { return r.graphs[cell] }

// CellLabel renders one cell's identity as "graph/model/algorithm" plus
// a "/params" suffix for parameterized workload points — the label
// telemetry and status endpoints key per-cell progress on. Labels are
// pure functions of the spec, so they are safe to pin in determinism
// tests.
func (r *Runner) CellLabel(cell int) string {
	c := r.cells[cell]
	label := r.graphs[cell].Name() + "/" + c.Model.String() + "/" + c.Algorithm.String()
	if c.Point.Label != "" {
		label += "/" + c.Point.Label
	}
	if fl := c.Fault.Label(); fl != "" {
		label += "/" + fl
	}
	return label
}

// CellLabels lists every cell's label in canonical order.
func (r *Runner) CellLabels() []string {
	out := make([]string, len(r.cells))
	for i := range out {
		out[i] = r.CellLabel(i)
	}
	return out
}

// RunTrials executes trials [lo, hi) of one cell in trial order,
// writing their measurements into out[0:hi-lo]. Seeds derive from the
// trial's absolute matrix position (TrialSeed), so any batch partition
// of a trial range measures exactly what one contiguous run would —
// the property the adaptive controller's checkpoint/resume relies on.
// sims may be nil; passing a per-goroutine cache makes consecutive
// batches on one cell reuse the preallocated engine. When Spec.BatchW
// exceeds one and the workload implements workload.BatchRunner, the
// range runs in lockstep chunks of up to BatchW trials; per-trial
// results are identical either way.
func (r *Runner) RunTrials(cell, lo, hi int, sims *radio.SimCache, out []Trial) {
	step := r.batchStep()
	if step > 1 {
		br := r.wl.(workload.BatchRunner)
		for t := lo; t < hi; t += step {
			end := t + step
			if end > hi {
				end = hi
			}
			r.runTrialBatch(br, cell, t, end, sims, out[t-lo:end-lo])
		}
		return
	}
	for t := lo; t < hi; t++ {
		out[t-lo] = runTrial(r.wl, r.graphs[cell], r.cells[cell], &r.spec, cell, t, sims)
	}
}

// batchStep resolves the effective lockstep width: Spec.BatchW when the
// workload can batch, 1 otherwise.
func (r *Runner) batchStep() int {
	if r.spec.BatchW > 1 {
		if _, ok := r.wl.(workload.BatchRunner); ok {
			return r.spec.BatchW
		}
	}
	return 1
}

// runTrialBatch runs trials [lo, hi) of one cell through the workload's
// lockstep path, with the same positional seeds the solo path derives.
func (r *Runner) runTrialBatch(br workload.BatchRunner, cell, lo, hi int, sims *radio.SimCache, out []Trial) {
	seeds := make([]uint64, hi-lo)
	for i := range seeds {
		seeds[i] = TrialSeed(r.spec.MasterSeed, cell, lo+i)
	}
	c := r.cells[cell]
	ms, errs := br.RunBatch(r.graphs[cell], c.Point, seeds, workload.Options{
		Model:     c.Model,
		Algorithm: c.Algorithm,
		Source:    r.spec.Source,
		Lean:      r.spec.Lean,
		Sims:      sims,
		Fault:     c.Fault,
	})
	for i, seed := range seeds {
		out[i] = trialOf(seed, ms[i], errs[i])
	}
}

// Run executes the matrix on a worker pool and returns the aggregated
// report. Trial-level failures (algorithm/model mismatches, incomplete
// broadcasts) are recorded in the report, not returned; the error covers
// spec-level problems only.
func Run(spec Spec, opt Options) (*Report, error) {
	if spec.Trials <= 0 {
		return nil, fmt.Errorf("sweep: Trials must be positive, got %d", spec.Trials)
	}
	rec := opt.Telemetry
	rec.Phase("resolve")
	r, err := NewRunner(spec)
	if err != nil {
		return nil, err
	}
	wl, cells := r.wl, r.cells
	rec.StartCells(r.CellLabels())

	// One pre-indexed slot per trial: workers race only on the job
	// counter, never on result placement, which is what makes the
	// aggregate independent of scheduling.
	results := make([][]Trial, len(cells))
	for i := range results {
		results[i] = make([]Trial, spec.Trials)
	}
	total := len(cells) * spec.Trials
	// Jobs are batch-granular: each covers up to step consecutive trials
	// of one cell (step = 1 without batching), never crossing a cell
	// boundary so every batch shares one graph and one plan.
	step := r.batchStep()
	bpc := (spec.Trials + step - 1) / step // batches per cell
	totalJobs := len(cells) * bpc
	var next, done atomic.Int64
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > totalJobs {
		workers = totalJobs
	}
	// Raw per-trial export: workers hand finished trials to a dedicated
	// writer goroutine, which streams them out in deterministic trial
	// order. The gate semaphore caps issued-but-unwritten trial rows at
	// rawWindow(workers, step), bounding the writer's reorder buffer:
	// workers acquire one token per trial of a job before taking it, the
	// writer releases one per written row. Deadlock-free because the
	// oldest unwritten row's worker acquired its whole batch of tokens
	// before taking the job and the writer always drains the row channel
	// (see Options.Raw).
	var rawCh chan rawRow
	var rawDone chan error
	var rawGate chan struct{}
	if opt.Raw != nil {
		rawCh = make(chan rawRow, 4*workers)
		rawDone = make(chan error, 1)
		rawGate = make(chan struct{}, rawWindow(workers, step))
		go rawWriter(opt.Raw, spec.Trials, rawCh, rawGate, rawDone)
	}
	rec.Shards(workers)
	rec.Phase("trials")
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			// Each worker owns a simulator cache: the thousands of trials
			// it runs on a cell's long-lived graph reuse one preallocated
			// engine instead of rebuilding envs, random streams, and
			// scheduler scratch per trial. Caches never cross goroutines,
			// and a recycled simulator is reset per run, so the aggregate
			// stays bit-identical for any worker count.
			sims := &radio.SimCache{}
			buf := make([]Trial, step)
			// sh is nil when telemetry is disabled; all updates are
			// per-batch, never per-trial or per-slot.
			sh := rec.Shard(w)
			for {
				if rawGate != nil {
					for k := 0; k < step; k++ {
						rawGate <- struct{}{}
					}
				}
				job := int(next.Add(1)) - 1
				if job >= totalJobs {
					if rawGate != nil {
						for k := 0; k < step; k++ {
							<-rawGate // no job taken: hand the tokens back
						}
					}
					return
				}
				ci := job / bpc
				lo := (job % bpc) * step
				hi := lo + step
				if hi > spec.Trials {
					hi = spec.Trials
				}
				if rawGate != nil {
					for k := hi - lo; k < step; k++ {
						<-rawGate // short tail batch: return unused tokens
					}
				}
				var t0 time.Time
				if sh != nil {
					sh.BatchStart()
					t0 = time.Now()
				}
				r.RunTrials(ci, lo, hi, sims, buf[:hi-lo])
				if sh != nil {
					var slots uint64
					for _, tr := range buf[:hi-lo] {
						slots += tr.Slots
					}
					sh.BatchDone(ci, hi-lo, slots, time.Since(t0))
					sh.SetCache(telemetry.CacheCounts(sims.Stats()))
					// Every trial of a fixed sweep commits; a cell is done
					// when its committed count reaches the spec's target.
					// Injected-fault counts commit alongside: every trial
					// commits exactly once, so the totals are deterministic.
					var fc, fsl, fe uint64
					for _, tr := range buf[:hi-lo] {
						fc += uint64(tr.FaultCrashes)
						fsl += uint64(tr.FaultSleeps)
						fe += uint64(tr.FaultErasures)
					}
					rec.CommitFaults(fc, fsl, fe)
					if n := rec.CommitTrials(ci, hi-lo); n == uint64(spec.Trials) {
						rec.CellDone(ci, "done")
					}
				}
				for ti := lo; ti < hi; ti++ {
					tr := buf[ti-lo]
					results[ci][ti] = tr
					if rawCh != nil {
						rawCh <- rawRow{job: ci*spec.Trials + ti, t: tr}
					}
					if opt.Progress != nil {
						opt.Progress(int(done.Add(1)), total)
					} else {
						done.Add(1)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if rawCh != nil {
		close(rawCh)
		if err := <-rawDone; err != nil {
			return nil, fmt.Errorf("sweep: raw export: %w", err)
		}
	}

	rec.Phase("aggregate")
	rep := &Report{MasterSeed: spec.MasterSeed, Trials: spec.Trials, Cells: make([]CellReport, len(cells))}
	if wl.Name() != "broadcast" {
		rep.Workload = wl.Name()
	}
	for i, c := range cells {
		rep.Cells[i] = aggregate(r.graphs[i], c, results[i])
	}
	return rep, nil
}

// runTrial executes one seeded workload trial and measures it. sims is
// the calling worker's private simulator cache.
func runTrial(w workload.Workload, g *graph.Graph, c Cell, spec *Spec, cell, trial int, sims *radio.SimCache) Trial {
	seed := TrialSeed(spec.MasterSeed, cell, trial)
	m, err := w.Run(g, c.Point, seed, workload.Options{
		Model:     c.Model,
		Algorithm: c.Algorithm,
		Source:    spec.Source,
		Lean:      spec.Lean,
		Sims:      sims,
		Fault:     c.Fault,
	})
	return trialOf(seed, m, err)
}

// trialOf maps one trial's workload outcome to its Trial row — the
// single mapping both the solo and lockstep paths share, so an error
// trial serializes identically at every batch width.
func trialOf(seed uint64, m workload.Measures, err error) Trial {
	if err != nil {
		return Trial{Seed: seed, Err: err.Error()}
	}
	return Trial{
		Seed:          seed,
		Slots:         m.Slots,
		Events:        m.Events,
		MaxEnergy:     m.MaxEnergy,
		TotalEnergy:   m.TotalEnergy,
		Completed:     m.Completed,
		Informed:      m.Informed,
		Extra:         m.Extra,
		FaultCrashes:  m.FaultCrashes,
		FaultSleeps:   m.FaultSleeps,
		FaultErasures: m.FaultErasures,
	}
}

// aggregate folds a cell's trials — in trial order — into its report.
// Workload-specific columns are keyed by the names of the first
// successful trial (the workload contract fixes them per point).
func aggregate(g *graph.Graph, c Cell, trials []Trial) CellReport {
	rep := CellReport{
		Graph:     g.Name(),
		N:         g.N(),
		Model:     c.Model.String(),
		Algorithm: c.Algorithm.String(),
		Params:    c.Point.Label,
		Fault:     c.Fault.Label(),
		Trials:    len(trials),
	}
	slots := stats.NewStream(len(trials))
	maxE := stats.NewStream(len(trials))
	totE := stats.NewStream(len(trials))
	events := stats.NewStream(len(trials))
	var extras []*stats.Stream
	var extraNames []string
	for _, tr := range trials {
		if tr.Err != "" {
			rep.Errors++
			continue
		}
		if tr.Completed {
			rep.Completed++
		}
		slots.Add(float64(tr.Slots))
		maxE.Add(float64(tr.MaxEnergy))
		totE.Add(float64(tr.TotalEnergy))
		events.Add(float64(tr.Events))
		if extras == nil && len(tr.Extra) > 0 {
			extras = make([]*stats.Stream, len(tr.Extra))
			extraNames = make([]string, len(tr.Extra))
			for i, s := range tr.Extra {
				extras[i] = stats.NewStream(len(trials))
				extraNames[i] = s.Name
			}
		}
		if len(tr.Extra) == len(extras) {
			for i, s := range tr.Extra {
				extras[i].Add(s.X)
			}
		}
	}
	rep.Slots = slots.Summarize()
	rep.MaxEnergy = maxE.Summarize()
	rep.TotalEnergy = totE.Summarize()
	rep.Events = events.Summarize()
	for i, st := range extras {
		rep.Extra = append(rep.Extra, ExtraColumn{Name: extraNames[i], Summary: st.Summarize()})
	}
	return rep
}

// WriteJSON serializes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// hasParams reports whether any cell carries a workload-parameter label.
func (r *Report) hasParams() bool {
	for _, c := range r.Cells {
		if c.Params != "" {
			return true
		}
	}
	return false
}

// hasFault reports whether any cell carries an active fault spec.
func (r *Report) hasFault() bool {
	for _, c := range r.Cells {
		if c.Fault != "" {
			return true
		}
	}
	return false
}

// extraColumns returns the union of the cells' workload-specific column
// names, in first-seen order — the uniform CSV column set for a report
// whose cells may aggregate heterogeneous measures (e.g. an msrc source-
// count grid with per-source fronts).
func (r *Report) extraColumns() []string {
	var names []string
	seen := map[string]bool{}
	for _, c := range r.Cells {
		for _, e := range c.Extra {
			if !seen[e.Name] {
				seen[e.Name] = true
				names = append(names, e.Name)
			}
		}
	}
	return names
}

// WriteCSV serializes the report as one CSV row per cell. Reports of
// parameterized workloads gain a "params" column and one
// <name>_mean/_p99/_max column triple per workload-specific measure;
// cells lacking a column (heterogeneous grids) leave it empty. The
// default broadcast report keeps its historical header.
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	withParams := r.hasParams()
	withFault := r.hasFault()
	extraCols := r.extraColumns()
	header := []string{"graph", "n", "model", "algorithm"}
	if withParams {
		header = append(header, "params")
	}
	if withFault {
		header = append(header, "fault")
	}
	header = append(header,
		"trials", "completed", "errors",
		"slots_mean", "slots_p50", "slots_p90", "slots_p99", "slots_max",
		"maxE_mean", "maxE_p50", "maxE_p90", "maxE_p99", "maxE_max",
		"totalE_mean", "events_mean",
	)
	for _, name := range extraCols {
		header = append(header, name+"_mean", name+"_p99", name+"_max")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }
	for _, c := range r.Cells {
		row := []string{c.Graph, strconv.Itoa(c.N), c.Model, c.Algorithm}
		if withParams {
			row = append(row, c.Params)
		}
		if withFault {
			row = append(row, c.Fault)
		}
		row = append(row,
			strconv.Itoa(c.Trials), strconv.Itoa(c.Completed), strconv.Itoa(c.Errors),
			f(c.Slots.Mean), f(c.Slots.P50), f(c.Slots.P90), f(c.Slots.P99), f(c.Slots.Max),
			f(c.MaxEnergy.Mean), f(c.MaxEnergy.P50), f(c.MaxEnergy.P90), f(c.MaxEnergy.P99), f(c.MaxEnergy.Max),
			f(c.TotalEnergy.Mean), f(c.Events.Mean),
		)
		byName := make(map[string]stats.Summary, len(c.Extra))
		for _, e := range c.Extra {
			byName[e.Name] = e.Summary
		}
		for _, name := range extraCols {
			if s, ok := byName[name]; ok {
				row = append(row, f(s.Mean), f(s.P99), f(s.Max))
			} else {
				row = append(row, "", "", "")
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Table renders the report as an aligned plain-text table. Parameterized
// workloads gain a params column; the default broadcast table keeps its
// historical shape.
func (r *Report) Table() string {
	withParams := r.hasParams()
	withFault := r.hasFault()
	header := []string{"graph", "n", "model", "algo"}
	if withParams {
		header = append(header, "params")
	}
	if withFault {
		header = append(header, "fault")
	}
	header = append(header, "ok/trials",
		"slots(mean)", "slots(p99)", "maxE(mean)", "maxE(p99)")
	tbl := &stats.Table{Header: header}
	for _, c := range r.Cells {
		row := []any{c.Graph, c.N, c.Model, c.Algorithm}
		if withParams {
			row = append(row, c.Params)
		}
		if withFault {
			row = append(row, c.Fault)
		}
		row = append(row, fmt.Sprintf("%d/%d", c.Completed, c.Trials),
			c.Slots.Mean, c.Slots.P99, c.MaxEnergy.Mean, c.MaxEnergy.P99)
		tbl.Add(row...)
	}
	return tbl.String()
}

// CollectTrials runs fn(trial) for every trial index on the worker pool
// and returns the successful samples in trial order — the deterministic
// parallel-map used by harnesses (cmd/energybench) whose per-trial work
// doesn't fit the Spec matrix. fn must be safe to call concurrently;
// trials whose fn returns ok=false are dropped from the result.
func CollectTrials[T any](trials, workers int, fn func(trial int) (T, bool)) []T {
	type slot struct {
		v  T
		ok bool
	}
	slots := make([]slot, trials)
	RunTrials(trials, workers, func(i int) {
		v, ok := fn(i)
		slots[i] = slot{v, ok}
	})
	out := make([]T, 0, trials)
	for _, s := range slots {
		if s.ok {
			out = append(out, s.v)
		}
	}
	return out
}

// RunTrials is the engine's generic worker pool, exposed for harnesses
// (cmd/energybench) whose per-trial work doesn't fit the Spec matrix: it
// invokes fn(trial) for every trial index on `workers` goroutines
// (default GOMAXPROCS). fn writes into caller-owned, trial-indexed
// storage, preserving the engine's determinism contract.
func RunTrials(trials, workers int, fn func(trial int)) {
	if trials <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > trials {
		workers = trials
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= trials {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
