package sweep

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/radio"
)

// renderAll runs the spec and returns the report JSON plus the raw CSV
// export — every byte the engine emits.
func renderAll(t *testing.T, spec Spec, workers int) (string, string) {
	t.Helper()
	var raw bytes.Buffer
	rep, err := Run(spec, Options{Workers: workers, Raw: &raw})
	if err != nil {
		t.Fatalf("workers=%d batchW=%d: %v", workers, spec.BatchW, err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String(), raw.String()
}

// TestBatchWBitIdentical pins trial batching's whole contract: for every
// width (including widths that don't divide the trial count) the report
// JSON and the raw CSV are byte-identical to the solo engine, across
// worker counts. The matrix includes an all-error cell (deterministic
// No-CD does not exist) so fanned-out batch errors serialize identically
// too.
func TestBatchWBitIdentical(t *testing.T) {
	spec := Spec{
		Topologies: []Topology{
			{Kind: "path", N: 8},
			{Kind: "star", N: 8},
		},
		Models:     []radio.Model{radio.NoCD},
		Algorithms: []core.Algorithm{core.AlgoAuto, core.AlgoDeterministic},
		Trials:     10,
		MasterSeed: 42,
	}
	wantJSON, wantRaw := renderAll(t, spec, 1)
	for _, w := range []int{4, 16} {
		bspec := spec
		bspec.BatchW = w
		for _, workers := range []int{1, 4} {
			gotJSON, gotRaw := renderAll(t, bspec, workers)
			if gotJSON != wantJSON {
				t.Errorf("BatchW=%d workers=%d: report differs from solo:\n--- solo ---\n%s\n--- batched ---\n%s",
					w, workers, wantJSON, gotJSON)
			}
			if gotRaw != wantRaw {
				t.Errorf("BatchW=%d workers=%d: raw CSV differs from solo:\n--- solo ---\n%s\n--- batched ---\n%s",
					w, workers, wantRaw, gotRaw)
			}
		}
	}
}

// TestBatchWMsrcBitIdentical covers the k-source batch path, whose extra
// front columns must survive batching byte for byte.
func TestBatchWMsrcBitIdentical(t *testing.T) {
	spec := Spec{
		Topologies:     []Topology{{Kind: "cycle", N: 10}},
		Models:         []radio.Model{radio.Local},
		Workload:       "msrc",
		WorkloadParams: map[string]string{"k": "2,3"},
		Trials:         7,
		MasterSeed:     9,
	}
	wantJSON, wantRaw := renderAll(t, spec, 1)
	bspec := spec
	bspec.BatchW = 4
	gotJSON, gotRaw := renderAll(t, bspec, 3)
	if gotJSON != wantJSON || gotRaw != wantRaw {
		t.Errorf("msrc BatchW=4: output differs from solo:\n--- solo ---\n%s%s\n--- batched ---\n%s%s",
			wantJSON, wantRaw, gotJSON, gotRaw)
	}
}

// TestBatchWIgnoredWithoutBatchRunner: a workload without RunBatch (the
// leader workload) silently runs solo at any BatchW.
func TestBatchWIgnoredWithoutBatchRunner(t *testing.T) {
	spec := Spec{
		Topologies: []Topology{{Kind: "clique", N: 6}},
		Models:     []radio.Model{radio.CD},
		Workload:   "leader",
		Trials:     5,
		MasterSeed: 5,
	}
	wantJSON, wantRaw := renderAll(t, spec, 1)
	bspec := spec
	bspec.BatchW = 8
	gotJSON, gotRaw := renderAll(t, bspec, 2)
	if gotJSON != wantJSON || gotRaw != wantRaw {
		t.Error("leader workload output changed under BatchW")
	}
}

// TestBatchWSpecHeaderUnchanged: a zero BatchW must not alter the spec's
// JSON serialization, which the checkpoint journal headers embed.
func TestBatchWSpecHeaderUnchanged(t *testing.T) {
	spec := Spec{Topologies: []Topology{{Kind: "path", N: 4}}, Trials: 1}
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(b, []byte("BatchW")) {
		t.Errorf("default spec serializes BatchW: %s", b)
	}
}
