package sweep

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// TestParseTopologyErrorPaths covers every rejection branch of the CLI
// topology syntax.
func TestParseTopologyErrorPaths(t *testing.T) {
	for _, bad := range []string{
		"",                   // no sizes
		"path",               // no sizes
		"path:8:p=1:extra",   // too many sections
		"path:x",             // non-numeric size
		"path:-3",            // negative size
		"path:8:p",           // option without value
		"gnp:8:p=2",          // p out of range
		"gnp:8:p=x",          // non-numeric p
		"rgg:8:r=0",          // non-positive radius
		"rgg:8:r=x",          // non-numeric radius
		"gnp:8:seed=x",       // non-numeric seed
		"grid:8:cols=0",      // non-positive cols
		"lollipop:8:tail=-1", // negative tail
		"gnp:8:frobnicate=1", // unknown option
	} {
		if _, err := ParseTopology(bad); err == nil {
			t.Errorf("ParseTopology(%q) accepted", bad)
		}
	}
}

func TestParseTopologyRGG(t *testing.T) {
	ts, err := ParseTopology("rgg:24,32:r=0.4,seed=9")
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 || ts[0].R != 0.4 || ts[1].Seed != 9 {
		t.Fatalf("parsed %+v", ts)
	}
	g, err := ts[0].Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 24 || !g.IsConnected() {
		t.Errorf("rgg build: n=%d connected=%v", g.N(), g.IsConnected())
	}
}

// TestUnknownNamesListValidOnes is the CLI contract: unknown topology
// kinds, models, algorithms and workload parameters fail with an error
// enumerating the valid names.
func TestUnknownNamesListValidOnes(t *testing.T) {
	_, err := Topology{Kind: "frobnicate", N: 4}.Build()
	if err == nil {
		t.Fatal("unknown kind accepted")
	}
	for _, kind := range TopologyKinds() {
		if !strings.Contains(err.Error(), kind) {
			t.Errorf("kind error %q does not list %q", err, kind)
		}
	}
	if _, err = ParseModels("quantum"); err == nil {
		t.Fatal("unknown model accepted")
	}
	for _, m := range []string{"nocd", "cd", "cdstar", "local"} {
		if !strings.Contains(err.Error(), m) {
			t.Errorf("model error %q does not list %q", err, m)
		}
	}
	if _, err = ParseAlgorithms("magic"); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	for name := range AlgorithmNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("algorithm error %q does not list %q", err, name)
		}
	}
}

// TestEveryAlgorithmRoundTrips guards new algorithms being unreachable
// from the CLI: every core.Algorithm with a real String() name must
// parse back to itself via ParseAlgorithms.
func TestEveryAlgorithmRoundTrips(t *testing.T) {
	count := 0
	for a := core.Algorithm(0); ; a++ {
		name := a.String()
		if strings.HasPrefix(name, "Algorithm(") {
			break
		}
		count++
		got, err := ParseAlgorithms(name)
		if err != nil {
			t.Errorf("algorithm %q does not parse: %v", name, err)
			continue
		}
		if len(got) != 1 || got[0] != a {
			t.Errorf("ParseAlgorithms(%q) = %v, want [%v]", name, got, a)
		}
	}
	if count < 9 {
		t.Errorf("probed only %d algorithms; enum walk broken?", count)
	}
}

func TestParseModelsAndAlgorithmsEmptyLists(t *testing.T) {
	if _, err := ParseModels(","); err == nil {
		t.Error("empty model list accepted")
	}
	if _, err := ParseAlgorithms(" , "); err == nil {
		t.Error("empty algorithm list accepted")
	}
}

func TestParseWorkloadParams(t *testing.T) {
	if m, err := ParseWorkloadParams(nil); err != nil || m != nil {
		t.Errorf("nil input: %v %v", m, err)
	}
	m, err := ParseWorkloadParams([]string{"k=2,4", "proto = rand "})
	if err != nil {
		t.Fatal(err)
	}
	if m["k"] != "2,4" || m["proto"] != "rand" {
		t.Errorf("parsed %v", m)
	}
	if _, err := ParseWorkloadParams([]string{"novalue"}); err == nil {
		t.Error("missing = accepted")
	}
	if _, err := ParseWorkloadParams([]string{"=x"}); err == nil {
		t.Error("empty key accepted")
	}
	if _, err := ParseWorkloadParams([]string{"k=2", "k=3"}); err == nil {
		t.Error("duplicate key accepted")
	}
}
