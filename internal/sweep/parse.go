package sweep

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/radio"
)

// ParseTopology parses the CLI matrix syntax
//
//	kind:n1,n2,...[:key=value,...]
//
// into one Topology per size. Examples:
//
//	path:64,128,256
//	gnp:32,64:p=0.2,seed=7
//	rgg:64:r=0.3,seed=7
//	grid:8:cols=8
//	lollipop:6:tail=10
func ParseTopology(s string) ([]Topology, error) {
	parts := strings.Split(s, ":")
	if len(parts) < 2 || len(parts) > 3 {
		return nil, fmt.Errorf("sweep: topology %q: want kind:sizes[:opts]", s)
	}
	kind := strings.TrimSpace(parts[0])
	var sizes []int
	for _, tok := range strings.Split(parts[1], ",") {
		n, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("sweep: topology %q: bad size %q", s, tok)
		}
		sizes = append(sizes, n)
	}
	base := Topology{Kind: kind}
	if len(parts) == 3 {
		for _, kv := range strings.Split(parts[2], ",") {
			key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return nil, fmt.Errorf("sweep: topology %q: bad option %q", s, kv)
			}
			switch key {
			case "p":
				p, err := strconv.ParseFloat(val, 64)
				if err != nil || p < 0 || p > 1 {
					return nil, fmt.Errorf("sweep: topology %q: bad p %q", s, val)
				}
				base.P = p
			case "r":
				r, err := strconv.ParseFloat(val, 64)
				if err != nil || r <= 0 {
					return nil, fmt.Errorf("sweep: topology %q: bad r %q", s, val)
				}
				base.R = r
			case "seed":
				sd, err := strconv.ParseUint(val, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("sweep: topology %q: bad seed %q", s, val)
				}
				base.Seed = sd
			case "cols", "tail":
				m, err := strconv.Atoi(val)
				if err != nil || m <= 0 {
					return nil, fmt.Errorf("sweep: topology %q: bad %s %q", s, key, val)
				}
				base.M = m
			default:
				return nil, fmt.Errorf("sweep: topology %q: unknown option %q (valid: p, r, seed, cols, tail)", s, key)
			}
		}
	}
	out := make([]Topology, len(sizes))
	for i, n := range sizes {
		t := base
		t.N = n
		out[i] = t
	}
	return out, nil
}

// ParseFault parses the CLI fault-axis syntax
//
//	kind:rate1,rate2,...[:w=window]
//
// into one fault.Spec per rate. Kind is crash, sleep, or loss; rates are
// per-(device, slot) probabilities in [0, 1]; the w= option (sleep only)
// sets the forced-idle window in slots. Examples:
//
//	crash:0.001
//	sleep:0.001,0.01:w=8
//	loss:0.05
func ParseFault(s string) ([]fault.Spec, error) {
	parts := strings.Split(s, ":")
	if len(parts) < 2 || len(parts) > 3 {
		return nil, fmt.Errorf("sweep: fault %q: want kind:rates[:w=window]", s)
	}
	kind := fault.Kind(strings.ToLower(strings.TrimSpace(parts[0])))
	var rates []float64
	for _, tok := range strings.Split(parts[1], ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil {
			return nil, fmt.Errorf("sweep: fault %q: bad rate %q", s, tok)
		}
		rates = append(rates, r)
	}
	if len(rates) == 0 {
		return nil, fmt.Errorf("sweep: fault %q: no rates", s)
	}
	window := 0
	if len(parts) == 3 {
		key, val, ok := strings.Cut(strings.TrimSpace(parts[2]), "=")
		if !ok || key != "w" {
			return nil, fmt.Errorf("sweep: fault %q: bad option %q (valid: w)", s, parts[2])
		}
		w, err := strconv.Atoi(val)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("sweep: fault %q: bad window %q", s, val)
		}
		window = w
	}
	out := make([]fault.Spec, len(rates))
	for i, r := range rates {
		out[i] = fault.Spec{Kind: kind, Rate: r, Window: window}
		if err := out[i].Validate(); err != nil {
			return nil, fmt.Errorf("sweep: fault %q: %w", s, err)
		}
	}
	return out, nil
}

// modelNames are the accepted spellings, in listing order.
var modelNames = []string{"nocd", "cd", "cdstar", "local"}

// ParseModels parses a comma-separated model list (nocd, cd, cdstar,
// local; case-insensitive, paper spellings like "No-CD" and "CD*"
// accepted).
func ParseModels(s string) ([]radio.Model, error) {
	var out []radio.Model
	for _, tok := range strings.Split(s, ",") {
		switch strings.ToLower(strings.TrimSpace(tok)) {
		case "nocd", "no-cd":
			out = append(out, radio.NoCD)
		case "cd":
			out = append(out, radio.CD)
		case "cdstar", "cd*":
			out = append(out, radio.CDStar)
		case "local":
			out = append(out, radio.Local)
		case "":
		default:
			return nil, fmt.Errorf("sweep: unknown model %q (valid: %s)",
				tok, strings.Join(modelNames, ", "))
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("sweep: no models in %q", s)
	}
	return out, nil
}

// AlgorithmNames maps every core.Algorithm's String() name to its value,
// by probing the enum from zero until the first value without a real
// name. New algorithms therefore become CLI-reachable the moment they
// stringify, with no list to keep in sync.
func AlgorithmNames() map[string]core.Algorithm {
	named := map[string]core.Algorithm{}
	for i, name := range sortedAlgorithmNames() {
		named[name] = core.Algorithm(i)
	}
	return named
}

// sortedAlgorithmNames lists the algorithm names in enum order — the
// single probe loop AlgorithmNames derives from.
func sortedAlgorithmNames() []string {
	var names []string
	for a := core.Algorithm(0); ; a++ {
		name := a.String()
		if strings.HasPrefix(name, "Algorithm(") {
			break
		}
		names = append(names, name)
	}
	return names
}

// ParseAlgorithms parses a comma-separated algorithm list using the
// names reported by core.Algorithm.String.
func ParseAlgorithms(s string) ([]core.Algorithm, error) {
	named := AlgorithmNames()
	var out []core.Algorithm
	for _, tok := range strings.Split(s, ",") {
		tok = strings.ToLower(strings.TrimSpace(tok))
		if tok == "" {
			continue
		}
		a, ok := named[tok]
		if !ok {
			return nil, fmt.Errorf("sweep: unknown algorithm %q (valid: %s)",
				tok, strings.Join(sortedAlgorithmNames(), ", "))
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("sweep: no algorithms in %q", s)
	}
	return out, nil
}

// ParseWorkloadParams parses repeated CLI "key=value" workload-parameter
// assignments (values may be comma-separated grids) into the map
// Spec.WorkloadParams expects. Duplicate keys are rejected — a silent
// override would drop half of an intended grid.
func ParseWorkloadParams(kvs []string) (map[string]string, error) {
	if len(kvs) == 0 {
		return nil, nil
	}
	out := make(map[string]string, len(kvs))
	for _, kv := range kvs {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		key = strings.TrimSpace(key)
		if !ok || key == "" {
			return nil, fmt.Errorf("sweep: workload parameter %q: want key=value", kv)
		}
		if _, dup := out[key]; dup {
			return nil, fmt.Errorf("sweep: duplicate workload parameter %q", key)
		}
		out[key] = strings.TrimSpace(val)
	}
	return out, nil
}
