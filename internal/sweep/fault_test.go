package sweep

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/radio"
)

// TestFaultRateZeroMatchesGolden pins the sweep-level rate-0 contract:
// a fault axis whose only entry is inactive reproduces the pre-fault
// golden report byte for byte — same cells, same seeds, same JSON.
func TestFaultRateZeroMatchesGolden(t *testing.T) {
	golden, err := os.ReadFile("testdata/golden_broadcast.json")
	if err != nil {
		t.Fatal(err)
	}
	for _, fs := range []fault.Spec{
		{Kind: fault.Crash, Rate: 0},
		{Kind: fault.Sleep, Rate: 0},
		{Kind: fault.Loss, Rate: 0},
	} {
		spec := goldenSpec("")
		spec.Faults = []fault.Spec{fs}
		rep, err := Run(spec, Options{})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if buf.String() != string(golden) {
			t.Errorf("fault %+v at rate 0 diverges from the golden report", fs)
		}
	}
}

// faultedSpec is a small matrix with an active fault grid over two kinds.
func faultedSpec() Spec {
	return Spec{
		Topologies: []Topology{{Kind: "path", N: 10}, {Kind: "star", N: 10}},
		Models:     []radio.Model{radio.Local, radio.NoCD},
		Workload:   "broadcast",
		Trials:     16,
		MasterSeed: 17,
		Faults: []fault.Spec{
			{Kind: fault.Sleep, Rate: 0.01, Window: 4},
			{Kind: fault.Loss, Rate: 0.05},
		},
	}
}

// renderFaulted runs the faulted spec at one (workers, batchw) setting
// and returns the report JSON and raw CSV bytes.
func renderFaulted(t *testing.T, workers, batchw int) (string, string) {
	t.Helper()
	spec := faultedSpec()
	spec.BatchW = batchw
	var raw bytes.Buffer
	rep, err := Run(spec, Options{Workers: workers, Raw: &raw})
	if err != nil {
		t.Fatalf("workers=%d batchw=%d: %v", workers, batchw, err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String(), raw.String()
}

// TestFaultDeterministicAcrossWorkersAndBatch is the acceptance pin:
// with faults enabled, report JSON and the raw per-trial CSV are
// bit-identical across workers 1/4/8 and batch widths 1/16 — the fault
// hash is positional, so neither scheduling nor lockstep batching can
// shift a single injected fault.
func TestFaultDeterministicAcrossWorkersAndBatch(t *testing.T) {
	refJSON, refRaw := renderFaulted(t, 1, 1)
	for _, workers := range []int{4, 8} {
		for _, batchw := range []int{1, 16} {
			gotJSON, gotRaw := renderFaulted(t, workers, batchw)
			if gotJSON != refJSON {
				t.Errorf("report JSON diverges at workers=%d batchw=%d", workers, batchw)
			}
			if gotRaw != refRaw {
				t.Errorf("raw CSV diverges at workers=%d batchw=%d", workers, batchw)
			}
		}
	}
	if !strings.Contains(refJSON, `"fault": "sleep:0.01:w=4"`) ||
		!strings.Contains(refJSON, `"fault": "loss:0.05"`) {
		t.Errorf("faulted report missing fault labels:\n%s", refJSON)
	}
	for _, col := range []string{"success", "informedFrac", "energyOverhead", "wastedAwake"} {
		if !strings.Contains(refJSON, `"name": "`+col+`"`) {
			t.Errorf("faulted report missing %s column", col)
		}
	}
}

// TestFaultCSVColumn checks the aggregate CSV gains a fault column only
// when a cell carries an active spec.
func TestFaultCSVColumn(t *testing.T) {
	rep, err := Run(faultedSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var csv bytes.Buffer
	if err := rep.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	head := strings.SplitN(csv.String(), "\n", 2)[0]
	if !strings.Contains(head, ",fault,") {
		t.Errorf("faulted CSV header lacks fault column: %s", head)
	}
	plain := goldenSpec("")
	rep2, err := Run(plain, Options{})
	if err != nil {
		t.Fatal(err)
	}
	csv.Reset()
	if err := rep2.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if head := strings.SplitN(csv.String(), "\n", 2)[0]; strings.Contains(head, "fault") {
		t.Errorf("fault-free CSV header gained a fault column: %s", head)
	}
}

// TestFaultAxisValidation covers spec-level rejection: invalid specs and
// workloads without fault plumbing fail up front, not per trial.
func TestFaultAxisValidation(t *testing.T) {
	spec := goldenSpec("")
	spec.Faults = []fault.Spec{{Kind: "meteor", Rate: 0.1}}
	if _, err := NewRunner(spec); err == nil {
		t.Error("unknown fault kind accepted")
	}
	spec.Faults = []fault.Spec{{Kind: fault.Crash, Rate: 1.5}}
	if _, err := NewRunner(spec); err == nil {
		t.Error("out-of-range rate accepted")
	}
	spec = goldenSpec("tradeoff")
	spec.Faults = []fault.Spec{{Kind: fault.Loss, Rate: 0.1}}
	if _, err := NewRunner(spec); err == nil {
		t.Error("active faults accepted for the tradeoff workload")
	}
	// An inactive spec is fine even for tradeoff: it changes nothing.
	spec.Faults = []fault.Spec{{Kind: fault.Loss, Rate: 0}}
	if _, err := NewRunner(spec); err != nil {
		t.Errorf("inactive fault spec rejected: %v", err)
	}
}

// TestParseFault covers the CLI grid syntax.
func TestParseFault(t *testing.T) {
	fs, err := ParseFault("sleep:0.01,0.1:w=8")
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 2 || fs[0].Rate != 0.01 || fs[1].Rate != 0.1 ||
		fs[0].Kind != fault.Sleep || fs[0].Window != 8 || fs[1].Window != 8 {
		t.Errorf("parsed %+v", fs)
	}
	if fs[0].Label() != "sleep:0.01:w=8" {
		t.Errorf("label = %q", fs[0].Label())
	}
	if _, err := ParseFault("crash:0.001"); err != nil {
		t.Errorf("plain crash spec rejected: %v", err)
	}
	for _, bad := range []string{
		"crash", "crash:x", "crash:0.5:w=2", "loss:2", "sleep:0.1:v=3",
		"sleep:0.1:w=0", "meteor:0.1", "crash:0.1:w=2:x",
	} {
		if _, err := ParseFault(bad); err == nil {
			t.Errorf("ParseFault(%q) accepted", bad)
		}
	}
}

// TestFaultCellLabels checks the telemetry labels carry the fault suffix
// for active specs only.
func TestFaultCellLabels(t *testing.T) {
	spec := goldenSpec("")
	spec.Topologies = spec.Topologies[:1]
	spec.Models = spec.Models[:1]
	spec.Faults = []fault.Spec{{}, {Kind: fault.Crash, Rate: 0.001}}
	r, err := NewRunner(spec)
	if err != nil {
		t.Fatal(err)
	}
	labels := r.CellLabels()
	if len(labels) != 2 {
		t.Fatalf("labels = %v", labels)
	}
	if strings.Contains(labels[0], "crash") {
		t.Errorf("inactive cell label gained a fault suffix: %q", labels[0])
	}
	if !strings.HasSuffix(labels[1], "/crash:0.001") {
		t.Errorf("active cell label lacks fault suffix: %q", labels[1])
	}
}
