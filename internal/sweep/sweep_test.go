package sweep

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/radio"
)

// TestReproducibleAcrossWorkerCounts is the engine's core contract: a
// >= 1,000-trial matrix aggregates to bit-identical JSON whether it runs
// on one worker or eight.
func TestReproducibleAcrossWorkerCounts(t *testing.T) {
	spec := Spec{
		Topologies: []Topology{
			{Kind: "path", N: 8},
			{Kind: "star", N: 8},
		},
		Models:     []radio.Model{radio.Local},
		Algorithms: []core.Algorithm{core.AlgoAuto},
		Trials:     550, // 2 cells x 550 = 1100 trials
		MasterSeed: 42,
	}
	render := func(workers int) string {
		rep, err := Run(spec, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	serial := render(1)
	parallel := render(8)
	if serial != parallel {
		t.Errorf("aggregate JSON differs between 1 and 8 workers:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}

func TestSeedDerivationIsPositional(t *testing.T) {
	a := TrialSeed(1, 0, 0)
	b := TrialSeed(1, 0, 1)
	c := TrialSeed(1, 1, 0)
	d := TrialSeed(2, 0, 0)
	seen := map[uint64]bool{a: true}
	for _, s := range []uint64{b, c, d} {
		if seen[s] {
			t.Fatalf("seed collision across positions: %d %d %d %d", a, b, c, d)
		}
		seen[s] = true
	}
}

func TestRunAggregatesAndInvariant(t *testing.T) {
	spec := Spec{
		Topologies: []Topology{{Kind: "cycle", N: 10}},
		Models:     []radio.Model{radio.Local, radio.NoCD},
		Trials:     20,
		MasterSeed: 7,
	}
	rep, err := Run(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 2 {
		t.Fatalf("cells = %d", len(rep.Cells))
	}
	for _, c := range rep.Cells {
		if c.Trials != 20 || c.Errors != 0 {
			t.Errorf("%s/%s: trials=%d errors=%d", c.Graph, c.Model, c.Trials, c.Errors)
		}
		if c.Completed == 0 {
			t.Errorf("%s/%s: no completed trials", c.Graph, c.Model)
		}
		// The awake-slot invariant, aggregated: worst-case energy never
		// exceeds worst-case slots.
		if c.MaxEnergy.Max > c.Slots.Max {
			t.Errorf("%s/%s: maxE %v > slots %v", c.Graph, c.Model, c.MaxEnergy.Max, c.Slots.Max)
		}
		if c.Slots.P50 > c.Slots.P99 || c.Slots.P99 > c.Slots.Max {
			t.Errorf("%s/%s: percentiles out of order: %+v", c.Graph, c.Model, c.Slots)
		}
	}
}

func TestTrialErrorsAreRecordedNotFatal(t *testing.T) {
	// Deterministic No-CD does not exist: every trial must fail softly.
	spec := Spec{
		Topologies: []Topology{{Kind: "path", N: 6}},
		Models:     []radio.Model{radio.NoCD},
		Algorithms: []core.Algorithm{core.AlgoDeterministic},
		Trials:     5,
		MasterSeed: 3,
	}
	rep, err := Run(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cells[0].Errors != 5 || rep.Cells[0].Completed != 0 {
		t.Errorf("want 5 soft errors, got %+v", rep.Cells[0])
	}
	if rep.Cells[0].Slots.Count != 0 {
		t.Errorf("errored trials leaked into aggregates: %+v", rep.Cells[0].Slots)
	}
}

func TestSpecValidation(t *testing.T) {
	if _, err := Run(Spec{Trials: 1}, Options{}); err == nil {
		t.Error("empty topology list accepted")
	}
	if _, err := Run(Spec{Topologies: []Topology{{Kind: "path", N: 4}}}, Options{}); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := Run(Spec{Topologies: []Topology{{Kind: "nope", N: 4}}, Trials: 1}, Options{}); err == nil {
		t.Error("unknown topology accepted")
	}
	if _, err := Run(Spec{Topologies: []Topology{{Kind: "path", N: 4}}, Trials: 1, Source: 9}, Options{}); err == nil {
		t.Error("out-of-range source accepted")
	}
}

func TestCSVExport(t *testing.T) {
	spec := Spec{
		Topologies: []Topology{{Kind: "path", N: 6}},
		Models:     []radio.Model{radio.Local},
		Trials:     4,
		MasterSeed: 5,
	}
	rep, err := Run(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "graph,n,model,algorithm,trials") {
		t.Errorf("csv header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "path-6,6,LOCAL,auto,4,") {
		t.Errorf("csv row = %q", lines[1])
	}
}

func TestParseTopology(t *testing.T) {
	ts, err := ParseTopology("gnp:32,64:p=0.2,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 || ts[0].N != 32 || ts[1].N != 64 || ts[0].P != 0.2 || ts[1].Seed != 7 {
		t.Errorf("parsed %+v", ts)
	}
	if _, err := ParseTopology("gnp"); err == nil {
		t.Error("missing sizes accepted")
	}
	if _, err := ParseTopology("path:0"); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := ParseTopology("gnp:8:frob=1"); err == nil {
		t.Error("unknown option accepted")
	}
	grid, err := ParseTopology("grid:4:cols=6")
	if err != nil {
		t.Fatal(err)
	}
	g, err := grid[0].Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 24 {
		t.Errorf("grid 4x6 has %d vertices", g.N())
	}
}

func TestParseModelsAndAlgorithms(t *testing.T) {
	ms, err := ParseModels("local,No-CD,cd*")
	if err != nil {
		t.Fatal(err)
	}
	want := []radio.Model{radio.Local, radio.NoCD, radio.CDStar}
	for i := range want {
		if ms[i] != want[i] {
			t.Errorf("models = %v", ms)
		}
	}
	if _, err := ParseModels("quantum"); err == nil {
		t.Error("unknown model accepted")
	}
	as, err := ParseAlgorithms("auto,path,baseline-decay")
	if err != nil {
		t.Fatal(err)
	}
	if as[0] != core.AlgoAuto || as[1] != core.AlgoPath || as[2] != core.AlgoBaselineDecay {
		t.Errorf("algorithms = %v", as)
	}
	if _, err := ParseAlgorithms("magic"); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestCollectTrialsOrderedAndFiltered(t *testing.T) {
	out := CollectTrials(10, 4, func(i int) (int, bool) {
		return i * i, i%2 == 0 // keep even indices only
	})
	want := []int{0, 4, 16, 36, 64}
	if len(out) != len(want) {
		t.Fatalf("collected %v", out)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("collected %v, want %v (trial order must survive parallelism)", out, want)
		}
	}
}

func TestRunTrialsCoversAllIndices(t *testing.T) {
	hit := make([]int, 100)
	RunTrials(100, 7, func(i int) { hit[i]++ })
	for i, h := range hit {
		if h != 1 {
			t.Fatalf("trial %d ran %d times", i, h)
		}
	}
	RunTrials(0, 4, func(i int) { t.Error("fn called for zero trials") })
}

// goldenSpec is the fixed spec whose aggregate JSON was captured from the
// pre-workload engine (testdata/golden_broadcast.json, generated by
// `sweep -topo path:8 -topo star:8 -models local,nocd -algos auto
// -trials 60 -seed 42`).
func goldenSpec(workloadName string) Spec {
	return Spec{
		Topologies: []Topology{{Kind: "path", N: 8}, {Kind: "star", N: 8}},
		Models:     []radio.Model{radio.Local, radio.NoCD},
		Algorithms: []core.Algorithm{core.AlgoAuto},
		Workload:   workloadName,
		Trials:     60,
		MasterSeed: 42,
	}
}

// TestBroadcastWorkloadMatchesGolden pins the compatibility contract: the
// workload-based engine reproduces the pre-workload JSON byte for byte,
// both for the implicit default and for -workload broadcast.
func TestBroadcastWorkloadMatchesGolden(t *testing.T) {
	golden, err := os.ReadFile("testdata/golden_broadcast.json")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"", "broadcast"} {
		rep, err := Run(goldenSpec(name), Options{})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if buf.String() != string(golden) {
			t.Errorf("workload=%q JSON diverges from the pre-workload golden:\n%s", name, buf.String())
		}
	}
}

// renderJSON runs the spec and serializes the report.
func renderJSON(t *testing.T, spec Spec, workers int) string {
	t.Helper()
	rep, err := Run(spec, Options{Workers: workers})
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// The per-workload determinism contract: bit-identical aggregates for
// any worker count.

func TestMsrcWorkloadDeterministicAcrossWorkers(t *testing.T) {
	spec := Spec{
		Topologies:     []Topology{{Kind: "path", N: 10}, {Kind: "cycle", N: 10}},
		Models:         []radio.Model{radio.Local},
		Workload:       "msrc",
		WorkloadParams: map[string]string{"k": "2,3"},
		Trials:         40,
		MasterSeed:     11,
	}
	serial, parallel := renderJSON(t, spec, 1), renderJSON(t, spec, 8)
	if serial != parallel {
		t.Errorf("msrc aggregates differ between 1 and 8 workers:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
	if !strings.Contains(serial, `"workload": "msrc"`) || !strings.Contains(serial, `"front0"`) {
		t.Errorf("msrc report missing workload tag or front columns:\n%s", serial)
	}
}

func TestLeaderWorkloadDeterministicAcrossWorkers(t *testing.T) {
	spec := Spec{
		Topologies:     []Topology{{Kind: "clique", N: 12}},
		Models:         []radio.Model{radio.CD, radio.NoCD},
		Workload:       "leader",
		WorkloadParams: map[string]string{"proto": "rand,det"},
		Trials:         40,
		MasterSeed:     13,
	}
	serial, parallel := renderJSON(t, spec, 1), renderJSON(t, spec, 8)
	if serial != parallel {
		t.Errorf("leader aggregates differ between 1 and 8 workers:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
	if !strings.Contains(serial, `"params": "proto=rand"`) || !strings.Contains(serial, `"electSlot"`) {
		t.Errorf("leader report missing param labels or columns:\n%s", serial)
	}
}

func TestTradeoffWorkloadDeterministicAcrossWorkers(t *testing.T) {
	spec := Spec{
		Topologies: []Topology{{Kind: "star", N: 12}},
		Models:     []radio.Model{radio.CD},
		Workload:   "tradeoff",
		Trials:     8,
		MasterSeed: 17,
		Lean:       true,
	}
	serial, parallel := renderJSON(t, spec, 1), renderJSON(t, spec, 8)
	if serial != parallel {
		t.Errorf("tradeoff aggregates differ between 1 and 8 workers:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
	// One cell per default beta grid point, labeled.
	rep, err := Run(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 3 {
		t.Fatalf("tradeoff cells = %d, want 3 (beta grid)", len(rep.Cells))
	}
	for _, c := range rep.Cells {
		if !strings.HasPrefix(c.Params, "beta=") {
			t.Errorf("cell params = %q", c.Params)
		}
		if len(c.Extra) != 1 || c.Extra[0].Name != "beta" {
			t.Errorf("cell extra = %+v", c.Extra)
		}
	}
}

func TestUnknownWorkloadRejected(t *testing.T) {
	spec := goldenSpec("frobnicate")
	spec.Trials = 1
	if _, err := Run(spec, Options{}); err == nil {
		t.Error("unknown workload accepted")
	} else if !strings.Contains(err.Error(), "broadcast") {
		t.Errorf("error %q does not list valid workloads", err)
	}
}

func TestHeterogeneousCSVColumns(t *testing.T) {
	spec := Spec{
		Topologies:     []Topology{{Kind: "path", N: 8}},
		Models:         []radio.Model{radio.Local},
		Workload:       "msrc",
		WorkloadParams: map[string]string{"k": "2,3"},
		Trials:         4,
		MasterSeed:     5,
	}
	rep, err := Run(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), buf.String())
	}
	header := lines[0]
	for _, col := range []string{"params", "front0_mean", "front2_mean", "frontMax_max"} {
		if !strings.Contains(header, col) {
			t.Errorf("csv header missing %q: %s", col, header)
		}
	}
	// The k=2 cell has no front2 column: its cells stay empty.
	if !strings.Contains(lines[1], ",,") {
		t.Errorf("k=2 row should leave front2 columns empty: %s", lines[1])
	}
	if strings.Contains(lines[2], ",,") {
		t.Errorf("k=3 row should fill every column: %s", lines[2])
	}
}
