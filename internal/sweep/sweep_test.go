package sweep

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/radio"
)

// TestReproducibleAcrossWorkerCounts is the engine's core contract: a
// >= 1,000-trial matrix aggregates to bit-identical JSON whether it runs
// on one worker or eight.
func TestReproducibleAcrossWorkerCounts(t *testing.T) {
	spec := Spec{
		Topologies: []Topology{
			{Kind: "path", N: 8},
			{Kind: "star", N: 8},
		},
		Models:     []radio.Model{radio.Local},
		Algorithms: []core.Algorithm{core.AlgoAuto},
		Trials:     550, // 2 cells x 550 = 1100 trials
		MasterSeed: 42,
	}
	render := func(workers int) string {
		rep, err := Run(spec, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	serial := render(1)
	parallel := render(8)
	if serial != parallel {
		t.Errorf("aggregate JSON differs between 1 and 8 workers:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}

func TestSeedDerivationIsPositional(t *testing.T) {
	a := TrialSeed(1, 0, 0)
	b := TrialSeed(1, 0, 1)
	c := TrialSeed(1, 1, 0)
	d := TrialSeed(2, 0, 0)
	seen := map[uint64]bool{a: true}
	for _, s := range []uint64{b, c, d} {
		if seen[s] {
			t.Fatalf("seed collision across positions: %d %d %d %d", a, b, c, d)
		}
		seen[s] = true
	}
}

func TestRunAggregatesAndInvariant(t *testing.T) {
	spec := Spec{
		Topologies: []Topology{{Kind: "cycle", N: 10}},
		Models:     []radio.Model{radio.Local, radio.NoCD},
		Trials:     20,
		MasterSeed: 7,
	}
	rep, err := Run(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 2 {
		t.Fatalf("cells = %d", len(rep.Cells))
	}
	for _, c := range rep.Cells {
		if c.Trials != 20 || c.Errors != 0 {
			t.Errorf("%s/%s: trials=%d errors=%d", c.Graph, c.Model, c.Trials, c.Errors)
		}
		if c.Completed == 0 {
			t.Errorf("%s/%s: no completed trials", c.Graph, c.Model)
		}
		// The awake-slot invariant, aggregated: worst-case energy never
		// exceeds worst-case slots.
		if c.MaxEnergy.Max > c.Slots.Max {
			t.Errorf("%s/%s: maxE %v > slots %v", c.Graph, c.Model, c.MaxEnergy.Max, c.Slots.Max)
		}
		if c.Slots.P50 > c.Slots.P99 || c.Slots.P99 > c.Slots.Max {
			t.Errorf("%s/%s: percentiles out of order: %+v", c.Graph, c.Model, c.Slots)
		}
	}
}

func TestTrialErrorsAreRecordedNotFatal(t *testing.T) {
	// Deterministic No-CD does not exist: every trial must fail softly.
	spec := Spec{
		Topologies: []Topology{{Kind: "path", N: 6}},
		Models:     []radio.Model{radio.NoCD},
		Algorithms: []core.Algorithm{core.AlgoDeterministic},
		Trials:     5,
		MasterSeed: 3,
	}
	rep, err := Run(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cells[0].Errors != 5 || rep.Cells[0].Completed != 0 {
		t.Errorf("want 5 soft errors, got %+v", rep.Cells[0])
	}
	if rep.Cells[0].Slots.Count != 0 {
		t.Errorf("errored trials leaked into aggregates: %+v", rep.Cells[0].Slots)
	}
}

func TestSpecValidation(t *testing.T) {
	if _, err := Run(Spec{Trials: 1}, Options{}); err == nil {
		t.Error("empty topology list accepted")
	}
	if _, err := Run(Spec{Topologies: []Topology{{Kind: "path", N: 4}}}, Options{}); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := Run(Spec{Topologies: []Topology{{Kind: "nope", N: 4}}, Trials: 1}, Options{}); err == nil {
		t.Error("unknown topology accepted")
	}
	if _, err := Run(Spec{Topologies: []Topology{{Kind: "path", N: 4}}, Trials: 1, Source: 9}, Options{}); err == nil {
		t.Error("out-of-range source accepted")
	}
}

func TestCSVExport(t *testing.T) {
	spec := Spec{
		Topologies: []Topology{{Kind: "path", N: 6}},
		Models:     []radio.Model{radio.Local},
		Trials:     4,
		MasterSeed: 5,
	}
	rep, err := Run(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "graph,n,model,algorithm,trials") {
		t.Errorf("csv header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "path-6,6,LOCAL,auto,4,") {
		t.Errorf("csv row = %q", lines[1])
	}
}

func TestParseTopology(t *testing.T) {
	ts, err := ParseTopology("gnp:32,64:p=0.2,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 || ts[0].N != 32 || ts[1].N != 64 || ts[0].P != 0.2 || ts[1].Seed != 7 {
		t.Errorf("parsed %+v", ts)
	}
	if _, err := ParseTopology("gnp"); err == nil {
		t.Error("missing sizes accepted")
	}
	if _, err := ParseTopology("path:0"); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := ParseTopology("gnp:8:frob=1"); err == nil {
		t.Error("unknown option accepted")
	}
	grid, err := ParseTopology("grid:4:cols=6")
	if err != nil {
		t.Fatal(err)
	}
	g, err := grid[0].Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 24 {
		t.Errorf("grid 4x6 has %d vertices", g.N())
	}
}

func TestParseModelsAndAlgorithms(t *testing.T) {
	ms, err := ParseModels("local,No-CD,cd*")
	if err != nil {
		t.Fatal(err)
	}
	want := []radio.Model{radio.Local, radio.NoCD, radio.CDStar}
	for i := range want {
		if ms[i] != want[i] {
			t.Errorf("models = %v", ms)
		}
	}
	if _, err := ParseModels("quantum"); err == nil {
		t.Error("unknown model accepted")
	}
	as, err := ParseAlgorithms("auto,path,baseline-decay")
	if err != nil {
		t.Fatal(err)
	}
	if as[0] != core.AlgoAuto || as[1] != core.AlgoPath || as[2] != core.AlgoBaselineDecay {
		t.Errorf("algorithms = %v", as)
	}
	if _, err := ParseAlgorithms("magic"); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestCollectTrialsOrderedAndFiltered(t *testing.T) {
	out := CollectTrials(10, 4, func(i int) (int, bool) {
		return i * i, i%2 == 0 // keep even indices only
	})
	want := []int{0, 4, 16, 36, 64}
	if len(out) != len(want) {
		t.Fatalf("collected %v", out)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("collected %v, want %v (trial order must survive parallelism)", out, want)
		}
	}
}

func TestRunTrialsCoversAllIndices(t *testing.T) {
	hit := make([]int, 100)
	RunTrials(100, 7, func(i int) { hit[i]++ })
	for i, h := range hit {
		if h != 1 {
			t.Fatalf("trial %d ran %d times", i, h)
		}
	}
	RunTrials(0, 4, func(i int) { t.Error("fn called for zero trials") })
}
