package core

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/radio"
)

// wantErr runs Broadcast and asserts the error mentions substr.
func wantErr(t *testing.T, substr string, g *graph.Graph, source int, opts ...Option) {
	t.Helper()
	_, err := Broadcast(g, source, opts...)
	if err == nil {
		t.Fatalf("want error containing %q, got nil", substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("want error containing %q, got %v", substr, err)
	}
}

// TestOptionValidationEpsilon rejects out-of-range Theorem 12/16 eps
// values on every algorithm that consumes them — and also when the
// algorithm would ignore the knob, so a typo never silently runs with a
// default.
func TestOptionValidationEpsilon(t *testing.T) {
	g := graph.Star(8)
	for _, eps := range []float64{0, -0.25, 1.5} {
		wantErr(t, "eps", g, 0, WithEpsilon(eps), WithAlgorithm(AlgoDiamTime))
		wantErr(t, "eps", g, 0, WithEpsilon(eps), WithModel(radio.CD), WithAlgorithm(AlgoTheorem12))
		wantErr(t, "eps", g, 0, WithEpsilon(eps)) // AlgoAuto ignores eps; still rejected
	}
	// In-range values pass through to the algorithm.
	if _, err := Broadcast(g, 0, WithEpsilon(0.5), WithAlgorithm(AlgoDiamTime),
		WithLeanScale()); err != nil {
		t.Fatalf("eps=0.5: %v", err)
	}
}

// TestOptionValidationXi rejects out-of-range Theorem 20 xi values.
func TestOptionValidationXi(t *testing.T) {
	g := graph.Path(6)
	for _, xi := range []float64{0, -1, 2} {
		wantErr(t, "xi", g, 0, WithXi(xi), WithModel(radio.CD), WithAlgorithm(AlgoCDMerge))
		wantErr(t, "xi", g, 0, WithXi(xi)) // ignored knob, still rejected
	}
	if _, err := Broadcast(g, 0, WithXi(0.5), WithModel(radio.CD),
		WithAlgorithm(AlgoCDMerge), WithLeanScale()); err != nil {
		t.Fatalf("xi=0.5: %v", err)
	}
}

// TestOptionValidationSources covers the WithSources error paths: the
// single-source-only algorithms reject k >= 2, and malformed source
// sets are rejected for every algorithm.
func TestOptionValidationSources(t *testing.T) {
	p := graph.Path(8)
	// Path algorithm and the deterministic constructions are inherently
	// single-source.
	wantErr(t, "does not support multiple sources", p, 0,
		WithSources(0, 7), WithModel(radio.Local), WithAlgorithm(AlgoPath))
	wantErr(t, "does not support multiple sources", p, 0,
		WithSources(0, 7), WithModel(radio.CD), WithAlgorithm(AlgoDeterministic))
	// Malformed source sets.
	wantErr(t, "out of range", p, 0, WithSources(0, 8))
	wantErr(t, "out of range", p, 0, WithSources(-1))
	wantErr(t, "duplicate source", p, 0, WithSources(3, 3))
	// A single WithSources entry is equivalent to the positional form.
	r1, err := Broadcast(p, 0, WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Broadcast(p, 5, WithSources(0), WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Slots != r2.Slots || r1.MaxEnergy() != r2.MaxEnergy() {
		t.Fatalf("WithSources(0) diverges from positional source: %+v vs %+v", r1, r2)
	}
}

// TestOptionValidationGraphs covers the graph error paths: nil, empty,
// and disconnected inputs fail fast for both single- and multi-source
// calls.
func TestOptionValidationGraphs(t *testing.T) {
	if _, err := Broadcast(nil, 0); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := Broadcast(graph.New(0), 0); err == nil {
		t.Fatal("empty graph accepted")
	}
	disc := graph.New(4)
	disc.AddEdge(0, 1) // 2-3 unreachable
	wantErr(t, "disconnected", disc, 0)
	wantErr(t, "disconnected", disc, 0, WithSources(0, 2))
	// Positional source out of range.
	wantErr(t, "out of range", graph.Path(4), 9)
}
