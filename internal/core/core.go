// Package core is the library's public façade: one Broadcast entry point
// covering every algorithm in the paper, selected and parameterized with
// functional options.
//
// The zero-configuration call
//
//	res, err := core.Broadcast(g, source)
//
// runs the paper's best general algorithm for the default model (No-CD,
// randomized) and reports slot count and per-device energy — the paper's
// two complexity measures.
package core

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/cdmerge"
	"repro/internal/coloring"
	"repro/internal/detcast"
	"repro/internal/dtime"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/iterclust"
	"repro/internal/pathcast"
	"repro/internal/radio"
)

// Algorithm identifies a Broadcast algorithm from the paper.
type Algorithm int

// The implemented algorithms.
const (
	// AlgoAuto picks the paper's best algorithm for the chosen model and
	// topology.
	AlgoAuto Algorithm = iota
	// AlgoIterClust is the Theorem 11 iterative clustering (LOCAL, CD,
	// No-CD).
	AlgoIterClust
	// AlgoTheorem12 is the CD energy-improved variant of Theorem 12.
	AlgoTheorem12
	// AlgoDiamTime is the Theorem 16 O(D^{1+eps})-time algorithm.
	AlgoDiamTime
	// AlgoCDMerge is the Theorem 20 CD algorithm (near-optimal energy).
	AlgoCDMerge
	// AlgoPath is the Section 8 path algorithm (Theorem 21).
	AlgoPath
	// AlgoBoundedDegree is Corollary 13: the LOCAL algorithm through the
	// Theorem 3 simulation on a physical No-CD network.
	AlgoBoundedDegree
	// AlgoDeterministic selects Appendix A (Theorem 25 for LOCAL,
	// Theorem 27 for CD).
	AlgoDeterministic
	// AlgoBaselineDecay is the classical BGI decay broadcast comparator.
	AlgoBaselineDecay
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case AlgoAuto:
		return "auto"
	case AlgoIterClust:
		return "iterclust"
	case AlgoTheorem12:
		return "theorem12"
	case AlgoDiamTime:
		return "dtime"
	case AlgoCDMerge:
		return "cdmerge"
	case AlgoPath:
		return "path"
	case AlgoBoundedDegree:
		return "bounded-degree"
	case AlgoDeterministic:
		return "deterministic"
	case AlgoBaselineDecay:
		return "baseline-decay"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// config collects the options.
type config struct {
	model   radio.Model
	algo    Algorithm
	seed    uint64
	msg     any
	eps     float64
	xi      float64
	epsSet  bool // WithEpsilon was used: validate the value
	xiSet   bool // WithXi was used: validate the value
	trace   func(radio.Event)
	lean    bool
	sources []int
	sims    *radio.SimCache
	fault   fault.Spec
}

// Option configures Broadcast.
type Option func(*config)

// WithModel selects the collision model (default No-CD).
func WithModel(m radio.Model) Option { return func(c *config) { c.model = m } }

// WithAlgorithm forces a specific algorithm (default AlgoAuto).
func WithAlgorithm(a Algorithm) Option { return func(c *config) { c.algo = a } }

// WithSeed sets the root random seed (default 1).
func WithSeed(seed uint64) Option { return func(c *config) { c.seed = seed } }

// WithMessage sets the broadcast payload (default the string "m").
func WithMessage(msg any) Option { return func(c *config) { c.msg = msg } }

// WithEpsilon sets the Theorem 12/16 time/energy tradeoff parameter.
// Valid values lie in (0, 1]; Broadcast rejects anything else instead
// of silently substituting a default.
func WithEpsilon(eps float64) Option {
	return func(c *config) { c.eps, c.epsSet = eps, true }
}

// WithXi sets the Theorem 20 time/energy tradeoff parameter. Valid
// values lie in (0, 1]; Broadcast rejects anything else instead of
// silently substituting a default.
func WithXi(xi float64) Option {
	return func(c *config) { c.xi, c.xiSet = xi, true }
}

// WithTrace attaches a slot-level event tracer.
func WithTrace(f func(radio.Event)) Option { return func(c *config) { c.trace = f } }

// WithLeanScale applies experiment-scale protocol constants to the heavy
// algorithms (fewer repetitions, identical protocol structure) — used by
// benches and examples on small graphs.
func WithLeanScale() Option { return func(c *config) { c.lean = true } }

// WithSimCache reuses simulators from a per-goroutine cache
// (radio.SimCache) across repeated Broadcast calls on one topology —
// the Monte-Carlo hot path. Purely an allocation optimization:
// measurements and determinism are unaffected. The cache must not be
// shared between goroutines; internal/sweep keeps one per worker.
func WithSimCache(c *radio.SimCache) Option { return func(cfg *config) { cfg.sims = c } }

// WithSources replaces the positional source with a set of broadcasting
// vertices (k-source broadcast). Each source starts the protocol holding
// its own tagged copy of the message; Result.InformedBy reports, per
// vertex, which source's copy arrived first. With zero or one source the
// call is equivalent to the plain positional form. Algorithms whose
// schedule is inherently single-source (path, and the LOCAL/CD
// deterministic constructions) reject len(sources) > 1.
func WithSources(sources ...int) Option {
	return func(c *config) { c.sources = append([]int(nil), sources...) }
}

// WithFault injects deterministic faults — crash-stop devices, forced
// sleep windows, or lossy slots — at the given spec's rate. Fault
// decisions come from a positional hash stream independent of every
// protocol coin flip, so an inactive spec (the zero value, or rate 0)
// leaves the run byte-identical to an unfaulted one, and results are
// bit-identical between Broadcast and BroadcastBatch at any width. See
// internal/fault for the determinism contract.
func WithFault(s fault.Spec) Option { return func(c *config) { c.fault = s } }

// Result reports one Broadcast run.
type Result struct {
	// Algorithm is the algorithm actually used.
	Algorithm Algorithm
	// Model is the collision model.
	Model radio.Model
	// Slots is the number of time slots used (the paper's time measure).
	Slots uint64
	// Events is the number of device actions the simulator processed —
	// the wall-cost of the run, as opposed to the virtual-time Slots.
	Events uint64
	// Energy is the per-device awake-slot count (a full-duplex
	// transmit+listen slot costs 1, per the paper's energy measure).
	Energy []int
	// Informed marks devices holding the message at the end.
	Informed []bool
	// Sources lists the broadcasting vertices (length 1 unless
	// WithSources was used).
	Sources []int
	// InformedBy[v] is the index into Sources of the source whose copy of
	// the message reached v first, or -1 for uninformed vertices. In a
	// single-source run every informed vertex reports 0.
	InformedBy []int
	// FaultCrashes, FaultSleeps and FaultErasures count the faults
	// WithFault injected (all zero when the spec is inactive).
	FaultCrashes  int
	FaultSleeps   int
	FaultErasures int
}

// MaxEnergy is the paper's energy complexity: max over devices.
func (r *Result) MaxEnergy() int {
	m := 0
	for _, e := range r.Energy {
		if e > m {
			m = e
		}
	}
	return m
}

// TotalEnergy sums all devices' energy.
func (r *Result) TotalEnergy() int {
	t := 0
	for _, e := range r.Energy {
		t += e
	}
	return t
}

// AllInformed reports whether the broadcast completed.
func (r *Result) AllInformed() bool {
	for _, ok := range r.Informed {
		if !ok {
			return false
		}
	}
	return true
}

// Fronts returns the per-source informed fronts: Fronts()[i] counts the
// vertices whose message copy originated at Sources[i] (sources count
// themselves). The fronts partition the informed vertex set.
func (r *Result) Fronts() []int {
	fronts := make([]int, len(r.Sources))
	for _, src := range r.InformedBy {
		if src >= 0 && src < len(fronts) {
			fronts[src]++
		}
	}
	return fronts
}

// IsPath reports whether g is a simple path (the Section 8 special case).
func IsPath(g *graph.Graph) bool {
	if g.N() <= 1 {
		return g.N() == 1
	}
	ends := 0
	for v := 0; v < g.N(); v++ {
		switch g.Degree(v) {
		case 1:
			ends++
		case 2:
		default:
			return false
		}
	}
	return ends == 2 && g.M() == g.N()-1 && g.IsConnected()
}

// resolveCall validates the graph, options and source set, and resolves
// AlgoAuto to a concrete algorithm — every check both Broadcast entry
// points share, factored so the solo and batch paths reject identical
// inputs with identical errors.
func resolveCall(g *graph.Graph, source int, opts []Option) (config, []int, Algorithm, error) {
	cfg := config{model: radio.NoCD, algo: AlgoAuto, seed: 1, msg: "m", eps: 0.5, xi: 0.5}
	if g == nil || g.N() == 0 {
		return cfg, nil, AlgoAuto, fmt.Errorf("core: nil or empty graph")
	}
	if !g.IsConnected() {
		return cfg, nil, AlgoAuto, fmt.Errorf("core: graph %q is disconnected", g.Name())
	}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.epsSet && (cfg.eps <= 0 || cfg.eps > 1) {
		return cfg, nil, AlgoAuto, fmt.Errorf("core: eps %v outside (0, 1]", cfg.eps)
	}
	if cfg.xiSet && (cfg.xi <= 0 || cfg.xi > 1) {
		return cfg, nil, AlgoAuto, fmt.Errorf("core: xi %v outside (0, 1]", cfg.xi)
	}
	if err := cfg.fault.Validate(); err != nil {
		return cfg, nil, AlgoAuto, fmt.Errorf("core: %w", err)
	}
	sources := cfg.sources
	if len(sources) == 0 {
		sources = []int{source}
	}
	seen := make(map[int]bool, len(sources))
	for _, s := range sources {
		if s < 0 || s >= g.N() {
			return cfg, nil, AlgoAuto, fmt.Errorf("core: source %d out of range [0,%d)", s, g.N())
		}
		if seen[s] {
			return cfg, nil, AlgoAuto, fmt.Errorf("core: duplicate source %d", s)
		}
		seen[s] = true
	}
	algo := cfg.algo
	if algo == AlgoAuto {
		switch {
		case cfg.model == radio.Local && IsPath(g) && len(sources) == 1:
			algo = AlgoPath
		case cfg.model == radio.CD:
			algo = AlgoTheorem12
		default:
			algo = AlgoIterClust
		}
	}
	return cfg, sources, algo, nil
}

// plan is one Broadcast call's seed-independent preparation: parameter
// validation, diameter computation, and protocol-constant construction
// hoisted out of the per-seed work. build creates one run's fresh device
// population plus the collector that maps the raw radio result to the
// public Result; the returned radio.Config wants only its Seed filled.
// A seed enters a trial solely through radio.Config.Seed, so one plan
// serves any number of trials — the hoisting BroadcastBatch amortizes.
type plan struct {
	rcfg  radio.Config
	build func() (pop []radio.Device, collect func(*radio.Result) *Result)
}

// buildPlan dispatches to the single- or multi-source planner.
func buildPlan(g *graph.Graph, sources []int, algo Algorithm, cfg config) (plan, error) {
	if len(sources) > 1 {
		return multiPlan(g, sources, algo, cfg)
	}
	return singlePlan(g, sources[0], algo, cfg)
}

// Broadcast runs the selected algorithm on g from source and returns the
// measured result. WithSources replaces the positional source with a set
// of broadcasting vertices.
func Broadcast(g *graph.Graph, source int, opts ...Option) (*Result, error) {
	cfg, sources, algo, err := resolveCall(g, source, opts)
	if err != nil {
		return nil, err
	}
	pl, err := buildPlan(g, sources, algo, cfg)
	if err != nil {
		return nil, err
	}
	pop, collect := pl.build()
	rcfg := pl.rcfg
	rcfg.Seed = cfg.seed
	rcfg.Fault = cfg.fault
	res, err := radio.RunDevices(rcfg, pop)
	if err != nil {
		return nil, err
	}
	return collect(res), nil
}

// BroadcastBatch runs one trial per seed — same topology, same options,
// positional seeds — in lockstep on one radio.BatchSimulator, sharing
// the plan's seed-independent work (diameter, protocol constants,
// validation) across the whole batch. Lane i's result and error are
// exactly what Broadcast with WithSeed(seeds[i]) returns, so callers
// may batch at any width without perturbing measurements; the final
// error reports whole-call problems (bad graph, bad options, WithTrace).
// Traced runs must use Broadcast: lanes interleave by slot time, so no
// merged event stream would be any single trial's trace.
func BroadcastBatch(g *graph.Graph, source int, seeds []uint64, opts ...Option) ([]*Result, []error, error) {
	cfg, sources, algo, err := resolveCall(g, source, opts)
	if err != nil {
		return nil, nil, err
	}
	if cfg.trace != nil {
		return nil, nil, fmt.Errorf("core: BroadcastBatch does not support WithTrace")
	}
	pl, err := buildPlan(g, sources, algo, cfg)
	if err != nil {
		return nil, nil, err
	}
	w := len(seeds)
	pops := make([][]radio.Device, w)
	collects := make([]func(*radio.Result) *Result, w)
	for i := 0; i < w; i++ {
		pops[i], collects[i] = pl.build()
	}
	pl.rcfg.Fault = cfg.fault
	rress, rerrs, err := radio.RunBatchDevices(pl.rcfg, seeds, pops)
	if err != nil {
		return nil, nil, err
	}
	results := make([]*Result, w)
	errs := make([]error, w)
	for i := 0; i < w; i++ {
		if rerrs[i] != nil {
			errs[i] = rerrs[i]
			continue
		}
		results[i] = collects[i](rress[i])
	}
	return results, errs, nil
}

// annotateSingle fills the source fields of a single-source result.
func annotateSingle(res *Result, source int) *Result {
	res.Sources = []int{source}
	res.InformedBy = make([]int, len(res.Informed))
	for v, ok := range res.Informed {
		if ok {
			res.InformedBy[v] = 0
		} else {
			res.InformedBy[v] = -1
		}
	}
	return res
}

// singlePlan prepares a single-source run: the per-algorithm parameter
// and configuration construction the old dispatch performed per seed,
// now done once. Config quirks are preserved exactly — only pathcast,
// the bounded-degree simulation, and the deterministic construction see
// the trace sink on the single-source path, and each algorithm keeps
// its historical Model/MaxSlots/IDSpace settings — so a planned run is
// bit-identical to its pre-plan ancestor.
func singlePlan(g *graph.Graph, source int, algo Algorithm, cfg config) (plan, error) {
	n, delta := g.N(), g.MaxDegree()
	switch algo {
	case AlgoIterClust, AlgoTheorem12:
		var p iterclust.Params
		if algo == AlgoTheorem12 {
			if cfg.model != radio.CD {
				return plan{}, fmt.Errorf("core: Theorem 12 requires the CD model")
			}
			p = iterclust.NewTheorem12Params(n, delta, cfg.eps)
		} else {
			p = iterclust.NewParams(cfg.model, n, delta)
		}
		return plan{
			rcfg: radio.Config{Graph: g, Model: p.Model, Sims: cfg.sims},
			build: func() ([]radio.Device, func(*radio.Result) *Result) {
				devs := make([]iterclust.DeviceResult, n)
				pop := make([]radio.Device, n)
				for v := 0; v < n; v++ {
					pop[v].Proc = iterclust.Proc(p, v == source, cfg.msg, &devs[v])
				}
				return pop, func(res *radio.Result) *Result {
					return annotateSingle(wrap(algo, cfg.model, res, informedOf(devs)), source)
				}
			},
		}, nil

	case AlgoDiamTime:
		d, err := g.Diameter()
		if err != nil {
			return plan{}, err
		}
		p, err := dtime.NewParams(cfg.model, n, delta, d, cfg.eps)
		if err != nil {
			return plan{}, err
		}
		if cfg.lean {
			p = p.Tune(n, 10, 6, 10, 0)
		}
		return plan{
			rcfg: radio.Config{Graph: g, Model: p.SR.Model, MaxSlots: 1 << 62, Sims: cfg.sims},
			build: func() ([]radio.Device, func(*radio.Result) *Result) {
				devs := make([]dtime.DeviceResult, n)
				pop := make([]radio.Device, n)
				for v := 0; v < n; v++ {
					pop[v].Proc = dtime.Proc(p, v == source, cfg.msg, &devs[v])
				}
				return pop, func(res *radio.Result) *Result {
					inf := make([]bool, n)
					for v, dres := range devs {
						inf[v] = dres.Informed
					}
					return annotateSingle(wrap(algo, cfg.model, res, inf), source)
				}
			},
		}, nil

	case AlgoCDMerge:
		p, err := cdmerge.NewParams(n, delta, cfg.xi)
		if err != nil {
			return plan{}, err
		}
		if cfg.lean {
			p = p.Tune(10, 3, n)
		}
		return plan{
			rcfg: radio.Config{Graph: g, Model: radio.CD, MaxSlots: 1 << 62, Sims: cfg.sims},
			build: func() ([]radio.Device, func(*radio.Result) *Result) {
				devs := make([]cdmerge.DeviceResult, n)
				pop := make([]radio.Device, n)
				for v := 0; v < n; v++ {
					pop[v].Proc = cdmerge.Proc(p, v == source, cfg.msg, &devs[v])
				}
				return pop, func(res *radio.Result) *Result {
					inf := make([]bool, n)
					for v, dres := range devs {
						inf[v] = dres.Informed
					}
					return annotateSingle(wrap(algo, radio.CD, res, inf), source)
				}
			},
		}, nil

	case AlgoPath:
		if err := pathcast.Validate(g, source); err != nil {
			return plan{}, err
		}
		p := pathcast.Params{Sims: cfg.sims}
		return plan{
			rcfg: radio.Config{Graph: g, Model: radio.Local, Trace: cfg.trace, Sims: cfg.sims},
			build: func() ([]radio.Device, func(*radio.Result) *Result) {
				devs := make([]pathcast.DeviceResult, n)
				pop := make([]radio.Device, n)
				for v := 0; v < n; v++ {
					pop[v].Proc = pathcast.Proc(p, g.Neighbors(v), v == source, cfg.msg, &devs[v])
				}
				return pop, func(res *radio.Result) *Result {
					inf := make([]bool, n)
					for v, dres := range devs {
						inf[v] = dres.Informed
					}
					return annotateSingle(wrap(algo, radio.Local, res, inf), source)
				}
			},
		}, nil

	case AlgoBoundedDegree:
		cp := coloring.NewParams(n, delta)
		ip := iterclust.NewParams(radio.Local, n, delta)
		return plan{
			rcfg: radio.Config{Graph: g, Model: radio.NoCD, Trace: cfg.trace,
				MaxSlots: 1 << 62, Sims: cfg.sims},
			build: func() ([]radio.Device, func(*radio.Result) *Result) {
				devs := make([]iterclust.DeviceResult, n)
				cres := make([]coloring.ColoringResult, n)
				pop := make([]radio.Device, n)
				for v := 0; v < n; v++ {
					pop[v].Proc = coloring.SimulateProc(1, cp,
						iterclust.Proc(ip, v == source, cfg.msg, &devs[v]), &cres[v])
				}
				return pop, func(res *radio.Result) *Result {
					return annotateSingle(wrap(algo, radio.NoCD, res, informedOf(devs)), source)
				}
			},
		}, nil

	case AlgoDeterministic:
		model := cfg.model
		if model == radio.NoCD {
			return plan{}, fmt.Errorf("core: no deterministic No-CD algorithm exists (the Theorem 2 lower bound is Omega(Delta))")
		}
		p, err := detcast.NewParams(model, n, n)
		if err != nil {
			return plan{}, err
		}
		return plan{
			rcfg: radio.Config{Graph: g, Model: model, IDSpace: n, Trace: cfg.trace,
				MaxSlots: 1 << 62, Sims: cfg.sims},
			build: func() ([]radio.Device, func(*radio.Result) *Result) {
				devs := make([]detcast.DeviceResult, n)
				pop := make([]radio.Device, n)
				for v := 0; v < n; v++ {
					pop[v].Proc = detcast.Proc(p, v == source, cfg.msg, &devs[v])
				}
				return pop, func(res *radio.Result) *Result {
					inf := make([]bool, n)
					for v, dres := range devs {
						inf[v] = dres.Informed
					}
					return annotateSingle(wrap(algo, model, res, inf), source)
				}
			},
		}, nil

	case AlgoBaselineDecay:
		d, err := g.Diameter()
		if err != nil {
			return plan{}, err
		}
		p := baseline.NewParams(n, delta, d)
		return plan{
			rcfg: radio.Config{Graph: g, Model: cfg.model, Sims: cfg.sims},
			build: func() ([]radio.Device, func(*radio.Result) *Result) {
				devs := make([]baseline.DeviceResult, n)
				pop := make([]radio.Device, n)
				for v := 0; v < n; v++ {
					pop[v].Proc = baseline.Proc(p, v == source, cfg.msg, &devs[v])
				}
				return pop, func(res *radio.Result) *Result {
					inf := make([]bool, n)
					for v, dres := range devs {
						inf[v] = dres.Informed
					}
					return annotateSingle(wrap(algo, cfg.model, res, inf), source)
				}
			},
		}, nil

	default:
		return plan{}, fmt.Errorf("core: unknown algorithm %v", algo)
	}
}

func informedOf(devs []iterclust.DeviceResult) []bool {
	inf := make([]bool, len(devs))
	for v, d := range devs {
		inf[v] = d.Informed
	}
	return inf
}

func wrap(a Algorithm, m radio.Model, res *radio.Result, informed []bool) *Result {
	return &Result{
		Algorithm:     a,
		Model:         m,
		Slots:         res.Slots,
		Events:        res.Events,
		Energy:        append([]int(nil), res.Energy...),
		Informed:      informed,
		FaultCrashes:  res.FaultCrashes,
		FaultSleeps:   res.FaultSleeps,
		FaultErasures: res.FaultErasures,
	}
}
