package core

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/radio"
)

func TestDefaultBroadcast(t *testing.T) {
	g := graph.GNP(20, 0.25, 1)
	res, err := Broadcast(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllInformed() {
		t.Error("default broadcast incomplete")
	}
	if res.Algorithm != AlgoIterClust || res.Model != radio.NoCD {
		t.Errorf("default selection = %v/%v", res.Algorithm, res.Model)
	}
	if res.Slots == 0 || res.MaxEnergy() == 0 {
		t.Error("empty measurements")
	}
}

func TestAutoSelectsPathAlgorithm(t *testing.T) {
	g := graph.Path(16)
	res, err := Broadcast(g, 0, WithModel(radio.Local))
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != AlgoPath {
		t.Errorf("auto on a LOCAL path chose %v", res.Algorithm)
	}
	if !res.AllInformed() {
		t.Error("incomplete")
	}
}

func TestAutoSelectsTheorem12ForCD(t *testing.T) {
	g := graph.Star(12)
	res, err := Broadcast(g, 0, WithModel(radio.CD))
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != AlgoTheorem12 {
		t.Errorf("auto on CD chose %v", res.Algorithm)
	}
	if !res.AllInformed() {
		t.Error("incomplete")
	}
}

func TestEveryAlgorithmRuns(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		opts []Option
	}{
		{"iterclust-local", graph.GNP(16, 0.3, 2), []Option{WithModel(radio.Local), WithAlgorithm(AlgoIterClust)}},
		{"iterclust-nocd", graph.Path(10), []Option{WithAlgorithm(AlgoIterClust)}},
		{"theorem12", graph.GNP(16, 0.3, 3), []Option{WithModel(radio.CD), WithAlgorithm(AlgoTheorem12)}},
		{"dtime", graph.Star(12), []Option{WithModel(radio.CD), WithAlgorithm(AlgoDiamTime), WithLeanScale()}},
		{"cdmerge", graph.Path(8), []Option{WithAlgorithm(AlgoCDMerge), WithLeanScale()}},
		{"path", graph.Path(12), []Option{WithAlgorithm(AlgoPath)}},
		{"bounded-degree", graph.Cycle(10), []Option{WithAlgorithm(AlgoBoundedDegree)}},
		{"det-local", graph.Path(8), []Option{WithModel(radio.Local), WithAlgorithm(AlgoDeterministic)}},
		{"det-cd", graph.Star(8), []Option{WithModel(radio.CD), WithAlgorithm(AlgoDeterministic)}},
		{"baseline", graph.Grid(3, 4), []Option{WithAlgorithm(AlgoBaselineDecay)}},
	}
	for _, c := range cases {
		ok := false
		for seed := uint64(1); seed <= 3 && !ok; seed++ {
			res, err := Broadcast(c.g, 0, append(c.opts, WithSeed(seed), WithMessage(c.name))...)
			if err != nil {
				t.Fatalf("%s: %v", c.name, err)
			}
			ok = res.AllInformed()
		}
		if !ok {
			t.Errorf("%s: broadcast never completed over 3 seeds", c.name)
		}
	}
}

func TestValidation(t *testing.T) {
	if _, err := Broadcast(nil, 0); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := Broadcast(graph.New(0), 0); err == nil {
		t.Error("empty graph accepted")
	}
	disc := graph.New(3)
	if err := disc.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := Broadcast(disc, 0); err == nil {
		t.Error("disconnected graph accepted")
	}
	if _, err := Broadcast(graph.Path(4), 9); err == nil {
		t.Error("bad source accepted")
	}
	if _, err := Broadcast(graph.Path(4), 0, WithAlgorithm(AlgoDeterministic)); err == nil {
		t.Error("deterministic No-CD accepted")
	}
	if _, err := Broadcast(graph.Path(4), 0, WithAlgorithm(AlgoTheorem12)); err == nil {
		t.Error("Theorem 12 outside CD accepted")
	}
	if _, err := Broadcast(graph.Star(4), 0, WithModel(radio.Local), WithAlgorithm(AlgoPath)); err == nil {
		t.Error("path algorithm on a star accepted")
	}
	if _, err := Broadcast(graph.Path(4), 0, WithAlgorithm(Algorithm(99))); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestEnergyComparisonAgainstBaseline(t *testing.T) {
	// The repo's headline claim: on a long path, the paper's algorithms
	// use far less max energy than the decay baseline.
	g := graph.Path(64)
	eff, err := Broadcast(g, 0, WithModel(radio.Local), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	base, err := Broadcast(g, 0, WithAlgorithm(AlgoBaselineDecay), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if !eff.AllInformed() || !base.AllInformed() {
		t.Fatal("incomplete broadcast")
	}
	if eff.MaxEnergy() >= base.MaxEnergy() {
		t.Errorf("path algorithm energy %d !< baseline energy %d",
			eff.MaxEnergy(), base.MaxEnergy())
	}
}

func TestAlgorithmStrings(t *testing.T) {
	algos := []Algorithm{AlgoAuto, AlgoIterClust, AlgoTheorem12, AlgoDiamTime,
		AlgoCDMerge, AlgoPath, AlgoBoundedDegree, AlgoDeterministic, AlgoBaselineDecay}
	seen := map[string]bool{}
	for _, a := range algos {
		s := a.String()
		if s == "" || seen[s] {
			t.Errorf("bad or duplicate name %q", s)
		}
		seen[s] = true
	}
	if !strings.Contains(Algorithm(42).String(), "42") {
		t.Error("unknown algorithm should stringify with its value")
	}
}

func TestIsPath(t *testing.T) {
	if !IsPath(graph.Path(5)) || !IsPath(graph.New(1)) {
		t.Error("paths not recognized")
	}
	if IsPath(graph.Cycle(5)) || IsPath(graph.Star(4)) || IsPath(graph.New(0)) {
		t.Error("non-paths recognized as paths")
	}
}

func TestTraceOption(t *testing.T) {
	g := graph.Path(8)
	events := 0
	_, err := Broadcast(g, 0, WithModel(radio.Local), WithTrace(func(radio.Event) { events++ }))
	if err != nil {
		t.Fatal(err)
	}
	if events == 0 {
		t.Error("no trace events delivered")
	}
}

func TestResultAggregates(t *testing.T) {
	r := &Result{Energy: []int{1, 5, 2}, Informed: []bool{true, true, true}}
	if r.MaxEnergy() != 5 || r.TotalEnergy() != 8 {
		t.Error("aggregates wrong")
	}
	r.Informed[1] = false
	if r.AllInformed() {
		t.Error("AllInformed wrong")
	}
}

func TestMultiSourceBroadcast(t *testing.T) {
	g := graph.Path(16)
	res, err := Broadcast(g, 0, WithSources(0, 15), WithModel(radio.Local), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllInformed() {
		t.Fatal("2-source broadcast did not complete")
	}
	if len(res.Sources) != 2 || res.Sources[0] != 0 || res.Sources[1] != 15 {
		t.Errorf("Sources = %v", res.Sources)
	}
	if res.InformedBy[0] != 0 || res.InformedBy[15] != 1 {
		t.Errorf("sources not attributed to themselves: %v", res.InformedBy)
	}
	fronts := res.Fronts()
	total := 0
	for i, f := range fronts {
		if f == 0 {
			t.Errorf("source %d has an empty front", i)
		}
		total += f
	}
	if total > g.N() {
		t.Errorf("fronts %v exceed n=%d", fronts, g.N())
	}
	for v, src := range res.InformedBy {
		if res.Informed[v] && (src < 0 || src >= len(res.Sources)) {
			t.Errorf("vertex %d informed but attributed to %d", v, src)
		}
	}
}

func TestSingleSourceHasTrivialAttribution(t *testing.T) {
	g := graph.Star(8)
	res, err := Broadcast(g, 0, WithModel(radio.Local), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sources) != 1 || res.Sources[0] != 0 {
		t.Errorf("Sources = %v", res.Sources)
	}
	for v, src := range res.InformedBy {
		want := -1
		if res.Informed[v] {
			want = 0
		}
		if src != want {
			t.Errorf("InformedBy[%d] = %d, want %d", v, src, want)
		}
	}
}

func TestMultiSourceValidation(t *testing.T) {
	g := graph.Path(8)
	if _, err := Broadcast(g, 0, WithSources(0, 0)); err == nil {
		t.Error("duplicate sources accepted")
	}
	if _, err := Broadcast(g, 0, WithSources(0, 99)); err == nil {
		t.Error("out-of-range source accepted")
	}
	if _, err := Broadcast(g, 0, WithSources(0, 7), WithAlgorithm(AlgoPath), WithModel(radio.Local)); err == nil {
		t.Error("multi-source path algorithm accepted")
	}
	if _, err := Broadcast(g, 0, WithSources(0, 7), WithAlgorithm(AlgoDeterministic), WithModel(radio.CD)); err == nil {
		t.Error("multi-source deterministic algorithm accepted")
	}
	// Auto on a LOCAL path must avoid the single-source path algorithm.
	res, err := Broadcast(g, 0, WithSources(0, 7), WithModel(radio.Local), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm == AlgoPath {
		t.Error("auto picked the path algorithm for a multi-source run")
	}
}
