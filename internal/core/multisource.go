package core

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/cdmerge"
	"repro/internal/coloring"
	"repro/internal/dtime"
	"repro/internal/graph"
	"repro/internal/iterclust"
	"repro/internal/radio"
)

// sourceTag wraps the broadcast payload of one source so that receivers
// can attribute the copy they hold to the source it originated from. The
// protocols forward payloads opaquely, so the tag survives every relay.
type sourceTag struct {
	Src  int // index into the sources slice
	Body any
}

// sourceOf recovers the source index from a device's final message, or -1.
func sourceOf(msg any) int {
	if t, ok := msg.(sourceTag); ok {
		return t.Src
	}
	return -1
}

// broadcastMulti runs a k-source broadcast (k >= 2): every source starts
// the protocol holding a tagged copy of the message and the copies race
// through the network, each vertex keeping whichever arrives first. The
// slot schedules are the same data-independent ones the single-source
// constructions use, so time and energy bounds carry over; the new
// measurement is the per-source informed fronts (Result.InformedBy).
func broadcastMulti(g *graph.Graph, sources []int, algo Algorithm, cfg config) (*Result, error) {
	n, delta := g.N(), g.MaxDegree()
	srcIdx := make(map[int]int, len(sources)) // vertex -> index into sources
	for i, s := range sources {
		srcIdx[s] = i
	}
	tagFor := func(v int) (bool, any) {
		if i, ok := srcIdx[v]; ok {
			return true, sourceTag{Src: i, Body: cfg.msg}
		}
		return false, nil
	}

	switch algo {
	case AlgoIterClust, AlgoTheorem12:
		var p iterclust.Params
		if algo == AlgoTheorem12 {
			if cfg.model != radio.CD {
				return nil, fmt.Errorf("core: Theorem 12 requires the CD model")
			}
			p = iterclust.NewTheorem12Params(n, delta, cfg.eps)
		} else {
			p = iterclust.NewParams(cfg.model, n, delta)
		}
		devs := make([]iterclust.DeviceResult, n)
		programs := make([]radio.Program, n)
		for v := 0; v < n; v++ {
			isSrc, tag := tagFor(v)
			programs[v] = iterclust.Program(p, isSrc, tag, &devs[v])
		}
		res, err := radio.Run(radio.Config{Graph: g, Model: p.Model, Seed: cfg.seed,
			Trace: cfg.trace, Sims: cfg.sims}, programs)
		if err != nil {
			return nil, err
		}
		out := wrap(algo, cfg.model, res, informedOf(devs))
		return annotate(out, sources, func(v int) int { return sourceOf(devs[v].Msg) }), nil

	case AlgoDiamTime:
		d, err := g.Diameter()
		if err != nil {
			return nil, err
		}
		p, err := dtime.NewParams(cfg.model, n, delta, d, cfg.eps)
		if err != nil {
			return nil, err
		}
		if cfg.lean {
			p = p.Tune(n, 10, 6, 10, 0)
		}
		devs := make([]dtime.DeviceResult, n)
		programs := make([]radio.Program, n)
		for v := 0; v < n; v++ {
			isSrc, tag := tagFor(v)
			programs[v] = dtime.Program(p, isSrc, tag, &devs[v])
		}
		res, err := radio.Run(radio.Config{Graph: g, Model: p.SR.Model, Seed: cfg.seed,
			Trace: cfg.trace, MaxSlots: 1 << 62, Sims: cfg.sims}, programs)
		if err != nil {
			return nil, err
		}
		inf := make([]bool, n)
		for v, dres := range devs {
			inf[v] = dres.Informed
		}
		out := wrap(algo, cfg.model, res, inf)
		return annotate(out, sources, func(v int) int { return sourceOf(devs[v].Msg) }), nil

	case AlgoCDMerge:
		p, err := cdmerge.NewParams(n, delta, cfg.xi)
		if err != nil {
			return nil, err
		}
		if cfg.lean {
			p = p.Tune(10, 3, n)
		}
		devs := make([]cdmerge.DeviceResult, n)
		programs := make([]radio.Program, n)
		for v := 0; v < n; v++ {
			isSrc, tag := tagFor(v)
			programs[v] = cdmerge.Program(p, isSrc, tag, &devs[v])
		}
		res, err := radio.Run(radio.Config{Graph: g, Model: radio.CD, Seed: cfg.seed,
			Trace: cfg.trace, MaxSlots: 1 << 62, Sims: cfg.sims}, programs)
		if err != nil {
			return nil, err
		}
		inf := make([]bool, n)
		for v, dres := range devs {
			inf[v] = dres.Informed
		}
		out := wrap(algo, radio.CD, res, inf)
		return annotate(out, sources, func(v int) int { return sourceOf(devs[v].Msg) }), nil

	case AlgoBoundedDegree:
		cp := coloring.NewParams(n, delta)
		ip := iterclust.NewParams(radio.Local, n, delta)
		devs := make([]iterclust.DeviceResult, n)
		programs := make([]radio.Program, n)
		for v := 0; v < n; v++ {
			isSrc, tag := tagFor(v)
			dst := &devs[v]
			programs[v] = func(e *radio.Env) {
				coloring.Simulate(e, 1, cp, iterclust.ChannelProgram(ip, isSrc, tag, dst))
			}
		}
		res, err := radio.Run(radio.Config{Graph: g, Model: radio.NoCD, Seed: cfg.seed,
			Trace: cfg.trace, MaxSlots: 1 << 62, Sims: cfg.sims}, programs)
		if err != nil {
			return nil, err
		}
		out := wrap(algo, radio.NoCD, res, informedOf(devs))
		return annotate(out, sources, func(v int) int { return sourceOf(devs[v].Msg) }), nil

	case AlgoBaselineDecay:
		d, err := g.Diameter()
		if err != nil {
			return nil, err
		}
		p := baseline.NewParams(n, delta, d)
		devs := make([]baseline.DeviceResult, n)
		pop := make([]radio.Device, n)
		for v := 0; v < n; v++ {
			isSrc, tag := tagFor(v)
			pop[v].Proc = baseline.Proc(p, isSrc, tag, &devs[v])
		}
		res, err := radio.RunDevices(radio.Config{Graph: g, Model: cfg.model, Seed: cfg.seed,
			Trace: cfg.trace, Sims: cfg.sims}, pop)
		if err != nil {
			return nil, err
		}
		inf := make([]bool, n)
		for v, dres := range devs {
			inf[v] = dres.Informed
		}
		out := wrap(algo, cfg.model, res, inf)
		return annotate(out, sources, func(v int) int { return sourceOf(devs[v].Msg) }), nil

	case AlgoPath, AlgoDeterministic:
		return nil, fmt.Errorf("core: algorithm %v does not support multiple sources", algo)

	default:
		return nil, fmt.Errorf("core: unknown algorithm %v", algo)
	}
}

// annotate fills the multi-source fields: sources verbatim, and
// InformedBy from the per-device tag recovered by srcOf (clamped to the
// Informed flags so an uninformed vertex never claims a front).
func annotate(res *Result, sources []int, srcOf func(v int) int) *Result {
	res.Sources = append([]int(nil), sources...)
	res.InformedBy = make([]int, len(res.Informed))
	for v := range res.InformedBy {
		if res.Informed[v] {
			res.InformedBy[v] = srcOf(v)
		} else {
			res.InformedBy[v] = -1
		}
	}
	return res
}
