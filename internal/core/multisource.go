package core

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/cdmerge"
	"repro/internal/coloring"
	"repro/internal/dtime"
	"repro/internal/graph"
	"repro/internal/iterclust"
	"repro/internal/radio"
)

// sourceTag wraps the broadcast payload of one source so that receivers
// can attribute the copy they hold to the source it originated from. The
// protocols forward payloads opaquely, so the tag survives every relay.
type sourceTag struct {
	Src  int // index into the sources slice
	Body any
}

// sourceOf recovers the source index from a device's final message, or -1.
func sourceOf(msg any) int {
	if t, ok := msg.(sourceTag); ok {
		return t.Src
	}
	return -1
}

// multiPlan prepares a k-source broadcast (k >= 2): every source starts
// the protocol holding a tagged copy of the message and the copies race
// through the network, each vertex keeping whichever arrives first. The
// slot schedules are the same data-independent ones the single-source
// constructions use, so time and energy bounds carry over; the new
// measurement is the per-source informed fronts (Result.InformedBy).
// Unlike the single-source path, every multi-source run sees the trace
// sink — a historical quirk the planner preserves.
func multiPlan(g *graph.Graph, sources []int, algo Algorithm, cfg config) (plan, error) {
	n, delta := g.N(), g.MaxDegree()
	srcIdx := make(map[int]int, len(sources)) // vertex -> index into sources
	for i, s := range sources {
		srcIdx[s] = i
	}
	tagFor := func(v int) (bool, any) {
		if i, ok := srcIdx[v]; ok {
			return true, sourceTag{Src: i, Body: cfg.msg}
		}
		return false, nil
	}

	switch algo {
	case AlgoIterClust, AlgoTheorem12:
		var p iterclust.Params
		if algo == AlgoTheorem12 {
			if cfg.model != radio.CD {
				return plan{}, fmt.Errorf("core: Theorem 12 requires the CD model")
			}
			p = iterclust.NewTheorem12Params(n, delta, cfg.eps)
		} else {
			p = iterclust.NewParams(cfg.model, n, delta)
		}
		return plan{
			rcfg: radio.Config{Graph: g, Model: p.Model, Trace: cfg.trace, Sims: cfg.sims},
			build: func() ([]radio.Device, func(*radio.Result) *Result) {
				devs := make([]iterclust.DeviceResult, n)
				pop := make([]radio.Device, n)
				for v := 0; v < n; v++ {
					isSrc, tag := tagFor(v)
					pop[v].Proc = iterclust.Proc(p, isSrc, tag, &devs[v])
				}
				return pop, func(res *radio.Result) *Result {
					out := wrap(algo, cfg.model, res, informedOf(devs))
					return annotate(out, sources, func(v int) int { return sourceOf(devs[v].Msg) })
				}
			},
		}, nil

	case AlgoDiamTime:
		d, err := g.Diameter()
		if err != nil {
			return plan{}, err
		}
		p, err := dtime.NewParams(cfg.model, n, delta, d, cfg.eps)
		if err != nil {
			return plan{}, err
		}
		if cfg.lean {
			p = p.Tune(n, 10, 6, 10, 0)
		}
		return plan{
			rcfg: radio.Config{Graph: g, Model: p.SR.Model, Trace: cfg.trace,
				MaxSlots: 1 << 62, Sims: cfg.sims},
			build: func() ([]radio.Device, func(*radio.Result) *Result) {
				devs := make([]dtime.DeviceResult, n)
				pop := make([]radio.Device, n)
				for v := 0; v < n; v++ {
					isSrc, tag := tagFor(v)
					pop[v].Proc = dtime.Proc(p, isSrc, tag, &devs[v])
				}
				return pop, func(res *radio.Result) *Result {
					inf := make([]bool, n)
					for v, dres := range devs {
						inf[v] = dres.Informed
					}
					out := wrap(algo, cfg.model, res, inf)
					return annotate(out, sources, func(v int) int { return sourceOf(devs[v].Msg) })
				}
			},
		}, nil

	case AlgoCDMerge:
		p, err := cdmerge.NewParams(n, delta, cfg.xi)
		if err != nil {
			return plan{}, err
		}
		if cfg.lean {
			p = p.Tune(10, 3, n)
		}
		return plan{
			rcfg: radio.Config{Graph: g, Model: radio.CD, Trace: cfg.trace,
				MaxSlots: 1 << 62, Sims: cfg.sims},
			build: func() ([]radio.Device, func(*radio.Result) *Result) {
				devs := make([]cdmerge.DeviceResult, n)
				procs := make([]radio.Proc, n)
				for v := 0; v < n; v++ {
					isSrc, tag := tagFor(v)
					procs[v] = cdmerge.Proc(p, isSrc, tag, &devs[v])
				}
				return radio.Procs(procs), func(res *radio.Result) *Result {
					inf := make([]bool, n)
					for v, dres := range devs {
						inf[v] = dres.Informed
					}
					out := wrap(algo, radio.CD, res, inf)
					return annotate(out, sources, func(v int) int { return sourceOf(devs[v].Msg) })
				}
			},
		}, nil

	case AlgoBoundedDegree:
		cp := coloring.NewParams(n, delta)
		ip := iterclust.NewParams(radio.Local, n, delta)
		return plan{
			rcfg: radio.Config{Graph: g, Model: radio.NoCD, Trace: cfg.trace,
				MaxSlots: 1 << 62, Sims: cfg.sims},
			build: func() ([]radio.Device, func(*radio.Result) *Result) {
				devs := make([]iterclust.DeviceResult, n)
				cres := make([]coloring.ColoringResult, n)
				pop := make([]radio.Device, n)
				for v := 0; v < n; v++ {
					isSrc, tag := tagFor(v)
					pop[v].Proc = coloring.SimulateProc(1, cp,
						iterclust.Proc(ip, isSrc, tag, &devs[v]), &cres[v])
				}
				return pop, func(res *radio.Result) *Result {
					out := wrap(algo, radio.NoCD, res, informedOf(devs))
					return annotate(out, sources, func(v int) int { return sourceOf(devs[v].Msg) })
				}
			},
		}, nil

	case AlgoBaselineDecay:
		d, err := g.Diameter()
		if err != nil {
			return plan{}, err
		}
		p := baseline.NewParams(n, delta, d)
		return plan{
			rcfg: radio.Config{Graph: g, Model: cfg.model, Trace: cfg.trace, Sims: cfg.sims},
			build: func() ([]radio.Device, func(*radio.Result) *Result) {
				devs := make([]baseline.DeviceResult, n)
				pop := make([]radio.Device, n)
				for v := 0; v < n; v++ {
					isSrc, tag := tagFor(v)
					pop[v].Proc = baseline.Proc(p, isSrc, tag, &devs[v])
				}
				return pop, func(res *radio.Result) *Result {
					inf := make([]bool, n)
					for v, dres := range devs {
						inf[v] = dres.Informed
					}
					out := wrap(algo, cfg.model, res, inf)
					return annotate(out, sources, func(v int) int { return sourceOf(devs[v].Msg) })
				}
			},
		}, nil

	case AlgoPath, AlgoDeterministic:
		return plan{}, fmt.Errorf("core: algorithm %v does not support multiple sources", algo)

	default:
		return plan{}, fmt.Errorf("core: unknown algorithm %v", algo)
	}
}

// annotate fills the multi-source fields: sources verbatim, and
// InformedBy from the per-device tag recovered by srcOf (clamped to the
// Informed flags so an uninformed vertex never claims a front).
func annotate(res *Result, sources []int, srcOf func(v int) int) *Result {
	res.Sources = append([]int(nil), sources...)
	res.InformedBy = make([]int, len(res.Informed))
	for v := range res.InformedBy {
		if res.Informed[v] {
			res.InformedBy[v] = srcOf(v)
		} else {
			res.InformedBy[v] = -1
		}
	}
	return res
}
