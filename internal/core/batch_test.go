package core

import (
	"fmt"
	"testing"

	"repro/internal/graph"
	"repro/internal/radio"
)

// sameCoreResult compares every field a sweep observes.
func sameCoreResult(a, b *Result) error {
	if a.Algorithm != b.Algorithm || a.Model != b.Model {
		return fmt.Errorf("identity %v/%v vs %v/%v", a.Algorithm, a.Model, b.Algorithm, b.Model)
	}
	if a.Slots != b.Slots || a.Events != b.Events {
		return fmt.Errorf("slots/events %d/%d vs %d/%d", a.Slots, a.Events, b.Slots, b.Events)
	}
	for v := range a.Energy {
		if a.Energy[v] != b.Energy[v] {
			return fmt.Errorf("energy[%d] %d vs %d", v, a.Energy[v], b.Energy[v])
		}
		if a.Informed[v] != b.Informed[v] || a.InformedBy[v] != b.InformedBy[v] {
			return fmt.Errorf("informed[%d] differs", v)
		}
	}
	if len(a.Sources) != len(b.Sources) {
		return fmt.Errorf("sources %v vs %v", a.Sources, b.Sources)
	}
	return nil
}

// TestBroadcastBatchMatchesSolo pins BroadcastBatch's contract: lane i
// equals Broadcast(WithSeed(seeds[i])) exactly, for every algorithm and
// for widths 1, 4, and 16 — the invariant that lets the sweep layer
// batch at any width without perturbing results.
func TestBroadcastBatchMatchesSolo(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		opts []Option
	}{
		{"iterclust-nocd", graph.GNP(14, 0.3, 2), nil},
		{"theorem12", graph.Star(10), []Option{WithModel(radio.CD), WithAlgorithm(AlgoTheorem12)}},
		{"dtime", graph.Star(10), []Option{WithModel(radio.CD), WithAlgorithm(AlgoDiamTime), WithLeanScale()}},
		{"cdmerge", graph.Path(8), []Option{WithAlgorithm(AlgoCDMerge), WithLeanScale()}},
		{"path", graph.Path(12), []Option{WithModel(radio.Local), WithAlgorithm(AlgoPath)}},
		{"bounded-degree", graph.Cycle(8), []Option{WithAlgorithm(AlgoBoundedDegree)}},
		{"det-cd", graph.Star(8), []Option{WithModel(radio.CD), WithAlgorithm(AlgoDeterministic)}},
		{"baseline", graph.Grid(3, 3), []Option{WithAlgorithm(AlgoBaselineDecay)}},
		{"multisource", graph.Path(10), []Option{WithSources(0, 9)}},
	}
	for _, c := range cases {
		for _, w := range []int{1, 4, 16} {
			if w == 16 && c.name != "iterclust-nocd" && c.name != "baseline" {
				continue // wide sweep on two algorithms keeps the test fast
			}
			seeds := make([]uint64, w)
			for i := range seeds {
				seeds[i] = uint64(7*i + 3)
			}
			var sims radio.SimCache
			opts := append(append([]Option(nil), c.opts...), WithSimCache(&sims))
			batch, errs, err := BroadcastBatch(c.g, 0, seeds, opts...)
			if err != nil {
				t.Fatalf("%s W=%d: %v", c.name, w, err)
			}
			for i, seed := range seeds {
				if errs[i] != nil {
					t.Fatalf("%s W=%d lane %d: %v", c.name, w, i, errs[i])
				}
				solo, soloErr := Broadcast(c.g, 0, append(append([]Option(nil), c.opts...), WithSeed(seed))...)
				if soloErr != nil {
					t.Fatalf("%s solo seed %d: %v", c.name, seed, soloErr)
				}
				if err := sameCoreResult(batch[i], solo); err != nil {
					t.Errorf("%s W=%d lane %d: batch != solo: %v", c.name, w, i, err)
				}
			}
		}
	}
}

// TestBroadcastBatchValidation checks the batch entry rejects exactly
// what Broadcast rejects, plus its own trace restriction.
func TestBroadcastBatchValidation(t *testing.T) {
	g := graph.Path(6)
	if _, _, err := BroadcastBatch(nil, 0, []uint64{1}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, _, err := BroadcastBatch(g, 99, []uint64{1}); err == nil {
		t.Error("out-of-range source accepted")
	}
	if _, _, err := BroadcastBatch(g, 0, []uint64{1}, WithTrace(func(radio.Event) {})); err == nil {
		t.Error("WithTrace accepted by the batch path")
	}
	if _, _, err := BroadcastBatch(g, 0, []uint64{1}, WithEpsilon(2)); err == nil {
		t.Error("invalid eps accepted")
	}
	// Plan-level errors surface as the whole-batch error, matching the
	// solo error string.
	_, soloErr := Broadcast(graph.Cycle(6), 0, WithAlgorithm(AlgoPath))
	_, _, batchErr := BroadcastBatch(graph.Cycle(6), 0, []uint64{1}, WithAlgorithm(AlgoPath))
	if soloErr == nil || batchErr == nil || soloErr.Error() != batchErr.Error() {
		t.Errorf("plan error mismatch: solo %v, batch %v", soloErr, batchErr)
	}
	// Zero seeds is a valid empty batch.
	res, errs, err := BroadcastBatch(g, 0, nil)
	if err != nil || len(res) != 0 || len(errs) != 0 {
		t.Errorf("empty batch: %v %v %v", res, errs, err)
	}
}
