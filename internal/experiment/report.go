package experiment

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/stats"
)

// MeasureStat is one tracked measure's committed aggregate: moment
// statistics plus the Student-t confidence interval the stopping rule
// evaluated. RelCI is -1 when undefined (zero mean with nonzero
// spread).
type MeasureStat struct {
	Name   string  `json:"name"`
	Count  int64   `json:"count"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	CI     float64 `json:"ci"`
	RelCI  float64 `json:"relCI"`
}

// CellResult is one cell's committed outcome.
type CellResult struct {
	Graph     string `json:"graph"`
	N         int    `json:"n"`
	Model     string `json:"model"`
	Algorithm string `json:"algorithm"`
	Params    string `json:"params,omitempty"`
	// Fault is the cell's fault-spec label (e.g. "crash:0.001"); empty
	// for fault-free cells.
	Fault string `json:"fault,omitempty"`
	// Trials is the committed trial count — the adaptive spend.
	Trials  int `json:"trials"`
	Batches int `json:"batches"`
	// Completed counts trials meeting the workload's success criterion;
	// Errors counts failed trials (excluded from every moment).
	Completed int `json:"completed"`
	Errors    int `json:"errors"`
	// Stop is the stopping reason: "ci" (target precision reached) or
	// "max-trials".
	Stop     string        `json:"stop"`
	Measures []MeasureStat `json:"measures"`
}

// Report is the adaptive run's output. Unlike sweep.Report it carries
// moment-based aggregates only (no percentiles — the journal stores
// constant-size moment state, not samples), plus the controller
// parameters that determined every cell's spend.
type Report struct {
	MasterSeed  uint64       `json:"masterSeed"`
	Workload    string       `json:"workload,omitempty"`
	BatchSize   int          `json:"batchSize"`
	MinTrials   int          `json:"minTrials"`
	MaxTrials   int          `json:"maxTrials"`
	TargetRelCI float64      `json:"targetRelCI"`
	Confidence  float64      `json:"confidence"`
	CIMeasures  []string     `json:"ciMeasures"`
	TotalTrials int          `json:"totalTrials"`
	Cells       []CellResult `json:"cells"`
}

// WriteJSON serializes the report as indented JSON. The byte stream is
// identical for any worker count, interruption pattern, or resume — the
// property the checkpoint round-trip tests pin.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Table renders the report as an aligned plain-text table: one row per
// cell with its spend, stop reason, and the CI-targeted measures'
// mean ± half-width.
func (r *Report) Table() string {
	header := []string{"graph", "n", "model", "algo"}
	withParams, withFault := false, false
	for _, c := range r.Cells {
		if c.Params != "" {
			withParams = true
		}
		if c.Fault != "" {
			withFault = true
		}
	}
	if withParams {
		header = append(header, "params")
	}
	if withFault {
		header = append(header, "fault")
	}
	header = append(header, "trials", "stop")
	for _, name := range r.CIMeasures {
		header = append(header, name+" (mean±ci)")
	}
	tbl := &stats.Table{Header: header}
	for _, c := range r.Cells {
		row := []any{c.Graph, c.N, c.Model, c.Algorithm}
		if withParams {
			row = append(row, c.Params)
		}
		if withFault {
			row = append(row, c.Fault)
		}
		row = append(row, c.Trials, c.Stop)
		for _, name := range r.CIMeasures {
			cell := ""
			for _, m := range c.Measures {
				if m.Name == name {
					cell = fmt.Sprintf("%.2f±%.2f", m.Mean, m.CI)
					break
				}
			}
			row = append(row, cell)
		}
		tbl.Add(row...)
	}
	return tbl.String()
}
