// Package experiment is the adaptive controller layered above
// internal/sweep: it runs matrix cells in trial batches, maintains
// per-measure Student-t confidence intervals (internal/stats.Moments),
// and stops each cell independently once every targeted measure's
// relative CI half-width falls below the goal — so dense cells that
// converge in hundreds of trials stop early and the worker pool
// reallocates to the long-tailed cells that need tens of thousands.
//
// # Determinism
//
// The committed trial count of every cell is a pure function of the
// spec and the controller parameters, independent of worker count,
// scheduling, interruption, or resume. Three rules make that so:
//
//   - batch boundaries are fixed up front (batch b covers trials
//     [b*BatchSize, min((b+1)*BatchSize, MaxTrials)); seeds are
//     positional via sweep.TrialSeed), so any execution runs the same
//     batches;
//   - the stopping rule is evaluated on prefix merges only: batches
//     merge into a cell's moment state strictly in batch order, and the
//     rule is consulted exactly once per prefix length;
//   - workers may run batches speculatively past an undecided prefix,
//     but results beyond a cell's stop point are discarded, never
//     merged or reported.
//
// Merged moment state is float64 arithmetic in a fixed order, so
// aggregates — and the serialized Report — are bit-identical for any
// worker count, and a resumed run reproduces an uninterrupted run's
// output byte for byte.
//
// # Checkpoint / resume
//
// With Config.Checkpoint set, every completed batch is appended to a
// CRC-framed, fsync'd journal (see journal.go) before it is merged.
// Resume replays the journal through the same prefix-merge rule,
// re-runs only the batches that were in flight when the run died (a
// torn trailing record is detected and its batch re-run), and
// continues. No rng state is captured anywhere: positional seeding
// means a batch's identity is just its trial range.
package experiment

import (
	"errors"
	"fmt"
	"runtime"

	"strings"

	"time"

	"repro/internal/radio"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Config parameterizes one adaptive run.
type Config struct {
	// Spec is the experiment matrix. Spec.Trials is ignored: trial
	// counts are the controller's to decide, bounded by MaxTrials.
	Spec sweep.Spec
	// BatchSize is the scheduling granule (default 100): trials per
	// batch, CI checks once per batch.
	BatchSize int
	// MinTrials gates the stopping rule: no cell stops on CI grounds
	// before this many trials (default 2*BatchSize). Clamped to
	// MaxTrials.
	MinTrials int
	// MaxTrials caps every cell (required).
	MaxTrials int
	// TargetRelCI is the stopping goal: a cell stops once every tracked
	// measure's CI half-width is within this fraction of its mean (e.g.
	// 0.01 = ±1%). Zero disables adaptive stopping — every cell runs
	// exactly MaxTrials, which is how a fixed sweep gains checkpointing.
	TargetRelCI float64
	// Confidence is the CI level (default 0.95).
	Confidence float64
	// Measures names the CI-targeted measures (default slots,
	// maxEnergy). Each must be CI-eligible in every cell
	// (workload.CIMeasures).
	Measures []string
	// Workers is the pool size (default GOMAXPROCS). Results are
	// identical for every value.
	Workers int
	// Checkpoint, if non-empty, journals completed batches to this path.
	// An existing file is refused, never truncated: use Resume to
	// continue one, or remove it to start fresh.
	Checkpoint string
	// Interrupt, if non-nil, stops the run gracefully when it becomes
	// receivable: no new batches are issued, in-flight batches are
	// drained and journaled, and Run returns ErrInterrupted.
	Interrupt <-chan struct{}
	// Progress, if non-nil, is called from the coordinator after each
	// merged batch.
	Progress func(Progress)
	// Telemetry, if non-nil, receives run counters, per-cell committed
	// progress, and convergence traces (one telemetry.TracePoint per
	// merged batch, carrying each targeted measure's relative CI
	// half-width). Trace and commit updates happen on the coordinator as
	// prefixes merge, so they are bit-identical for any worker count —
	// only the shard counters (trials run, cache traffic) and timings are
	// scheduling-dependent. nil disables all instrumentation.
	Telemetry *telemetry.Recorder
}

// Progress is a coarse controller snapshot.
type Progress struct {
	// Cells and StoppedCells count matrix cells total and converged.
	Cells, StoppedCells int
	// CommittedTrials counts trials merged into committed prefixes.
	CommittedTrials int
}

// ErrInterrupted reports a graceful stop through Config.Interrupt. The
// journal holds every completed batch; Resume continues the run.
var ErrInterrupted = errors.New("experiment: interrupted")

// ResumeConfig carries the per-process knobs of a resumed run;
// everything defining the experiment — spec, batch size, trial bounds,
// CI target, measures — comes from the journal header.
type ResumeConfig struct {
	Workers   int
	Interrupt <-chan struct{}
	Progress  func(Progress)
	Telemetry *telemetry.Recorder
}

// normalize applies defaults and validates. It must be applied exactly
// once, before the header is written: resumed runs take the normalized
// values from the journal so the stop rule can never shift mid-run.
func (c *Config) normalize() error {
	if c.MaxTrials <= 0 {
		return fmt.Errorf("experiment: MaxTrials must be positive, got %d", c.MaxTrials)
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 100
	}
	if c.BatchSize > c.MaxTrials {
		c.BatchSize = c.MaxTrials
	}
	if c.MinTrials <= 0 {
		c.MinTrials = 2 * c.BatchSize
	}
	if c.MinTrials > c.MaxTrials {
		c.MinTrials = c.MaxTrials
	}
	if c.TargetRelCI < 0 {
		return fmt.Errorf("experiment: negative CI target %v", c.TargetRelCI)
	}
	if c.Confidence == 0 {
		c.Confidence = 0.95
	}
	if c.Confidence <= 0 || c.Confidence >= 1 {
		return fmt.Errorf("experiment: confidence %v outside (0, 1)", c.Confidence)
	}
	if len(c.Measures) == 0 {
		c.Measures = []string{"slots", "maxEnergy"}
	}
	return nil
}

// cellState is the coordinator's per-cell bookkeeping.
type cellState struct {
	maxBatches int
	done       map[int]*BatchRecord // completed, not yet part of the prefix
	inflight   map[int]bool
	doneCount  int // batches completed (incl. merged), for fair issuing

	// committed prefix.
	prefix    int // consecutive batches merged
	trials    int
	errors    int
	completed int
	moments   []stats.Moments

	stopped bool
	reason  string
}

// controller owns one run.
type controller struct {
	cfg    Config
	runner *sweep.Runner
	// tracked[i] lists cell i's journaled measure columns: the four core
	// columns then the cell's CI-eligible extras, in column order.
	tracked [][]workload.MeasureInfo
	// ciIdx[i] indexes tracked[i] at the Config.Measures targets.
	ciIdx [][]int
	cells []*cellState
	jw    *journalWriter
	rec   *telemetry.Recorder
}

// newController resolves the spec and validates the CI measures against
// every cell's eligibility metadata.
func newController(cfg Config) (*controller, error) {
	runner, err := sweep.NewRunner(cfg.Spec)
	if err != nil {
		return nil, err
	}
	cells := runner.Cells()
	c := &controller{
		cfg:     cfg,
		runner:  runner,
		tracked: make([][]workload.MeasureInfo, len(cells)),
		ciIdx:   make([][]int, len(cells)),
		cells:   make([]*cellState, len(cells)),
		rec:     cfg.Telemetry,
	}
	c.rec.StartCells(runner.CellLabels())
	c.rec.TraceMeasures(cfg.Measures)
	maxBatches := (cfg.MaxTrials + cfg.BatchSize - 1) / cfg.BatchSize
	for i := range cells {
		// Every measure column is tracked, journaled and reported —
		// conditional extras (leader's success-only election columns)
		// simply accumulate fewer samples. Eligibility only restricts
		// which measures the stopping rule may target. Cells with an
		// active fault spec also track the graceful-degradation columns
		// (workload.FaultMeasures), so -ci-measure success works.
		tracked := workload.CIMeasuresWith(runner.Workload(), cells[i].Point, cells[i].Fault)
		c.tracked[i] = tracked
		for _, name := range cfg.Measures {
			idx := -1
			for j, m := range tracked {
				if m.Name == name {
					if !m.CI {
						return nil, fmt.Errorf("experiment: measure %q of cell %d (%s) is not CI-eligible (%s); eligible: %s",
							name, i, runner.Graph(i).Name(), m.Doc, strings.Join(eligibleNames(tracked), ", "))
					}
					idx = j
					break
				}
			}
			if idx < 0 {
				return nil, fmt.Errorf("experiment: unknown measure %q for cell %d (%s); eligible: %s",
					name, i, runner.Graph(i).Name(), strings.Join(eligibleNames(tracked), ", "))
			}
			c.ciIdx[i] = append(c.ciIdx[i], idx)
		}
		c.cells[i] = &cellState{
			maxBatches: maxBatches,
			done:       map[int]*BatchRecord{},
			inflight:   map[int]bool{},
			moments:    make([]stats.Moments, len(tracked)),
		}
	}
	return c, nil
}

func eligibleNames(ms []workload.MeasureInfo) []string {
	var names []string
	for _, m := range ms {
		if m.CI {
			names = append(names, m.Name)
		}
	}
	return names
}

// batchBounds returns batch b's trial range.
func (c *controller) batchBounds(b int) (lo, hi int) {
	lo = b * c.cfg.BatchSize
	hi = lo + c.cfg.BatchSize
	if hi > c.cfg.MaxTrials {
		hi = c.cfg.MaxTrials
	}
	return lo, hi
}

// TrackedMeasures lists one cell's tracked measure columns — the four
// core columns, then the cell's CI-eligible extras, in column order.
// It is the column contract FoldBatch and the controller share: a
// fabric worker computes it from its own copy of the spec's Runner and
// folds batches into records the coordinator's controller admits
// unchanged, which is what keeps distributed aggregates bit-identical
// to local ones.
func TrackedMeasures(r *sweep.Runner, cell int) []workload.MeasureInfo {
	c := r.Cells()[cell]
	return workload.CIMeasuresWith(r.Workload(), c.Point, c.Fault)
}

// FoldBatch folds one batch's trials — in trial order — into a batch
// record over the tracked columns. Errored trials contribute to no
// moment; conditional extras missing from a successful trial are
// skipped. Pure float64 arithmetic in trial order, so the record is
// bit-identical wherever the batch ran.
func FoldBatch(tracked []workload.MeasureInfo, cell, lo, hi int, trials []sweep.Trial) *BatchRecord {
	rec := &BatchRecord{Cell: cell, Lo: lo, Hi: hi,
		Moments: make([]stats.Moments, len(tracked))}
	for i := range trials {
		tr := &trials[i]
		// Fault counters accumulate over every trial, errored or not: the
		// engine injected those faults whether or not the workload then
		// failed, and the counts stay positional (scheduling-independent).
		rec.Crashes += tr.FaultCrashes
		rec.Sleeps += tr.FaultSleeps
		rec.Erasures += tr.FaultErasures
		if tr.Err != "" {
			rec.Errors++
			continue
		}
		if tr.Completed {
			rec.Completed++
		}
		rec.Moments[0].Add(float64(tr.Slots))
		rec.Moments[1].Add(float64(tr.MaxEnergy))
		rec.Moments[2].Add(float64(tr.TotalEnergy))
		rec.Moments[3].Add(float64(tr.Events))
		for j := 4; j < len(tracked); j++ {
			name := tracked[j].Name
			for _, s := range tr.Extra {
				if s.Name == name {
					rec.Moments[j].Add(s.X)
					break
				}
			}
		}
	}
	return rec
}

// record folds one batch's trials into a journal record.
func (c *controller) record(cell, lo, hi int, trials []sweep.Trial) *BatchRecord {
	return FoldBatch(c.tracked[cell], cell, lo, hi, trials)
}

// admit stores a completed batch and advances the cell's committed
// prefix as far as it now reaches, evaluating the stop rule once per
// merged batch — the deterministic heart of the controller. Batches
// landing past a stop point are discarded.
func (c *controller) admit(cs *cellState, cell int, rec *BatchRecord) error {
	delete(cs.inflight, rec.Lo/c.cfg.BatchSize)
	if cs.stopped {
		return nil
	}
	b := rec.Lo / c.cfg.BatchSize
	if lo, hi := c.batchBounds(b); lo != rec.Lo || hi != rec.Hi {
		return fmt.Errorf("experiment: batch record [%d,%d) of cell %d off the batch grid", rec.Lo, rec.Hi, cell)
	}
	if len(rec.Moments) != len(c.tracked[cell]) {
		return fmt.Errorf("experiment: batch record of cell %d tracks %d measures, want %d",
			cell, len(rec.Moments), len(c.tracked[cell]))
	}
	if _, dup := cs.done[b]; dup || b < cs.prefix {
		return nil // replayed duplicate (possible after a torn-tail resume)
	}
	cs.done[b] = rec
	cs.doneCount++
	for {
		next, ok := cs.done[cs.prefix]
		if !ok {
			break
		}
		delete(cs.done, cs.prefix)
		cs.prefix++
		cs.trials += next.Hi - next.Lo
		cs.errors += next.Errors
		cs.completed += next.Completed
		for i := range cs.moments {
			cs.moments[i].Merge(next.Moments[i])
		}
		c.rec.CommitTrials(cell, next.Hi-next.Lo)
		// Fault counts commit with their batch — only on prefix merge,
		// never for speculative batches — so the manifest totals are as
		// deterministic as the committed trial counts, and journal replay
		// rebuilds them identically.
		c.rec.CommitFaults(uint64(next.Crashes), uint64(next.Sleeps), uint64(next.Erasures))
		if c.rec.Enabled() {
			// One convergence-trace point per merged batch: the committed
			// prefix's relative CI half-width for each targeted measure.
			// Pure prefix state — identical for any worker count.
			relCI := make([]float64, len(c.ciIdx[cell]))
			for i, idx := range c.ciIdx[cell] {
				relCI[i] = cs.moments[idx].RelCIHalfWidth(c.cfg.Confidence)
			}
			c.rec.Trace(cell, cs.prefix-1, cs.trials, relCI)
		}
		if c.converged(cell, cs) {
			cs.stopped, cs.reason = true, "ci"
		} else if cs.trials >= c.cfg.MaxTrials {
			cs.stopped, cs.reason = true, "max-trials"
		}
		if cs.stopped {
			c.rec.CellDone(cell, cs.reason)
			// Anything completed past the stop point is speculation waste;
			// drop it so the report sees only committed state.
			for k := range cs.done {
				delete(cs.done, k)
			}
			break
		}
	}
	return nil
}

// converged evaluates the stopping rule on the committed prefix.
func (c *controller) converged(cell int, cs *cellState) bool {
	if c.cfg.TargetRelCI <= 0 || cs.trials < c.cfg.MinTrials {
		return false
	}
	for _, idx := range c.ciIdx[cell] {
		m := &cs.moments[idx]
		if m.N < 2 {
			return false
		}
		if m.RelCIHalfWidth(c.cfg.Confidence) > c.cfg.TargetRelCI {
			return false
		}
	}
	return true
}

// nextJob picks the next batch to issue: the lowest missing batch of
// the unstopped cell with the fewest batches in progress or done —
// which is what reallocates workers from converged cells to the
// unconverged long tail. Returns ok=false when nothing is issuable.
func (c *controller) nextJob() (job, bool) {
	best, bestCount := -1, 0
	for i, cs := range c.cells {
		if cs.stopped {
			continue
		}
		count := cs.doneCount + len(cs.inflight)
		if count >= cs.maxBatches {
			continue // everything issued already
		}
		if best < 0 || count < bestCount {
			best, bestCount = i, count
		}
	}
	if best < 0 {
		return job{}, false
	}
	cs := c.cells[best]
	b := cs.prefix
	for cs.done[b] != nil || cs.inflight[b] {
		b++
	}
	if b >= cs.maxBatches {
		return job{}, false
	}
	cs.inflight[b] = true
	lo, hi := c.batchBounds(b)
	return job{cell: best, lo: lo, hi: hi}, true
}

func (c *controller) allStopped() bool {
	for _, cs := range c.cells {
		if !cs.stopped {
			return false
		}
	}
	return true
}

func (c *controller) emitProgress() {
	if c.cfg.Progress == nil {
		return
	}
	p := Progress{Cells: len(c.cells)}
	for _, cs := range c.cells {
		if cs.stopped {
			p.StoppedCells++
		}
		p.CommittedTrials += cs.trials
	}
	c.cfg.Progress(p)
}

type job struct {
	cell, lo, hi int
}

type result struct {
	job job
	rec *BatchRecord
}

// Run executes the adaptive experiment and returns its report. With
// Config.Checkpoint set, a fresh journal is written alongside;
// interruption through Config.Interrupt flushes it and returns
// ErrInterrupted.
func Run(cfg Config) (*Report, error) {
	c, err := prepare(cfg)
	if err != nil {
		return nil, err
	}
	return c.drive()
}

// prepare normalizes the configuration, resolves the controller, and —
// with Config.Checkpoint set — starts a fresh journal. It is the shared
// setup of Run (local worker pool) and NewLeaseController (fabric
// coordinator).
func prepare(cfg Config) (*controller, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	cfg.Telemetry.Phase("resolve")
	c, err := newController(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Checkpoint != "" {
		h := header{
			Magic:       journalMagic,
			Spec:        cfg.Spec,
			BatchSize:   cfg.BatchSize,
			MinTrials:   cfg.MinTrials,
			MaxTrials:   cfg.MaxTrials,
			TargetRelCI: cfg.TargetRelCI,
			Confidence:  cfg.Confidence,
			Measures:    cfg.Measures,
		}
		jw, err := createJournal(cfg.Checkpoint, h)
		if err != nil {
			return nil, err
		}
		jw.rec = cfg.Telemetry
		c.jw = jw
	}
	return c, nil
}

// Resume continues a checkpointed run: the journal header reconstructs
// the configuration, intact batch records replay through the same
// prefix-merge rule, and only unjournaled batches are re-run. The
// resulting report is byte-identical to an uninterrupted run's.
func Resume(path string, rc ResumeConfig) (*Report, error) {
	c, err := prepareResume(path, rc)
	if err != nil {
		return nil, err
	}
	return c.drive()
}

// prepareResume rebuilds a controller from a checkpoint journal:
// header to configuration, intact batch records replayed through the
// prefix-merge rule, journal reopened for appending past the last
// intact record. Shared by Resume (local) and ResumeLeaseController
// (fabric coordinator restart).
func prepareResume(path string, rc ResumeConfig) (*controller, error) {
	jc, err := journalRead(path)
	if err != nil {
		return nil, err
	}
	cfg := Config{
		Spec:        jc.header.Spec,
		BatchSize:   jc.header.BatchSize,
		MinTrials:   jc.header.MinTrials,
		MaxTrials:   jc.header.MaxTrials,
		TargetRelCI: jc.header.TargetRelCI,
		Confidence:  jc.header.Confidence,
		Measures:    jc.header.Measures,
		Workers:     rc.Workers,
		Interrupt:   rc.Interrupt,
		Progress:    rc.Progress,
		Telemetry:   rc.Telemetry,
	}
	// Header values were normalized when written; normalize again only
	// to validate (it is idempotent on normalized input).
	if err := cfg.normalize(); err != nil {
		return nil, fmt.Errorf("experiment: checkpoint %s: %w", path, err)
	}
	cfg.Telemetry.Phase("resolve")
	c, err := newController(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiment: checkpoint %s: %w", path, err)
	}
	// Journal replay goes through the same prefix-merge rule as live
	// results, so committed counts and convergence traces rebuild
	// bit-identically to the uninterrupted run's.
	cfg.Telemetry.Phase("replay")
	for i := range jc.batches {
		rec := &jc.batches[i]
		if rec.Cell >= len(c.cells) {
			return nil, fmt.Errorf("experiment: checkpoint %s: batch for cell %d of %d", path, rec.Cell, len(c.cells))
		}
		if err := c.admit(c.cells[rec.Cell], rec.Cell, rec); err != nil {
			return nil, fmt.Errorf("experiment: checkpoint %s: %w", path, err)
		}
	}
	jw, err := openJournalAppend(path, jc.trusted)
	if err != nil {
		return nil, err
	}
	jw.rec = cfg.Telemetry
	c.jw = jw
	return c, nil
}

// drive is the coordinator loop: issue jobs, collect batch records,
// journal and merge them. All controller state is touched only here.
func (c *controller) drive() (*Report, error) {
	if c.jw != nil {
		defer c.jw.close()
	}
	workers := c.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	c.rec.Shards(workers)
	c.rec.Phase("trials")
	jobs := make(chan job)
	results := make(chan result, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			sims := &radio.SimCache{}
			// sh is nil when telemetry is disabled; updates are per-batch.
			sh := c.rec.Shard(w)
			for j := range jobs {
				buf := make([]sweep.Trial, j.hi-j.lo)
				var t0 time.Time
				if sh != nil {
					sh.BatchStart()
					t0 = time.Now()
				}
				c.runner.RunTrials(j.cell, j.lo, j.hi, sims, buf)
				if sh != nil {
					var slots uint64
					for i := range buf {
						slots += buf[i].Slots
					}
					sh.BatchDone(j.cell, j.hi-j.lo, slots, time.Since(t0))
					sh.SetCache(telemetry.CacheCounts(sims.Stats()))
				}
				results <- result{job: j, rec: c.record(j.cell, j.lo, j.hi, buf)}
			}
		}(w)
	}

	outstanding := 0
	interrupted := false
	var firstErr error
	intr := c.cfg.Interrupt
	pending, havePending := c.nextJob()
	for {
		if (c.allStopped() || interrupted || firstErr != nil) && outstanding == 0 {
			break
		}
		var jch chan job
		if havePending && !interrupted && firstErr == nil {
			jch = jobs
		}
		if jch == nil && outstanding == 0 {
			// Nothing issuable and nothing running: cells must be blocked
			// on stop decisions that will never change. This state is
			// unreachable when allStopped is false — guard anyway.
			break
		}
		select {
		case jch <- pending:
			outstanding++
			pending, havePending = c.nextJob()
		case r := <-results:
			outstanding--
			if err := c.handleResult(r); err != nil && firstErr == nil {
				firstErr = err
			}
			if !havePending {
				pending, havePending = c.nextJob()
			}
		case <-intr:
			// A closed Interrupt channel stays receivable; nil it so the
			// drain loop doesn't spin on it.
			interrupted = true
			intr = nil
		}
	}
	close(jobs)
	if firstErr != nil {
		return nil, firstErr
	}
	if interrupted {
		return nil, ErrInterrupted
	}
	return c.report(), nil
}

// handleResult journals and merges one completed batch.
func (c *controller) handleResult(r result) error {
	cs := c.cells[r.job.cell]
	if c.jw != nil && !cs.stopped {
		if err := c.jw.append(r.rec); err != nil {
			return err
		}
	}
	if err := c.admit(cs, r.job.cell, r.rec); err != nil {
		return err
	}
	c.emitProgress()
	return nil
}

// report assembles the committed state. Everything here derives from
// prefix merges in batch order, so the serialization is bit-identical
// for any worker count, interruption pattern, or resume.
func (c *controller) report() *Report {
	rep := &Report{
		MasterSeed:  c.cfg.Spec.MasterSeed,
		BatchSize:   c.cfg.BatchSize,
		MinTrials:   c.cfg.MinTrials,
		MaxTrials:   c.cfg.MaxTrials,
		TargetRelCI: c.cfg.TargetRelCI,
		Confidence:  c.cfg.Confidence,
		CIMeasures:  c.cfg.Measures,
	}
	if name := c.runner.Workload().Name(); name != "broadcast" {
		rep.Workload = name
	}
	cells := c.runner.Cells()
	for i, cs := range c.cells {
		g := c.runner.Graph(i)
		cr := CellResult{
			Graph:     g.Name(),
			N:         g.N(),
			Model:     cells[i].Model.String(),
			Algorithm: cells[i].Algorithm.String(),
			Params:    cells[i].Point.Label,
			Fault:     cells[i].Fault.Label(),
			Trials:    cs.trials,
			Batches:   cs.prefix,
			Completed: cs.completed,
			Errors:    cs.errors,
			Stop:      cs.reason,
		}
		for j, m := range c.tracked[i] {
			mm := cs.moments[j]
			rel := mm.RelCIHalfWidth(c.cfg.Confidence)
			if rel != rel || rel > 1e300 { // NaN-free JSON: +Inf -> -1 sentinel
				rel = -1
			}
			cr.Measures = append(cr.Measures, MeasureStat{
				Name:   m.Name,
				Count:  mm.N,
				Mean:   mm.Mean,
				StdDev: mm.StdDev(),
				Min:    mm.Min,
				Max:    mm.Max,
				CI:     mm.CIHalfWidth(c.cfg.Confidence),
				RelCI:  rel,
			})
		}
		rep.TotalTrials += cs.trials
		rep.Cells = append(rep.Cells, cr)
	}
	return rep
}
