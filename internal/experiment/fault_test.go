package experiment

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/telemetry"
)

// faultedConfig is testConfig over a small faulted matrix in fixed mode
// (cheap and fully deterministic trial counts).
func faultedConfig() Config {
	spec := testSpec()
	spec.Faults = []fault.Spec{{Kind: fault.Loss, Rate: 0.05}}
	return Config{
		Spec:      spec,
		BatchSize: 20,
		MinTrials: 40,
		MaxTrials: 200,
		Measures:  []string{"slots", "maxEnergy"},
	}
}

func faultCounters(rec *telemetry.Recorder) [3]uint64 {
	s := rec.Snapshot()
	return [3]uint64{s.FaultCrashes, s.FaultSleeps, s.FaultErasures}
}

// TestFaultCountersDeterministicAcrossWorkersAndResume pins the
// controller-level fault accounting: the injected-fault totals a run
// commits to telemetry (and hence the manifest's deterministic section)
// are identical for any worker count, and a journal replay rebuilds
// exactly the same totals without re-running a single trial.
func TestFaultCountersDeterministicAcrossWorkersAndResume(t *testing.T) {
	var wantJSON []byte
	var want [3]uint64
	for _, workers := range []int{1, 4} {
		cfg := faultedConfig()
		cfg.Workers = workers
		rec := telemetry.New()
		cfg.Telemetry = rec
		rep, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got := faultCounters(rec)
		j := reportJSON(t, rep)
		if wantJSON == nil {
			wantJSON, want = j, got
			if got[2] == 0 {
				t.Fatal("loss faults at rate 0.05 committed zero erasures")
			}
			if got[0] != 0 || got[1] != 0 {
				t.Fatalf("loss spec moved foreign counters: %v", got)
			}
			if !strings.Contains(string(j), `"fault": "loss:0.05"`) {
				t.Error("adaptive report missing fault label")
			}
		} else {
			if !bytes.Equal(j, wantJSON) {
				t.Errorf("workers=%d: faulted report diverges", workers)
			}
			if got != want {
				t.Errorf("workers=%d: fault counters %v, want %v", workers, got, want)
			}
		}
	}

	// A resume of the complete journal replays every batch and re-runs
	// nothing; the replayed counters must equal the live run's.
	cfg := faultedConfig()
	cfg.Checkpoint = filepath.Join(t.TempDir(), "fault.ckpt")
	rec := telemetry.New()
	cfg.Telemetry = rec
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	live := faultCounters(rec)
	if live != want {
		t.Fatalf("checkpointed run counters %v, want %v", live, want)
	}
	rec2 := telemetry.New()
	rep2, err := Resume(cfg.Checkpoint, ResumeConfig{Workers: 2, Telemetry: rec2})
	if err != nil {
		t.Fatal(err)
	}
	if replayed := faultCounters(rec2); replayed != live {
		t.Errorf("replayed fault counters %v, want %v", replayed, live)
	}
	if !bytes.Equal(reportJSON(t, rep), reportJSON(t, rep2)) {
		t.Error("resumed faulted report diverges from the live run")
	}
}
