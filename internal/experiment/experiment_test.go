package experiment

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/sweep"
)

// testSpec is a mixed easy/hard matrix under the cheap decay
// comparator: the clique cell's maxEnergy has roughly twice the
// relative spread of the path cell's, so at equal target precision it
// needs several times the trials.
func testSpec() sweep.Spec {
	return sweep.Spec{
		Topologies: []sweep.Topology{
			{Kind: "clique", N: 8},
			{Kind: "path", N: 16},
		},
		Algorithms: []core.Algorithm{core.AlgoBaselineDecay},
		MasterSeed: 7,
	}
}

func testConfig() Config {
	return Config{
		Spec:        testSpec(),
		BatchSize:   20,
		MinTrials:   40,
		MaxTrials:   2000,
		TargetRelCI: 0.004,
		Measures:    []string{"slots", "maxEnergy"},
	}
}

func reportJSON(t *testing.T, rep *Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestAdaptiveStopsEarlyOnEasyCells(t *testing.T) {
	cfg := testConfig()
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 2 {
		t.Fatalf("cells: %d", len(rep.Cells))
	}
	hard, easy := rep.Cells[0], rep.Cells[1]
	if easy.Stop != "ci" {
		t.Errorf("easy cell stopped by %q, want ci (trials %d)", easy.Stop, easy.Trials)
	}
	if hard.Trials <= easy.Trials {
		t.Errorf("hard cell (%d trials) should outspend easy cell (%d trials)", hard.Trials, easy.Trials)
	}
	if rep.TotalTrials >= 2*cfg.MaxTrials {
		t.Errorf("adaptive run spent %d trials, no better than fixed %d", rep.TotalTrials, 2*cfg.MaxTrials)
	}
	// The stopping rule's own accounting: every targeted measure of a
	// ci-stopped cell is within target.
	for _, m := range easy.Measures {
		if (m.Name == "slots" || m.Name == "maxEnergy") && m.RelCI > cfg.TargetRelCI {
			t.Errorf("easy cell measure %s relCI %v above target %v", m.Name, m.RelCI, cfg.TargetRelCI)
		}
	}
}

func TestReportBitIdenticalAcrossWorkers(t *testing.T) {
	var want []byte
	for _, workers := range []int{1, 3, 8} {
		cfg := testConfig()
		cfg.Workers = workers
		rep, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got := reportJSON(t, rep)
		if want == nil {
			want = got
		} else if !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: report diverges from workers=1", workers)
		}
	}
}

func TestFixedModeRunsMaxTrials(t *testing.T) {
	cfg := testConfig()
	cfg.TargetRelCI = 0 // fixed mode: checkpointable fixed sweep
	cfg.MaxTrials = 60
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range rep.Cells {
		if c.Trials != 60 || c.Stop != "max-trials" {
			t.Errorf("cell %d: trials %d stop %q, want 60/max-trials", i, c.Trials, c.Stop)
		}
	}
}

func TestMeasureValidation(t *testing.T) {
	cfg := testConfig()
	cfg.Measures = []string{"slots", "nosuch"}
	if _, err := Run(cfg); err == nil {
		t.Error("unknown measure accepted")
	}
	// leader's electSlot is declared CI-ineligible.
	cfg = testConfig()
	cfg.Spec.Workload = "leader"
	cfg.Spec.Topologies = []sweep.Topology{{Kind: "clique", N: 8}}
	cfg.Measures = []string{"electSlot"}
	if _, err := Run(cfg); err == nil {
		t.Error("CI-ineligible measure accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := testConfig()
	cfg.MaxTrials = 0
	if _, err := Run(cfg); err == nil {
		t.Error("MaxTrials=0 accepted")
	}
	cfg = testConfig()
	cfg.Confidence = 1.5
	if _, err := Run(cfg); err == nil {
		t.Error("confidence 1.5 accepted")
	}
}

// interruptAfter builds an Interrupt channel that fires once the
// progress callback has seen n merged batches.
func interruptAfter(n int) (<-chan struct{}, func(Progress)) {
	ch := make(chan struct{})
	var once sync.Once
	seen := 0
	return ch, func(Progress) {
		seen++
		if seen >= n {
			once.Do(func() { close(ch) })
		}
	}
}

func TestCheckpointResumeBitIdentical(t *testing.T) {
	dir := t.TempDir()
	clean := filepath.Join(dir, "clean.ckpt")

	cfg := testConfig()
	cfg.Checkpoint = clean
	cfg.Workers = 4
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := reportJSON(t, rep)

	for _, workers := range []int{1, 4, 8} {
		path := filepath.Join(dir, fmt.Sprintf("killed-%d.ckpt", workers))
		cfg := testConfig()
		cfg.Checkpoint = path
		cfg.Workers = workers
		cfg.Interrupt, cfg.Progress = interruptAfter(3)
		if _, err := Run(cfg); !errors.Is(err, ErrInterrupted) {
			t.Fatalf("workers=%d: interrupt returned %v, want ErrInterrupted", workers, err)
		}
		rep, err := Resume(path, ResumeConfig{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: resume: %v", workers, err)
		}
		if got := reportJSON(t, rep); !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: resumed report diverges from uninterrupted run", workers)
		}
	}
}

func TestResumeTruncatedAndCorruptTail(t *testing.T) {
	dir := t.TempDir()
	clean := filepath.Join(dir, "clean.ckpt")
	cfg := testConfig()
	cfg.Checkpoint = clean
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := reportJSON(t, rep)
	raw, err := os.ReadFile(clean)
	if err != nil {
		t.Fatal(err)
	}

	// A SIGKILL mid-write tears the trailing record: resume must detect
	// it, re-run only the torn batch, and still produce identical bytes.
	// lastFrameStart walks the frames to the offset of the final record.
	lastFrameStart := func(b []byte) int {
		off, last := int64(0), int64(0)
		for {
			_, next, ok := nextFrame(b, off)
			if !ok {
				return int(last)
			}
			last = off
			off = next
		}
	}
	mutations := map[string]func([]byte) []byte{
		"truncated-mid-record": func(b []byte) []byte { return b[:len(b)-7] },
		"truncated-mid-frame-header": func(b []byte) []byte {
			return b[:lastFrameStart(b)+3]
		},
		"corrupt-trailing-byte": func(b []byte) []byte {
			out := append([]byte(nil), b...)
			out[len(out)-2] ^= 0xFF
			return out
		},
	}
	for name, mutate := range mutations {
		path := filepath.Join(dir, name+".ckpt")
		if err := os.WriteFile(path, mutate(raw), 0o644); err != nil {
			t.Fatal(err)
		}
		jc, err := journalRead(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !jc.torn {
			t.Errorf("%s: torn tail not detected", name)
		}
		rep, err := Resume(path, ResumeConfig{Workers: 2})
		if err != nil {
			t.Fatalf("%s: resume: %v", name, err)
		}
		if got := reportJSON(t, rep); !bytes.Equal(got, want) {
			t.Fatalf("%s: resumed report diverges from clean run", name)
		}
	}
}

func TestCheckpointRefusesToOverwrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	cfg := testConfig()
	cfg.Checkpoint = path
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	// Re-running the original command after a crash must not wipe the
	// journal; the error points at -resume.
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "resume") {
		t.Fatalf("existing journal overwritten (err=%v)", err)
	}
}

func TestIneligibleExtrasStillReported(t *testing.T) {
	// leader's electSlot/agree are invalid stopping targets but must
	// still appear in the adaptive report, like the fixed engine's.
	cfg := testConfig()
	cfg.Spec = sweep.Spec{
		Topologies: []sweep.Topology{{Kind: "clique", N: 6}},
		Workload:   "leader",
		MasterSeed: 7,
	}
	cfg.MaxTrials = 60
	cfg.TargetRelCI = 0 // fixed spend; we only care about the columns
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, m := range rep.Cells[0].Measures {
		found[m.Name] = true
	}
	for _, want := range []string{"slots", "maxEnergy", "electSlot", "agree"} {
		if !found[want] {
			t.Errorf("adaptive report lost measure %q: have %v", want, rep.Cells[0].Measures)
		}
	}
}

func TestResumeErrors(t *testing.T) {
	if _, err := Resume(filepath.Join(t.TempDir(), "nope.ckpt"), ResumeConfig{}); err == nil {
		t.Error("missing checkpoint accepted")
	}
	// A file that is not a journal at all.
	bad := filepath.Join(t.TempDir(), "bad.ckpt")
	if err := os.WriteFile(bad, []byte("not a journal"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Resume(bad, ResumeConfig{}); err == nil {
		t.Error("garbage checkpoint accepted")
	}
}

func TestResumeOfCompleteJournalReRunsNothing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "done.ckpt")
	cfg := testConfig()
	cfg.Checkpoint = path
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := reportJSON(t, rep)
	rep2, err := Resume(path, ResumeConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := reportJSON(t, rep2); !bytes.Equal(got, want) {
		t.Fatal("re-resume of a complete journal diverges")
	}
}
