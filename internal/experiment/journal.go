package experiment

// The checkpoint journal is an append-only sequence of CRC-framed,
// fsync'd records: one header describing the run, then one record per
// completed trial batch. Records are framed as
//
//	uint32 LE payload length | uint32 LE CRC-32C of payload | payload
//
// so a SIGKILL mid-write leaves a detectably torn tail: the reader
// stops at the first short or checksum-failing frame and reports how
// many bytes it trusted, and resume simply re-runs the batch whose
// record was torn. Payloads are JSON — Go's encoder emits the shortest
// float64 representation that round-trips bit-exactly, which is what
// lets a resumed run merge journaled moment state into aggregates
// byte-identical to an uninterrupted run's.

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"time"

	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/telemetry"
)

// journalMagic identifies the file format; bump the trailing digit on
// incompatible changes.
const journalMagic = "radio-experiment-ckpt-1"

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// header is the journal's first record: everything needed to
// reconstruct the run, plus the normalized controller parameters the
// deterministic stop rule depends on.
type header struct {
	Magic       string     `json:"magic"`
	Spec        sweep.Spec `json:"spec"`
	BatchSize   int        `json:"batchSize"`
	MinTrials   int        `json:"minTrials"`
	MaxTrials   int        `json:"maxTrials"`
	TargetRelCI float64    `json:"targetRelCI"`
	Confidence  float64    `json:"confidence"`
	Measures    []string   `json:"measures"`
}

// BatchRecord summarizes one completed trial batch of one cell: the moment
// state of every tracked measure over the batch's successful trials.
// Trial identity is positional ((cell, trial) drives the seed), so no
// rng state needs capturing — Lo/Hi alone locate the batch. It is both
// the journal's record type and the unit of work a fabric worker
// returns to its coordinator (internal/fabric): FoldBatch builds one
// from executed trials, and the lease controller admits it through the
// same prefix-merge rule wherever it was computed.
type BatchRecord struct {
	Cell      int `json:"cell"`
	Lo        int `json:"lo"`
	Hi        int `json:"hi"`
	Errors    int `json:"errors"`
	Completed int `json:"completed"`
	// Crashes/Sleeps/Erasures sum the faults injected across the batch's
	// trials (internal/fault); all zero — and omitted — for fault-free
	// cells, keeping fault-free journals byte-compatible.
	Crashes  int             `json:"crashes,omitempty"`
	Sleeps   int             `json:"sleeps,omitempty"`
	Erasures int             `json:"erasures,omitempty"`
	Moments  []stats.Moments `json:"moments"`
}

// journalWriter appends framed records to an fsync'd file. Single
// goroutine use (the controller's coordinator).
type journalWriter struct {
	f *os.File
	// rec counts fsyncs when telemetry is enabled. It is set after
	// createJournal's header write, so the snapshot's JournalFsyncs is
	// exactly the number of batch records journaled this process.
	rec *telemetry.Recorder
}

// createJournal starts a fresh journal at path and writes the header
// record. An existing file is refused, never truncated: after a crash
// the natural retry is the original command line, and silently wiping
// the fsync'd batches it was about to resume from is exactly the
// failure the journal exists to prevent.
func createJournal(path string, h header) (*journalWriter, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		if os.IsExist(err) {
			return nil, fmt.Errorf("experiment: checkpoint %s already exists — continue it with -resume %s, or remove it to start fresh", path, path)
		}
		return nil, fmt.Errorf("experiment: checkpoint: %w", err)
	}
	w := &journalWriter{f: f}
	if err := w.append(h); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// openJournalAppend reopens an existing journal for appending,
// positioned after its last intact record. trusted is the byte offset
// journalRead validated; anything beyond (a torn tail) is truncated
// away so the next record lands on a clean frame boundary.
func openJournalAppend(path string, trusted int64) (*journalWriter, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("experiment: checkpoint: %w", err)
	}
	if err := f.Truncate(trusted); err != nil {
		f.Close()
		return nil, fmt.Errorf("experiment: checkpoint: truncating torn tail: %w", err)
	}
	if _, err := f.Seek(trusted, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("experiment: checkpoint: %w", err)
	}
	return &journalWriter{f: f}, nil
}

// append frames, writes and fsyncs one record. The fsync per batch is
// what makes a SIGKILL lose at most the in-flight batches, never a
// journaled one.
func (w *journalWriter) append(rec any) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("experiment: checkpoint: %w", err)
	}
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, crcTable))
	copy(frame[8:], payload)
	if _, err := w.f.Write(frame); err != nil {
		return fmt.Errorf("experiment: checkpoint: %w", err)
	}
	t0 := time.Now()
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("experiment: checkpoint: %w", err)
	}
	w.rec.JournalFsync(time.Since(t0))
	return nil
}

func (w *journalWriter) close() error {
	return w.f.Close()
}

// journalContents is the validated view of an existing journal.
type journalContents struct {
	header  header
	batches []BatchRecord
	// trusted is the byte offset of the end of the last intact record;
	// appending resumes there.
	trusted int64
	// torn reports whether a truncated or checksum-failing tail was
	// discarded (the SIGKILL signature — informational, not an error).
	torn bool
}

// errNoJournal distinguishes a missing checkpoint from a corrupt one.
var errNoJournal = errors.New("experiment: checkpoint file does not exist")

// journalRead loads and validates a journal. A torn tail (short frame
// or CRC mismatch at the end) is tolerated and reported via torn; a
// journal whose header is unreadable is an error, since nothing can be
// resumed from it.
func journalRead(path string) (*journalContents, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, errNoJournal
		}
		return nil, fmt.Errorf("experiment: checkpoint: %w", err)
	}
	jc := &journalContents{}
	off := int64(0)
	first := true
	for {
		payload, next, ok := nextFrame(raw, off)
		if !ok {
			jc.torn = int64(len(raw)) > off
			break
		}
		if first {
			if err := json.Unmarshal(payload, &jc.header); err != nil {
				return nil, fmt.Errorf("experiment: checkpoint %s: bad header: %w", path, err)
			}
			if jc.header.Magic != journalMagic {
				return nil, fmt.Errorf("experiment: checkpoint %s: not a checkpoint journal (magic %q)", path, jc.header.Magic)
			}
			first = false
		} else {
			var rec BatchRecord
			if err := json.Unmarshal(payload, &rec); err != nil {
				// A CRC-valid frame that does not decode means a writer
				// bug, not a torn write; stop trusting the file here.
				jc.torn = true
				break
			}
			if err := validateBatchRecord(rec); err != nil {
				jc.torn = true
				break
			}
			jc.batches = append(jc.batches, rec)
		}
		off = next
		jc.trusted = off
	}
	if first {
		return nil, fmt.Errorf("experiment: checkpoint %s: no intact header", path)
	}
	return jc, nil
}

// nextFrame decodes the frame starting at off. ok is false on a short
// or checksum-failing frame.
func nextFrame(raw []byte, off int64) (payload []byte, next int64, ok bool) {
	if off+8 > int64(len(raw)) {
		return nil, 0, false
	}
	n := int64(binary.LittleEndian.Uint32(raw[off : off+4]))
	sum := binary.LittleEndian.Uint32(raw[off+4 : off+8])
	if off+8+n > int64(len(raw)) {
		return nil, 0, false
	}
	payload = raw[off+8 : off+8+n]
	if crc32.Checksum(payload, crcTable) != sum {
		return nil, 0, false
	}
	return payload, off + 8 + n, true
}

// Validate rejects records no controller could have written — the
// shared guard for journal replay and fabric wire decoding (a CRC-valid
// or length-valid frame can still carry a buggy writer's state).
func (rec *BatchRecord) Validate() error { return validateBatchRecord(*rec) }

// validateBatchRecord rejects records no controller could have written.
func validateBatchRecord(rec BatchRecord) error {
	if rec.Cell < 0 || rec.Lo < 0 || rec.Hi <= rec.Lo {
		return fmt.Errorf("experiment: bad batch range cell=%d [%d,%d)", rec.Cell, rec.Lo, rec.Hi)
	}
	if rec.Errors < 0 || rec.Completed < 0 || rec.Errors+rec.Completed > rec.Hi-rec.Lo {
		return fmt.Errorf("experiment: bad batch counters")
	}
	if rec.Crashes < 0 || rec.Sleeps < 0 || rec.Erasures < 0 {
		return fmt.Errorf("experiment: negative fault counters")
	}
	for _, m := range rec.Moments {
		if err := m.Validate(); err != nil {
			return err
		}
	}
	return nil
}
