package experiment

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/stats"
	"repro/internal/sweep"
)

// journalSeedBytes builds a real two-batch journal through the
// production writer and returns its bytes — the honest seed the fuzzer
// mutates.
func journalSeedBytes(tb testing.TB) []byte {
	tb.Helper()
	path := filepath.Join(tb.TempDir(), "seed.ckpt")
	h := header{
		Magic: journalMagic,
		Spec: sweep.Spec{
			Topologies: []sweep.Topology{{Kind: "path", N: 8}},
			MasterSeed: 42,
		},
		BatchSize:  4,
		MinTrials:  4,
		MaxTrials:  8,
		Confidence: 0.95,
		Measures:   []string{"slots"},
	}
	jw, err := createJournal(path, h)
	if err != nil {
		tb.Fatal(err)
	}
	for b := 0; b < 2; b++ {
		rec := &BatchRecord{Cell: 0, Lo: 4 * b, Hi: 4*b + 4, Completed: 4,
			Crashes: b, Moments: make([]stats.Moments, 4)}
		for i := range rec.Moments {
			rec.Moments[i].Add(float64(b + i + 1))
			rec.Moments[i].Add(float64(b + i + 2))
		}
		if err := jw.append(rec); err != nil {
			tb.Fatal(err)
		}
	}
	if err := jw.close(); err != nil {
		tb.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// FuzzJournalRead fuzzes the checkpoint frame parser with truncations,
// bit flips, and arbitrary bytes. The safety property is "detected +
// batch re-run, never wrong resume": journalRead either refuses the file
// or returns a trusted prefix whose batches all pass validation and
// whose re-read is bit-stable — a corrupted journal can cost re-running
// batches, but it can never smuggle an invalid batch into the merge.
func FuzzJournalRead(f *testing.F) {
	seed := journalSeedBytes(f)
	f.Add(seed)
	f.Add(seed[:len(seed)-5]) // torn tail (SIGKILL mid-append)
	flip := append([]byte(nil), seed...)
	flip[len(flip)/2] ^= 0x40 // bit flip mid-journal
	f.Add(flip)
	f.Add(seed[:9]) // short header frame
	f.Add([]byte{})
	f.Add([]byte("not a journal at all"))
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "j.ckpt")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		jc, err := journalRead(path)
		if err != nil {
			return // detected: resume refuses the file outright
		}
		if jc.trusted < 0 || jc.trusted > int64(len(data)) {
			t.Fatalf("trusted offset %d outside [0, %d]", jc.trusted, len(data))
		}
		if jc.header.Magic != journalMagic {
			t.Fatalf("accepted journal with magic %q", jc.header.Magic)
		}
		for _, rec := range jc.batches {
			if verr := validateBatchRecord(rec); verr != nil {
				t.Fatalf("accepted invalid batch record: %v", verr)
			}
		}
		// The trusted prefix must re-read bit-stably with no torn tail:
		// that is the state openJournalAppend truncates to and the merge
		// replays from, so instability here would be a wrong resume.
		if err := os.WriteFile(path, data[:jc.trusted], 0o644); err != nil {
			t.Fatal(err)
		}
		jc2, err := journalRead(path)
		if err != nil {
			t.Fatalf("trusted prefix unreadable: %v", err)
		}
		if jc2.torn {
			t.Fatal("trusted prefix reports a torn tail")
		}
		if jc2.trusted != jc.trusted {
			t.Fatalf("trusted offset unstable: %d then %d", jc.trusted, jc2.trusted)
		}
		if !reflect.DeepEqual(jc2.header, jc.header) || !reflect.DeepEqual(jc2.batches, jc.batches) {
			t.Fatal("trusted prefix decodes differently on re-read")
		}
	})
}

// updateFuzzCorpus rewrites the committed seed corpus under
// testdata/fuzz/FuzzJournalRead. Run with -update-fuzz-corpus after an
// intentional journal format change (and bump journalMagic).
var updateFuzzCorpus = flag.Bool("update-fuzz-corpus", false, "rewrite the committed journal fuzz corpus")

// TestFuzzSeedCorpus keeps the committed corpus in sync with the journal
// format: the corpus directory must exist (go test runs every committed
// entry through FuzzJournalRead even without -fuzz), and -update-fuzz-corpus
// regenerates it from the production writer.
func TestFuzzSeedCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzJournalRead")
	if *updateFuzzCorpus {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		seed := journalSeedBytes(t)
		torn := seed[:len(seed)-5]
		flip := append([]byte(nil), seed...)
		flip[len(flip)/2] ^= 0x40
		for name, data := range map[string][]byte{
			"journal-intact":    seed,
			"journal-torn-tail": torn,
			"journal-bitflip":   flip,
			"header-only":       seed[:9],
		} {
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
			if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		t.Logf("rewrote %s", dir)
		return
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("committed fuzz corpus missing at %s (regenerate with -update-fuzz-corpus): %v", dir, err)
	}
}
