package experiment

// The lease controller is the adaptive controller's batch-granular face
// for the distributed sweep fabric (internal/fabric): instead of
// driving a local worker pool, a coordinator asks for (cell, lo, hi)
// leases one at a time, hands them to remote workers, and feeds the
// returned batch records back through Admit — the exact prefix-merge
// admission the local drive loop uses, which is what makes the fabric's
// report, committed trial counts and convergence traces byte-identical
// to a single-machine run at any worker count, lease reassignment
// pattern, or coordinator restart.

import (
	"fmt"

	"repro/internal/sweep"
)

// Lease identifies one batch-granular work assignment: trials [Lo, Hi)
// of matrix cell Cell. Leases lie on the controller's fixed batch grid;
// the zero Lo/Hi of a real lease are always grid bounds, so a Lease is
// comparable and usable as a map key.
type Lease struct {
	Cell int `json:"cell"`
	Lo   int `json:"lo"`
	Hi   int `json:"hi"`
}

// LeaseController exposes the adaptive controller to a coordinator one
// lease at a time. All methods must be called from a single goroutine
// (the coordinator's event loop) — the controller has no internal
// locking, exactly like the local drive loop.
type LeaseController struct {
	c *controller
}

// NewLeaseController builds a lease controller for a fresh run. The
// configuration is normalized and validated exactly as Run's is, and
// Config.Checkpoint behaves identically (fresh journal, existing file
// refused). Config.Workers and Config.Interrupt are ignored — pool size
// and interruption are the coordinator's concern.
func NewLeaseController(cfg Config) (*LeaseController, error) {
	c, err := prepare(cfg)
	if err != nil {
		return nil, err
	}
	return &LeaseController{c: c}, nil
}

// ResumeLeaseController rebuilds a lease controller from a checkpoint
// journal — the coordinator-restart path: journaled batches replay
// through the prefix-merge rule, so a coordinator that crashed mid-run
// re-issues only the batches that were in flight, and the final report
// stays byte-identical to an uninterrupted run's.
func ResumeLeaseController(path string, rc ResumeConfig) (*LeaseController, error) {
	c, err := prepareResume(path, rc)
	if err != nil {
		return nil, err
	}
	return &LeaseController{c: c}, nil
}

// Config returns the normalized configuration (spec, batch size, trial
// bounds, CI target) — what a coordinator ships to workers in the
// handshake so both sides resolve the identical Runner and batch grid.
func (lc *LeaseController) Config() Config { return lc.c.cfg }

// Runner returns the resolved spec runner (for cell labels and counts).
func (lc *LeaseController) Runner() *sweep.Runner { return lc.c.runner }

// Next issues the next lease: the lowest missing batch of the unstopped
// cell with the fewest batches done or in flight — the same fairness
// rule that reallocates local workers to the unconverged long tail.
// ok is false when every outstanding batch is already leased (or every
// cell has stopped); admitting or releasing can make Next issuable
// again.
func (lc *LeaseController) Next() (l Lease, ok bool) {
	j, ok := lc.c.nextJob()
	if !ok {
		return Lease{}, false
	}
	return Lease{Cell: j.cell, Lo: j.lo, Hi: j.hi}, true
}

// Release returns an unfinished lease to the issuable pool — the
// work-stealing primitive: a coordinator releases the leases of a dead
// or evicted worker and Next hands them to whoever asks next. Releasing
// a lease whose result later arrives anyway is safe: Admit deduplicates
// on the batch grid, so a twice-run batch merges exactly once.
func (lc *LeaseController) Release(l Lease) {
	if l.Cell < 0 || l.Cell >= len(lc.c.cells) {
		return
	}
	delete(lc.c.cells[l.Cell].inflight, l.Lo/lc.c.cfg.BatchSize)
}

// Admit journals and merges one completed batch record through the
// prefix-merge admission rule. fresh is false for a record the
// committed state no longer wants — a duplicate of an admitted batch, a
// batch past its cell's stop point, or a replay race after a lease was
// stolen and re-run — which is dropped without touching the journal.
// The error is fatal (journal write failure or a record that violates
// the batch grid); a coordinator should validate worker-supplied
// records with BatchRecord.Validate before admitting, and treat
// validation failure as the worker's fault, not the run's.
func (lc *LeaseController) Admit(rec *BatchRecord) (fresh bool, err error) {
	c := lc.c
	if rec.Cell < 0 || rec.Cell >= len(c.cells) {
		return false, fmt.Errorf("experiment: batch record for cell %d of %d", rec.Cell, len(c.cells))
	}
	cs := c.cells[rec.Cell]
	b := rec.Lo / c.cfg.BatchSize
	if cs.stopped || b < cs.prefix {
		delete(cs.inflight, b)
		return false, nil
	}
	if _, dup := cs.done[b]; dup {
		delete(cs.inflight, b)
		return false, nil
	}
	if c.jw != nil {
		if err := c.jw.append(rec); err != nil {
			return false, err
		}
	}
	if err := c.admit(cs, rec.Cell, rec); err != nil {
		return false, err
	}
	c.emitProgress()
	return true, nil
}

// Done reports whether every cell has stopped (converged or capped) —
// the coordinator's termination condition.
func (lc *LeaseController) Done() bool { return lc.c.allStopped() }

// Progress returns the coarse run progress (cells stopped, committed
// trials).
func (lc *LeaseController) Progress() Progress {
	p := Progress{Cells: len(lc.c.cells)}
	for _, cs := range lc.c.cells {
		if cs.stopped {
			p.StoppedCells++
		}
		p.CommittedTrials += cs.trials
	}
	return p
}

// Report assembles the committed state — call after Done. Byte-identical
// to the local drive loop's report for the same configuration.
func (lc *LeaseController) Report() *Report { return lc.c.report() }

// Close flushes and closes the checkpoint journal, if any.
func (lc *LeaseController) Close() error {
	if lc.c.jw == nil {
		return nil
	}
	return lc.c.jw.close()
}
