package experiment

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sweep"
	"repro/internal/telemetry"
)

func telemetryConfig() Config {
	return Config{
		Spec: sweep.Spec{
			Topologies: []sweep.Topology{{Kind: "clique", N: 6}, {Kind: "path", N: 8}},
			MasterSeed: 11,
		},
		BatchSize:   10,
		MinTrials:   20,
		MaxTrials:   400,
		TargetRelCI: 0.02,
		Measures:    []string{"maxEnergy"},
	}
}

// Adaptive convergence traces are coordinator prefix-merge products, so
// the manifest's deterministic subset — committed counts, stop reasons,
// and every trace point including its relative CI values — must be
// bit-identical for any worker count.
func TestAdaptiveTelemetryDeterministicAcrossWorkers(t *testing.T) {
	var want []byte
	var wantReport []byte
	for _, workers := range []int{1, 4, 8} {
		rec := telemetry.New()
		lg, err := telemetry.CreateEventLog(filepath.Join(t.TempDir(), "events.jsonl"))
		if err != nil {
			t.Fatal(err)
		}
		rec.SetEventLog(lg)
		cfg := telemetryConfig()
		cfg.Workers = workers
		cfg.Telemetry = rec
		rep, err := Run(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if err := lg.Close(); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		m := rec.BuildManifest("sweep", cfg.Spec, nil, workers, 0)
		det, err := m.DeterministicJSON()
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want, wantReport = det, buf.Bytes()
			continue
		}
		if !bytes.Equal(wantReport, buf.Bytes()) {
			t.Errorf("workers=%d: report differs", workers)
		}
		if !bytes.Equal(want, det) {
			t.Errorf("workers=%d: deterministic manifest differs:\n%s\nvs\n%s", workers, want, det)
		}
	}
}

// Trace shape: one point per committed batch, relCI per targeted
// measure; committed trials may lag trials run (speculation).
func TestAdaptiveTelemetryTraces(t *testing.T) {
	rec := telemetry.New()
	cfg := telemetryConfig()
	cfg.Workers = 4
	cfg.Telemetry = rec
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cells := rec.Cells()
	if len(cells) != len(rep.Cells) {
		t.Fatalf("telemetry cells = %d, report cells = %d", len(cells), len(rep.Cells))
	}
	s := rec.Snapshot()
	if s.TrialsRun < s.TrialsCommitted {
		t.Fatalf("trials run %d < committed %d", s.TrialsRun, s.TrialsCommitted)
	}
	if int(s.TrialsCommitted) != rep.TotalTrials {
		t.Fatalf("committed %d, report total %d", s.TrialsCommitted, rep.TotalTrials)
	}
	for i, c := range cells {
		batches := rep.Cells[i].Batches
		if len(c.Trace) != batches {
			t.Fatalf("cell %d: %d trace points, %d committed batches", i, len(c.Trace), batches)
		}
		if c.Stop != rep.Cells[i].Stop {
			t.Fatalf("cell %d: telemetry stop %q, report stop %q", i, c.Stop, rep.Cells[i].Stop)
		}
		for j, pt := range c.Trace {
			if pt.Batch != j {
				t.Fatalf("cell %d trace[%d]: batch %d", i, j, pt.Batch)
			}
			if len(pt.RelCI) != 1 {
				t.Fatalf("cell %d trace[%d]: %d relCI values, want 1", i, j, len(pt.RelCI))
			}
		}
		last := c.Trace[len(c.Trace)-1]
		if last.Trials != rep.Cells[i].Trials {
			t.Fatalf("cell %d: final trace trials %d, report %d", i, last.Trials, rep.Cells[i].Trials)
		}
	}
}

// Every journaled batch record is one fsync; a resumed run's traces
// rebuild identically to the uninterrupted run's.
func TestTelemetryJournalAndResume(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "run.ckpt")

	rec := telemetry.New()
	cfg := telemetryConfig()
	cfg.Workers = 2
	cfg.Checkpoint = ckpt
	cfg.Telemetry = rec
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := rec.Snapshot()
	if s.JournalFsyncs == 0 {
		t.Fatal("no journal fsyncs counted")
	}
	jc, err := journalRead(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if int(s.JournalFsyncs) != len(jc.batches) {
		t.Fatalf("fsyncs %d, journaled batches %d", s.JournalFsyncs, len(jc.batches))
	}
	m1 := rec.BuildManifest("sweep", cfg.Spec, nil, 2, 0)
	det1, err := m1.DeterministicJSON()
	if err != nil {
		t.Fatal(err)
	}

	// A full journal resumes to the same report and the same
	// deterministic telemetry, with zero fresh fsyncs.
	rec2 := telemetry.New()
	rep2, err := Resume(ckpt, ResumeConfig{Workers: 3, Telemetry: rec2})
	if err != nil {
		t.Fatal(err)
	}
	var b1, b2 bytes.Buffer
	if err := rep.WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := rep2.WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("resumed report differs from uninterrupted run")
	}
	if s2 := rec2.Snapshot(); s2.JournalFsyncs != 0 {
		t.Fatalf("resume of a complete journal wrote %d records", s2.JournalFsyncs)
	}
	m2 := rec2.BuildManifest("sweep", cfg.Spec, nil, 3, 0)
	det2, err := m2.DeterministicJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(det1, det2) {
		t.Fatalf("resumed deterministic manifest differs:\n%s\nvs\n%s", det1, det2)
	}
	// Replay shows up as its own phase on the resumed recorder.
	found := false
	for _, p := range m2.Phases {
		if p.Name == "replay" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no replay phase in %+v", m2.Phases)
	}
	if err := os.Remove(ckpt); err != nil {
		t.Fatal(err)
	}
}
