// Package baseline implements the classical decay Broadcast of
// Bar-Yehuda, Goldreich and Itai (Section 1.1's reference [4]): the
// standard time-optimized, energy-oblivious comparator for every
// experiment in this repository.
//
// The protocol runs rounds of the decay pattern: informed vertices
// transmit with geometrically decreasing persistence; uninformed vertices
// listen in every slot. Time is O(D log n + log^2 n), but because
// uninformed vertices never sleep, per-vertex energy is Theta(time spent
// uninformed) — the exact behaviour the paper's algorithms eliminate.
package baseline

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/rng"
)

// Params configures a decay-broadcast run.
type Params struct {
	// Rounds is the number of decay rounds.
	Rounds int
	// PhaseLen is the slots per round (ceil(log2 Delta)+2).
	PhaseLen int
	// Sims optionally reuses a per-goroutine simulator cache
	// (radio.SimCache). Purely an allocation optimization for repeated
	// runs on one topology; measurements and determinism are unaffected.
	Sims *radio.SimCache
}

// NewParams sizes the protocol for an n-vertex, degree-delta,
// diameter-diam network (w.h.p. completion).
func NewParams(n, delta, diam int) Params {
	if delta < 1 {
		delta = 1
	}
	logN := rng.Log2Ceil(n) + 1
	return Params{
		Rounds:   2*diam + 8*logN,
		PhaseLen: rng.Log2Ceil(delta) + 2,
	}
}

// Slots returns the schedule length.
func (p Params) Slots() uint64 {
	return uint64(p.Rounds) * uint64(p.PhaseLen)
}

// DeviceResult is one device's view after the protocol.
type DeviceResult struct {
	Informed   bool
	Msg        any
	ReceivedAt uint64
}

// Program returns the device program. Informed vertices run the decay
// transmission pattern each round; uninformed vertices listen in every
// slot until they receive the message.
func Program(p Params, isSource bool, msg any, out *DeviceResult) radio.Program {
	return func(e *radio.Env) {
		has := isSource
		body := msg
		var receivedAt uint64
		for r := 0; r < p.Rounds; r++ {
			base := uint64(1) + uint64(r)*uint64(p.PhaseLen)
			if has {
				// Decay: transmit, then survive each next slot w.p. 1/2.
				for i := 0; i < p.PhaseLen; i++ {
					e.Transmit(base+uint64(i), body)
					if e.Rand().Uint64()&1 == 0 {
						break
					}
				}
				e.SleepUntil(base + uint64(p.PhaseLen) - 1)
				continue
			}
			for i := 0; i < p.PhaseLen && !has; i++ {
				slot := base + uint64(i)
				if fb := e.Listen(slot); fb.Status == radio.Received {
					has = true
					body = fb.Payload
					receivedAt = slot
				}
			}
			e.SleepUntil(base + uint64(p.PhaseLen) - 1)
		}
		out.Informed = has
		out.Msg = body
		out.ReceivedAt = receivedAt
	}
}

// Outcome aggregates a run.
type Outcome struct {
	Result  *radio.Result
	Devices []DeviceResult
}

// AllInformed reports whether every vertex holds the message.
func (o *Outcome) AllInformed() bool {
	for _, d := range o.Devices {
		if !d.Informed {
			return false
		}
	}
	return true
}

// Broadcast runs the decay baseline on g from source.
func Broadcast(g *graph.Graph, source int, msg any, p Params, seed uint64, model radio.Model) (*Outcome, error) {
	if source < 0 || source >= g.N() {
		return nil, fmt.Errorf("baseline: source %d out of range", source)
	}
	n := g.N()
	devs := make([]DeviceResult, n)
	programs := make([]radio.Program, n)
	for v := 0; v < n; v++ {
		programs[v] = Program(p, v == source, msg, &devs[v])
	}
	res, err := radio.Run(radio.Config{Graph: g, Model: model, Seed: seed, Sims: p.Sims}, programs)
	if err != nil {
		return nil, err
	}
	return &Outcome{Result: res, Devices: devs}, nil
}
