// Package baseline implements the classical decay Broadcast of
// Bar-Yehuda, Goldreich and Itai (Section 1.1's reference [4]): the
// standard time-optimized, energy-oblivious comparator for every
// experiment in this repository.
//
// The protocol runs rounds of the decay pattern: informed vertices
// transmit with geometrically decreasing persistence; uninformed vertices
// listen in every slot. Time is O(D log n + log^2 n), but because
// uninformed vertices never sleep, per-vertex energy is Theta(time spent
// uninformed) — the exact behaviour the paper's algorithms eliminate.
package baseline

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/rng"
)

// Params configures a decay-broadcast run.
type Params struct {
	// Rounds is the number of decay rounds.
	Rounds int
	// PhaseLen is the slots per round (ceil(log2 Delta)+2).
	PhaseLen int
	// Sims optionally reuses a per-goroutine simulator cache
	// (radio.SimCache). Purely an allocation optimization for repeated
	// runs on one topology; measurements and determinism are unaffected.
	Sims *radio.SimCache
}

// NewParams sizes the protocol for an n-vertex, degree-delta,
// diameter-diam network (w.h.p. completion).
func NewParams(n, delta, diam int) Params {
	if delta < 1 {
		delta = 1
	}
	logN := rng.Log2Ceil(n) + 1
	return Params{
		Rounds:   2*diam + 8*logN,
		PhaseLen: rng.Log2Ceil(delta) + 2,
	}
}

// Slots returns the schedule length.
func (p Params) Slots() uint64 {
	return uint64(p.Rounds) * uint64(p.PhaseLen)
}

// DeviceResult is one device's view after the protocol.
type DeviceResult struct {
	Informed   bool
	Msg        any
	ReceivedAt uint64
}

// decayProc is the resumable step machine behind Program: informed
// vertices run the decay transmission pattern each round; uninformed
// vertices listen in every slot until they receive the message. The
// action schedule and per-device random draws are identical to the
// historical blocking program (one survival draw after every transmit,
// listening stops for the round on first receipt), so measurements are
// byte-for-byte unchanged — the protocol just no longer pays a
// goroutine park/wake per slot.
type decayProc struct {
	p   Params
	out *DeviceResult

	has    bool
	body   any
	recvAt uint64

	r, i     int    // current round, next slot index within it
	drawNext bool   // previous action was a transmit: draw survival next
	heardAt  uint64 // slot of the previous listen (for ReceivedAt)
	await    bool   // previous action was a listen
}

// Proc returns the device's inline step proc. Procs are single-use:
// build fresh ones per run.
func Proc(p Params, isSource bool, msg any, out *DeviceResult) radio.Proc {
	d := &decayProc{p: p, out: out, has: isSource}
	if isSource {
		d.body = msg
	}
	return d
}

func (d *decayProc) Step(ch radio.Channel, fb radio.Feedback) radio.Action {
	plen := d.p.PhaseLen
	switch {
	case d.await:
		d.await = false
		if fb.Status == radio.Received {
			d.has, d.body, d.recvAt = true, fb.Payload, d.heardAt
			d.r, d.i = d.r+1, 0 // round over: we hold the message now
		}
	case d.drawNext:
		// Decay survival: transmit, then survive each next slot w.p. 1/2.
		d.drawNext = false
		if ch.Rand().Uint64()&1 == 0 {
			d.r, d.i = d.r+1, 0
		}
	}
	for {
		if d.r >= d.p.Rounds {
			d.out.Informed = d.has
			d.out.Msg = d.body
			d.out.ReceivedAt = d.recvAt
			return radio.Halt()
		}
		if d.i >= plen {
			d.r, d.i = d.r+1, 0
			continue
		}
		slot := uint64(1) + uint64(d.r)*uint64(plen) + uint64(d.i)
		d.i++
		if d.has {
			d.drawNext = true
			return radio.Transmit(slot, d.body)
		}
		d.await, d.heardAt = true, slot
		return radio.Listen(slot)
	}
}

// Outcome aggregates a run.
type Outcome struct {
	Result  *radio.Result
	Devices []DeviceResult
}

// AllInformed reports whether every vertex holds the message.
func (o *Outcome) AllInformed() bool {
	for _, d := range o.Devices {
		if !d.Informed {
			return false
		}
	}
	return true
}

// Broadcast runs the decay baseline on g from source.
func Broadcast(g *graph.Graph, source int, msg any, p Params, seed uint64, model radio.Model) (*Outcome, error) {
	if source < 0 || source >= g.N() {
		return nil, fmt.Errorf("baseline: source %d out of range", source)
	}
	n := g.N()
	devs := make([]DeviceResult, n)
	pop := make([]radio.Device, n)
	for v := 0; v < n; v++ {
		pop[v].Proc = Proc(p, v == source, msg, &devs[v])
	}
	res, err := radio.RunDevices(radio.Config{Graph: g, Model: model, Seed: seed, Sims: p.Sims}, pop)
	if err != nil {
		return nil, err
	}
	return &Outcome{Result: res, Devices: devs}, nil
}
