package baseline

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/radio"
)

func run(t *testing.T, g *graph.Graph, seed uint64) *Outcome {
	t.Helper()
	d, err := g.Diameter()
	if err != nil {
		t.Fatal(err)
	}
	p := NewParams(g.N(), g.MaxDegree(), d)
	out, err := Broadcast(g, 0, "decay", p, seed, radio.NoCD)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestDecayBroadcastInformsAll(t *testing.T) {
	gs := []*graph.Graph{
		graph.Path(32), graph.Star(32), graph.GNP(48, 0.12, 1),
		graph.Grid(6, 6), graph.RandomTree(40, 2), graph.K2k(10),
	}
	for _, g := range gs {
		out := run(t, g, 7)
		if !out.AllInformed() {
			t.Errorf("%s: broadcast incomplete", g.Name())
		}
		for v, d := range out.Devices {
			if d.Msg != "decay" {
				t.Errorf("%s: vertex %d got %v", g.Name(), v, d.Msg)
			}
		}
	}
}

func TestDecayIsFastButEnergyHungry(t *testing.T) {
	// Characteristic baseline shape: completion in O(D log) slots, but
	// per-vertex energy comparable to its waiting time.
	g := graph.Path(64)
	out := run(t, g, 3)
	if !out.AllInformed() {
		t.Fatal("incomplete")
	}
	// Far vertices must have spent energy proportional to their distance
	// (they listened the whole time): energy of the last vertex is a
	// large fraction of its receive slot.
	last := out.Devices[63]
	if last.ReceivedAt == 0 {
		t.Fatal("vertex 63 has no receive slot")
	}
	e := out.Result.Energy[63]
	if float64(e) < 0.5*float64(last.ReceivedAt) {
		t.Errorf("baseline energy %d unexpectedly small vs receive slot %d", e, last.ReceivedAt)
	}
}

func TestDecayTimeLinearInDiameter(t *testing.T) {
	// Receive slots grow roughly linearly with distance on a path.
	g := graph.Path(48)
	out := run(t, g, 5)
	r16 := out.Devices[16].ReceivedAt
	r47 := out.Devices[47].ReceivedAt
	if r47 <= r16 {
		t.Errorf("farther vertex received earlier: %d vs %d", r47, r16)
	}
}

func TestSourceValidation(t *testing.T) {
	g := graph.Path(4)
	p := NewParams(4, 2, 3)
	if _, err := Broadcast(g, -1, nil, p, 0, radio.NoCD); err == nil {
		t.Error("negative source accepted")
	}
	if _, err := Broadcast(g, 4, nil, p, 0, radio.NoCD); err == nil {
		t.Error("out-of-range source accepted")
	}
}

func TestSlotsAccounting(t *testing.T) {
	g := graph.Star(16)
	p := NewParams(16, 15, 2)
	out, err := Broadcast(g, 0, "x", p, 1, radio.NoCD)
	if err != nil {
		t.Fatal(err)
	}
	if out.Result.Slots > p.Slots() {
		t.Errorf("used slot %d beyond schedule %d", out.Result.Slots, p.Slots())
	}
}

func TestWorksInCDToo(t *testing.T) {
	g := graph.GNP(24, 0.2, 9)
	d, err := g.Diameter()
	if err != nil {
		t.Fatal(err)
	}
	p := NewParams(g.N(), g.MaxDegree(), d)
	out, err := Broadcast(g, 0, "cd", p, 2, radio.CD)
	if err != nil {
		t.Fatal(err)
	}
	if !out.AllInformed() {
		t.Error("CD decay broadcast incomplete")
	}
}
