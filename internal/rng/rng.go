// Package rng provides deterministic, splittable pseudo-random number
// generation and the samplers used by the broadcast protocols (Bernoulli
// trials, geometric and exponential variates).
//
// Every protocol in this repository draws randomness exclusively through
// this package so that simulations are reproducible from a single root
// seed: the root seed is split into independent per-device streams with
// SplitMix64, and each stream is a PCG generator from math/rand/v2.
package rng

import (
	"math"
	"math/rand/v2"
)

// SplitMix64 advances the state by one step and returns the next output of
// the splitmix64 sequence. It is used to derive independent child seeds
// from a parent seed; splitmix64 is the standard seed-scrambling function
// for this purpose and has full 64-bit period.
func SplitMix64(state uint64) uint64 {
	z := state + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Child derives the seed for the idx-th child stream of the given parent
// seed. Distinct (seed, idx) pairs yield statistically independent streams.
func Child(seed uint64, idx uint64) uint64 {
	return SplitMix64(SplitMix64(seed) ^ SplitMix64(idx*0x9e3779b97f4a7c15+0x2545f4914f6cdd1d))
}

// pcgSeeds derives the two PCG seed words this package uses for a stream.
func pcgSeeds(seed uint64) (uint64, uint64) {
	return SplitMix64(seed), SplitMix64(seed ^ 0xdeadbeefcafef00d)
}

// New returns a deterministic generator for the given seed.
func New(seed uint64) *rand.Rand {
	lo, hi := pcgSeeds(seed)
	return rand.New(rand.NewPCG(lo, hi))
}

// NewChild returns a deterministic generator for the idx-th child stream of
// seed. It is equivalent to New(Child(seed, idx)).
func NewChild(seed uint64, idx uint64) *rand.Rand {
	return New(Child(seed, idx))
}

// Reseed resets p in place to the exact stream New(seed) would produce —
// the allocation-free path for engines that recycle their generators
// across runs (a rand.Rand wrapping p continues from the fresh stream).
func Reseed(p *rand.PCG, seed uint64) {
	lo, hi := pcgSeeds(seed)
	p.Seed(lo, hi)
}

// ReseedChild resets p in place to the stream NewChild(seed, idx) would
// produce.
func ReseedChild(p *rand.PCG, seed, idx uint64) {
	Reseed(p, Child(seed, idx))
}

// Bernoulli reports true with probability p (clamped to [0,1]).
func Bernoulli(r *rand.Rand, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// BernoulliPow2 reports true with probability 2^(-k) for k >= 0. It uses
// k fair coin flips rather than floating point, so it is exact for any k
// and cheap for the small k used by decay-style protocols.
func BernoulliPow2(r *rand.Rand, k int) bool {
	if k <= 0 {
		return true
	}
	for k > 0 {
		step := k
		if step > 63 {
			step = 63
		}
		bits := r.Uint64() & (1<<uint(step) - 1)
		if bits != 0 {
			return false
		}
		k -= step
	}
	return true
}

// Geometric samples from the geometric distribution on {1, 2, 3, ...} with
// success probability p, i.e. the number of Bernoulli(p) trials up to and
// including the first success. The mean is 1/p.
func Geometric(r *rand.Rand, p float64) int {
	if p >= 1 {
		return 1
	}
	if p <= 0 {
		panic("rng: Geometric requires p > 0")
	}
	// Inversion method: ceil(ln(U) / ln(1-p)).
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	g := int(math.Ceil(math.Log(u) / math.Log(1-p)))
	if g < 1 {
		g = 1
	}
	return g
}

// Exponential samples from the exponential distribution with rate lambda
// (mean 1/lambda), as used by Partition(beta) where delta_v ~ Exp(beta).
func Exponential(r *rand.Rand, lambda float64) float64 {
	if lambda <= 0 {
		panic("rng: Exponential requires lambda > 0")
	}
	return r.ExpFloat64() / lambda
}

// BlockingTime samples the blocking time B_v of Algorithm 1 (Section 8):
//
//	B = 2^b with probability 2^-b, for 1 <= b < log2(n), and
//	B = n   with the remaining probability.
//
// n must be a power of two (callers round up, per the paper).
func BlockingTime(r *rand.Rand, n int) int {
	if n < 2 {
		return n
	}
	logN := Log2Ceil(n)
	for b := 1; b < logN; b++ {
		if r.Uint64()&1 == 0 { // probability 1/2 per level
			return 1 << uint(b)
		}
	}
	return n
}

// Log2Ceil returns ceil(log2(x)) for x >= 1, and 0 for x <= 1.
func Log2Ceil(x int) int {
	if x <= 1 {
		return 0
	}
	k := 0
	v := 1
	for v < x {
		v <<= 1
		k++
	}
	return k
}

// Log2Floor returns floor(log2(x)) for x >= 1, and 0 for x <= 1.
func Log2Floor(x int) int {
	if x <= 1 {
		return 0
	}
	k := 0
	for x > 1 {
		x >>= 1
		k++
	}
	return k
}

// NextPow2 returns the smallest power of two >= x (and 1 for x <= 1).
func NextPow2(x int) int {
	return 1 << uint(Log2Ceil(x))
}
