package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64Deterministic(t *testing.T) {
	a := SplitMix64(42)
	b := SplitMix64(42)
	if a != b {
		t.Fatalf("SplitMix64 not deterministic: %d != %d", a, b)
	}
	if SplitMix64(42) == SplitMix64(43) {
		t.Fatal("SplitMix64(42) == SplitMix64(43): unexpected collision")
	}
}

func TestChildStreamsDiffer(t *testing.T) {
	seen := make(map[uint64]uint64, 1000)
	for i := uint64(0); i < 1000; i++ {
		c := Child(7, i)
		if prev, ok := seen[c]; ok {
			t.Fatalf("Child(7,%d) collides with Child(7,%d)", i, prev)
		}
		seen[c] = i
	}
}

func TestNewDeterministic(t *testing.T) {
	r1 := New(99)
	r2 := New(99)
	for i := 0; i < 100; i++ {
		if r1.Uint64() != r2.Uint64() {
			t.Fatalf("New(99) streams diverge at step %d", i)
		}
	}
}

func TestNewChildMatchesChild(t *testing.T) {
	a := NewChild(5, 3)
	b := New(Child(5, 3))
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("NewChild(5,3) != New(Child(5,3))")
		}
	}
}

func TestBernoulliExtremes(t *testing.T) {
	r := New(1)
	for i := 0; i < 100; i++ {
		if Bernoulli(r, 0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !Bernoulli(r, 1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if Bernoulli(r, -0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !Bernoulli(r, 1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliMean(t *testing.T) {
	r := New(2)
	const trials = 200000
	for _, p := range []float64{0.1, 0.5, 0.9} {
		hits := 0
		for i := 0; i < trials; i++ {
			if Bernoulli(r, p) {
				hits++
			}
		}
		got := float64(hits) / trials
		if math.Abs(got-p) > 0.01 {
			t.Errorf("Bernoulli(%v): empirical mean %v", p, got)
		}
	}
}

func TestBernoulliPow2(t *testing.T) {
	r := New(3)
	if !BernoulliPow2(r, 0) {
		t.Fatal("BernoulliPow2(0) must always be true")
	}
	if !BernoulliPow2(r, -1) {
		t.Fatal("BernoulliPow2(-1) must always be true")
	}
	const trials = 1 << 18
	for _, k := range []int{1, 2, 5} {
		hits := 0
		for i := 0; i < trials; i++ {
			if BernoulliPow2(r, k) {
				hits++
			}
		}
		want := math.Pow(2, -float64(k))
		got := float64(hits) / trials
		if math.Abs(got-want) > 0.01 {
			t.Errorf("BernoulliPow2(%d): got mean %v, want %v", k, got, want)
		}
	}
	// Very large k should be effectively never (and must not hang).
	for i := 0; i < 1000; i++ {
		if BernoulliPow2(r, 200) {
			t.Fatal("BernoulliPow2(200) returned true (p = 2^-200)")
		}
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(4)
	const trials = 100000
	for _, p := range []float64{0.5, 0.25} {
		sum := 0
		for i := 0; i < trials; i++ {
			g := Geometric(r, p)
			if g < 1 {
				t.Fatalf("Geometric(%v) returned %d < 1", p, g)
			}
			sum += g
		}
		got := float64(sum) / trials
		want := 1 / p
		if math.Abs(got-want) > 0.05*want {
			t.Errorf("Geometric(%v): empirical mean %v, want %v", p, got, want)
		}
	}
	if Geometric(r, 1) != 1 {
		t.Error("Geometric(1) must be 1")
	}
}

func TestGeometricPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Geometric(r, 0) did not panic")
		}
	}()
	Geometric(New(1), 0)
}

func TestExponentialMean(t *testing.T) {
	r := New(5)
	const trials = 100000
	for _, lambda := range []float64{1, 4} {
		sum := 0.0
		for i := 0; i < trials; i++ {
			x := Exponential(r, lambda)
			if x < 0 {
				t.Fatalf("Exponential(%v) returned negative %v", lambda, x)
			}
			sum += x
		}
		got := sum / trials
		want := 1 / lambda
		if math.Abs(got-want) > 0.05*want {
			t.Errorf("Exponential(%v): empirical mean %v, want %v", lambda, got, want)
		}
	}
}

func TestExponentialPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exponential(r, 0) did not panic")
		}
	}()
	Exponential(New(1), 0)
}

func TestBlockingTimeDistribution(t *testing.T) {
	r := New(6)
	const n = 64
	const trials = 200000
	counts := make(map[int]int)
	for i := 0; i < trials; i++ {
		b := BlockingTime(r, n)
		counts[b]++
	}
	// Support must be {2, 4, 8, 16, 32, 64}: powers of two 2^1..2^(log n -1)
	// plus n itself.
	for b := range counts {
		if b != n && (b&(b-1) != 0 || b < 2 || b >= n) {
			t.Fatalf("BlockingTime produced unexpected value %d", b)
		}
	}
	// P[B = 2^b] = 2^-b for b in [1, log2 n), P[B = n] = remaining mass.
	for b := 1; b < 6; b++ {
		want := math.Pow(2, -float64(b))
		got := float64(counts[1<<uint(b)]) / trials
		if math.Abs(got-want) > 0.01 {
			t.Errorf("P[B=%d] = %v, want %v", 1<<uint(b), got, want)
		}
	}
	wantN := math.Pow(2, -5) // mass not claimed by b = 1..5
	gotN := float64(counts[n]) / trials
	if math.Abs(gotN-wantN) > 0.01 {
		t.Errorf("P[B=n] = %v, want %v", gotN, wantN)
	}
}

func TestBlockingTimeSmallN(t *testing.T) {
	r := New(7)
	if got := BlockingTime(r, 1); got != 1 {
		t.Errorf("BlockingTime(1) = %d, want 1", got)
	}
	for i := 0; i < 100; i++ {
		if got := BlockingTime(r, 2); got != 2 {
			t.Errorf("BlockingTime(2) = %d, want 2", got)
		}
	}
}

func TestLog2Helpers(t *testing.T) {
	cases := []struct {
		x           int
		ceil, floor int
		nextPow2    int
	}{
		{1, 0, 0, 1},
		{2, 1, 1, 2},
		{3, 2, 1, 4},
		{4, 2, 2, 4},
		{5, 3, 2, 8},
		{8, 3, 3, 8},
		{9, 4, 3, 16},
		{1024, 10, 10, 1024},
		{1025, 11, 10, 2048},
	}
	for _, c := range cases {
		if got := Log2Ceil(c.x); got != c.ceil {
			t.Errorf("Log2Ceil(%d) = %d, want %d", c.x, got, c.ceil)
		}
		if got := Log2Floor(c.x); got != c.floor {
			t.Errorf("Log2Floor(%d) = %d, want %d", c.x, got, c.floor)
		}
		if got := NextPow2(c.x); got != c.nextPow2 {
			t.Errorf("NextPow2(%d) = %d, want %d", c.x, got, c.nextPow2)
		}
	}
	if Log2Ceil(0) != 0 || Log2Floor(0) != 0 || NextPow2(0) != 1 {
		t.Error("log2 helpers mishandle x <= 1")
	}
}

func TestLog2Property(t *testing.T) {
	f := func(raw uint16) bool {
		x := int(raw)%100000 + 1
		c, fl := Log2Ceil(x), Log2Floor(x)
		if 1<<uint(fl) > x || (fl > 0 && 1<<uint(fl) > x) {
			return false
		}
		if 1<<uint(c) < x {
			return false
		}
		return c-fl <= 1 || (c == fl)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
