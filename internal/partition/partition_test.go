package partition

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/radio"
)

func TestEveryoneClustered(t *testing.T) {
	gs := []*graph.Graph{graph.Path(24), graph.Grid(4, 6), graph.GNP(30, 0.15, 1)}
	for _, g := range gs {
		p, err := NewParams(radio.NoCD, g.N(), g.MaxDegree(), 0.5)
		if err != nil {
			t.Fatal(err)
		}
		out, err := Partition(g, p, 3)
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		for v, d := range out.Devices {
			if d.Cluster < 0 {
				t.Errorf("%s: vertex %d unclustered", g.Name(), v)
			}
		}
	}
}

func TestInducedLabelingGood(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		g := graph.Grid(5, 5)
		p, err := NewParams(radio.CD, g.N(), g.MaxDegree(), 0.4)
		if err != nil {
			t.Fatal(err)
		}
		out, err := Partition(g, p, seed)
		if err != nil {
			t.Fatal(err)
		}
		if err := out.Labels.Validate(g); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
		// Layer-0 vertices are exactly the cluster centers.
		for v, d := range out.Devices {
			if (d.Layer == 0) != (d.Cluster == v) {
				t.Errorf("seed %d: vertex %d layer %d cluster %d inconsistent",
					seed, v, d.Layer, d.Cluster)
			}
		}
	}
}

func TestClustersAreConnected(t *testing.T) {
	// Each cluster must induce a connected subgraph (recruitment grows
	// hop by hop from the center).
	g := graph.GNP(28, 0.15, 5)
	p, err := NewParams(radio.Local, g.N(), g.MaxDegree(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Partition(g, p, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range out.Clusters() {
		// BFS within the cluster from the center.
		members := make(map[int]bool)
		for v, d := range out.Devices {
			if d.Cluster == c {
				members[v] = true
			}
		}
		visited := map[int]bool{c: true}
		queue := []int{c}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, u := range g.Neighbors(v) {
				if members[u] && !visited[u] {
					visited[u] = true
					queue = append(queue, u)
				}
			}
		}
		if len(visited) != len(members) {
			t.Errorf("cluster %d disconnected: %d of %d reachable", c, len(visited), len(members))
		}
	}
}

func TestCutProbabilityScalesWithBeta(t *testing.T) {
	// Lemma 14(1): P[edge cut] <= 2*beta. Average over seeds on a grid;
	// allow generous slack for the SR-communication granularity.
	g := graph.Grid(6, 6)
	cutFraction := func(beta float64) float64 {
		total, cut := 0, 0
		for seed := uint64(0); seed < 6; seed++ {
			p, err := NewParams(radio.Local, g.N(), g.MaxDegree(), beta)
			if err != nil {
				t.Fatal(err)
			}
			out, err := Partition(g, p, seed)
			if err != nil {
				t.Fatal(err)
			}
			cut += out.CutEdges(g)
			total += g.M()
		}
		return float64(cut) / float64(total)
	}
	small := cutFraction(0.15)
	large := cutFraction(0.8)
	if small >= large {
		t.Errorf("cut fraction did not grow with beta: beta=0.15 -> %v, beta=0.8 -> %v", small, large)
	}
	if small > 2*0.15+0.25 {
		t.Errorf("beta=0.15 cut fraction %v far above the 2*beta bound", small)
	}
}

func TestDiameterShrinks(t *testing.T) {
	// Lemma 15 shape: the cluster graph of a long path is much shorter
	// than the path.
	g := graph.Path(64)
	p, err := NewParams(radio.Local, g.N(), g.MaxDegree(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	shrunk := false
	for seed := uint64(0); seed < 3; seed++ {
		out, err := Partition(g, p, seed)
		if err != nil {
			t.Fatal(err)
		}
		cg, _ := out.ClusterGraph(g)
		d0, _ := g.Diameter()
		d1 := 0
		if cg.N() > 0 {
			var derr error
			d1, derr = cg.Diameter()
			if derr != nil {
				t.Fatalf("cluster graph disconnected: %v", derr)
			}
		}
		if d1 < d0/2 {
			shrunk = true
		}
	}
	if !shrunk {
		t.Error("cluster-graph diameter never shrank below half the path diameter")
	}
}

func TestParamsValidation(t *testing.T) {
	if _, err := NewParams(radio.NoCD, 16, 3, 0); err == nil {
		t.Error("beta=0 accepted")
	}
	if _, err := NewParams(radio.NoCD, 16, 3, 1); err == nil {
		t.Error("beta=1 accepted")
	}
	p, err := NewParams(radio.NoCD, 16, 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if p.Slots() != uint64(p.Epochs)*p.SR.Slots() {
		t.Error("Slots accounting wrong")
	}
}

func TestCentersHaveSmallStartBias(t *testing.T) {
	// Vertices with larger delta start earlier and are likelier to be
	// centers; sanity-check that centers exist and starts are in range.
	g := graph.GNP(30, 0.2, 2)
	p, err := NewParams(radio.CD, g.N(), g.MaxDegree(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Partition(g, p, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Clusters()) == 0 {
		t.Fatal("no clusters formed")
	}
	for v, d := range out.Devices {
		if d.Start < 1 || d.Start > p.Epochs {
			t.Errorf("vertex %d start %d outside [1,%d]", v, d.Start, p.Epochs)
		}
	}
}
