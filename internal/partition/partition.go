// Package partition implements Partition(beta), the Miller-Peng-Xu
// random-shift clustering of Section 6 (as adapted to radio networks by
// Haeupler and Wajc): every vertex draws delta_v ~ Exponential(beta) and
// conceptually joins the cluster of the center u minimizing
// dist(u,v) - delta_u.
//
// The distributed implementation runs 2 log n / beta epochs. A vertex
// whose start time start_v = T - ceil(delta_v) has arrived and which is
// still unclustered becomes a cluster center; during every epoch one
// SR-communication lets clustered vertices recruit unclustered neighbors.
// The resulting cluster assignment doubles as a good labeling (the layer
// is the recruitment depth), which is what the Theorem 16 algorithm
// iterates on.
//
// Key properties (Lemma 14, verified statistically in tests and benches):
// an edge is cut between clusters with probability at most 2*beta, and
// the cluster-graph diameter contracts to <= 3*beta*D w.h.p. (Lemma 15).
package partition

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/labeling"
	"repro/internal/radio"
	"repro/internal/rng"
)

// Params configures one Partition(beta) run; all fields are global
// knowledge.
type Params struct {
	// Beta is the exponential rate (0 < Beta < 1).
	Beta float64
	// Epochs is the round count T (the paper's 2 log n / beta).
	Epochs int
	// SR is the per-epoch SR-communication window.
	SR cluster.Spec
	// Sims optionally reuses a per-goroutine simulator cache
	// (radio.SimCache). Purely an allocation optimization for repeated
	// runs on one topology; measurements and determinism are unaffected.
	Sims *radio.SimCache
}

// NewParams returns the standard parameterization for an n-vertex,
// degree-delta network under the given model.
func NewParams(model radio.Model, n, delta int, beta float64) (Params, error) {
	if beta <= 0 || beta >= 1 {
		return Params{}, fmt.Errorf("partition: beta %v outside (0,1)", beta)
	}
	logN := float64(rng.Log2Ceil(n) + 1)
	t := int(math.Ceil(2 * logN / beta))
	if t < 2 {
		t = 2
	}
	return Params{
		Beta:   beta,
		Epochs: t,
		SR:     cluster.NewSpec(model, n, delta),
	}, nil
}

// Slots returns the total window length of the protocol.
func (p Params) Slots() uint64 {
	return uint64(p.Epochs) * p.SR.Slots()
}

// Result is one device's outcome.
type Result struct {
	// Cluster is the cluster id (the center's vertex index).
	Cluster int
	// Layer is the device's recruitment depth (0 for centers) — a good
	// labeling across the graph.
	Layer int
	// Delta is the device's exponential shift delta_v.
	Delta float64
	// Start is the device's start epoch (1-based).
	Start int
}

// msg is the recruitment payload.
type msg struct {
	cluster int
	layer   int
}

// RunCont is the continuation form of the device side of Partition(beta)
// in the window [start, start+Slots()), resuming with k when the window
// ends. The exponential shift is drawn when the continuation first runs;
// out is complete (every device clustered) before k resumes.
func RunCont(p Params, start uint64, out *Result, k radio.Cont) radio.Cont {
	w := p.SR.Slots()
	return radio.EvalCh(func(ch radio.Channel) radio.Cont {
		delta := rng.Exponential(ch.Rand(), p.Beta)
		st := p.Epochs - int(math.Ceil(delta))
		if st < 1 {
			st = 1
		}
		*out = Result{Cluster: -1, Delta: delta, Start: st}
		finish := radio.Do(func() {
			if out.Cluster < 0 {
				// Start time never arrived while unclustered (cannot happen:
				// start <= Epochs forces self-start), but stay safe.
				out.Cluster = ch.Index()
				out.Layer = 0
			}
		}, k)
		var epoch func(t int) radio.Cont
		epoch = func(t int) radio.Cont {
			if t > p.Epochs {
				return finish
			}
			ws := start + uint64(t-1)*w
			next := radio.Eval(func() radio.Cont { return epoch(t + 1) })
			return radio.Eval(func() radio.Cont {
				if out.Cluster < 0 && out.Start == t {
					// Become the center of a fresh cluster.
					out.Cluster = ch.Index()
					out.Layer = 0
				}
				if out.Cluster >= 0 {
					return p.SR.SendCont(ws, func() any {
						return msg{cluster: out.Cluster, layer: out.Layer}
					}, next)
				}
				return p.SR.ReceiveCont(ws, func(m any, ok bool) {
					if ok {
						if mm, isMsg := m.(msg); isMsg {
							out.Cluster = mm.cluster
							out.Layer = mm.layer + 1
						}
					}
				}, next)
			})
		}
		return epoch(1)
	})
}

// Proc returns the device step machine executing Partition(beta) in the
// window [start, start+Slots()). Every device ends clustered; the device
// halts when the window ends.
func Proc(p Params, start uint64, out *Result) radio.Proc {
	return radio.ContProc(func(ch radio.Channel) radio.Cont {
		return RunCont(p, start, out, nil)
	})
}

// Outcome aggregates a whole-graph run.
type Outcome struct {
	Result  *radio.Result
	Devices []Result
	// Labels is the induced good labeling.
	Labels labeling.Labeling
}

// Clusters returns the distinct cluster ids.
func (o *Outcome) Clusters() []int {
	seen := make(map[int]bool)
	var out []int
	for _, d := range o.Devices {
		if !seen[d.Cluster] {
			seen[d.Cluster] = true
			out = append(out, d.Cluster)
		}
	}
	return out
}

// CutEdges returns the number of graph edges whose endpoints lie in
// different clusters.
func (o *Outcome) CutEdges(g *graph.Graph) int {
	cut := 0
	for v := 0; v < g.N(); v++ {
		for _, u := range g.Neighbors(v) {
			if u > v && o.Devices[v].Cluster != o.Devices[u].Cluster {
				cut++
			}
		}
	}
	return cut
}

// ClusterGraph contracts each cluster to a vertex and returns the
// resulting graph plus the cluster ids in index order.
func (o *Outcome) ClusterGraph(g *graph.Graph) (*graph.Graph, []int) {
	ids := o.Clusters()
	idx := make(map[int]int, len(ids))
	for i, c := range ids {
		idx[c] = i
	}
	cg := graph.New(len(ids))
	for v := 0; v < g.N(); v++ {
		for _, u := range g.Neighbors(v) {
			cv, cu := idx[o.Devices[v].Cluster], idx[o.Devices[u].Cluster]
			if cv != cu && !cg.HasEdge(cv, cu) {
				if err := cg.AddEdge(cv, cu); err != nil {
					panic(err)
				}
			}
		}
	}
	cg.SetName(fmt.Sprintf("partition-of-%s", g.Name()))
	return cg, ids
}

// Partition runs Partition(beta) on g and returns the outcome.
func Partition(g *graph.Graph, p Params, seed uint64) (*Outcome, error) {
	n := g.N()
	devs := make([]Result, n)
	pop := make([]radio.Device, n)
	for v := 0; v < n; v++ {
		pop[v].Proc = Proc(p, 1, &devs[v])
	}
	res, err := radio.RunDevices(radio.Config{Graph: g, Model: p.SR.Model, Seed: seed, Sims: p.Sims}, pop)
	if err != nil {
		return nil, err
	}
	labels := make(labeling.Labeling, n)
	for v := range labels {
		labels[v] = devs[v].Layer
	}
	return &Outcome{Result: res, Devices: devs, Labels: labels}, nil
}
