package partition

import (
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/radio"
)

// The port pin reduces the full event stream and per-device outcomes of
// fixed scenarios to digests generated from the pre-port blocking
// implementation. The ported step machines must reproduce them byte for
// byte; regenerate only with -update-pin and a reviewed diff.
var updatePin = flag.Bool("update-pin", false, "rewrite testdata/port_pin.txt from the current implementation")

func evString(ev radio.Event) string {
	kind := "?"
	switch ev.Kind {
	case radio.EventTransmit:
		kind = "tx"
	case radio.EventReceive:
		kind = "rx"
	case radio.EventSilence:
		kind = "sil"
	case radio.EventNoise:
		kind = "noise"
	}
	return fmt.Sprintf("%d %d %s %v %d", ev.Slot, ev.Dev, kind, ev.Payload, ev.From)
}

func comparePin(t *testing.T, got string) {
	t.Helper()
	path := filepath.Join("testdata", "port_pin.txt")
	if *updatePin {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing pin file (generate with -update-pin): %v", err)
	}
	if got != string(want) {
		t.Errorf("port pin diverged from the pre-port reference:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestPortPin(t *testing.T) {
	scens := []struct {
		name  string
		model radio.Model
		beta  float64
		seed  uint64
		g     *graph.Graph
	}{
		{"nocd-grid44", radio.NoCD, 0.5, 3, graph.Grid(4, 4)},
		{"cd-gnp12", radio.CD, 0.4, 7, graph.GNP(12, 0.3, 1)},
		{"local-path10", radio.Local, 0.5, 11, graph.Path(10)},
	}
	var sb strings.Builder
	for _, sc := range scens {
		p, err := NewParams(sc.model, sc.g.N(), sc.g.MaxDegree(), sc.beta)
		if err != nil {
			t.Fatal(err)
		}
		n := sc.g.N()
		devs := make([]Result, n)
		h := fnv.New64a()
		pop := make([]radio.Device, n)
		for v := 0; v < n; v++ {
			pop[v].Proc = Proc(p, 1, &devs[v])
		}
		res, err := radio.RunDevices(radio.Config{Graph: sc.g, Model: p.SR.Model, Seed: sc.seed,
			Trace: func(ev radio.Event) { fmt.Fprintln(h, evString(ev)) }}, pop)
		if err != nil {
			t.Fatalf("%s: %v", sc.name, err)
		}
		oh := fnv.New64a()
		for v, d := range devs {
			fmt.Fprintf(oh, "%d %d %d %v %d\n", v, d.Cluster, d.Layer, d.Delta, d.Start)
		}
		fmt.Fprintf(&sb, "%s events=%d trace=%016x out=%016x slots=%d maxE=%d totE=%d\n",
			sc.name, res.Events, h.Sum64(), oh.Sum64(), res.Slots, res.MaxEnergy(), res.TotalEnergy())
	}
	comparePin(t, sb.String())
}
