package workload

import (
	"fmt"

	"repro/internal/dtime"
	"repro/internal/graph"
)

// tradeoffWorkload sweeps Theorem 16's continuous time/energy dial: one
// grid point per beta (the partition rate) or eps (the paper's exponent,
// mapped to beta = log^{-1/eps} n), each trial running the Section 6
// algorithm via internal/dtime and emitting the achieved (slots, energy)
// pair. The algorithm axis is ignored; the model axis selects the
// SR-communication substrate.
type tradeoffWorkload struct{}

func (tradeoffWorkload) Name() string { return "tradeoff" }
func (tradeoffWorkload) Doc() string {
	return "Theorem 16 time/energy dial over a beta or eps grid (algorithm axis ignored)"
}

func (tradeoffWorkload) Params() []Param {
	return []Param{
		{Name: "beta", Default: "0.0625,0.125,0.25", Doc: "partition-rate grid in (0, 1/4]; mutually exclusive with eps"},
		{Name: "eps", Default: "", Doc: "eps grid in (0, 1]; beta = log^{-1/eps} n per Section 6.1"},
	}
}

type tradeoffPoint struct {
	useEps bool
	x      float64
}

func (w tradeoffWorkload) Expand(raw map[string]string) ([]Point, error) {
	if err := checkKeys(w.Name(), raw, w.Params()); err != nil {
		return nil, err
	}
	if _, hasBeta := raw["beta"]; hasBeta {
		if _, hasEps := raw["eps"]; hasEps {
			return nil, fmt.Errorf("workload tradeoff: set beta or eps, not both")
		}
	}
	if s := get(raw, "eps", ""); s != "" {
		epss, err := floatGrid(w.Name(), "eps", s)
		if err != nil {
			return nil, err
		}
		pts := make([]Point, len(epss))
		for i, eps := range epss {
			if eps <= 0 || eps > 1 {
				return nil, fmt.Errorf("workload tradeoff: eps %v outside (0, 1]", eps)
			}
			pts[i] = Point{Label: fmt.Sprintf("eps=%v", eps), Value: tradeoffPoint{useEps: true, x: eps}}
		}
		return pts, nil
	}
	betas, err := floatGrid(w.Name(), "beta", get(raw, "beta", "0.0625,0.125,0.25"))
	if err != nil {
		return nil, err
	}
	pts := make([]Point, len(betas))
	for i, beta := range betas {
		if beta <= 0 || beta > 0.25 {
			return nil, fmt.Errorf("workload tradeoff: beta %v outside (0, 1/4]", beta)
		}
		pts[i] = Point{Label: fmt.Sprintf("beta=%v", beta), Value: tradeoffPoint{x: beta}}
	}
	return pts, nil
}

// ExtraMeasures declares the beta echo CI-ineligible: it is the cell's
// constant parameter restated per trial, not a random measure.
func (tradeoffWorkload) ExtraMeasures(Point) []MeasureInfo {
	return []MeasureInfo{
		{Name: "beta", CI: false, Doc: "the cell's partition-rate parameter (constant echo)"},
	}
}

// SupportsFaults reports false: dtime.Broadcast drives its own engine
// runs without fault plumbing, so an active spec is rejected up front
// (sweep.NewRunner) and defensively per trial.
func (tradeoffWorkload) SupportsFaults() bool { return false }

func (tradeoffWorkload) Run(g *graph.Graph, pt Point, seed uint64, opt Options) (Measures, error) {
	if opt.Fault.Active() {
		return Measures{}, fmt.Errorf("workload tradeoff: fault injection is not supported")
	}
	tp := pt.Value.(tradeoffPoint)
	d, err := g.Diameter()
	if err != nil {
		return Measures{}, err
	}
	var p dtime.Params
	if tp.useEps {
		p, err = dtime.NewParams(opt.Model, g.N(), g.MaxDegree(), d, tp.x)
	} else {
		p, err = dtime.NewParamsBeta(opt.Model, g.N(), g.MaxDegree(), d, tp.x)
	}
	if err != nil {
		return Measures{}, err
	}
	if opt.Lean {
		p = p.Tune(g.N(), 10, 6, 10, 0)
	}
	p.Sims = opt.Sims
	out, err := dtime.Broadcast(g, opt.Source, "m", p, seed)
	if err != nil {
		return Measures{}, err
	}
	informed := 0
	for _, dres := range out.Devices {
		if dres.Informed {
			informed++
		}
	}
	return Measures{
		Slots:       out.Result.Slots,
		Events:      out.Result.Events,
		MaxEnergy:   out.Result.MaxEnergy(),
		TotalEnergy: out.Result.TotalEnergy(),
		Completed:   out.AllInformed(),
		Informed:    informed,
		Extra: []Sample{
			{Name: "beta", X: p.Beta},
		},
	}, nil
}
