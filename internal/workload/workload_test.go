package workload

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/radio"
)

func TestRegistryHasBuiltins(t *testing.T) {
	want := []string{"broadcast", "leader", "msrc", "tradeoff"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
	for _, name := range want {
		w, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if w.Name() != name || w.Doc() == "" {
			t.Errorf("workload %q: bad Name/Doc", name)
		}
	}
}

func TestLookupDefaultsToBroadcast(t *testing.T) {
	w, err := Lookup("")
	if err != nil {
		t.Fatal(err)
	}
	if w.Name() != "broadcast" {
		t.Errorf("default workload = %q", w.Name())
	}
}

func TestLookupUnknownListsValidNames(t *testing.T) {
	_, err := Lookup("frobnicate")
	if err == nil {
		t.Fatal("unknown workload accepted")
	}
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list %q", err, name)
		}
	}
}

func TestUnknownParamListsSchema(t *testing.T) {
	for _, name := range Names() {
		w, _ := Lookup(name)
		if _, err := w.Expand(map[string]string{"frob": "1"}); err == nil {
			t.Errorf("workload %q accepted an unknown parameter", name)
		} else if len(w.Params()) > 0 && !strings.Contains(err.Error(), w.Params()[0].Name) {
			t.Errorf("workload %q error %q does not list schema keys", name, err)
		}
	}
}

func TestBroadcastDefaultPointHasEmptyLabel(t *testing.T) {
	w, _ := Lookup("broadcast")
	pts, err := w.Expand(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 || pts[0].Label != "" {
		t.Fatalf("default broadcast points = %+v, want one unlabeled point", pts)
	}
}

func TestBroadcastRunMeasures(t *testing.T) {
	w, _ := Lookup("broadcast")
	pts, _ := w.Expand(nil)
	m, err := w.Run(graph.Path(8), pts[0], 7, Options{Model: radio.Local, Algorithm: core.AlgoAuto})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Completed || m.Slots == 0 || m.MaxEnergy == 0 || len(m.Extra) != 0 {
		t.Errorf("measures = %+v", m)
	}
	if uint64(m.MaxEnergy) > m.Slots {
		t.Errorf("energy invariant violated: maxE %d > slots %d", m.MaxEnergy, m.Slots)
	}
}

func TestBroadcastEpsGrid(t *testing.T) {
	w, _ := Lookup("broadcast")
	pts, err := w.Expand(map[string]string{"eps": "0.25,0.5"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].Label != "eps=0.25" || pts[1].Label != "eps=0.5" {
		t.Fatalf("points = %+v", pts)
	}
}

func TestMsrcGridAndFronts(t *testing.T) {
	w, _ := Lookup("msrc")
	pts, err := w.Expand(map[string]string{"k": "2,3"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].Label != "k=2" || pts[1].Label != "k=3" {
		t.Fatalf("points = %+v", pts)
	}
	m, err := w.Run(graph.Cycle(12), pts[0], 5, Options{Model: radio.Local, Algorithm: core.AlgoAuto})
	if err != nil {
		t.Fatal(err)
	}
	// k=2: front0, front1, frontMin, frontMax.
	if len(m.Extra) != 4 {
		t.Fatalf("extra columns = %+v", m.Extra)
	}
	if m.Extra[0].Name != "front0" || m.Extra[3].Name != "frontMax" {
		t.Errorf("extra columns misnamed: %+v", m.Extra)
	}
	sum := m.Extra[0].X + m.Extra[1].X
	if m.Completed && sum != 12 {
		t.Errorf("fronts of a completed 2-source broadcast sum to %v, want n=12", sum)
	}
	if _, err := w.Expand(map[string]string{"k": "0"}); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestSpreadSources(t *testing.T) {
	srcs := SpreadSources(12, 3, 0)
	want := []int{0, 4, 8}
	for i := range want {
		if srcs[i] != want[i] {
			t.Fatalf("SpreadSources(12,3,0) = %v", srcs)
		}
	}
	if got := SpreadSources(4, 9, 0); len(got) != 4 {
		t.Errorf("k must cap at n, got %v", got)
	}
	seen := map[int]bool{}
	for _, s := range SpreadSources(7, 5, 3) {
		if seen[s] {
			t.Fatalf("duplicate source in %v", SpreadSources(7, 5, 3))
		}
		seen[s] = true
	}
}

func TestLeaderElectionOnClique(t *testing.T) {
	w, _ := Lookup("leader")
	pts, err := w.Expand(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 || pts[0].Label != "proto=rand" {
		t.Fatalf("default leader points = %+v", pts)
	}
	g := graph.Clique(16)
	for _, model := range []radio.Model{radio.CD, radio.NoCD} {
		ok := 0
		for seed := uint64(1); seed <= 10; seed++ {
			m, err := w.Run(g, pts[0], seed, Options{Model: model})
			if err != nil {
				t.Fatal(err)
			}
			if m.Completed {
				ok++
				if agree := m.Extra[1]; agree.Name != "agree" || agree.X <= 0 {
					t.Errorf("model %v: agree column = %+v", model, agree)
				}
			}
			if uint64(m.MaxEnergy) > m.Slots {
				t.Errorf("model %v: energy invariant violated", model)
			}
		}
		if ok == 0 {
			t.Errorf("model %v: no successful election in 10 trials", model)
		}
	}
}

func TestLeaderDeterministicElectsHighestID(t *testing.T) {
	w, _ := Lookup("leader")
	pts, err := w.Expand(map[string]string{"proto": "det"})
	if err != nil {
		t.Fatal(err)
	}
	m, err := w.Run(graph.Clique(8), pts[0], 1, Options{Model: radio.CD})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Completed {
		t.Fatal("deterministic CD election failed on a clique")
	}
	if agree := m.Extra[1].X; agree != 1 {
		t.Errorf("agreement = %v, want 1 (all devices learn the leader)", agree)
	}
}

func TestLeaderParamValidation(t *testing.T) {
	w, _ := Lookup("leader")
	if _, err := w.Expand(map[string]string{"proto": "quantum"}); err == nil {
		t.Error("unknown proto accepted")
	}
	if _, err := w.Expand(map[string]string{"maxslots": "0"}); err == nil {
		t.Error("maxslots=0 accepted")
	}
	pts, err := w.Expand(map[string]string{"proto": "rand,det", "maxslots": "128,256"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("grid points = %d, want 4", len(pts))
	}
	seen := map[string]bool{}
	for _, pt := range pts {
		if seen[pt.Label] {
			t.Errorf("duplicate point label %q", pt.Label)
		}
		seen[pt.Label] = true
	}
}

func TestTradeoffGrid(t *testing.T) {
	w, _ := Lookup("tradeoff")
	pts, err := w.Expand(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("default beta grid = %+v", pts)
	}
	m, err := w.Run(graph.Star(12), pts[2], 3, Options{Model: radio.CD, Lean: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.Slots == 0 {
		t.Error("no slots measured")
	}
	if len(m.Extra) != 1 || m.Extra[0].Name != "beta" || m.Extra[0].X != 0.25 {
		t.Errorf("beta column = %+v", m.Extra)
	}
	if _, err := w.Expand(map[string]string{"beta": "0.5"}); err == nil {
		t.Error("beta > 1/4 accepted")
	}
	if _, err := w.Expand(map[string]string{"beta": "0.1", "eps": "0.5"}); err == nil {
		t.Error("beta and eps together accepted")
	}
	epts, err := w.Expand(map[string]string{"eps": "0.5,1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(epts) != 2 || epts[0].Label != "eps=0.5" {
		t.Fatalf("eps points = %+v", epts)
	}
}

func TestBroadcastRejectsOutOfRangeKnobs(t *testing.T) {
	w, _ := Lookup("broadcast")
	if _, err := w.Expand(map[string]string{"eps": "-0.5"}); err == nil {
		t.Error("negative eps accepted")
	}
	if _, err := w.Expand(map[string]string{"xi": "1.5"}); err == nil {
		t.Error("xi > 1 accepted")
	}
}

func TestMsrcRejectsKBeyondN(t *testing.T) {
	w, _ := Lookup("msrc")
	pts, err := w.Expand(map[string]string{"k": "9"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(graph.Path(4), pts[0], 1, Options{Model: radio.Local}); err == nil {
		t.Error("k > n accepted; the cell label would misreport the source count")
	}
}

func TestLeaderFailedTrialsEmitNoElectionColumns(t *testing.T) {
	w, _ := Lookup("leader")
	// Deterministic election under No-CD cannot work (listeners cannot
	// tell silence from collision), so the trial fails — and must not
	// contribute electSlot/agree samples that would skew aggregates.
	pts, err := w.Expand(map[string]string{"proto": "det"})
	if err != nil {
		t.Fatal(err)
	}
	m, err := w.Run(graph.Clique(8), pts[0], 1, Options{Model: radio.NoCD})
	if err != nil {
		t.Fatal(err)
	}
	if m.Completed {
		t.Skip("deterministic election unexpectedly succeeded under No-CD")
	}
	if len(m.Extra) != 0 {
		t.Errorf("failed election emitted samples: %+v", m.Extra)
	}
}

func TestCIMeasures(t *testing.T) {
	core := CoreMeasures()
	if len(core) != 4 {
		t.Fatalf("core measures: %v", core)
	}
	for _, m := range core {
		if !m.CI {
			t.Errorf("core measure %s not CI-eligible", m.Name)
		}
	}

	// broadcast: core columns only.
	bw, _ := Lookup("broadcast")
	pts, err := bw.Expand(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := CIMeasures(bw, pts[0]); len(got) != 4 {
		t.Errorf("broadcast measures: %v", got)
	}

	// msrc: per-source fronts, all eligible, sized by the point's k.
	mw, _ := Lookup("msrc")
	pts, err = mw.Expand(map[string]string{"k": "3"})
	if err != nil {
		t.Fatal(err)
	}
	got := CIMeasures(mw, pts[0])
	if len(got) != 4+3+2 {
		t.Fatalf("msrc k=3 measures: %v", got)
	}
	for _, m := range got {
		if !m.CI {
			t.Errorf("msrc measure %s should be CI-eligible", m.Name)
		}
	}

	// leader and tradeoff: extras declared but ineligible.
	for _, name := range []string{"leader", "tradeoff"} {
		w, _ := Lookup(name)
		pts, err := w.Expand(nil)
		if err != nil {
			t.Fatal(err)
		}
		ms := CIMeasures(w, pts[0])
		if len(ms) <= 4 {
			t.Fatalf("%s declared no extra measures: %v", name, ms)
		}
		for _, m := range ms[4:] {
			if m.CI {
				t.Errorf("%s extra measure %s should be CI-ineligible", name, m.Name)
			}
		}
	}
}
