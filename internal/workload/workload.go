// Package workload is the registry of pluggable measurement scenarios
// run by the sweep engine. A workload names one experiment family —
// single-source broadcast, k-source broadcast, single-hop leader
// election, the Theorem 16 time/energy tradeoff — and turns one matrix
// cell (graph x model x algorithm x parameter point) plus a trial seed
// into a Measures record.
//
// The contract mirrors the sweep engine's reproducible-seed rule: Run
// must be a pure function of its arguments (all randomness drawn from
// the trial seed through internal/rng), so aggregates stay bit-identical
// for any worker count. Parameter grids are expanded up front by Expand
// into an ordered list of Points; the point's position in that list is
// part of the matrix position the engine derives trial seeds from.
//
// Built-ins (registered at package init):
//
//   - broadcast: single-source broadcast, the engine's historical
//     behavior (byte-identical default output);
//   - msrc: k-source broadcast with per-source informed-front columns;
//   - leader: single-hop leader election (randomized CD / No-CD by
//     model, deterministic by parameter) measuring success rate,
//     election slot and energy;
//   - tradeoff: the Theorem 16 beta dial over internal/dtime, one point
//     per beta (or eps) grid value.
package workload

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/radio"
)

// Options carries the per-trial inputs shared by every workload: the
// matrix cell's model and algorithm axes plus the spec-level knobs.
type Options struct {
	Model     radio.Model
	Algorithm core.Algorithm
	// Source is the primary source vertex (workloads that place several
	// sources derive the rest deterministically).
	Source int
	// Lean applies experiment-scale protocol constants where supported.
	Lean bool
	// Sims optionally reuses a per-goroutine simulator cache
	// (radio.SimCache) across the trials a worker runs on one topology.
	// Purely an allocation optimization: measurements are identical with
	// or without it. Must not be shared between goroutines.
	Sims *radio.SimCache
	// Fault optionally injects deterministic faults into the trial's
	// engine runs (see internal/fault). An inactive spec changes nothing;
	// an active one makes broadcast-family workloads emit the
	// graceful-degradation columns of FaultMeasures. Workloads that
	// cannot thread the spec reject active faults (see SupportsFaults).
	Fault fault.Spec
}

// Sample is one named scalar column of a trial's measurement.
type Sample struct {
	Name string
	X    float64
}

// Measures is the outcome of one seeded trial. The four core columns are
// shared by every workload; Extra carries workload-specific columns,
// whose names must be identical for every trial of the same Point.
type Measures struct {
	Slots       uint64
	Events      uint64
	MaxEnergy   int
	TotalEnergy int
	// Completed is the workload's own success criterion (all informed,
	// leader agreed, ...).
	Completed bool
	// Informed counts the devices holding the workload's payload at the
	// end of the trial (broadcast-family workloads), or the devices
	// agreeing on the outcome (leader election; 0 on a failed election).
	// It is the per-trial progress column of the sweep engine's raw
	// export.
	Informed int
	Extra    []Sample
	// FaultCrashes/FaultSleeps/FaultErasures count the faults the engine
	// injected during the trial (internal/fault); all zero when
	// Options.Fault is inactive. They are counters for telemetry and the
	// run manifest, not measure columns.
	FaultCrashes  int
	FaultSleeps   int
	FaultErasures int
}

// MeasureInfo describes one measure column to adaptive controllers
// (internal/experiment): its name and whether sequential CI-width
// stopping may target it.
type MeasureInfo struct {
	// Name is the column name (a core column or an Extra sample name).
	Name string
	// CI reports whether the column is a sound target for sequential
	// confidence-interval stopping: present on every successful trial of
	// the point, so the column's sample count tracks the cell's trial
	// count. Conditional columns (leader's election measures, present
	// only when an election succeeds) and constant parameter echoes
	// (tradeoff's beta) are ineligible.
	CI bool
	// Doc is a one-line description.
	Doc string
}

// CoreMeasures lists the four columns every workload reports, all
// CI-eligible.
func CoreMeasures() []MeasureInfo {
	return []MeasureInfo{
		{Name: "slots", CI: true, Doc: "largest slot any device acted in"},
		{Name: "maxEnergy", CI: true, Doc: "max per-device awake slots (the paper's energy)"},
		{Name: "totalEnergy", CI: true, Doc: "summed awake slots over all devices"},
		{Name: "events", CI: true, Doc: "simulator actions processed"},
	}
}

// ExtraMeasurer is the optional interface a workload implements to
// declare the CI eligibility of its Extra columns at a given point.
// Workloads without it contribute no extra columns to CIMeasures.
type ExtraMeasurer interface {
	ExtraMeasures(pt Point) []MeasureInfo
}

// CIMeasures returns the measure columns of w at pt: the four core
// columns first, then the workload's declared extras in column order.
func CIMeasures(w Workload, pt Point) []MeasureInfo {
	out := CoreMeasures()
	if em, ok := w.(ExtraMeasurer); ok {
		out = append(out, em.ExtraMeasures(pt)...)
	}
	return out
}

// FaultMeasures lists the graceful-degradation columns the
// broadcast-family workloads append to every trial when Options.Fault is
// active, all CI-eligible (present on every successful trial), so
// adaptive stopping can target e.g. the success rate of a faulted cell.
func FaultMeasures() []MeasureInfo {
	return []MeasureInfo{
		{Name: "success", CI: true, Doc: "1 when the trial completed under faults, else 0"},
		{Name: "informedFrac", CI: true, Doc: "fraction of devices informed at the end"},
		{Name: "energyOverhead", CI: true, Doc: "total energy minus the same-seed fault-free twin's"},
		{Name: "wastedAwake", CI: true, Doc: "awake listen slots whose delivery a lossy slot erased"},
	}
}

// FaultExtraMeasurer is the optional interface a workload implements to
// declare the extra columns it appends when Options.Fault is active.
type FaultExtraMeasurer interface {
	FaultExtraMeasures(pt Point) []MeasureInfo
}

// CIMeasuresWith returns the measure columns of w at pt for a cell whose
// fault spec is fs: CIMeasures, then the workload's declared fault
// columns when fs is active. With an inactive spec it is exactly
// CIMeasures — fault-free cells gain no columns.
func CIMeasuresWith(w Workload, pt Point, fs fault.Spec) []MeasureInfo {
	out := CIMeasures(w, pt)
	if fs.Active() {
		if fm, ok := w.(FaultExtraMeasurer); ok {
			out = append(out, fm.FaultExtraMeasures(pt)...)
		}
	}
	return out
}

// SupportsFaults reports whether w can thread Options.Fault into its
// engine runs. Workloads that cannot (their simulations are driven by a
// subsystem without fault plumbing) declare it via the optional
// interface{ SupportsFaults() bool }; absent that, support is assumed.
func SupportsFaults(w Workload) bool {
	if fs, ok := w.(interface{ SupportsFaults() bool }); ok {
		return fs.SupportsFaults()
	}
	return true
}

// Param describes one entry of a workload's parameter schema.
type Param struct {
	// Name is the key accepted by Expand.
	Name string
	// Default is the value used when the key is absent ("" = unset).
	Default string
	// Doc is a one-line description shown by CLI help and examples.
	Doc string
}

// Point is one concrete parameter setting from an expanded grid.
type Point struct {
	// Label renders the setting for reports, e.g. "beta=0.125". The
	// default point of a parameterless expansion has an empty label.
	Label string
	// Value is the owning workload's parsed parameter set; only the
	// workload that produced the point reads it.
	Value any
}

// Workload is one pluggable scenario.
type Workload interface {
	// Name is the registry key.
	Name() string
	// Doc is a one-line description.
	Doc() string
	// Params lists the parameter schema.
	Params() []Param
	// Expand validates raw key=value parameters against the schema and
	// expands grid values (comma-separated lists) into concrete points,
	// in a deterministic order. A nil or empty map yields the single
	// default point.
	Expand(raw map[string]string) ([]Point, error)
	// Run executes one seeded trial on g at the given point.
	Run(g *graph.Graph, pt Point, seed uint64, opt Options) (Measures, error)
}

// BatchRunner is the optional interface a workload implements to run
// several consecutive trials of one cell in lockstep on a shared batch
// engine (radio.BatchSimulator). The contract is strict positional
// equivalence: entry i of both slices must equal what
// Run(g, pt, seeds[i], opt) returns — measures and error string alike —
// so the sweep engine may batch at any width without perturbing
// aggregates, raw rows, or checkpoint replay. Workload-level failures
// that precede the simulation (bad parameters, graph mismatches) are
// seed-independent and appear fanned out as identical per-trial errors.
type BatchRunner interface {
	RunBatch(g *graph.Graph, pt Point, seeds []uint64, opt Options) ([]Measures, []error)
}

var registry = map[string]Workload{}

// Register adds a workload to the registry. It panics on duplicate or
// empty names — registration is an init-time wiring error, not a runtime
// condition.
func Register(w Workload) {
	name := w.Name()
	if name == "" {
		panic("workload: empty name")
	}
	if _, dup := registry[name]; dup {
		panic("workload: duplicate registration of " + name)
	}
	registry[name] = w
}

// Names lists the registered workloads in sorted order.
func Names() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Lookup resolves a workload by name ("" means the default, broadcast).
// The error lists the valid names.
func Lookup(name string) (Workload, error) {
	if name == "" {
		name = "broadcast"
	}
	w, ok := registry[strings.ToLower(strings.TrimSpace(name))]
	if !ok {
		return nil, fmt.Errorf("workload: unknown workload %q (valid: %s)",
			name, strings.Join(Names(), ", "))
	}
	return w, nil
}

// checkKeys rejects parameters outside the schema, listing the valid
// keys in the error.
func checkKeys(name string, raw map[string]string, schema []Param) error {
	for key := range raw {
		ok := false
		for _, p := range schema {
			if key == p.Name {
				ok = true
				break
			}
		}
		if !ok {
			valid := make([]string, len(schema))
			for i, p := range schema {
				valid[i] = p.Name
			}
			sort.Strings(valid)
			return fmt.Errorf("workload %s: unknown parameter %q (valid: %s)",
				name, key, strings.Join(valid, ", "))
		}
	}
	return nil
}

// get returns raw[key] or the schema default.
func get(raw map[string]string, key, def string) string {
	if v, ok := raw[key]; ok {
		return v
	}
	return def
}

// floatGrid parses a comma-separated list of floats.
func floatGrid(name, key, s string) ([]float64, error) {
	var out []float64
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		x, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			return nil, fmt.Errorf("workload %s: bad %s value %q", name, key, tok)
		}
		out = append(out, x)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("workload %s: empty %s list %q", name, key, s)
	}
	return out, nil
}

// intGrid parses a comma-separated list of ints.
func intGrid(name, key, s string) ([]int, error) {
	var out []int
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		x, err := strconv.Atoi(tok)
		if err != nil {
			return nil, fmt.Errorf("workload %s: bad %s value %q", name, key, tok)
		}
		out = append(out, x)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("workload %s: empty %s list %q", name, key, s)
	}
	return out, nil
}

func init() {
	Register(broadcastWorkload{})
	Register(msrcWorkload{})
	Register(leaderWorkload{})
	Register(tradeoffWorkload{})
}
