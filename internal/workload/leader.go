package workload

import (
	"fmt"
	"strings"

	"repro/internal/graph"
	"repro/internal/leader"
	"repro/internal/radio"
)

// leaderWorkload measures single-hop leader election over
// internal/leader. The protocol follows the matrix's model axis:
// randomized election uses ElectCD under CD/CD*/LOCAL and ElectNoCD
// (with trace-based success detection, per the paper's external
// termination condition) under No-CD; proto=det forces the
// deterministic binary-search election. The algorithm axis is ignored.
//
// The election protocols are single-hop constructions: on a clique every
// device shares one channel and the success rate matches the paper's
// analysis; on multi-hop topologies the measured success rate shows how
// the schedule degrades, which is the point of sweeping it.
type leaderWorkload struct{}

func (leaderWorkload) Name() string { return "leader" }
func (leaderWorkload) Doc() string {
	return "single-hop leader election; measures success rate, election slot, agreement and energy (algorithm axis ignored)"
}

func (leaderWorkload) Params() []Param {
	return []Param{
		{Name: "proto", Default: "rand", Doc: "election family: rand (model-matched randomized) or det (deterministic CD); grid"},
		{Name: "maxslots", Default: "512", Doc: "attempt bound of the randomized CD election (grid)"},
		{Name: "reps", Default: "8", Doc: "per-exponent repetitions of the No-CD schedule (grid)"},
	}
}

type leaderPoint struct {
	proto    string
	maxSlots int
	reps     int
}

func (w leaderWorkload) Expand(raw map[string]string) ([]Point, error) {
	if err := checkKeys(w.Name(), raw, w.Params()); err != nil {
		return nil, err
	}
	var protos []string
	for _, tok := range strings.Split(get(raw, "proto", "rand"), ",") {
		tok = strings.ToLower(strings.TrimSpace(tok))
		switch tok {
		case "rand", "det":
			protos = append(protos, tok)
		case "":
		default:
			return nil, fmt.Errorf("workload leader: unknown proto %q (valid: rand, det)", tok)
		}
	}
	if len(protos) == 0 {
		return nil, fmt.Errorf("workload leader: empty proto list")
	}
	maxSlots, err := intGrid(w.Name(), "maxslots", get(raw, "maxslots", "512"))
	if err != nil {
		return nil, err
	}
	reps, err := intGrid(w.Name(), "reps", get(raw, "reps", "8"))
	if err != nil {
		return nil, err
	}
	_, gridSlots := raw["maxslots"]
	_, gridReps := raw["reps"]
	var pts []Point
	for _, proto := range protos {
		for _, ms := range maxSlots {
			if ms < 1 {
				return nil, fmt.Errorf("workload leader: maxslots must be >= 1, got %d", ms)
			}
			for _, rp := range reps {
				if rp < 1 {
					return nil, fmt.Errorf("workload leader: reps must be >= 1, got %d", rp)
				}
				label := "proto=" + proto
				if gridSlots {
					label += fmt.Sprintf(",maxslots=%d", ms)
				}
				if gridReps {
					label += fmt.Sprintf(",reps=%d", rp)
				}
				pts = append(pts, Point{Label: label, Value: leaderPoint{proto: proto, maxSlots: ms, reps: rp}})
			}
		}
	}
	return pts, nil
}

// ExtraMeasures declares the election columns CI-ineligible: both are
// emitted only when an election succeeds, so their sample counts track
// the success count, not the cell's trial count — a sequential CI rule
// keyed to trials would mis-size their intervals.
func (leaderWorkload) ExtraMeasures(Point) []MeasureInfo {
	return []MeasureInfo{
		{Name: "electSlot", CI: false, Doc: "slot of the successful election (successes only)"},
		{Name: "agree", CI: false, Doc: "fraction agreeing on the winner (successes only)"},
	}
}

func (leaderWorkload) Run(g *graph.Graph, pt Point, seed uint64, opt Options) (Measures, error) {
	lp := pt.Value.(leaderPoint)
	n := g.N()
	outs := make([]leader.Outcome, n)
	pop := make([]radio.Device, n)
	cfg := radio.Config{Graph: g, Model: opt.Model, Seed: seed, Sims: opt.Sims, Fault: opt.Fault}

	noCD := lp.proto == "rand" && opt.Model == radio.NoCD
	var txPerSlot []int // No-CD: transmitter count per slot, for external success detection
	var txDev []int     // No-CD: last transmitter seen per slot
	switch {
	case lp.proto == "det":
		cfg.IDSpace = n
		for v := 0; v < n; v++ {
			pop[v].Proc = leader.DetElectCDProc(1, true, &outs[v])
		}
	case noCD:
		slots := leader.NoCDSlots(n, lp.reps) + 2
		txPerSlot = make([]int, slots)
		txDev = make([]int, slots)
		cfg.Trace = func(ev radio.Event) {
			if ev.Kind == radio.EventTransmit && uint64(len(txPerSlot)) > ev.Slot {
				txPerSlot[ev.Slot]++
				txDev[ev.Slot] = ev.Dev
			}
		}
		for v := 0; v < n; v++ {
			pop[v].Proc = leader.ElectNoCDProc(1, true, n, lp.reps, &outs[v])
		}
	default:
		for v := 0; v < n; v++ {
			pop[v].Proc = leader.ElectCDProc(1, true, n, lp.maxSlots, &outs[v])
		}
	}

	res, err := radio.RunDevices(cfg, pop)
	if err != nil {
		return Measures{}, err
	}

	// Judge the election: a unique self-declared winner for the CD and
	// deterministic protocols, the first unique-transmitter slot for
	// No-CD (the paper's "a message is successfully sent" condition).
	winner, electSlot := -1, 0.0
	if noCD {
		for s, c := range txPerSlot {
			if c == 1 {
				winner, electSlot = txDev[s], float64(s)
				break
			}
		}
	} else {
		for v := range outs {
			if outs[v].IsLeader {
				if winner >= 0 { // two self-declared leaders: failed election
					winner = -1
					break
				}
				winner, electSlot = v, float64(outs[v].Slot)
			}
		}
	}
	m := Measures{
		Slots:         res.Slots,
		Events:        res.Events,
		MaxEnergy:     res.MaxEnergy(),
		TotalEnergy:   res.TotalEnergy(),
		Completed:     winner >= 0,
		FaultCrashes:  res.FaultCrashes,
		FaultSleeps:   res.FaultSleeps,
		FaultErasures: res.FaultErasures,
	}
	// electSlot/agree are properties of a successful election; failed
	// trials contribute no samples so the aggregates describe the
	// elections that happened (Completed already counts the failures).
	if winner >= 0 {
		agree := 0
		for v := range outs {
			if v == winner || outs[v].Leader == winner {
				agree++
			}
		}
		m.Extra = []Sample{
			{Name: "electSlot", X: electSlot},
			{Name: "agree", X: float64(agree) / float64(n)},
		}
		m.Informed = agree
	}
	return m, nil
}
