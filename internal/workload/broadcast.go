package workload

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
)

// broadcastWorkload is the engine's historical scenario: one seeded
// single-source core.Broadcast per trial. Its default point reproduces
// the pre-workload sweep output byte for byte.
type broadcastWorkload struct{}

func (broadcastWorkload) Name() string { return "broadcast" }
func (broadcastWorkload) Doc() string {
	return "single-source broadcast; measures slots, energy and completion"
}

func (broadcastWorkload) Params() []Param {
	return []Param{
		{Name: "eps", Default: "", Doc: "Theorem 12/16 eps knob (grid; unset = algorithm default)"},
		{Name: "xi", Default: "", Doc: "Theorem 20 xi knob (grid; unset = algorithm default)"},
	}
}

// broadcastPoint is the parsed parameter set: negative means unset.
type broadcastPoint struct {
	eps, xi float64
}

func (w broadcastWorkload) Expand(raw map[string]string) ([]Point, error) {
	if err := checkKeys(w.Name(), raw, w.Params()); err != nil {
		return nil, err
	}
	epss, xis := []float64{-1}, []float64{-1}
	var err error
	if s := get(raw, "eps", ""); s != "" {
		if epss, err = floatGrid(w.Name(), "eps", s); err != nil {
			return nil, err
		}
		for _, eps := range epss {
			if eps <= 0 || eps > 1 {
				return nil, fmt.Errorf("workload broadcast: eps %v outside (0, 1]", eps)
			}
		}
	}
	if s := get(raw, "xi", ""); s != "" {
		if xis, err = floatGrid(w.Name(), "xi", s); err != nil {
			return nil, err
		}
		for _, xi := range xis {
			if xi <= 0 || xi > 1 {
				return nil, fmt.Errorf("workload broadcast: xi %v outside (0, 1]", xi)
			}
		}
	}
	var pts []Point
	for _, eps := range epss {
		for _, xi := range xis {
			label := ""
			switch {
			case eps >= 0 && xi >= 0:
				label = fmt.Sprintf("eps=%v,xi=%v", eps, xi)
			case eps >= 0:
				label = fmt.Sprintf("eps=%v", eps)
			case xi >= 0:
				label = fmt.Sprintf("xi=%v", xi)
			}
			pts = append(pts, Point{Label: label, Value: broadcastPoint{eps: eps, xi: xi}})
		}
	}
	return pts, nil
}

func (broadcastWorkload) Run(g *graph.Graph, pt Point, seed uint64, opt Options) (Measures, error) {
	bp := pt.Value.(broadcastPoint)
	opts := []core.Option{
		core.WithModel(opt.Model),
		core.WithAlgorithm(opt.Algorithm),
		core.WithSeed(seed),
		core.WithSimCache(opt.Sims),
	}
	if opt.Lean {
		opts = append(opts, core.WithLeanScale())
	}
	if bp.eps >= 0 {
		opts = append(opts, core.WithEpsilon(bp.eps))
	}
	if bp.xi >= 0 {
		opts = append(opts, core.WithXi(bp.xi))
	}
	res, err := core.Broadcast(g, opt.Source, opts...)
	if err != nil {
		return Measures{}, err
	}
	return Measures{
		Slots:       res.Slots,
		Events:      res.Events,
		MaxEnergy:   res.MaxEnergy(),
		TotalEnergy: res.TotalEnergy(),
		Completed:   res.AllInformed(),
		Informed:    countInformed(res.Informed),
	}, nil
}

// RunBatch implements BatchRunner: one core.BroadcastBatch call covers
// all seeds, sharing the plan work (diameter, protocol constants) and
// the lockstep batch engine across the chunk.
func (broadcastWorkload) RunBatch(g *graph.Graph, pt Point, seeds []uint64, opt Options) ([]Measures, []error) {
	bp := pt.Value.(broadcastPoint)
	opts := []core.Option{
		core.WithModel(opt.Model),
		core.WithAlgorithm(opt.Algorithm),
		core.WithSimCache(opt.Sims),
	}
	if opt.Lean {
		opts = append(opts, core.WithLeanScale())
	}
	if bp.eps >= 0 {
		opts = append(opts, core.WithEpsilon(bp.eps))
	}
	if bp.xi >= 0 {
		opts = append(opts, core.WithXi(bp.xi))
	}
	ress, errs, err := core.BroadcastBatch(g, opt.Source, seeds, opts...)
	if err != nil {
		// Whole-batch failures are seed-independent validation or plan
		// errors: every solo trial would report the same error.
		return fanError(len(seeds), err)
	}
	ms := make([]Measures, len(seeds))
	for i, res := range ress {
		if errs[i] != nil {
			continue
		}
		ms[i] = Measures{
			Slots:       res.Slots,
			Events:      res.Events,
			MaxEnergy:   res.MaxEnergy(),
			TotalEnergy: res.TotalEnergy(),
			Completed:   res.AllInformed(),
			Informed:    countInformed(res.Informed),
		}
	}
	return ms, errs
}

// fanError reports one seed-independent error for every trial of a
// batch, preserving the exact error string a solo Run would produce.
func fanError(w int, err error) ([]Measures, []error) {
	errs := make([]error, w)
	for i := range errs {
		errs[i] = err
	}
	return make([]Measures, w), errs
}

// countInformed counts the true entries of an informed vector.
func countInformed(informed []bool) int {
	n := 0
	for _, ok := range informed {
		if ok {
			n++
		}
	}
	return n
}

// msrcWorkload is k-source broadcast: k copies of the message race
// through the network and each trial reports the per-source informed
// fronts alongside the usual time/energy columns.
type msrcWorkload struct{}

func (msrcWorkload) Name() string { return "msrc" }
func (msrcWorkload) Doc() string {
	return "k-source broadcast; adds per-source informed-front columns"
}

func (msrcWorkload) Params() []Param {
	return []Param{
		{Name: "k", Default: "2", Doc: "number of sources (grid), placed at evenly spaced vertex ids"},
	}
}

type msrcPoint struct{ k int }

func (w msrcWorkload) Expand(raw map[string]string) ([]Point, error) {
	if err := checkKeys(w.Name(), raw, w.Params()); err != nil {
		return nil, err
	}
	ks, err := intGrid(w.Name(), "k", get(raw, "k", "2"))
	if err != nil {
		return nil, err
	}
	pts := make([]Point, len(ks))
	for i, k := range ks {
		if k < 1 {
			return nil, fmt.Errorf("workload msrc: k must be >= 1, got %d", k)
		}
		pts[i] = Point{Label: fmt.Sprintf("k=%d", k), Value: msrcPoint{k: k}}
	}
	return pts, nil
}

// ExtraMeasures declares the per-source front columns: one per source
// plus the min/max envelope, all present on every successful trial and
// therefore CI-eligible.
func (msrcWorkload) ExtraMeasures(pt Point) []MeasureInfo {
	mp := pt.Value.(msrcPoint)
	out := make([]MeasureInfo, 0, mp.k+2)
	for i := 0; i < mp.k; i++ {
		out = append(out, MeasureInfo{Name: fmt.Sprintf("front%d", i), CI: true,
			Doc: "vertices informed by source " + fmt.Sprint(i)})
	}
	out = append(out,
		MeasureInfo{Name: "frontMin", CI: true, Doc: "smallest per-source front"},
		MeasureInfo{Name: "frontMax", CI: true, Doc: "largest per-source front"})
	return out
}

// SpreadSources places k sources at evenly spaced vertex ids starting
// from `source`, wrapping modulo n. Deterministic in its inputs; k is
// capped at n.
func SpreadSources(n, k, source int) []int {
	if k > n {
		k = n
	}
	srcs := make([]int, k)
	for i := range srcs {
		srcs[i] = (source + i*n/k) % n
	}
	return srcs
}

func (msrcWorkload) Run(g *graph.Graph, pt Point, seed uint64, opt Options) (Measures, error) {
	mp := pt.Value.(msrcPoint)
	// Rejecting (rather than capping) k > n keeps the cell's "k=..."
	// label honest: the mismatch surfaces as per-trial errors in the
	// report instead of a smaller experiment wearing the wrong label.
	if mp.k > g.N() {
		return Measures{}, fmt.Errorf("workload msrc: k=%d exceeds n=%d of %s", mp.k, g.N(), g.Name())
	}
	srcs := SpreadSources(g.N(), mp.k, opt.Source)
	opts := []core.Option{
		core.WithModel(opt.Model),
		core.WithAlgorithm(opt.Algorithm),
		core.WithSeed(seed),
		core.WithSources(srcs...),
		core.WithSimCache(opt.Sims),
	}
	if opt.Lean {
		opts = append(opts, core.WithLeanScale())
	}
	res, err := core.Broadcast(g, srcs[0], opts...)
	if err != nil {
		return Measures{}, err
	}
	return msrcMeasures(g, res), nil
}

// RunBatch implements BatchRunner for the k-source workload.
func (msrcWorkload) RunBatch(g *graph.Graph, pt Point, seeds []uint64, opt Options) ([]Measures, []error) {
	mp := pt.Value.(msrcPoint)
	if mp.k > g.N() {
		return fanError(len(seeds),
			fmt.Errorf("workload msrc: k=%d exceeds n=%d of %s", mp.k, g.N(), g.Name()))
	}
	srcs := SpreadSources(g.N(), mp.k, opt.Source)
	opts := []core.Option{
		core.WithModel(opt.Model),
		core.WithAlgorithm(opt.Algorithm),
		core.WithSources(srcs...),
		core.WithSimCache(opt.Sims),
	}
	if opt.Lean {
		opts = append(opts, core.WithLeanScale())
	}
	ress, errs, err := core.BroadcastBatch(g, srcs[0], seeds, opts...)
	if err != nil {
		return fanError(len(seeds), err)
	}
	ms := make([]Measures, len(seeds))
	for i, res := range ress {
		if errs[i] != nil {
			continue
		}
		ms[i] = msrcMeasures(g, res)
	}
	return ms, errs
}

// msrcMeasures maps one k-source result to its measurement row,
// including the per-source front columns.
func msrcMeasures(g *graph.Graph, res *core.Result) Measures {
	fronts := res.Fronts()
	min, max := g.N(), 0
	extra := make([]Sample, 0, len(fronts)+2)
	for i, f := range fronts {
		if f < min {
			min = f
		}
		if f > max {
			max = f
		}
		extra = append(extra, Sample{Name: fmt.Sprintf("front%d", i), X: float64(f)})
	}
	extra = append(extra,
		Sample{Name: "frontMin", X: float64(min)},
		Sample{Name: "frontMax", X: float64(max)})
	return Measures{
		Slots:       res.Slots,
		Events:      res.Events,
		MaxEnergy:   res.MaxEnergy(),
		TotalEnergy: res.TotalEnergy(),
		Completed:   res.AllInformed(),
		Informed:    countInformed(res.Informed),
		Extra:       extra,
	}
}
