package workload

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
)

// broadcastWorkload is the engine's historical scenario: one seeded
// single-source core.Broadcast per trial. Its default point reproduces
// the pre-workload sweep output byte for byte.
type broadcastWorkload struct{}

func (broadcastWorkload) Name() string { return "broadcast" }
func (broadcastWorkload) Doc() string {
	return "single-source broadcast; measures slots, energy and completion"
}

func (broadcastWorkload) Params() []Param {
	return []Param{
		{Name: "eps", Default: "", Doc: "Theorem 12/16 eps knob (grid; unset = algorithm default)"},
		{Name: "xi", Default: "", Doc: "Theorem 20 xi knob (grid; unset = algorithm default)"},
	}
}

// broadcastPoint is the parsed parameter set: negative means unset.
type broadcastPoint struct {
	eps, xi float64
}

func (w broadcastWorkload) Expand(raw map[string]string) ([]Point, error) {
	if err := checkKeys(w.Name(), raw, w.Params()); err != nil {
		return nil, err
	}
	epss, xis := []float64{-1}, []float64{-1}
	var err error
	if s := get(raw, "eps", ""); s != "" {
		if epss, err = floatGrid(w.Name(), "eps", s); err != nil {
			return nil, err
		}
		for _, eps := range epss {
			if eps <= 0 || eps > 1 {
				return nil, fmt.Errorf("workload broadcast: eps %v outside (0, 1]", eps)
			}
		}
	}
	if s := get(raw, "xi", ""); s != "" {
		if xis, err = floatGrid(w.Name(), "xi", s); err != nil {
			return nil, err
		}
		for _, xi := range xis {
			if xi <= 0 || xi > 1 {
				return nil, fmt.Errorf("workload broadcast: xi %v outside (0, 1]", xi)
			}
		}
	}
	var pts []Point
	for _, eps := range epss {
		for _, xi := range xis {
			label := ""
			switch {
			case eps >= 0 && xi >= 0:
				label = fmt.Sprintf("eps=%v,xi=%v", eps, xi)
			case eps >= 0:
				label = fmt.Sprintf("eps=%v", eps)
			case xi >= 0:
				label = fmt.Sprintf("xi=%v", xi)
			}
			pts = append(pts, Point{Label: label, Value: broadcastPoint{eps: eps, xi: xi}})
		}
	}
	return pts, nil
}

// FaultExtraMeasures declares the graceful-degradation columns appended
// when the cell injects faults.
func (broadcastWorkload) FaultExtraMeasures(Point) []MeasureInfo { return FaultMeasures() }

// broadcastOptions builds the seed-independent option list of one
// broadcast point.
func broadcastOptions(bp broadcastPoint, opt Options) []core.Option {
	opts := []core.Option{
		core.WithModel(opt.Model),
		core.WithAlgorithm(opt.Algorithm),
		core.WithSimCache(opt.Sims),
	}
	if opt.Lean {
		opts = append(opts, core.WithLeanScale())
	}
	if bp.eps >= 0 {
		opts = append(opts, core.WithEpsilon(bp.eps))
	}
	if bp.xi >= 0 {
		opts = append(opts, core.WithXi(bp.xi))
	}
	return opts
}

// broadcastMeasures maps one result to the workload's measurement row.
func broadcastMeasures(res *core.Result) Measures {
	return Measures{
		Slots:         res.Slots,
		Events:        res.Events,
		MaxEnergy:     res.MaxEnergy(),
		TotalEnergy:   res.TotalEnergy(),
		Completed:     res.AllInformed(),
		Informed:      countInformed(res.Informed),
		FaultCrashes:  res.FaultCrashes,
		FaultSleeps:   res.FaultSleeps,
		FaultErasures: res.FaultErasures,
	}
}

func (broadcastWorkload) Run(g *graph.Graph, pt Point, seed uint64, opt Options) (Measures, error) {
	opts := append(broadcastOptions(pt.Value.(broadcastPoint), opt), core.WithSeed(seed))
	if !opt.Fault.Active() {
		res, err := core.Broadcast(g, opt.Source, opts...)
		if err != nil {
			return Measures{}, err
		}
		return broadcastMeasures(res), nil
	}
	res, err := core.Broadcast(g, opt.Source, append(opts, core.WithFault(opt.Fault))...)
	if err != nil {
		return Measures{}, err
	}
	twin, err := core.Broadcast(g, opt.Source, opts...)
	if err != nil {
		return Measures{}, twinErr(err)
	}
	m := broadcastMeasures(res)
	m.Extra = faultExtras(g.N(), res, twin)
	return m, nil
}

// RunBatch implements BatchRunner: one core.BroadcastBatch call covers
// all seeds, sharing the plan work (diameter, protocol constants) and
// the lockstep batch engine across the chunk. With an active fault spec
// a second, fault-free batch over the same seeds supplies the
// energy-overhead twins, keeping batch rows bit-identical to solo runs.
func (broadcastWorkload) RunBatch(g *graph.Graph, pt Point, seeds []uint64, opt Options) ([]Measures, []error) {
	opts := broadcastOptions(pt.Value.(broadcastPoint), opt)
	ress, errs, err := core.BroadcastBatch(g, opt.Source, seeds, append(opts, core.WithFault(opt.Fault))...)
	if err != nil {
		// Whole-batch failures are seed-independent validation or plan
		// errors: every solo trial would report the same error.
		return fanError(len(seeds), err)
	}
	var twins []*core.Result
	if opt.Fault.Active() {
		var terrs []error
		var terr error
		twins, terrs, terr = core.BroadcastBatch(g, opt.Source, seeds, opts...)
		if terr != nil {
			return fanError(len(seeds), twinErr(terr))
		}
		for i, e := range terrs {
			if errs[i] == nil && e != nil {
				errs[i] = twinErr(e)
			}
		}
	}
	ms := make([]Measures, len(seeds))
	for i, res := range ress {
		if errs[i] != nil {
			continue
		}
		ms[i] = broadcastMeasures(res)
		if twins != nil {
			ms[i].Extra = faultExtras(g.N(), res, twins[i])
		}
	}
	return ms, errs
}

// faultExtras computes the graceful-degradation columns of a faulted
// trial from its result and its same-seed fault-free twin. The overhead
// column is signed: crash faults can finish cheaper than the twin.
func faultExtras(n int, res, twin *core.Result) []Sample {
	success := 0.0
	if res.AllInformed() {
		success = 1
	}
	return []Sample{
		{Name: "success", X: success},
		{Name: "informedFrac", X: float64(countInformed(res.Informed)) / float64(n)},
		{Name: "energyOverhead", X: float64(res.TotalEnergy() - twin.TotalEnergy())},
		{Name: "wastedAwake", X: float64(res.FaultErasures)},
	}
}

// twinErr labels a fault-free twin run's failure, keeping solo and batch
// error strings identical.
func twinErr(err error) error {
	return fmt.Errorf("workload: fault-free twin: %w", err)
}

// fanError reports one seed-independent error for every trial of a
// batch, preserving the exact error string a solo Run would produce.
func fanError(w int, err error) ([]Measures, []error) {
	errs := make([]error, w)
	for i := range errs {
		errs[i] = err
	}
	return make([]Measures, w), errs
}

// countInformed counts the true entries of an informed vector.
func countInformed(informed []bool) int {
	n := 0
	for _, ok := range informed {
		if ok {
			n++
		}
	}
	return n
}

// msrcWorkload is k-source broadcast: k copies of the message race
// through the network and each trial reports the per-source informed
// fronts alongside the usual time/energy columns.
type msrcWorkload struct{}

func (msrcWorkload) Name() string { return "msrc" }
func (msrcWorkload) Doc() string {
	return "k-source broadcast; adds per-source informed-front columns"
}

func (msrcWorkload) Params() []Param {
	return []Param{
		{Name: "k", Default: "2", Doc: "number of sources (grid), placed at evenly spaced vertex ids"},
	}
}

type msrcPoint struct{ k int }

func (w msrcWorkload) Expand(raw map[string]string) ([]Point, error) {
	if err := checkKeys(w.Name(), raw, w.Params()); err != nil {
		return nil, err
	}
	ks, err := intGrid(w.Name(), "k", get(raw, "k", "2"))
	if err != nil {
		return nil, err
	}
	pts := make([]Point, len(ks))
	for i, k := range ks {
		if k < 1 {
			return nil, fmt.Errorf("workload msrc: k must be >= 1, got %d", k)
		}
		pts[i] = Point{Label: fmt.Sprintf("k=%d", k), Value: msrcPoint{k: k}}
	}
	return pts, nil
}

// ExtraMeasures declares the per-source front columns: one per source
// plus the min/max envelope, all present on every successful trial and
// therefore CI-eligible.
func (msrcWorkload) ExtraMeasures(pt Point) []MeasureInfo {
	mp := pt.Value.(msrcPoint)
	out := make([]MeasureInfo, 0, mp.k+2)
	for i := 0; i < mp.k; i++ {
		out = append(out, MeasureInfo{Name: fmt.Sprintf("front%d", i), CI: true,
			Doc: "vertices informed by source " + fmt.Sprint(i)})
	}
	out = append(out,
		MeasureInfo{Name: "frontMin", CI: true, Doc: "smallest per-source front"},
		MeasureInfo{Name: "frontMax", CI: true, Doc: "largest per-source front"})
	return out
}

// SpreadSources places k sources at evenly spaced vertex ids starting
// from `source`, wrapping modulo n. Deterministic in its inputs; k is
// capped at n.
func SpreadSources(n, k, source int) []int {
	if k > n {
		k = n
	}
	srcs := make([]int, k)
	for i := range srcs {
		srcs[i] = (source + i*n/k) % n
	}
	return srcs
}

// FaultExtraMeasures declares the graceful-degradation columns appended
// (after the front columns) when the cell injects faults.
func (msrcWorkload) FaultExtraMeasures(Point) []MeasureInfo { return FaultMeasures() }

// msrcOptions builds the seed-independent option list of one k-source
// point.
func msrcOptions(srcs []int, opt Options) []core.Option {
	opts := []core.Option{
		core.WithModel(opt.Model),
		core.WithAlgorithm(opt.Algorithm),
		core.WithSources(srcs...),
		core.WithSimCache(opt.Sims),
	}
	if opt.Lean {
		opts = append(opts, core.WithLeanScale())
	}
	return opts
}

func (msrcWorkload) Run(g *graph.Graph, pt Point, seed uint64, opt Options) (Measures, error) {
	mp := pt.Value.(msrcPoint)
	// Rejecting (rather than capping) k > n keeps the cell's "k=..."
	// label honest: the mismatch surfaces as per-trial errors in the
	// report instead of a smaller experiment wearing the wrong label.
	if mp.k > g.N() {
		return Measures{}, fmt.Errorf("workload msrc: k=%d exceeds n=%d of %s", mp.k, g.N(), g.Name())
	}
	srcs := SpreadSources(g.N(), mp.k, opt.Source)
	opts := append(msrcOptions(srcs, opt), core.WithSeed(seed))
	if !opt.Fault.Active() {
		res, err := core.Broadcast(g, srcs[0], opts...)
		if err != nil {
			return Measures{}, err
		}
		return msrcMeasures(g, res), nil
	}
	res, err := core.Broadcast(g, srcs[0], append(opts, core.WithFault(opt.Fault))...)
	if err != nil {
		return Measures{}, err
	}
	twin, err := core.Broadcast(g, srcs[0], opts...)
	if err != nil {
		return Measures{}, twinErr(err)
	}
	m := msrcMeasures(g, res)
	m.Extra = append(m.Extra, faultExtras(g.N(), res, twin)...)
	return m, nil
}

// RunBatch implements BatchRunner for the k-source workload; see the
// broadcast RunBatch for the fault-free twin batch.
func (msrcWorkload) RunBatch(g *graph.Graph, pt Point, seeds []uint64, opt Options) ([]Measures, []error) {
	mp := pt.Value.(msrcPoint)
	if mp.k > g.N() {
		return fanError(len(seeds),
			fmt.Errorf("workload msrc: k=%d exceeds n=%d of %s", mp.k, g.N(), g.Name()))
	}
	srcs := SpreadSources(g.N(), mp.k, opt.Source)
	opts := msrcOptions(srcs, opt)
	ress, errs, err := core.BroadcastBatch(g, srcs[0], seeds, append(opts, core.WithFault(opt.Fault))...)
	if err != nil {
		return fanError(len(seeds), err)
	}
	var twins []*core.Result
	if opt.Fault.Active() {
		var terrs []error
		var terr error
		twins, terrs, terr = core.BroadcastBatch(g, srcs[0], seeds, opts...)
		if terr != nil {
			return fanError(len(seeds), twinErr(terr))
		}
		for i, e := range terrs {
			if errs[i] == nil && e != nil {
				errs[i] = twinErr(e)
			}
		}
	}
	ms := make([]Measures, len(seeds))
	for i, res := range ress {
		if errs[i] != nil {
			continue
		}
		ms[i] = msrcMeasures(g, res)
		if twins != nil {
			ms[i].Extra = append(ms[i].Extra, faultExtras(g.N(), res, twins[i])...)
		}
	}
	return ms, errs
}

// msrcMeasures maps one k-source result to its measurement row,
// including the per-source front columns.
func msrcMeasures(g *graph.Graph, res *core.Result) Measures {
	fronts := res.Fronts()
	min, max := g.N(), 0
	extra := make([]Sample, 0, len(fronts)+2)
	for i, f := range fronts {
		if f < min {
			min = f
		}
		if f > max {
			max = f
		}
		extra = append(extra, Sample{Name: fmt.Sprintf("front%d", i), X: float64(f)})
	}
	extra = append(extra,
		Sample{Name: "frontMin", X: float64(min)},
		Sample{Name: "frontMax", X: float64(max)})
	return Measures{
		Slots:         res.Slots,
		Events:        res.Events,
		MaxEnergy:     res.MaxEnergy(),
		TotalEnergy:   res.TotalEnergy(),
		Completed:     res.AllInformed(),
		Informed:      countInformed(res.Informed),
		Extra:         extra,
		FaultCrashes:  res.FaultCrashes,
		FaultSleeps:   res.FaultSleeps,
		FaultErasures: res.FaultErasures,
	}
}
