package srcomm

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/radio"
)

// traceOf runs one population and renders its event stream plus
// aggregate counters for byte-exact comparison.
func traceOf(t *testing.T, cfg radio.Config, devs []radio.Device) string {
	t.Helper()
	var sb strings.Builder
	cfg.Trace = func(ev radio.Event) {
		fmt.Fprintf(&sb, "%d %d %d %v %d\n", ev.Slot, ev.Dev, ev.Kind, ev.Payload, ev.From)
	}
	res, err := radio.RunDevices(cfg, devs)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&sb, "%d %d %v %v", res.Slots, res.Events, res.Energy, res.Listens)
	return sb.String()
}

// TestProcsTraceDeterministic pins every SR-communication realization's
// determinism: a population of step procs produces the byte-identical
// event stream run over run — including identical random draws, which
// the decay and Lemma 8 machines must replay in a fixed stream order.
func TestProcsTraceDeterministic(t *testing.T) {
	cases := []struct {
		name  string
		graph *graph.Graph
		model radio.Model
		idsp  int
		build func(v int) radio.Proc
	}{
		{
			name: "decay", graph: graph.Star(9), model: radio.NoCD,
			build: func(v int) radio.Proc {
				p := DecayParams{Delta: 8, Phases: 6}
				if v == 0 {
					var got any
					var ok bool
					return DecayReceiveProc(1, p, &got, &ok)
				}
				return DecaySendProc(1, p, v*10)
			},
		},
		{
			name: "cd-precheck-ack", graph: graph.K2k(5), model: radio.CD,
			build: func(v int) radio.Proc {
				p := CDParams{Delta: 5, Epochs: 7, Precheck: true, Ack: true}
				if v < 2 {
					var got any
					var ok bool
					return CDReceiveProc(1, p, &got, &ok)
				}
				return CDSendProc(1, p, v)
			},
		},
		{
			name: "cd-plain", graph: graph.Clique(6), model: radio.CD,
			build: func(v int) radio.Proc {
				p := CDParams{Delta: 6, Epochs: 9}
				if v == 0 {
					var got any
					var ok bool
					return CDReceiveProc(1, p, &got, &ok)
				}
				return CDSendProc(1, p, v)
			},
		},
		{
			name: "det-two-stage", graph: graph.Star(7), model: radio.CD, idsp: 7,
			build: func(v int) radio.Proc {
				p := DetParams{M: 50, IDSpace: 7}
				if v == 0 {
					var got int
					var ok bool
					return DetReceiveProc(1, p, 0, 0, &got, &ok)
				}
				return DetSendProc(1, p, v+20)
			},
		},
		{
			name: "local", graph: graph.Star(5), model: radio.Local,
			build: func(v int) radio.Proc {
				if v == 0 {
					var got []any
					return LocalReceiveProc(1, &got)
				}
				return LocalSendProc(1, v)
			},
		},
	}
	for _, tc := range cases {
		for seed := uint64(1); seed <= 4; seed++ {
			n := tc.graph.N()
			cfg := radio.Config{Graph: tc.graph, Model: tc.model, Seed: seed, IDSpace: tc.idsp}
			first := make([]radio.Device, n)
			second := make([]radio.Device, n)
			for v := 0; v < n; v++ {
				first[v].Proc = tc.build(v)
				second[v].Proc = tc.build(v) // fresh state for the second run
			}
			got := traceOf(t, cfg, first)
			again := traceOf(t, cfg, second)
			if got != again {
				t.Fatalf("%s seed %d: proc trace differs run over run", tc.name, seed)
			}
		}
	}
}

// TestDecayProcResults checks the proc constructors' out-parameters.
func TestDecayProcResults(t *testing.T) {
	g := graph.Star(4)
	p := DecayParams{Delta: 3, Phases: 8}
	var got any
	var ok bool
	devs := make([]radio.Device, g.N())
	devs[0].Proc = DecayReceiveProc(1, p, &got, &ok)
	for v := 1; v < g.N(); v++ {
		devs[v].Proc = DecaySendProc(1, p, v*11)
	}
	if _, err := radio.RunDevices(radio.Config{Graph: g, Model: radio.NoCD, Seed: 5}, devs); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("decay receiver proc heard nothing in 8 phases on a 3-leaf star")
	}
	if v, isInt := got.(int); !isInt || v%11 != 0 {
		t.Fatalf("received %v, want a sender payload", got)
	}
}
