package srcomm

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/radio"
	"repro/internal/rng"
)

// Role constants for runSR's device builder.
const (
	roleSend = iota
	roleRecv
	roleSkip
)

// runSR runs an SR-communication on g with the given sender payloads and
// receiver set, returning received payloads (absent where nothing was
// received). mk builds the device proc for one vertex; receivers write
// their result through got/ok.
func runSR(t *testing.T, g *graph.Graph, model radio.Model, seed uint64,
	senders map[int]any, receivers map[int]bool,
	mk func(role int, payload any, got *any, ok *bool) radio.Proc) (map[int]any, *radio.Result) {
	t.Helper()
	n := g.N()
	heard := make([]any, n)
	oks := make([]bool, n)
	procs := make([]radio.Proc, n)
	for v := 0; v < n; v++ {
		switch {
		case senders[v] != nil:
			procs[v] = mk(roleSend, senders[v], &heard[v], &oks[v])
		case receivers[v]:
			procs[v] = mk(roleRecv, nil, &heard[v], &oks[v])
		default:
			procs[v] = mk(roleSkip, nil, &heard[v], &oks[v])
		}
	}
	res, err := radio.RunDevices(radio.Config{Graph: g, Model: model, Seed: seed, IDSpace: n},
		radio.Procs(procs))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	got := make(map[int]any)
	for v := range heard {
		if oks[v] && heard[v] != nil {
			got[v] = heard[v]
		}
	}
	return got, res
}

// idleProc halts immediately — the step-ABI form of a window skip, which
// costs no energy and emits no events.
func idleProc() radio.Proc {
	return radio.ProcFunc(func(radio.Channel, radio.Feedback) radio.Action {
		return radio.Halt()
	})
}

// decayMk builds decay devices for runSR.
func decayMk(p DecayParams) func(role int, payload any, got *any, ok *bool) radio.Proc {
	return func(role int, payload any, got *any, ok *bool) radio.Proc {
		switch role {
		case roleSend:
			return DecaySendProc(1, p, payload)
		case roleRecv:
			return DecayReceiveProc(1, p, got, ok)
		default:
			return idleProc()
		}
	}
}

// cdMk builds CD devices for runSR.
func cdMk(p CDParams) func(role int, payload any, got *any, ok *bool) radio.Proc {
	return func(role int, payload any, got *any, ok *bool) radio.Proc {
		switch role {
		case roleSend:
			return CDSendProc(1, p, payload)
		case roleRecv:
			return CDReceiveProc(1, p, got, ok)
		default:
			return idleProc()
		}
	}
}

// detMk builds deterministic-SR devices for runSR; receivers carry
// ownKey/ownMsg and their int result is widened to any after the window.
func detMk(p DetParams, ownKey, ownMsg int) func(role int, payload any, got *any, ok *bool) radio.Proc {
	return func(role int, payload any, got *any, ok *bool) radio.Proc {
		switch role {
		case roleSend:
			return DetSendProc(1, p, payload.(int))
		case roleRecv:
			gi := new(int)
			return radio.ContProc(func(radio.Channel) radio.Cont {
				return radio.ProcCont(DetReceiveProc(1, p, ownKey, ownMsg, gi, ok),
					radio.Do(func() {
						if *ok {
							*got = *gi
						}
					}, nil))
			})
		default:
			return idleProc()
		}
	}
}

func TestDecayDeliversOnStar(t *testing.T) {
	// Center listens; k leaves all send. Exactly the contention decay
	// resolves.
	for _, k := range []int{1, 2, 8, 32} {
		g := graph.Star(k + 1)
		p := DecayParams{Delta: k, Phases: DecayPhasesForFailure(k + 1)}
		senders := make(map[int]any, k)
		for i := 1; i <= k; i++ {
			senders[i] = i * 100
		}
		got, _ := runSR(t, g, radio.NoCD, 11, senders, map[int]bool{0: true}, decayMk(p))
		if got[0] == nil {
			t.Errorf("k=%d: center received nothing", k)
		}
	}
}

func TestDecayAllReceiversHear(t *testing.T) {
	// GNP graph, random S; every receiver with an S-neighbor must hear.
	g := graph.GNP(40, 0.15, 3)
	r := rng.New(9)
	senders := make(map[int]any)
	receivers := make(map[int]bool)
	for v := 0; v < g.N(); v++ {
		if r.Float64() < 0.3 {
			senders[v] = v + 1
		} else {
			receivers[v] = true
		}
	}
	p := DecayParams{Delta: g.MaxDegree(), Phases: DecayPhasesForFailure(g.N())}
	got, _ := runSR(t, g, radio.NoCD, 13, senders, receivers, decayMk(p))
	for v := range receivers {
		hasSender := false
		for _, w := range g.Neighbors(v) {
			if senders[w] != nil {
				hasSender = true
				break
			}
		}
		if hasSender && got[v] == nil {
			t.Errorf("receiver %d with sender neighbor heard nothing", v)
		}
		if !hasSender && got[v] != nil {
			t.Errorf("receiver %d without sender neighbor heard %v", v, got[v])
		}
	}
}

func TestDecayWindowRespected(t *testing.T) {
	g := graph.Path(3)
	p := DecayParams{Delta: 2, Phases: 4}
	_, res := runSR(t, g, radio.NoCD, 1, map[int]any{0: "m"}, map[int]bool{1: true}, decayMk(p))
	if res.Slots > p.Slots() {
		t.Errorf("used slot %d beyond window %d", res.Slots, p.Slots())
	}
}

func TestCDDeliversOnStar(t *testing.T) {
	for _, k := range []int{1, 2, 8, 64} {
		g := graph.Star(k + 1)
		p := CDParams{Delta: k, Epochs: CDEpochsForFailure(k+1, k)}
		senders := make(map[int]any, k)
		for i := 1; i <= k; i++ {
			senders[i] = i * 100
		}
		got, _ := runSR(t, g, radio.CD, 21, senders, map[int]bool{0: true}, cdMk(p))
		if got[0] == nil {
			t.Errorf("k=%d: center received nothing", k)
		}
	}
}

func TestCDReceiverEnergySmall(t *testing.T) {
	// Lemma 8: receiver energy O(log log Delta + log 1/f), far below the
	// window length. With Delta=256 and generous epochs, the receiver
	// should stop after success.
	const k = 256
	g := graph.Star(k + 1)
	p := CDParams{Delta: k, Epochs: CDEpochsForFailure(k+1, k)}
	senders := make(map[int]any, k)
	for i := 1; i <= k; i++ {
		senders[i] = i
	}
	_, res := runSR(t, g, radio.CD, 5, senders, map[int]bool{0: true}, cdMk(p))
	if res.Listens[0] > p.Epochs {
		t.Errorf("receiver listened %d times (> %d epochs)", res.Listens[0], p.Epochs)
	}
	if res.Listens[0] > 30 {
		t.Errorf("receiver energy %d; want O(log log Delta) scale", res.Listens[0])
	}
}

func TestCDPrecheckDropsIrrelevant(t *testing.T) {
	// Path 0-1-2-3-4-5 with S={0, 4}, R={1}: sender 4's neighbors {3,5}
	// host no receivers, so with the pre-check sender 4 must leave the
	// window after O(1) energy while sender 0 stays engaged.
	g := graph.Path(6)
	p := CDParams{Delta: 2, Epochs: CDEpochsForFailure(6, 2), Precheck: true}
	senders := map[int]any{0: "m", 4: "w"}
	receivers := map[int]bool{1: true}
	_, res := runSR(t, g, radio.CD, 31, senders, receivers, cdMk(p))
	// Sender 4 has no receiver neighbors: energy exactly 1 (the precheck
	// listen).
	if res.Energy[4] != 1 {
		t.Errorf("irrelevant sender energy = %d, want 1", res.Energy[4])
	}
	// Sender 0 is relevant: more than precheck energy.
	if res.Energy[0] < 2 {
		t.Errorf("relevant sender energy = %d", res.Energy[0])
	}
}

func TestCDPrecheckDropsReceiverWithoutSenders(t *testing.T) {
	g := graph.Path(4) // S={0}, R={1,3}; 3's neighbor 2 is idle.
	p := CDParams{Delta: 2, Epochs: CDEpochsForFailure(4, 2), Precheck: true}
	_, res := runSR(t, g, radio.CD, 33, map[int]any{0: "m"}, map[int]bool{1: true, 3: true}, cdMk(p))
	// Receiver 3: precheck transmit + one listen = 2, then out.
	if res.Energy[3] != 2 {
		t.Errorf("irrelevant receiver energy = %d, want 2", res.Energy[3])
	}
}

func TestCDAckReleasesSenders(t *testing.T) {
	// Single sender, single receiver, Ack on: after the receiver succeeds
	// and ACKs, the sender stops; its energy stays far below epochs*2.
	g := graph.Path(2)
	p := CDParams{Delta: 1, Epochs: 200, Ack: true}
	_, res := runSR(t, g, radio.CD, 41, map[int]any{0: "m"}, map[int]bool{1: true}, cdMk(p))
	if res.Energy[0] > 40 {
		t.Errorf("acked sender energy = %d; should stop early", res.Energy[0])
	}
	if res.Energy[1] > 40 {
		t.Errorf("receiver energy = %d; should stop early", res.Energy[1])
	}
}

func TestDetSRSingleStage(t *testing.T) {
	// K_{2,k}-ish: receivers 0 and 1, senders in the middle with distinct
	// messages; receivers must learn the minimum message of their
	// neighborhoods.
	g := graph.K2k(5)
	p := DetParams{M: 16}
	senders := map[int]any{}
	msgs := []int{9, 3, 12, 7, 5}
	for i, m := range msgs {
		senders[2+i] = m
	}
	got, res := runSR(t, g, radio.CD, 0, senders, map[int]bool{0: true, 1: true}, detMk(p, 0, 0))
	for _, v := range []int{0, 1} {
		if got[v] != 3 {
			t.Errorf("receiver %d got %v, want minimum 3", v, got[v])
		}
	}
	if res.Slots > p.Slots() {
		t.Errorf("slots %d beyond window %d", res.Slots, p.Slots())
	}
	// Energy O(log M): each receiver at most 2 listens per bit round.
	if res.Energy[0] > 2*rng.Log2Ceil(p.M)+2 {
		t.Errorf("receiver energy %d exceeds 2 log M", res.Energy[0])
	}
}

func TestDetSRSameMessageManySenders(t *testing.T) {
	// All senders hold the same message (broadcast relay): collisions in
	// the prefix slots are noise, still non-silence, so CD resolves it.
	g := graph.Star(9)
	p := DetParams{M: 64}
	senders := map[int]any{}
	for i := 1; i <= 8; i++ {
		senders[i] = 42
	}
	got, _ := runSR(t, g, radio.CD, 0, senders, map[int]bool{0: true}, detMk(p, 0, 0))
	if got[0] != 42 {
		t.Errorf("receiver got %v, want 42", got[0])
	}
}

func TestDetSRTwoStage(t *testing.T) {
	// M > N: the message space exceeds the ID space; stage one finds the
	// min sender ID, stage two ships the payload.
	g := graph.Star(4)
	p := DetParams{M: 1 << 20, IDSpace: 4}
	senders := map[int]any{1: 999999, 2: 123456, 3: 777777}
	got, _ := runSR(t, g, radio.CD, 0, senders, map[int]bool{0: true}, detMk(p, 0, 0))
	// Min sender ID is device 1 (ID 2 under the default assignment);
	// its message must arrive.
	if got[0] != 999999 {
		t.Errorf("receiver got %v, want message of lowest-ID sender (999999)", got[0])
	}
}

func TestDetSRNoSenders(t *testing.T) {
	g := graph.Path(2)
	p := DetParams{M: 8}
	got, _ := runSR(t, g, radio.CD, 0, map[int]any{}, map[int]bool{0: true, 1: true}, detMk(p, 0, 0))
	if len(got) != 0 {
		t.Errorf("receivers heard %v from nobody", got)
	}
}

func TestDetSROwnKey(t *testing.T) {
	// Receiver also holds key 2; neighbors send 5 and 9. Minimum over
	// N+(v) is its own 2.
	g := graph.Star(3)
	p := DetParams{M: 16}
	got, _ := runSR(t, g, radio.CD, 0, map[int]any{1: 5, 2: 9}, map[int]bool{0: true}, detMk(p, 2, 2))
	if got[0] != 2 {
		t.Errorf("receiver got %v, want own key 2", got[0])
	}
}

func TestDetSROwnKeyLoses(t *testing.T) {
	// Receiver holds key 9; neighbor sends 5: the channel minimum wins.
	g := graph.Path(2)
	p := DetParams{M: 16}
	got, _ := runSR(t, g, radio.CD, 0, map[int]any{1: 5}, map[int]bool{0: true}, detMk(p, 9, 9))
	if got[0] != 5 {
		t.Errorf("receiver got %v, want 5", got[0])
	}
}

func TestLocalSR(t *testing.T) {
	g := graph.Star(4)
	var heard []any
	procs := []radio.Proc{
		LocalReceiveProc(1, &heard),
		LocalSendProc(1, "a"),
		LocalSendProc(1, "b"),
		LocalSendProc(1, "c"),
	}
	if _, err := radio.RunDevices(radio.Config{Graph: g, Model: radio.Local}, radio.Procs(procs)); err != nil {
		t.Fatal(err)
	}
	if len(heard) != 3 {
		t.Fatalf("LOCAL receiver heard %d of 3 messages", len(heard))
	}
}

func TestParamsSlotsConsistency(t *testing.T) {
	d := DecayParams{Delta: 7, Phases: 5}
	if d.Slots() != uint64(5*d.PhaseLen()) {
		t.Error("DecayParams.Slots mismatch")
	}
	c := CDParams{Delta: 7, Epochs: 5, Precheck: true, Ack: true}
	if c.Slots() != uint64(2+5*c.EpochLen()) {
		t.Error("CDParams.Slots mismatch")
	}
	if c.EpochLen() != rng.Log2Ceil(7)+2 {
		t.Error("CDParams.EpochLen mismatch")
	}
	p1 := DetParams{M: 8}
	if p1.TwoStage() {
		t.Error("M=8 without IDSpace should be single-stage")
	}
	if p1.Slots() != 2+4+8 {
		t.Errorf("DetParams{M:8}.Slots = %d, want 14", p1.Slots())
	}
	p2 := DetParams{M: 100, IDSpace: 8}
	if !p2.TwoStage() {
		t.Error("M=100 > N=8 should be two-stage")
	}
	if p2.Slots() != 2+4+8+8 {
		t.Errorf("two-stage Slots = %d, want 22", p2.Slots())
	}
}

func TestDecayDeliveryProbabilityHigh(t *testing.T) {
	// With Phases scaled for n, delivery should succeed in every one of a
	// set of seeded trials (w.h.p. semantics).
	g := graph.Star(17)
	p := DecayParams{Delta: 16, Phases: DecayPhasesForFailure(17)}
	senders := make(map[int]any)
	for i := 1; i <= 16; i++ {
		senders[i] = i
	}
	for seed := uint64(0); seed < 20; seed++ {
		got, _ := runSR(t, g, radio.NoCD, seed, senders, map[int]bool{0: true}, decayMk(p))
		if got[0] == nil {
			t.Errorf("seed %d: decay failed to deliver", seed)
		}
	}
}

func TestCDDeliveryProbabilityHigh(t *testing.T) {
	g := graph.Star(17)
	p := CDParams{Delta: 16, Epochs: CDEpochsForFailure(17, 16)}
	senders := make(map[int]any)
	for i := 1; i <= 16; i++ {
		senders[i] = i
	}
	for seed := uint64(0); seed < 20; seed++ {
		got, _ := runSR(t, g, radio.CD, 0+seed, senders, map[int]bool{0: true}, cdMk(p))
		if got[0] == nil {
			t.Errorf("seed %d: CD SR-communication failed to deliver", seed)
		}
	}
}
