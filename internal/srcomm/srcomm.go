// Package srcomm implements SR-communication, the basic building block of
// Section 4 of the paper. Given vertex sets S (senders, each with a
// message) and R (receivers), SR-communication guarantees that every
// receiver with at least one S-neighbor obtains some neighbor's message
// with probability 1-f.
//
// Three realizations are provided, one per model:
//
//   - No-CD: the randomized decay protocol of Bar-Yehuda, Goldreich and
//     Itai (Lemma 7): O(log Delta log 1/f) time and energy.
//   - CD: the generic transformation of a uniform leader-election schedule
//     (Lemma 8): senders follow an oblivious geometric pattern, receivers
//     steer a leader.Schedule; O(log log Delta + log 1/f) receiver energy,
//     plus the Remark 9 relevance pre-check and the single-receiver ACK
//     optimization.
//   - CD deterministic: binary search over message prefixes (Lemma 24):
//     O(min{M,N}) time and O(log min{M,N}) energy.
//
// Every protocol occupies a fixed slot window [start, start+Slots()).
// A participant finishes the window with its local clock at
// start+Slots()-1, so the next block can begin at start+Slots(). Devices
// not participating sleep past the window with the Skip helpers; all
// devices of a larger protocol must agree on start and parameters, which
// is how the paper's algorithms keep global synchronization.
package srcomm

import (
	"repro/internal/leader"
	"repro/internal/radio"
	"repro/internal/rng"
)

// DecayParams configures the No-CD decay protocol.
type DecayParams struct {
	// Delta is the maximum-degree bound (at least 1); each phase sweeps
	// exponents 0..ceil(log2 Delta)+1.
	Delta int
	// Phases is the number of independent decay phases; the failure
	// probability is exp(-Theta(Phases)).
	Phases int
}

// PhaseLen returns the number of slots in one decay phase.
func (p DecayParams) PhaseLen() int {
	return rng.Log2Ceil(p.Delta) + 2
}

// Slots returns the total window length of the protocol.
func (p DecayParams) Slots() uint64 {
	return uint64(p.Phases * p.PhaseLen())
}

// DecayPhasesForFailure returns a phase count giving failure probability
// roughly n^-c for the given n (used to instantiate Lemma 7's
// f = 1/poly(n)).
func DecayPhasesForFailure(n int) int {
	ph := 4 * (rng.Log2Ceil(n) + 1)
	if ph < 8 {
		ph = 8
	}
	return ph
}

// DecaySend participates in the window as a sender with the given payload.
// In each phase the sender transmits in slot 0, then survives each
// subsequent slot with probability 1/2 (transmitting while alive) — the
// classical decay pattern, giving expected O(Phases) energy.
func DecaySend(e radio.Channel, start uint64, p DecayParams, payload any) {
	plen := uint64(p.PhaseLen())
	for ph := 0; ph < p.Phases; ph++ {
		base := start + uint64(ph)*plen
		for i := uint64(0); i < plen; i++ {
			e.Transmit(base+i, payload)
			if e.Rand().Uint64()&1 == 0 {
				break
			}
		}
	}
	DecaySkip(e, start, p)
}

// DecayReceive participates in the window as a receiver. It listens until
// the first message heard (at most the whole window) and returns it.
func DecayReceive(e radio.Channel, start uint64, p DecayParams) (any, bool) {
	plen := uint64(p.PhaseLen())
	var got any
	ok := false
	for ph := 0; ph < p.Phases && !ok; ph++ {
		base := start + uint64(ph)*plen
		for i := uint64(0); i < plen; i++ {
			fb := e.Listen(base + i)
			if fb.Status == radio.Received {
				got, ok = fb.Payload, true
				break
			}
		}
	}
	DecaySkip(e, start, p)
	return got, ok
}

// DecaySkip advances a clock to the end of the window.
func DecaySkip(e radio.Channel, start uint64, p DecayParams) {
	e.SleepUntil(start + p.Slots() - 1)
}

// CDParams configures the Lemma 8 CD protocol.
type CDParams struct {
	// Delta is the maximum-degree bound (at least 1).
	Delta int
	// Epochs is the epoch count T; failure is exp(-Theta(Epochs)) once the
	// schedule has locked on (which takes O(log log Delta) epochs).
	Epochs int
	// Precheck enables the Remark 9 two-slot relevance test: senders with
	// no receiver neighbor and receivers with no sender neighbor drop out
	// with O(1) energy.
	Precheck bool
	// Ack enables the end-of-epoch acknowledgment slot of Lemma 8's
	// special case (each sender adjacent to at most one receiver): a
	// receiver announces success once, releasing its senders early.
	Ack bool
}

// EpochLen returns the slots per epoch (exponent slots plus optional ACK).
func (p CDParams) EpochLen() int {
	l := rng.Log2Ceil(p.Delta) + 1
	if p.Ack {
		l++
	}
	return l
}

func (p CDParams) precheckSlots() int {
	if p.Precheck {
		return 2
	}
	return 0
}

// Slots returns the total window length of the protocol.
func (p CDParams) Slots() uint64 {
	return uint64(p.precheckSlots() + p.Epochs*p.EpochLen())
}

// CDEpochsForFailure returns an epoch count for failure ~ n^-c
// (instantiating f = 1/poly(n)), including the O(log log Delta) lock-on.
func CDEpochsForFailure(n, delta int) int {
	ep := 3*(rng.Log2Ceil(n)+1) + 4*(rng.Log2Ceil(rng.Log2Ceil(delta)+1)+1)
	if ep < 8 {
		ep = 8
	}
	return ep
}

// CDSend participates as a sender. The sender is oblivious: in each epoch
// it transmits at exponent-slot i with probability 2^-i, capped at two
// transmissions per epoch (as in Lemma 8). With Precheck it first checks
// for receiver neighbors; with Ack it listens at each epoch's final slot
// and stops once its (unique) receiver announces success.
func CDSend(e radio.Channel, start uint64, p CDParams, payload any) {
	slot := start
	if p.Precheck {
		// Slot 1: receivers transmit, senders listen.
		fb := e.Listen(slot)
		slot++
		if fb.Status == radio.Silence {
			// No receiver neighbor: irrelevant to this invocation.
			CDSkip(e, start, p)
			return
		}
		// Slot 2: senders transmit (for the receivers' own pre-check).
		e.Transmit(slot, payload)
	}
	kMax := rng.Log2Ceil(p.Delta) + 1
	for ep := 0; ep < p.Epochs; ep++ {
		base := start + uint64(p.precheckSlots()+ep*p.EpochLen())
		sent := 0
		for i := 1; i <= kMax; i++ {
			if sent < 2 && rng.BernoulliPow2(e.Rand(), i) {
				e.Transmit(base+uint64(i-1), payload)
				sent++
			}
		}
		if p.Ack {
			fb := e.Listen(base + uint64(kMax))
			if fb.Status != radio.Silence {
				// Our unique receiver (or, conservatively, some receiver)
				// is done.
				break
			}
		}
	}
	CDSkip(e, start, p)
}

// CDReceive participates as a receiver. It steers a leader.Schedule with
// the feedback from one listening slot per epoch and stops after the first
// successful delivery (announcing it in the ACK slot when enabled).
// It returns the received payload, if any.
func CDReceive(e radio.Channel, start uint64, p CDParams) (any, bool) {
	slot := start
	if p.Precheck {
		// Slot 1: receivers transmit a probe.
		e.Transmit(slot, nil)
		slot++
		// Slot 2: senders transmit; a silent channel means no senders.
		fb := e.Listen(slot)
		if fb.Status == radio.Silence {
			CDSkip(e, start, p)
			return nil, false
		}
	}
	kMax := rng.Log2Ceil(p.Delta) + 1
	sched := leader.NewSchedule(p.Delta)
	var got any
	ok := false
	for ep := 0; ep < p.Epochs; ep++ {
		base := start + uint64(p.precheckSlots()+ep*p.EpochLen())
		if !ok {
			k := sched.K()
			if k > kMax {
				k = kMax
			}
			fb := e.Listen(base + uint64(k-1))
			if fb.Status == radio.Received {
				got, ok = fb.Payload, true
			} else {
				sched.Update(fb.Status)
			}
		}
		if p.Ack && ok {
			e.Transmit(base+uint64(kMax), nil)
			break
		}
		if !p.Ack && ok {
			break
		}
	}
	CDSkip(e, start, p)
	return got, ok
}

// CDSkip advances a clock to the end of the window.
func CDSkip(e radio.Channel, start uint64, p CDParams) {
	e.SleepUntil(start + p.Slots() - 1)
}

// DetParams configures the deterministic CD protocol of Lemma 24.
// Messages are integers in {1..M}. When M exceeds the ID space N, the
// two-stage variant applies: the binary search runs over IDs, then one
// slot per ID carries the actual message.
type DetParams struct {
	// M is the message-space bound (at least 1).
	M int
	// IDSpace is the deterministic ID bound N (0 if IDs are unavailable,
	// forcing the direct O(M) schedule).
	IDSpace int
}

// TwoStage reports whether the M > N two-stage variant applies.
func (p DetParams) TwoStage() bool {
	return p.IDSpace > 0 && p.M > p.IDSpace
}

// searchSpace returns the value space binary-searched in stage one.
func (p DetParams) searchSpace() int {
	if p.TwoStage() {
		return p.IDSpace
	}
	return p.M
}

func (p DetParams) bits() int {
	b := rng.Log2Ceil(p.searchSpace())
	if b == 0 {
		b = 1
	}
	return b
}

// Slots returns the total window length.
func (p DetParams) Slots() uint64 {
	// Round x (x = 0..bits-1) uses 2^(x+1) slots: one per (x+1)-bit prefix.
	total := uint64(0)
	for x := 0; x < p.bits(); x++ {
		total += uint64(1) << uint(x+1)
	}
	if p.TwoStage() {
		total += uint64(p.IDSpace)
	}
	return total
}

// DetSend participates as a sender with message m in {1..M}. In round x it
// transmits at the slot indexed by the (x+1)-bit prefix of its search key
// (the message, or its ID in the two-stage variant); in the two-stage
// variant it finally transmits m in the slot indexed by its ID.
// Senders must not simultaneously be receivers (a receiver that also holds
// a message instead passes it to DetReceive as ownKey).
func DetSend(e radio.Channel, start uint64, p DetParams, m int) {
	key := m
	if p.TwoStage() {
		key = e.AssignedID()
	}
	bits := p.bits()
	base := start
	key0 := key - 1 // work in {0..space-1}
	for x := 0; x < bits; x++ {
		prefix := key0 >> uint(bits-x-1)
		e.Transmit(base+uint64(prefix), key)
		base += uint64(1) << uint(x+1)
	}
	if p.TwoStage() {
		e.Transmit(base+uint64(key0), m)
	}
	DetSkip(e, start, p)
}

// DetReceive participates as a receiver. It binary-searches the minimum
// key present in its inclusive neighborhood and returns the corresponding
// message.
//
// ownKey (0 if absent) injects the receiver's own key into the minimum,
// implementing Lemma 24's N+(v) semantics for vertices in both S and R
// without transmitting; ownMsg is the receiver's own message, returned
// when its own key wins (only consulted in the two-stage variant — in the
// single-stage variant the key is the message).
func DetReceive(e radio.Channel, start uint64, p DetParams, ownKey, ownMsg int) (int, bool) {
	bits := p.bits()
	base := start
	prefix := 0
	heardChannel := false
	own0 := ownKey - 1
	for x := 0; x < bits; x++ {
		p0 := prefix << 1
		p1 := p0 | 1
		ownMatch0 := ownKey > 0 && (own0>>uint(bits-x-1)) == p0
		ownMatch1 := ownKey > 0 && (own0>>uint(bits-x-1)) == p1
		bit0 := ownMatch0
		if !bit0 {
			fb := e.Listen(base + uint64(p0))
			if fb.Status != radio.Silence {
				bit0 = true
				heardChannel = true
			}
		}
		if bit0 {
			prefix = p0
		} else {
			bit1 := ownMatch1
			if !bit1 {
				fb := e.Listen(base + uint64(p1))
				if fb.Status != radio.Silence {
					bit1 = true
					heardChannel = true
				}
			}
			if !bit1 {
				// No key matches: no sender in N+(v).
				DetSkip(e, start, p)
				return 0, false
			}
			prefix = p1
		}
		base += uint64(1) << uint(x+1)
	}
	key := prefix + 1
	if !p.TwoStage() {
		DetSkip(e, start, p)
		// In single-stage, the key is the message itself.
		return key, true
	}
	if ownKey > 0 && key == ownKey {
		// Our own key is the minimum; the message is our own.
		DetSkip(e, start, p)
		return ownMsg, true
	}
	if !heardChannel {
		// Defensive: cannot happen when key != ownKey, but keep the
		// invariant that we only fetch what the channel promised.
		DetSkip(e, start, p)
		return 0, false
	}
	// Stage two: fetch the message at the slot indexed by the winning ID.
	fb := e.Listen(base + uint64(prefix))
	DetSkip(e, start, p)
	if fb.Status == radio.Received {
		if m, ok := fb.Payload.(int); ok {
			return m, true
		}
	}
	return 0, false
}

// DetSkip advances a clock to the end of the window.
func DetSkip(e radio.Channel, start uint64, p DetParams) {
	e.SleepUntil(start + p.Slots() - 1)
}

// LocalSend transmits in the single slot of the trivial LOCAL
// SR-communication (deterministic, collision-free).
func LocalSend(e radio.Channel, start uint64, payload any) {
	e.Transmit(start, payload)
}

// LocalReceive listens in the single LOCAL slot and returns everything
// heard (empty when no neighbor sent). The result is copied out of the
// engine's per-device delivery buffer, so it stays valid after the
// device's next channel action.
func LocalReceive(e radio.Channel, start uint64) []any {
	fb := e.Listen(start)
	if len(fb.Payloads) == 0 {
		return nil
	}
	return append([]any(nil), fb.Payloads...)
}
