// Package srcomm implements SR-communication, the basic building block of
// Section 4 of the paper. Given vertex sets S (senders, each with a
// message) and R (receivers), SR-communication guarantees that every
// receiver with at least one S-neighbor obtains some neighbor's message
// with probability 1-f.
//
// Three realizations are provided, one per model:
//
//   - No-CD: the randomized decay protocol of Bar-Yehuda, Goldreich and
//     Itai (Lemma 7): O(log Delta log 1/f) time and energy.
//   - CD: the generic transformation of a uniform leader-election schedule
//     (Lemma 8): senders follow an oblivious geometric pattern, receivers
//     steer a leader.Schedule; O(log log Delta + log 1/f) receiver energy,
//     plus the Remark 9 relevance pre-check and the single-receiver ACK
//     optimization.
//   - CD deterministic: binary search over message prefixes (Lemma 24):
//     O(min{M,N}) time and O(log min{M,N}) energy.
//
// Every protocol occupies a fixed slot window [start, start+Slots()).
// A participant finishes the window with its local clock at
// start+Slots()-1, so the next block can begin at start+Slots(). Devices
// not participating sleep past the window with the Skip helpers; all
// devices of a larger protocol must agree on start and parameters, which
// is how the paper's algorithms keep global synchronization.
package srcomm

import (
	"repro/internal/leader"
	"repro/internal/radio"
	"repro/internal/rng"
)

// DecayParams configures the No-CD decay protocol.
type DecayParams struct {
	// Delta is the maximum-degree bound (at least 1); each phase sweeps
	// exponents 0..ceil(log2 Delta)+1.
	Delta int
	// Phases is the number of independent decay phases; the failure
	// probability is exp(-Theta(Phases)).
	Phases int
}

// PhaseLen returns the number of slots in one decay phase.
func (p DecayParams) PhaseLen() int {
	return rng.Log2Ceil(p.Delta) + 2
}

// Slots returns the total window length of the protocol.
func (p DecayParams) Slots() uint64 {
	return uint64(p.Phases * p.PhaseLen())
}

// DecayPhasesForFailure returns a phase count giving failure probability
// roughly n^-c for the given n (used to instantiate Lemma 7's
// f = 1/poly(n)).
func DecayPhasesForFailure(n int) int {
	ph := 4 * (rng.Log2Ceil(n) + 1)
	if ph < 8 {
		ph = 8
	}
	return ph
}

// decaySend is the resumable step machine of the sender role: in each
// phase it transmits in slot 0, then survives each subsequent slot with
// probability 1/2 (transmitting while alive) — the classical decay
// pattern, giving expected O(Phases) energy. One survival draw follows
// every transmit.
type decaySend struct {
	p       DecayParams
	start   uint64
	payload any
	ph, i   int
	draw    bool // previous action was a transmit: draw survival next
	done    bool
}

// DecaySendProc returns the sender role as an inline step proc
// occupying [start, start+Slots()). Procs are single-use.
func DecaySendProc(start uint64, p DecayParams, payload any) radio.Proc {
	return &decaySend{p: p, start: start, payload: payload}
}

func (s *decaySend) Step(ch radio.Channel, fb radio.Feedback) radio.Action {
	if s.done {
		return radio.Halt()
	}
	plen := s.p.PhaseLen()
	if s.draw {
		s.draw = false
		if ch.Rand().Uint64()&1 == 0 {
			s.ph, s.i = s.ph+1, 0
		}
	}
	for {
		if s.ph >= s.p.Phases {
			s.done = true
			return radio.Sleep(s.start + s.p.Slots() - 1)
		}
		if s.i >= plen {
			s.ph, s.i = s.ph+1, 0
			continue
		}
		slot := s.start + uint64(s.ph)*uint64(plen) + uint64(s.i)
		s.i++
		s.draw = true
		return radio.Transmit(slot, s.payload)
	}
}

// decayRecv is the receiver role: it listens until the first message
// heard (at most the whole window).
type decayRecv struct {
	p     DecayParams
	start uint64
	got   *any
	ok    *bool
	ph, i int
	await bool
	done  bool
}

// DecayReceiveProc returns the receiver role as an inline step proc.
// The first received payload (if any) is stored through got/ok when the
// proc halts. Procs are single-use.
func DecayReceiveProc(start uint64, p DecayParams, got *any, ok *bool) radio.Proc {
	return &decayRecv{p: p, start: start, got: got, ok: ok}
}

func (r *decayRecv) Step(ch radio.Channel, fb radio.Feedback) radio.Action {
	if r.done {
		return radio.Halt()
	}
	plen := r.p.PhaseLen()
	if r.await {
		r.await = false
		if fb.Status == radio.Received {
			*r.got, *r.ok = fb.Payload, true
			r.done = true
			return radio.Sleep(r.start + r.p.Slots() - 1)
		}
	}
	for {
		if r.ph >= r.p.Phases {
			r.done = true
			return radio.Sleep(r.start + r.p.Slots() - 1)
		}
		if r.i >= plen {
			r.ph, r.i = r.ph+1, 0
			continue
		}
		slot := r.start + uint64(r.ph)*uint64(plen) + uint64(r.i)
		r.i++
		r.await = true
		return radio.Listen(slot)
	}
}

// CDParams configures the Lemma 8 CD protocol.
type CDParams struct {
	// Delta is the maximum-degree bound (at least 1).
	Delta int
	// Epochs is the epoch count T; failure is exp(-Theta(Epochs)) once the
	// schedule has locked on (which takes O(log log Delta) epochs).
	Epochs int
	// Precheck enables the Remark 9 two-slot relevance test: senders with
	// no receiver neighbor and receivers with no sender neighbor drop out
	// with O(1) energy.
	Precheck bool
	// Ack enables the end-of-epoch acknowledgment slot of Lemma 8's
	// special case (each sender adjacent to at most one receiver): a
	// receiver announces success once, releasing its senders early.
	Ack bool
}

// EpochLen returns the slots per epoch (exponent slots plus optional ACK).
func (p CDParams) EpochLen() int {
	l := rng.Log2Ceil(p.Delta) + 1
	if p.Ack {
		l++
	}
	return l
}

func (p CDParams) precheckSlots() int {
	if p.Precheck {
		return 2
	}
	return 0
}

// Slots returns the total window length of the protocol.
func (p CDParams) Slots() uint64 {
	return uint64(p.precheckSlots() + p.Epochs*p.EpochLen())
}

// CDEpochsForFailure returns an epoch count for failure ~ n^-c
// (instantiating f = 1/poly(n)), including the O(log log Delta) lock-on.
func CDEpochsForFailure(n, delta int) int {
	ep := 3*(rng.Log2Ceil(n)+1) + 4*(rng.Log2Ceil(rng.Log2Ceil(delta)+1)+1)
	if ep < 8 {
		ep = 8
	}
	return ep
}

// cdSend is the sender role of the Lemma 8 protocol. The sender is
// oblivious: in each epoch it transmits at exponent-slot i with
// probability 2^-i, capped at two transmissions per epoch. With
// Precheck it first checks for receiver neighbors; with Ack it listens
// at each epoch's final slot and stops once its (unique) receiver
// announces success. The machine draws an epoch's whole transmission
// plan at epoch entry; channel actions never touch the private random
// stream, so the draw order is independent of channel feedback.
type cdSend struct {
	p       CDParams
	start   uint64
	payload any

	pc      int // 0 start, 1 precheck fb, 2 epoch transmits, 3 ack fb, 4 done, 5 precheck tx resolved
	kMax    int
	ep      int
	pending [2]uint64 // this epoch's transmit slots
	np, pi  int
}

// CDSendProc returns the sender role as an inline step proc. Procs are
// single-use.
func CDSendProc(start uint64, p CDParams, payload any) radio.Proc {
	return &cdSend{p: p, start: start, payload: payload}
}

func (s *cdSend) Step(ch radio.Channel, fb radio.Feedback) radio.Action {
	p := s.p
	switch s.pc {
	case 0:
		s.kMax = rng.Log2Ceil(p.Delta) + 1
		if p.Precheck {
			// Slot 1: receivers transmit, senders listen.
			s.pc = 1
			return radio.Listen(s.start)
		}
		return s.enterEpoch(ch)
	case 1:
		if fb.Status == radio.Silence {
			// No receiver neighbor: irrelevant to this invocation.
			return s.finish()
		}
		// Slot 2: senders transmit (for the receivers' own pre-check).
		// The epoch plan is drawn when the epoch starts, i.e. on the
		// step after this transmit resolves.
		s.pc = 5
		return radio.Transmit(s.start+1, s.payload)
	case 5:
		return s.enterEpoch(ch)
	case 2:
		return s.emitEpoch(ch)
	case 3:
		if fb.Status != radio.Silence {
			// Our unique receiver (or, conservatively, some receiver)
			// is done.
			return s.finish()
		}
		s.ep++
		return s.enterEpoch(ch)
	default:
		return radio.Halt()
	}
}

// enterEpoch draws the epoch's transmission plan and emits its first
// action (or finishes the window when the epochs are exhausted).
func (s *cdSend) enterEpoch(ch radio.Channel) radio.Action {
	if s.ep >= s.p.Epochs {
		return s.finish()
	}
	base := s.start + uint64(s.p.precheckSlots()+s.ep*s.p.EpochLen())
	s.np, s.pi = 0, 0
	sent := 0
	for i := 1; i <= s.kMax; i++ {
		if sent < 2 && rng.BernoulliPow2(ch.Rand(), i) {
			s.pending[s.np] = base + uint64(i-1)
			s.np++
			sent++
		}
	}
	s.pc = 2
	return s.emitEpoch(ch)
}

// emitEpoch plays out the drawn plan: the pending transmits, then the
// optional ACK listen, then the next epoch.
func (s *cdSend) emitEpoch(ch radio.Channel) radio.Action {
	if s.pi < s.np {
		slot := s.pending[s.pi]
		s.pi++
		return radio.Transmit(slot, s.payload)
	}
	if s.p.Ack {
		base := s.start + uint64(s.p.precheckSlots()+s.ep*s.p.EpochLen())
		s.pc = 3
		return radio.Listen(base + uint64(s.kMax))
	}
	s.ep++
	return s.enterEpoch(ch)
}

func (s *cdSend) finish() radio.Action {
	s.pc = 4
	return radio.Sleep(s.start + s.p.Slots() - 1)
}

// cdRecv is the receiver role: it steers a leader.Schedule with the
// feedback from one listening slot per epoch and stops after the first
// successful delivery (announcing it in the ACK slot when enabled).
type cdRecv struct {
	p     CDParams
	start uint64
	got   *any
	ok    *bool

	pc    int // 0 start, 1 probe sent, 2 precheck fb, 3 epoch fb, 4 ack sent, 5 done
	kMax  int
	ep    int
	sched *leader.Schedule
}

// CDReceiveProc returns the receiver role as an inline step proc. The
// received payload (if any) is stored through got/ok. Procs are
// single-use.
func CDReceiveProc(start uint64, p CDParams, got *any, ok *bool) radio.Proc {
	return &cdRecv{p: p, start: start, got: got, ok: ok}
}

func (r *cdRecv) Step(ch radio.Channel, fb radio.Feedback) radio.Action {
	p := r.p
	switch r.pc {
	case 0:
		r.kMax = rng.Log2Ceil(p.Delta) + 1
		r.sched = leader.NewSchedule(p.Delta)
		if p.Precheck {
			// Slot 1: receivers transmit a probe.
			r.pc = 1
			return radio.Transmit(r.start, nil)
		}
		return r.epochListen()
	case 1:
		// Slot 2: senders transmit; a silent channel means no senders.
		r.pc = 2
		return radio.Listen(r.start + 1)
	case 2:
		if fb.Status == radio.Silence {
			return r.finish()
		}
		return r.epochListen()
	case 3:
		if fb.Status == radio.Received {
			*r.got, *r.ok = fb.Payload, true
		} else {
			r.sched.Update(fb.Status)
		}
		if p.Ack && *r.ok {
			base := r.start + uint64(p.precheckSlots()+r.ep*p.EpochLen())
			r.pc = 4
			return radio.Transmit(base+uint64(r.kMax), nil)
		}
		if *r.ok {
			return r.finish()
		}
		r.ep++
		return r.epochListen()
	case 4:
		return r.finish()
	default:
		return radio.Halt()
	}
}

// epochListen emits the epoch's single schedule-steered listen, or
// finishes the window when the epochs are exhausted.
func (r *cdRecv) epochListen() radio.Action {
	if r.ep >= r.p.Epochs {
		return r.finish()
	}
	base := r.start + uint64(r.p.precheckSlots()+r.ep*r.p.EpochLen())
	k := r.sched.K()
	if k > r.kMax {
		k = r.kMax
	}
	r.pc = 3
	return radio.Listen(base + uint64(k-1))
}

func (r *cdRecv) finish() radio.Action {
	r.pc = 5
	return radio.Sleep(r.start + r.p.Slots() - 1)
}

// DetParams configures the deterministic CD protocol of Lemma 24.
// Messages are integers in {1..M}. When M exceeds the ID space N, the
// two-stage variant applies: the binary search runs over IDs, then one
// slot per ID carries the actual message.
type DetParams struct {
	// M is the message-space bound (at least 1).
	M int
	// IDSpace is the deterministic ID bound N (0 if IDs are unavailable,
	// forcing the direct O(M) schedule).
	IDSpace int
}

// TwoStage reports whether the M > N two-stage variant applies.
func (p DetParams) TwoStage() bool {
	return p.IDSpace > 0 && p.M > p.IDSpace
}

// searchSpace returns the value space binary-searched in stage one.
func (p DetParams) searchSpace() int {
	if p.TwoStage() {
		return p.IDSpace
	}
	return p.M
}

func (p DetParams) bits() int {
	b := rng.Log2Ceil(p.searchSpace())
	if b == 0 {
		b = 1
	}
	return b
}

// Slots returns the total window length.
func (p DetParams) Slots() uint64 {
	// Round x (x = 0..bits-1) uses 2^(x+1) slots: one per (x+1)-bit prefix.
	total := uint64(0)
	for x := 0; x < p.bits(); x++ {
		total += uint64(1) << uint(x+1)
	}
	if p.TwoStage() {
		total += uint64(p.IDSpace)
	}
	return total
}

// detSend is the sender role of Lemma 24: in round x it transmits at
// the slot indexed by the (x+1)-bit prefix of its search key (the
// message, or its ID in the two-stage variant); in the two-stage
// variant it finally transmits m in the slot indexed by its ID.
type detSend struct {
	p     DetParams
	start uint64
	m     int

	inited  bool
	bits, x int
	base    uint64
	key     int
	stage2  bool
	slept   bool
}

// DetSendProc returns the sender role as an inline step proc. Senders
// must not simultaneously be receivers (a receiver that also holds a
// message instead passes it to DetReceive as ownKey). Procs are
// single-use.
func DetSendProc(start uint64, p DetParams, m int) radio.Proc {
	return &detSend{p: p, start: start, m: m}
}

func (s *detSend) Step(ch radio.Channel, fb radio.Feedback) radio.Action {
	if !s.inited {
		s.inited = true
		s.key = s.m
		if s.p.TwoStage() {
			s.key = ch.AssignedID()
		}
		s.bits = s.p.bits()
		s.base = s.start
	}
	key0 := s.key - 1 // work in {0..space-1}
	if s.x < s.bits {
		prefix := key0 >> uint(s.bits-s.x-1)
		act := radio.Transmit(s.base+uint64(prefix), s.key)
		s.base += uint64(1) << uint(s.x+1)
		s.x++
		return act
	}
	if s.p.TwoStage() && !s.stage2 {
		s.stage2 = true
		return radio.Transmit(s.base+uint64(key0), s.m)
	}
	if !s.slept {
		s.slept = true
		return radio.Sleep(s.start + s.p.Slots() - 1)
	}
	return radio.Halt()
}

// detRecv is the receiver role: it binary-searches the minimum key
// present in its inclusive neighborhood and (in the two-stage variant)
// fetches the winner's message.
type detRecv struct {
	p              DetParams
	start          uint64
	ownKey, ownMsg int
	got            *int
	ok             *bool

	pc     int // 0 round start, 1 await p0, 2 await p1, 3 await stage-2, 4 done
	inited bool
	bits   int
	base   uint64
	prefix int
	heard  bool
	own0   int
	x      int
}

// DetReceiveProc returns the receiver role as an inline step proc.
//
// ownKey (0 if absent) injects the receiver's own key into the minimum,
// implementing Lemma 24's N+(v) semantics for vertices in both S and R
// without transmitting; ownMsg is the receiver's own message, returned
// when its own key wins (only consulted in the two-stage variant — in
// the single-stage variant the key is the message). The result is
// stored through got/ok. Procs are single-use.
func DetReceiveProc(start uint64, p DetParams, ownKey, ownMsg int, got *int, ok *bool) radio.Proc {
	return &detRecv{p: p, start: start, ownKey: ownKey, ownMsg: ownMsg, got: got, ok: ok}
}

func (r *detRecv) Step(ch radio.Channel, fb radio.Feedback) radio.Action {
	if !r.inited {
		r.inited = true
		r.bits = r.p.bits()
		r.base = r.start
		r.own0 = r.ownKey - 1
	}
	switch r.pc {
	case 0:
		return r.round()
	case 1: // feedback of the p0 probe
		if fb.Status != radio.Silence {
			r.heard = true
			return r.take(r.prefix << 1)
		}
		p1 := r.prefix<<1 | 1
		if r.ownKey > 0 && (r.own0>>uint(r.bits-r.x-1)) == p1 {
			return r.take(p1)
		}
		r.pc = 2
		return radio.Listen(r.base + uint64(p1))
	case 2: // feedback of the p1 probe
		if fb.Status != radio.Silence {
			r.heard = true
			return r.take(r.prefix<<1 | 1)
		}
		// No key matches: no sender in N+(v).
		return r.finish()
	case 3: // feedback of the stage-two fetch
		if fb.Status == radio.Received {
			if m, isInt := fb.Payload.(int); isInt {
				*r.got, *r.ok = m, true
			}
		}
		return r.finish()
	default:
		return radio.Halt()
	}
}

// round begins search round x: resolve what the receiver's own key
// contributes, and probe the 0-extension of the live prefix when it
// doesn't settle the bit by itself.
func (r *detRecv) round() radio.Action {
	if r.x >= r.bits {
		return r.conclude()
	}
	p0 := r.prefix << 1
	if r.ownKey > 0 && (r.own0>>uint(r.bits-r.x-1)) == p0 {
		return r.take(p0)
	}
	r.pc = 1
	return radio.Listen(r.base + uint64(p0))
}

// take commits the round's winning prefix and moves to the next round.
func (r *detRecv) take(prefix int) radio.Action {
	r.prefix = prefix
	r.base += uint64(1) << uint(r.x+1)
	r.x++
	r.pc = 0
	return r.round()
}

// conclude runs the post-search logic: deliver the key itself (single-stage), the receiver's own message
// (own key won), or fetch stage two.
func (r *detRecv) conclude() radio.Action {
	key := r.prefix + 1
	if !r.p.TwoStage() {
		// In single-stage, the key is the message itself.
		*r.got, *r.ok = key, true
		return r.finish()
	}
	if r.ownKey > 0 && key == r.ownKey {
		// Our own key is the minimum; the message is our own.
		*r.got, *r.ok = r.ownMsg, true
		return r.finish()
	}
	if !r.heard {
		// Defensive: cannot happen when key != ownKey, but keep the
		// invariant that we only fetch what the channel promised.
		return r.finish()
	}
	// Stage two: fetch the message at the slot indexed by the winning ID.
	r.pc = 3
	return radio.Listen(r.base + uint64(r.prefix))
}

func (r *detRecv) finish() radio.Action {
	r.pc = 4
	return radio.Sleep(r.start + r.p.Slots() - 1)
}

// LocalSendProc transmits in the single slot of the trivial LOCAL
// SR-communication (deterministic, collision-free) as an inline step
// proc.
func LocalSendProc(start uint64, payload any) radio.Proc {
	done := false
	return radio.ProcFunc(func(ch radio.Channel, fb radio.Feedback) radio.Action {
		if done {
			return radio.Halt()
		}
		done = true
		return radio.Transmit(start, payload)
	})
}

// LocalReceiveProc listens in the single LOCAL slot as an inline step
// proc; everything heard (copied out of the engine's delivery buffer)
// is stored through got.
func LocalReceiveProc(start uint64, got *[]any) radio.Proc {
	listened := false
	return radio.ProcFunc(func(ch radio.Channel, fb radio.Feedback) radio.Action {
		if !listened {
			listened = true
			return radio.Listen(start)
		}
		if len(fb.Payloads) > 0 {
			*got = append([]any(nil), fb.Payloads...)
		}
		return radio.Halt()
	})
}
