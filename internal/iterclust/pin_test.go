package iterclust

import (
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/radio"
)

// The port pin reduces the full event stream and per-device outcomes of
// fixed scenarios to digests generated from the pre-port blocking
// implementation. The ported step machines must reproduce them byte for
// byte; regenerate only with -update-pin and a reviewed diff.
var updatePin = flag.Bool("update-pin", false, "rewrite testdata/port_pin.txt from the current implementation")

func evString(ev radio.Event) string {
	kind := "?"
	switch ev.Kind {
	case radio.EventTransmit:
		kind = "tx"
	case radio.EventReceive:
		kind = "rx"
	case radio.EventSilence:
		kind = "sil"
	case radio.EventNoise:
		kind = "noise"
	}
	return fmt.Sprintf("%d %d %s %v %d", ev.Slot, ev.Dev, kind, ev.Payload, ev.From)
}

func comparePin(t *testing.T, got string) {
	t.Helper()
	path := filepath.Join("testdata", "port_pin.txt")
	if *updatePin {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing pin file (generate with -update-pin): %v", err)
	}
	if got != string(want) {
		t.Errorf("port pin diverged from the pre-port reference:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestPortPin(t *testing.T) {
	scens := []struct {
		name string
		g    *graph.Graph
		p    func(g *graph.Graph) Params
		seed uint64
	}{
		{"nocd-path8", graph.Path(8), func(g *graph.Graph) Params {
			p := NewParams(radio.NoCD, g.N(), g.MaxDegree())
			p.Iterations = 4
			return p
		}, 3},
		{"cd-thm12-gnp10", graph.GNP(10, 0.3, 2), func(g *graph.Graph) Params {
			p := NewTheorem12Params(g.N(), g.MaxDegree(), 0.5)
			p.Iterations = 4
			return p
		}, 5},
		{"local-cycle9", graph.Cycle(9), func(g *graph.Graph) Params {
			p := NewParams(radio.Local, g.N(), g.MaxDegree())
			p.Iterations = 4
			return p
		}, 7},
	}
	var sb strings.Builder
	for _, sc := range scens {
		n := sc.g.N()
		p := sc.p(sc.g)
		devs := make([]DeviceResult, n)
		h := fnv.New64a()
		pop := make([]radio.Device, n)
		for v := 0; v < n; v++ {
			pop[v].Proc = Proc(p, v == 0, "pin", &devs[v])
		}
		res, err := radio.RunDevices(radio.Config{Graph: sc.g, Model: p.Model, Seed: sc.seed,
			MaxSlots: 1 << 62,
			Trace:    func(ev radio.Event) { fmt.Fprintln(h, evString(ev)) }}, pop)
		if err != nil {
			t.Fatalf("%s: %v", sc.name, err)
		}
		oh := fnv.New64a()
		for v, d := range devs {
			fmt.Fprintf(oh, "%d %v %v %d\n", v, d.Informed, d.Msg, d.Label)
		}
		fmt.Fprintf(&sb, "%s events=%d trace=%016x out=%016x slots=%d maxE=%d totE=%d\n",
			sc.name, res.Events, h.Sum64(), oh.Sum64(), res.Slots, res.MaxEnergy(), res.TotalEnergy())
	}
	comparePin(t, sb.String())
}
