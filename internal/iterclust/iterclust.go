// Package iterclust implements the randomized iterative-clustering
// Broadcast algorithms of Section 5 of the paper:
//
//   - Theorem 11 (LOCAL, CD, No-CD): O(log n) refinement iterations with
//     p = 1/2 and s = 1 shrink the good labeling to a single root w.h.p.,
//     then the Lemma 10 Broadcast runs with d = 0. Time O(n log D log^2 n)
//     and energy O(log D log^2 n) in No-CD; O(n log n) time and O(log n)
//     energy in LOCAL; O(log^2 n) energy in CD (via the Remark 9
//     pre-check).
//   - Theorem 12 (CD): p = log^{-eps/2} n and s = log n reach at most
//     log n roots in O(log n / (eps log log n)) iterations, then Lemma 10
//     runs with d = log n, trading a log^eps n factor of time for an
//     eps log log n factor of energy.
//
// Every device executes the same slot layout derived from (n, Delta,
// model, parameters); no global coordinator exists.
package iterclust

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/labeling"
	"repro/internal/radio"
	"repro/internal/rng"
)

// Params configures one run; all fields are global knowledge.
type Params struct {
	// Model is the channel model (NoCD, CD, or Local).
	Model radio.Model
	// Iterations is the number of labeling refinements.
	Iterations int
	// S is the refinement sweep parameter s.
	S int
	// P is the probability a root keeps layer 0 in each refinement.
	P float64
	// FinalD is the G_L* diameter bound handed to the Lemma 10 Broadcast.
	FinalD int
	// Layers is the layer bound for sweeps (the paper uses n).
	Layers int
	// SR is the SR-communication window specification.
	SR cluster.Spec
	// Sims optionally reuses a per-goroutine simulator cache
	// (radio.SimCache). Purely an allocation optimization for repeated
	// runs on one topology; measurements and determinism are unaffected.
	Sims *radio.SimCache
}

// NewParams returns the Theorem 11 parameterization (p = 1/2, s = 1,
// Theta(log n) iterations, d = 0) for the given model.
func NewParams(model radio.Model, n, delta int) Params {
	return Params{
		Model:      model,
		Iterations: 6*rng.Log2Ceil(n) + 10,
		S:          1,
		P:          0.5,
		FinalD:     0,
		Layers:     n,
		SR:         cluster.NewSpec(model, n, delta),
	}
}

// NewTheorem12Params returns the Theorem 12 parameterization for the CD
// model: p = log^{-eps/2} n, s = ceil(log2 n), enough iterations to reach
// at most log n roots, and d = ceil(log2 n) for the final Broadcast.
func NewTheorem12Params(n, delta int, eps float64) Params {
	if eps <= 0 || eps >= 1 {
		eps = 0.5
	}
	logN := float64(rng.Log2Ceil(n) + 1)
	p := math.Pow(logN, -eps/2)
	// Iterations: shrink n roots to log n: log(n/log n)/log(1/p), padded.
	iters := int(math.Ceil(math.Log(float64(n))/math.Log(1/p))) + 4
	return Params{
		Model:      radio.CD,
		Iterations: iters,
		S:          rng.Log2Ceil(n) + 1,
		P:          p,
		FinalD:     rng.Log2Ceil(n) + 1,
		Layers:     n,
		SR:         cluster.NewSpec(radio.CD, n, delta),
	}
}

// Slots returns the exact total schedule length of a run.
func (p Params) Slots() uint64 {
	per := cluster.RefineSlots(p.SR, p.Layers, p.S)
	return uint64(p.Iterations)*per + cluster.BroadcastSlots(p.SR, p.Layers, p.FinalD)
}

// DeviceResult is one device's view after the protocol.
type DeviceResult struct {
	// Informed reports whether the device holds the broadcast message.
	Informed bool
	// Msg is the received message (nil if not informed).
	Msg any
	// Label is the device's final good-labeling layer.
	Label int
}

// RunCont is the continuation form of the device side of the protocol
// starting at slot 1: Iterations labeling refinements followed by the
// Lemma 10 Broadcast, resuming with k when the schedule ends. isSource
// marks the broadcasting vertex (which holds msg); out is complete
// before k resumes. The same continuation runs on the physical network
// or through the Theorem 3 LOCAL-over-No-CD simulation (Corollary 13).
func RunCont(p Params, isSource bool, msg any, out *DeviceResult, k radio.Cont) radio.Cont {
	per := cluster.RefineSlots(p.SR, p.Layers, p.S)
	lab := 0 // the trivial all-zero good labeling
	var iter func(it int, t uint64) radio.Cont
	iter = func(it int, t uint64) radio.Cont {
		if it == p.Iterations {
			b := &cluster.Broadcaster{SR: p.SR, Layers: p.Layers}
			return radio.Do(func() {
				b.Label, b.Has, b.Msg = lab, isSource, msg
			}, b.BroadcastCont(t, p.FinalD, radio.Do(func() {
				out.Informed = b.Has
				out.Msg = b.Msg
				out.Label = lab
			}, k)))
		}
		r := &cluster.Refiner{SR: p.SR, Layers: p.Layers}
		return radio.EvalCh(func(ch radio.Channel) radio.Cont {
			becomeRoot := lab == 0 && rng.Bernoulli(ch.Rand(), p.P)
			r.Old = lab
			return r.RefineCont(t, p.S, becomeRoot,
				radio.Do(func() { lab = r.New }, iter(it+1, t+per)))
		})
	}
	return iter(0, 1)
}

// Proc returns the device step machine for one device. isSource marks
// the broadcasting vertex (which holds msg); out receives the device's
// final state.
func Proc(p Params, isSource bool, msg any, out *DeviceResult) radio.Proc {
	return radio.ContProc(func(ch radio.Channel) radio.Cont {
		return RunCont(p, isSource, msg, out, nil)
	})
}

// Outcome aggregates a whole-network run.
type Outcome struct {
	// Result is the simulator's measurement.
	Result *radio.Result
	// Devices holds the per-device final states.
	Devices []DeviceResult
	// Labels is the final good labeling (for validation).
	Labels labeling.Labeling
}

// AllInformed reports whether every device holds the message.
func (o *Outcome) AllInformed() bool {
	for _, d := range o.Devices {
		if !d.Informed {
			return false
		}
	}
	return true
}

// Roots returns the number of layer-0 vertices in the final labeling.
func (o *Outcome) Roots() int {
	return len(o.Labels.Roots())
}

// Broadcast runs the full algorithm on g from the given source vertex.
func Broadcast(g *graph.Graph, source int, msg any, p Params, seed uint64) (*Outcome, error) {
	if source < 0 || source >= g.N() {
		return nil, fmt.Errorf("iterclust: source %d out of range", source)
	}
	n := g.N()
	devs := make([]DeviceResult, n)
	pop := make([]radio.Device, n)
	for v := 0; v < n; v++ {
		pop[v].Proc = Proc(p, v == source, msg, &devs[v])
	}
	res, err := radio.RunDevices(radio.Config{Graph: g, Model: p.Model, Seed: seed, Sims: p.Sims}, pop)
	if err != nil {
		return nil, err
	}
	labels := make(labeling.Labeling, n)
	for v := range labels {
		labels[v] = devs[v].Label
	}
	return &Outcome{Result: res, Devices: devs, Labels: labels}, nil
}
