package iterclust

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/labeling"
	"repro/internal/radio"
)

func TestBroadcastInformsEveryoneLocal(t *testing.T) {
	gs := []*graph.Graph{
		graph.Path(24), graph.Star(24), graph.GNP(32, 0.15, 1),
		graph.RandomTree(32, 2), graph.Grid(5, 6), graph.Cycle(20),
	}
	for _, g := range gs {
		p := NewParams(radio.Local, g.N(), g.MaxDegree())
		out, err := Broadcast(g, 0, "payload", p, 7)
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		if !out.AllInformed() {
			t.Errorf("%s: not all informed", g.Name())
		}
		for v, d := range out.Devices {
			if d.Msg != "payload" {
				t.Errorf("%s: device %d got %v", g.Name(), v, d.Msg)
			}
		}
		if err := out.Labels.Validate(g); err != nil {
			t.Errorf("%s: final labeling invalid: %v", g.Name(), err)
		}
		if out.Roots() != 1 {
			t.Errorf("%s: %d roots after refinement", g.Name(), out.Roots())
		}
	}
}

func TestBroadcastInformsEveryoneCD(t *testing.T) {
	gs := []*graph.Graph{graph.Path(16), graph.GNP(24, 0.2, 3), graph.Star(20)}
	for _, g := range gs {
		p := NewParams(radio.CD, g.N(), g.MaxDegree())
		out, err := Broadcast(g, g.N()-1, 99, p, 11)
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		if !out.AllInformed() {
			t.Errorf("%s: not all informed", g.Name())
		}
		if err := out.Labels.Validate(g); err != nil {
			t.Errorf("%s: final labeling invalid: %v", g.Name(), err)
		}
	}
}

func TestBroadcastInformsEveryoneNoCD(t *testing.T) {
	gs := []*graph.Graph{graph.Path(12), graph.GNP(20, 0.25, 5), graph.K2k(8)}
	for _, g := range gs {
		p := NewParams(radio.NoCD, g.N(), g.MaxDegree())
		out, err := Broadcast(g, 0, "m", p, 13)
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		if !out.AllInformed() {
			t.Errorf("%s: not all informed", g.Name())
		}
		if err := out.Labels.Validate(g); err != nil {
			t.Errorf("%s: final labeling invalid: %v", g.Name(), err)
		}
	}
}

func TestTheorem12CD(t *testing.T) {
	g := graph.GNP(24, 0.2, 9)
	p := NewTheorem12Params(g.N(), g.MaxDegree(), 0.5)
	out, err := Broadcast(g, 0, "m12", p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !out.AllInformed() {
		t.Error("Theorem 12 run did not inform everyone")
	}
	if err := out.Labels.Validate(g); err != nil {
		t.Errorf("labeling invalid: %v", err)
	}
	// Theorem 12 only guarantees <= log n roots (then d = log n covers it).
	if out.Roots() > p.FinalD+1 {
		t.Errorf("%d roots exceed the d=%d bound", out.Roots(), p.FinalD)
	}
}

func TestRefinementShrinksRoots(t *testing.T) {
	// After Theta(log n) iterations the labeling must have exactly one
	// root (w.h.p.; deterministic seeds make this reproducible).
	for seed := uint64(0); seed < 5; seed++ {
		g := graph.Grid(4, 6)
		p := NewParams(radio.Local, g.N(), g.MaxDegree())
		out, err := Broadcast(g, 0, nil, p, seed)
		if err != nil {
			t.Fatal(err)
		}
		if out.Roots() != 1 {
			t.Errorf("seed %d: %d roots", seed, out.Roots())
		}
	}
}

func TestEnergyScalesPolylogLocal(t *testing.T) {
	// LOCAL energy is O(log n): quadrupling n (16 -> 64) must grow max
	// energy by far less than 4x (a linear-energy algorithm would
	// quadruple it; log growth gives ~1.5x).
	measure := func(n int) int {
		g := graph.GNP(n, 0.2, 2)
		p := NewParams(radio.Local, g.N(), g.MaxDegree())
		out, err := Broadcast(g, 0, "x", p, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !out.AllInformed() {
			t.Fatalf("n=%d: incomplete broadcast", n)
		}
		return out.Result.MaxEnergy()
	}
	e16, e64 := measure(16), measure(64)
	ratio := float64(e64) / float64(e16)
	if ratio > 2.5 {
		t.Errorf("energy grew %vx from n=16 (%d) to n=64 (%d); expected logarithmic growth",
			ratio, e16, e64)
	}
}

func TestCDEnergyBelowNoCD(t *testing.T) {
	// The Remark 9 pre-check should make CD receivers far cheaper than
	// No-CD receivers on the same topology.
	g := graph.GNP(24, 0.2, 4)
	pc := NewParams(radio.CD, g.N(), g.MaxDegree())
	pn := NewParams(radio.NoCD, g.N(), g.MaxDegree())
	oc, err := Broadcast(g, 0, "x", pc, 5)
	if err != nil {
		t.Fatal(err)
	}
	on, err := Broadcast(g, 0, "x", pn, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !oc.AllInformed() || !on.AllInformed() {
		t.Fatal("broadcast incomplete")
	}
	if oc.Result.MaxEnergy() >= on.Result.MaxEnergy() {
		t.Errorf("CD energy %d !< No-CD energy %d", oc.Result.MaxEnergy(), on.Result.MaxEnergy())
	}
}

func TestScheduleLengthMatches(t *testing.T) {
	g := graph.Path(10)
	p := NewParams(radio.Local, g.N(), g.MaxDegree())
	out, err := Broadcast(g, 0, "x", p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out.Result.Slots > p.Slots() {
		t.Errorf("used slot %d beyond schedule %d", out.Result.Slots, p.Slots())
	}
}

func TestSourceValidation(t *testing.T) {
	g := graph.Path(4)
	p := NewParams(radio.Local, 4, 2)
	if _, err := Broadcast(g, -1, nil, p, 0); err == nil {
		t.Error("negative source accepted")
	}
	if _, err := Broadcast(g, 4, nil, p, 0); err == nil {
		t.Error("out-of-range source accepted")
	}
}

func TestSingleVertexBroadcast(t *testing.T) {
	g := graph.New(1)
	p := NewParams(radio.Local, 1, 1)
	out, err := Broadcast(g, 0, "solo", p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !out.AllInformed() {
		t.Error("lone source not informed")
	}
}

func TestTwoVertexAllModels(t *testing.T) {
	for _, model := range []radio.Model{radio.Local, radio.CD, radio.NoCD} {
		g := graph.Path(2)
		p := NewParams(model, 2, 1)
		out, err := Broadcast(g, 0, 5, p, 2)
		if err != nil {
			t.Fatalf("%v: %v", model, err)
		}
		if !out.AllInformed() {
			t.Errorf("%v: not informed", model)
		}
	}
}

func TestIntermediateLabelingsStayGood(t *testing.T) {
	// Run refinements only (no broadcast) step by step and validate the
	// labeling after every iteration — the paper's central invariant.
	g := graph.GNP(20, 0.25, 8)
	n := g.N()
	const iters = 6
	sr := cluster.NewSpec(radio.Local, n, g.MaxDegree())
	labels := make([]int, n)
	perIter := make([][]int, iters)
	for i := range perIter {
		perIter[i] = make([]int, n)
	}
	per := cluster.RefineSlots(sr, n, 1)
	pop := make([]radio.Device, n)
	for v := 0; v < n; v++ {
		v := v
		pop[v].Proc = radio.ContProc(func(ch radio.Channel) radio.Cont {
			lab := 0
			var iter func(it int, t uint64) radio.Cont
			iter = func(it int, t uint64) radio.Cont {
				if it == iters {
					return radio.Do(func() { labels[v] = lab }, nil)
				}
				r := &cluster.Refiner{SR: sr, Layers: n}
				return radio.EvalCh(func(ch radio.Channel) radio.Cont {
					becomeRoot := lab == 0 && ch.Rand().Float64() < 0.5
					r.Old = lab
					return r.RefineCont(t, 1, becomeRoot, radio.Do(func() {
						lab = r.New
						perIter[it][v] = lab
					}, iter(it+1, t+per)))
				})
			}
			return iter(0, 1)
		})
	}
	if _, err := radio.RunDevices(radio.Config{Graph: g, Model: radio.Local, Seed: 4}, pop); err != nil {
		t.Fatal(err)
	}
	prevRoots := n + 1
	for it := 0; it < iters; it++ {
		l := labeling.Labeling(perIter[it])
		if err := l.Validate(g); err != nil {
			t.Fatalf("iteration %d: invalid labeling: %v", it, err)
		}
		roots := len(l.Roots())
		if roots > prevRoots {
			t.Errorf("iteration %d: roots grew %d -> %d", it, prevRoots, roots)
		}
		prevRoots = roots
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	g := graph.GNP(16, 0.3, 1)
	p := NewParams(radio.CD, g.N(), g.MaxDegree())
	a, err := Broadcast(g, 0, "d", p, 77)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Broadcast(g, 0, "d", p, 77)
	if err != nil {
		t.Fatal(err)
	}
	if a.Result.Slots != b.Result.Slots || a.Result.Events != b.Result.Events {
		t.Error("identical seeds diverged")
	}
	for v := range a.Labels {
		if a.Labels[v] != b.Labels[v] {
			t.Errorf("label of %d differs across identical runs", v)
		}
	}
}
