package leader

import (
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/radio"
)

// The port pin reduces the full event stream and per-device outcomes of
// fixed scenarios to digests generated from the pre-port blocking
// implementation. The ported step machines must reproduce them byte for
// byte; regenerate only with -update-pin and a reviewed diff.
var updatePin = flag.Bool("update-pin", false, "rewrite testdata/port_pin.txt from the current implementation")

func evString(ev radio.Event) string {
	kind := "?"
	switch ev.Kind {
	case radio.EventTransmit:
		kind = "tx"
	case radio.EventReceive:
		kind = "rx"
	case radio.EventSilence:
		kind = "sil"
	case radio.EventNoise:
		kind = "noise"
	}
	return fmt.Sprintf("%d %d %s %v %d", ev.Slot, ev.Dev, kind, ev.Payload, ev.From)
}

func comparePin(t *testing.T, got string) {
	t.Helper()
	path := filepath.Join("testdata", "port_pin.txt")
	if *updatePin {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing pin file (generate with -update-pin): %v", err)
	}
	if got != string(want) {
		t.Errorf("port pin diverged from the pre-port reference:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestPortPin(t *testing.T) {
	type scen struct {
		name string
		g    *graph.Graph
		cfg  radio.Config
		pop  func(n int, outcomes []Outcome) []radio.Device
	}
	scens := []scen{
		{
			name: "electcd-clique8-s3",
			g:    graph.Clique(8),
			cfg:  radio.Config{Model: radio.CD, Seed: 3},
			pop: func(n int, outcomes []Outcome) []radio.Device {
				ps := make([]radio.Device, n)
				for i := 0; i < n; i++ {
					ps[i].Proc = ElectCDProc(1, true, n, 4000, &outcomes[i])
				}
				return ps
			},
		},
		{
			name: "electcd-clique8-s9",
			g:    graph.Clique(8),
			cfg:  radio.Config{Model: radio.CD, Seed: 9},
			pop: func(n int, outcomes []Outcome) []radio.Device {
				ps := make([]radio.Device, n)
				for i := 0; i < n; i++ {
					ps[i].Proc = ElectCDProc(1, true, n, 4000, &outcomes[i])
				}
				return ps
			},
		},
		{
			name: "electcd-subset-clique10",
			g:    graph.Clique(10),
			cfg:  radio.Config{Model: radio.CD, Seed: 7},
			pop: func(n int, outcomes []Outcome) []radio.Device {
				ps := make([]radio.Device, n)
				for i := 0; i < n; i++ {
					ps[i].Proc = ElectCDProc(1, i < 5, 5, 4000, &outcomes[i])
				}
				return ps
			},
		},
		{
			name: "electnocd-clique8",
			g:    graph.Clique(8),
			cfg:  radio.Config{Model: radio.NoCD, Seed: 5},
			pop: func(n int, outcomes []Outcome) []radio.Device {
				ps := make([]radio.Device, n)
				for i := 0; i < n; i++ {
					ps[i].Proc = ElectNoCDProc(1, true, n, 6, &outcomes[i])
				}
				return ps
			},
		},
		{
			name: "detelectcd-clique6",
			g:    graph.Clique(6),
			cfg:  radio.Config{Model: radio.CD, Seed: 1, IDSpace: 16, IDs: []int{10, 2, 9, 4, 7, 6}},
			pop: func(n int, outcomes []Outcome) []radio.Device {
				contend := []bool{false, true, true, true, false, true}
				ps := make([]radio.Device, n)
				for i := 0; i < n; i++ {
					ps[i].Proc = DetElectCDProc(1, contend[i], &outcomes[i])
				}
				return ps
			},
		},
	}
	var sb strings.Builder
	for _, sc := range scens {
		n := sc.g.N()
		outcomes := make([]Outcome, n)
		h := fnv.New64a()
		cfg := sc.cfg
		cfg.Graph = sc.g
		cfg.Trace = func(ev radio.Event) { fmt.Fprintln(h, evString(ev)) }
		res, err := radio.RunDevices(cfg, sc.pop(n, outcomes))
		if err != nil {
			t.Fatalf("%s: %v", sc.name, err)
		}
		oh := fnv.New64a()
		for i, o := range outcomes {
			fmt.Fprintf(oh, "%d %d %v %d\n", i, o.Leader, o.IsLeader, o.Slot)
		}
		fmt.Fprintf(&sb, "%s events=%d trace=%016x out=%016x slots=%d maxE=%d totE=%d\n",
			sc.name, res.Events, h.Sum64(), oh.Sum64(), res.Slots, res.MaxEnergy(), res.TotalEnergy())
	}
	comparePin(t, sb.String())
}
