package leader

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/radio"
)

func TestScheduleDoublingOnNoise(t *testing.T) {
	s := NewSchedule(1024) // max exponent 10
	if s.Max() != 10 {
		t.Fatalf("Max = %d", s.Max())
	}
	want := []int{1, 2, 4, 8, 10, 10}
	for i, w := range want {
		if s.K() != w {
			t.Fatalf("step %d: K = %d, want %d", i, s.K(), w)
		}
		s.Update(radio.Noise)
	}
	// After noise at the top it must be scanning (K stays in range).
	for i := 0; i < 100; i++ {
		if s.K() < 1 || s.K() > 10 {
			t.Fatalf("scan K out of range: %d", s.K())
		}
		s.Update(radio.Silence)
	}
}

func TestScheduleBinarySearch(t *testing.T) {
	s := NewSchedule(1 << 16) // max 16
	// Noise at 1, 2, 4, 8; silence at 16 -> search (8, 16].
	for i := 0; i < 4; i++ {
		s.Update(radio.Noise)
	}
	if s.K() != 16 {
		t.Fatalf("K = %d, want 16", s.K())
	}
	s.Update(radio.Silence)
	if s.K() != 12 {
		t.Fatalf("binary search midpoint = %d, want 12", s.K())
	}
	s.Update(radio.Noise) // lo=12
	if s.K() != 14 {
		t.Fatalf("K = %d, want 14", s.K())
	}
	s.Update(radio.Silence) // hi=14
	if s.K() != 13 {
		t.Fatalf("K = %d, want 13", s.K())
	}
	s.Update(radio.Silence) // hi=13, lo=12: scan around 13
	if s.K() != 13 {
		t.Fatalf("scan base = %d, want 13", s.K())
	}
}

func TestScheduleScanCoversRange(t *testing.T) {
	s := NewSchedule(64) // max 6
	// Silence immediately: scan around 1.
	s.Update(radio.Silence)
	seen := make(map[int]bool)
	for i := 0; i < 40; i++ {
		seen[s.K()] = true
		s.Update(radio.Silence)
	}
	for k := 1; k <= 6; k++ {
		if !seen[k] {
			t.Errorf("scan never visited exponent %d (saw %v)", k, seen)
		}
	}
}

func TestScheduleReceivedIsNoOp(t *testing.T) {
	s := NewSchedule(16)
	k := s.K()
	s.Update(radio.Received)
	if s.K() != k {
		t.Error("Received changed the schedule")
	}
}

func TestNewScheduleSmall(t *testing.T) {
	for _, n := range []int{0, 1, 2} {
		s := NewSchedule(n)
		if s.Max() < 1 || s.K() < 1 {
			t.Errorf("NewSchedule(%d): Max=%d K=%d", n, s.Max(), s.K())
		}
	}
}

func TestElectCDElectsUniqueLeader(t *testing.T) {
	for _, n := range []int{2, 5, 16, 64} {
		for seed := uint64(0); seed < 3; seed++ {
			g := graph.Clique(n)
			outcomes := make([]Outcome, n)
			pop := make([]radio.Device, n)
			for i := 0; i < n; i++ {
				pop[i].Proc = ElectCDProc(1, true, n, 4000, &outcomes[i])
			}
			res, err := radio.RunDevices(radio.Config{Graph: g, Model: radio.CD, Seed: seed}, pop)
			if err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
			leaders := 0
			leaderIdx := -1
			for i, o := range outcomes {
				if o.IsLeader {
					leaders++
					leaderIdx = i
				}
			}
			if leaders != 1 {
				t.Fatalf("n=%d seed=%d: %d self-declared leaders", n, seed, leaders)
			}
			for i, o := range outcomes {
				if o.Leader != leaderIdx {
					t.Fatalf("n=%d seed=%d: device %d thinks leader is %d, want %d",
						n, seed, i, o.Leader, leaderIdx)
				}
			}
			// Energy sanity: O(log log n + tail); generously bounded.
			if res.MaxEnergy() > 400 {
				t.Errorf("n=%d seed=%d: max energy %d suspiciously high", n, seed, res.MaxEnergy())
			}
		}
	}
}

func TestElectCDNonContendersLearnLeader(t *testing.T) {
	const n = 10
	g := graph.Clique(n)
	outcomes := make([]Outcome, n)
	pop := make([]radio.Device, n)
	for i := 0; i < n; i++ {
		// Only devices 0..4 contend.
		pop[i].Proc = ElectCDProc(1, i < 5, 5, 4000, &outcomes[i])
	}
	if _, err := radio.RunDevices(radio.Config{Graph: g, Model: radio.CD, Seed: 7}, pop); err != nil {
		t.Fatal(err)
	}
	leader := outcomes[0].Leader
	if leader < 0 || leader >= 5 {
		t.Fatalf("leader %d not a contender", leader)
	}
	for i, o := range outcomes {
		if o.Leader != leader {
			t.Errorf("device %d learned leader %d, want %d", i, o.Leader, leader)
		}
	}
}

func TestElectNoCDProducesUniqueTransmissionSlot(t *testing.T) {
	// Success criterion per the paper: some slot has exactly one
	// transmitter. Detected via trace.
	for _, n := range []int{2, 8, 32} {
		success := false
		for seed := uint64(0); seed < 4 && !success; seed++ {
			g := graph.Clique(n)
			outcomes := make([]Outcome, n)
			pop := make([]radio.Device, n)
			for i := 0; i < n; i++ {
				pop[i].Proc = ElectNoCDProc(1, true, n, 12, &outcomes[i])
			}
			txPerSlot := make(map[uint64]int)
			cfg := radio.Config{Graph: g, Model: radio.NoCD, Seed: seed,
				Trace: func(ev radio.Event) {
					if ev.Kind == radio.EventTransmit {
						txPerSlot[ev.Slot]++
					}
				}}
			if _, err := radio.RunDevices(cfg, pop); err != nil {
				t.Fatal(err)
			}
			for _, c := range txPerSlot {
				if c == 1 {
					success = true
					break
				}
			}
		}
		if !success {
			t.Errorf("n=%d: no unique-transmitter slot in 4 seeded runs", n)
		}
	}
}

func TestNoCDSlotsMatchesSchedule(t *testing.T) {
	const n, trials = 32, 5
	g := graph.Clique(n)
	outcomes := make([]Outcome, n)
	pop := make([]radio.Device, n)
	for i := 0; i < n; i++ {
		pop[i].Proc = ElectNoCDProc(1, true, n, trials, &outcomes[i])
	}
	res, err := radio.RunDevices(radio.Config{Graph: g, Model: radio.NoCD, Seed: 1}, pop)
	if err != nil {
		t.Fatal(err)
	}
	if res.Slots != NoCDSlots(n, trials) {
		t.Errorf("slots = %d, want %d", res.Slots, NoCDSlots(n, trials))
	}
}

func TestDetElectCDElectsMaxID(t *testing.T) {
	cases := []struct {
		ids     []int
		idSpace int
		wantIdx int
	}{
		{[]int{5, 3, 7, 1}, 8, 2},
		{[]int{1, 2}, 16, 1},
		{[]int{9}, 16, 0},
		{[]int{2, 4, 6, 8, 10, 12}, 16, 5},
	}
	for _, c := range cases {
		n := len(c.ids)
		g := graph.Clique(n)
		if n == 1 {
			g = graph.New(1)
		}
		outcomes := make([]Outcome, n)
		pop := make([]radio.Device, n)
		for i := 0; i < n; i++ {
			pop[i].Proc = DetElectCDProc(1, true, &outcomes[i])
		}
		res, err := radio.RunDevices(radio.Config{Graph: g, Model: radio.CD,
			IDSpace: c.idSpace, IDs: c.ids}, pop)
		if err != nil {
			t.Fatalf("ids=%v: %v", c.ids, err)
		}
		if !outcomes[c.wantIdx].IsLeader {
			t.Errorf("ids=%v: device %d (max ID) not leader", c.ids, c.wantIdx)
		}
		for i, o := range outcomes {
			if o.Leader != c.wantIdx {
				t.Errorf("ids=%v: device %d sees leader %d, want %d", c.ids, i, o.Leader, c.wantIdx)
			}
		}
		if want := DetElectCDSlots(c.idSpace); res.Slots != want {
			t.Errorf("ids=%v: slots = %d, want %d", c.ids, res.Slots, want)
		}
		// Deterministic energy bound: log N + 1 per device.
		if res.MaxEnergy() > int(DetElectCDSlots(c.idSpace)) {
			t.Errorf("ids=%v: max energy %d exceeds logN+1", c.ids, res.MaxEnergy())
		}
	}
}

func TestDetElectCDSubsetContenders(t *testing.T) {
	// Only some devices contend; the max ID among contenders wins.
	const n = 6
	g := graph.Clique(n)
	ids := []int{10, 2, 9, 4, 7, 6}
	contend := []bool{false, true, true, true, false, true}
	outcomes := make([]Outcome, n)
	pop := make([]radio.Device, n)
	for i := 0; i < n; i++ {
		pop[i].Proc = DetElectCDProc(1, contend[i], &outcomes[i])
	}
	if _, err := radio.RunDevices(radio.Config{Graph: g, Model: radio.CD, IDSpace: 16, IDs: ids}, pop); err != nil {
		t.Fatal(err)
	}
	// Contender IDs: 2, 9, 4, 6 -> max is 9 at index 2.
	if !outcomes[2].IsLeader {
		t.Error("expected device 2 (ID 9) to win")
	}
	for i, o := range outcomes {
		if o.Leader != 2 {
			t.Errorf("device %d sees leader %d", i, o.Leader)
		}
	}
}

func TestDetElectCDNoContenders(t *testing.T) {
	const n = 4
	g := graph.Clique(n)
	outcomes := make([]Outcome, n)
	pop := make([]radio.Device, n)
	for i := 0; i < n; i++ {
		pop[i].Proc = DetElectCDProc(1, false, &outcomes[i])
	}
	if _, err := radio.RunDevices(radio.Config{Graph: g, Model: radio.CD, IDSpace: 8}, pop); err != nil {
		t.Fatal(err)
	}
	for i, o := range outcomes {
		if o.Leader != -1 || o.IsLeader {
			t.Errorf("device %d elected %d from zero contenders", i, o.Leader)
		}
	}
}

func TestDetElectCDRequiresIDs(t *testing.T) {
	g := graph.Clique(2)
	outcomes := make([]Outcome, 2)
	pop := make([]radio.Device, 2)
	for i := range pop {
		pop[i].Proc = DetElectCDProc(1, true, &outcomes[i])
	}
	if _, err := radio.RunDevices(radio.Config{Graph: g, Model: radio.CD}, pop); err == nil {
		t.Fatal("DetElectCD without IDs should surface a panic error")
	}
}

func TestElectCDTimeGrowsSlowly(t *testing.T) {
	// Expected completion slot should be small even for large cliques
	// (O(log log n) + exponential tail).
	meanSlot := func(n int) float64 {
		total := 0.0
		const runs = 8
		for seed := uint64(0); seed < runs; seed++ {
			g := graph.Clique(n)
			outcomes := make([]Outcome, n)
			pop := make([]radio.Device, n)
			for i := 0; i < n; i++ {
				pop[i].Proc = ElectCDProc(1, true, n, 4000, &outcomes[i])
			}
			if _, err := radio.RunDevices(radio.Config{Graph: g, Model: radio.CD, Seed: seed}, pop); err != nil {
				t.Fatal(err)
			}
			total += float64(outcomes[0].Slot)
		}
		return total / runs
	}
	m64 := meanSlot(64)
	if m64 > 60 {
		t.Errorf("mean completion slot for n=64 is %v; expected small", m64)
	}
}
