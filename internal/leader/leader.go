package leader

import (
	"repro/internal/radio"
	"repro/internal/rng"
)

// Outcome reports a device's view after a leader-election protocol.
type Outcome struct {
	// Leader is the elected leader's announced identity, or -1 if this
	// device does not know one.
	Leader int
	// IsLeader reports whether this device knows itself to be the leader.
	IsLeader bool
	// Slot is the relative slot (within the protocol) at which the device
	// learned the outcome, or 0.
	Slot uint64
}

// ElectCD runs randomized uniform leader election on a single-hop (clique)
// network in the CD model with full duplex, following the Nakano–Olariu
// schedule shape: all contenders transmit with the same probability
// 2^{-k_t} while listening; the election completes in the first slot with
// exactly one transmitter. Expected time is O(log log n') plus an
// exponential tail, matching Lemma 8's source algorithm [30].
//
// contender marks devices that compete (non-contenders only listen).
// maxContenders is the known upper bound n'. maxSlots bounds the attempt
// count; if exhausted the device gives up (Leader -1), which happens with
// probability exponentially small in maxSlots.
//
// The device's payload in a winning slot is its Index, so every listener
// learns the leader's identity directly.
func ElectCD(e *radio.Env, start uint64, contender bool, maxContenders int, maxSlots int) Outcome {
	s := NewSchedule(maxContenders)
	for t := 0; t < maxSlots; t++ {
		slot := start + uint64(t)
		if contender && rng.BernoulliPow2(e.Rand(), s.K()) {
			fb := e.TransmitListen(slot, e.Index())
			switch fb.Status {
			case radio.Silence:
				// No other transmitter: this device is the unique
				// transmitter, hence the leader.
				return Outcome{Leader: e.Index(), IsLeader: true, Slot: uint64(t + 1)}
			case radio.Received:
				// Exactly one other transmitted: two transmitters total,
				// so the slot failed; the channel carried noise for
				// listeners.
				s.Update(radio.Noise)
			case radio.Noise:
				s.Update(radio.Noise)
			}
			continue
		}
		fb := e.Listen(slot)
		if fb.Status == radio.Received {
			if id, ok := fb.Payload.(int); ok {
				return Outcome{Leader: id, Slot: uint64(t + 1)}
			}
		}
		s.Update(fb.Status)
	}
	e.SleepUntil(start + uint64(maxSlots) - 1)
	return Outcome{Leader: -1}
}

// NoCDSlots returns the schedule length of ElectNoCD for the given bound
// and trial count.
func NoCDSlots(maxContenders, trials int) uint64 {
	k := rng.Log2Ceil(maxContenders) + 1
	return uint64(k * trials)
}

// ElectNoCD runs the randomized No-CD single-hop election schedule: for
// every exponent k in {1..ceil(log n')+1}, contenders perform `trials`
// Bernoulli(2^{-k}) transmissions (full duplex). Without collision
// detection a transmitter cannot distinguish "I was alone" from "several
// others transmitted", so in-protocol termination detection is impossible
// in this simple scheme; per the paper's termination condition
// ("a leader is elected once a message is successfully sent"), the caller
// detects success externally — the first slot with a unique transmitter —
// via a radio trace. The schedule length realizes the
// Theta(log n' * trials) time shape of the No-CD bound [31].
//
// The return value is the device's own view: Received feedback if it ever
// heard a unique transmitter.
func ElectNoCD(e *radio.Env, start uint64, contender bool, maxContenders, trials int) Outcome {
	out := Outcome{Leader: -1}
	slot := start
	kMax := rng.Log2Ceil(maxContenders) + 1
	for k := 1; k <= kMax; k++ {
		for t := 0; t < trials; t++ {
			if contender && rng.BernoulliPow2(e.Rand(), k) {
				e.TransmitListen(slot, e.Index())
			} else {
				fb := e.Listen(slot)
				if fb.Status == radio.Received && out.Leader == -1 {
					if id, ok := fb.Payload.(int); ok {
						out.Leader = id
						out.Slot = slot - start + 1
					}
				}
			}
			slot++
		}
	}
	return out
}

// DetElectCDSlots returns the schedule length of DetElectCD for ID space
// bound N: one slot per ID bit plus a final announcement slot.
func DetElectCDSlots(idSpace int) uint64 {
	return uint64(rng.Log2Ceil(idSpace) + 1)
}

// DetElectCD runs deterministic leader election on a clique in the CD
// model by binary search on ID bits, electing the contender with the
// largest ID. Every device (contender or not) spends Theta(log N) energy,
// realizing the deterministic Theta(log N) single-hop bound discussed in
// the paper's related work [7, 20].
//
// Devices must have assigned IDs (radio.Config.IDSpace > 0).
func DetElectCD(e *radio.Env, start uint64, contender bool) Outcome {
	n := e.IDSpace()
	if n == 0 {
		panic("leader: DetElectCD requires an ID assignment")
	}
	bits := rng.Log2Ceil(n)
	id := e.AssignedID()
	// matching: this contender's high bits agree with the running maximum
	// prefix, so it is still in the race.
	matching := contender
	prefix := 0 // discovered bits of the maximum contender ID
	slot := start
	for b := bits - 1; b >= 0; b-- {
		bit := (id >> uint(b)) & 1
		if matching && bit == 1 {
			// Bid: matching IDs with a 1 at this position transmit.
			e.Transmit(slot, id)
			prefix = prefix<<1 | 1
		} else {
			fb := e.Listen(slot)
			if fb.Status == radio.Silence {
				prefix = prefix << 1
				// A matching contender here has bit 0, so it still matches.
			} else {
				prefix = prefix<<1 | 1
				// A matching listener has bit 0 < 1: out of the race.
				matching = false
			}
		}
		slot++
	}
	// Announcement slot: the unique survivor transmits its index.
	if matching {
		e.Transmit(slot, e.Index())
		return Outcome{Leader: e.Index(), IsLeader: true, Slot: slot - start + 1}
	}
	fb := e.Listen(slot)
	if fb.Status == radio.Received {
		if idx, ok := fb.Payload.(int); ok {
			return Outcome{Leader: idx, Slot: slot - start + 1}
		}
	}
	return Outcome{Leader: -1}
}
