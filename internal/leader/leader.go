package leader

import (
	"repro/internal/radio"
	"repro/internal/rng"
)

// Outcome reports a device's view after a leader-election protocol.
type Outcome struct {
	// Leader is the elected leader's announced identity, or -1 if this
	// device does not know one.
	Leader int
	// IsLeader reports whether this device knows itself to be the leader.
	IsLeader bool
	// Slot is the relative slot (within the protocol) at which the device
	// learned the outcome, or 0.
	Slot uint64
}

// ElectCDProc returns the device step machine for randomized uniform
// leader election on a single-hop (clique) network in the CD model with
// full duplex, following the Nakano–Olariu schedule shape: all
// contenders transmit with the same probability 2^{-k_t} while
// listening; the election completes in the first slot with exactly one
// transmitter. Expected time is O(log log n') plus an exponential tail,
// matching Lemma 8's source algorithm [30].
//
// contender marks devices that compete (non-contenders only listen).
// maxContenders is the known upper bound n'. maxSlots bounds the attempt
// count; if exhausted the device gives up (Leader -1), which happens
// with probability exponentially small in maxSlots. The device halts as
// soon as it learns the outcome; out is complete at halt.
//
// The device's payload in a winning slot is its Index, so every listener
// learns the leader's identity directly.
func ElectCDProc(start uint64, contender bool, maxContenders, maxSlots int, out *Outcome) radio.Proc {
	return &electCDProc{start: start, contender: contender,
		maxContenders: maxContenders, maxSlots: maxSlots, out: out}
}

type electCDProc struct {
	start         uint64
	contender     bool
	maxContenders int
	maxSlots      int
	out           *Outcome

	sched *Schedule
	t     int   // decisions made so far; the next slot is start+t
	await uint8 // 1: TransmitListen feedback pending; 2: Listen feedback pending
	done  bool
}

func (d *electCDProc) Step(ch radio.Channel, fb radio.Feedback) radio.Action {
	if d.done {
		return radio.Halt()
	}
	if d.sched == nil {
		d.sched = NewSchedule(d.maxContenders)
		*d.out = Outcome{Leader: -1}
	}
	switch d.await {
	case 1:
		d.await = 0
		switch fb.Status {
		case radio.Silence:
			// No other transmitter: this device is the unique
			// transmitter, hence the leader.
			*d.out = Outcome{Leader: ch.Index(), IsLeader: true, Slot: uint64(d.t)}
			return radio.Halt()
		case radio.Received, radio.Noise:
			// Received: exactly one other transmitted, so two transmitters
			// total and the slot failed (noise for listeners).
			d.sched.Update(radio.Noise)
		}
	case 2:
		d.await = 0
		if fb.Status == radio.Received {
			if id, ok := fb.Payload.(int); ok {
				*d.out = Outcome{Leader: id, Slot: uint64(d.t)}
				return radio.Halt()
			}
		}
		d.sched.Update(fb.Status)
	}
	if d.t >= d.maxSlots {
		d.done = true
		return radio.Sleep(d.start + uint64(d.maxSlots) - 1)
	}
	slot := d.start + uint64(d.t)
	d.t++
	if d.contender && rng.BernoulliPow2(ch.Rand(), d.sched.K()) {
		d.await = 1
		return radio.TransmitListen(slot, radio.BoxInt(ch, ch.Index()))
	}
	d.await = 2
	return radio.Listen(slot)
}

// NoCDSlots returns the schedule length of ElectNoCD for the given bound
// and trial count.
func NoCDSlots(maxContenders, trials int) uint64 {
	k := rng.Log2Ceil(maxContenders) + 1
	return uint64(k * trials)
}

// ElectNoCDProc returns the device step machine for the randomized
// No-CD single-hop election schedule: for every exponent k in
// {1..ceil(log n')+1}, contenders perform `trials` Bernoulli(2^{-k})
// transmissions (full duplex). Without collision detection a
// transmitter cannot distinguish "I was alone" from "several others
// transmitted", so in-protocol termination detection is impossible in
// this simple scheme; per the paper's termination condition ("a leader
// is elected once a message is successfully sent"), the caller detects
// success externally — the first slot with a unique transmitter — via a
// radio trace. The schedule length realizes the Theta(log n' * trials)
// time shape of the No-CD bound [31].
//
// out is the device's own view: Received feedback if it ever heard a
// unique transmitter.
func ElectNoCDProc(start uint64, contender bool, maxContenders, trials int, out *Outcome) radio.Proc {
	return &electNoCDProc{start: start, contender: contender,
		maxContenders: maxContenders, trials: trials, out: out}
}

type electNoCDProc struct {
	start         uint64
	contender     bool
	maxContenders int
	trials        int
	out           *Outcome

	init   bool
	kMax   int
	k, t   int
	slot   uint64
	listen bool   // a Listen's feedback is pending
	lsSlot uint64 // the slot of that Listen
}

func (d *electNoCDProc) Step(ch radio.Channel, fb radio.Feedback) radio.Action {
	if !d.init {
		d.init = true
		d.kMax = rng.Log2Ceil(d.maxContenders) + 1
		d.k = 1
		d.slot = d.start
		*d.out = Outcome{Leader: -1}
	}
	if d.listen {
		d.listen = false
		if fb.Status == radio.Received && d.out.Leader == -1 {
			if id, ok := fb.Payload.(int); ok {
				d.out.Leader = id
				d.out.Slot = d.lsSlot - d.start + 1
			}
		}
	}
	for {
		if d.k > d.kMax {
			return radio.Halt()
		}
		if d.t >= d.trials {
			d.t = 0
			d.k++
			continue
		}
		slot := d.slot
		d.slot++
		d.t++
		if d.contender && rng.BernoulliPow2(ch.Rand(), d.k) {
			return radio.TransmitListen(slot, radio.BoxInt(ch, ch.Index()))
		}
		d.listen = true
		d.lsSlot = slot
		return radio.Listen(slot)
	}
}

// DetElectCDSlots returns the schedule length of DetElectCD for ID space
// bound N: one slot per ID bit plus a final announcement slot.
func DetElectCDSlots(idSpace int) uint64 {
	return uint64(rng.Log2Ceil(idSpace) + 1)
}

// DetElectCDProc returns the device step machine for deterministic
// leader election on a clique in the CD model by binary search on ID
// bits, electing the contender with the largest ID. Every device
// (contender or not) spends Theta(log N) energy, realizing the
// deterministic Theta(log N) single-hop bound discussed in the paper's
// related work [7, 20].
//
// Devices must have assigned IDs (radio.Config.IDSpace > 0).
func DetElectCDProc(start uint64, contender bool, out *Outcome) radio.Proc {
	return &detElectCDProc{start: start, contender: contender, out: out}
}

type detElectCDProc struct {
	start     uint64
	contender bool
	out       *Outcome

	init     bool
	bits     int
	id       int
	matching bool // still in the race: high bits agree with the running maximum
	prefix   int  // discovered bits of the maximum contender ID
	b        int
	slot     uint64
	await    uint8 // 1: bit-slot listen pending; 2: announcement listen pending
	done     bool
}

func (d *detElectCDProc) Step(ch radio.Channel, fb radio.Feedback) radio.Action {
	if d.done {
		return radio.Halt()
	}
	if !d.init {
		n := ch.IDSpace()
		if n == 0 {
			panic("leader: DetElectCD requires an ID assignment")
		}
		d.init = true
		d.bits = rng.Log2Ceil(n)
		d.id = ch.AssignedID()
		d.matching = d.contender
		d.b = d.bits - 1
		d.slot = d.start
		*d.out = Outcome{Leader: -1}
	}
	switch d.await {
	case 1:
		d.await = 0
		if fb.Status == radio.Silence {
			prefixShift(d, 0)
		} else {
			// A matching listener has bit 0 < 1: out of the race.
			prefixShift(d, 1)
			d.matching = false
		}
	case 2:
		d.await = 0
		if fb.Status == radio.Received {
			if idx, ok := fb.Payload.(int); ok {
				*d.out = Outcome{Leader: idx, Slot: d.slot - d.start + 1}
			}
		}
		return radio.Halt()
	}
	if d.b >= 0 {
		bit := (d.id >> uint(d.b)) & 1
		d.b--
		slot := d.slot
		d.slot++
		if d.matching && bit == 1 {
			// Bid: matching IDs with a 1 at this position transmit.
			prefixShift(d, 1)
			return radio.Transmit(slot, radio.BoxInt(ch, d.id))
		}
		d.await = 1
		return radio.Listen(slot)
	}
	// Announcement slot: the unique survivor transmits its index.
	if d.matching {
		*d.out = Outcome{Leader: ch.Index(), IsLeader: true, Slot: d.slot - d.start + 1}
		d.done = true
		return radio.Transmit(d.slot, radio.BoxInt(ch, ch.Index()))
	}
	d.await = 2
	return radio.Listen(d.slot)
}

func prefixShift(d *detElectCDProc, bit int) {
	d.prefix = d.prefix<<1 | bit
}
