// Package leader implements single-hop (clique) leader election, the
// substrate that Section 4's generic transformation turns into
// SR-communication, and that Theorem 2 connects to the energy complexity
// of Broadcast.
//
// The central object is Schedule, a uniform transmission-probability
// controller in the style of Nakano–Olariu [30]: at every step t all
// contenders use the same probability 2^{-k_t}, where k_t depends only on
// the channel feedback history. The schedule drives both the clique
// leader-election algorithms here and the Lemma 8 SR-communication in
// package srcomm.
package leader

import "repro/internal/radio"

// Schedule is the uniform probability-exponent controller. It seeks the
// exponent k* with 2^{-k*} ~ 1/(number of contenders), at which a trial
// succeeds (exactly one transmitter) with constant probability.
//
// It proceeds in three phases, following the shape of the Nakano–Olariu
// uniform leader-election protocol:
//
//  1. doubling: k = 1, 2, 4, ... while the channel is noisy;
//  2. binary search between the last noisy and first silent exponent;
//  3. scan: cycle through exponents in an expanding window around the
//     search result, guaranteeing every exponent in [1, Max] recurs.
//
// Phase 3 makes the controller robust to the (random) feedback misleading
// the binary search: each full sweep revisits the ideal exponent, so
// failure decays geometrically in the number of epochs regardless of
// earlier bad luck. A trial outcome is reported with Update; the exponent
// to use next comes from K.
type Schedule struct {
	// Max is the largest usable exponent (ceil(log2 of the contender
	// bound), at least 1).
	max   int
	phase int // 0 doubling, 1 binary search, 2 scan
	k     int
	lo    int // noisy exponent (binary search lower bound)
	hi    int // silent exponent (binary search upper bound)
	base  int // scan center
	off   int // scan offset (0, 1, 2, ...); probes base, base-1, base+1, ...
}

// NewSchedule returns a controller for at most maxContenders contenders
// (at least 1).
func NewSchedule(maxContenders int) *Schedule {
	m := 1
	for v := 2; v < maxContenders; v *= 2 {
		m++
	}
	if m < 1 {
		m = 1
	}
	return &Schedule{max: m, k: 1}
}

// Max returns the largest exponent the schedule uses.
func (s *Schedule) Max() int { return s.max }

// K returns the exponent for the current trial: contenders transmit with
// probability 2^{-K()}.
func (s *Schedule) K() int { return s.k }

// Update advances the controller given the channel status observed at the
// current exponent. Callers stop calling once they observe
// radio.Received; Update treats Received as a no-op.
func (s *Schedule) Update(st radio.Status) {
	if st == radio.Received {
		return
	}
	switch s.phase {
	case 0: // doubling
		if st == radio.Noise {
			if s.k >= s.max {
				// Still noisy at the top exponent: fall back to scanning
				// from the top.
				s.enterScan(s.max)
				return
			}
			s.lo = s.k
			s.k *= 2
			if s.k > s.max {
				s.k = s.max
			}
			return
		}
		// Silence: the ideal exponent is in (lo, k].
		s.hi = s.k
		if s.hi-s.lo <= 1 {
			s.enterScan(s.hi)
			return
		}
		s.phase = 1
		s.k = (s.lo + s.hi) / 2
	case 1: // binary search over (lo, hi]
		if st == radio.Noise {
			s.lo = s.k
		} else {
			s.hi = s.k
		}
		if s.hi-s.lo <= 1 {
			s.enterScan(s.hi)
			return
		}
		s.k = (s.lo + s.hi) / 2
	default: // scan
		s.advanceScan()
	}
}

func (s *Schedule) enterScan(center int) {
	s.phase = 2
	s.base = clamp(center, 1, s.max)
	s.off = 0
	s.k = s.base
}

// advanceScan steps the probe sequence base, base-1, base+1, base-2,
// base+2, ..., clamped to [1, max]; after covering the whole range it
// restarts at base.
func (s *Schedule) advanceScan() {
	for {
		s.off++
		if s.off > 2*s.max {
			s.off = 0
			s.k = s.base
			return
		}
		step := (s.off + 1) / 2
		var cand int
		if s.off%2 == 1 {
			cand = s.base - step
		} else {
			cand = s.base + step
		}
		if cand >= 1 && cand <= s.max {
			s.k = cand
			return
		}
	}
}

func clamp(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
