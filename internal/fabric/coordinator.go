package fabric

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"encoding/json"

	"repro/internal/experiment"
	"repro/internal/telemetry"
)

// CoordinatorConfig parameterizes StartCoordinator.
type CoordinatorConfig struct {
	// Controller is the lease controller the coordinator drives. The
	// coordinator takes ownership: it is the only goroutine that touches
	// it, and Close is called when the run ends.
	Controller *experiment.LeaseController
	// ListenAddr is the TCP address workers dial (host:port; port 0
	// picks a free one — Addr returns the resolved address).
	ListenAddr string
	// LeaseTimeout bounds worker silence: a worker that sends nothing
	// for this long is evicted and its leases reissued, and an
	// outstanding lease older than half this is eligible for stealing
	// when workers idle. Default 10s.
	LeaseTimeout time.Duration
	// Telemetry, if non-nil, receives the fleet view: the per-worker
	// snapshots workers ship inside heartbeat and result frames
	// (Recorder.WorkerShard), lease round-trip latencies, lifecycle
	// events, and per-worker /metrics gauges. Committed counters and
	// traces flow through the controller's own recorder; pass the same
	// one here.
	Telemetry *telemetry.Recorder
	// Interrupt, if non-nil, stops the run gracefully when receivable:
	// no new leases are issued, workers are dismissed, and Wait returns
	// experiment.ErrInterrupted. The journal holds every admitted batch.
	Interrupt <-chan struct{}
	// Log receives worker join/leave/evict lines; nil discards them.
	Log *log.Logger
}

// workerState is the coordinator's view of one connected worker. Owned
// by the event loop.
type workerState struct {
	id       int
	name     string
	addr     string
	capacity int
	lastSeen time.Time
	// held maps each outstanding lease to its issue time.
	held map[experiment.Lease]time.Time
	// out feeds the connection's writer goroutine; closing it hangs up.
	out chan *msg
	// flushed is closed by the writer goroutine once out is drained, so
	// the coordinator can wait for the final done frame to reach the
	// wire before the process exits.
	flushed chan struct{}
	conn    net.Conn
}

// coordinator events, all delivered to the single event-loop goroutine.
type evJoin struct {
	conn  net.Conn
	hello *helloMsg
}
type evMsg struct {
	id int
	m  *msg
}
type evGone struct {
	id  int
	err error
}
type evStatus struct{ reply chan FabricStatus }

// Coordinator runs one distributed sweep: it listens for workers,
// leases batches, admits results, and terminates when the controller
// reports every cell stopped.
type Coordinator struct {
	cfg      CoordinatorConfig
	ln       net.Listener
	events   chan any
	done     chan struct{} // closed when the event loop exits
	report   *experiment.Report
	err      error
	lastView struct {
		sync.Mutex
		s FabricStatus
	}
}

// FabricStatus is the /fabric page document: per-worker health and
// lease ages plus run progress.
type FabricStatus struct {
	Addr            string         `json:"addr"`
	Version         string         `json:"version"`
	Workers         []WorkerStatus `json:"workers"`
	Leases          int            `json:"leases"`
	Cells           int            `json:"cells"`
	StoppedCells    int            `json:"stoppedCells"`
	CommittedTrials int            `json:"committedTrials"`
	Done            bool           `json:"done"`
	// Fleet is the telemetry view of every worker that took part —
	// including evicted ones, flagged stale with their last shipped
	// snapshot retained. Present only when the coordinator runs with
	// telemetry.
	Fleet []telemetry.WorkerSnapshot `json:"fleet,omitempty"`
}

// WorkerStatus describes one connected worker.
type WorkerStatus struct {
	Name          string  `json:"name"`
	Addr          string  `json:"addr"`
	Capacity      int     `json:"capacity"`
	Leases        []Age   `json:"leases,omitempty"`
	LastSeenMilli float64 `json:"lastSeenMilli"`
}

// Age is one outstanding lease and how long it has been out.
type Age struct {
	Lease    experiment.Lease `json:"lease"`
	AgeMilli float64          `json:"ageMilli"`
}

// StartCoordinator binds the listener and starts the event loop. The
// run proceeds in the background; Wait blocks for the outcome.
func StartCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.Controller == nil {
		return nil, errors.New("fabric: CoordinatorConfig.Controller is required")
	}
	if cfg.LeaseTimeout <= 0 {
		cfg.LeaseTimeout = 10 * time.Second
	}
	ln, err := net.Listen("tcp", cfg.ListenAddr)
	if err != nil {
		return nil, err
	}
	co := &Coordinator{cfg: cfg, ln: ln, events: make(chan any, 64), done: make(chan struct{})}
	cfg.Telemetry.Phase("trials")
	cfg.Telemetry.AddMetrics(co.writeFabricMetrics)
	go co.acceptLoop()
	go co.run()
	return co, nil
}

// writeFabricMetrics appends the per-worker families to the /metrics
// exposition from the last published view — never the event loop, so a
// scrape cannot stall the run.
func (co *Coordinator) writeFabricMetrics(w io.Writer) {
	co.lastView.Lock()
	s := co.lastView.s
	co.lastView.Unlock()
	fmt.Fprintf(w, "# HELP sweep_fabric_workers Connected fabric workers.\n# TYPE sweep_fabric_workers gauge\n")
	fmt.Fprintf(w, "sweep_fabric_workers %d\n", len(s.Workers))
	fmt.Fprintf(w, "# HELP sweep_fabric_worker_leases Outstanding leases per worker.\n# TYPE sweep_fabric_worker_leases gauge\n")
	for _, ws := range s.Workers {
		fmt.Fprintf(w, "sweep_fabric_worker_leases{worker=\"%s\"} %d\n", telemetry.EscapeLabelValue(ws.Name), len(ws.Leases))
	}
	fmt.Fprintf(w, "# HELP sweep_fabric_worker_oldest_lease_age_seconds Age of each worker's oldest outstanding lease.\n# TYPE sweep_fabric_worker_oldest_lease_age_seconds gauge\n")
	for _, ws := range s.Workers {
		var oldest float64
		if len(ws.Leases) > 0 {
			oldest = ws.Leases[0].AgeMilli / 1e3 // published sorted, oldest first
		}
		fmt.Fprintf(w, "sweep_fabric_worker_oldest_lease_age_seconds{worker=\"%s\"} %g\n", telemetry.EscapeLabelValue(ws.Name), oldest)
	}
	fmt.Fprintf(w, "# HELP sweep_fabric_worker_last_seen_seconds Seconds since each worker's last frame.\n# TYPE sweep_fabric_worker_last_seen_seconds gauge\n")
	for _, ws := range s.Workers {
		fmt.Fprintf(w, "sweep_fabric_worker_last_seen_seconds{worker=\"%s\"} %g\n", telemetry.EscapeLabelValue(ws.Name), ws.LastSeenMilli/1e3)
	}
}

// Addr returns the resolved listen address.
func (co *Coordinator) Addr() string { return co.ln.Addr().String() }

// Wait blocks until the run completes (report, nil), is interrupted
// (nil, experiment.ErrInterrupted), or dies on a fatal error such as a
// journal write failure.
func (co *Coordinator) Wait() (*experiment.Report, error) {
	<-co.done
	return co.report, co.err
}

// MountStatus registers the /fabric endpoint on mux — designed to be
// passed to telemetry.StartStatusServer so worker health lives next to
// /status.
func (co *Coordinator) MountStatus(mux *http.ServeMux) {
	mux.HandleFunc("/fabric", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(co.Status())
	})
}

// Status snapshots the fabric. It asks the event loop and falls back
// to the last published view if the loop is busy or finished, so the
// endpoint never blocks a run and keeps answering after it ends.
func (co *Coordinator) Status() FabricStatus {
	req := evStatus{reply: make(chan FabricStatus, 1)}
	select {
	case co.events <- req:
		select {
		case s := <-req.reply:
			return s
		case <-time.After(time.Second):
		case <-co.done:
		}
	case <-co.done:
	default:
	}
	co.lastView.Lock()
	defer co.lastView.Unlock()
	return co.lastView.s
}

func (co *Coordinator) logf(format string, args ...any) {
	if co.cfg.Log != nil {
		co.cfg.Log.Printf(format, args...)
	}
}

// acceptLoop admits connections and performs the hello read off the
// event loop, so a slow dialer can't stall the run.
func (co *Coordinator) acceptLoop() {
	for {
		conn, err := co.ln.Accept()
		if err != nil {
			return // listener closed: run over
		}
		go func(conn net.Conn) {
			conn.SetReadDeadline(time.Now().Add(10 * time.Second))
			m, err := readMsg(conn)
			if err != nil || m.Type != msgHello || m.Hello == nil {
				conn.Close()
				return
			}
			conn.SetReadDeadline(time.Time{})
			select {
			case co.events <- evJoin{conn: conn, hello: m.Hello}:
			case <-co.done:
				conn.Close()
			}
		}(conn)
	}
}

// run is the event loop — the only goroutine that touches the
// controller and the worker table.
func (co *Coordinator) run() {
	defer close(co.done)
	defer co.ln.Close()

	lc := co.cfg.Controller
	rec := co.cfg.Telemetry
	workers := map[int]*workerState{}
	nextID := 1
	version := telemetry.CodeVersion()
	tick := time.NewTicker(co.cfg.LeaseTimeout / 4)
	defer tick.Stop()

	finish := func(rep *experiment.Report, err error) {
		for _, w := range workers {
			w.send(&msg{Type: msgDone})
			close(w.out)
		}
		// Wait (bounded) for each writer to flush its done frame: the
		// caller may be a CLI that exits the moment we return, and a
		// worker that never hears done redials until its patience runs
		// out instead of exiting cleanly.
		deadline := time.After(2 * time.Second)
		for _, w := range workers {
			select {
			case <-w.flushed:
			case <-deadline:
			}
		}
		if cerr := lc.Close(); cerr != nil && err == nil {
			err = cerr
		}
		co.report, co.err = rep, err
	}

	publish := func() FabricStatus {
		s := FabricStatus{Addr: co.Addr(), Version: version, Done: lc.Done()}
		p := lc.Progress()
		s.Cells, s.StoppedCells, s.CommittedTrials = p.Cells, p.StoppedCells, p.CommittedTrials
		now := time.Now()
		for _, w := range workers {
			ws := WorkerStatus{Name: w.name, Addr: w.addr, Capacity: w.capacity,
				LastSeenMilli: float64(now.Sub(w.lastSeen)) / float64(time.Millisecond)}
			for l, t := range w.held {
				ws.Leases = append(ws.Leases, Age{Lease: l, AgeMilli: float64(now.Sub(t)) / float64(time.Millisecond)})
			}
			sort.Slice(ws.Leases, func(i, j int) bool { return ws.Leases[i].AgeMilli > ws.Leases[j].AgeMilli })
			s.Leases += len(ws.Leases)
			s.Workers = append(s.Workers, ws)
		}
		sort.Slice(s.Workers, func(i, j int) bool { return s.Workers[i].Name < s.Workers[j].Name })
		s.Fleet = rec.FleetWorkers()
		co.lastView.Lock()
		co.lastView.s = s
		co.lastView.Unlock()
		return s
	}

	// topUp fills one worker to capacity: fresh leases first, then — in
	// the endgame, when nothing fresh is issuable but the run isn't done
	// — a duplicate of the oldest sufficiently old lease held elsewhere
	// (work stealing). Admission deduplicates, so the duplicate is pure
	// insurance against the holder being slow or dead.
	topUp := func(w *workerState) {
		now := time.Now()
		for len(w.held) < w.capacity {
			l, ok := lc.Next()
			if !ok {
				break
			}
			w.held[l] = now
			w.send(&msg{Type: msgLease, Lease: &l})
			rec.Event("lease-grant", map[string]any{"worker": w.name, "cell": l.Cell, "lo": l.Lo, "hi": l.Hi})
		}
		stealAge := co.cfg.LeaseTimeout / 2
		for len(w.held) < w.capacity {
			var oldest *workerState
			var oldestLease experiment.Lease
			var oldestAt time.Time
			for _, o := range workers {
				for l, t := range o.held {
					if _, mine := w.held[l]; mine || o == w {
						continue
					}
					if now.Sub(t) >= stealAge && (oldest == nil || t.Before(oldestAt)) {
						oldest, oldestLease, oldestAt = o, l, t
					}
				}
			}
			if oldest == nil {
				break
			}
			w.held[oldestLease] = now
			w.send(&msg{Type: msgLease, Lease: &oldestLease})
			co.logf("fabric: stole lease cell=%d [%d,%d) from %s for %s",
				oldestLease.Cell, oldestLease.Lo, oldestLease.Hi, oldest.name, w.name)
			rec.Event("lease-steal", map[string]any{"worker": w.name, "from": oldest.name,
				"cell": oldestLease.Cell, "lo": oldestLease.Lo, "hi": oldestLease.Hi})
		}
	}

	// evict removes a worker and returns its leases to the pool. A
	// lease is only released if no other worker also holds a duplicate.
	evict := func(w *workerState, why string) {
		delete(workers, w.id)
		for l := range w.held {
			dup := false
			for _, o := range workers {
				if _, ok := o.held[l]; ok {
					dup = true
					break
				}
			}
			if !dup {
				lc.Release(l)
				rec.Event("lease-release", map[string]any{"worker": w.name, "cell": l.Cell, "lo": l.Lo, "hi": l.Hi})
			}
		}
		close(w.out)
		w.conn.Close()
		rec.WorkerGone(w.name)
		rec.Event("worker-leave", map[string]any{"worker": w.name, "reason": why, "leases": len(w.held)})
		co.logf("fabric: worker %s left (%s), %d leases returned", w.name, why, len(w.held))
		for _, o := range workers {
			topUp(o)
		}
	}

	if lc.Done() { // resumed journal already complete
		finish(lc.Report(), nil)
		return
	}

	for {
		select {
		case <-co.cfg.Interrupt:
			finish(nil, experiment.ErrInterrupted)
			return
		case <-tick.C:
			now := time.Now()
			for _, w := range workers {
				if now.Sub(w.lastSeen) > co.cfg.LeaseTimeout {
					evict(w, "heartbeat lapsed")
				}
			}
			for _, w := range workers {
				topUp(w)
			}
			publish()
		case ev := <-co.events:
			switch ev := ev.(type) {
			case evStatus:
				ev.reply <- publish()
			case evJoin:
				h := ev.hello
				if h.Version != version {
					writeMsg(ev.conn, &msg{Type: msgReject,
						Reason: fmt.Sprintf("code version mismatch: coordinator %q, worker %q", version, h.Version)})
					ev.conn.Close()
					co.logf("fabric: rejected worker %s: version %q (want %q)", h.Name, h.Version, version)
					continue
				}
				w := &workerState{id: nextID, name: h.Name, addr: ev.conn.RemoteAddr().String(),
					capacity: max(1, h.Capacity), lastSeen: time.Now(),
					held: map[experiment.Lease]time.Time{}, out: make(chan *msg, 64),
					flushed: make(chan struct{}), conn: ev.conn}
				nextID++
				workers[w.id] = w
				hb := int(co.cfg.LeaseTimeout / 3 / time.Millisecond)
				w.send(&msg{Type: msgWelcome, Welcome: &welcomeMsg{
					Version: version, Spec: lc.Config().Spec, HeartbeatMillis: max(1, hb)}})
				go writerLoop(w.conn, w.out, w.flushed)
				go co.readerLoop(w.id, w.conn)
				rec.WorkerSeen(w.name, w.addr, h.Version)
				rec.Event("worker-join", map[string]any{"worker": w.name, "addr": w.addr,
					"version": h.Version, "capacity": w.capacity})
				co.logf("fabric: worker %s joined from %s (capacity %d)", w.name, w.addr, w.capacity)
				topUp(w)
				// Re-publish immediately so /fabric and the /metrics worker
				// gauges include the newcomer without waiting out a tick.
				publish()
			case evGone:
				if w, ok := workers[ev.id]; ok {
					evict(w, fmt.Sprintf("connection lost: %v", ev.err))
				}
			case evMsg:
				w, ok := workers[ev.id]
				if !ok {
					continue // raced with eviction
				}
				w.lastSeen = time.Now()
				if ev.m.Telemetry != nil {
					// The worker's shipped snapshot replaces its fleet-table
					// entry wholesale; counters are monotonic per worker
					// process, so the view only moves forward.
					rec.WorkerShard(w.name, *ev.m.Telemetry)
				}
				switch ev.m.Type {
				case msgHeartbeat:
				case msgResult:
					rm := ev.m.Result
					if rm == nil {
						evict(w, "result frame without payload")
						continue
					}
					issued, held := w.held[rm.Lease]
					if !held {
						evict(w, fmt.Sprintf("result for unheld lease %+v", rm.Lease))
						continue
					}
					rec.LeaseRoundTrip(time.Since(issued))
					delete(w.held, rm.Lease)
					br, err := rm.record()
					if err != nil {
						// The worker computed garbage: its fault, not the
						// run's. The lease returns to the pool.
						lc.Release(rm.Lease)
						evict(w, fmt.Sprintf("bad batch record: %v", err))
						continue
					}
					if _, err := lc.Admit(br); err != nil {
						finish(nil, err) // journal write failure: fatal
						return
					}
					if lc.Done() {
						publish()
						finish(lc.Report(), nil)
						return
					}
					topUp(w)
				default:
					evict(w, fmt.Sprintf("unexpected %q frame", ev.m.Type))
				}
			}
		}
	}
}

// send enqueues without blocking the event loop; a worker whose writer
// is so far behind that 64 frames queue up is beyond saving, and
// dropping the frame lets the heartbeat timeout collect it.
func (w *workerState) send(m *msg) {
	select {
	case w.out <- m:
	default:
	}
}

// writerLoop drains a worker's outbound queue onto its connection.
func writerLoop(conn net.Conn, out <-chan *msg, flushed chan<- struct{}) {
	defer close(flushed)
	for m := range out {
		conn.SetWriteDeadline(time.Now().Add(30 * time.Second))
		if err := writeMsg(conn, m); err != nil {
			// The reader loop observes the broken connection and
			// reports the worker gone; just stop writing.
			return
		}
	}
}

// readerLoop delivers a worker's frames to the event loop; on any read
// error (EOF the instant a SIGKILLed worker's socket closes) it
// reports the worker gone.
func (co *Coordinator) readerLoop(id int, conn net.Conn) {
	for {
		m, err := readMsg(conn)
		if err != nil {
			select {
			case co.events <- evGone{id: id, err: err}:
			case <-co.done:
			}
			return
		}
		select {
		case co.events <- evMsg{id: id, m: m}:
		case <-co.done:
			return
		}
	}
}
