// Package fabric is the distributed sweep subsystem: a coordinator
// (cmd/sweepd) that owns the adaptive controller — spec, stopping
// decisions, checkpoint journal — and hands out batch leases over TCP
// to workers (cmd/sweep -worker) that run the trials and stream back
// merged moment state.
//
// The division of labor keeps every determinism invariant of
// internal/experiment intact: workers only ever execute (cell, lo, hi)
// batches with positional seeds and fold them into BatchRecords
// (experiment.FoldBatch), while the coordinator admits records through
// the same prefix-merge rule the local drive loop uses
// (experiment.LeaseController). Report JSON, committed trial counts,
// convergence traces, and the manifest's deterministic section are
// byte-identical to a single-machine run at any worker count, any
// lease-reassignment pattern, and across coordinator restarts.
//
// Fault tolerance is lease-based: the coordinator tracks per-worker
// liveness (any frame counts; idle workers heartbeat), evicts workers
// silent past the lease timeout, releases their leases for reissue,
// and near the end of a run duplicates the oldest outstanding lease to
// idle workers (work stealing). Duplicated or stale results are safe:
// admission deduplicates on the fixed batch grid, so a twice-run batch
// merges exactly once. Workers redial with bounded exponential backoff
// and re-register after a coordinator restart; the coordinator's
// journal resume re-issues exactly the batches that were in flight.
//
// Both sides stamp telemetry.CodeVersion into the handshake and the
// coordinator refuses mismatched workers: byte-identity across
// machines is only claimed at one code version.
package fabric

import (
	"encoding/binary"
	"fmt"
	"io"

	"encoding/json"

	"repro/internal/experiment"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/telemetry"
)

// Message types. The protocol is length-prefixed JSON: each frame is a
// uint32 LE payload length followed by one JSON-encoded msg. The
// worker speaks first (hello), the coordinator answers with welcome or
// reject, and from then on the coordinator sends lease/done while the
// worker sends result/heartbeat.
const (
	msgHello     = "hello"     // worker → coordinator: name, version, capacity
	msgWelcome   = "welcome"   // coordinator → worker: spec, heartbeat interval
	msgReject    = "reject"    // coordinator → worker: refusal (version mismatch)
	msgLease     = "lease"     // coordinator → worker: run batch [lo,hi) of cell
	msgResult    = "result"    // worker → coordinator: folded batch record
	msgHeartbeat = "heartbeat" // worker → coordinator: liveness while idle
	msgDone      = "done"      // coordinator → worker: run complete, disconnect
)

// maxFrame bounds a single frame. Specs and batch records are tiny;
// anything larger is a corrupt or hostile stream.
const maxFrame = 16 << 20

// msg is the wire envelope. Exactly one payload pointer is set,
// matching Type (heartbeat and done carry none).
type msg struct {
	Type    string            `json:"type"`
	Hello   *helloMsg         `json:"hello,omitempty"`
	Welcome *welcomeMsg       `json:"welcome,omitempty"`
	Lease   *experiment.Lease `json:"lease,omitempty"`
	Result  *resultMsg        `json:"result,omitempty"`
	// Telemetry rides worker → coordinator frames (heartbeat and
	// result): the worker's merged local telemetry snapshot, which the
	// coordinator folds into its fleet view (Recorder.WorkerShard).
	// Worker counters are monotonic for the life of the worker process,
	// so redials resume rather than reset them. Optional — an absent
	// snapshot just leaves the fleet view where it was.
	Telemetry *telemetry.Snapshot `json:"telemetry,omitempty"`
	// Reason explains a reject.
	Reason string `json:"reason,omitempty"`
}

// helloMsg introduces a worker.
type helloMsg struct {
	// Name identifies the worker in logs and on the /fabric page
	// (default host:pid, set by the worker).
	Name string `json:"name"`
	// Version is the worker's telemetry.CodeVersion; the coordinator
	// rejects a mismatch.
	Version string `json:"version"`
	// Capacity is how many leases the worker runs concurrently.
	Capacity int `json:"capacity"`
}

// welcomeMsg accepts a worker and ships everything it needs to execute
// leases: the normalized spec (the worker builds its own sweep.Runner
// from it — seeds are positional, so both sides resolve the identical
// trial stream) and the liveness contract.
type welcomeMsg struct {
	Version string     `json:"version"`
	Spec    sweep.Spec `json:"spec"`
	// HeartbeatMillis is how often an idle worker must send a frame;
	// the coordinator evicts after several missed intervals.
	HeartbeatMillis int `json:"heartbeatMillis"`
}

// resultMsg carries one executed batch back: the lease it answers and
// the folded record with moment state in the stable binary encoding
// (stats.EncodeMoments). Slots is the simulated-slot total across the
// batch's trials — throughput provenance mirrored by the worker's
// telemetry snapshot on the same frame, deliberately outside the
// record because it is not part of the deterministic state.
type resultMsg struct {
	Lease     experiment.Lease `json:"lease"`
	Errors    int              `json:"errors"`
	Completed int              `json:"completed"`
	Crashes   int              `json:"crashes,omitempty"`
	Sleeps    int              `json:"sleeps,omitempty"`
	Erasures  int              `json:"erasures,omitempty"`
	Moments   []byte           `json:"moments"`
	Slots     uint64           `json:"slots"`
}

// record converts the wire form back into the journal/admission form.
func (rm *resultMsg) record() (*experiment.BatchRecord, error) {
	moments, err := stats.DecodeMoments(rm.Moments)
	if err != nil {
		return nil, err
	}
	rec := &experiment.BatchRecord{
		Cell: rm.Lease.Cell, Lo: rm.Lease.Lo, Hi: rm.Lease.Hi,
		Errors: rm.Errors, Completed: rm.Completed,
		Crashes: rm.Crashes, Sleeps: rm.Sleeps, Erasures: rm.Erasures,
		Moments: moments,
	}
	if err := rec.Validate(); err != nil {
		return nil, err
	}
	return rec, nil
}

// writeMsg frames and writes one message. Safe for one writer per
// connection (each side dedicates a writer goroutine).
func writeMsg(w io.Writer, m *msg) error {
	payload, err := json.Marshal(m)
	if err != nil {
		return err
	}
	if len(payload) > maxFrame {
		return fmt.Errorf("fabric: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// readMsg reads and decodes one frame.
func readMsg(r io.Reader) (*msg, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("fabric: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	m := &msg{}
	if err := json.Unmarshal(payload, m); err != nil {
		return nil, fmt.Errorf("fabric: bad frame: %w", err)
	}
	return m, nil
}
