package fabric

import (
	"errors"
	"fmt"
	"log"
	"net"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/experiment"
	"repro/internal/radio"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// ErrVersionMismatch reports that the coordinator refused this worker
// because the two binaries are different code versions. Not retryable:
// the caller should exit with a configuration error, not redial.
var ErrVersionMismatch = errors.New("fabric: coordinator refused worker: code version mismatch")

// WorkerConfig parameterizes RunWorker.
type WorkerConfig struct {
	// Addr is the coordinator's host:port.
	Addr string
	// Name identifies this worker in coordinator logs and on /fabric
	// (default host:pid).
	Name string
	// Capacity is how many leases run concurrently (default
	// GOMAXPROCS).
	Capacity int
	// Patience bounds how long the worker keeps redialing an
	// unreachable coordinator before giving up (default 60s). The
	// window restarts after every successful session, so a worker
	// outlives any number of coordinator restarts as long as each
	// outage stays under Patience.
	Patience time.Duration
	// Interrupt, if non-nil, makes RunWorker return ErrInterrupted when
	// receivable.
	Interrupt <-chan struct{}
	// Log receives session lines; nil discards them.
	Log *log.Logger
}

// errDone distinguishes a clean "run complete" disconnect.
var errDone = errors.New("fabric: run complete")

// RunWorker dials the coordinator and executes leases until the
// coordinator says done (returns nil), the version check fails
// (ErrVersionMismatch), the redial patience runs out, or Interrupt
// fires (experiment.ErrInterrupted). Connection loss mid-session —
// including a coordinator restart — is not an error: the worker
// abandons in-flight work (the coordinator's journal and lease
// reassignment make that safe) and redials with bounded exponential
// backoff.
func RunWorker(cfg WorkerConfig) error {
	if cfg.Name == "" {
		host, _ := os.Hostname()
		cfg.Name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = runtime.GOMAXPROCS(0)
	}
	if cfg.Patience <= 0 {
		cfg.Patience = 60 * time.Second
	}
	logf := func(format string, args ...any) {
		if cfg.Log != nil {
			cfg.Log.Printf(format, args...)
		}
	}
	// One recorder for the life of the worker process — not per session —
	// so the counters the coordinator aggregates stay monotonic across
	// redials: a worker that rejoins resumes its shard, it never resets.
	rec := telemetry.New()
	rec.Shards(cfg.Capacity)

	backoff := 100 * time.Millisecond
	deadline := time.Now().Add(cfg.Patience)
	for {
		select {
		case <-cfg.Interrupt:
			return experiment.ErrInterrupted
		default:
		}
		conn, err := net.DialTimeout("tcp", cfg.Addr, 5*time.Second)
		if err == nil {
			err = workerSession(conn, cfg, rec, logf)
			conn.Close()
			switch {
			case errors.Is(err, errDone):
				return nil
			case errors.Is(err, ErrVersionMismatch), errors.Is(err, experiment.ErrInterrupted):
				return err
			}
			logf("fabric: session ended: %v; redialing", err)
			// The session worked; treat the outage as fresh.
			backoff = 100 * time.Millisecond
			deadline = time.Now().Add(cfg.Patience)
		} else {
			logf("fabric: dial %s: %v", cfg.Addr, err)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("fabric: coordinator %s unreachable for %v", cfg.Addr, cfg.Patience)
		}
		select {
		case <-cfg.Interrupt:
			return experiment.ErrInterrupted
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > 3*time.Second {
			backoff = 3 * time.Second
		}
	}
}

// workerSession runs one connection's lifetime: handshake, then
// executor goroutines folding leases into results until the stream
// breaks or the coordinator sends done. rec is the process-lifetime
// recorder whose merged snapshot ships on every outbound frame.
func workerSession(conn net.Conn, cfg WorkerConfig, rec *telemetry.Recorder, logf func(string, ...any)) error {
	hello := &msg{Type: msgHello, Hello: &helloMsg{
		Name: cfg.Name, Version: telemetry.CodeVersion(), Capacity: cfg.Capacity}}
	conn.SetWriteDeadline(time.Now().Add(10 * time.Second))
	if err := writeMsg(conn, hello); err != nil {
		return err
	}
	conn.SetWriteDeadline(time.Time{})
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	m, err := readMsg(conn)
	if err != nil {
		return err
	}
	conn.SetReadDeadline(time.Time{})
	switch m.Type {
	case msgReject:
		logf("fabric: rejected: %s", m.Reason)
		return ErrVersionMismatch
	case msgWelcome:
		if m.Welcome == nil {
			return errors.New("fabric: welcome frame without payload")
		}
	default:
		return fmt.Errorf("fabric: expected welcome, got %q", m.Type)
	}
	w := m.Welcome

	// Both sides resolve the identical Runner from the normalized spec;
	// seeds are positional, so a lease fully determines its trials.
	runner, err := sweep.NewRunner(w.Spec)
	if err != nil {
		return fmt.Errorf("fabric: coordinator spec does not resolve: %w", err)
	}
	tracked := make([][]workload.MeasureInfo, len(runner.Cells()))
	for cell := range tracked {
		tracked[cell] = experiment.TrackedMeasures(runner, cell)
	}
	logf("fabric: joined %s: %d cells, capacity %d", cfg.Addr, len(tracked), cfg.Capacity)

	stop := make(chan struct{})
	var stopOnce sync.Once
	halt := func() { stopOnce.Do(func() { close(stop) }) }
	defer halt()

	leases := make(chan experiment.Lease, cfg.Capacity)
	results := make(chan *msg, cfg.Capacity)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Capacity; i++ {
		wg.Add(1)
		go func(sh *telemetry.Shard) {
			defer wg.Done()
			sims := &radio.SimCache{}
			for {
				var l experiment.Lease
				select {
				case l = <-leases:
				case <-stop:
					return
				}
				sh.BatchStart()
				t0 := time.Now()
				buf := make([]sweep.Trial, l.Hi-l.Lo)
				runner.RunTrials(l.Cell, l.Lo, l.Hi, sims, buf)
				br := experiment.FoldBatch(tracked[l.Cell], l.Cell, l.Lo, l.Hi, buf)
				var slots uint64
				for i := range buf {
					slots += buf[i].Slots
				}
				sh.BatchDone(l.Cell, l.Hi-l.Lo, slots, time.Since(t0))
				sh.SetCache(telemetry.CacheCounts(sims.Stats()))
				rm := &resultMsg{Lease: l,
					Errors: br.Errors, Completed: br.Completed,
					Crashes: br.Crashes, Sleeps: br.Sleeps, Erasures: br.Erasures,
					Moments: stats.EncodeMoments(br.Moments), Slots: slots}
				select {
				case results <- &msg{Type: msgResult, Result: rm}:
				case <-stop:
					return
				}
			}
		}(rec.Shard(i))
	}

	// Writer: results and idle heartbeats share the connection.
	writeErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		hb := time.Duration(w.HeartbeatMillis) * time.Millisecond
		if hb <= 0 {
			hb = time.Second
		}
		t := time.NewTicker(hb)
		defer t.Stop()
		for {
			var out *msg
			select {
			case out = <-results:
			case <-t.C:
				out = &msg{Type: msgHeartbeat}
			case <-stop:
				return
			}
			// Every outbound frame carries the worker's merged telemetry:
			// heartbeats keep the coordinator's fleet view fresh while
			// idle, and result frames make it exact at run end (the shard
			// update for a batch happens before its result is queued).
			snap := rec.Snapshot()
			out.Telemetry = &snap
			conn.SetWriteDeadline(time.Now().Add(30 * time.Second))
			if err := writeMsg(conn, out); err != nil {
				select {
				case writeErr <- err:
				default:
				}
				halt()
				return
			}
		}
	}()

	// Interrupt watcher: closing the connection is what unblocks the
	// blocking read below.
	var interrupted bool
	if cfg.Interrupt != nil {
		wg.Add(1)
		go func() {
			defer wg.Done()
			select {
			case <-cfg.Interrupt:
				interrupted = true
				halt()
				conn.Close()
			case <-stop:
			}
		}()
	}

	// Reader drives the session on this goroutine.
	var sessionErr error
	for {
		m, err := readMsg(conn)
		if err != nil {
			select {
			case werr := <-writeErr:
				sessionErr = werr
			default:
				sessionErr = err
			}
			break
		}
		switch m.Type {
		case msgLease:
			if m.Lease == nil {
				sessionErr = errors.New("fabric: lease frame without payload")
			} else {
				select {
				case leases <- *m.Lease:
				case <-stop:
				}
			}
		case msgDone:
			sessionErr = errDone
		default:
			sessionErr = fmt.Errorf("fabric: unexpected %q frame", m.Type)
		}
		if sessionErr != nil {
			break
		}
	}
	halt()
	conn.Close()
	wg.Wait()
	if interrupted {
		return experiment.ErrInterrupted
	}
	return sessionErr
}
