package fabric

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/sweep"
	"repro/internal/telemetry"
)

// TestMain doubles as the worker-subprocess entry point: the SIGKILL
// tests re-exec the test binary with FABRIC_TEST_WORKER set to the
// coordinator address, and that copy runs a worker instead of tests.
func TestMain(m *testing.M) {
	if addr := os.Getenv("FABRIC_TEST_WORKER"); addr != "" {
		err := RunWorker(WorkerConfig{Addr: addr, Capacity: 1, Patience: 5 * time.Second})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func testSpec() sweep.Spec {
	return sweep.Spec{
		Topologies: []sweep.Topology{
			{Kind: "clique", N: 8},
			{Kind: "path", N: 16},
		},
		Algorithms: []core.Algorithm{core.AlgoBaselineDecay},
		MasterSeed: 7,
	}
}

func adaptiveConfig() experiment.Config {
	return experiment.Config{
		Spec:        testSpec(),
		BatchSize:   20,
		MinTrials:   40,
		MaxTrials:   2000,
		TargetRelCI: 0.004,
		Measures:    []string{"slots", "maxEnergy"},
	}
}

func fixedConfig() experiment.Config {
	cfg := adaptiveConfig()
	cfg.TargetRelCI = 0 // every cell runs exactly MaxTrials
	cfg.MaxTrials = 200
	return cfg
}

// slowConfig runs long enough (tight CI target, high cap — the
// resume-smoke pattern) that the fault-tolerance tests can reliably
// disrupt it mid-flight.
func slowConfig() experiment.Config {
	return experiment.Config{
		Spec: sweep.Spec{
			Topologies: []sweep.Topology{
				{Kind: "clique", N: 12},
				{Kind: "path", N: 24},
			},
			Algorithms: []core.Algorithm{core.AlgoBaselineDecay},
			MasterSeed: 9,
		},
		BatchSize:   20,
		MinTrials:   40,
		MaxTrials:   30000,
		TargetRelCI: 0.0015,
		Measures:    []string{"maxEnergy"},
	}
}

// waitProgress polls the fabric status until committed trials pass n
// (returns true) or the run ends first (false).
func waitProgress(co *Coordinator, n int) bool {
	for i := 0; i < 400; i++ {
		s := co.Status()
		if s.Done {
			return false
		}
		if s.CommittedTrials > n {
			return true
		}
		select {
		case <-co.done:
			return false
		case <-time.After(25 * time.Millisecond):
		}
	}
	return false
}

func reportJSON(t *testing.T, rep *experiment.Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// runFabric runs cfg through a coordinator with workers in-process
// worker goroutines and returns the report.
func runFabric(t *testing.T, cfg experiment.Config, workers int) *experiment.Report {
	t.Helper()
	lc, err := experiment.NewLeaseController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	co, err := StartCoordinator(CoordinatorConfig{
		Controller: lc, ListenAddr: "127.0.0.1:0", LeaseTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			err := RunWorker(WorkerConfig{
				Addr: co.Addr(), Name: fmt.Sprintf("w%d", i), Capacity: 2,
				Patience: 10 * time.Second})
			if err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
		}(i)
	}
	rep, err := co.Wait()
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// The acceptance gate: coordinator plus N workers produce reports
// byte-identical to experiment.Run for both fixed-trial and adaptive
// configurations, at every worker count.
func TestFabricReportBitIdentical(t *testing.T) {
	for _, mode := range []struct {
		name string
		cfg  experiment.Config
	}{{"adaptive", adaptiveConfig()}, {"fixed", fixedConfig()}} {
		t.Run(mode.name, func(t *testing.T) {
			ref, err := experiment.Run(mode.cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := reportJSON(t, ref)
			for _, n := range []int{1, 2, 4} {
				got := reportJSON(t, runFabric(t, mode.cfg, n))
				if !bytes.Equal(want, got) {
					t.Errorf("%d-worker fabric report differs from single-machine run", n)
				}
			}
		})
	}
}

// A coordinator with a telemetry recorder aggregates the fleet: every
// worker's shipped shard lands in FleetWorkers with its identity, the
// fleet totals are exactly the sum of the per-worker shards, and the
// report stays byte-identical to an uninstrumented single-machine run.
func TestFabricFleetTelemetry(t *testing.T) {
	cfg := fixedConfig()
	ref, err := experiment.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := reportJSON(t, ref)

	rec := telemetry.New()
	cfg.Telemetry = rec
	lc, err := experiment.NewLeaseController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	co, err := StartCoordinator(CoordinatorConfig{
		Controller: lc, ListenAddr: "127.0.0.1:0", LeaseTimeout: 5 * time.Second,
		Telemetry: rec})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 2
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			err := RunWorker(WorkerConfig{
				Addr: co.Addr(), Name: fmt.Sprintf("fleet-w%d", i), Capacity: 2,
				Patience: 10 * time.Second})
			if err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
		}(i)
	}
	rep, err := co.Wait()
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if got := reportJSON(t, rep); !bytes.Equal(want, got) {
		t.Error("instrumented fabric report differs from single-machine run")
	}

	ws := rec.FleetWorkers()
	if len(ws) != workers {
		t.Fatalf("fleet has %d workers, want %d: %+v", len(ws), workers, ws)
	}
	var fleetRun, fleetSlots uint64
	for _, w := range ws {
		if w.Version != telemetry.CodeVersion() {
			t.Errorf("worker %s version = %q, want %q", w.Name, w.Version, telemetry.CodeVersion())
		}
		if w.Addr == "" {
			t.Errorf("worker %s has no resolved address", w.Name)
		}
		if w.Stale {
			t.Errorf("worker %s flagged stale after clean finish", w.Name)
		}
		fleetRun += w.Snapshot.TrialsRun
		fleetSlots += w.Snapshot.SlotsSimulated
	}
	s := rec.Snapshot()
	// The last result frame carries the shard update for its own batch,
	// so at run end the aggregate is exactly the per-worker sum.
	if s.TrialsRun != fleetRun || s.SlotsSimulated != fleetSlots {
		t.Errorf("fleet totals run/slots = %d/%d, sum of worker shards = %d/%d",
			s.TrialsRun, s.SlotsSimulated, fleetRun, fleetSlots)
	}
	if s.TrialsCommitted != 400 { // 2 cells x 200 fixed trials
		t.Errorf("committed = %d, want 400", s.TrialsCommitted)
	}
	if fleetRun < s.TrialsCommitted {
		t.Errorf("fleet ran %d trials, fewer than %d committed", fleetRun, s.TrialsCommitted)
	}
	if s.Latencies[telemetry.LatencyLeaseRoundTrip].Count == 0 {
		t.Error("no lease round-trips recorded")
	}
	if s.Latencies[telemetry.LatencyBatch].Count == 0 {
		t.Error("no worker batch latencies shipped")
	}
}

// A worker SIGKILLed mid-lease must not perturb the run: the
// coordinator detects the dead connection, reissues its leases, and
// the survivor finishes a byte-identical report.
func TestFabricSurvivesWorkerSIGKILL(t *testing.T) {
	cfg := slowConfig()
	ref, err := experiment.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := reportJSON(t, ref)

	rec := telemetry.New()
	cfg.Telemetry = rec
	lc, err := experiment.NewLeaseController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	co, err := StartCoordinator(CoordinatorConfig{
		Controller: lc, ListenAddr: "127.0.0.1:0", LeaseTimeout: 3 * time.Second,
		Telemetry: rec})
	if err != nil {
		t.Fatal(err)
	}

	// The victim is a real OS process so Kill is a true SIGKILL — no
	// deferred cleanup, the socket just dies.
	victim := exec.Command(os.Args[0])
	victim.Env = append(os.Environ(), "FABRIC_TEST_WORKER="+co.Addr())
	if err := victim.Start(); err != nil {
		t.Fatal(err)
	}
	if !waitProgress(co, 100) {
		t.Fatal("victim worker made no progress before kill window")
	}
	if err := victim.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	victim.Wait()

	done := make(chan error, 1)
	go func() {
		done <- RunWorker(WorkerConfig{
			Addr: co.Addr(), Name: "survivor", Capacity: 2, Patience: 10 * time.Second})
	}()
	rep, err := co.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if werr := <-done; werr != nil {
		t.Fatalf("survivor worker: %v", werr)
	}
	if got := reportJSON(t, rep); !bytes.Equal(want, got) {
		t.Error("report after mid-run SIGKILL differs from single-machine run")
	}

	// The fleet table keeps the victim: flagged stale, last shard
	// retained (the trials it ran happened), survivor live.
	var sawStale, sawLive bool
	for _, w := range rec.FleetWorkers() {
		if w.Name == "survivor" {
			sawLive = true
			if w.Stale {
				t.Error("survivor flagged stale")
			}
			continue
		}
		sawStale = true
		if !w.Stale {
			t.Errorf("killed worker %s not flagged stale", w.Name)
		}
		if w.Snapshot.TrialsRun == 0 {
			t.Errorf("killed worker %s lost its last shard", w.Name)
		}
	}
	if !sawStale || !sawLive {
		t.Errorf("fleet = %+v, want victim + survivor", rec.FleetWorkers())
	}
}

// A worker that handshakes and then goes silent is evicted once its
// heartbeat lapses; its leases return to the pool and the run still
// finishes on the healthy worker.
func TestFabricEvictsIdleWorker(t *testing.T) {
	cfg := fixedConfig()
	ref, err := experiment.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := reportJSON(t, ref)

	lc, err := experiment.NewLeaseController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	co, err := StartCoordinator(CoordinatorConfig{
		Controller: lc, ListenAddr: "127.0.0.1:0", LeaseTimeout: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	// Hand-rolled zombie: says hello, accepts leases, never answers,
	// never heartbeats.
	conn, err := net.Dial("tcp", co.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	err = writeMsg(conn, &msg{Type: msgHello, Hello: &helloMsg{
		Name: "zombie", Version: telemetry.CodeVersion(), Capacity: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if m, err := readMsg(conn); err != nil || m.Type != msgWelcome {
		t.Fatalf("handshake: %v %v", m, err)
	}

	// Eviction closes the zombie's connection: observe EOF within a few
	// lease timeouts.
	evicted := make(chan error, 1)
	go func() {
		for {
			if _, err := readMsg(conn); err != nil {
				evicted <- err
				return
			}
		}
	}()
	select {
	case <-evicted:
	case <-time.After(5 * time.Second):
		t.Fatal("idle worker was not evicted within 5s")
	}

	done := make(chan error, 1)
	go func() {
		done <- RunWorker(WorkerConfig{
			Addr: co.Addr(), Name: "healthy", Capacity: 2, Patience: 10 * time.Second})
	}()
	rep, err := co.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if werr := <-done; werr != nil {
		t.Fatalf("healthy worker: %v", werr)
	}
	if got := reportJSON(t, rep); !bytes.Equal(want, got) {
		t.Error("report after idle-worker eviction differs from single-machine run")
	}
}

// A worker built from different code is refused with a reject frame,
// and RunWorker surfaces that as ErrVersionMismatch (the CLI's exit-2
// path). Simulated with a hand-rolled hello carrying a bogus version —
// in-process workers necessarily share the coordinator's CodeVersion.
func TestFabricRefusesVersionMismatch(t *testing.T) {
	cfg := fixedConfig()
	lc, err := experiment.NewLeaseController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	co, err := StartCoordinator(CoordinatorConfig{
		Controller: lc, ListenAddr: "127.0.0.1:0", LeaseTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}

	conn, err := net.Dial("tcp", co.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	err = writeMsg(conn, &msg{Type: msgHello, Hello: &helloMsg{
		Name: "stale", Version: "someone-else@v0.0.0-deadbeef", Capacity: 1}})
	if err != nil {
		t.Fatal(err)
	}
	m, err := readMsg(conn)
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != msgReject {
		t.Fatalf("mismatched worker got %q, want reject", m.Type)
	}

	// Drain the run so the controller's goroutines exit cleanly.
	done := make(chan error, 1)
	go func() {
		done <- RunWorker(WorkerConfig{
			Addr: co.Addr(), Name: "current", Capacity: 2, Patience: 10 * time.Second})
	}()
	if _, err := co.Wait(); err != nil {
		t.Fatal(err)
	}
	if werr := <-done; werr != nil {
		t.Fatalf("current-version worker: %v", werr)
	}
}

// A coordinator restart mid-run: interrupt the first coordinator, then
// resume from its journal on a new address. Workers that were dialing
// the old address give up on patience; a fresh worker finishes the
// resumed run and the report is byte-identical to an uninterrupted
// single-machine run.
func TestFabricCoordinatorRestartResumes(t *testing.T) {
	cfg := slowConfig()
	ref, err := experiment.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := reportJSON(t, ref)

	ckpt := t.TempDir() + "/fabric.ckpt"
	cfg.Checkpoint = ckpt
	lc, err := experiment.NewLeaseController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	intr := make(chan struct{})
	co, err := StartCoordinator(CoordinatorConfig{
		Controller: lc, ListenAddr: "127.0.0.1:0", LeaseTimeout: 3 * time.Second,
		Interrupt: intr})
	if err != nil {
		t.Fatal(err)
	}
	wdone := make(chan error, 1)
	go func() {
		wdone <- RunWorker(WorkerConfig{
			Addr: co.Addr(), Name: "first", Capacity: 2, Patience: time.Second})
	}()
	if !waitProgress(co, 100) {
		t.Fatal("no batches journaled before interrupt window")
	}
	close(intr)
	if _, err := co.Wait(); !errors.Is(err, experiment.ErrInterrupted) {
		t.Fatalf("interrupted coordinator returned %v", err)
	}
	<-wdone // dismissed or timed out; either is fine

	lc2, err := experiment.ResumeLeaseController(ckpt, experiment.ResumeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	co2, err := StartCoordinator(CoordinatorConfig{
		Controller: lc2, ListenAddr: "127.0.0.1:0", LeaseTimeout: 3 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		wdone <- RunWorker(WorkerConfig{
			Addr: co2.Addr(), Name: "second", Capacity: 2, Patience: 10 * time.Second})
	}()
	rep, err := co2.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if werr := <-wdone; werr != nil {
		t.Fatalf("post-restart worker: %v", werr)
	}
	if got := reportJSON(t, rep); !bytes.Equal(want, got) {
		t.Error("resumed fabric report differs from uninterrupted single-machine run")
	}
}
