// Package detcast implements the deterministic Broadcast algorithms of
// Appendix A: Theorem 25 (LOCAL, O(n log n logN) time, O(log n logN)
// energy) and Theorem 27 (CD, O(nN^2 logN log n) time, O(log^3 N log n)
// energy).
//
// Both algorithms iterate clustering by ruling sets: compute a ruling set
// I of the cluster graph, let I initiate the new clustering, and merge
// every other cluster into it, which (at least) halves the cluster count;
// after O(log n) refinements one tree spans the graph and the message is
// relayed up to its root and flooded down.
//
// Clusters are rooted trees with explicit parent pointers. In LOCAL,
// parent-child traffic is free of collisions by definition (one slot per
// layer, messages carry addresses). In CD, traffic uses the Appendix A.3
// discipline: the slot window of a parent is indexed by its unique ID, so
// distinct trees never collide (Lemma 28), and many-children contention
// inside one window is resolved with the Lemma 24 binary search over IDs.
// Ruling sets follow Lemma 26: a sequential recursion over the ID space
// for the (2, logN) CD set, a parallel recursion with distance-2 checks
// for the (3, 2logN) LOCAL set; cluster members participate only in the
// recursion path of their root's ID, keeping per-device energy O(logN)
// per ruling-set computation.
//
// # Execution model
//
// The device is a radio.Proc written in continuation-passing style: the
// whole schedule — whose slot layout is a pure function of Params — is
// assembled as a tree of radio.Cont nodes, while every read of mutable
// protocol state (roles, labels, cluster ids) is deferred into a thunk
// that runs when its window starts, reproducing the evaluation order of
// the historical blocking implementation exactly. The scheduler steps
// the proc inline, so the algorithm's enormous idle stretches (most CD
// windows touch a single cluster) cost neither goroutine parks nor
// virtual time.
package detcast

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/labeling"
	"repro/internal/radio"
	"repro/internal/rng"
)

// Params configures a deterministic run; all fields are global knowledge.
type Params struct {
	// Model is radio.Local or radio.CD.
	Model radio.Model
	// N is the network size; IDSpace the deterministic ID bound.
	N, IDSpace int
	// Layers bounds tree depths (n).
	Layers int
	// Refinements is the number of clustering iterations.
	Refinements int
	// MergeIters is the merge iteration count per refinement.
	MergeIters int
	// Sims optionally reuses a per-goroutine simulator cache
	// (radio.SimCache). Purely an allocation optimization for repeated
	// runs on one topology; measurements and determinism are unaffected.
	Sims *radio.SimCache
}

// NewParams derives the standard parameterization.
func NewParams(model radio.Model, n, idSpace int) (Params, error) {
	if model != radio.Local && model != radio.CD {
		return Params{}, fmt.Errorf("detcast: model %v unsupported", model)
	}
	if n < 1 || idSpace < n {
		return Params{}, fmt.Errorf("detcast: n=%d idSpace=%d", n, idSpace)
	}
	logN := rng.Log2Ceil(idSpace)
	if logN < 1 {
		logN = 1
	}
	mi := logN + 2
	if model == radio.Local {
		mi = 2*logN + 2
	}
	return Params{
		Model:       model,
		N:           n,
		IDSpace:     idSpace,
		Layers:      n,
		Refinements: rng.Log2Ceil(n) + 2,
		MergeIters:  mi,
	}, nil
}

// bits returns the ID bit-width.
func (p Params) bits() int {
	b := rng.Log2Ceil(p.IDSpace)
	if b < 1 {
		b = 1
	}
	return b
}

// ---- deterministic communication windows ----------------------------

// castSlots is the slot cost of one deterministic SR window (Lemma 24
// style, two stages: binary search over the key space, then one delivery
// slot per key).
func (p Params) castSlots() uint64 {
	if p.Model == radio.Local {
		return 1
	}
	total := uint64(0)
	for x := 0; x < p.bits(); x++ {
		total += uint64(1) << uint(x+1)
	}
	return total + uint64(p.IDSpace)
}

type addressed struct {
	from, to int // vertex indices; to == -1 broadcasts
	key      int // sender's assigned ID
	body     any
}

// downSlots is the slot cost of one Downward pass.
func (p Params) downSlots() uint64 {
	per := uint64(1)
	if p.Model == radio.CD {
		per = uint64(p.IDSpace)
	}
	return uint64(maxInt(p.Layers-1, 0)) * per
}

// upSlots is the slot cost of one Upward pass.
func (p Params) upSlots() uint64 {
	per := uint64(1)
	if p.Model == radio.CD {
		per = uint64(p.IDSpace) * p.castSlots()
	}
	return uint64(maxInt(p.Layers-1, 0)) * per
}

// ---- continuation-building helpers ----------------------------------

// cont abbreviates the engine's continuation type.
type cont = radio.Cont

// then performs a, then continues with k.
func then(a radio.Action, k cont) cont {
	return func(radio.Channel, radio.Feedback) (radio.Action, cont) { return a, k }
}

// recv listens at slot and hands the feedback to f, which returns the
// continuation to resume with.
func recv(slot uint64, f func(radio.Feedback) cont) cont {
	return func(radio.Channel, radio.Feedback) (radio.Action, cont) {
		return radio.Listen(slot), bind(f)
	}
}

// bind adapts a feedback consumer into a continuation.
func bind(f func(radio.Feedback) cont) cont {
	return func(ch radio.Channel, fb radio.Feedback) (radio.Action, cont) {
		k := f(fb)
		if k == nil {
			return radio.Halt(), nil
		}
		return k(ch, fb)
	}
}

// eval defers building the continuation until the moment it runs —
// the mechanism that keeps every read of mutable device state at the
// historical blocking implementation's evaluation point, even though
// the surrounding continuation tree is assembled eagerly.
func eval(f func() cont) cont {
	return func(ch radio.Channel, fb radio.Feedback) (radio.Action, cont) {
		k := f()
		if k == nil {
			return radio.Halt(), nil
		}
		return k(ch, fb)
	}
}

// step runs a side effect, then continues with k.
func step(f func(), k cont) cont {
	return eval(func() cont {
		f()
		return k
	})
}

// dev is the per-device protocol state.
type dev struct {
	p     Params
	index int // vertex index
	id    int // assigned ID

	layer    int
	parent   int // vertex index; -1 at roots
	parentID int // assigned ID of the parent
	cid      int // root vertex index of the device's cluster
	cidID    int // assigned ID of that root

	joined   bool
	inI      bool
	hasJoin  bool // root: someone merged under this cluster
	captured *addressed
	winner   int
	newLayer int
	newPar   int
	newParID int
	newCID   int
	newCIDID int
}

// castWindowK runs one deterministic SR window in [start,
// start+castSlots). role (evaluated at window start) yields the
// device's part — 0 send, 1 receive, else skip — with the sender's key
// and body. Senders hold (key, body); receivers obtain the body of the
// minimum key among adjacent senders (plus, in LOCAL, simply every
// message, filtered by accept). done receives the delivery (if any)
// before k resumes.
func (d *dev) castWindowK(start uint64, role func() (int, int, any),
	accept func(addressed) bool, done func(addressed, bool), k cont) cont {
	p := d.p
	if p.Model == radio.Local {
		return eval(func() cont {
			r, key, body := role()
			switch r {
			case 0:
				return then(radio.Transmit(start, addressed{from: d.index, to: -1, key: key, body: body}),
					step(func() { done(addressed{}, false) }, k))
			case 1:
				return recv(start, func(fb radio.Feedback) cont {
					for _, raw := range fb.Payloads {
						if m, ok := raw.(addressed); ok && accept(m) {
							done(m, true)
							return k
						}
					}
					done(addressed{}, false)
					return k
				})
			default:
				return then(radio.Sleep(start), step(func() { done(addressed{}, false) }, k))
			}
		})
	}
	// CD: stage 1 is a prefix binary search over keys (non-silence marks
	// live prefixes), stage 2 delivers the body in the winner's ID slot.
	bits := p.bits()
	return eval(func() cont {
		r, key, body := role()
		miss := then(radio.Sleep(start+p.castSlots()-1), step(func() { done(addressed{}, false) }, k))
		if r == 0 {
			key0 := key - 1
			var tx func(x int, base uint64) cont
			tx = func(x int, base uint64) cont {
				if x >= bits {
					return then(radio.Transmit(base+uint64(key0), addressed{from: d.index, to: -1, key: key, body: body}), miss)
				}
				prefix := key0 >> uint(bits-x-1)
				return then(radio.Transmit(base+uint64(prefix), key), tx(x+1, base+uint64(1)<<uint(x+1)))
			}
			return tx(0, start)
		}
		if r != 1 {
			return miss
		}
		var search func(x, prefix int, base uint64) cont
		search = func(x, prefix int, base uint64) cont {
			if x >= bits {
				// Stage two: fetch the body in the winning key's slot.
				return recv(base+uint64(prefix), func(fb radio.Feedback) cont {
					return then(radio.Sleep(start+p.castSlots()-1), eval(func() cont {
						if fb.Status == radio.Received {
							if m, ok := fb.Payload.(addressed); ok && accept(m) {
								done(m, true)
								return k
							}
						}
						done(addressed{}, false)
						return k
					}))
				})
			}
			p0 := prefix << 1
			p1 := p0 | 1
			return recv(base+uint64(p0), func(fb radio.Feedback) cont {
				if fb.Status != radio.Silence {
					return search(x+1, p0, base+uint64(1)<<uint(x+1))
				}
				return recv(base+uint64(p1), func(fb radio.Feedback) cont {
					if fb.Status != radio.Silence {
						return search(x+1, p1, base+uint64(1)<<uint(x+1))
					}
					return miss
				})
			})
		}
		return search(0, 0, start)
	})
}

// downPassK: parents push payloads to children (participate gates both
// sides; the send callback runs on senders at each layer). Occupies
// [start, start+downSlots).
func (d *dev) downPassK(start uint64, participate func() bool,
	send func() (any, bool), recvFn func(any), k cont) cont {
	p := d.p
	return eval(func() cont {
		part := participate()
		if p.Model == radio.Local {
			var it func(i int) cont
			it = func(i int) cont {
				if i > p.Layers-2 {
					return k
				}
				slot := start + uint64(i)
				next := then(radio.Sleep(slot), eval(func() cont { return it(i + 1) }))
				switch {
				case part && d.layer == i:
					return eval(func() cont {
						if body, ok := send(); ok {
							return then(radio.Transmit(slot, addressed{from: d.index, to: -1, body: body}), next)
						}
						return next
					})
				case part && d.layer == i+1 && d.parent >= 0:
					return recv(slot, func(fb radio.Feedback) cont {
						for _, raw := range fb.Payloads {
							if m, ok := raw.(addressed); ok && m.from == d.parent {
								recvFn(m.body)
							}
						}
						return next
					})
				default:
					return next
				}
			}
			return it(0)
		}
		per := uint64(p.IDSpace)
		var it func(i int) cont
		it = func(i int) cont {
			if i > p.Layers-2 {
				return k
			}
			base := start + uint64(i)*per
			next := then(radio.Sleep(base+per-1), eval(func() cont { return it(i + 1) }))
			switch {
			case part && d.layer == i:
				return eval(func() cont {
					if body, ok := send(); ok {
						return then(radio.Transmit(base+uint64(d.id-1), body), next)
					}
					return next
				})
			case part && d.layer == i+1 && d.parent >= 0:
				return recv(base+uint64(d.parentID-1), func(fb radio.Feedback) cont {
					if fb.Status == radio.Received {
						recvFn(fb.Payload)
					}
					return next
				})
			default:
				return next
			}
		}
		return it(0)
	})
}

// upPassK: children push payloads to parents; in CD each parent's ID
// indexes a deterministic SR window resolving sibling contention.
// Occupies [start, start+upSlots).
func (d *dev) upPassK(start uint64, participate func() bool,
	send func() (any, bool), recvFn func(any), k cont) cont {
	p := d.p
	return eval(func() cont {
		part := participate()
		if p.Model == radio.Local {
			var it func(wi int) cont
			it = func(wi int) cont {
				layer := p.Layers - 1 - wi
				if layer < 1 {
					return k
				}
				slot := start + uint64(wi)
				next := then(radio.Sleep(slot), eval(func() cont { return it(wi + 1) }))
				switch {
				case part && d.layer == layer && d.parent >= 0:
					return eval(func() cont {
						if body, ok := send(); ok {
							return then(radio.Transmit(slot, addressed{from: d.index, to: d.parent, body: body}), next)
						}
						return then(radio.Sleep(slot), next)
					})
				case part && d.layer == layer-1:
					return recv(slot, func(fb radio.Feedback) cont {
						for _, raw := range fb.Payloads {
							if m, ok := raw.(addressed); ok && m.to == d.index {
								recvFn(m.body)
								break
							}
						}
						return next
					})
				default:
					return next
				}
			}
			return it(0)
		}
		per := uint64(p.IDSpace) * p.castSlots()
		var win func(wi, id int) cont
		win = func(wi, id int) cont {
			layer := p.Layers - 1 - wi
			if layer < 1 {
				return k
			}
			if id > p.IDSpace {
				return eval(func() cont { return win(wi+1, 1) })
			}
			ws := start + uint64(wi)*per + uint64(id-1)*p.castSlots()
			next := then(radio.Sleep(ws+p.castSlots()-1), eval(func() cont { return win(wi, id+1) }))
			return d.castWindowK(ws,
				func() (int, int, any) {
					if part && d.layer == layer && d.parentID == id {
						if body, ok := send(); ok {
							return 0, d.id, body
						}
						return 2, d.id, nil
					}
					if part && d.layer == layer-1 && d.id == id {
						return 1, d.id, nil
					}
					return 2, d.id, nil
				},
				func(addressed) bool { return true },
				func(m addressed, got bool) {
					if got {
						recvFn(m.body)
					}
				},
				next)
		}
		return win(0, 1)
	})
}

// clusterRoundK simulates one cluster-graph round (Lemma 29): the
// root's flag floods down, flagged clusters' members All-cast,
// receptions OR up to the root. args is evaluated at round start and
// yields (participate, sendFlag, listenFlag); done receives whether
// this device's cluster heard anything (meaningful at the root).
func (d *dev) clusterRoundK(start uint64, args func() (bool, bool, bool),
	done func(heard bool), k cont) cont {
	p := d.p
	var part bool
	role := 0 // cluster role: 0 idle, 1 send, 2 listen
	heard := false
	castStart := start + p.downSlots()
	upStart := castStart + p.castSlots()
	endUp := d.upPassK(upStart, func() bool { return part },
		func() (any, bool) { return true, heard },
		func(m any) {
			if b, ok := m.(bool); ok && b {
				heard = true
			}
		},
		step(func() { done(heard) }, k))
	castEnd := then(radio.Sleep(castStart+p.castSlots()-1), endUp)
	castK := d.castWindowK(castStart,
		func() (int, int, any) {
			castRole := 2
			if part && role == 1 {
				castRole = 0
			} else if part && role == 2 {
				castRole = 1
			}
			return castRole, d.id, d.cid
		},
		func(addressed) bool { return true },
		func(_ addressed, got bool) {
			if got {
				heard = true
			}
		},
		castEnd)
	down := d.downPassK(start, func() bool { return part },
		func() (any, bool) { return role, role != 0 },
		func(m any) {
			if r, ok := m.(int); ok {
				role = r
			}
		},
		castK)
	return step(func() {
		participate, sendFlag, listenFlag := args()
		part = participate
		role, heard = 0, false
		if d.parent < 0 {
			if sendFlag {
				role = 1
			} else if listenFlag {
				role = 2
			}
		}
	}, down)
}

// statusFloodK pushes the root's current inI value down the tree.
func (d *dev) statusFloodK(start uint64, participate func() bool, k cont) cont {
	var fresh *bool
	return step(func() {
		fresh = nil
		if d.parent < 0 {
			v := d.inI
			fresh = &v
		}
	}, d.downPassK(start, participate,
		func() (any, bool) {
			if fresh != nil {
				return *fresh, true
			}
			return nil, false
		},
		func(m any) {
			if b, ok := m.(bool); ok {
				d.inI = b
				v := b
				fresh = &v
			}
		},
		k))
}

// combineSlots is the slot cost of one cluster round plus status flood.
func (p Params) combineSlots() uint64 {
	return p.downSlots() + p.castSlots() + p.upSlots() + p.downSlots()
}

// rulingSetCDK computes the (2, logN) ruling set of the cluster graph by
// the Lemma 26 sequential recursion over ID prefixes. The device's
// cluster participates only in the rounds along its root ID's path.
// Cluster roots end with inI set. Occupies the CD rsSlots window.
func (d *dev) rulingSetCDK(start uint64, k cont) cont {
	p := d.p
	bits := p.bits()
	// A level-l call covers 2^l - 1 combines.
	levelSlots := func(level int) uint64 {
		return (uint64(1)<<uint(level) - 1) * p.combineSlots()
	}
	var rec func(level, prefix int, t uint64, k cont) cont
	rec = func(level, prefix int, t uint64, k cont) cont {
		if level == 0 {
			return k
		}
		t1 := t + levelSlots(level-1)
		t2 := t1 + levelSlots(level-1)
		// Combine: I0 = in-I clusters with prefix||0, I1 with prefix||1.
		mine := func() (m bool, bit int) {
			myPrefix := (d.cidID - 1) >> uint(level-1)
			return myPrefix>>1 == prefix, myPrefix & 1
		}
		combine := d.clusterRoundK(t2,
			func() (bool, bool, bool) {
				m, bit := mine()
				return m && d.inI, m && d.inI && bit == 0, m && d.inI && bit == 1
			},
			func(heard bool) {
				m, bit := mine()
				if m && d.inI && bit == 1 && d.parent < 0 && heard {
					d.inI = false
				}
			},
			// Drop-outs must inform members so they stop participating:
			// the root's updated status floods down (each member relays
			// the fresh value it received earlier in the same pass).
			d.statusFloodK(t2+p.downSlots()+p.castSlots()+p.upSlots(),
				func() bool { m, _ := mine(); return m }, k))
		return rec(level-1, prefix<<1, t, rec(level-1, prefix<<1|1, t1, combine))
	}
	return step(func() {
		// Leaf: every cluster starts in I of its own singleton call.
		d.inI = true
	}, rec(bits, 0, start, k))
}

// rulingSetLocalK computes the (3, 2logN) ruling set of the cluster
// graph by the parallel recursion: at each level, surviving 1-side
// clusters drop out if an I0 cluster lies within two cluster-graph
// hops; the two hops are two cluster rounds (announce, then relay).
func (d *dev) rulingSetLocalK(start uint64, k cont) cont {
	p := d.p
	round := p.downSlots() + p.castSlots() + p.upSlots()
	levelLen := 2*round + p.downSlots()
	bits := p.bits()
	var level func(l int, t uint64) cont
	level = func(l int, t uint64) cont {
		if l > bits {
			return k
		}
		var heard1, listening bool
		bit := func() int { return ((d.cidID - 1) >> uint(l-1)) & 1 }
		// Hop 1: I0 clusters announce; everyone else listens.
		hop1 := d.clusterRoundK(t,
			func() (bool, bool, bool) { return true, d.inI && bit() == 0, true },
			func(h bool) {
				heard1 = h
				if d.inI && bit() == 1 && d.parent < 0 && h {
					// An I0 cluster is adjacent: drop out right away.
					d.inI = false
				}
			},
			// Hop 2: clusters that heard hop 1 (and the I0 sources)
			// relay; the remaining I1 clusters listen for distance-2
			// evidence. Dropped clusters relay rather than listen, which
			// is exactly what their distance-2 neighbors need.
			d.clusterRoundK(t+round,
				func() (bool, bool, bool) {
					listening = d.inI && bit() == 1 && !heard1
					relay := (heard1 || (d.inI && bit() == 0)) && !listening
					return true, relay, listening
				},
				func(h bool) {
					if listening && d.parent < 0 && h {
						d.inI = false
					}
				},
				d.statusFloodK(t+2*round, func() bool { return true },
					eval(func() cont { return level(l+1, t+levelLen) }))))
		return hop1
	}
	return step(func() { d.inI = true }, level(1, start))
}

// mergeIterationK attaches unjoined clusters to the new clustering:
// joined clusters All-cast offers, capturers are gathered to their
// roots, the winner re-roots its tree under the offering vertex, and
// new labels propagate along the old tree (Section 6.4). reversed
// selects the singleton-fix round, where only clusters known to be
// non-singleton groups offer and only childless ruling-set clusters
// capture. Occupies castSlots + 2*(upSlots+downSlots).
func (d *dev) mergeIterationK(start uint64, reversed bool, k cont) cont {
	p := d.p
	var offering, capturing bool
	cand := -1
	t1 := start + p.castSlots()
	t2 := t1 + p.upSlots()
	t3 := t2 + p.downSlots()
	t4 := t3 + p.upSlots()

	relabelSend := func() (any, bool) {
		if d.newLayer >= 0 {
			return relabelBody{from: d.index, fromID: d.id,
				layer: d.newLayer, cid: d.newCID, cidID: d.newCIDID}, true
		}
		return nil, false
	}
	acceptUp := func(m any) {
		rb, ok := m.(relabelBody)
		if !ok || d.newLayer >= 0 || d.winner < 0 || !capturing {
			return
		}
		d.newLayer = rb.layer + 1
		d.newPar = rb.from
		d.newParID = rb.fromID
		d.newCID = rb.cid
		d.newCIDID = rb.cidID
	}
	acceptDown := func(m any) {
		rb, ok := m.(relabelBody)
		if !ok || d.newLayer >= 0 || d.winner < 0 || !capturing {
			return
		}
		d.newLayer = rb.layer + 1
		d.newPar = d.parent
		d.newParID = d.parentID
		d.newCID = rb.cid
		d.newCIDID = rb.cidID
	}

	// Commit (after the relabel down-pass).
	commit := step(func() {
		if d.newLayer >= 0 {
			d.layer = d.newLayer
			d.parent = d.newPar
			d.parentID = d.newParID
			d.cid = d.newCID
			d.cidID = d.newCIDID
			d.joined = true
		}
	}, k)
	// Relabel from the winner along the old tree.
	relabelDown := d.downPassK(t4, func() bool { return capturing }, relabelSend, acceptDown, commit)
	relabelUp := d.upPassK(t3, func() bool { return capturing }, relabelSend, acceptUp, relabelDown)
	prepRelabel := step(func() {
		d.newLayer, d.newPar, d.newParID = -1, -1, 0
		if d.winner == d.index && d.captured != nil {
			if ob, ok := d.captured.body.(offerBody); ok {
				d.newLayer = ob.layer + 1
				d.newPar = d.captured.from
				d.newParID = ob.id
				d.newCID = ob.cid
				d.newCIDID = ob.cidID
			}
		}
	}, relabelUp)
	// Decision flood.
	decide := d.downPassK(t2, func() bool { return capturing },
		func() (any, bool) { return d.winner, d.winner >= 0 },
		func(m any) {
			if w, ok := m.(int); ok {
				d.winner = w
			}
		},
		prepRelabel)
	pickWinner := step(func() {
		d.winner = -1
		if d.parent < 0 && capturing && cand >= 0 {
			d.winner = cand
		}
	}, decide)
	// Gather a candidate to the root.
	gather := d.upPassK(t1, func() bool { return capturing },
		func() (any, bool) { return cand, cand >= 0 },
		func(m any) {
			if c, ok := m.(int); ok && cand < 0 {
				cand = c
			}
		},
		pickWinner)
	prepGather := step(func() {
		cand = -1
		if d.captured != nil && capturing {
			cand = d.index
		}
	}, gather)
	// Offers.
	offer := d.castWindowK(start,
		func() (int, int, any) {
			if offering {
				return 0, d.id, offerBody{layer: d.layer, cid: d.cid, cidID: d.cidID, id: d.id}
			}
			if capturing {
				return 1, d.id, nil
			}
			return 2, d.id, nil
		},
		func(m addressed) bool { _, isOffer := m.body.(offerBody); return isOffer },
		func(m addressed, got bool) {
			if got {
				mc := m
				d.captured = &mc
			}
		},
		prepGather)
	return step(func() {
		offering = d.joined
		capturing = !d.joined
		if reversed {
			offering = d.joined || (d.inI && d.hasJoin)
			capturing = d.inI && !d.hasJoin && !d.joined
		}
		d.captured = nil
	}, offer)
}

type offerBody struct {
	layer, cid, cidID, id int
}

type relabelBody struct {
	from, fromID, layer, cid, cidID int
}

// ackSlots is the singleton-detection pass: one slot per ID.
func (p Params) ackSlots() uint64 { return uint64(p.IDSpace) }

// ackPassK: every vertex that merged under an external parent this
// refinement beeps in its new parent's ID slot; each vertex listens in
// its own slot, then the bit is ORed up to the root. Occupies
// ackSlots + upSlots.
func (d *dev) ackPassK(start uint64, mergedExternal func() bool, k cont) cont {
	p := d.p
	gotJoiner := false
	upStart := start + p.ackSlots()
	up := d.upPassK(upStart, func() bool { return true },
		func() (any, bool) { return orBit(gotJoiner), gotJoiner },
		func(m any) {
			if _, ok := m.(orBit); ok {
				gotJoiner = true
			}
		},
		step(func() {
			if d.parent < 0 {
				d.hasJoin = gotJoiner
			}
		}, k))
	endBeeps := then(radio.Sleep(start+p.ackSlots()-1), up)
	if p.Model == radio.Local {
		return eval(func() cont {
			gotJoiner = false
			if mergedExternal() {
				return then(radio.Transmit(start, addressed{from: d.index, to: d.parent}), endBeeps)
			}
			return recv(start, func(fb radio.Feedback) cont {
				for _, raw := range fb.Payloads {
					if m, ok := raw.(addressed); ok && m.to == d.index {
						gotJoiner = true
					}
				}
				return endBeeps
			})
		})
	}
	var slot func(id int) cont
	slot = func(id int) cont {
		if id > p.IDSpace {
			return endBeeps
		}
		s := start + uint64(id-1)
		next := eval(func() cont { return slot(id + 1) })
		return eval(func() cont {
			if mergedExternal() && d.parentID == id {
				return then(radio.Transmit(s, 1), next)
			}
			if !mergedExternal() && d.id == id {
				return recv(s, func(fb radio.Feedback) cont {
					if fb.Status != radio.Silence {
						gotJoiner = true
					}
					return next
				})
			}
			return next
		})
	}
	return step(func() { gotJoiner = false }, slot(1))
}

type orBit bool

// mergeSlots is the slot cost of one merge iteration: the offer
// window, candidate gather, decision flood, and the two relabel passes.
func (p Params) mergeSlots() uint64 {
	return p.castSlots() + p.upSlots() + p.downSlots() + p.upSlots() + p.downSlots()
}

// rulingSlots is the slot cost of one ruling-set computation: the CD
// sequential recursion runs 2^bits - 1 combines, the LOCAL parallel
// recursion runs bits levels of two cluster rounds plus a status flood.
func (p Params) rulingSlots() uint64 {
	if p.Model == radio.CD {
		combines := uint64(1)<<uint(p.bits()) - 1
		return combines * p.combineSlots()
	}
	round := p.downSlots() + p.castSlots() + p.upSlots()
	return uint64(p.bits()) * (2*round + p.downSlots())
}

// refineSlots is the slot cost of one clustering refinement.
func (p Params) refineSlots() uint64 {
	total := p.rulingSlots() + uint64(p.MergeIters)*p.mergeSlots()
	if p.Model == radio.CD {
		// ack pass + one reversed merge iteration (singleton fix).
		total += p.ackSlots() + p.upSlots() + p.mergeSlots()
	}
	return total
}

// Slots returns the full schedule length.
func (p Params) Slots() uint64 {
	// Refinements, then the final up+down message relay.
	return uint64(p.Refinements)*p.refineSlots() + p.upSlots() + p.downSlots()
}

// refinementK runs one clustering iteration: ruling set, merge rounds,
// and (in CD) the singleton fix.
func (d *dev) refinementK(start uint64, k cont) cont {
	p := d.p
	merge := p.mergeSlots()
	mergeStart := start + p.rulingSlots()
	mergedExternal := false
	var tail cont = k
	if p.Model == radio.CD {
		ackStart := mergeStart + uint64(p.MergeIters)*merge
		fixStart := ackStart + p.ackSlots() + p.upSlots()
		tail = d.ackPassK(ackStart, func() bool { return mergedExternal },
			d.mergeIterationK(fixStart, true, k))
	}
	var iter func(i int, t uint64) cont
	iter = func(i int, t uint64) cont {
		if i >= p.MergeIters {
			return tail
		}
		var before bool
		return step(func() { before = d.joined },
			d.mergeIterationK(t, false,
				step(func() {
					if !before && d.joined {
						mergedExternal = true
					}
				}, eval(func() cont { return iter(i+1, t+merge) }))))
	}
	afterRS := step(func() {
		// Ruling-set clusters initiate the new clustering as-is.
		if d.inI {
			d.joined = true
		}
		mergedExternal = false
	}, iter(0, mergeStart))
	var rs cont
	if p.Model == radio.CD {
		rs = d.rulingSetCDK(start, afterRS)
	} else {
		rs = d.rulingSetLocalK(start, afterRS)
	}
	return step(func() {
		d.joined = false
		d.hasJoin = false
	}, rs)
}

// DeviceResult is one device's final view.
type DeviceResult struct {
	Informed bool
	Msg      any
	Label    int
	Parent   int
	Cluster  int
}

// Proc returns the deterministic Broadcast device as an inline step
// proc. Procs are single-use.
func Proc(p Params, isSource bool, msg any, out *DeviceResult) radio.Proc {
	return radio.ContProc(func(ch radio.Channel) cont {
		d := &dev{
			p:     p,
			index: ch.Index(),
			id:    ch.AssignedID(),
			layer: 0, parent: -1, parentID: 0,
			newLayer: -1,
		}
		d.cid, d.cidID = d.index, d.id
		has := isSource
		body := msg
		relayStart := uint64(1) + uint64(p.Refinements)*p.refineSlots()
		// Relay the message up to the root and flood it down.
		finish := step(func() {
			out.Informed = has
			if has {
				out.Msg = body
			}
			out.Label = d.layer
			out.Parent = d.parent
			out.Cluster = d.cid
		}, nil)
		relayRecv := func(m any) {
			if mb, ok := m.(msgBody); ok && !has {
				has, body = true, mb.body
			}
		}
		relaySend := func() (any, bool) { return msgBody{body: body}, has }
		relay := d.upPassK(relayStart, func() bool { return true }, relaySend, relayRecv,
			d.downPassK(relayStart+p.upSlots(), func() bool { return true }, relaySend, relayRecv,
				finish))
		var chain cont = relay
		for r := p.Refinements - 1; r >= 0; r-- {
			t := uint64(1) + uint64(r)*p.refineSlots()
			chain = d.refinementK(t, chain)
		}
		return chain
	})
}

type msgBody struct{ body any }

// Outcome aggregates a run.
type Outcome struct {
	Result  *radio.Result
	Devices []DeviceResult
	Labels  labeling.Labeling
}

// AllInformed reports whether every device holds the message.
func (o *Outcome) AllInformed() bool {
	for _, d := range o.Devices {
		if !d.Informed {
			return false
		}
	}
	return true
}

// Roots counts remaining roots.
func (o *Outcome) Roots() int {
	r := 0
	for _, d := range o.Devices {
		if d.Parent < 0 {
			r++
		}
	}
	return r
}

// Broadcast runs the deterministic algorithm on g from source.
func Broadcast(g *graph.Graph, source int, msg any, p Params, seed uint64) (*Outcome, error) {
	if source < 0 || source >= g.N() {
		return nil, fmt.Errorf("detcast: source %d out of range", source)
	}
	n := g.N()
	devs := make([]DeviceResult, n)
	pop := make([]radio.Device, n)
	for v := 0; v < n; v++ {
		pop[v].Proc = Proc(p, v == source, msg, &devs[v])
	}
	res, err := radio.RunDevices(radio.Config{Graph: g, Model: p.Model, Seed: seed,
		IDSpace: p.IDSpace, MaxSlots: 1 << 62, Sims: p.Sims}, pop)
	if err != nil {
		return nil, err
	}
	labels := make(labeling.Labeling, n)
	for v := range labels {
		labels[v] = devs[v].Label
	}
	return &Outcome{Result: res, Devices: devs, Labels: labels}, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
