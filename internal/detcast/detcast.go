// Package detcast implements the deterministic Broadcast algorithms of
// Appendix A: Theorem 25 (LOCAL, O(n log n logN) time, O(log n logN)
// energy) and Theorem 27 (CD, O(nN^2 logN log n) time, O(log^3 N log n)
// energy).
//
// Both algorithms iterate clustering by ruling sets: compute a ruling set
// I of the cluster graph, let I initiate the new clustering, and merge
// every other cluster into it, which (at least) halves the cluster count;
// after O(log n) refinements one tree spans the graph and the message is
// relayed up to its root and flooded down.
//
// Clusters are rooted trees with explicit parent pointers. In LOCAL,
// parent-child traffic is free of collisions by definition (one slot per
// layer, messages carry addresses). In CD, traffic uses the Appendix A.3
// discipline: the slot window of a parent is indexed by its unique ID, so
// distinct trees never collide (Lemma 28), and many-children contention
// inside one window is resolved with the Lemma 24 binary search over IDs.
// Ruling sets follow Lemma 26: a sequential recursion over the ID space
// for the (2, logN) CD set, a parallel recursion with distance-2 checks
// for the (3, 2logN) LOCAL set; cluster members participate only in the
// recursion path of their root's ID, keeping per-device energy O(logN)
// per ruling-set computation.
package detcast

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/labeling"
	"repro/internal/radio"
	"repro/internal/rng"
)

// Params configures a deterministic run; all fields are global knowledge.
type Params struct {
	// Model is radio.Local or radio.CD.
	Model radio.Model
	// N is the network size; IDSpace the deterministic ID bound.
	N, IDSpace int
	// Layers bounds tree depths (n).
	Layers int
	// Refinements is the number of clustering iterations.
	Refinements int
	// MergeIters is the merge iteration count per refinement.
	MergeIters int
	// Sims optionally reuses a per-goroutine simulator cache
	// (radio.SimCache). Purely an allocation optimization for repeated
	// runs on one topology; measurements and determinism are unaffected.
	Sims *radio.SimCache
}

// NewParams derives the standard parameterization.
func NewParams(model radio.Model, n, idSpace int) (Params, error) {
	if model != radio.Local && model != radio.CD {
		return Params{}, fmt.Errorf("detcast: model %v unsupported", model)
	}
	if n < 1 || idSpace < n {
		return Params{}, fmt.Errorf("detcast: n=%d idSpace=%d", n, idSpace)
	}
	logN := rng.Log2Ceil(idSpace)
	if logN < 1 {
		logN = 1
	}
	mi := logN + 2
	if model == radio.Local {
		mi = 2*logN + 2
	}
	return Params{
		Model:       model,
		N:           n,
		IDSpace:     idSpace,
		Layers:      n,
		Refinements: rng.Log2Ceil(n) + 2,
		MergeIters:  mi,
	}, nil
}

// bits returns the ID bit-width.
func (p Params) bits() int {
	b := rng.Log2Ceil(p.IDSpace)
	if b < 1 {
		b = 1
	}
	return b
}

// ---- deterministic communication windows ----------------------------

// castSlots is the slot cost of one deterministic SR window (Lemma 24
// style, two stages: binary search over the key space, then one delivery
// slot per key).
func (p Params) castSlots() uint64 {
	if p.Model == radio.Local {
		return 1
	}
	total := uint64(0)
	for x := 0; x < p.bits(); x++ {
		total += uint64(1) << uint(x+1)
	}
	return total + uint64(p.IDSpace)
}

type addressed struct {
	from, to int // vertex indices; to == -1 broadcasts
	key      int // sender's assigned ID
	body     any
}

// castWindow runs one deterministic SR window in [start, start+castSlots).
// Senders hold (key, body); receivers obtain the body of the minimum key
// among adjacent senders (plus, in LOCAL, simply every message, filtered
// by accept). accept filters deliveries; role: 0 send, 1 receive, else
// skip.
func (p Params) castWindow(e *radio.Env, start uint64, role int, key int, body any,
	accept func(addressed) bool) (addressed, bool) {
	if p.Model == radio.Local {
		switch role {
		case 0:
			e.Transmit(start, addressed{from: e.Index(), to: -1, key: key, body: body})
		case 1:
			fb := e.Listen(start)
			for _, raw := range fb.Payloads {
				if m, ok := raw.(addressed); ok && accept(m) {
					return m, true
				}
			}
		default:
			e.SleepUntil(start)
		}
		return addressed{}, false
	}
	// CD: stage 1 is a prefix binary search over keys (non-silence marks
	// live prefixes), stage 2 delivers the body in the winner's ID slot.
	bits := p.bits()
	base := start
	if role == 0 {
		key0 := key - 1
		for x := 0; x < bits; x++ {
			prefix := key0 >> uint(bits-x-1)
			e.Transmit(base+uint64(prefix), key)
			base += uint64(1) << uint(x+1)
		}
		e.Transmit(base+uint64(key0), addressed{from: e.Index(), to: -1, key: key, body: body})
		e.SleepUntil(start + p.castSlots() - 1)
		return addressed{}, false
	}
	if role != 1 {
		e.SleepUntil(start + p.castSlots() - 1)
		return addressed{}, false
	}
	prefix := 0
	alive := true
	for x := 0; x < bits; x++ {
		p0 := prefix << 1
		p1 := p0 | 1
		fb := e.Listen(base + uint64(p0))
		if fb.Status != radio.Silence {
			prefix = p0
		} else {
			fb = e.Listen(base + uint64(p1))
			if fb.Status != radio.Silence {
				prefix = p1
			} else {
				alive = false
			}
		}
		base += uint64(1) << uint(x+1)
		if !alive {
			break
		}
	}
	if !alive {
		e.SleepUntil(start + p.castSlots() - 1)
		return addressed{}, false
	}
	fb := e.Listen(base + uint64(prefix))
	e.SleepUntil(start + p.castSlots() - 1)
	if fb.Status == radio.Received {
		if m, ok := fb.Payload.(addressed); ok && accept(m) {
			return m, true
		}
	}
	return addressed{}, false
}

// downSlots is the slot cost of one Downward pass.
func (p Params) downSlots() uint64 {
	per := uint64(1)
	if p.Model == radio.CD {
		per = uint64(p.IDSpace)
	}
	return uint64(maxInt(p.Layers-1, 0)) * per
}

// upSlots is the slot cost of one Upward pass.
func (p Params) upSlots() uint64 {
	per := uint64(1)
	if p.Model == radio.CD {
		per = uint64(p.IDSpace) * p.castSlots()
	}
	return uint64(maxInt(p.Layers-1, 0)) * per
}

// dev is the per-device protocol state.
type dev struct {
	e *radio.Env
	p Params

	layer    int
	parent   int // vertex index; -1 at roots
	parentID int // assigned ID of the parent
	cid      int // root vertex index of the device's cluster
	cidID    int // assigned ID of that root

	joined   bool
	inI      bool
	hasJoin  bool // root: someone merged under this cluster
	captured *addressed
	winner   int
	newLayer int
	newPar   int
	newParID int
	newCID   int
	newCIDID int
}

// downPass: parents push payloads to children (participate gates both
// sides; the payload callback runs on senders at each layer).
func (d *dev) downPass(start uint64, participate bool,
	send func() (any, bool), recv func(any)) uint64 {
	p := d.p
	if p.Model == radio.Local {
		for it := 0; it <= p.Layers-2; it++ {
			slot := start + uint64(it)
			switch {
			case participate && d.layer == it:
				if body, ok := send(); ok {
					d.e.Transmit(slot, addressed{from: d.e.Index(), to: -1, body: body})
				}
			case participate && d.layer == it+1 && d.parent >= 0:
				fb := d.e.Listen(slot)
				for _, raw := range fb.Payloads {
					if m, ok := raw.(addressed); ok && m.from == d.parent {
						recv(m.body)
					}
				}
			}
			d.e.SleepUntil(slot)
		}
		return start + uint64(maxInt(p.Layers-1, 0))
	}
	per := uint64(p.IDSpace)
	for it := 0; it <= p.Layers-2; it++ {
		base := start + uint64(it)*per
		switch {
		case participate && d.layer == it:
			if body, ok := send(); ok {
				d.e.Transmit(base+uint64(d.e.AssignedID()-1), body)
			}
		case participate && d.layer == it+1 && d.parent >= 0:
			if fb := d.e.Listen(base + uint64(d.parentID-1)); fb.Status == radio.Received {
				recv(fb.Payload)
			}
		}
		d.e.SleepUntil(base + per - 1)
	}
	return start + uint64(maxInt(p.Layers-1, 0))*per
}

// upPass: children push payloads to parents; in CD each parent's ID
// indexes a deterministic SR window resolving sibling contention.
func (d *dev) upPass(start uint64, participate bool,
	send func() (any, bool), recv func(any)) uint64 {
	p := d.p
	if p.Model == radio.Local {
		for wi, it := 0, p.Layers-1; it >= 1; it, wi = it-1, wi+1 {
			slot := start + uint64(wi)
			switch {
			case participate && d.layer == it && d.parent >= 0:
				if body, ok := send(); ok {
					d.e.Transmit(slot, addressed{from: d.e.Index(), to: d.parent, body: body})
				} else {
					d.e.SleepUntil(slot)
				}
			case participate && d.layer == it-1:
				fb := d.e.Listen(slot)
				for _, raw := range fb.Payloads {
					if m, ok := raw.(addressed); ok && m.to == d.e.Index() {
						recv(m.body)
						break
					}
				}
			}
			d.e.SleepUntil(slot)
		}
		return start + uint64(maxInt(p.Layers-1, 0))
	}
	per := uint64(p.IDSpace) * p.castSlots()
	for wi, it := 0, p.Layers-1; it >= 1; it, wi = it-1, wi+1 {
		base := start + uint64(wi)*per
		for id := 1; id <= p.IDSpace; id++ {
			ws := base + uint64(id-1)*p.castSlots()
			role := 2
			var body any
			ok := false
			if participate && d.layer == it && d.parentID == id {
				body, ok = send()
				if ok {
					role = 0
				}
			} else if participate && d.layer == it-1 && d.e.AssignedID() == id {
				role = 1
			}
			if m, got := d.p.castWindow(d.e, ws, role, d.e.AssignedID(), body,
				func(addressed) bool { return true }); got {
				recv(m.body)
			}
			d.e.SleepUntil(ws + p.castSlots() - 1)
		}
	}
	return start + uint64(maxInt(p.Layers-1, 0))*per
}

// clusterRound simulates one cluster-graph round (Lemma 29): the root's
// flag floods down, flagged clusters' members All-cast, receptions OR up
// to the root. participate gates a cluster out of the whole round.
// sendFlag marks transmitting clusters (root decides); listen marks
// receiving clusters. Returns whether the root heard anything (valid at
// the root).
func (d *dev) clusterRound(start uint64, participate, sendFlag, listenFlag bool) (uint64, bool) {
	role := 0 // cluster role: 0 idle, 1 send, 2 listen
	if d.parent < 0 {
		if sendFlag {
			role = 1
		} else if listenFlag {
			role = 2
		}
	}
	t := d.downPass(start, participate,
		func() (any, bool) { return role, role != 0 },
		func(m any) {
			if r, ok := m.(int); ok {
				role = r
			}
		})
	// All-cast window: members of sending clusters transmit a beep.
	heard := false
	castRole := 2
	if participate && role == 1 {
		castRole = 0
	} else if participate && role == 2 {
		castRole = 1
	}
	if _, got := d.p.castWindow(d.e, t, castRole, d.e.AssignedID(), d.cid,
		func(m addressed) bool { return true }); got {
		heard = true
	}
	d.e.SleepUntil(t + d.p.castSlots() - 1)
	t += d.p.castSlots()
	// OR the bit up to the root.
	t = d.upPass(t, participate,
		func() (any, bool) { return true, heard },
		func(m any) {
			if b, ok := m.(bool); ok && b {
				heard = true
			}
		})
	return t, heard
}

// rulingSetCD computes the (2, logN) ruling set of the cluster graph by
// the Lemma 26 sequential recursion over ID prefixes. The device's
// cluster participates only in the rounds along its root ID's path.
// Cluster roots end with inI set.
func (d *dev) rulingSetCD(start uint64) uint64 {
	bits := d.p.bits()
	d.inI = true // leaf: every cluster starts in I of its own singleton call
	var rec func(level, prefix int, t uint64) uint64
	rec = func(level, prefix int, t uint64) uint64 {
		if level == 0 {
			return t
		}
		t = rec(level-1, prefix<<1, t)
		t = rec(level-1, prefix<<1|1, t)
		// Combine: I0 = in-I clusters with prefix||0, I1 with prefix||1.
		myPrefix := (d.cidID - 1) >> uint(level-1)
		mine := myPrefix>>1 == prefix
		bit := myPrefix & 1
		var heard bool
		t, heard = d.clusterRound(t, mine && d.inI, mine && d.inI && bit == 0,
			mine && d.inI && bit == 1)
		if mine && d.inI && bit == 1 && d.parent < 0 && heard {
			d.inI = false
		}
		// Drop-outs must inform members so they stop participating: the
		// root's updated status floods down (each member relays the fresh
		// value it received earlier in the same pass).
		t = d.statusFlood(t, mine)
		return t
	}
	return rec(bits, 0, start)
}

// statusFlood pushes the root's current inI value down the tree.
func (d *dev) statusFlood(start uint64, participate bool) uint64 {
	var fresh *bool
	if d.parent < 0 {
		v := d.inI
		fresh = &v
	}
	return d.downPass(start, participate,
		func() (any, bool) {
			if fresh != nil {
				return *fresh, true
			}
			return nil, false
		},
		func(m any) {
			if b, ok := m.(bool); ok {
				d.inI = b
				v := b
				fresh = &v
			}
		})
}

// rulingSetLocal computes the (3, 2logN) ruling set of the cluster graph
// by the parallel recursion: at each level, surviving 1-side clusters
// drop out if an I0 cluster lies within two cluster-graph hops; the two
// hops are two cluster rounds (announce, then relay).
func (d *dev) rulingSetLocal(start uint64) uint64 {
	bits := d.p.bits()
	d.inI = true
	t := start
	for level := 1; level <= bits; level++ {
		bit := ((d.cidID - 1) >> uint(level-1)) & 1
		// Hop 1: I0 clusters announce; everyone else listens.
		var heard1 bool
		t, heard1 = d.clusterRound(t, true, d.inI && bit == 0, true)
		if d.inI && bit == 1 && d.parent < 0 && heard1 {
			// An I0 cluster is adjacent: drop out right away.
			d.inI = false
		}
		// Hop 2: clusters that heard hop 1 (and the I0 sources) relay;
		// the remaining I1 clusters listen for distance-2 evidence.
		// Dropped clusters relay rather than listen, which is exactly
		// what their distance-2 neighbors need.
		listening := d.inI && bit == 1 && !heard1
		relay := (heard1 || (d.inI && bit == 0)) && !listening
		var heard2 bool
		t, heard2 = d.clusterRound(t, true, relay, listening)
		if listening && d.parent < 0 && heard2 {
			d.inI = false
		}
		t = d.statusFlood(t, true)
	}
	return t
}

// mergeIteration attaches unjoined clusters to the new clustering: joined
// clusters All-cast offers, capturers are gathered to their roots, the
// winner re-roots its tree under the offering vertex, and new labels
// propagate along the old tree (Section 6.4). reversed selects the
// singleton-fix round, where only clusters known to be non-singleton
// groups offer and only childless ruling-set clusters capture.
func (d *dev) mergeIteration(start uint64, reversed bool) uint64 {
	p := d.p
	offering := d.joined
	capturing := !d.joined
	if reversed {
		offering = d.joined || (d.inI && d.hasJoin)
		capturing = d.inI && !d.hasJoin && !d.joined
	}
	// Offers.
	d.captured = nil
	role := 2
	var body any
	if offering {
		role = 0
		body = offerBody{layer: d.layer, cid: d.cid, cidID: d.cidID, id: d.e.AssignedID()}
	} else if capturing {
		role = 1
	}
	if m, ok := p.castWindow(d.e, start, role, d.e.AssignedID(), body,
		func(m addressed) bool { _, isOffer := m.body.(offerBody); return isOffer }); ok {
		d.captured = &m
	}
	t := start + p.castSlots()

	// Gather a candidate to the root.
	cand := -1
	if d.captured != nil && capturing {
		cand = d.e.Index()
	}
	t = d.upPass(t, capturing,
		func() (any, bool) { return cand, cand >= 0 },
		func(m any) {
			if c, ok := m.(int); ok && cand < 0 {
				cand = c
			}
		})
	// Decision flood.
	d.winner = -1
	if d.parent < 0 && capturing && cand >= 0 {
		d.winner = cand
	}
	t = d.downPass(t, capturing,
		func() (any, bool) { return d.winner, d.winner >= 0 },
		func(m any) {
			if w, ok := m.(int); ok {
				d.winner = w
			}
		})

	// Relabel from the winner along the old tree.
	d.newLayer, d.newPar, d.newParID = -1, -1, 0
	if d.winner == d.e.Index() && d.captured != nil {
		if ob, ok := d.captured.body.(offerBody); ok {
			d.newLayer = ob.layer + 1
			d.newPar = d.captured.from
			d.newParID = ob.id
			d.newCID = ob.cid
			d.newCIDID = ob.cidID
		}
	}
	relabelSend := func() (any, bool) {
		if d.newLayer >= 0 {
			return relabelBody{from: d.e.Index(), fromID: d.e.AssignedID(),
				layer: d.newLayer, cid: d.newCID, cidID: d.newCIDID}, true
		}
		return nil, false
	}
	acceptUp := func(m any) {
		rb, ok := m.(relabelBody)
		if !ok || d.newLayer >= 0 || d.winner < 0 || !capturing {
			return
		}
		d.newLayer = rb.layer + 1
		d.newPar = rb.from
		d.newParID = rb.fromID
		d.newCID = rb.cid
		d.newCIDID = rb.cidID
	}
	acceptDown := func(m any) {
		rb, ok := m.(relabelBody)
		if !ok || d.newLayer >= 0 || d.winner < 0 || !capturing {
			return
		}
		d.newLayer = rb.layer + 1
		d.newPar = d.parent
		d.newParID = d.parentID
		d.newCID = rb.cid
		d.newCIDID = rb.cidID
	}
	t = d.upPass(t, capturing, relabelSend, acceptUp)
	t = d.downPass(t, capturing, relabelSend, acceptDown)

	// Commit.
	if d.newLayer >= 0 {
		d.layer = d.newLayer
		d.parent = d.newPar
		d.parentID = d.newParID
		d.cid = d.newCID
		d.cidID = d.newCIDID
		d.joined = true
	}
	return t
}

type offerBody struct {
	layer, cid, cidID, id int
}

type relabelBody struct {
	from, fromID, layer, cid, cidID int
}

// ackSlots is the singleton-detection pass: one slot per ID.
func (p Params) ackSlots() uint64 { return uint64(p.IDSpace) }

// ackPass: every vertex that merged under an external parent this
// refinement beeps in its new parent's ID slot; each vertex listens in
// its own slot, then the bit is ORed up to the root.
func (d *dev) ackPass(start uint64, mergedExternal bool) uint64 {
	p := d.p
	gotJoiner := false
	if p.Model == radio.Local {
		if mergedExternal {
			d.e.Transmit(start, addressed{from: d.e.Index(), to: d.parent})
		} else {
			fb := d.e.Listen(start)
			for _, raw := range fb.Payloads {
				if m, ok := raw.(addressed); ok && m.to == d.e.Index() {
					gotJoiner = true
				}
			}
		}
		d.e.SleepUntil(start + p.ackSlots() - 1)
	} else {
		for id := 1; id <= p.IDSpace; id++ {
			slot := start + uint64(id-1)
			if mergedExternal && d.parentID == id {
				d.e.Transmit(slot, 1)
			} else if !mergedExternal && d.e.AssignedID() == id {
				if fb := d.e.Listen(slot); fb.Status != radio.Silence {
					gotJoiner = true
				}
			}
		}
		d.e.SleepUntil(start + p.ackSlots() - 1)
	}
	t := start + p.ackSlots()
	// OR the joiner bit up to the root.
	t = d.upPass(t, true,
		func() (any, bool) { return orBit(gotJoiner), gotJoiner },
		func(m any) {
			if _, ok := m.(orBit); ok {
				gotJoiner = true
			}
		})
	if d.parent < 0 {
		d.hasJoin = gotJoiner
	}
	return t
}

type orBit bool

// refineSlots is the slot cost of one clustering refinement.
func (p Params) refineSlots() uint64 {
	roundSlots := p.downSlots() + p.castSlots() + p.upSlots()
	statusSlots := p.downSlots()
	var rsSlots uint64
	if p.Model == radio.CD {
		combines := uint64(1)<<uint(p.bits()) - 1
		rsSlots = combines * (roundSlots + statusSlots)
	} else {
		rsSlots = uint64(p.bits()) * (2*roundSlots + statusSlots)
	}
	merge := p.castSlots() + p.upSlots() + p.downSlots() + p.upSlots() + p.downSlots()
	total := rsSlots + uint64(p.MergeIters)*merge
	if p.Model == radio.CD {
		// ack pass + one reversed merge iteration (singleton fix).
		total += p.ackSlots() + p.upSlots() + merge
	}
	return total
}

// Slots returns the full schedule length.
func (p Params) Slots() uint64 {
	// Refinements, then the final up+down message relay.
	return uint64(p.Refinements)*p.refineSlots() + p.upSlots() + p.downSlots()
}

// refinement runs one clustering iteration: ruling set, merge rounds, and
// (in CD) the singleton fix.
func (d *dev) refinement(start uint64) uint64 {
	p := d.p
	d.joined = false
	d.hasJoin = false
	var t uint64
	if p.Model == radio.CD {
		t = d.rulingSetCD(start)
	} else {
		t = d.rulingSetLocal(start)
	}
	// Ruling-set clusters initiate the new clustering as-is.
	if d.inI {
		d.joined = true
	}
	mergedExternal := false
	for i := 0; i < p.MergeIters; i++ {
		before := d.joined
		t = d.mergeIteration(t, false)
		if !before && d.joined {
			mergedExternal = true
		}
	}
	if p.Model == radio.CD {
		t = d.ackPass(t, mergedExternal)
		t = d.mergeIteration(t, true)
	}
	return t
}

// DeviceResult is one device's final view.
type DeviceResult struct {
	Informed bool
	Msg      any
	Label    int
	Parent   int
	Cluster  int
}

// Program returns the deterministic Broadcast device program.
func Program(p Params, isSource bool, msg any, out *DeviceResult) radio.Program {
	return func(e *radio.Env) {
		d := &dev{
			e: e, p: p,
			layer: 0, parent: -1, parentID: 0,
			cid: e.Index(), cidID: e.AssignedID(),
			newLayer: -1,
		}
		t := uint64(1)
		for r := 0; r < p.Refinements; r++ {
			t = d.refinement(t)
		}
		// Relay the message up to the root and flood it down.
		has := isSource
		body := msg
		t = d.upPass(t, true,
			func() (any, bool) { return msgBody{body: body}, has },
			func(m any) {
				if mb, ok := m.(msgBody); ok && !has {
					has, body = true, mb.body
				}
			})
		d.downPass(t, true,
			func() (any, bool) { return msgBody{body: body}, has },
			func(m any) {
				if mb, ok := m.(msgBody); ok && !has {
					has, body = true, mb.body
				}
			})
		out.Informed = has
		if has {
			out.Msg = body
		}
		out.Label = d.layer
		out.Parent = d.parent
		out.Cluster = d.cid
	}
}

type msgBody struct{ body any }

// Outcome aggregates a run.
type Outcome struct {
	Result  *radio.Result
	Devices []DeviceResult
	Labels  labeling.Labeling
}

// AllInformed reports whether every device holds the message.
func (o *Outcome) AllInformed() bool {
	for _, d := range o.Devices {
		if !d.Informed {
			return false
		}
	}
	return true
}

// Roots counts remaining roots.
func (o *Outcome) Roots() int {
	r := 0
	for _, d := range o.Devices {
		if d.Parent < 0 {
			r++
		}
	}
	return r
}

// Broadcast runs the deterministic algorithm on g from source.
func Broadcast(g *graph.Graph, source int, msg any, p Params, seed uint64) (*Outcome, error) {
	if source < 0 || source >= g.N() {
		return nil, fmt.Errorf("detcast: source %d out of range", source)
	}
	n := g.N()
	devs := make([]DeviceResult, n)
	programs := make([]radio.Program, n)
	for v := 0; v < n; v++ {
		programs[v] = Program(p, v == source, msg, &devs[v])
	}
	res, err := radio.Run(radio.Config{Graph: g, Model: p.Model, Seed: seed,
		IDSpace: p.IDSpace, MaxSlots: 1 << 62, Sims: p.Sims}, programs)
	if err != nil {
		return nil, err
	}
	labels := make(labeling.Labeling, n)
	for v := range labels {
		labels[v] = devs[v].Label
	}
	return &Outcome{Result: res, Devices: devs, Labels: labels}, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
