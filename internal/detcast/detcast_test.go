package detcast

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/radio"
)

func TestDetLocalBroadcast(t *testing.T) {
	gs := []*graph.Graph{
		graph.Path(10), graph.Star(12), graph.Cycle(9),
		graph.GNP(14, 0.3, 1), graph.Grid(3, 4),
	}
	for _, g := range gs {
		p, err := NewParams(radio.Local, g.N(), g.N())
		if err != nil {
			t.Fatal(err)
		}
		out, err := Broadcast(g, 0, "detL", p, 0)
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		if !out.AllInformed() {
			missing := 0
			for _, d := range out.Devices {
				if !d.Informed {
					missing++
				}
			}
			t.Errorf("%s: %d vertices uninformed (roots: %d)", g.Name(), missing, out.Roots())
		}
	}
}

func TestDetCDBroadcast(t *testing.T) {
	gs := []*graph.Graph{
		graph.Path(8), graph.Star(8), graph.GNP(10, 0.35, 2),
	}
	for _, g := range gs {
		p, err := NewParams(radio.CD, g.N(), g.N())
		if err != nil {
			t.Fatal(err)
		}
		out, err := Broadcast(g, 0, "detCD", p, 0)
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		if !out.AllInformed() {
			missing := 0
			for _, d := range out.Devices {
				if !d.Informed {
					missing++
				}
			}
			t.Errorf("%s: %d vertices uninformed (roots: %d)", g.Name(), missing, out.Roots())
		}
	}
}

func TestDetSingleTreeFormed(t *testing.T) {
	for _, model := range []radio.Model{radio.Local, radio.CD} {
		g := graph.Grid(3, 3)
		p, err := NewParams(model, g.N(), g.N())
		if err != nil {
			t.Fatal(err)
		}
		out, err := Broadcast(g, 0, "x", p, 0)
		if err != nil {
			t.Fatal(err)
		}
		if out.Roots() != 1 {
			t.Errorf("%v: %d roots remain", model, out.Roots())
		}
		if err := out.Labels.Validate(g); err != nil {
			t.Errorf("%v: final labeling invalid: %v", model, err)
		}
		// Parents are neighbors, one layer up.
		for v, d := range out.Devices {
			if d.Parent < 0 {
				continue
			}
			if !g.HasEdge(v, d.Parent) {
				t.Errorf("%v: parent of %d is non-neighbor %d", model, v, d.Parent)
			}
			if out.Devices[d.Parent].Label != d.Label-1 {
				t.Errorf("%v: layer mismatch at %d", model, v)
			}
		}
	}
}

func TestDeterministicIdenticalRuns(t *testing.T) {
	// A deterministic algorithm must produce the identical outcome on
	// every run, regardless of seed.
	g := graph.GNP(12, 0.3, 5)
	p, err := NewParams(radio.Local, g.N(), g.N())
	if err != nil {
		t.Fatal(err)
	}
	a, err := Broadcast(g, 0, "d", p, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Broadcast(g, 0, "d", p, 999)
	if err != nil {
		t.Fatal(err)
	}
	if a.Result.Slots != b.Result.Slots || a.Result.Events != b.Result.Events {
		t.Error("deterministic algorithm diverged across seeds")
	}
	for v := range a.Devices {
		if a.Devices[v].Label != b.Devices[v].Label || a.Devices[v].Parent != b.Devices[v].Parent {
			t.Errorf("vertex %d state differs across seeds", v)
		}
	}
}

func TestDetEnergyFarBelowTime(t *testing.T) {
	// Theorem 27's point: astronomically long schedule, tiny energy.
	g := graph.Path(8)
	p, err := NewParams(radio.CD, g.N(), g.N())
	if err != nil {
		t.Fatal(err)
	}
	out, err := Broadcast(g, 0, "x", p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e := uint64(out.Result.MaxEnergy()); e*100 > out.Result.Slots {
		t.Errorf("max energy %d vs %d slots", e, out.Result.Slots)
	}
}

func TestDetPermutedIDs(t *testing.T) {
	// The algorithm must work with an arbitrary ID assignment, not just
	// the identity.
	g := graph.Path(6)
	p, err := NewParams(radio.Local, g.N(), 8)
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	devs := make([]DeviceResult, n)
	procs := make([]radio.Proc, n)
	for v := 0; v < n; v++ {
		procs[v] = Proc(p, v == 2, "perm", &devs[v])
	}
	ids := []int{7, 3, 8, 1, 5, 2}
	if _, err := radio.RunDevices(radio.Config{Graph: g, Model: radio.Local,
		IDSpace: 8, IDs: ids, MaxSlots: 1 << 62}, radio.Procs(procs)); err != nil {
		t.Fatal(err)
	}
	for v, d := range devs {
		if !d.Informed || d.Msg != "perm" {
			t.Errorf("vertex %d not informed with permuted IDs", v)
		}
	}
}

func TestParamsValidation(t *testing.T) {
	if _, err := NewParams(radio.NoCD, 8, 8); err == nil {
		t.Error("No-CD accepted (Appendix A has no No-CD algorithm)")
	}
	if _, err := NewParams(radio.Local, 0, 8); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewParams(radio.Local, 8, 4); err == nil {
		t.Error("idSpace < n accepted")
	}
}

func TestSlotsAccounting(t *testing.T) {
	for _, model := range []radio.Model{radio.Local, radio.CD} {
		g := graph.Path(6)
		p, err := NewParams(model, g.N(), g.N())
		if err != nil {
			t.Fatal(err)
		}
		out, err := Broadcast(g, 0, "x", p, 0)
		if err != nil {
			t.Fatal(err)
		}
		if out.Result.Slots > p.Slots() {
			t.Errorf("%v: used slot %d beyond schedule %d", model, out.Result.Slots, p.Slots())
		}
	}
}

func TestSourceValidation(t *testing.T) {
	g := graph.Path(4)
	p, err := NewParams(radio.Local, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Broadcast(g, -1, nil, p, 0); err == nil {
		t.Error("negative source accepted")
	}
	if _, err := Broadcast(g, 4, nil, p, 0); err == nil {
		t.Error("out-of-range source accepted")
	}
}
