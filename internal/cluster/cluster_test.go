package cluster

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/labeling"
	"repro/internal/radio"
)

// runWithLabels runs a Broadcaster over a fixed good labeling and returns
// informed flags and the radio result.
func runWithLabels(t *testing.T, g *graph.Graph, model radio.Model, labels []int,
	source, d int, seed uint64) ([]bool, *radio.Result) {
	t.Helper()
	n := g.N()
	// Sweeps need the shared bound; use n as the paper does.
	layers := n
	sr := NewSpec(model, n, g.MaxDegree())
	informed := make([]bool, n)
	devs := make([]radio.Device, n)
	for v := 0; v < n; v++ {
		v := v
		devs[v].Proc = radio.ContProc(func(ch radio.Channel) radio.Cont {
			b := &Broadcaster{SR: sr, Layers: layers,
				Label: labels[v], Has: v == source, Msg: "M"}
			return b.BroadcastCont(1, d, radio.Do(func() {
				informed[v] = b.Has
			}, nil))
		})
	}
	res, err := radio.RunDevices(radio.Config{Graph: g, Model: model, Seed: seed}, devs)
	if err != nil {
		t.Fatal(err)
	}
	return informed, res
}

func TestBroadcastSingleClusterPath(t *testing.T) {
	// BFS labeling from vertex 0 on a path; source at the far end must
	// reach everyone with d=0 (single root).
	for _, model := range []radio.Model{radio.Local, radio.CD, radio.NoCD} {
		g := graph.Path(10)
		labels := g.BFS(0)
		informed, _ := runWithLabels(t, g, model, labels, 9, 0, 3)
		for v, ok := range informed {
			if !ok {
				t.Errorf("%v: vertex %d not informed", model, v)
			}
		}
	}
}

func TestBroadcastTwoClusters(t *testing.T) {
	// Path with two roots at the ends; d=1 covers the two-cluster graph.
	g := graph.Path(8)
	labels := []int{0, 1, 2, 3, 3, 2, 1, 0}
	if err := labeling.Labeling(labels).Validate(g); err != nil {
		t.Fatal(err)
	}
	for _, model := range []radio.Model{radio.Local, radio.CD, radio.NoCD} {
		informed, _ := runWithLabels(t, g, model, labels, 0, 1, 5)
		for v, ok := range informed {
			if !ok {
				t.Errorf("%v: vertex %d not informed", model, v)
			}
		}
	}
}

func TestBroadcastManyClustersNeedsD(t *testing.T) {
	// All-zero labeling: every vertex is a root; G_L = G, so d must be
	// the graph diameter.
	g := graph.Path(6)
	labels := make([]int, 6)
	d, _ := g.Diameter()
	informed, _ := runWithLabels(t, g, radio.Local, labels, 0, d, 1)
	for v, ok := range informed {
		if !ok {
			t.Errorf("vertex %d not informed", v)
		}
	}
}

func TestBroadcastInsufficientDFailsFar(t *testing.T) {
	// With d=0 on an all-zero labeling of a long path, the message cannot
	// cross the whole graph: Up-cast(no-op) + final Down-cast(no-op)
	// leaves only All-cast-free propagation. Distant vertices stay dark.
	g := graph.Path(12)
	labels := make([]int, 12)
	informed, _ := runWithLabels(t, g, radio.Local, labels, 0, 0, 1)
	if informed[11] {
		t.Error("far vertex informed with d=0 and 12 singleton clusters")
	}
}

func TestBroadcastEnergyCheapForDistantIdlers(t *testing.T) {
	// CD model with pre-check: vertices far from the action should pay
	// O(1) per window they are scheduled into.
	g := graph.Path(10)
	labels := g.BFS(0)
	_, res := runWithLabels(t, g, radio.CD, labels, 0, 0, 2)
	// No vertex should spend more than a small multiple of the relevant
	// window count.
	for v, e := range res.Energy {
		if e > 120 {
			t.Errorf("vertex %d spent %d energy", v, e)
		}
	}
}

// runRefine runs a Refiner per vertex over old labels; becomeRoot is
// evaluated per vertex at window start with the device's random stream.
func runRefine(t *testing.T, g *graph.Graph, model radio.Model, old []int,
	becomeRoot func(ch radio.Channel, v int) bool, seed uint64) []int {
	t.Helper()
	n := g.N()
	sr := NewSpec(model, n, g.MaxDegree())
	newLabels := make([]int, n)
	devs := make([]radio.Device, n)
	for v := 0; v < n; v++ {
		v := v
		devs[v].Proc = radio.ContProc(func(ch radio.Channel) radio.Cont {
			r := &Refiner{SR: sr, Layers: n, Old: old[v]}
			return r.RefineCont(1, 1, becomeRoot(ch, v), radio.Do(func() {
				newLabels[v] = r.New
			}, nil))
		})
	}
	if _, err := radio.RunDevices(radio.Config{Graph: g, Model: model, Seed: seed}, devs); err != nil {
		t.Fatal(err)
	}
	return newLabels
}

func TestRefineProducesGoodLabeling(t *testing.T) {
	for _, model := range []radio.Model{radio.Local, radio.CD, radio.NoCD} {
		g := graph.GNP(18, 0.25, 2)
		old := make([]int, g.N())
		newLabels := runRefine(t, g, model, old,
			func(ch radio.Channel, v int) bool { return ch.Rand().Float64() < 0.5 }, 9)
		if err := labeling.Labeling(newLabels).Validate(g); err != nil {
			t.Errorf("%v: refined labeling invalid: %v", model, err)
		}
	}
}

func TestRefineNoNewRoots(t *testing.T) {
	// Roots in L' are a subset of roots in L.
	g := graph.GNP(20, 0.2, 4)
	old := g.BFS(0) // single root at 0
	newLabels := runRefine(t, g, radio.Local, old,
		func(ch radio.Channel, v int) bool {
			return old[v] == 0 && ch.Rand().Float64() < 0.5
		}, 2)
	for v, l := range newLabels {
		if l == 0 && old[v] != 0 {
			t.Errorf("vertex %d became a new root", v)
		}
	}
	if err := labeling.Labeling(newLabels).Validate(g); err != nil {
		t.Errorf("invalid: %v", err)
	}
}

func TestRefineAllTailsKeepsLabeling(t *testing.T) {
	// If no root takes the coin (becomeRoot false everywhere), every
	// vertex retains its old label.
	g := graph.Grid(3, 4)
	old := g.BFS(0)
	newLabels := runRefine(t, g, radio.Local, old,
		func(radio.Channel, int) bool { return false }, 2)
	for v := range newLabels {
		if newLabels[v] != old[v] {
			t.Errorf("vertex %d: label changed %d -> %d with no new roots", v, old[v], newLabels[v])
		}
	}
}

func TestSpecSlotsByModel(t *testing.T) {
	sl := NewSpec(radio.Local, 16, 4)
	if sl.Slots() != 1 {
		t.Errorf("LOCAL window = %d, want 1", sl.Slots())
	}
	sc := NewSpec(radio.CD, 16, 4)
	if sc.Slots() != sc.CD.Slots() {
		t.Error("CD window mismatch")
	}
	if !sc.CD.Precheck {
		t.Error("CD spec must enable the Remark 9 pre-check")
	}
	sn := NewSpec(radio.NoCD, 16, 4)
	if sn.Slots() != sn.Decay.Slots() {
		t.Error("No-CD window mismatch")
	}
	// Degenerate delta is clamped.
	s0 := NewSpec(radio.NoCD, 4, 0)
	if s0.Decay.Delta != 1 {
		t.Error("delta not clamped")
	}
}

func TestBroadcastSlotsFormula(t *testing.T) {
	sr := NewSpec(radio.Local, 8, 3)
	// layers=8, d=2: sweep = 7 slots; total = 7 + 2*(14+1) + 7 = 44.
	if got := BroadcastSlots(sr, 8, 2); got != 44 {
		t.Errorf("BroadcastSlots = %d, want 44", got)
	}
	if got := RefineSlots(sr, 8, 1); got != 7+7+1+7 {
		t.Errorf("RefineSlots = %d, want 22", got)
	}
	// Degenerate single layer.
	if got := BroadcastSlots(sr, 1, 0); got != 0 {
		t.Errorf("BroadcastSlots(layers=1,d=0) = %d, want 0", got)
	}
}

func TestBroadcasterScheduleAgreement(t *testing.T) {
	// Every device must finish the broadcast at the same schedule end:
	// verified by having them all transmit at the first post-broadcast
	// slot and checking nobody fails on clock violations.
	g := graph.Cycle(6)
	labels := g.BFS(0)
	sr := NewSpec(radio.CD, 6, 2)
	end := BroadcastSlots(sr, 6, 0)
	devs := make([]radio.Device, 6)
	for v := 0; v < 6; v++ {
		v := v
		devs[v].Proc = radio.ContProc(func(ch radio.Channel) radio.Cont {
			b := &Broadcaster{SR: sr, Layers: 6,
				Label: labels[v], Has: v == 0, Msg: 1}
			return b.BroadcastCont(1, 0, radio.EvalCh(func(ch radio.Channel) radio.Cont {
				if ch.Now() > end {
					t.Errorf("device %d: clock %d past schedule end %d", v, ch.Now(), end)
				}
				// Must not violate clocks: every device's schedule ends
				// strictly before 1+end.
				return radio.Then(radio.Transmit(1+end, "sync"), nil)
			}))
		})
	}
	if _, err := radio.RunDevices(radio.Config{Graph: g, Model: radio.CD, Seed: 1}, devs); err != nil {
		t.Fatal(err)
	}
}
