package cluster

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/labeling"
	"repro/internal/radio"
)

// runWithLabels runs a Broadcaster over a fixed good labeling and returns
// informed flags and the radio result.
func runWithLabels(t *testing.T, g *graph.Graph, model radio.Model, labels []int,
	source, d int, seed uint64) ([]bool, *radio.Result) {
	t.Helper()
	n := g.N()
	layers := 0
	for _, l := range labels {
		if l+1 > layers {
			layers = l + 1
		}
	}
	// Sweeps need the shared bound; use n as the paper does.
	layers = n
	sr := NewSpec(model, n, g.MaxDegree())
	informed := make([]bool, n)
	programs := make([]radio.Program, n)
	for v := 0; v < n; v++ {
		programs[v] = func(e *radio.Env) {
			b := Broadcaster{Env: e, SR: sr, Layers: layers,
				Label: labels[e.Index()], Has: e.Index() == source, Msg: "M"}
			b.Broadcast(1, d)
			informed[e.Index()] = b.Has
		}
	}
	res, err := radio.Run(radio.Config{Graph: g, Model: model, Seed: seed}, programs)
	if err != nil {
		t.Fatal(err)
	}
	return informed, res
}

func TestBroadcastSingleClusterPath(t *testing.T) {
	// BFS labeling from vertex 0 on a path; source at the far end must
	// reach everyone with d=0 (single root).
	for _, model := range []radio.Model{radio.Local, radio.CD, radio.NoCD} {
		g := graph.Path(10)
		labels := g.BFS(0)
		informed, _ := runWithLabels(t, g, model, labels, 9, 0, 3)
		for v, ok := range informed {
			if !ok {
				t.Errorf("%v: vertex %d not informed", model, v)
			}
		}
	}
}

func TestBroadcastTwoClusters(t *testing.T) {
	// Path with two roots at the ends; d=1 covers the two-cluster graph.
	g := graph.Path(8)
	labels := []int{0, 1, 2, 3, 3, 2, 1, 0}
	if err := labeling.Labeling(labels).Validate(g); err != nil {
		t.Fatal(err)
	}
	for _, model := range []radio.Model{radio.Local, radio.CD, radio.NoCD} {
		informed, _ := runWithLabels(t, g, model, labels, 0, 1, 5)
		for v, ok := range informed {
			if !ok {
				t.Errorf("%v: vertex %d not informed", model, v)
			}
		}
	}
}

func TestBroadcastManyClustersNeedsD(t *testing.T) {
	// All-zero labeling: every vertex is a root; G_L = G, so d must be
	// the graph diameter.
	g := graph.Path(6)
	labels := make([]int, 6)
	d, _ := g.Diameter()
	informed, _ := runWithLabels(t, g, radio.Local, labels, 0, d, 1)
	for v, ok := range informed {
		if !ok {
			t.Errorf("vertex %d not informed", v)
		}
	}
}

func TestBroadcastInsufficientDFailsFar(t *testing.T) {
	// With d=0 on an all-zero labeling of a long path, the message cannot
	// cross the whole graph: Up-cast(no-op) + final Down-cast(no-op)
	// leaves only All-cast-free propagation. Distant vertices stay dark.
	g := graph.Path(12)
	labels := make([]int, 12)
	informed, _ := runWithLabels(t, g, radio.Local, labels, 0, 0, 1)
	if informed[11] {
		t.Error("far vertex informed with d=0 and 12 singleton clusters")
	}
}

func TestBroadcastEnergyCheapForDistantIdlers(t *testing.T) {
	// CD model with pre-check: vertices far from the action should pay
	// O(1) per window they are scheduled into.
	g := graph.Path(10)
	labels := g.BFS(0)
	_, res := runWithLabels(t, g, radio.CD, labels, 0, 0, 2)
	// No vertex should spend more than a small multiple of the relevant
	// window count.
	for v, e := range res.Energy {
		if e > 120 {
			t.Errorf("vertex %d spent %d energy", v, e)
		}
	}
}

func TestRefineProducesGoodLabeling(t *testing.T) {
	for _, model := range []radio.Model{radio.Local, radio.CD, radio.NoCD} {
		g := graph.GNP(18, 0.25, 2)
		n := g.N()
		sr := NewSpec(model, n, g.MaxDegree())
		newLabels := make([]int, n)
		programs := make([]radio.Program, n)
		for v := 0; v < n; v++ {
			programs[v] = func(e *radio.Env) {
				r := Refiner{Env: e, SR: sr, Layers: n, Old: 0}
				r.Refine(1, 1, e.Rand().Float64() < 0.5)
				newLabels[e.Index()] = r.New
			}
		}
		if _, err := radio.Run(radio.Config{Graph: g, Model: model, Seed: 9}, programs); err != nil {
			t.Fatal(err)
		}
		if err := labeling.Labeling(newLabels).Validate(g); err != nil {
			t.Errorf("%v: refined labeling invalid: %v", model, err)
		}
	}
}

func TestRefineNoNewRoots(t *testing.T) {
	// Roots in L' are a subset of roots in L.
	g := graph.GNP(20, 0.2, 4)
	n := g.N()
	sr := NewSpec(radio.Local, n, g.MaxDegree())
	old := g.BFS(0) // single root at 0
	newLabels := make([]int, n)
	programs := make([]radio.Program, n)
	for v := 0; v < n; v++ {
		programs[v] = func(e *radio.Env) {
			r := Refiner{Env: e, SR: sr, Layers: n, Old: old[e.Index()]}
			r.Refine(1, 1, old[e.Index()] == 0 && e.Rand().Float64() < 0.5)
			newLabels[e.Index()] = r.New
		}
	}
	if _, err := radio.Run(radio.Config{Graph: g, Model: radio.Local, Seed: 2}, programs); err != nil {
		t.Fatal(err)
	}
	for v, l := range newLabels {
		if l == 0 && old[v] != 0 {
			t.Errorf("vertex %d became a new root", v)
		}
	}
	if err := labeling.Labeling(newLabels).Validate(g); err != nil {
		t.Errorf("invalid: %v", err)
	}
}

func TestRefineAllTailsKeepsLabeling(t *testing.T) {
	// If no root takes the coin (becomeRoot false everywhere), every
	// vertex retains its old label.
	g := graph.Grid(3, 4)
	n := g.N()
	sr := NewSpec(radio.Local, n, g.MaxDegree())
	old := g.BFS(0)
	newLabels := make([]int, n)
	programs := make([]radio.Program, n)
	for v := 0; v < n; v++ {
		programs[v] = func(e *radio.Env) {
			r := Refiner{Env: e, SR: sr, Layers: n, Old: old[e.Index()]}
			r.Refine(1, 1, false)
			newLabels[e.Index()] = r.New
		}
	}
	if _, err := radio.Run(radio.Config{Graph: g, Model: radio.Local, Seed: 2}, programs); err != nil {
		t.Fatal(err)
	}
	for v := range newLabels {
		if newLabels[v] != old[v] {
			t.Errorf("vertex %d: label changed %d -> %d with no new roots", v, old[v], newLabels[v])
		}
	}
}

func TestSpecSlotsByModel(t *testing.T) {
	sl := NewSpec(radio.Local, 16, 4)
	if sl.Slots() != 1 {
		t.Errorf("LOCAL window = %d, want 1", sl.Slots())
	}
	sc := NewSpec(radio.CD, 16, 4)
	if sc.Slots() != sc.CD.Slots() {
		t.Error("CD window mismatch")
	}
	if !sc.CD.Precheck {
		t.Error("CD spec must enable the Remark 9 pre-check")
	}
	sn := NewSpec(radio.NoCD, 16, 4)
	if sn.Slots() != sn.Decay.Slots() {
		t.Error("No-CD window mismatch")
	}
	// Degenerate delta is clamped.
	s0 := NewSpec(radio.NoCD, 4, 0)
	if s0.Decay.Delta != 1 {
		t.Error("delta not clamped")
	}
}

func TestBroadcastSlotsFormula(t *testing.T) {
	sr := NewSpec(radio.Local, 8, 3)
	// layers=8, d=2: sweep = 7 slots; total = 7 + 2*(14+1) + 7 = 44.
	if got := BroadcastSlots(sr, 8, 2); got != 44 {
		t.Errorf("BroadcastSlots = %d, want 44", got)
	}
	if got := RefineSlots(sr, 8, 1); got != 7+7+1+7 {
		t.Errorf("RefineSlots = %d, want 22", got)
	}
	// Degenerate single layer.
	if got := BroadcastSlots(sr, 1, 0); got != 0 {
		t.Errorf("BroadcastSlots(layers=1,d=0) = %d, want 0", got)
	}
}

func TestBroadcasterScheduleAgreement(t *testing.T) {
	// Every device must finish the broadcast at the same schedule end:
	// verified by having them all transmit at the first post-broadcast
	// slot and checking nobody panics on clock violations.
	g := graph.Cycle(6)
	labels := g.BFS(0)
	sr := NewSpec(radio.CD, 6, 2)
	end := BroadcastSlots(sr, 6, 0)
	programs := make([]radio.Program, 6)
	for v := 0; v < 6; v++ {
		programs[v] = func(e *radio.Env) {
			b := Broadcaster{Env: e, SR: sr, Layers: 6,
				Label: labels[e.Index()], Has: e.Index() == 0, Msg: 1}
			next := b.Broadcast(1, 0)
			if next != 1+end {
				t.Errorf("device %d: next = %d, want %d", e.Index(), next, 1+end)
			}
			e.Transmit(next, "sync") // must not violate clocks
		}
	}
	if _, err := radio.Run(radio.Config{Graph: g, Model: radio.CD, Seed: 1}, programs); err != nil {
		t.Fatal(err)
	}
}
