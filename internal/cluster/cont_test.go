package cluster

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/radio"
)

// contTraceOf runs one device population and renders its event stream
// plus aggregate counters for byte-exact comparison.
func contTraceOf(t *testing.T, cfg radio.Config, devs []radio.Device) string {
	t.Helper()
	var sb strings.Builder
	cfg.Trace = func(ev radio.Event) {
		fmt.Fprintf(&sb, "%d %d %d %v %d\n", ev.Slot, ev.Dev, ev.Kind, ev.Payload, ev.From)
	}
	res, err := radio.RunDevices(cfg, devs)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&sb, "%d %d %v %v", res.Slots, res.Events, res.Energy, res.Listens)
	return sb.String()
}

// TestBroadcastContTraceDeterministic pins the continuation Broadcaster's
// determinism: identical event streams — including identical random
// draws inside the SR machines — run over run, for every model on a
// two-cluster labeling, with every vertex informed.
func TestBroadcastContTraceDeterministic(t *testing.T) {
	g := graph.Path(8)
	labels := []int{0, 1, 2, 3, 3, 2, 1, 0}
	n := g.N()
	for _, model := range []radio.Model{radio.Local, radio.CD, radio.NoCD} {
		for seed := uint64(1); seed <= 3; seed++ {
			spec := NewSpec(model, n, g.MaxDegree())
			cfg := radio.Config{Graph: g, Model: model, Seed: seed}

			build := func(has []bool) []radio.Device {
				devs := make([]radio.Device, n)
				for v := 0; v < n; v++ {
					v := v
					devs[v].Proc = radio.ContProc(func(ch radio.Channel) radio.Cont {
						b := &Broadcaster{SR: spec, Layers: n,
							Label: labels[v], Has: v == 0, Msg: "M"}
						return b.BroadcastCont(1, 1, radio.Do(func() {
							has[v] = b.Has
						}, nil))
					})
				}
				return devs
			}

			firstHas := make([]bool, n)
			secondHas := make([]bool, n)
			got := contTraceOf(t, cfg, build(firstHas))
			again := contTraceOf(t, cfg, build(secondHas))
			if got != again {
				t.Fatalf("%v seed %d: cont broadcaster trace differs run over run", model, seed)
			}
			for v := range firstHas {
				if firstHas[v] != secondHas[v] {
					t.Fatalf("%v seed %d: vertex %d informed mismatch", model, seed, v)
				}
				if !firstHas[v] {
					t.Errorf("%v seed %d: vertex %d not informed", model, seed, v)
				}
			}
		}
	}
}
