package cluster

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/radio"
)

// contTraceOf runs one device population and renders its event stream
// plus aggregate counters for byte-exact comparison.
func contTraceOf(t *testing.T, cfg radio.Config, devs []radio.Device) string {
	t.Helper()
	var sb strings.Builder
	cfg.Trace = func(ev radio.Event) {
		fmt.Fprintf(&sb, "%d %d %d %v %d\n", ev.Slot, ev.Dev, ev.Kind, ev.Payload, ev.From)
	}
	res, err := radio.RunDevices(cfg, devs)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&sb, "%d %d %v %v", res.Slots, res.Events, res.Energy, res.Listens)
	return sb.String()
}

// TestBroadcastContMatchesBlocking pins the continuation Broadcaster
// against the blocking one: identical event streams — including
// identical random draws inside the SR machines — for every model on a
// two-cluster labeling.
func TestBroadcastContMatchesBlocking(t *testing.T) {
	g := graph.Path(8)
	labels := []int{0, 1, 2, 3, 3, 2, 1, 0}
	n := g.N()
	sr := func(model radio.Model) Spec { return NewSpec(model, n, g.MaxDegree()) }
	for _, model := range []radio.Model{radio.Local, radio.CD, radio.NoCD} {
		for seed := uint64(1); seed <= 3; seed++ {
			spec := sr(model)
			cfg := radio.Config{Graph: g, Model: model, Seed: seed}

			inline := make([]radio.Device, n)
			inlineHas := make([]bool, n)
			for v := 0; v < n; v++ {
				v := v
				inline[v].Proc = radio.ContProc(func(ch radio.Channel) radio.Cont {
					b := &Broadcaster{Env: ch, SR: spec, Layers: n,
						Label: labels[v], Has: v == 0, Msg: "M"}
					return b.BroadcastCont(1, 1, radio.Do(func() {
						inlineHas[v] = b.Has
					}, nil))
				})
			}

			blocking := make([]radio.Device, n)
			blockingHas := make([]bool, n)
			for v := 0; v < n; v++ {
				v := v
				blocking[v].Program = func(e *radio.Env) {
					b := Broadcaster{Env: e, SR: spec, Layers: n,
						Label: labels[v], Has: v == 0, Msg: "M"}
					b.Broadcast(1, 1)
					blockingHas[v] = b.Has
				}
			}

			got := contTraceOf(t, cfg, inline)
			want := contTraceOf(t, cfg, blocking)
			if got != want {
				t.Fatalf("%v seed %d: cont broadcaster trace diverges from blocking", model, seed)
			}
			for v := range inlineHas {
				if inlineHas[v] != blockingHas[v] {
					t.Fatalf("%v seed %d: vertex %d informed mismatch", model, seed, v)
				}
				if !inlineHas[v] {
					t.Errorf("%v seed %d: vertex %d not informed", model, seed, v)
				}
			}
		}
	}
}
