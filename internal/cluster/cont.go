package cluster

// Continuation forms of the SR-communication windows and the Lemma 10
// Broadcaster, for protocols ported to the inline step ABI (radio.Proc).
// Each form occupies exactly the window its blocking counterpart does
// and evaluates mutable device state (roles, Has/Msg) at window start,
// so a ported protocol produces the byte-identical slot-level event
// stream of its blocking original — the property the cdmerge port pins.

import (
	"repro/internal/labeling"
	"repro/internal/radio"
	"repro/internal/srcomm"
)

// SendCont participates in the window at start as a sender, then
// resumes with k. payload is read at window start.
func (s Spec) SendCont(start uint64, payload func() any, k radio.Cont) radio.Cont {
	return radio.Eval(func() radio.Cont {
		m := payload()
		switch s.Model {
		case radio.Local:
			return radio.ProcCont(srcomm.LocalSendProc(start, m), k)
		case radio.CD, radio.CDStar:
			return radio.ProcCont(srcomm.CDSendProc(start, s.CD, m), k)
		default:
			return radio.ProcCont(srcomm.DecaySendProc(start, s.Decay, m), k)
		}
	})
}

// ReceiveCont participates in the window as a receiver; done observes
// the delivery (message, ok) when the window ends, before k resumes.
func (s Spec) ReceiveCont(start uint64, done func(any, bool), k radio.Cont) radio.Cont {
	return radio.Eval(func() radio.Cont {
		switch s.Model {
		case radio.Local:
			var got []any
			return radio.ProcCont(srcomm.LocalReceiveProc(start, &got),
				radio.Do(func() {
					if len(got) > 0 {
						done(got[0], true)
					} else {
						done(nil, false)
					}
				}, k))
		case radio.CD, radio.CDStar:
			var m any
			var ok bool
			return radio.ProcCont(srcomm.CDReceiveProc(start, s.CD, &m, &ok),
				radio.Do(func() { done(m, ok) }, k))
		default:
			var m any
			var ok bool
			return radio.ProcCont(srcomm.DecayReceiveProc(start, s.Decay, &m, &ok),
				radio.Do(func() { done(m, ok) }, k))
		}
	})
}

// SkipCont advances a non-participant's clock to the end of the window,
// then resumes with k.
func (s Spec) SkipCont(start uint64, k radio.Cont) radio.Cont {
	return radio.Then(radio.Sleep(start+s.Slots()-1), k)
}

// window emits one sweep window: the device's role is chosen at window
// start from the Broadcaster's current state.
func (b *Broadcaster) window(ws uint64, sendLayer, recvLayer int, k radio.Cont) radio.Cont {
	return radio.Eval(func() radio.Cont {
		switch {
		case b.Has && b.Label == sendLayer:
			return b.SR.SendCont(ws, func() any { return b.Msg }, k)
		case !b.Has && b.Label == recvLayer:
			return b.SR.ReceiveCont(ws, func(m any, ok bool) {
				if ok {
					b.Has, b.Msg = true, m
				}
			}, k)
		default:
			return b.SR.SkipCont(ws, k)
		}
	})
}

// DownCastCont is the continuation form of DownCast: windows i =
// 0..Layers-2, holders at layer i send, non-holders at i+1 receive.
func (b *Broadcaster) DownCastCont(start uint64, k radio.Cont) radio.Cont {
	w := b.SR.Slots()
	var it func(i int) radio.Cont
	it = func(i int) radio.Cont {
		if i > b.Layers-2 {
			return k
		}
		return b.window(start+uint64(i)*w, i, i+1, radio.Eval(func() radio.Cont { return it(i + 1) }))
	}
	return it(0)
}

// UpCastCont is the continuation form of UpCast: windows i =
// Layers-1..1, holders at layer i send, non-holders at i-1 receive.
func (b *Broadcaster) UpCastCont(start uint64, k radio.Cont) radio.Cont {
	w := b.SR.Slots()
	var it func(wi int) radio.Cont
	it = func(wi int) radio.Cont {
		i := b.Layers - 1 - wi
		if i < 1 {
			return k
		}
		return b.window(start+uint64(wi)*w, i, i-1, radio.Eval(func() radio.Cont { return it(wi + 1) }))
	}
	return it(0)
}

// AllCastCont is the continuation form of AllCast: one window, holders
// send, non-holders receive.
func (b *Broadcaster) AllCastCont(start uint64, k radio.Cont) radio.Cont {
	return radio.Eval(func() radio.Cont {
		if b.Has {
			return b.SR.SendCont(start, func() any { return b.Msg }, k)
		}
		return b.SR.ReceiveCont(start, func(m any, ok bool) {
			if ok {
				b.Has, b.Msg = true, m
			}
		}, k)
	})
}

// BroadcastCont is the continuation form of Broadcast: Up-cast, d rounds
// of (Down-cast, All-cast, Up-cast), final Down-cast, then k. It
// occupies exactly BroadcastSlots(SR, Layers, d) slots from start.
func (b *Broadcaster) BroadcastCont(start uint64, d int, k radio.Cont) radio.Cont {
	w := b.SR.Slots()
	sweep := uint64(maxInt(b.Layers-1, 0)) * w
	var round func(r int, t uint64) radio.Cont
	round = func(r int, t uint64) radio.Cont {
		if r == d {
			return b.DownCastCont(t, k)
		}
		return b.DownCastCont(t,
			b.AllCastCont(t+sweep,
				b.UpCastCont(t+sweep+w,
					round(r+1, t+2*sweep+w))))
	}
	return b.UpCastCont(start, round(0, start+sweep))
}

// refineWindow emits one refinement sweep window: labeled devices at old
// layer sendLayer broadcast their new label, unlabeled devices at old
// layer recvLayer try to adopt. Roles are read at window start.
func (r *Refiner) refineWindow(ws uint64, sendLayer, recvLayer int, k radio.Cont) radio.Cont {
	return radio.Eval(func() radio.Cont {
		switch {
		case r.New != labeling.Bottom && r.Old == sendLayer:
			return r.SR.SendCont(ws, func() any { return r.New }, k)
		case r.New == labeling.Bottom && r.Old == recvLayer:
			return r.SR.ReceiveCont(ws, func(m any, ok bool) {
				if ok {
					if lab, isInt := m.(int); isInt {
						r.New = lab + 1
					}
				}
			}, k)
		default:
			return r.SR.SkipCont(ws, k)
		}
	})
}

// DownSweepCont is the continuation form of downSweep: windows i =
// 0..Layers-2 over old layers, senders at i, adopters at i+1.
func (r *Refiner) DownSweepCont(start uint64, k radio.Cont) radio.Cont {
	w := r.SR.Slots()
	var it func(i int) radio.Cont
	it = func(i int) radio.Cont {
		if i > r.Layers-2 {
			return k
		}
		return r.refineWindow(start+uint64(i)*w, i, i+1, radio.Eval(func() radio.Cont { return it(i + 1) }))
	}
	return it(0)
}

// UpSweepCont is the continuation form of upSweep: windows i =
// Layers-1..1, senders at i, adopters at i-1.
func (r *Refiner) UpSweepCont(start uint64, k radio.Cont) radio.Cont {
	w := r.SR.Slots()
	var it func(wi int) radio.Cont
	it = func(wi int) radio.Cont {
		i := r.Layers - 1 - wi
		if i < 1 {
			return k
		}
		return r.refineWindow(start+uint64(wi)*w, i, i-1, radio.Eval(func() radio.Cont { return it(wi + 1) }))
	}
	return it(0)
}

// AllWindowCont is the continuation form of allWindow: one window where
// every labeled vertex sends and every unlabeled vertex tries to adopt.
func (r *Refiner) AllWindowCont(start uint64, k radio.Cont) radio.Cont {
	return radio.Eval(func() radio.Cont {
		if r.New != labeling.Bottom {
			return r.SR.SendCont(start, func() any { return r.New }, k)
		}
		return r.SR.ReceiveCont(start, func(m any, ok bool) {
			if ok {
				if lab, isInt := m.(int); isInt {
					r.New = lab + 1
				}
			}
		}, k)
	})
}

// RefineCont is the continuation form of Refine: s rounds of (Down-cast,
// All-cast, Up-cast) plus a final Down-cast, bracketed by the Step 1
// root coin at entry and the keep-old-label fallback at exit. It
// occupies exactly RefineSlots(SR, Layers, s) slots from start.
// becomeRoot must already be decided by the caller at assembly time
// (the coin is drawn at refinement start, matching the blocking form).
func (r *Refiner) RefineCont(start uint64, s int, becomeRoot bool, k radio.Cont) radio.Cont {
	w := r.SR.Slots()
	sweep := uint64(maxInt(r.Layers-1, 0)) * w
	fallback := radio.Do(func() {
		if r.New == labeling.Bottom {
			r.New = r.Old
		}
	}, k)
	var round func(i int, t uint64) radio.Cont
	round = func(i int, t uint64) radio.Cont {
		if i == s {
			return r.DownSweepCont(t, fallback)
		}
		return r.DownSweepCont(t,
			r.AllWindowCont(t+sweep,
				r.UpSweepCont(t+sweep+w,
					round(i+1, t+2*sweep+w))))
	}
	return radio.Do(func() {
		r.New = labeling.Bottom
		if becomeRoot && r.Old == 0 {
			r.New = 0
		}
	}, round(0, start))
}
