// Package cluster implements the layered communication machinery of
// Section 5: the Down-cast / All-cast / Up-cast sweeps over a good
// labeling, the Lemma 10 Broadcast given a labeling, and the
// "compute a new labeling L' from L" refinement step.
//
// All phases are built from SR-communication windows. A Spec fixes the
// model-appropriate SR-communication parameters so that every device
// derives the identical global slot layout from shared knowledge (n,
// Delta, model) — the paper's synchronization discipline.
package cluster

import (
	"repro/internal/labeling"
	"repro/internal/radio"
	"repro/internal/srcomm"
)

// Spec selects and parameterizes the SR-communication realization for a
// model, giving each invocation a fixed window of Slots() slots.
type Spec struct {
	Model radio.Model
	Decay srcomm.DecayParams // No-CD realization (Lemma 7)
	CD    srcomm.CDParams    // CD realization (Lemma 8)
}

// NewSpec returns w.h.p. SR-communication parameters for an n-vertex
// network with maximum degree delta under the given model. For CD the
// Remark 9 pre-check is enabled, which is what makes the Lemma 10 energy
// O(d + log n) rather than O(d log n).
func NewSpec(model radio.Model, n, delta int) Spec {
	if delta < 1 {
		delta = 1
	}
	return Spec{
		Model: model,
		Decay: srcomm.DecayParams{Delta: delta, Phases: srcomm.DecayPhasesForFailure(n)},
		CD: srcomm.CDParams{Delta: delta, Epochs: srcomm.CDEpochsForFailure(n, delta),
			Precheck: true},
	}
}

// Slots returns the window length of one SR-communication invocation.
func (s Spec) Slots() uint64 {
	switch s.Model {
	case radio.Local:
		return 1
	case radio.CD, radio.CDStar:
		return s.CD.Slots()
	default:
		return s.Decay.Slots()
	}
}

// Send participates in the window starting at start as a sender.
func (s Spec) Send(e radio.Channel, start uint64, payload any) {
	switch s.Model {
	case radio.Local:
		srcomm.LocalSend(e, start, payload)
	case radio.CD, radio.CDStar:
		srcomm.CDSend(e, start, s.CD, payload)
	default:
		srcomm.DecaySend(e, start, s.Decay, payload)
	}
}

// Receive participates in the window as a receiver, returning a message
// from some sending neighbor if one exists.
func (s Spec) Receive(e radio.Channel, start uint64) (any, bool) {
	switch s.Model {
	case radio.Local:
		got := srcomm.LocalReceive(e, start)
		if len(got) == 0 {
			return nil, false
		}
		return got[0], true
	case radio.CD, radio.CDStar:
		return srcomm.CDReceive(e, start, s.CD)
	default:
		return srcomm.DecayReceive(e, start, s.Decay)
	}
}

// Skip advances a non-participant's clock to the end of the window.
func (s Spec) Skip(e radio.Channel, start uint64) {
	e.SleepUntil(start + s.Slots() - 1)
}

// Broadcaster is the per-device state of the Lemma 10 Broadcast over a
// fixed good labeling.
type Broadcaster struct {
	// Env is the device handle.
	Env radio.Channel
	// SR is the shared SR-communication spec.
	SR Spec
	// Layers is the shared bound L on the number of layers.
	Layers int
	// Label is the device's layer L*(v).
	Label int
	// Has reports whether the device holds the message.
	Has bool
	// Msg is the message (valid when Has).
	Msg any
}

// DownCast runs one Down-cast sweep (windows i = 0..Layers-2): holders at
// layer i send, non-holders at layer i+1 receive. Returns the next free
// slot.
func (b *Broadcaster) DownCast(start uint64) uint64 {
	w := b.SR.Slots()
	for i := 0; i <= b.Layers-2; i++ {
		ws := start + uint64(i)*w
		switch {
		case b.Has && b.Label == i:
			b.SR.Send(b.Env, ws, b.Msg)
		case !b.Has && b.Label == i+1:
			if m, ok := b.SR.Receive(b.Env, ws); ok {
				b.Has, b.Msg = true, m
			}
		default:
			b.SR.Skip(b.Env, ws)
		}
	}
	return start + uint64(maxInt(b.Layers-1, 0))*w
}

// UpCast runs one Up-cast sweep (windows i = Layers-1..1): holders at
// layer i send, non-holders at layer i-1 receive. Returns the next free
// slot.
func (b *Broadcaster) UpCast(start uint64) uint64 {
	w := b.SR.Slots()
	wi := 0
	for i := b.Layers - 1; i >= 1; i-- {
		ws := start + uint64(wi)*w
		wi++
		switch {
		case b.Has && b.Label == i:
			b.SR.Send(b.Env, ws, b.Msg)
		case !b.Has && b.Label == i-1:
			if m, ok := b.SR.Receive(b.Env, ws); ok {
				b.Has, b.Msg = true, m
			}
		default:
			b.SR.Skip(b.Env, ws)
		}
	}
	return start + uint64(maxInt(b.Layers-1, 0))*w
}

// AllCast runs one All-cast window: all holders send, all non-holders
// receive. Returns the next free slot.
func (b *Broadcaster) AllCast(start uint64) uint64 {
	if b.Has {
		b.SR.Send(b.Env, start, b.Msg)
	} else if m, ok := b.SR.Receive(b.Env, start); ok {
		b.Has, b.Msg = true, m
	}
	return start + b.SR.Slots()
}

// BroadcastSlots returns the total window length of Broadcast(d) with the
// given spec and layer bound.
func BroadcastSlots(sr Spec, layers, d int) uint64 {
	sweep := uint64(maxInt(layers-1, 0)) * sr.Slots()
	// Up-cast + d * (Down-cast, All-cast, Up-cast) + Down-cast.
	return sweep + uint64(d)*(2*sweep+sr.Slots()) + sweep
}

// Broadcast runs the Lemma 10 algorithm: (1) Up-cast to reach a root,
// (2) d rounds of (Down-cast, All-cast, Up-cast) to cover G_L*, and
// (3) a final Down-cast. d must bound the diameter of G_L*. Returns the
// next free slot; b.Has reports delivery.
func (b *Broadcaster) Broadcast(start uint64, d int) uint64 {
	t := b.UpCast(start)
	for r := 0; r < d; r++ {
		t = b.DownCast(t)
		t = b.AllCast(t)
		t = b.UpCast(t)
	}
	return b.DownCast(t)
}

// Refiner is the per-device state of the "compute L' from L" step of
// Section 5. Labels use labeling.Bottom for the paper's ⊥.
type Refiner struct {
	// Env is the device handle.
	Env radio.Channel
	// SR is the shared SR-communication spec.
	SR Spec
	// Layers bounds the layer count of the old labeling (the paper
	// sweeps i = 0..n-2, i.e. Layers = n).
	Layers int
	// Old is the device's label under L.
	Old int
	// New is the device's label under L' (Bottom until assigned).
	New int
}

// RefineSlots returns the total window length of a refinement with
// parameter s.
func RefineSlots(sr Spec, layers, s int) uint64 {
	sweep := uint64(maxInt(layers-1, 0)) * sr.Slots()
	return uint64(s)*(2*sweep+sr.Slots()) + sweep
}

// Refine runs the refinement: s rounds of (Down-cast, All-cast, Up-cast)
// followed by a final Down-cast, after which any still-unlabeled device
// retains its old label. becomeRoot is the caller's Step 1 coin: an old
// root that keeps layer 0 in L'. Returns the next free slot; the new
// label is left in r.New.
func (r *Refiner) Refine(start uint64, s int, becomeRoot bool) uint64 {
	r.New = labeling.Bottom
	if becomeRoot && r.Old == 0 {
		r.New = 0
	}
	t := start
	for round := 0; round < s; round++ {
		t = r.downSweep(t)
		t = r.allWindow(t)
		t = r.upSweep(t)
	}
	t = r.downSweep(t)
	if r.New == labeling.Bottom {
		r.New = r.Old
	}
	return t
}

// downSweep: windows i = 0..Layers-2 over OLD layers; labeled senders at
// old layer i broadcast their new label, unlabeled receivers at old layer
// i+1 adopt label m+1.
func (r *Refiner) downSweep(start uint64) uint64 {
	w := r.SR.Slots()
	for i := 0; i <= r.Layers-2; i++ {
		ws := start + uint64(i)*w
		switch {
		case r.New != labeling.Bottom && r.Old == i:
			r.SR.Send(r.Env, ws, r.New)
		case r.New == labeling.Bottom && r.Old == i+1:
			r.tryAdopt(ws)
		default:
			r.SR.Skip(r.Env, ws)
		}
	}
	return start + uint64(maxInt(r.Layers-1, 0))*w
}

// upSweep: windows i = Layers-1..1; labeled senders at old layer i,
// unlabeled receivers at old layer i-1.
func (r *Refiner) upSweep(start uint64) uint64 {
	w := r.SR.Slots()
	wi := 0
	for i := r.Layers - 1; i >= 1; i-- {
		ws := start + uint64(wi)*w
		wi++
		switch {
		case r.New != labeling.Bottom && r.Old == i:
			r.SR.Send(r.Env, ws, r.New)
		case r.New == labeling.Bottom && r.Old == i-1:
			r.tryAdopt(ws)
		default:
			r.SR.Skip(r.Env, ws)
		}
	}
	return start + uint64(maxInt(r.Layers-1, 0))*w
}

// allWindow: a single window where every labeled vertex sends and every
// unlabeled vertex tries to adopt.
func (r *Refiner) allWindow(start uint64) uint64 {
	if r.New != labeling.Bottom {
		r.SR.Send(r.Env, start, r.New)
	} else {
		r.tryAdopt(start)
	}
	return start + r.SR.Slots()
}

func (r *Refiner) tryAdopt(ws uint64) {
	if m, ok := r.SR.Receive(r.Env, ws); ok {
		if lab, isInt := m.(int); isInt {
			r.New = lab + 1
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
