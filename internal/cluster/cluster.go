// Package cluster implements the layered communication machinery of
// Section 5: the Down-cast / All-cast / Up-cast sweeps over a good
// labeling, the Lemma 10 Broadcast given a labeling, and the
// "compute a new labeling L' from L" refinement step.
//
// All phases are built from SR-communication windows. A Spec fixes the
// model-appropriate SR-communication parameters so that every device
// derives the identical global slot layout from shared knowledge (n,
// Delta, model) — the paper's synchronization discipline.
package cluster

import (
	"repro/internal/radio"
	"repro/internal/srcomm"
)

// Spec selects and parameterizes the SR-communication realization for a
// model, giving each invocation a fixed window of Slots() slots.
type Spec struct {
	Model radio.Model
	Decay srcomm.DecayParams // No-CD realization (Lemma 7)
	CD    srcomm.CDParams    // CD realization (Lemma 8)
}

// NewSpec returns w.h.p. SR-communication parameters for an n-vertex
// network with maximum degree delta under the given model. For CD the
// Remark 9 pre-check is enabled, which is what makes the Lemma 10 energy
// O(d + log n) rather than O(d log n).
func NewSpec(model radio.Model, n, delta int) Spec {
	if delta < 1 {
		delta = 1
	}
	return Spec{
		Model: model,
		Decay: srcomm.DecayParams{Delta: delta, Phases: srcomm.DecayPhasesForFailure(n)},
		CD: srcomm.CDParams{Delta: delta, Epochs: srcomm.CDEpochsForFailure(n, delta),
			Precheck: true},
	}
}

// Slots returns the window length of one SR-communication invocation.
func (s Spec) Slots() uint64 {
	switch s.Model {
	case radio.Local:
		return 1
	case radio.CD, radio.CDStar:
		return s.CD.Slots()
	default:
		return s.Decay.Slots()
	}
}

// Broadcaster is the per-device state of the Lemma 10 Broadcast over a
// fixed good labeling.
type Broadcaster struct {
	// SR is the shared SR-communication spec.
	SR Spec
	// Layers is the shared bound L on the number of layers.
	Layers int
	// Label is the device's layer L*(v).
	Label int
	// Has reports whether the device holds the message.
	Has bool
	// Msg is the message (valid when Has).
	Msg any
}

// BroadcastSlots returns the total window length of Broadcast(d) with the
// given spec and layer bound.
func BroadcastSlots(sr Spec, layers, d int) uint64 {
	sweep := uint64(maxInt(layers-1, 0)) * sr.Slots()
	// Up-cast + d * (Down-cast, All-cast, Up-cast) + Down-cast.
	return sweep + uint64(d)*(2*sweep+sr.Slots()) + sweep
}

// Refiner is the per-device state of the "compute L' from L" step of
// Section 5. Labels use labeling.Bottom for the paper's ⊥.
type Refiner struct {
	// SR is the shared SR-communication spec.
	SR Spec
	// Layers bounds the layer count of the old labeling (the paper
	// sweeps i = 0..n-2, i.e. Layers = n).
	Layers int
	// Old is the device's label under L.
	Old int
	// New is the device's label under L' (Bottom until assigned).
	New int
}

// RefineSlots returns the total window length of a refinement with
// parameter s.
func RefineSlots(sr Spec, layers, s int) uint64 {
	sweep := uint64(maxInt(layers-1, 0)) * sr.Slots()
	return uint64(s)*(2*sweep+sr.Slots()) + sweep
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
