package cdmerge

// Step-machine port of the Theorem 20 device: the same protocol as
// Program, expressed as a radio.Proc over the continuation combinators
// so the scheduler drives it inline with zero per-device goroutines and
// zero park/wake per action.
//
// The port follows the detcast discipline: the slot layout is a pure
// function of Params and is threaded eagerly through the builders,
// while every read of mutable device state (layer, parent, ind, state,
// merge bookkeeping) is deferred into an Eval thunk that runs at its
// window's start — the exact evaluation points of the blocking
// implementation, which is what makes proc_test.go's byte-identical
// trace pin possible. SR sub-windows nest srcomm's CD step machines
// through radio.ProcCont, precisely where the blocking form called the
// Drive-based wrappers.

import (
	"repro/internal/cluster"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/srcomm"
)

// cont abbreviates the engine's continuation type.
type cont = radio.Cont

// pdev is the step-machine twin of dev: identical protocol state, no
// blocking Env (the channel handle arrives per step).
type pdev struct {
	p     Params
	index int

	colors       []int // own colors, 1-based per coloring
	layer        int
	parent       int // -1 at roots
	parentColors []int
	ind          int // Ind(self, parent), 1-based; 0 unknown

	state int

	captured  *reqMsg
	winner    int
	newLayer  int // -1 until set during a relabel
	newParent int
	newPCols  []int
}

// txIndex transmits the device's own index at slot, then k. The payload
// is served from the simulator's interning table (radio.BoxInt) — the
// same integer value the blocking form transmits, without its per-call
// boxing allocation.
func txIndex(slot uint64, k cont) cont {
	return func(ch radio.Channel, fb radio.Feedback) (radio.Action, cont) {
		return radio.Transmit(slot, radio.BoxInt(ch, ch.Index())), k
	}
}

// lemma19K mirrors dev.lemma19: per coloring the device transmits in its
// own color slot and, while Ind is unknown, listens in the parent's
// color slot; the pass ends with a sleep to the window boundary.
func (d *pdev) lemma19K(start uint64, k cont) cont {
	p := d.p
	end := radio.Then(radio.Sleep(start+p.lemma19Slots()-1), k)
	var coloring func(j int) cont
	coloring = func(j int) cont {
		if j >= p.C {
			return end
		}
		return radio.Eval(func() cont {
			base := start + uint64(j)*uint64(p.K)
			next := radio.Eval(func() cont { return coloring(j + 1) })
			ownSlot := base + uint64(d.colors[j]-1)
			// The blocking loop's if/else makes the transmit branch win
			// when the parent's color equals the device's own, so only a
			// distinct parent color yields a listen.
			if d.parent >= 0 && d.ind == 0 && d.parentColors[j] != d.colors[j] {
				lSlot := base + uint64(d.parentColors[j]-1)
				listen := func(k cont) cont {
					return radio.Recv(lSlot, func(fb radio.Feedback) cont {
						if fb.Status == radio.Received {
							d.ind = j + 1
						}
						return k
					})
				}
				if lSlot < ownSlot {
					return listen(txIndex(ownSlot, next))
				}
				return txIndex(ownSlot, listen(next))
			}
			return txIndex(ownSlot, next)
		})
	}
	return radio.Do(func() { d.ind = 0 }, coloring(0))
}

// downPassK mirrors dev.downPass: per layer iteration, senders at layer
// it transmit in their color slots, children listen at (Ind, parent
// color), and every iteration ends with a sleep to its boundary.
func (d *pdev) downPassK(start uint64, send func() (any, bool), recv func(any), k cont) cont {
	p := d.p
	per := uint64(p.C) * uint64(p.K)
	var iter func(it int) cont
	iter = func(it int) cont {
		if it > p.Layers-2 {
			return k
		}
		base := start + uint64(it)*per
		sleep := radio.Then(radio.Sleep(base+per-1), radio.Eval(func() cont { return iter(it + 1) }))
		return radio.Eval(func() cont {
			switch {
			case d.layer == it:
				payload, ok := send()
				if !ok {
					return sleep
				}
				var tx func(j int) cont
				tx = func(j int) cont {
					if j >= p.C {
						return sleep
					}
					return radio.Then(radio.Transmit(base+uint64(j*p.K+d.colors[j]-1), payload),
						radio.Eval(func() cont { return tx(j + 1) }))
				}
				return tx(0)
			case d.layer == it+1 && d.parent >= 0 && d.ind > 0:
				j := d.ind - 1
				return radio.Recv(base+uint64(j*p.K+d.parentColors[j]-1), func(fb radio.Feedback) cont {
					if fb.Status == radio.Received {
						recv(fb.Payload)
					}
					return sleep
				})
			default:
				return sleep
			}
		})
	}
	return iter(0)
}

// upPassK mirrors dev.upPass: per descending layer iteration, the
// sender joins the SR sub-window indexed by (Ind, parent color) and the
// parent listens in the sub-windows of its own colors.
func (d *pdev) upPassK(start uint64, send func() (any, bool), recv func(any), k cont) cont {
	p := d.p
	w := p.UpSR.Slots()
	per := uint64(p.C) * uint64(p.K) * w
	var iter func(it int) cont
	iter = func(it int) cont {
		if it < 1 {
			return k
		}
		base := start + uint64(p.Layers-1-it)*per
		sleep := radio.Then(radio.Sleep(base+per-1), radio.Eval(func() cont { return iter(it - 1) }))
		return radio.Eval(func() cont {
			if d.layer == it && d.parent >= 0 && d.ind > 0 {
				payload, sending := send()
				if !sending {
					return sleep
				}
				j := d.ind - 1
				ws := base + (uint64(j)*uint64(p.K)+uint64(d.parentColors[j]-1))*w
				return radio.ProcCont(srcomm.CDSendProc(ws, p.UpSR, payload), sleep)
			}
			if d.layer == it-1 {
				var win func(j int) cont
				win = func(j int) cont {
					if j >= p.C {
						return sleep
					}
					ws := base + (uint64(j)*uint64(p.K)+uint64(d.colors[j]-1))*w
					var m any
					var ok bool
					return radio.ProcCont(srcomm.CDReceiveProc(ws, p.UpSR, &m, &ok),
						radio.Eval(func() cont {
							if ok {
								recv(m)
							}
							return win(j + 1)
						}))
				}
				return win(0)
			}
			return sleep
		})
	}
	return iter(p.Layers - 1)
}

// innerIterationK mirrors dev.innerIteration: request window, gather
// (up), decision (down), relabel (up + down), state commit, Ind
// re-learning.
func (d *pdev) innerIterationK(start uint64, k cont) cont {
	p := d.p
	tGather := start + p.ReqSR.Slots()
	tDecision := tGather + p.upSlots()
	tRelabelUp := tDecision + p.downSlots()
	tRelabelDown := tRelabelUp + p.upSlots()
	tLemma := tRelabelDown + p.downSlots()

	// (e) local state commit, then (f) re-learn Ind.
	commit := radio.Do(func() {
		switch {
		case d.newLayer >= 0:
			d.layer = d.newLayer
			d.parent = d.newParent
			d.parentColors = d.newPCols
			d.state = stateActive
		case d.state == stateActive:
			d.state = stateHalt
		}
	}, d.lemma19K(tLemma, k))

	// (d) relabel the merged cluster from the capturer.
	relabelSend := func() (any, bool) {
		if d.newLayer >= 0 {
			return relabelMsg{from: d.index, fromColors: d.colors, newLayer: d.newLayer}, true
		}
		return nil, false
	}
	relabel := radio.Do(func() {
		d.newLayer, d.newParent, d.newPCols = -1, -1, nil
		if d.winner == d.index && d.captured != nil {
			d.newLayer = d.captured.fromLayer + 1
			d.newParent = d.captured.from
			d.newPCols = d.captured.fromColors
		}
	}, d.upPassK(tRelabelUp, relabelSend, func(m any) {
		rm, ok := m.(relabelMsg)
		if !ok || d.newLayer >= 0 || d.state != stateWait || d.winner < 0 {
			return
		}
		d.newLayer = rm.newLayer + 1
		d.newParent = rm.from
		d.newPCols = rm.fromColors
	}, d.downPassK(tRelabelDown, relabelSend, func(m any) {
		rm, ok := m.(relabelMsg)
		if !ok || d.newLayer >= 0 || d.state != stateWait || d.winner < 0 {
			return
		}
		// Received from the old parent: keep it as the tree parent.
		d.newLayer = rm.newLayer + 1
		d.newParent = d.parent
		d.newPCols = d.parentColors
	}, commit)))

	// (b)+(c) gather candidates up to the root, which announces the
	// winning capturer down the tree. cand lives for this iteration only
	// (the chain instance is single-use, like the blocking local).
	var cand *gatherCand
	decision := radio.Do(func() {
		d.winner = -1
		if d.parent < 0 && d.state == stateWait && cand != nil {
			d.winner = cand.capturer
		}
	}, d.downPassK(tDecision,
		func() (any, bool) {
			if d.winner >= 0 {
				return decisionMsg{winner: d.winner}, true
			}
			return nil, false
		},
		func(m any) {
			if dm, ok := m.(decisionMsg); ok && d.state == stateWait {
				d.winner = dm.winner
			}
		}, relabel))
	gather := radio.Do(func() {
		cand = nil
		if d.captured != nil && d.state == stateWait {
			cand = &gatherCand{capturer: d.index}
		}
	}, d.upPassK(tGather,
		func() (any, bool) {
			if cand != nil && d.state == stateWait {
				return *cand, true
			}
			return nil, false
		},
		func(m any) {
			if gm, ok := m.(gatherCand); ok && d.state == stateWait && cand == nil {
				cand = &gm
			}
		}, decision))

	// (a) merge requests: Active members send, Wait members listen.
	return radio.Eval(func() cont {
		d.captured = nil
		switch d.state {
		case stateActive:
			return radio.ProcCont(srcomm.CDSendProc(start, p.ReqSR,
				reqMsg{from: d.index, fromColors: d.colors, fromLayer: d.layer}), gather)
		case stateWait:
			var m any
			var ok bool
			return radio.ProcCont(srcomm.CDReceiveProc(start, p.ReqSR, &m, &ok),
				radio.Eval(func() cont {
					if ok {
						if rm, isReq := m.(reqMsg); isReq {
							d.captured = &rm
						}
					}
					return gather
				}))
		default:
			return radio.Then(radio.Sleep(start+p.ReqSR.Slots()-1), gather)
		}
	})
}

// outerRoundK mirrors dev.outerRound: roots flip the Active coin, the
// state floods down every tree, then S merge iterations run.
func (d *pdev) outerRoundK(start uint64, k cont) cont {
	p := d.p
	var inners func(i int, t uint64) cont
	inners = func(i int, t uint64) cont {
		if i >= p.S {
			return k
		}
		return d.innerIterationK(t, radio.Eval(func() cont { return inners(i+1, t+p.innerSlots()) }))
	}
	body := radio.Do(func() {
		if d.state < 0 {
			d.state = stateWait // unreachable stragglers wait
		}
	}, inners(0, start+p.downSlots()))
	return radio.EvalCh(func(ch radio.Channel) cont {
		if d.parent < 0 {
			if rng.Bernoulli(ch.Rand(), p.P) {
				d.state = stateActive
			} else {
				d.state = stateWait
			}
		} else {
			d.state = -1 // unknown until announced
		}
		return d.downPassK(start,
			func() (any, bool) {
				if d.state >= 0 {
					return stateMsg{state: d.state}, true
				}
				return nil, false
			},
			func(m any) {
				if sm, ok := m.(stateMsg); ok && d.state < 0 {
					d.state = sm.state
				}
			}, body)
	})
}

// Proc returns the Theorem 20 device as a native inline step machine.
func Proc(p Params, isSource bool, msg any, out *DeviceResult) radio.Proc {
	return radio.ContProc(func(ch radio.Channel) cont {
		d := &pdev{p: p, index: ch.Index(), layer: 0, parent: -1, state: stateWait, newLayer: -1}
		d.colors = make([]int, p.C)
		for j := range d.colors {
			d.colors[j] = 1 + ch.Rand().IntN(p.K)
		}
		final := func(t uint64) cont {
			return radio.EvalCh(func(ch radio.Channel) cont {
				b := &cluster.Broadcaster{SR: p.SR, Layers: p.Layers,
					Label: d.layer, Has: isSource, Msg: msg}
				return b.BroadcastCont(t, p.FinalD, radio.Do(func() {
					out.Informed = b.Has
					out.Msg = b.Msg
					out.Label = d.layer
					out.Parent = d.parent
				}, nil))
			})
		}
		var rounds func(r int, t uint64) cont
		rounds = func(r int, t uint64) cont {
			if r >= p.Outer {
				return final(t)
			}
			return d.outerRoundK(t, radio.Eval(func() cont { return rounds(r+1, t+p.outerSlots()) }))
		}
		// Initial Ind pass (everyone is a root; it only costs the schedule
		// its fixed window), then the outer rounds and closing Broadcast.
		return d.lemma19K(1, rounds(0, 1+p.lemma19Slots()))
	})
}
