// Package cdmerge implements the improved CD-model Broadcast of Section 7
// (Theorem 20): energy O(log n (log log Delta + 1/xi) / log log log Delta)
// at the price of super-linear O(Delta n^{1+xi}) time.
//
// The algorithm maintains an explicit forest of cluster trees (parent
// pointers), synchronized through c random (n^xi * Delta)-colorings:
//
//   - Ind(u, parent(u)) is the first coloring in which the parent's color
//     is unique in u's neighborhood (Lemma 19); child-parent traffic then
//     uses only the parent's color slot of that coloring, which isolates
//     trees from each other deterministically.
//   - Downward transmission (parent -> children) is deterministic and
//     collision-free; Upward transmission (children -> parent) runs a
//     Lemma 8 SR-communication per (coloring, color) pair, with the ACK
//     optimization since each sender has exactly one receiver.
//   - Clusters merge in Active/Wait/Halt rounds (Section 7.2): Active
//     clusters broadcast merge requests and halt; Wait clusters receiving
//     a request re-root at the capturing vertex, relabel along the old
//     tree (Section 6.4), hang under the requester, and become Active.
//
// After O(log n / log log log Delta) outer rounds the forest has few
// roots and the Lemma 10 Broadcast finishes.
package cdmerge

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/labeling"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/srcomm"
)

// Params configures a Theorem 20 run; all fields are global knowledge.
type Params struct {
	// Xi is the time/energy tradeoff exponent (0 < Xi <= 1).
	Xi float64
	// C is the number of random colorings (Theta(1/Xi)).
	C int
	// K is the palette size per coloring, ceil(n^Xi * Delta).
	K int
	// P is the probability a root starts a round Active.
	P float64
	// S is the number of merge iterations per outer round.
	S int
	// Outer is the number of outer rounds.
	Outer int
	// Layers bounds tree depths (n).
	Layers int
	// FinalD is the Lemma 10 diameter bound for the closing Broadcast.
	FinalD int
	// UpSR parameterizes each Upward-transmission SR sub-window.
	UpSR srcomm.CDParams
	// ReqSR parameterizes the merge-request SR window.
	ReqSR srcomm.CDParams
	// SR is the spec for the closing Lemma 10 Broadcast.
	SR cluster.Spec
	// Sims optionally reuses a per-goroutine simulator cache
	// (radio.SimCache). Purely an allocation optimization for repeated
	// runs on one topology; measurements and determinism are unaffected.
	Sims *radio.SimCache
}

// NewParams derives the standard parameterization for n vertices with
// maximum degree delta.
func NewParams(n, delta int, xi float64) (Params, error) {
	if n < 1 {
		return Params{}, fmt.Errorf("cdmerge: n = %d", n)
	}
	if xi <= 0 || xi > 1 {
		return Params{}, fmt.Errorf("cdmerge: xi %v outside (0,1]", xi)
	}
	if delta < 1 {
		delta = 1
	}
	logN := rng.Log2Ceil(n) + 1
	loglogD := rng.Log2Ceil(rng.Log2Ceil(delta)+1) + 1
	c := int(math.Ceil(3 / xi))
	if c < 2 {
		c = 2
	}
	k := int(math.Ceil(math.Pow(float64(n), xi) * float64(delta)))
	if k < delta+1 {
		k = delta + 1
	}
	s := loglogD + 1
	outer := 4*logN + 4
	p := Params{
		Xi:     xi,
		C:      c,
		K:      k,
		P:      1 / math.Sqrt(float64(loglogD)+1),
		S:      s,
		Outer:  outer,
		Layers: n,
		FinalD: logN + 2,
		UpSR:   srcomm.CDParams{Delta: delta, Epochs: 2*loglogD + 6, Precheck: true, Ack: true},
		ReqSR:  srcomm.CDParams{Delta: delta, Epochs: 2*loglogD + 6, Precheck: true},
		SR:     cluster.NewSpec(radio.CD, n, delta),
	}
	if p.Slots() > 1<<55 {
		return Params{}, fmt.Errorf("cdmerge: schedule of %d slots impractical", p.Slots())
	}
	return p, nil
}

// Tune overrides protocol constants for experiments (non-positive keeps
// current values).
func (p Params) Tune(outer, s, layers int) Params {
	if outer > 0 {
		p.Outer = outer
	}
	if s > 0 {
		p.S = s
	}
	if layers > 0 {
		p.Layers = layers
	}
	return p
}

// lemma19Slots is the cost of one Ind-learning pass.
func (p Params) lemma19Slots() uint64 { return uint64(p.C) * uint64(p.K) }

// downSlots is the cost of one deterministic Downward pass over all
// layers.
func (p Params) downSlots() uint64 {
	return uint64(p.Layers-1) * uint64(p.C) * uint64(p.K)
}

// upSlots is the cost of one Upward pass (an SR sub-window per
// (coloring, color) pair per layer).
func (p Params) upSlots() uint64 {
	return uint64(p.Layers-1) * uint64(p.C) * uint64(p.K) * p.UpSR.Slots()
}

// innerSlots is one merge iteration: request window, gather (up),
// decision (down), relabel (up+down), Ind re-learning.
func (p Params) innerSlots() uint64 {
	return p.ReqSR.Slots() + 2*p.upSlots() + 2*p.downSlots() + p.lemma19Slots()
}

// outerSlots is one outer round: state announce plus S merge iterations.
func (p Params) outerSlots() uint64 {
	return p.downSlots() + uint64(p.S)*p.innerSlots()
}

// Slots returns the full schedule length.
func (p Params) Slots() uint64 {
	return p.lemma19Slots() + uint64(p.Outer)*p.outerSlots() +
		cluster.BroadcastSlots(p.SR, p.Layers, p.FinalD)
}

// cluster states (Section 7.2).
const (
	stateWait = iota
	stateActive
	stateHalt
)

type reqMsg struct {
	from       int
	fromColors []int
	fromLayer  int
}

type gatherCand struct {
	capturer int
}

type decisionMsg struct {
	winner int
}

type relabelMsg struct {
	from       int
	fromColors []int
	newLayer   int
}

type stateMsg struct {
	state int
}

// DeviceResult is one device's final view.
type DeviceResult struct {
	Informed bool
	Msg      any
	Label    int
	Parent   int
}

// Outcome aggregates a run.
type Outcome struct {
	Result  *radio.Result
	Devices []DeviceResult
	Labels  labeling.Labeling
}

// AllInformed reports whether every device holds the message.
func (o *Outcome) AllInformed() bool {
	for _, d := range o.Devices {
		if !d.Informed {
			return false
		}
	}
	return true
}

// Roots counts the remaining layer-0 vertices.
func (o *Outcome) Roots() int { return len(o.Labels.Roots()) }

// Broadcast runs the Theorem 20 algorithm on g from source. Devices run
// as native inline step machines (Proc).
func Broadcast(g *graph.Graph, source int, msg any, p Params, seed uint64) (*Outcome, error) {
	if source < 0 || source >= g.N() {
		return nil, fmt.Errorf("cdmerge: source %d out of range", source)
	}
	n := g.N()
	devs := make([]DeviceResult, n)
	procs := make([]radio.Proc, n)
	for v := 0; v < n; v++ {
		procs[v] = Proc(p, v == source, msg, &devs[v])
	}
	res, err := radio.RunDevices(radio.Config{Graph: g, Model: radio.CD, Seed: seed, MaxSlots: 1 << 62, Sims: p.Sims}, radio.Procs(procs))
	if err != nil {
		return nil, err
	}
	labels := make(labeling.Labeling, n)
	for v := range labels {
		labels[v] = devs[v].Label
	}
	return &Outcome{Result: res, Devices: devs, Labels: labels}, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
