// Package cdmerge implements the improved CD-model Broadcast of Section 7
// (Theorem 20): energy O(log n (log log Delta + 1/xi) / log log log Delta)
// at the price of super-linear O(Delta n^{1+xi}) time.
//
// The algorithm maintains an explicit forest of cluster trees (parent
// pointers), synchronized through c random (n^xi * Delta)-colorings:
//
//   - Ind(u, parent(u)) is the first coloring in which the parent's color
//     is unique in u's neighborhood (Lemma 19); child-parent traffic then
//     uses only the parent's color slot of that coloring, which isolates
//     trees from each other deterministically.
//   - Downward transmission (parent -> children) is deterministic and
//     collision-free; Upward transmission (children -> parent) runs a
//     Lemma 8 SR-communication per (coloring, color) pair, with the ACK
//     optimization since each sender has exactly one receiver.
//   - Clusters merge in Active/Wait/Halt rounds (Section 7.2): Active
//     clusters broadcast merge requests and halt; Wait clusters receiving
//     a request re-root at the capturing vertex, relabel along the old
//     tree (Section 6.4), hang under the requester, and become Active.
//
// After O(log n / log log log Delta) outer rounds the forest has few
// roots and the Lemma 10 Broadcast finishes.
package cdmerge

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/labeling"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/srcomm"
)

// Params configures a Theorem 20 run; all fields are global knowledge.
type Params struct {
	// Xi is the time/energy tradeoff exponent (0 < Xi <= 1).
	Xi float64
	// C is the number of random colorings (Theta(1/Xi)).
	C int
	// K is the palette size per coloring, ceil(n^Xi * Delta).
	K int
	// P is the probability a root starts a round Active.
	P float64
	// S is the number of merge iterations per outer round.
	S int
	// Outer is the number of outer rounds.
	Outer int
	// Layers bounds tree depths (n).
	Layers int
	// FinalD is the Lemma 10 diameter bound for the closing Broadcast.
	FinalD int
	// UpSR parameterizes each Upward-transmission SR sub-window.
	UpSR srcomm.CDParams
	// ReqSR parameterizes the merge-request SR window.
	ReqSR srcomm.CDParams
	// SR is the spec for the closing Lemma 10 Broadcast.
	SR cluster.Spec
	// Sims optionally reuses a per-goroutine simulator cache
	// (radio.SimCache). Purely an allocation optimization for repeated
	// runs on one topology; measurements and determinism are unaffected.
	Sims *radio.SimCache
}

// NewParams derives the standard parameterization for n vertices with
// maximum degree delta.
func NewParams(n, delta int, xi float64) (Params, error) {
	if n < 1 {
		return Params{}, fmt.Errorf("cdmerge: n = %d", n)
	}
	if xi <= 0 || xi > 1 {
		return Params{}, fmt.Errorf("cdmerge: xi %v outside (0,1]", xi)
	}
	if delta < 1 {
		delta = 1
	}
	logN := rng.Log2Ceil(n) + 1
	loglogD := rng.Log2Ceil(rng.Log2Ceil(delta)+1) + 1
	c := int(math.Ceil(3 / xi))
	if c < 2 {
		c = 2
	}
	k := int(math.Ceil(math.Pow(float64(n), xi) * float64(delta)))
	if k < delta+1 {
		k = delta + 1
	}
	s := loglogD + 1
	outer := 4*logN + 4
	p := Params{
		Xi:     xi,
		C:      c,
		K:      k,
		P:      1 / math.Sqrt(float64(loglogD)+1),
		S:      s,
		Outer:  outer,
		Layers: n,
		FinalD: logN + 2,
		UpSR:   srcomm.CDParams{Delta: delta, Epochs: 2*loglogD + 6, Precheck: true, Ack: true},
		ReqSR:  srcomm.CDParams{Delta: delta, Epochs: 2*loglogD + 6, Precheck: true},
		SR:     cluster.NewSpec(radio.CD, n, delta),
	}
	if p.Slots() > 1<<55 {
		return Params{}, fmt.Errorf("cdmerge: schedule of %d slots impractical", p.Slots())
	}
	return p, nil
}

// Tune overrides protocol constants for experiments (non-positive keeps
// current values).
func (p Params) Tune(outer, s, layers int) Params {
	if outer > 0 {
		p.Outer = outer
	}
	if s > 0 {
		p.S = s
	}
	if layers > 0 {
		p.Layers = layers
	}
	return p
}

// lemma19Slots is the cost of one Ind-learning pass.
func (p Params) lemma19Slots() uint64 { return uint64(p.C) * uint64(p.K) }

// downSlots is the cost of one deterministic Downward pass over all
// layers.
func (p Params) downSlots() uint64 {
	return uint64(p.Layers-1) * uint64(p.C) * uint64(p.K)
}

// upSlots is the cost of one Upward pass (an SR sub-window per
// (coloring, color) pair per layer).
func (p Params) upSlots() uint64 {
	return uint64(p.Layers-1) * uint64(p.C) * uint64(p.K) * p.UpSR.Slots()
}

// innerSlots is one merge iteration: request window, gather (up),
// decision (down), relabel (up+down), Ind re-learning.
func (p Params) innerSlots() uint64 {
	return p.ReqSR.Slots() + 2*p.upSlots() + 2*p.downSlots() + p.lemma19Slots()
}

// outerSlots is one outer round: state announce plus S merge iterations.
func (p Params) outerSlots() uint64 {
	return p.downSlots() + uint64(p.S)*p.innerSlots()
}

// Slots returns the full schedule length.
func (p Params) Slots() uint64 {
	return p.lemma19Slots() + uint64(p.Outer)*p.outerSlots() +
		cluster.BroadcastSlots(p.SR, p.Layers, p.FinalD)
}

// cluster states (Section 7.2).
const (
	stateWait = iota
	stateActive
	stateHalt
)

type reqMsg struct {
	from       int
	fromColors []int
	fromLayer  int
}

type gatherCand struct {
	capturer int
}

type decisionMsg struct {
	winner int
}

type relabelMsg struct {
	from       int
	fromColors []int
	newLayer   int
}

type stateMsg struct {
	state int
}

// dev is a device's protocol state.
type dev struct {
	e *radio.Env
	p Params

	colors       []int // own colors, 1-based per coloring
	layer        int
	parent       int // -1 at roots
	parentColors []int
	ind          int // Ind(self, parent), 1-based; 0 unknown

	state int

	captured  *reqMsg
	winner    int
	newLayer  int // -1 until set during a relabel
	newParent int
	newPCols  []int
}

// lemma19 learns Ind(self, parent) (Lemma 19). Roots sleep through it;
// everyone transmits in their own color slots so others can learn.
func (d *dev) lemma19(start uint64) uint64 {
	d.ind = 0
	slot := start
	for j := 0; j < d.p.C; j++ {
		for k := 1; k <= d.p.K; k++ {
			if d.colors[j] == k {
				d.e.Transmit(slot, d.e.Index())
			} else if d.parent >= 0 && d.ind == 0 && d.parentColors[j] == k {
				if fb := d.e.Listen(slot); fb.Status == radio.Received {
					d.ind = j + 1
				}
			}
			slot++
		}
	}
	d.e.SleepUntil(start + d.p.lemma19Slots() - 1)
	return start + d.p.lemma19Slots()
}

// downPass runs one deterministic Downward pass: per layer it, vertices
// at layer it for which send returns a payload transmit in their color
// slots; their children listen at (Ind, parent color) and hand received
// payloads to recv.
func (d *dev) downPass(start uint64, send func() (any, bool), recv func(any)) uint64 {
	p := d.p
	per := uint64(p.C) * uint64(p.K)
	for it := 0; it <= p.Layers-2; it++ {
		base := start + uint64(it)*per
		switch {
		case d.layer == it:
			if payload, ok := send(); ok {
				for j := 0; j < p.C; j++ {
					d.e.Transmit(base+uint64(j*p.K+d.colors[j]-1), payload)
				}
			}
		case d.layer == it+1 && d.parent >= 0 && d.ind > 0:
			j := d.ind - 1
			slot := base + uint64(j*p.K+d.parentColors[j]-1)
			if fb := d.e.Listen(slot); fb.Status == radio.Received {
				recv(fb.Payload)
			}
		}
		d.e.SleepUntil(base + per - 1)
	}
	return start + uint64(maxInt(p.Layers-1, 0))*per
}

// upPass runs one Upward pass: per layer it (descending), senders at
// layer it with a payload join the SR sub-window indexed by
// (Ind, parent color); their parents listen in the sub-windows of their
// own colors.
func (d *dev) upPass(start uint64, send func() (any, bool), recv func(any)) uint64 {
	p := d.p
	w := p.UpSR.Slots()
	per := uint64(p.C) * uint64(p.K) * w
	for it := p.Layers - 1; it >= 1; it-- {
		base := start + uint64(p.Layers-1-it)*per
		var payload any
		sending := false
		if d.layer == it && d.parent >= 0 && d.ind > 0 {
			payload, sending = send()
		}
		for j := 0; j < p.C; j++ {
			for k := 1; k <= p.K; k++ {
				ws := base + (uint64(j)*uint64(p.K)+uint64(k-1))*w
				switch {
				case sending && d.ind == j+1 && d.parentColors[j] == k:
					srcomm.CDSend(d.e, ws, p.UpSR, payload)
				case d.layer == it-1 && d.colors[j] == k:
					if m, ok := srcomm.CDReceive(d.e, ws, p.UpSR); ok {
						recv(m)
					}
				}
			}
		}
		d.e.SleepUntil(base + per - 1)
	}
	return start + uint64(maxInt(p.Layers-1, 0))*per
}

// innerIteration is one Section 7.2 merge step.
func (d *dev) innerIteration(start uint64) uint64 {
	p := d.p
	t := start
	// (a) Merge requests: Active members send, Wait members listen.
	d.captured = nil
	switch d.state {
	case stateActive:
		srcomm.CDSend(d.e, t, p.ReqSR, reqMsg{from: d.e.Index(), fromColors: d.colors, fromLayer: d.layer})
	case stateWait:
		if m, ok := srcomm.CDReceive(d.e, t, p.ReqSR); ok {
			if rm, isReq := m.(reqMsg); isReq {
				d.captured = &rm
			}
		}
	default:
		srcomm.CDSkip(d.e, t, p.ReqSR)
	}
	t += p.ReqSR.Slots()

	// (b) Gather candidates to the root of each Wait cluster.
	var cand *gatherCand
	if d.captured != nil && d.state == stateWait {
		cand = &gatherCand{capturer: d.e.Index()}
	}
	t = d.upPass(t,
		func() (any, bool) {
			if cand != nil && d.state == stateWait {
				return *cand, true
			}
			return nil, false
		},
		func(m any) {
			if gm, ok := m.(gatherCand); ok && d.state == stateWait && cand == nil {
				cand = &gm
			}
		})

	// (c) Decision: the root announces the winning capturer.
	d.winner = -1
	if d.parent < 0 && d.state == stateWait && cand != nil {
		d.winner = cand.capturer
	}
	t = d.downPass(t,
		func() (any, bool) {
			if d.winner >= 0 {
				return decisionMsg{winner: d.winner}, true
			}
			return nil, false
		},
		func(m any) {
			if dm, ok := m.(decisionMsg); ok && d.state == stateWait {
				d.winner = dm.winner
			}
		})

	// (d) Relabel the merged cluster from the capturer (Section 6.4).
	d.newLayer, d.newParent, d.newPCols = -1, -1, nil
	if d.winner == d.e.Index() && d.captured != nil {
		d.newLayer = d.captured.fromLayer + 1
		d.newParent = d.captured.from
		d.newPCols = d.captured.fromColors
	}
	relabelSend := func() (any, bool) {
		if d.newLayer >= 0 {
			return relabelMsg{from: d.e.Index(), fromColors: d.colors, newLayer: d.newLayer}, true
		}
		return nil, false
	}
	t = d.upPass(t, relabelSend, func(m any) {
		rm, ok := m.(relabelMsg)
		if !ok || d.newLayer >= 0 || d.state != stateWait || d.winner < 0 {
			return
		}
		d.newLayer = rm.newLayer + 1
		d.newParent = rm.from
		d.newPCols = rm.fromColors
	})
	t = d.downPass(t, relabelSend, func(m any) {
		rm, ok := m.(relabelMsg)
		if !ok || d.newLayer >= 0 || d.state != stateWait || d.winner < 0 {
			return
		}
		// Received from the old parent: keep it as the tree parent.
		d.newLayer = rm.newLayer + 1
		d.newParent = d.parent
		d.newPCols = d.parentColors
	})

	// (e) Local state commit.
	switch {
	case d.newLayer >= 0:
		d.layer = d.newLayer
		d.parent = d.newParent
		d.parentColors = d.newPCols
		d.state = stateActive
	case d.state == stateActive:
		d.state = stateHalt
	}

	// (f) Parents changed: re-learn Ind.
	return d.lemma19(t)
}

// outerRound is one round of the main loop: roots flip the Active coin,
// the state propagates down every tree, then S merge iterations run.
func (d *dev) outerRound(start uint64) uint64 {
	if d.parent < 0 {
		if rng.Bernoulli(d.e.Rand(), d.p.P) {
			d.state = stateActive
		} else {
			d.state = stateWait
		}
	} else {
		d.state = -1 // unknown until announced
	}
	t := d.downPass(start,
		func() (any, bool) {
			if d.state >= 0 {
				return stateMsg{state: d.state}, true
			}
			return nil, false
		},
		func(m any) {
			if sm, ok := m.(stateMsg); ok && d.state < 0 {
				d.state = sm.state
			}
		})
	if d.state < 0 {
		d.state = stateWait // unreachable stragglers wait
	}
	for i := 0; i < d.p.S; i++ {
		t = d.innerIteration(t)
	}
	return t
}

// DeviceResult is one device's final view.
type DeviceResult struct {
	Informed bool
	Msg      any
	Label    int
	Parent   int
}

// Program returns the device program implementing Theorem 20.
func Program(p Params, isSource bool, msg any, out *DeviceResult) radio.Program {
	return func(e *radio.Env) {
		d := &dev{e: e, p: p, layer: 0, parent: -1, state: stateWait, newLayer: -1}
		d.colors = make([]int, p.C)
		for j := range d.colors {
			d.colors[j] = 1 + e.Rand().IntN(p.K)
		}
		// Initial Ind pass (everyone is a root; it only costs the
		// schedule its fixed window).
		t := d.lemma19(1)
		for r := 0; r < p.Outer; r++ {
			t = d.outerRound(t)
		}
		b := cluster.Broadcaster{
			Env: e, SR: p.SR, Layers: p.Layers,
			Label: d.layer, Has: isSource, Msg: msg,
		}
		b.Broadcast(t, p.FinalD)
		out.Informed = b.Has
		out.Msg = b.Msg
		out.Label = d.layer
		out.Parent = d.parent
	}
}

// Outcome aggregates a run.
type Outcome struct {
	Result  *radio.Result
	Devices []DeviceResult
	Labels  labeling.Labeling
}

// AllInformed reports whether every device holds the message.
func (o *Outcome) AllInformed() bool {
	for _, d := range o.Devices {
		if !d.Informed {
			return false
		}
	}
	return true
}

// Roots counts the remaining layer-0 vertices.
func (o *Outcome) Roots() int { return len(o.Labels.Roots()) }

// Broadcast runs the Theorem 20 algorithm on g from source. Devices run
// as native inline step machines (Proc); the blocking Program form is
// retained as the reference implementation the proc port is pinned
// against.
func Broadcast(g *graph.Graph, source int, msg any, p Params, seed uint64) (*Outcome, error) {
	if source < 0 || source >= g.N() {
		return nil, fmt.Errorf("cdmerge: source %d out of range", source)
	}
	n := g.N()
	devs := make([]DeviceResult, n)
	procs := make([]radio.Proc, n)
	for v := 0; v < n; v++ {
		procs[v] = Proc(p, v == source, msg, &devs[v])
	}
	res, err := radio.RunDevices(radio.Config{Graph: g, Model: radio.CD, Seed: seed, MaxSlots: 1 << 62, Sims: p.Sims}, radio.Procs(procs))
	if err != nil {
		return nil, err
	}
	labels := make(labeling.Labeling, n)
	for v := range labels {
		labels[v] = devs[v].Label
	}
	return &Outcome{Result: res, Devices: devs, Labels: labels}, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
