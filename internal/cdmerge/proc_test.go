package cdmerge

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/radio"
)

// traceOf runs one device population and renders its event stream plus
// aggregate counters for byte-exact comparison.
func traceOf(t *testing.T, cfg radio.Config, devs []radio.Device) string {
	t.Helper()
	var sb strings.Builder
	cfg.Trace = func(ev radio.Event) {
		fmt.Fprintf(&sb, "%d %d %d %v %d\n", ev.Slot, ev.Dev, ev.Kind, ev.Payload, ev.From)
	}
	res, err := radio.RunDevices(cfg, devs)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&sb, "%d %d %v %v %v", res.Slots, res.Events, res.Energy, res.Transmits, res.Listens)
	return sb.String()
}

// TestProcMatchesBlockingProgram pins the port: the native step machine
// produces the byte-identical slot-level event stream — including
// identical random draws for the colorings, the Active coins, and the
// nested SR machines — and identical per-device outcomes, against the
// blocking Program reference.
func TestProcMatchesBlockingProgram(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Path(8), graph.Star(9), graph.GNP(12, 0.3, 1),
	}
	for _, g := range graphs {
		p := testParams(t, g, 0.5)
		n := g.N()
		for seed := uint64(0); seed < 2; seed++ {
			cfg := radio.Config{Graph: g, Model: radio.CD, Seed: seed, MaxSlots: 1 << 62}

			inlineOuts := make([]DeviceResult, n)
			inline := make([]radio.Device, n)
			for v := 0; v < n; v++ {
				inline[v].Proc = Proc(p, v == 0, "m20", &inlineOuts[v])
			}
			blockingOuts := make([]DeviceResult, n)
			blocking := make([]radio.Device, n)
			for v := 0; v < n; v++ {
				blocking[v].Program = Program(p, v == 0, "m20", &blockingOuts[v])
			}

			got := traceOf(t, cfg, inline)
			want := traceOf(t, cfg, blocking)
			if got != want {
				t.Fatalf("%s seed %d: proc trace diverges from blocking trace", g.Name(), seed)
			}
			for v := range inlineOuts {
				if inlineOuts[v] != blockingOuts[v] {
					t.Fatalf("%s seed %d: device %d outcome mismatch: %+v vs %+v",
						g.Name(), seed, v, inlineOuts[v], blockingOuts[v])
				}
			}
		}
	}
}
