package cdmerge

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/radio"
)

// traceOf runs one device population and renders its event stream plus
// aggregate counters for byte-exact comparison.
func traceOf(t *testing.T, cfg radio.Config, devs []radio.Device) string {
	t.Helper()
	var sb strings.Builder
	cfg.Trace = func(ev radio.Event) {
		fmt.Fprintf(&sb, "%d %d %d %v %d\n", ev.Slot, ev.Dev, ev.Kind, ev.Payload, ev.From)
	}
	res, err := radio.RunDevices(cfg, devs)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&sb, "%d %d %v %v %v", res.Slots, res.Events, res.Energy, res.Transmits, res.Listens)
	return sb.String()
}

// TestProcTraceDeterministic pins the step machine's determinism: the
// same parameters and seed must produce the byte-identical slot-level
// event stream — including identical random draws for the colorings,
// the Active coins, and the nested SR machines — and identical
// per-device outcomes, run over run.
func TestProcTraceDeterministic(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Path(8), graph.Star(9), graph.GNP(12, 0.3, 1),
	}
	for _, g := range graphs {
		p := testParams(t, g, 0.5)
		n := g.N()
		for seed := uint64(0); seed < 2; seed++ {
			cfg := radio.Config{Graph: g, Model: radio.CD, Seed: seed, MaxSlots: 1 << 62}

			build := func(outs []DeviceResult) []radio.Device {
				devs := make([]radio.Device, n)
				for v := 0; v < n; v++ {
					devs[v].Proc = Proc(p, v == 0, "m20", &outs[v])
				}
				return devs
			}
			firstOuts := make([]DeviceResult, n)
			secondOuts := make([]DeviceResult, n)
			got := traceOf(t, cfg, build(firstOuts))
			again := traceOf(t, cfg, build(secondOuts))
			if got != again {
				t.Fatalf("%s seed %d: trace differs run over run", g.Name(), seed)
			}
			for v := range firstOuts {
				if firstOuts[v] != secondOuts[v] {
					t.Fatalf("%s seed %d: device %d outcome mismatch: %+v vs %+v",
						g.Name(), seed, v, firstOuts[v], secondOuts[v])
				}
			}
		}
	}
}
