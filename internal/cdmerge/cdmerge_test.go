package cdmerge

import (
	"testing"

	"repro/internal/graph"
)

func testParams(t *testing.T, g *graph.Graph, xi float64) Params {
	t.Helper()
	p, err := NewParams(g.N(), g.MaxDegree(), xi)
	if err != nil {
		t.Fatal(err)
	}
	// Lean outer/inner counts for test-scale graphs.
	return p.Tune(10, 3, g.N())
}

func TestBroadcastSmallGraphs(t *testing.T) {
	gs := []*graph.Graph{
		graph.Path(10), graph.Star(12), graph.GNP(16, 0.3, 1), graph.Cycle(12),
	}
	for _, g := range gs {
		p := testParams(t, g, 0.5)
		ok := false
		for seed := uint64(0); seed < 3 && !ok; seed++ {
			out, err := Broadcast(g, 0, "cd20", p, seed)
			if err != nil {
				t.Fatalf("%s: %v", g.Name(), err)
			}
			if out.AllInformed() {
				ok = true
			}
		}
		if !ok {
			t.Errorf("%s: broadcast never completed", g.Name())
		}
	}
}

func TestFinalLabelingGood(t *testing.T) {
	g := graph.GNP(14, 0.3, 3)
	p := testParams(t, g, 0.5)
	out, err := Broadcast(g, 0, "x", p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Labels.Validate(g); err != nil {
		t.Errorf("final labeling invalid: %v", err)
	}
}

func TestMergingShrinksRoots(t *testing.T) {
	// After the outer rounds, far fewer roots than vertices must remain.
	g := graph.Grid(4, 4)
	p := testParams(t, g, 0.5)
	best := g.N()
	for seed := uint64(0); seed < 3; seed++ {
		out, err := Broadcast(g, 0, "x", p, seed)
		if err != nil {
			t.Fatal(err)
		}
		if r := out.Roots(); r < best {
			best = r
		}
	}
	if best > g.N()/2 {
		t.Errorf("best root count %d of %d: merging ineffective", best, g.N())
	}
}

func TestTreeStructureConsistent(t *testing.T) {
	// Parents must be neighbors and sit exactly one layer up.
	g := graph.GNP(14, 0.35, 5)
	p := testParams(t, g, 0.5)
	out, err := Broadcast(g, 0, "x", p, 2)
	if err != nil {
		t.Fatal(err)
	}
	for v, d := range out.Devices {
		if d.Parent < 0 {
			if d.Label != 0 {
				t.Errorf("root %d has layer %d", v, d.Label)
			}
			continue
		}
		if !g.HasEdge(v, d.Parent) {
			t.Errorf("vertex %d's parent %d is not a neighbor", v, d.Parent)
		}
		if out.Devices[d.Parent].Label != d.Label-1 {
			t.Errorf("vertex %d layer %d but parent %d layer %d",
				v, d.Label, d.Parent, out.Devices[d.Parent].Label)
		}
	}
}

func TestEnergyFarBelowTime(t *testing.T) {
	// Theorem 20's whole point: Theta(Delta n^{1+xi}) time but polylog
	// energy.
	g := graph.GNP(16, 0.3, 4)
	p := testParams(t, g, 0.5)
	out, err := Broadcast(g, 0, "x", p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if e := uint64(out.Result.MaxEnergy()); e*50 > out.Result.Slots {
		t.Errorf("max energy %d vs %d slots", e, out.Result.Slots)
	}
}

func TestParamsValidation(t *testing.T) {
	if _, err := NewParams(0, 4, 0.5); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewParams(16, 4, 0); err == nil {
		t.Error("xi=0 accepted")
	}
	if _, err := NewParams(16, 4, 1.5); err == nil {
		t.Error("xi>1 accepted")
	}
	p, err := NewParams(16, 4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if p.C < 2 || p.K < 5 {
		t.Errorf("degenerate parameters: %+v", p)
	}
	if p.Slots() == 0 {
		t.Error("zero schedule")
	}
}

func TestSlotsAccounting(t *testing.T) {
	g := graph.Path(8)
	p := testParams(t, g, 0.5)
	out, err := Broadcast(g, 0, "x", p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.Result.Slots > p.Slots() {
		t.Errorf("used slot %d beyond schedule %d", out.Result.Slots, p.Slots())
	}
}

func TestSourceValidation(t *testing.T) {
	g := graph.Path(6)
	p := testParams(t, g, 0.5)
	if _, err := Broadcast(g, -1, nil, p, 0); err == nil {
		t.Error("negative source accepted")
	}
	if _, err := Broadcast(g, 6, nil, p, 0); err == nil {
		t.Error("out-of-range source accepted")
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	g := graph.Star(8)
	p := testParams(t, g, 0.5)
	a, err := Broadcast(g, 0, "d", p, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Broadcast(g, 0, "d", p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Result.Slots != b.Result.Slots || a.Result.Events != b.Result.Events {
		t.Error("same seed diverged")
	}
}

func TestXiTradeoff(t *testing.T) {
	// Larger xi means a bigger palette (more time) and fewer colorings
	// (less energy per pass).
	pSmall, err := NewParams(64, 8, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	pLarge, err := NewParams(64, 8, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if pLarge.K <= pSmall.K {
		t.Errorf("palette did not grow with xi: %d vs %d", pLarge.K, pSmall.K)
	}
	if pLarge.C >= pSmall.C {
		t.Errorf("coloring count did not shrink with xi: %d vs %d", pLarge.C, pSmall.C)
	}
}
