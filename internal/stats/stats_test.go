package stats

import (
	"math"
	"strings"
	"testing"
)

func TestMeanMaxPercentile(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if Mean(xs) != 2.8 {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if Max(xs) != 5 {
		t.Errorf("Max = %v", Max(xs))
	}
	if Percentile(xs, 50) != 3 {
		t.Errorf("P50 = %v", Percentile(xs, 50))
	}
	if Percentile(xs, 100) != 5 || Percentile(xs, 0) != 1 {
		t.Error("extreme percentiles wrong")
	}
	if Mean(nil) != 0 || Max(nil) != 0 || Percentile(nil, 50) != 0 {
		t.Error("empty inputs mishandled")
	}
}

func TestLogLogSlope(t *testing.T) {
	// y = x^2 exactly.
	xs := []float64{1, 2, 4, 8, 16}
	ys := []float64{1, 4, 16, 64, 256}
	if got := LogLogSlope(xs, ys); math.Abs(got-2) > 1e-9 {
		t.Errorf("slope of x^2 = %v", got)
	}
	// y = const: slope 0.
	flat := []float64{7, 7, 7, 7, 7}
	if got := LogLogSlope(xs, flat); math.Abs(got) > 1e-9 {
		t.Errorf("slope of constant = %v", got)
	}
	// Logarithmic growth has slope well below 1.
	logy := make([]float64, len(xs))
	for i, x := range xs {
		logy[i] = math.Log2(x) + 1
	}
	if got := LogLogSlope(xs, logy); got > 0.9 {
		t.Errorf("slope of log = %v, want << 1", got)
	}
	if !math.IsNaN(LogLogSlope([]float64{1}, []float64{1})) {
		t.Error("single point should be NaN")
	}
	if !math.IsNaN(LogLogSlope([]float64{0, -1}, []float64{1, 2})) {
		t.Error("non-positive xs should be skipped -> NaN")
	}
}

func TestGrowthRatio(t *testing.T) {
	if got := GrowthRatio([]float64{2, 4, 8}); got != 4 {
		t.Errorf("GrowthRatio = %v", got)
	}
	if !math.IsNaN(GrowthRatio([]float64{5})) {
		t.Error("short input should be NaN")
	}
	if !math.IsNaN(GrowthRatio([]float64{0, 5})) {
		t.Error("zero first element should be NaN")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{Header: []string{"name", "n", "value"}}
	tbl.Add("alpha", 16, 3.14159)
	tbl.Add("beta-long-name", 256, 2.0)
	s := tbl.String()
	if !strings.Contains(s, "alpha") || !strings.Contains(s, "beta-long-name") {
		t.Fatalf("table missing rows:\n%s", s)
	}
	if !strings.Contains(s, "3.14") {
		t.Errorf("float not formatted:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 { // header, separator, two rows
		t.Errorf("table has %d lines:\n%s", len(lines), s)
	}
}
