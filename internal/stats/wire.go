package stats

import (
	"encoding/binary"
	"fmt"
	"math"
)

// MomentsWireSize is the fixed encoded size of one Moments state: five
// little-endian 8-byte fields (N, then the IEEE-754 bits of Mean, M2,
// Min, Max). The encoding is stable — it is the unit of the fabric
// wire protocol (internal/fabric), where a worker streams merged batch
// moments back to the coordinator — so any change is a protocol break
// and must bump the fabric protocol version.
const MomentsWireSize = 40

// AppendBinary appends the stable binary encoding of m to b. The
// float64 fields are encoded as raw IEEE-754 bits, so decoding
// reproduces the exact state: a moment merged from decoded state is
// bit-identical to one merged from the original.
func (m Moments) AppendBinary(b []byte) []byte {
	b = binary.LittleEndian.AppendUint64(b, uint64(m.N))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(m.Mean))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(m.M2))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(m.Min))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(m.Max))
	return b
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (m Moments) MarshalBinary() ([]byte, error) {
	return m.AppendBinary(make([]byte, 0, MomentsWireSize)), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler. It requires
// exactly MomentsWireSize bytes and validates the decoded state against
// the Add/Merge reachability rules (Validate), so a corrupt or hostile
// frame can never smuggle NaNs or negative counts into an aggregate.
func (m *Moments) UnmarshalBinary(data []byte) error {
	if len(data) != MomentsWireSize {
		return fmt.Errorf("stats: moments record is %d bytes, want %d", len(data), MomentsWireSize)
	}
	dec := Moments{
		N:    int64(binary.LittleEndian.Uint64(data[0:8])),
		Mean: math.Float64frombits(binary.LittleEndian.Uint64(data[8:16])),
		M2:   math.Float64frombits(binary.LittleEndian.Uint64(data[16:24])),
		Min:  math.Float64frombits(binary.LittleEndian.Uint64(data[24:32])),
		Max:  math.Float64frombits(binary.LittleEndian.Uint64(data[32:40])),
	}
	if err := dec.Validate(); err != nil {
		return err
	}
	*m = dec
	return nil
}

// EncodeMoments concatenates the binary encodings of ms — the payload
// shape of one fabric batch result (one record per tracked measure
// column, in column order).
func EncodeMoments(ms []Moments) []byte {
	b := make([]byte, 0, len(ms)*MomentsWireSize)
	for _, m := range ms {
		b = m.AppendBinary(b)
	}
	return b
}

// DecodeMoments decodes a concatenation produced by EncodeMoments,
// validating every record. A trailing partial record is an error: the
// fabric frames carry whole messages, so truncation means corruption.
func DecodeMoments(b []byte) ([]Moments, error) {
	if len(b)%MomentsWireSize != 0 {
		return nil, fmt.Errorf("stats: moments payload of %d bytes is not a multiple of %d", len(b), MomentsWireSize)
	}
	ms := make([]Moments, len(b)/MomentsWireSize)
	for i := range ms {
		if err := ms[i].UnmarshalBinary(b[i*MomentsWireSize : (i+1)*MomentsWireSize]); err != nil {
			return nil, fmt.Errorf("stats: moments record %d: %w", i, err)
		}
	}
	return ms, nil
}
