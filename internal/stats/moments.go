package stats

import (
	"fmt"
	"math"
)

// Moments is a mergeable Welford accumulator: count, mean, sum of squared
// deviations (M2), min and max. Unlike Stream it retains no samples, so
// it serializes to a constant-size record — the unit of state the
// adaptive experiment controller journals per (cell, batch) — and two
// accumulators combine with Merge using Chan et al.'s parallel update.
//
// Determinism contract: Add and Merge are pure float64 arithmetic, so
// feeding the same values in the same order — or merging the same
// sub-accumulators in the same order — yields bit-identical state on any
// machine. Merging is NOT bitwise-associative (floating point), which is
// why callers that need reproducible aggregates must fix the merge order
// (internal/experiment merges batch moments in batch-index order).
type Moments struct {
	N    int64   `json:"n"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// Add feeds one observation (Welford's running update).
func (m *Moments) Add(x float64) {
	if m.N == 0 {
		m.Min, m.Max = x, x
	} else {
		if x < m.Min {
			m.Min = x
		}
		if x > m.Max {
			m.Max = x
		}
	}
	m.N++
	d := x - m.Mean
	m.Mean += d / float64(m.N)
	m.M2 += d * (x - m.Mean)
}

// Merge folds o into m (Chan et al. parallel combination). The result is
// the moments of the concatenated sample; merge order affects the exact
// float64 bits, so fix it when reproducibility matters.
func (m *Moments) Merge(o Moments) {
	if o.N == 0 {
		return
	}
	if m.N == 0 {
		*m = o
		return
	}
	n := m.N + o.N
	d := o.Mean - m.Mean
	m.M2 += o.M2 + d*d*float64(m.N)*float64(o.N)/float64(n)
	m.Mean += d * float64(o.N) / float64(n)
	m.N = n
	if o.Min < m.Min {
		m.Min = o.Min
	}
	if o.Max > m.Max {
		m.Max = o.Max
	}
}

// Variance returns the unbiased sample variance (0 for fewer than two
// observations). Welford's M2 is non-negative up to rounding; tiny
// negative residue is clamped.
func (m *Moments) Variance() float64 {
	if m.N < 2 {
		return 0
	}
	v := m.M2 / float64(m.N-1)
	if v < 0 {
		return 0
	}
	return v
}

// StdDev returns the sample standard deviation.
func (m *Moments) StdDev() float64 { return math.Sqrt(m.Variance()) }

// StdErr returns the standard error of the mean (0 for fewer than two
// observations).
func (m *Moments) StdErr() float64 {
	if m.N < 2 {
		return 0
	}
	return m.StdDev() / math.Sqrt(float64(m.N))
}

// CIHalfWidth returns the half-width of the two-sided Student-t
// confidence interval for the mean at the given confidence level (e.g.
// 0.95). Zero for fewer than two observations.
func (m *Moments) CIHalfWidth(confidence float64) float64 {
	if m.N < 2 {
		return 0
	}
	return TQuantile(m.N-1, confidence) * m.StdErr()
}

// RelCIHalfWidth returns CIHalfWidth normalized by |mean| — the relative
// precision the adaptive stopping rule targets. A zero mean with nonzero
// spread yields +Inf (never converged); a zero mean with zero spread
// yields 0 (a constant measure is exactly resolved).
func (m *Moments) RelCIHalfWidth(confidence float64) float64 {
	hw := m.CIHalfWidth(confidence)
	if hw == 0 {
		return 0
	}
	mean := math.Abs(m.Mean)
	if mean == 0 {
		return math.Inf(1)
	}
	return hw / mean
}

// validateMoments rejects states no Add/Merge sequence can produce —
// the journal-replay guard against a corrupted-but-CRC-valid record
// (CRC protects against torn writes, not against a buggy writer).
func validateMoments(m Moments) error {
	switch {
	case m.N < 0:
		return fmt.Errorf("stats: negative count %d", m.N)
	case m.N == 0 && (m.Mean != 0 || m.M2 != 0 || m.Min != 0 || m.Max != 0):
		return fmt.Errorf("stats: empty moments with nonzero fields")
	case m.M2 < 0 || math.IsNaN(m.M2) || math.IsInf(m.M2, 0):
		return fmt.Errorf("stats: bad M2 %v", m.M2)
	case math.IsNaN(m.Mean) || math.IsInf(m.Mean, 0):
		return fmt.Errorf("stats: bad mean %v", m.Mean)
	case m.N > 0 && (m.Min > m.Max || m.Mean < m.Min || m.Mean > m.Max):
		return fmt.Errorf("stats: inconsistent min/mean/max %v/%v/%v", m.Min, m.Mean, m.Max)
	}
	return nil
}

// Validate reports whether the state is one an Add/Merge sequence could
// have produced. Used when deserializing journaled moments.
func (m *Moments) Validate() error { return validateMoments(*m) }

// TQuantile returns the two-sided Student-t critical value t such that a
// t-distributed variable with df degrees of freedom lies in [-t, t] with
// the given probability (e.g. df=9, confidence=0.95 -> 2.262...). It is
// a pure deterministic function; df < 1 is treated as 1 and confidence
// is clamped to (0, 1).
func TQuantile(df int64, confidence float64) float64 {
	if df < 1 {
		df = 1
	}
	if confidence <= 0 {
		confidence = 1e-9
	}
	if confidence >= 1 {
		confidence = 1 - 1e-12
	}
	// One-sided upper-tail probability.
	p := (1 + confidence) / 2
	// Invert the t CDF by bisection on the regularized incomplete beta
	// representation: P(T <= t) = 1 - I_{df/(df+t^2)}(df/2, 1/2) / 2 for
	// t >= 0. Bisection is branch-predictable, immune to the divergence
	// corner cases of series inversions, and fast enough for a function
	// called once per (cell, batch, measure).
	cdf := func(t float64) float64 {
		x := float64(df) / (float64(df) + t*t)
		return 1 - 0.5*regIncBeta(float64(df)/2, 0.5, x)
	}
	lo, hi := 0.0, 1.0
	for cdf(hi) < p {
		hi *= 2
		if hi > 1e18 {
			break
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if mid == lo || mid == hi {
			break
		}
		if cdf(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// regIncBeta computes the regularized incomplete beta function I_x(a, b)
// via the standard continued-fraction expansion (Lentz's algorithm),
// with the symmetry transform applied when x is past the distribution's
// bulk so the fraction converges quickly.
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	// ln of the prefactor x^a (1-x)^b / (a B(a,b)).
	lbeta, _ := math.Lgamma(a + b)
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	front := math.Exp(lbeta - la - lb + a*math.Log(x) + b*math.Log1p(-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the incomplete-beta continued fraction by the
// modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		tiny    = 1e-300
		epsilon = 1e-15
		maxIter = 500
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < epsilon {
			break
		}
	}
	return h
}
