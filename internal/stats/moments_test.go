package stats

import (
	"encoding/json"
	"math"
	"testing"
)

func TestMomentsMatchesDirect(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5}
	var m Moments
	for _, x := range xs {
		m.Add(x)
	}
	if m.N != int64(len(xs)) {
		t.Fatalf("count %d, want %d", m.N, len(xs))
	}
	mean := Mean(xs)
	if math.Abs(m.Mean-mean) > 1e-12 {
		t.Errorf("mean %v, want %v", m.Mean, mean)
	}
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	wantVar := ss / float64(len(xs)-1)
	if math.Abs(m.Variance()-wantVar) > 1e-12 {
		t.Errorf("variance %v, want %v", m.Variance(), wantVar)
	}
	if m.Min != 1 || m.Max != 9 {
		t.Errorf("min/max %v/%v, want 1/9", m.Min, m.Max)
	}
}

func TestMomentsMergeEqualsSequential(t *testing.T) {
	// Merging fixed-boundary batches in batch order must be deterministic:
	// the exact same split merged twice yields bit-identical state.
	xs := make([]float64, 1000)
	s := uint64(42)
	for i := range xs {
		s = s*6364136223846793005 + 1442695040888963407
		xs[i] = float64(s>>11) / float64(1<<53) * 100
	}
	build := func() Moments {
		var total Moments
		for lo := 0; lo < len(xs); lo += 128 {
			hi := lo + 128
			if hi > len(xs) {
				hi = len(xs)
			}
			var batch Moments
			for _, x := range xs[lo:hi] {
				batch.Add(x)
			}
			total.Merge(batch)
		}
		return total
	}
	a, b := build(), build()
	if a != b {
		t.Fatalf("same merge order diverged: %+v vs %+v", a, b)
	}
	// And the merged result agrees with sequential accumulation to
	// floating-point accuracy (not bit-exactness — merge reassociates).
	var seq Moments
	for _, x := range xs {
		seq.Add(x)
	}
	if a.N != seq.N || a.Min != seq.Min || a.Max != seq.Max {
		t.Fatalf("merge count/min/max diverged: %+v vs %+v", a, seq)
	}
	if math.Abs(a.Mean-seq.Mean) > 1e-9 || math.Abs(a.Variance()-seq.Variance()) > 1e-6 {
		t.Fatalf("merge moments drifted: %+v vs %+v", a, seq)
	}
}

func TestMomentsMergeEmpty(t *testing.T) {
	var a, b Moments
	b.Add(7)
	a.Merge(b) // empty <- nonempty adopts
	if a != b {
		t.Fatalf("empty merge: %+v vs %+v", a, b)
	}
	a.Merge(Moments{}) // nonempty <- empty is a no-op
	if a != b {
		t.Fatalf("no-op merge changed state: %+v", a)
	}
}

func TestMomentsJSONRoundTripExact(t *testing.T) {
	// The checkpoint journal stores moments as JSON; float64 round-trip
	// must be bit-exact for resume to reproduce aggregates.
	var m Moments
	for _, x := range []float64{1.0 / 3, math.Pi, 2.7182818284590455, 1e-300, 12345.6789} {
		m.Add(x)
	}
	raw, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Moments
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if m != back {
		t.Fatalf("JSON round trip not bit-exact: %+v vs %+v", m, back)
	}
}

func TestMomentsValidate(t *testing.T) {
	var ok Moments
	ok.Add(1)
	ok.Add(2)
	if err := ok.Validate(); err != nil {
		t.Errorf("valid moments rejected: %v", err)
	}
	bad := []Moments{
		{N: -1},
		{N: 0, Mean: 1},
		{N: 2, Mean: 1, M2: -5, Min: 0, Max: 2},
		{N: 2, Mean: math.NaN(), Min: 0, Max: 1},
		{N: 2, Mean: 5, Min: 0, Max: 1},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: invalid moments %+v accepted", i, m)
		}
	}
}

func TestTQuantileReferenceValues(t *testing.T) {
	// Standard two-sided critical values (tables to 3 decimals).
	cases := []struct {
		df   int64
		conf float64
		want float64
	}{
		{1, 0.95, 12.706},
		{2, 0.95, 4.303},
		{5, 0.95, 2.571},
		{9, 0.95, 2.262},
		{10, 0.99, 3.169},
		{30, 0.95, 2.042},
		{100, 0.95, 1.984},
		{1000, 0.95, 1.962},
		{60, 0.90, 1.671},
	}
	for _, tc := range cases {
		got := TQuantile(tc.df, tc.conf)
		if math.Abs(got-tc.want) > 2e-3 {
			t.Errorf("TQuantile(%d, %v) = %v, want %v", tc.df, tc.conf, got, tc.want)
		}
	}
}

func TestTQuantileLargeDfApproachesNormal(t *testing.T) {
	got := TQuantile(1_000_000, 0.95)
	if math.Abs(got-1.95996) > 1e-3 {
		t.Errorf("t(1e6, 0.95) = %v, want ~1.960", got)
	}
}

func TestCIHalfWidthShrinks(t *testing.T) {
	// Same-spread samples: CI half-width must shrink roughly as 1/sqrt(n).
	widths := make([]float64, 0, 3)
	for _, n := range []int{100, 400, 1600} {
		var m Moments
		for i := 0; i < n; i++ {
			m.Add(float64(i % 10))
		}
		widths = append(widths, m.CIHalfWidth(0.95))
	}
	if !(widths[0] > widths[1] && widths[1] > widths[2]) {
		t.Fatalf("CI half-widths not shrinking: %v", widths)
	}
	ratio := widths[0] / widths[2]
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("16x samples should ~4x the precision, got ratio %v", ratio)
	}
}

func TestRelCIHalfWidth(t *testing.T) {
	var m Moments
	m.Add(5)
	m.Add(5)
	m.Add(5)
	if rel := m.RelCIHalfWidth(0.95); rel != 0 {
		t.Errorf("constant stream relCI = %v, want 0", rel)
	}
	var z Moments
	z.Add(-1)
	z.Add(1)
	if rel := z.RelCIHalfWidth(0.95); !math.IsInf(rel, 1) {
		t.Errorf("zero-mean spread relCI = %v, want +Inf", rel)
	}
}
