// Package stats provides the measurement helpers shared by the benchmark
// harness and the experiment executables: aggregation over seeded trials,
// growth-shape estimation for comparing measured scaling against the
// paper's asymptotic claims, and plain-text table rendering.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Max returns the maximum (0 for empty input).
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	if math.IsInf(m, -1) {
		return 0
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) by nearest-rank.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	return ys[nearestRank(len(ys), p)]
}

// nearestRank maps a percentile to its 0-based index in a sorted sample
// of size n (n > 0), clamped to the valid range. Shared by Percentile
// and Stream.Quantile so the two can never diverge.
func nearestRank(n int, p float64) int {
	rank := int(math.Ceil(p/100*float64(n))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= n {
		rank = n - 1
	}
	return rank
}

// LogLogSlope fits the least-squares slope of log(y) against log(x):
// roughly the polynomial degree of the growth y ~ x^slope. Pairs with
// non-positive coordinates are skipped; fewer than two valid pairs yield
// NaN.
func LogLogSlope(xs, ys []float64) float64 {
	var lx, ly []float64
	for i := range xs {
		if i < len(ys) && xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	if len(lx) < 2 {
		return math.NaN()
	}
	mx, my := Mean(lx), Mean(ly)
	num, den := 0.0, 0.0
	for i := range lx {
		num += (lx[i] - mx) * (ly[i] - my)
		den += (lx[i] - mx) * (lx[i] - mx)
	}
	if den == 0 {
		return math.NaN()
	}
	return num / den
}

// GrowthRatio returns y_last/y_first — the overall growth across a sweep.
func GrowthRatio(ys []float64) float64 {
	if len(ys) < 2 || ys[0] == 0 {
		return math.NaN()
	}
	return ys[len(ys)-1] / ys[0]
}

// Table renders rows as an aligned plain-text table with a header.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row, formatting each cell with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	cols := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Header)
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	writeRow := func(r []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			fmt.Fprintf(&b, "%-*s", widths[i]+2, c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}
