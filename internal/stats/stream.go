package stats

import (
	"sort"
)

// Stream accumulates a sequence of observations one at a time and
// produces the aggregate measures the sweep engine reports: count, mean,
// min/max, and percentiles. Mean, min and max are maintained incrementally
// (Welford-style running mean); samples are retained so percentiles are
// exact rather than approximated.
//
// Determinism contract: feeding the same values in the same order yields
// bit-identical aggregates. Callers that collect samples concurrently must
// therefore buffer per-trial results and Add them in trial order (the
// sweep engine does exactly this), after which the emitted Summary is
// independent of worker count.
type Stream struct {
	samples []float64
	mean    float64
	min     float64
	max     float64
	sorted  bool
}

// NewStream returns an empty accumulator, optionally pre-sized for n
// observations.
func NewStream(n int) *Stream {
	return &Stream{samples: make([]float64, 0, n)}
}

// Add feeds one observation.
func (s *Stream) Add(x float64) {
	if len(s.samples) == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.samples = append(s.samples, x)
	s.mean += (x - s.mean) / float64(len(s.samples))
	s.sorted = false
}

// Count returns the number of observations.
func (s *Stream) Count() int { return len(s.samples) }

// Mean returns the running mean (0 for an empty stream).
func (s *Stream) Mean() float64 { return s.mean }

// Min returns the minimum observation (0 for an empty stream).
func (s *Stream) Min() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	return s.min
}

// MaxValue returns the maximum observation (0 for an empty stream).
func (s *Stream) MaxValue() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	return s.max
}

// Quantile returns the p-th percentile (0 <= p <= 100) by nearest-rank
// over the retained samples. The sample buffer is sorted lazily on first
// use and kept sorted until the next Add.
func (s *Stream) Quantile(p float64) float64 {
	if len(s.samples) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.samples)
		s.sorted = true
	}
	return s.samples[nearestRank(len(s.samples), p)]
}

// Summary is the JSON/CSV-exportable digest of a Stream.
type Summary struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Summarize digests the stream.
func (s *Stream) Summarize() Summary {
	return Summary{
		Count: s.Count(),
		Mean:  s.Mean(),
		Min:   s.Min(),
		Max:   s.MaxValue(),
		P50:   s.Quantile(50),
		P90:   s.Quantile(90),
		P99:   s.Quantile(99),
	}
}
