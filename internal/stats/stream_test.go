package stats

import (
	"math"
	"testing"
)

func TestStreamEmpty(t *testing.T) {
	s := NewStream(0)
	sum := s.Summarize()
	if sum.Count != 0 || sum.Mean != 0 || sum.Min != 0 || sum.Max != 0 || sum.P50 != 0 {
		t.Errorf("empty summary = %+v", sum)
	}
}

func TestStreamMatchesBatchHelpers(t *testing.T) {
	xs := []float64{5, 1, 9, 3, 3, 7, 2, 8, 6, 4}
	s := NewStream(len(xs))
	for _, x := range xs {
		s.Add(x)
	}
	if got, want := s.Mean(), Mean(xs); math.Abs(got-want) > 1e-12 {
		t.Errorf("mean = %v, want %v", got, want)
	}
	if got, want := s.MaxValue(), Max(xs); got != want {
		t.Errorf("max = %v, want %v", got, want)
	}
	if s.Min() != 1 {
		t.Errorf("min = %v", s.Min())
	}
	for _, p := range []float64{0, 25, 50, 90, 99, 100} {
		if got, want := s.Quantile(p), Percentile(xs, p); got != want {
			t.Errorf("p%v = %v, want %v", p, got, want)
		}
	}
}

func TestStreamAddAfterQuantile(t *testing.T) {
	s := NewStream(4)
	s.Add(3)
	s.Add(1)
	if s.Quantile(50) != 1 {
		t.Fatalf("p50 of {1,3} = %v", s.Quantile(50))
	}
	s.Add(2) // must invalidate the sorted cache
	if s.Quantile(100) != 3 || s.Quantile(0) != 1 || s.Quantile(50) != 2 {
		t.Errorf("quantiles after re-add: p0=%v p50=%v p100=%v",
			s.Quantile(0), s.Quantile(50), s.Quantile(100))
	}
	if s.Count() != 3 {
		t.Errorf("count = %d", s.Count())
	}
}
