package stats

import (
	"math"
	"math/rand"
	"testing"
)

// randMoments builds a reachable Moments state by feeding real samples.
func randMoments(r *rand.Rand, n int) Moments {
	var m Moments
	for i := 0; i < n; i++ {
		// Mix magnitudes and signs, including exact zeros and negative
		// values, so min/mean/max exercise their orderings.
		x := (r.Float64() - 0.5) * math.Pow(10, float64(r.Intn(7)-3))
		if r.Intn(10) == 0 {
			x = 0
		}
		m.Add(x)
	}
	return m
}

func TestMomentsBinaryRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	states := []Moments{
		{}, // empty
	}
	for _, n := range []int{1, 2, 3, 17, 1000} {
		states = append(states, randMoments(r, n))
	}
	for i, m := range states {
		b, err := m.MarshalBinary()
		if err != nil {
			t.Fatalf("state %d: marshal: %v", i, err)
		}
		if len(b) != MomentsWireSize {
			t.Fatalf("state %d: encoded %d bytes, want %d", i, len(b), MomentsWireSize)
		}
		var got Moments
		if err := got.UnmarshalBinary(b); err != nil {
			t.Fatalf("state %d: unmarshal: %v", i, err)
		}
		if got != m {
			t.Errorf("state %d: round trip %+v != %+v", i, got, m)
		}
	}
}

func TestMomentsBinaryRejectsCorruption(t *testing.T) {
	m := randMoments(rand.New(rand.NewSource(7)), 50)
	b, _ := m.MarshalBinary()

	var out Moments
	if err := out.UnmarshalBinary(b[:len(b)-1]); err == nil {
		t.Error("short record accepted")
	}
	if err := out.UnmarshalBinary(append(b, 0)); err == nil {
		t.Error("long record accepted")
	}
	// Negative count: no Add/Merge sequence produces it.
	neg := append([]byte(nil), b...)
	neg[7] = 0xff
	if err := out.UnmarshalBinary(neg); err == nil {
		t.Error("negative-count record accepted")
	}
	// NaN mean.
	nan := append([]byte(nil), b...)
	nanBits := math.Float64bits(math.NaN())
	for i := 0; i < 8; i++ {
		nan[8+i] = byte(nanBits >> (8 * i))
	}
	if err := out.UnmarshalBinary(nan); err == nil {
		t.Error("NaN-mean record accepted")
	}
	// A corrupt record must leave the destination untouched.
	if (out != Moments{}) {
		t.Errorf("failed decode mutated destination: %+v", out)
	}
}

func TestEncodeDecodeMoments(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	ms := []Moments{randMoments(r, 10), {}, randMoments(r, 200), randMoments(r, 1)}
	b := EncodeMoments(ms)
	if len(b) != len(ms)*MomentsWireSize {
		t.Fatalf("encoded %d bytes for %d records", len(b), len(ms))
	}
	got, err := DecodeMoments(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ms) {
		t.Fatalf("decoded %d records, want %d", len(got), len(ms))
	}
	for i := range ms {
		if got[i] != ms[i] {
			t.Errorf("record %d: %+v != %+v", i, got[i], ms[i])
		}
	}
	if _, err := DecodeMoments(b[:len(b)-3]); err == nil {
		t.Error("truncated payload accepted")
	}
	if out, err := DecodeMoments(nil); err != nil || len(out) != 0 {
		t.Errorf("empty payload: %v, %d records", err, len(out))
	}
}

// approxEq compares float64s to a relative tolerance — merge order
// perturbs low-order bits (floating point is not associative), which is
// exactly why the controller fixes the merge order; the algebraic
// identity still has to hold to near-machine precision.
func approxEq(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*scale
}

func momentsApproxEq(a, b Moments) bool {
	// Count, min and max are exact under any merge order; mean and M2
	// accumulate rounding.
	return a.N == b.N && a.Min == b.Min && a.Max == b.Max &&
		approxEq(a.Mean, b.Mean) && approxEq(a.M2, b.M2)
}

// TestMergeCommutativeAssociative is the property the wire depends on:
// any tree of merges over the same batches yields the same moments (up
// to float rounding), so a coordinator merging worker results in batch
// order reproduces what any other grouping would have measured.
func TestMergeCommutativeAssociative(t *testing.T) {
	r := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 200; trial++ {
		a := randMoments(r, 1+r.Intn(50))
		b := randMoments(r, r.Intn(50)) // may be empty
		c := randMoments(r, 1+r.Intn(50))

		ab := a
		ab.Merge(b)
		ba := b
		ba.Merge(a)
		if !momentsApproxEq(ab, ba) {
			t.Fatalf("trial %d: merge not commutative: %+v vs %+v", trial, ab, ba)
		}

		abc1 := ab
		abc1.Merge(c)
		bc := b
		bc.Merge(c)
		abc2 := a
		abc2.Merge(bc)
		if !momentsApproxEq(abc1, abc2) {
			t.Fatalf("trial %d: merge not associative: %+v vs %+v", trial, abc1, abc2)
		}

		// The merged state must agree with feeding every sample into one
		// accumulator: counts and extremes exactly.
		if abc1.N != a.N+b.N+c.N {
			t.Fatalf("trial %d: merged count %d, want %d", trial, abc1.N, a.N+b.N+c.N)
		}
	}
}

// TestMergeRoundTripStable pins the fabric invariant end to end: merge
// of decoded wire states is bit-identical to merge of the originals.
func TestMergeRoundTripStable(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		a, b := randMoments(r, 1+r.Intn(100)), randMoments(r, 1+r.Intn(100))
		direct := a
		direct.Merge(b)

		wire, err := DecodeMoments(EncodeMoments([]Moments{a, b}))
		if err != nil {
			t.Fatal(err)
		}
		viaWire := wire[0]
		viaWire.Merge(wire[1])
		if direct != viaWire {
			t.Fatalf("trial %d: wire round trip perturbed merge: %+v vs %+v", trial, direct, viaWire)
		}
	}
}
