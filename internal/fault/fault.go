// Package fault defines the deterministic fault-injection plan threaded
// through the radio engine: crash-stop faults (a device dies at an
// action slot and never acts again), sleep faults (a device is forced
// idle for a window of slots — its scheduled transmits and listens in
// the window are suppressed), and lossy slots (a delivery a listener
// would have received is erased to silence).
//
// # Determinism contract
//
// Fault decisions are *positional*: whether device v faults at slot t is
// a pure hash of (fault root, v, t), where the fault root is derived
// from the run seed on a dedicated SplitMix64 child stream disjoint from
// every per-device protocol stream. No generator state is consumed, so
//
//   - enabling faults never perturbs a protocol coin flip — a run with
//     Rate 0 (or Kind None) is byte-identical to a run with no fault
//     configuration at all, golden traces included;
//   - decisions are independent of scheduling: solo and batched
//     execution, any worker count and any batch width, inject the exact
//     same faults at the exact same slots;
//   - a (cell, trial) position in a sweep matrix gets its own fault
//     stream for free, because the trial seed itself is positional.
package fault

import (
	"fmt"
	"strconv"

	"repro/internal/rng"
)

// Kind selects the fault model. The zero value is None: no injection.
type Kind string

// The fault kinds. One plan injects one kind.
const (
	None  Kind = ""
	Crash Kind = "crash"
	Sleep Kind = "sleep"
	Loss  Kind = "loss"
)

// Kinds lists the injectable kinds (None excluded), for CLI help.
func Kinds() []Kind { return []Kind{Crash, Sleep, Loss} }

// Spec declares one fault configuration. The zero value — and any spec
// with Rate 0 — is inactive: the engine behaves exactly as if the field
// had never been set.
type Spec struct {
	// Kind selects what is injected.
	Kind Kind `json:"kind,omitempty"`
	// Rate is the per-decision fault probability in [0, 1]: per action
	// slot per device for Crash and Sleep, per listen with a pending
	// delivery for Loss.
	Rate float64 `json:"rate,omitempty"`
	// Window is the number of slots a Sleep fault forces the device idle
	// (0 means 1). Ignored by other kinds.
	Window int `json:"window,omitempty"`
}

// Active reports whether the spec injects anything. Inactive specs make
// no decisions, render no labels, and add no report columns.
func (s Spec) Active() bool { return s.Kind != None && s.Rate > 0 }

// Validate rejects malformed specs.
func (s Spec) Validate() error {
	switch s.Kind {
	case None:
		if s.Rate != 0 || s.Window != 0 {
			return fmt.Errorf("fault: rate/window set without a kind")
		}
		return nil
	case Crash, Sleep, Loss:
	default:
		return fmt.Errorf("fault: unknown kind %q (valid: crash, sleep, loss)", string(s.Kind))
	}
	if s.Rate < 0 || s.Rate > 1 || s.Rate != s.Rate {
		return fmt.Errorf("fault: rate %v outside [0, 1]", s.Rate)
	}
	if s.Window < 0 {
		return fmt.Errorf("fault: negative window %d", s.Window)
	}
	if s.Window != 0 && s.Kind != Sleep {
		return fmt.Errorf("fault: window is only meaningful for sleep faults")
	}
	return nil
}

// Label renders an active spec for cell labels and reports:
// "crash:0.001", or "sleep:0.01:w=8" when a non-default window is set.
// Inactive specs render empty.
func (s Spec) Label() string {
	if !s.Active() {
		return ""
	}
	l := string(s.Kind) + ":" + strconv.FormatFloat(s.Rate, 'g', -1, 64)
	if s.Kind == Sleep && s.Window > 1 {
		l += ":w=" + strconv.Itoa(s.Window)
	}
	return l
}

// faultStream is the child-stream index the fault root is derived on.
// Per-device protocol streams use child indices 0..n-1, so any constant
// far above every realistic device count keeps the streams disjoint.
const faultStream = 0x6661756c74 // "fault"

// Plan is a spec bound to one run's seed: the engine-side decision
// procedure. The zero Plan is inactive. Plans are stateless — safe to
// copy, and decisions may be evaluated in any order or not at all
// without affecting later ones.
type Plan struct {
	kind   Kind
	rate   float64
	window uint64
	root   uint64
	on     bool
}

// Plan binds the spec to a run seed. Inactive specs yield the inactive
// plan regardless of seed.
func (s Spec) Plan(seed uint64) Plan {
	if !s.Active() {
		return Plan{}
	}
	w := uint64(1)
	if s.Window > 1 {
		w = uint64(s.Window)
	}
	return Plan{
		kind:   s.Kind,
		rate:   s.Rate,
		window: w,
		root:   rng.Child(seed, faultStream),
		on:     true,
	}
}

// Active reports whether the plan injects anything.
func (p Plan) Active() bool { return p.on }

// Kind returns the plan's fault kind (None when inactive).
func (p Plan) Kind() Kind {
	if !p.on {
		return None
	}
	return p.kind
}

// Window returns the sleep-fault window in slots (>= 1 when active).
func (p Plan) Window() uint64 { return p.window }

// Fires decides whether device v faults at slot t: a pure positional
// hash against the plan's rate, consuming no generator state.
func (p Plan) Fires(v int32, t uint64) bool {
	if !p.on {
		return false
	}
	h := p.root
	h = rng.SplitMix64(h ^ rng.SplitMix64(uint64(uint32(v))+0x9e3779b97f4a7c15))
	h = rng.SplitMix64(h ^ rng.SplitMix64(t+0x2545f4914f6cdd1d))
	return float64(h>>11)*0x1.0p-53 < p.rate
}
