package fault

import (
	"math"
	"testing"
)

func TestValidate(t *testing.T) {
	valid := []Spec{
		{},
		{Kind: Crash, Rate: 0},
		{Kind: Crash, Rate: 0.5},
		{Kind: Sleep, Rate: 1, Window: 16},
		{Kind: Loss, Rate: 0.001},
	}
	for _, s := range valid {
		if err := s.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v", s, err)
		}
	}
	invalid := []Spec{
		{Rate: 0.1},                          // rate without kind
		{Window: 2},                          // window without kind
		{Kind: "meteor", Rate: 0.1},          // unknown kind
		{Kind: Crash, Rate: -0.1},            // negative rate
		{Kind: Crash, Rate: 1.1},             // rate > 1
		{Kind: Loss, Rate: math.NaN()},       // NaN rate
		{Kind: Crash, Rate: 0.1, Window: 2},  // window on non-sleep
		{Kind: Sleep, Rate: 0.1, Window: -1}, // negative window
	}
	for _, s := range invalid {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted", s)
		}
	}
}

func TestActiveAndLabel(t *testing.T) {
	for _, s := range []Spec{{}, {Kind: Crash}, {Kind: Sleep, Window: 4}} {
		if s.Active() {
			t.Errorf("%+v reported active", s)
		}
		if s.Label() != "" {
			t.Errorf("inactive %+v has label %q", s, s.Label())
		}
	}
	cases := []struct {
		spec Spec
		want string
	}{
		{Spec{Kind: Crash, Rate: 0.001}, "crash:0.001"},
		{Spec{Kind: Loss, Rate: 0.05}, "loss:0.05"},
		{Spec{Kind: Sleep, Rate: 0.01}, "sleep:0.01"},
		{Spec{Kind: Sleep, Rate: 0.01, Window: 8}, "sleep:0.01:w=8"},
	}
	for _, c := range cases {
		if !c.spec.Active() {
			t.Errorf("%+v reported inactive", c.spec)
		}
		if got := c.spec.Label(); got != c.want {
			t.Errorf("Label(%+v) = %q, want %q", c.spec, got, c.want)
		}
	}
}

// TestPlanPositional pins the determinism contract: Fires is a pure
// function of (seed, device, slot) — stateless, order-independent, and
// seed-sensitive.
func TestPlanPositional(t *testing.T) {
	p := Spec{Kind: Loss, Rate: 0.3}.Plan(42)
	// Same decision twice, interleaved with others, in reverse order.
	var forward, backward []bool
	for v := int32(0); v < 8; v++ {
		for s := uint64(0); s < 64; s++ {
			forward = append(forward, p.Fires(v, s))
		}
	}
	for v := int32(7); v >= 0; v-- {
		for s := uint64(63); s < 64; s-- {
			backward = append(backward, p.Fires(v, s))
		}
	}
	for i := range forward {
		v, s := i/64, i%64
		j := (7-v)*64 + (63 - s)
		if forward[i] != backward[j] {
			t.Fatalf("Fires(%d, %d) depends on evaluation order", v, s)
		}
	}
	// Different seeds give different streams.
	q := Spec{Kind: Loss, Rate: 0.3}.Plan(43)
	same := 0
	for i, v := 0, int32(0); v < 8; v++ {
		for s := uint64(0); s < 64; s, i = s+1, i+1 {
			if q.Fires(v, s) == forward[i] {
				same++
			}
		}
	}
	if same == len(forward) {
		t.Error("fault streams identical across different seeds")
	}
}

// TestPlanRate checks the empirical firing frequency tracks the rate and
// that the boundary rates behave exactly.
func TestPlanRate(t *testing.T) {
	if (Spec{}).Plan(1).Active() {
		t.Error("inactive spec produced an active plan")
	}
	zero := Spec{Kind: Crash, Rate: 0}.Plan(1)
	one := Spec{Kind: Crash, Rate: 1}.Plan(1)
	fired := 0
	const n = 20000
	p := Spec{Kind: Crash, Rate: 0.1}.Plan(7)
	for i := 0; i < n; i++ {
		v, s := int32(i%64), uint64(i/64)
		if zero.Fires(v, s) {
			t.Fatal("rate-0 plan fired")
		}
		if !one.Fires(v, s) {
			t.Fatal("rate-1 plan did not fire")
		}
		if p.Fires(v, s) {
			fired++
		}
	}
	freq := float64(fired) / n
	if freq < 0.08 || freq > 0.12 {
		t.Errorf("empirical rate %v far from 0.1", freq)
	}
}

func TestPlanWindow(t *testing.T) {
	if w := (Spec{Kind: Sleep, Rate: 0.1}.Plan(1)).Window(); w != 1 {
		t.Errorf("default window = %d, want 1", w)
	}
	if w := (Spec{Kind: Sleep, Rate: 0.1, Window: 8}.Plan(1)).Window(); w != 8 {
		t.Errorf("window = %d, want 8", w)
	}
	if k := (Spec{Kind: Sleep, Rate: 0.1}.Plan(1)).Kind(); k != Sleep {
		t.Errorf("kind = %q", k)
	}
	if k := (Spec{}).Plan(1).Kind(); k != None {
		t.Errorf("inactive kind = %q", k)
	}
}
