package labeling

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestAllZeroIsGood(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Path(5), graph.Clique(4), graph.Star(6)} {
		l := AllZero(g.N())
		if err := l.Validate(g); err != nil {
			t.Errorf("%s: %v", g.Name(), err)
		}
		if len(l.Roots()) != g.N() {
			t.Errorf("%s: all-zero labeling should have n roots", g.Name())
		}
		if l.NumLayers() != 1 {
			t.Errorf("%s: NumLayers = %d", g.Name(), l.NumLayers())
		}
	}
}

func TestValidateRejectsBadLabelings(t *testing.T) {
	g := graph.Path(4)
	cases := []struct {
		name string
		l    Labeling
	}{
		{"wrong length", Labeling{0, 1}},
		{"bottom", Labeling{0, Bottom, 0, 0}},
		{"negative", Labeling{0, -2, 0, 0}},
		{"too large", Labeling{0, 4, 0, 0}},
		{"gap", Labeling{0, 2, 0, 0}},        // vertex 1 at layer 2, no layer-1 neighbor
		{"orphan", Labeling{1, 1, 1, 1}},     // no layer-0 at all
		{"far orphan", Labeling{0, 1, 3, 0}}, // vertex 2 at 3, neighbors at 1 and 0
	}
	for _, c := range cases {
		if err := c.l.Validate(g); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestValidateAcceptsBFSLayers(t *testing.T) {
	// BFS distance from any source is always a good labeling.
	gs := []*graph.Graph{graph.Path(9), graph.Grid(4, 5), graph.GNP(30, 0.2, 1), graph.RandomTree(25, 2)}
	for _, g := range gs {
		dist := g.BFS(0)
		l := make(Labeling, g.N())
		copy(l, dist)
		if err := l.Validate(g); err != nil {
			t.Errorf("%s: BFS labeling rejected: %v", g.Name(), err)
		}
		if got := len(l.Roots()); got != 1 {
			t.Errorf("%s: BFS labeling has %d roots", g.Name(), got)
		}
	}
}

func TestNumLayersAndRoots(t *testing.T) {
	g := graph.Path(5)
	l := Labeling{0, 1, 2, 1, 0}
	if err := l.Validate(g); err != nil {
		t.Fatal(err)
	}
	if l.NumLayers() != 3 {
		t.Errorf("NumLayers = %d", l.NumLayers())
	}
	roots := l.Roots()
	if len(roots) != 2 || roots[0] != 0 || roots[1] != 4 {
		t.Errorf("Roots = %v", roots)
	}
}

func TestTerritories(t *testing.T) {
	// Path 0-1-2-3-4 with labels 0,1,2,1,0: vertex 2 is in both
	// territories (via 1 and via 3).
	g := graph.Path(5)
	l := Labeling{0, 1, 2, 1, 0}
	terr := l.Territories(g)
	if !terr[0][0] || len(terr[0]) != 1 {
		t.Errorf("territory of 0 = %v", terr[0])
	}
	if !terr[1][0] || len(terr[1]) != 1 {
		t.Errorf("territory of 1 = %v", terr[1])
	}
	if !terr[2][0] || !terr[2][4] {
		t.Errorf("territory of 2 = %v (want both roots)", terr[2])
	}
	if !terr[3][4] || len(terr[3]) != 1 {
		t.Errorf("territory of 3 = %v", terr[3])
	}
}

func TestClusterGraphPathTwoClusters(t *testing.T) {
	g := graph.Path(6)
	l := Labeling{0, 1, 2, 2, 1, 0}
	if err := l.Validate(g); err != nil {
		t.Fatal(err)
	}
	cg, roots := l.ClusterGraph(g)
	if len(roots) != 2 || roots[0] != 0 || roots[1] != 5 {
		t.Fatalf("roots = %v", roots)
	}
	if cg.N() != 2 || cg.M() != 1 {
		t.Fatalf("cluster graph: N=%d M=%d, want adjacent pair", cg.N(), cg.M())
	}
	d, err := l.ClusterDiameter(g)
	if err != nil || d != 1 {
		t.Fatalf("cluster diameter = %d, %v", d, err)
	}
}

func TestClusterGraphAllZero(t *testing.T) {
	// All-zero labeling: G_L == G.
	g := graph.Cycle(5)
	l := AllZero(5)
	cg, roots := l.ClusterGraph(g)
	if len(roots) != 5 || cg.M() != g.M() {
		t.Fatalf("G_L of all-zero should equal G: M=%d want %d", cg.M(), g.M())
	}
	d, err := l.ClusterDiameter(g)
	if err != nil {
		t.Fatal(err)
	}
	gd, _ := g.Diameter()
	if d != gd {
		t.Errorf("cluster diameter %d != graph diameter %d", d, gd)
	}
}

func TestClusterGraphSingleRoot(t *testing.T) {
	g := graph.Grid(3, 3)
	dist := g.BFS(0)
	l := make(Labeling, g.N())
	copy(l, dist)
	cg, roots := l.ClusterGraph(g)
	if len(roots) != 1 || cg.N() != 1 || cg.M() != 0 {
		t.Fatalf("single-root cluster graph wrong: %d roots, M=%d", len(roots), cg.M())
	}
	d, err := l.ClusterDiameter(g)
	if err != nil || d != 0 {
		t.Fatalf("single-cluster diameter = %d, %v", d, err)
	}
}

func TestClusterGraphConnectedProperty(t *testing.T) {
	// For a good labeling on a connected graph, G_L is connected.
	f := func(seed uint16) bool {
		g := graph.GNP(24, 0.15, uint64(seed))
		// Build a good labeling: BFS from a few roots.
		r1, r2 := 0, g.N()/2
		d1, d2 := g.BFS(r1), g.BFS(r2)
		l := make(Labeling, g.N())
		for v := range l {
			l[v] = d1[v]
			if d2[v] < l[v] {
				l[v] = d2[v]
			}
		}
		if err := l.Validate(g); err != nil {
			return false
		}
		cg, _ := l.ClusterGraph(g)
		return cg.IsConnected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
