// Package labeling implements good labelings, the clustering abstraction
// of Section 5 of the paper.
//
// A labeling L : V -> {0..n-1} is good when every vertex v with L(v) > 0
// has a neighbor u with L(u) = L(v)-1. A good labeling induces a
// clustering: each layer-0 vertex roots a cluster, and every other vertex
// can choose a parent one layer below. Two roots are L-adjacent when a
// path u, u_1..u_a, v_b..v_1, v exists with L(u_i)=i and L(v_j)=j; the
// graph G_L on roots with L-adjacency edges is what the algorithms
// iteratively shrink.
//
// This package is verification-side machinery (used by tests and
// experiment harnesses); the distributed computation of labelings lives in
// the protocol packages.
package labeling

import (
	"fmt"

	"repro/internal/graph"
)

// Bottom is the undefined label (the paper's ⊥) used during refinement.
const Bottom = -1

// Labeling assigns a label to every vertex; values are layers >= 0, or
// Bottom during intermediate states.
type Labeling []int

// AllZero returns the trivial good labeling that starts every algorithm
// (every vertex is a singleton cluster root).
func AllZero(n int) Labeling {
	return make(Labeling, n)
}

// Validate checks the good-labeling property against g: every label is a
// non-negative layer below n, and every positive-layer vertex has a
// neighbor exactly one layer down.
func (l Labeling) Validate(g *graph.Graph) error {
	if len(l) != g.N() {
		return fmt.Errorf("labeling: %d labels for %d vertices", len(l), g.N())
	}
	for v, lab := range l {
		if lab == Bottom {
			return fmt.Errorf("labeling: vertex %d is unlabeled", v)
		}
		if lab < 0 || lab >= g.N() {
			return fmt.Errorf("labeling: vertex %d has label %d outside [0,%d)", v, lab, g.N())
		}
		if lab == 0 {
			continue
		}
		ok := false
		for _, u := range g.Neighbors(v) {
			if l[u] == lab-1 {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("labeling: vertex %d at layer %d has no layer-%d neighbor", v, lab, lab-1)
		}
	}
	return nil
}

// Roots returns the layer-0 vertices in ascending order.
func (l Labeling) Roots() []int {
	var roots []int
	for v, lab := range l {
		if lab == 0 {
			roots = append(roots, v)
		}
	}
	return roots
}

// NumLayers returns one plus the maximum label (0 for an empty labeling).
func (l Labeling) NumLayers() int {
	m := -1
	for _, lab := range l {
		if lab > m {
			m = lab
		}
	}
	return m + 1
}

// Territories returns, for each vertex, the set of roots r such that the
// vertex is reachable from r along a path whose labels are 0,1,2,...
// (i.e. the vertex can appear in the "arm" of r in the L-adjacency
// definition). Roots belong to their own territory.
func (l Labeling) Territories(g *graph.Graph) []map[int]bool {
	n := g.N()
	terr := make([]map[int]bool, n)
	for v := range terr {
		terr[v] = make(map[int]bool)
	}
	// Process vertices layer by layer.
	byLayer := make(map[int][]int)
	maxLayer := 0
	for v, lab := range l {
		byLayer[lab] = append(byLayer[lab], v)
		if lab > maxLayer {
			maxLayer = lab
		}
	}
	for _, r := range byLayer[0] {
		terr[r][r] = true
	}
	for layer := 1; layer <= maxLayer; layer++ {
		for _, v := range byLayer[layer] {
			for _, u := range g.Neighbors(v) {
				if l[u] == layer-1 {
					for r := range terr[u] {
						terr[v][r] = true
					}
				}
			}
		}
	}
	return terr
}

// ClusterGraph builds G_L: vertices are the roots, and two roots are
// adjacent when an edge of g connects their territories (including the
// roots themselves). The returned graph is on indices 0..len(roots)-1,
// parallel to the returned roots slice.
func (l Labeling) ClusterGraph(g *graph.Graph) (*graph.Graph, []int) {
	roots := l.Roots()
	idx := make(map[int]int, len(roots))
	for i, r := range roots {
		idx[r] = i
	}
	terr := l.Territories(g)
	cg := graph.New(len(roots))
	for v := 0; v < g.N(); v++ {
		for _, w := range g.Neighbors(v) {
			if w < v {
				continue
			}
			for rv := range terr[v] {
				for rw := range terr[w] {
					if rv != rw && !cg.HasEdge(idx[rv], idx[rw]) {
						// Edge {v,w} joins the arms of rv and rw.
						if err := cg.AddEdge(idx[rv], idx[rw]); err != nil {
							panic(err)
						}
					}
				}
			}
		}
	}
	cg.SetName(fmt.Sprintf("clusters-of-%s", g.Name()))
	return cg, roots
}

// ClusterDiameter returns the diameter of G_L, or an error when G_L is
// disconnected (which cannot happen for a good labeling on a connected
// graph).
func (l Labeling) ClusterDiameter(g *graph.Graph) (int, error) {
	cg, _ := l.ClusterGraph(g)
	return cg.Diameter()
}
