package radio

// This file exports the continuation-combinator vocabulary for porting
// blocking protocols to the step ABI. detcast introduced the style with
// package-private helpers; cluster and cdmerge build on these exported
// forms, so new ports stop re-deriving the same five functions.
//
// The discipline the combinators encode: assemble the slot schedule (a
// pure function of the protocol parameters) eagerly as a continuation
// tree, but defer every read of mutable device state into an Eval thunk
// that runs at its window's start — reproducing the evaluation order of
// the blocking implementation exactly, which is what makes proc-vs-
// blocking trace pinning possible.

// Then performs a, then resumes with k.
func Then(a Action, k Cont) Cont {
	return func(Channel, Feedback) (Action, Cont) { return a, k }
}

// Recv listens at slot and hands the feedback to f, which returns the
// continuation to resume with (nil halts).
func Recv(slot uint64, f func(Feedback) Cont) Cont {
	return func(Channel, Feedback) (Action, Cont) {
		return Listen(slot), bindFeedback(f)
	}
}

// bindFeedback adapts a feedback consumer into a continuation.
func bindFeedback(f func(Feedback) Cont) Cont {
	return func(ch Channel, fb Feedback) (Action, Cont) {
		k := f(fb)
		if k == nil {
			return Halt(), nil
		}
		return k(ch, fb)
	}
}

// Eval defers building the continuation until the moment it runs — the
// mechanism that keeps every read of mutable device state at the
// blocking implementation's evaluation point even though the
// surrounding continuation tree is assembled eagerly. A nil result
// halts.
func Eval(f func() Cont) Cont {
	return func(ch Channel, fb Feedback) (Action, Cont) {
		k := f()
		if k == nil {
			return Halt(), nil
		}
		return k(ch, fb)
	}
}

// EvalCh is Eval with access to the channel handle, for deferred state
// that needs the device's identity or random stream (the blocking form's
// Env reads). A nil result halts.
func EvalCh(f func(ch Channel) Cont) Cont {
	return func(ch Channel, fb Feedback) (Action, Cont) {
		k := f(ch)
		if k == nil {
			return Halt(), nil
		}
		return k(ch, fb)
	}
}

// Do runs a side effect, then resumes with k.
func Do(f func(), k Cont) Cont {
	return Eval(func() Cont {
		f()
		return k
	})
}

// ProcCont drives a sub-proc to completion inside a continuation chain,
// then resumes with k — the nesting adapter that lets a ported protocol
// reuse srcomm's SR-communication step machines exactly where its
// blocking form called the Drive-based wrappers. The sub-proc's halt is
// consumed (it ends the sub-window, not the device); k must not expect
// feedback from it (SR machines end on a sleep, so none exists).
func ProcCont(p Proc, k Cont) Cont {
	var c Cont
	c = func(ch Channel, fb Feedback) (Action, Cont) {
		act := p.Step(ch, fb)
		if act.Kind == ActHalt {
			if k == nil {
				return Halt(), nil
			}
			return k(ch, fb)
		}
		return act, c
	}
	return c
}
