package radio

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/graph"
)

// mixProc is the batch-identity workhorse: random transmit/listen over
// irregularly strided slots, so lanes diverge in slot time and any
// cross-lane state bleed (rng, feedback, payload lanes) shows up as a
// result mismatch against a solo run with the same seed.
type mixProc struct {
	s, limit uint64
	heard    *int
}

func (p *mixProc) Step(ch Channel, fb Feedback) Action {
	if fb.Status == Received {
		*p.heard++
	}
	p.s += 1 + ch.Rand().Uint64()%3
	if p.s > p.limit {
		return Halt()
	}
	if ch.Rand().Uint64()&1 == 0 {
		return Transmit(p.s, BoxInt(ch, int(p.s)))
	}
	return Listen(p.s)
}

// mixPop builds one lane's population, recording per-device delivery
// counts into heard.
func mixPop(n int, limit uint64, heard []int) []Device {
	devs := make([]Device, n)
	for v := 0; v < n; v++ {
		devs[v].Proc = &mixProc{limit: limit, heard: &heard[v]}
	}
	return devs
}

// sameResult compares every observable counter of two runs.
func sameResult(a, b *Result) error {
	if a.Slots != b.Slots || a.Events != b.Events {
		return fmt.Errorf("slots/events %d/%d vs %d/%d", a.Slots, a.Events, b.Slots, b.Events)
	}
	for v := range a.Energy {
		if a.Energy[v] != b.Energy[v] || a.Transmits[v] != b.Transmits[v] || a.Listens[v] != b.Listens[v] {
			return fmt.Errorf("device %d counters differ", v)
		}
	}
	return nil
}

// TestBatchBitIdenticalToSolo pins the batching invariant the sweep
// layer relies on: every lane of a W-wide batch produces exactly the
// result a solo run with the same seed produces — counters and device
// out-parameters — for any W, on dense and sparse graphs and under
// every contention model.
func TestBatchBitIdenticalToSolo(t *testing.T) {
	graphs := []*graph.Graph{graph.Clique(12), graph.Path(20), graph.GNP(24, 0.2, 7)}
	models := []Model{NoCD, CD, CDStar, Local}
	for gi, g := range graphs {
		for _, model := range models {
			for _, w := range []int{1, 4, 16} {
				n := g.N()
				cfg := Config{Graph: g, Model: model}
				seeds := make([]uint64, w)
				pops := make([][]Device, w)
				heard := make([][]int, w)
				for i := 0; i < w; i++ {
					seeds[i] = uint64(1000*gi + 10*i + 1)
					heard[i] = make([]int, n)
					pops[i] = mixPop(n, 40, heard[i])
				}
				ress, errs, err := RunBatchDevices(cfg, seeds, pops)
				if err != nil {
					t.Fatalf("%v W=%d: %v", model, w, err)
				}
				for i := 0; i < w; i++ {
					if errs[i] != nil {
						t.Fatalf("%v W=%d lane %d: %v", model, w, i, errs[i])
					}
					soloHeard := make([]int, n)
					soloCfg := cfg
					soloCfg.Seed = seeds[i]
					solo, soloErr := RunDevices(soloCfg, mixPop(n, 40, soloHeard))
					if soloErr != nil {
						t.Fatalf("solo seed %d: %v", seeds[i], soloErr)
					}
					if err := sameResult(ress[i], solo); err != nil {
						t.Errorf("%v W=%d lane %d: batch != solo: %v", model, w, i, err)
					}
					for v := 0; v < n; v++ {
						if heard[i][v] != soloHeard[v] {
							t.Errorf("%v W=%d lane %d device %d: heard %d batch vs %d solo",
								model, w, i, v, heard[i][v], soloHeard[v])
						}
					}
				}
			}
		}
	}
}

// TestBatchLaneErrorIsolation aborts one lane on budget and one on a
// device clock violation; the sibling lanes must finish with results
// identical to solo runs, and the failing lanes must report exactly the
// solo errors.
func TestBatchLaneErrorIsolation(t *testing.T) {
	g := graph.Clique(8)
	n := g.N()
	cfg := Config{Graph: g, Model: CD, MaxSlots: 100}

	budgetPop := func() []Device {
		devs := make([]Device, n)
		for v := range devs {
			devs[v].Proc = txOnce(500, "late") // beyond MaxSlots
		}
		return devs
	}
	violatePop := func() []Device {
		devs := make([]Device, n)
		for v := range devs {
			// Two transmits in the same slot: a clock violation, caught
			// as a device error.
			devs[v].Proc = ContProc(func(Channel) Cont {
				return Then(Transmit(5, "a"), Then(Transmit(5, "b"), nil))
			})
		}
		return devs
	}

	heal1, heal3 := make([]int, n), make([]int, n)
	seeds := []uint64{11, 12, 13, 14}
	pops := [][]Device{mixPop(n, 30, heal1), budgetPop(), mixPop(n, 30, heal3), violatePop()}
	ress, errs, err := RunBatchDevices(cfg, seeds, pops)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(errs[1], ErrBudget) {
		t.Errorf("budget lane error = %v, want ErrBudget", errs[1])
	}
	if errs[3] == nil {
		t.Error("clock-violation lane reported no error")
	}
	for _, i := range []int{0, 2} {
		if errs[i] != nil {
			t.Fatalf("healthy lane %d: %v", i, errs[i])
		}
		soloHeard := make([]int, n)
		soloCfg := cfg
		soloCfg.Seed = seeds[i]
		solo, soloErr := RunDevices(soloCfg, mixPop(n, 30, soloHeard))
		if soloErr != nil {
			t.Fatal(soloErr)
		}
		if err := sameResult(ress[i], solo); err != nil {
			t.Errorf("healthy lane %d: batch != solo: %v", i, err)
		}
	}
	// The failing lanes' errors must match the solo path verbatim so the
	// sweep layer's raw CSV stays byte-identical for any W.
	for _, i := range []int{1, 3} {
		soloCfg := cfg
		soloCfg.Seed = seeds[i]
		var pop []Device
		if i == 1 {
			pop = budgetPop()
		} else {
			pop = violatePop()
		}
		_, soloErr := RunDevices(soloCfg, pop)
		if soloErr == nil {
			t.Fatalf("solo lane %d did not fail", i)
		}
		if errs[i].Error() != soloErr.Error() {
			t.Errorf("lane %d error %q != solo %q", i, errs[i], soloErr)
		}
	}
}

// TestBatchSimulatorReuse drives one engine through batches of varying
// width and checks each stays solo-identical — the recycled-lane shape
// a sweep cell produces.
func TestBatchSimulatorReuse(t *testing.T) {
	g := graph.Path(16)
	n := g.N()
	b, err := NewBatchSimulator(g)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Graph: g, Model: NoCD}
	seed := uint64(100)
	for _, w := range []int{4, 1, 8, 3} {
		seeds := make([]uint64, w)
		pops := make([][]Device, w)
		heard := make([][]int, w)
		for i := 0; i < w; i++ {
			seed++
			seeds[i] = seed
			heard[i] = make([]int, n)
			pops[i] = mixPop(n, 25, heard[i])
		}
		ress, errs, err := b.RunBatch(cfg, seeds, pops)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < w; i++ {
			if errs[i] != nil {
				t.Fatalf("W=%d lane %d: %v", w, i, errs[i])
			}
			soloCfg := cfg
			soloCfg.Seed = seeds[i]
			solo, soloErr := RunDevices(soloCfg, mixPop(n, 25, make([]int, n)))
			if soloErr != nil {
				t.Fatal(soloErr)
			}
			if err := sameResult(ress[i], solo); err != nil {
				t.Errorf("W=%d lane %d: %v", w, i, err)
			}
		}
	}
}

// TestBatchMisuse covers the whole-batch error paths and the W=0 edge.
func TestBatchMisuse(t *testing.T) {
	g := graph.Clique(4)
	cfg := Config{Graph: g, Model: CD}
	if _, _, err := RunBatchDevices(cfg, []uint64{1, 2}, [][]Device{mixPop(4, 5, make([]int, 4))}); err == nil {
		t.Error("seed/population length mismatch accepted")
	}
	traced := cfg
	traced.Trace = func(Event) {}
	if _, _, err := RunBatchDevices(traced, []uint64{1}, [][]Device{mixPop(4, 5, make([]int, 4))}); err == nil {
		t.Error("Trace accepted by the batch path")
	}
	ress, errs, err := RunBatchDevices(cfg, nil, nil)
	if err != nil || len(ress) != 0 || len(errs) != 0 {
		t.Errorf("W=0 batch: %v %v %v", ress, errs, err)
	}
	if _, err := NewBatchSimulator(nil); err == nil {
		t.Error("nil graph accepted")
	}
}

// TestBatchCacheReuse checks getBatch serves one engine per graph with
// the same MRU policy as the solo cache, on a separate list.
func TestBatchCacheReuse(t *testing.T) {
	var c SimCache
	g1, g2 := graph.Path(4), graph.Clique(4)
	b1, err := c.getBatch(g1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := c.getBatch(g2)
	if err != nil {
		t.Fatal(err)
	}
	again, err := c.getBatch(g1)
	if err != nil {
		t.Fatal(err)
	}
	if again != b1 || b1 == b2 {
		t.Error("batch cache identity wrong")
	}
	if c.Len() != 0 {
		t.Error("batch engines leaked into the solo MRU list")
	}
	// The cached engine is actually used by the package entry.
	cfg := Config{Graph: g1, Model: Local, Sims: &c}
	if _, _, err := RunBatchDevices(cfg, []uint64{1}, [][]Device{mixPop(4, 10, make([]int, 4))}); err != nil {
		t.Fatal(err)
	}
}
