// Package radio implements the synchronous multi-hop radio network model
// of Chang et al. (PODC 2018), "The Energy Complexity of Broadcast".
//
// The network is a connected undirected graph with one device per vertex.
// Time is partitioned into discrete slots, agreed by all devices. In each
// slot a device either transmits a message, listens, or idles; transmitting
// and listening cost one unit of energy each, idling is free. What a
// listener hears depends on the collision model:
//
//   - NoCD:   exactly one transmitting neighbor delivers its message; zero
//     or two-or-more neighbors are indistinguishable silence.
//   - CD:     zero neighbors is silence; two or more is noise.
//   - CDStar: zero is silence; one or more delivers some one message
//     (an arbitrary — here lowest-index — transmitter's), per Section 6.3.
//   - Local:  a listener hears every message from every transmitting
//     neighbor; there are no collisions.
//
// # Engine architecture: two device ABIs, one scheduler
//
// The engine is a conservative discrete-event simulator. A device is
// bound to its vertex through a Device, which selects one of two ABIs:
//
//   - Proc (preferred): a resumable step function. The scheduler calls
//     Step(ch, feedback) -> Action inline on its own goroutine; the
//     proc carries its state between calls. There is no per-device
//     goroutine and no park/wake per action — an action costs one
//     function call — which is what makes Monte-Carlo sweeps run at
//     memory speed. The paper's algorithms are slot-driven state
//     machines by construction, so the hot protocol packages (srcomm,
//     baseline, pathcast, detcast) ship native step machines.
//   - Program (legacy): an ordinary blocking function over the Env API,
//     run on its own goroutine. The device/scheduler handoff is
//     channel-free: posting an action is one mailbox write plus one
//     atomic decrement (the last poster wakes the scheduler), then the
//     device parks on a private binary semaphore until the batched
//     cohort release — one park/wake pair per action.
//
// One run may mix both freely: the scheduler steps the inline procs of
// an awaited cohort first (overlapping any goroutine devices still
// publishing), parks at most once per round for the stragglers, then
// advances to the minimum requested slot via a min-heap over (slot,
// device) and resolves the channel for that cohort in ascending device
// order. The slot-level event stream is identical whichever ABI
// produced the actions — the golden trace test pins it byte for byte —
// so ported and unported protocols coexist without affecting
// measurements. Adapters close the loop in both directions: Drive runs
// a Proc over any blocking Channel (including virtual channels layered
// on the physical network), and ProcProgram wraps a Proc as a Program.
//
// Transmit payloads are interned in the transmitter's mailbox cell for
// exactly one slot: listeners resolve them at delivery and the scheduler
// clears every cell once the cohort's slot is fully resolved, so the
// engine never retains a payload past its transmission slot. Small
// non-constant integer payloads can additionally be boxed through
// BoxInt, which serves immutable boxes from a simulator-wide interning
// table instead of allocating per transmission. Collision resolution
// iterates the topology's compressed-sparse-row adjacency (graph.CSR),
// whose rows are sorted by construction, eliminating the per-listener
// neighbor sort.
//
// A Simulator can be reused across runs on the same topology
// (NewSimulator + Run/RunDevices): all per-device machinery is
// preallocated once and fully reset per run, which is what makes
// million-trial Monte-Carlo sweeps allocation-free in the hot path. The
// package-level Run and RunDevices remain the one-shot entry points,
// and serve from a caller-supplied SimCache when Config.Sims is set.
package radio

import (
	"errors"
	"fmt"
	"math/rand/v2"

	"repro/internal/graph"
)

// Model selects the collision behaviour of the channel.
type Model int

// The four channel models of the paper (Section 1 and Section 6.3).
const (
	NoCD Model = iota
	CD
	CDStar
	Local
)

// String returns the paper's name for the model.
func (m Model) String() string {
	switch m {
	case NoCD:
		return "No-CD"
	case CD:
		return "CD"
	case CDStar:
		return "CD*"
	case Local:
		return "LOCAL"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Status is the channel feedback visible to a listener.
type Status uint8

// Channel feedback values. Silence is the paper's lambda_S, Noise is
// lambda_N (CD model only), Received means exactly one message was
// delivered.
const (
	Silence Status = iota
	Received
	Noise
)

// String returns a short name for the status.
func (s Status) String() string {
	switch s {
	case Silence:
		return "silence"
	case Received:
		return "received"
	case Noise:
		return "noise"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// Feedback is what a listening device observes in a slot.
type Feedback struct {
	// Status describes the channel. In the Local model, Status is Received
	// when at least one neighbor transmitted and Silence otherwise.
	Status Status
	// Payload is the delivered message when Status == Received. In the
	// Local model it is the payload of the lowest-index transmitting
	// neighbor (all payloads are in Payloads).
	Payload any
	// Payloads holds every delivered message in the Local model, ordered
	// by transmitter index. Nil in single-message models. The slice is a
	// per-device buffer owned by the engine, valid until the device's
	// next channel action — copy it to retain it across actions.
	Payloads []any
}

// EventKind classifies trace events.
type EventKind uint8

// Trace event kinds.
const (
	EventTransmit EventKind = iota
	EventReceive
	EventSilence
	EventNoise
)

// Event is a single trace record, emitted when Config.Trace is set.
type Event struct {
	Slot    uint64
	Dev     int
	Kind    EventKind
	Payload any
	From    int // transmitter index for EventReceive; -1 otherwise
}

// Program is the code run by one device. It must interact with the world
// only through the provided Env. Returning ends the device's
// participation; the remaining devices keep running.
type Program func(e *Env)

// Config describes one simulation run.
type Config struct {
	// Graph is the network topology. Required, and must be non-empty.
	Graph *graph.Graph
	// Model selects the collision behaviour.
	Model Model
	// Seed derives every device's private random stream.
	Seed uint64
	// MaxSlots aborts the run when virtual time passes this slot
	// (0 means a generous default of 1<<40).
	MaxSlots uint64
	// MaxEvents aborts the run after this many device actions
	// (0 means a default of 1<<28).
	MaxEvents uint64
	// KnowDiameter, if true, exposes the exact diameter to devices.
	KnowDiameter bool
	// Diameter is the value exposed when KnowDiameter is set. If zero it
	// is computed from the graph.
	Diameter int
	// IDSpace is the deterministic-model ID space bound N. When positive,
	// each device is assigned a distinct ID in {1..N} (IDs[i] if given,
	// else i+1).
	IDSpace int
	// IDs optionally assigns explicit distinct IDs in {1..IDSpace}.
	IDs []int
	// Trace, if non-nil, receives every transmit/listen event. It is
	// called from the scheduler goroutine only.
	Trace func(Event)
	// Sims, if non-nil, is a per-goroutine Simulator cache: Run reuses
	// the cached engine for Graph instead of building one per call.
	// Measurements are unaffected — a recycled Simulator is fully reset —
	// so sweeps stay bit-identical for any worker count. The cache must
	// not be shared between goroutines.
	Sims *SimCache
}

// Result summarizes a completed (or aborted) run.
type Result struct {
	// Slots is the largest slot in which any device acted.
	Slots uint64
	// Energy[v] counts the slots in which v is awake (transmitting,
	// listening, or both). A full-duplex slot costs 1: the paper's energy
	// measure charges a device per non-idle slot, not per action.
	Energy []int
	// Transmits[v] and Listens[v] count v's transmit and listen actions.
	// A full-duplex slot contributes 1 to each, so Transmits[v]+Listens[v]
	// may exceed Energy[v].
	Transmits []int
	Listens   []int
	// Events is the total number of device actions processed.
	Events uint64
}

// MaxEnergy returns max_v Energy[v] — the paper's energy complexity.
func (r *Result) MaxEnergy() int {
	m := 0
	for _, e := range r.Energy {
		if e > m {
			m = e
		}
	}
	return m
}

// TotalEnergy returns the sum of all devices' energy.
func (r *Result) TotalEnergy() int {
	t := 0
	for _, e := range r.Energy {
		t += e
	}
	return t
}

// ErrBudget is returned (wrapped) when MaxSlots or MaxEvents is exceeded.
var ErrBudget = errors.New("radio: simulation budget exceeded")

// sentinels for controlled goroutine unwinding.
var (
	errAborted = errors.New("radio: aborted")
	errExit    = errors.New("radio: device exit")
)

type actionKind uint8

const (
	actNone actionKind = iota
	actTransmit
	actListen
	actTransmitListen
	actHalt
)

// Env is a device's handle to the network. All methods must be called from
// the device's own Program goroutine.
type Env struct {
	sim   *Simulator
	mail  *mailbox
	index int
	devID int
	rand  *rand.Rand
	now   uint64
	pbuf  []any // reusable Local-model delivery buffer
}

// Index returns the device's vertex index in {0..n-1}. It is the
// simulation-level identity; randomized protocols may use it where the
// paper lets devices self-assign unique IDs, deterministic protocols
// should use AssignedID.
func (e *Env) Index() int { return e.index }

// N returns the number of vertices n (global knowledge per the model).
func (e *Env) N() int { return e.sim.n }

// MaxDegree returns Delta (global knowledge per the model).
func (e *Env) MaxDegree() int { return e.sim.maxDeg }

// Diameter returns the diameter D and whether it is known to devices.
func (e *Env) Diameter() (int, bool) {
	if e.sim.diam < 0 {
		return 0, false
	}
	return e.sim.diam, true
}

// IDSpace returns the deterministic ID space bound N (0 if unassigned).
func (e *Env) IDSpace() int { return e.sim.idSpace }

// AssignedID returns the device's distinct ID in {1..IDSpace}, or 0 when
// the run has no ID assignment.
func (e *Env) AssignedID() int { return e.devID }

// Model returns the channel model of the run.
func (e *Env) Model() Model { return e.sim.model }

// Rand returns the device's private deterministic random stream.
func (e *Env) Rand() *rand.Rand { return e.rand }

// Now returns the last slot the device acted in or slept through.
func (e *Env) Now() uint64 { return e.now }

// SleepUntil advances the device's local clock without energy cost. It is
// bookkeeping only; the next action's slot is what synchronizes devices.
func (e *Env) SleepUntil(slot uint64) {
	if slot > e.now {
		e.now = slot
	}
}

// Exit terminates the device program immediately (unwinds the goroutine).
func (e *Env) Exit() {
	panic(errExit)
}

// submit publishes one action to the scheduler and parks until the
// cohort's batched release delivers the feedback.
func (e *Env) submit(kind actionKind, slot uint64, payload any) Feedback {
	if slot <= e.now {
		panic(fmt.Sprintf("radio: device %d scheduled slot %d, but its clock is already at %d", e.index, slot, e.now))
	}
	s := e.sim
	if s.procs[e.index] != nil {
		// An inline proc's Step runs on the scheduler goroutine; parking
		// it would deadlock the run. Step procs act by returning Actions.
		panic(fmt.Sprintf("radio: device %d is an inline proc; blocking Env calls are not allowed inside Step", e.index))
	}
	m := e.mail
	m.slot, m.kind, m.payload = slot, kind, payload
	s.post()
	m.sem.wait()
	if s.aborted.Load() {
		panic(errAborted)
	}
	fb := m.fb
	// Drop the mailbox's feedback references immediately: delivered
	// payloads belong to the device now, not to the engine.
	m.fb = Feedback{}
	e.now = slot
	return fb
}

// Transmit sends payload in the given future slot (energy 1). The device
// learns nothing from the channel.
func (e *Env) Transmit(slot uint64, payload any) {
	e.submit(actTransmit, slot, payload)
}

// Listen tunes in during the given future slot (energy 1) and returns the
// channel feedback.
func (e *Env) Listen(slot uint64) Feedback {
	return e.submit(actListen, slot, nil)
}

// TransmitListen transmits and listens in the same slot (full duplex,
// energy 1 — the device is awake for one slot, which is what the paper's
// energy measure charges). The feedback reflects the other transmitters only. The paper
// uses full duplex in the LOCAL path algorithm (Section 8) and in
// single-hop leader-election (Theorem 2); multi-hop CD/No-CD algorithms
// must not use it (Theorem 3 notes the simulation forbids it).
func (e *Env) TransmitListen(slot uint64, payload any) Feedback {
	return e.submit(actTransmitListen, slot, payload)
}

// TransmitNext transmits in the next slot after the device's clock.
func (e *Env) TransmitNext(payload any) {
	e.Transmit(e.now+1, payload)
}

// ListenNext listens in the next slot after the device's clock.
func (e *Env) ListenNext() Feedback {
	return e.Listen(e.now + 1)
}

// Run executes one blocking program per vertex and returns the measured
// result. It blocks until every device goroutine has exited. The
// returned error wraps ErrBudget on budget exhaustion, or surfaces the
// first device panic. When cfg.Sims is set, the run reuses the cache's
// engine for cfg.Graph; otherwise a fresh Simulator is built and
// discarded. RunDevices is the mixed-population generalization that
// also accepts inline step procs.
func Run(cfg Config, programs []Program) (*Result, error) {
	return RunDevices(cfg, Programs(programs))
}
