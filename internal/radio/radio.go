// Package radio implements the synchronous multi-hop radio network model
// of Chang et al. (PODC 2018), "The Energy Complexity of Broadcast".
//
// The network is a connected undirected graph with one device per vertex.
// Time is partitioned into discrete slots, agreed by all devices. In each
// slot a device either transmits a message, listens, or idles; transmitting
// and listening cost one unit of energy each, idling is free. What a
// listener hears depends on the collision model:
//
//   - NoCD:   exactly one transmitting neighbor delivers its message; zero
//     or two-or-more neighbors are indistinguishable silence.
//   - CD:     zero neighbors is silence; two or more is noise.
//   - CDStar: zero is silence; one or more delivers some one message
//     (an arbitrary — here lowest-index — transmitter's), per Section 6.3.
//   - Local:  a listener hears every message from every transmitting
//     neighbor; there are no collisions.
//
// The engine is a conservative discrete-event simulator with one goroutine
// per device. Devices are ordinary Go functions blocking on the Env API;
// the scheduler only advances once every live device has declared its next
// action, so execution is deterministic for fixed seeds and idle slots cost
// no wall time (virtual time may exceed wall time by many orders of
// magnitude, as the deterministic algorithms require).
package radio

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Model selects the collision behaviour of the channel.
type Model int

// The four channel models of the paper (Section 1 and Section 6.3).
const (
	NoCD Model = iota
	CD
	CDStar
	Local
)

// String returns the paper's name for the model.
func (m Model) String() string {
	switch m {
	case NoCD:
		return "No-CD"
	case CD:
		return "CD"
	case CDStar:
		return "CD*"
	case Local:
		return "LOCAL"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Status is the channel feedback visible to a listener.
type Status uint8

// Channel feedback values. Silence is the paper's lambda_S, Noise is
// lambda_N (CD model only), Received means exactly one message was
// delivered.
const (
	Silence Status = iota
	Received
	Noise
)

// String returns a short name for the status.
func (s Status) String() string {
	switch s {
	case Silence:
		return "silence"
	case Received:
		return "received"
	case Noise:
		return "noise"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// Feedback is what a listening device observes in a slot.
type Feedback struct {
	// Status describes the channel. In the Local model, Status is Received
	// when at least one neighbor transmitted and Silence otherwise.
	Status Status
	// Payload is the delivered message when Status == Received. In the
	// Local model it is the payload of the lowest-index transmitting
	// neighbor (all payloads are in Payloads).
	Payload any
	// Payloads holds every delivered message in the Local model, ordered
	// by transmitter index. Nil in single-message models.
	Payloads []any
}

// EventKind classifies trace events.
type EventKind uint8

// Trace event kinds.
const (
	EventTransmit EventKind = iota
	EventReceive
	EventSilence
	EventNoise
)

// Event is a single trace record, emitted when Config.Trace is set.
type Event struct {
	Slot    uint64
	Dev     int
	Kind    EventKind
	Payload any
	From    int // transmitter index for EventReceive; -1 otherwise
}

// Program is the code run by one device. It must interact with the world
// only through the provided Env. Returning ends the device's
// participation; the remaining devices keep running.
type Program func(e *Env)

// Config describes one simulation run.
type Config struct {
	// Graph is the network topology. Required, and must be non-empty.
	Graph *graph.Graph
	// Model selects the collision behaviour.
	Model Model
	// Seed derives every device's private random stream.
	Seed uint64
	// MaxSlots aborts the run when virtual time passes this slot
	// (0 means a generous default of 1<<40).
	MaxSlots uint64
	// MaxEvents aborts the run after this many device actions
	// (0 means a default of 1<<28).
	MaxEvents uint64
	// KnowDiameter, if true, exposes the exact diameter to devices.
	KnowDiameter bool
	// Diameter is the value exposed when KnowDiameter is set. If zero it
	// is computed from the graph.
	Diameter int
	// IDSpace is the deterministic-model ID space bound N. When positive,
	// each device is assigned a distinct ID in {1..N} (IDs[i] if given,
	// else i+1).
	IDSpace int
	// IDs optionally assigns explicit distinct IDs in {1..IDSpace}.
	IDs []int
	// Trace, if non-nil, receives every transmit/listen event. It is
	// called from the scheduler goroutine only.
	Trace func(Event)
}

// Result summarizes a completed (or aborted) run.
type Result struct {
	// Slots is the largest slot in which any device acted.
	Slots uint64
	// Energy[v] counts the slots in which v is awake (transmitting,
	// listening, or both). A full-duplex slot costs 1: the paper's energy
	// measure charges a device per non-idle slot, not per action.
	Energy []int
	// Transmits[v] and Listens[v] count v's transmit and listen actions.
	// A full-duplex slot contributes 1 to each, so Transmits[v]+Listens[v]
	// may exceed Energy[v].
	Transmits []int
	Listens   []int
	// Events is the total number of device actions processed.
	Events uint64
}

// MaxEnergy returns max_v Energy[v] — the paper's energy complexity.
func (r *Result) MaxEnergy() int {
	m := 0
	for _, e := range r.Energy {
		if e > m {
			m = e
		}
	}
	return m
}

// TotalEnergy returns the sum of all devices' energy.
func (r *Result) TotalEnergy() int {
	t := 0
	for _, e := range r.Energy {
		t += e
	}
	return t
}

// ErrBudget is returned (wrapped) when MaxSlots or MaxEvents is exceeded.
var ErrBudget = errors.New("radio: simulation budget exceeded")

// sentinels for controlled goroutine unwinding.
var (
	errAborted = errors.New("radio: aborted")
	errExit    = errors.New("radio: device exit")
)

type actionKind uint8

const (
	actTransmit actionKind = iota
	actListen
	actTransmitListen
	actHalt
)

type request struct {
	dev     int
	slot    uint64
	kind    actionKind
	payload any
	err     error // for actHalt: a device panic, if any
}

// Env is a device's handle to the network. All methods must be called from
// the device's own Program goroutine.
type Env struct {
	index   int
	n       int
	maxDeg  int
	diam    int // -1 when unknown
	idSpace int
	devID   int
	model   Model
	rand    *rand.Rand
	now     uint64
	reqCh   chan<- request
	respCh  chan Feedback
	abortCh <-chan struct{}
}

// Index returns the device's vertex index in {0..n-1}. It is the
// simulation-level identity; randomized protocols may use it where the
// paper lets devices self-assign unique IDs, deterministic protocols
// should use AssignedID.
func (e *Env) Index() int { return e.index }

// N returns the number of vertices n (global knowledge per the model).
func (e *Env) N() int { return e.n }

// MaxDegree returns Delta (global knowledge per the model).
func (e *Env) MaxDegree() int { return e.maxDeg }

// Diameter returns the diameter D and whether it is known to devices.
func (e *Env) Diameter() (int, bool) {
	if e.diam < 0 {
		return 0, false
	}
	return e.diam, true
}

// IDSpace returns the deterministic ID space bound N (0 if unassigned).
func (e *Env) IDSpace() int { return e.idSpace }

// AssignedID returns the device's distinct ID in {1..IDSpace}, or 0 when
// the run has no ID assignment.
func (e *Env) AssignedID() int { return e.devID }

// Model returns the channel model of the run.
func (e *Env) Model() Model { return e.model }

// Rand returns the device's private deterministic random stream.
func (e *Env) Rand() *rand.Rand { return e.rand }

// Now returns the last slot the device acted in or slept through.
func (e *Env) Now() uint64 { return e.now }

// SleepUntil advances the device's local clock without energy cost. It is
// bookkeeping only; the next action's slot is what synchronizes devices.
func (e *Env) SleepUntil(slot uint64) {
	if slot > e.now {
		e.now = slot
	}
}

// Exit terminates the device program immediately (unwinds the goroutine).
func (e *Env) Exit() {
	panic(errExit)
}

func (e *Env) submit(kind actionKind, slot uint64, payload any) Feedback {
	if slot <= e.now {
		panic(fmt.Sprintf("radio: device %d scheduled slot %d, but its clock is already at %d", e.index, slot, e.now))
	}
	select {
	case e.reqCh <- request{dev: e.index, slot: slot, kind: kind, payload: payload}:
	case <-e.abortCh:
		panic(errAborted)
	}
	select {
	case fb := <-e.respCh:
		e.now = slot
		return fb
	case <-e.abortCh:
		panic(errAborted)
	}
}

// Transmit sends payload in the given future slot (energy 1). The device
// learns nothing from the channel.
func (e *Env) Transmit(slot uint64, payload any) {
	e.submit(actTransmit, slot, payload)
}

// Listen tunes in during the given future slot (energy 1) and returns the
// channel feedback.
func (e *Env) Listen(slot uint64) Feedback {
	return e.submit(actListen, slot, nil)
}

// TransmitListen transmits and listens in the same slot (full duplex,
// energy 1 — the device is awake for one slot, which is what the paper's
// energy measure charges). The feedback reflects the other transmitters only. The paper
// uses full duplex in the LOCAL path algorithm (Section 8) and in
// single-hop leader-election (Theorem 2); multi-hop CD/No-CD algorithms
// must not use it (Theorem 3 notes the simulation forbids it).
func (e *Env) TransmitListen(slot uint64, payload any) Feedback {
	return e.submit(actTransmitListen, slot, payload)
}

// TransmitNext transmits in the next slot after the device's clock.
func (e *Env) TransmitNext(payload any) {
	e.Transmit(e.now+1, payload)
}

// ListenNext listens in the next slot after the device's clock.
func (e *Env) ListenNext() Feedback {
	return e.Listen(e.now + 1)
}

// Run executes one program per vertex and returns the measured result.
// It blocks until every device goroutine has exited. The returned error
// wraps ErrBudget on budget exhaustion, or surfaces the first device
// panic.
func Run(cfg Config, programs []Program) (*Result, error) {
	g := cfg.Graph
	if g == nil || g.N() == 0 {
		return nil, errors.New("radio: nil or empty graph")
	}
	n := g.N()
	if len(programs) != n {
		return nil, fmt.Errorf("radio: %d programs for %d vertices", len(programs), n)
	}
	maxSlots := cfg.MaxSlots
	if maxSlots == 0 {
		maxSlots = 1 << 40
	}
	maxEvents := cfg.MaxEvents
	if maxEvents == 0 {
		maxEvents = 1 << 28
	}
	diam := -1
	if cfg.KnowDiameter {
		diam = cfg.Diameter
		if diam == 0 {
			d, err := g.Diameter()
			if err != nil {
				return nil, fmt.Errorf("radio: KnowDiameter: %w", err)
			}
			diam = d
		}
	}
	ids := make([]int, n)
	if cfg.IDSpace > 0 {
		if cfg.IDs != nil {
			if len(cfg.IDs) != n {
				return nil, fmt.Errorf("radio: %d IDs for %d vertices", len(cfg.IDs), n)
			}
			seen := make(map[int]bool, n)
			for _, id := range cfg.IDs {
				if id < 1 || id > cfg.IDSpace {
					return nil, fmt.Errorf("radio: ID %d outside {1..%d}", id, cfg.IDSpace)
				}
				if seen[id] {
					return nil, fmt.Errorf("radio: duplicate ID %d", id)
				}
				seen[id] = true
			}
			copy(ids, cfg.IDs)
		} else {
			if cfg.IDSpace < n {
				return nil, fmt.Errorf("radio: IDSpace %d < n %d", cfg.IDSpace, n)
			}
			for i := range ids {
				ids[i] = i + 1
			}
		}
	}

	s := &scheduler{
		g:          g,
		model:      cfg.Model,
		trace:      cfg.Trace,
		maxSlots:   maxSlots,
		maxEvents:  maxEvents,
		reqCh:      make(chan request),
		abortCh:    make(chan struct{}),
		pending:    make([]request, n),
		heap:       make([]heapEntry, 0, n),
		cohort:     make([]int, 0, n),
		txs:        make([]int, 0, 8),
		lastTxSlot: make([]uint64, n),
		lastTxMsg:  make([]any, n),
		result: &Result{
			Energy:    make([]int, n),
			Transmits: make([]int, n),
			Listens:   make([]int, n),
		},
	}

	envs := make([]*Env, n)
	for v := 0; v < n; v++ {
		envs[v] = &Env{
			index:   v,
			n:       n,
			maxDeg:  g.MaxDegree(),
			diam:    diam,
			idSpace: cfg.IDSpace,
			devID:   ids[v],
			model:   cfg.Model,
			rand:    rng.NewChild(cfg.Seed, uint64(v)),
			reqCh:   s.reqCh,
			respCh:  make(chan Feedback, 1),
			abortCh: s.abortCh,
		}
	}
	s.envs = envs

	var wg sync.WaitGroup
	wg.Add(n)
	for v := 0; v < n; v++ {
		go func(v int) {
			defer wg.Done()
			var devErr error
			defer func() {
				if r := recover(); r != nil {
					switch r {
					case errAborted:
						// Scheduler already gave up on us; just exit.
						return
					case errExit:
						// Voluntary exit: fall through to halt.
					default:
						devErr = fmt.Errorf("radio: device %d panicked: %v", v, r)
					}
				}
				select {
				case s.reqCh <- request{dev: v, kind: actHalt, err: devErr}:
				case <-s.abortCh:
				}
			}()
			programs[v](envs[v])
		}(v)
	}
	runErr := s.loop(n)
	wg.Wait()
	return s.result, runErr
}

type scheduler struct {
	g          *graph.Graph
	model      Model
	trace      func(Event)
	maxSlots   uint64
	maxEvents  uint64
	reqCh      chan request
	abortCh    chan struct{}
	envs       []*Env
	pending    []request   // by device; valid iff the device is in heap
	heap       []heapEntry // min-heap over (slot, dev) of pending devices
	cohort     []int       // reused per-slot scratch: cohort device indices
	txs        []int       // reused per-listener scratch: transmitting neighbors
	lastTxSlot []uint64    // slot+1 of last transmission (0 = never)
	lastTxMsg  []any
	result     *Result
}

// heapEntry is one pending device in the slot-ordered min-heap. Each
// device has at most one pending request, so the heap never exceeds n.
type heapEntry struct {
	slot uint64
	dev  int32
}

// less orders entries by slot, breaking ties by device index so cohorts
// pop in ascending-device order — the same deterministic order the
// linear-scan scheduler produced (it walked pending by index).
func (s *scheduler) less(a, b heapEntry) bool {
	if a.slot != b.slot {
		return a.slot < b.slot
	}
	return a.dev < b.dev
}

func (s *scheduler) heapPush(e heapEntry) {
	s.heap = append(s.heap, e)
	i := len(s.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(s.heap[i], s.heap[parent]) {
			break
		}
		s.heap[i], s.heap[parent] = s.heap[parent], s.heap[i]
		i = parent
	}
}

func (s *scheduler) heapPop() heapEntry {
	top := s.heap[0]
	last := len(s.heap) - 1
	s.heap[0] = s.heap[last]
	s.heap = s.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(s.heap) && s.less(s.heap[l], s.heap[smallest]) {
			smallest = l
		}
		if r < len(s.heap) && s.less(s.heap[r], s.heap[smallest]) {
			smallest = r
		}
		if smallest == i {
			return top
		}
		s.heap[i], s.heap[smallest] = s.heap[smallest], s.heap[i]
		i = smallest
	}
}

// loop is the scheduler: it gathers one pending request per live device,
// advances to the minimum requested slot (heap top), resolves the channel
// there, and releases exactly that cohort.
func (s *scheduler) loop(live int) error {
	defer close(s.abortCh)
	var firstErr error
	for live > 0 {
		// Gather until every live device has declared its next action.
		for len(s.heap) < live {
			req := <-s.reqCh
			if req.kind == actHalt {
				live--
				if req.err != nil && firstErr == nil {
					firstErr = req.err
				}
				continue
			}
			s.pending[req.dev] = req
			s.heapPush(heapEntry{slot: req.slot, dev: int32(req.dev)})
		}
		if live == 0 {
			break
		}
		// The next populated slot is the heap minimum.
		t := s.heap[0].slot
		if t > s.maxSlots {
			return fmt.Errorf("%w: slot %d > MaxSlots %d", ErrBudget, t, s.maxSlots)
		}
		if t > s.result.Slots {
			s.result.Slots = t
		}
		// Pop the cohort acting at slot t (ascending device order, by the
		// heap tie-break).
		s.cohort = s.cohort[:0]
		for len(s.heap) > 0 && s.heap[0].slot == t {
			s.cohort = append(s.cohort, int(s.heapPop().dev))
		}
		// Record transmissions first so every listener sees them.
		for _, v := range s.cohort {
			p := &s.pending[v]
			if p.kind == actTransmit || p.kind == actTransmitListen {
				s.lastTxSlot[v] = t + 1
				s.lastTxMsg[v] = p.payload
			}
		}
		// Account energy, emit traces, compute feedback, release devices.
		for _, v := range s.cohort {
			p := &s.pending[v]
			var fb Feedback
			switch p.kind {
			case actTransmit:
				s.result.Energy[v]++
				s.result.Transmits[v]++
				s.result.Events++
				s.emit(Event{Slot: t, Dev: v, Kind: EventTransmit, Payload: p.payload, From: -1})
			case actListen:
				s.result.Energy[v]++
				s.result.Listens[v]++
				s.result.Events++
				fb = s.resolve(v, t)
			case actTransmitListen:
				// Awake for one slot: energy 1 even though both action
				// counters advance (the paper charges per non-idle slot).
				s.result.Energy[v]++
				s.result.Transmits[v]++
				s.result.Listens[v]++
				s.result.Events += 2
				s.emit(Event{Slot: t, Dev: v, Kind: EventTransmit, Payload: p.payload, From: -1})
				fb = s.resolve(v, t)
			}
			if s.result.Events > s.maxEvents {
				return fmt.Errorf("%w: events > MaxEvents %d", ErrBudget, s.maxEvents)
			}
			p.payload = nil
			s.envs[v].respCh <- fb
		}
	}
	return firstErr
}

func (s *scheduler) emit(ev Event) {
	if s.trace != nil {
		s.trace(ev)
	}
}

// resolve computes listener v's feedback at slot t under the run's model.
// It reuses the scheduler's scratch slice for the transmitting-neighbor
// set; the slice never escapes (Local-model payload slices are fresh).
func (s *scheduler) resolve(v int, t uint64) Feedback {
	txs := s.txs[:0]
	for _, w := range s.g.Neighbors(v) {
		if s.lastTxSlot[w] == t+1 {
			txs = append(txs, w)
		}
	}
	sort.Ints(txs)
	s.txs = txs
	switch s.model {
	case Local:
		if len(txs) == 0 {
			s.emit(Event{Slot: t, Dev: v, Kind: EventSilence, From: -1})
			return Feedback{Status: Silence}
		}
		payloads := make([]any, len(txs))
		for i, w := range txs {
			payloads[i] = s.lastTxMsg[w]
			s.emit(Event{Slot: t, Dev: v, Kind: EventReceive, Payload: s.lastTxMsg[w], From: w})
		}
		return Feedback{Status: Received, Payload: payloads[0], Payloads: payloads}
	case CDStar:
		if len(txs) == 0 {
			s.emit(Event{Slot: t, Dev: v, Kind: EventSilence, From: -1})
			return Feedback{Status: Silence}
		}
		w := txs[0] // arbitrary choice, fixed deterministically
		s.emit(Event{Slot: t, Dev: v, Kind: EventReceive, Payload: s.lastTxMsg[w], From: w})
		return Feedback{Status: Received, Payload: s.lastTxMsg[w]}
	case CD:
		switch len(txs) {
		case 0:
			s.emit(Event{Slot: t, Dev: v, Kind: EventSilence, From: -1})
			return Feedback{Status: Silence}
		case 1:
			w := txs[0]
			s.emit(Event{Slot: t, Dev: v, Kind: EventReceive, Payload: s.lastTxMsg[w], From: w})
			return Feedback{Status: Received, Payload: s.lastTxMsg[w]}
		default:
			s.emit(Event{Slot: t, Dev: v, Kind: EventNoise, From: -1})
			return Feedback{Status: Noise}
		}
	default: // NoCD
		if len(txs) == 1 {
			w := txs[0]
			s.emit(Event{Slot: t, Dev: v, Kind: EventReceive, Payload: s.lastTxMsg[w], From: w})
			return Feedback{Status: Received, Payload: s.lastTxMsg[w]}
		}
		s.emit(Event{Slot: t, Dev: v, Kind: EventSilence, From: -1})
		return Feedback{Status: Silence}
	}
}
