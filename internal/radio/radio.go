// Package radio implements the synchronous multi-hop radio network model
// of Chang et al. (PODC 2018), "The Energy Complexity of Broadcast".
//
// The network is a connected undirected graph with one device per vertex.
// Time is partitioned into discrete slots, agreed by all devices. In each
// slot a device either transmits a message, listens, or idles; transmitting
// and listening cost one unit of energy each, idling is free. What a
// listener hears depends on the collision model:
//
//   - NoCD:   exactly one transmitting neighbor delivers its message; zero
//     or two-or-more neighbors are indistinguishable silence.
//   - CD:     zero neighbors is silence; two or more is noise.
//   - CDStar: zero is silence; one or more delivers some one message
//     (an arbitrary — here lowest-index — transmitter's), per Section 6.3.
//   - Local:  a listener hears every message from every transmitting
//     neighbor; there are no collisions.
//
// # Engine architecture: one device ABI, one scheduler
//
// The engine is a conservative discrete-event simulator driven entirely
// on one goroutine. Every device is a resumable step machine (Proc):
// the scheduler calls Step(ch, feedback) -> Action inline, and the proc
// carries its state between calls. There are no per-device goroutines,
// no mailbox semaphores, and no park/wake per action — an action costs
// one function call — which is what makes Monte-Carlo sweeps run at
// memory speed. The paper's algorithms are slot-driven state machines
// by construction, so every protocol package ships a native step
// machine; structured protocols compose them from the Cont combinators
// (Then, Recv, Eval, Do) instead of hand-flattening loops into state
// enums.
//
// Each round, the scheduler steps every awaited device to its next
// channel action, advances to the minimum requested slot via a min-heap
// over (slot, device), and resolves the channel for that cohort in
// ascending device order — the deterministic order the golden trace
// test pins byte for byte. Devices that scheduled future slots wait in
// the heap; a run ends when every device has halted.
//
// Transmit payloads are interned in the transmitter's lane cell for
// exactly one slot: listeners resolve them at delivery and the scheduler
// clears every cell once the cohort's slot is fully resolved, so the
// engine never retains a payload past its transmission slot. Small
// non-constant integer payloads can additionally be boxed through
// BoxInt, which serves immutable boxes from a simulator-wide interning
// table instead of allocating per transmission. Collision resolution
// iterates the topology's compressed-sparse-row adjacency (graph.CSR),
// whose rows are sorted by construction, eliminating the per-listener
// neighbor sort.
//
// A Simulator can be reused across runs on the same topology
// (NewSimulator + RunDevices): all per-device machinery is preallocated
// once and fully reset per run, which is what makes million-trial
// Monte-Carlo sweeps allocation-free in the hot path. The package-level
// RunDevices remains the one-shot entry point, and serves from a
// caller-supplied SimCache when Config.Sims is set. BatchSimulator
// advances W same-topology trials in lockstep over one shared CSR
// adjacency for sweep workloads.
package radio

import (
	"errors"
	"fmt"
	"math/rand/v2"

	"repro/internal/fault"
	"repro/internal/graph"
)

// Model selects the collision behaviour of the channel.
type Model int

// The four channel models of the paper (Section 1 and Section 6.3).
const (
	NoCD Model = iota
	CD
	CDStar
	Local
)

// String returns the paper's name for the model.
func (m Model) String() string {
	switch m {
	case NoCD:
		return "No-CD"
	case CD:
		return "CD"
	case CDStar:
		return "CD*"
	case Local:
		return "LOCAL"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Status is the channel feedback visible to a listener.
type Status uint8

// Channel feedback values. Silence is the paper's lambda_S, Noise is
// lambda_N (CD model only), Received means exactly one message was
// delivered.
const (
	Silence Status = iota
	Received
	Noise
)

// String returns a short name for the status.
func (s Status) String() string {
	switch s {
	case Silence:
		return "silence"
	case Received:
		return "received"
	case Noise:
		return "noise"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// Feedback is what a listening device observes in a slot.
type Feedback struct {
	// Status describes the channel. In the Local model, Status is Received
	// when at least one neighbor transmitted and Silence otherwise.
	Status Status
	// Payload is the delivered message when Status == Received. In the
	// Local model it is the payload of the lowest-index transmitting
	// neighbor (all payloads are in Payloads).
	Payload any
	// Payloads holds every delivered message in the Local model, ordered
	// by transmitter index. Nil in single-message models. The slice is a
	// per-device buffer owned by the engine, valid until the device's
	// next channel action — copy it to retain it across actions.
	Payloads []any
}

// EventKind classifies trace events.
type EventKind uint8

// Trace event kinds.
const (
	EventTransmit EventKind = iota
	EventReceive
	EventSilence
	EventNoise
)

// Event is a single trace record, emitted when Config.Trace is set.
type Event struct {
	Slot    uint64
	Dev     int
	Kind    EventKind
	Payload any
	From    int // transmitter index for EventReceive; -1 otherwise
}

// Config describes one simulation run.
type Config struct {
	// Graph is the network topology. Required, and must be non-empty.
	Graph *graph.Graph
	// Model selects the collision behaviour.
	Model Model
	// Seed derives every device's private random stream.
	Seed uint64
	// MaxSlots aborts the run when virtual time passes this slot
	// (0 means a generous default of 1<<40).
	MaxSlots uint64
	// MaxEvents aborts the run after this many device actions
	// (0 means a default of 1<<28).
	MaxEvents uint64
	// KnowDiameter, if true, exposes the exact diameter to devices.
	KnowDiameter bool
	// Diameter is the value exposed when KnowDiameter is set. If zero it
	// is computed from the graph.
	Diameter int
	// IDSpace is the deterministic-model ID space bound N. When positive,
	// each device is assigned a distinct ID in {1..N} (IDs[i] if given,
	// else i+1).
	IDSpace int
	// IDs optionally assigns explicit distinct IDs in {1..IDSpace}.
	IDs []int
	// Trace, if non-nil, receives every transmit/listen event. It is
	// called from the scheduler goroutine only.
	Trace func(Event)
	// Fault optionally injects deterministic faults (crash-stop, sleep
	// windows, lossy slots). Decisions are positional hashes of a fault
	// root derived from Seed on a child stream disjoint from every
	// device's protocol stream, so an inactive spec — the zero value, or
	// any kind at rate 0 — leaves the run byte-identical to one with no
	// fault configuration, and an active one never perturbs protocol
	// coin flips. See internal/fault.
	Fault fault.Spec
	// Sims, if non-nil, is a per-goroutine Simulator cache: Run reuses
	// the cached engine for Graph instead of building one per call.
	// Measurements are unaffected — a recycled Simulator is fully reset —
	// so sweeps stay bit-identical for any worker count. The cache must
	// not be shared between goroutines.
	Sims *SimCache
}

// Result summarizes a completed (or aborted) run.
type Result struct {
	// Slots is the largest slot in which any device acted.
	Slots uint64
	// Energy[v] counts the slots in which v is awake (transmitting,
	// listening, or both). A full-duplex slot costs 1: the paper's energy
	// measure charges a device per non-idle slot, not per action.
	Energy []int
	// Transmits[v] and Listens[v] count v's transmit and listen actions.
	// A full-duplex slot contributes 1 to each, so Transmits[v]+Listens[v]
	// may exceed Energy[v].
	Transmits []int
	Listens   []int
	// Events is the total number of device actions processed.
	Events uint64
	// FaultCrashes, FaultSleeps and FaultErasures count the faults the
	// run's Config.Fault injected: devices crash-stopped, sleep windows
	// started, and deliveries erased by lossy slots. All zero when the
	// fault spec is inactive.
	FaultCrashes  int
	FaultSleeps   int
	FaultErasures int
}

// MaxEnergy returns max_v Energy[v] — the paper's energy complexity.
func (r *Result) MaxEnergy() int {
	m := 0
	for _, e := range r.Energy {
		if e > m {
			m = e
		}
	}
	return m
}

// TotalEnergy returns the sum of all devices' energy.
func (r *Result) TotalEnergy() int {
	t := 0
	for _, e := range r.Energy {
		t += e
	}
	return t
}

// ErrBudget is returned (wrapped) when MaxSlots or MaxEvents is exceeded.
var ErrBudget = errors.New("radio: simulation budget exceeded")

type actionKind uint8

const (
	actNone actionKind = iota
	actTransmit
	actListen
	actTransmitListen
	actHalt
)

// Env is a device's handle to the network: the Channel implementation
// the scheduler passes to Proc.Step. It is informational only — devices
// act by returning Actions, never by calling into the engine.
type Env struct {
	sim   *Simulator
	index int
	devID int
	rand  *rand.Rand
	now   uint64
	pbuf  []any // reusable Local-model delivery buffer
}

// Index returns the device's vertex index in {0..n-1}. It is the
// simulation-level identity; randomized protocols may use it where the
// paper lets devices self-assign unique IDs, deterministic protocols
// should use AssignedID.
func (e *Env) Index() int { return e.index }

// N returns the number of vertices n (global knowledge per the model).
func (e *Env) N() int { return e.sim.n }

// MaxDegree returns Delta (global knowledge per the model).
func (e *Env) MaxDegree() int { return e.sim.maxDeg }

// Diameter returns the diameter D and whether it is known to devices.
func (e *Env) Diameter() (int, bool) {
	if e.sim.diam < 0 {
		return 0, false
	}
	return e.sim.diam, true
}

// IDSpace returns the deterministic ID space bound N (0 if unassigned).
func (e *Env) IDSpace() int { return e.sim.idSpace }

// AssignedID returns the device's distinct ID in {1..IDSpace}, or 0 when
// the run has no ID assignment.
func (e *Env) AssignedID() int { return e.devID }

// Model returns the channel model of the run.
func (e *Env) Model() Model { return e.sim.model }

// Rand returns the device's private deterministic random stream.
func (e *Env) Rand() *rand.Rand { return e.rand }

// Now returns the last slot the device acted in or slept through.
func (e *Env) Now() uint64 { return e.now }
