package radio

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/graph"
)

// TestSimulatorReuseMatchesFreshRuns pins the reuse contract: a recycled
// Simulator produces the byte-identical event stream and measurements a
// fresh engine produces, for every seed and across all models.
func TestSimulatorReuseMatchesFreshRuns(t *testing.T) {
	g := graph.GNP(20, 0.3, 7)
	for _, model := range []Model{NoCD, CD, CDStar, Local} {
		sim, err := NewSimulator(g, Config{Graph: g, Model: model})
		if err != nil {
			t.Fatal(err)
		}
		for seed := uint64(1); seed <= 5; seed++ {
			var sb strings.Builder
			simCfg := Config{Graph: g, Model: model, Seed: seed, Trace: func(ev Event) {
				sb.WriteString(formatEvent(ev))
				sb.WriteByte('\n')
			}}
			res, err := sim.run(simCfg, contendingProcs(20, 25))
			if err != nil {
				t.Fatal(err)
			}
			fmt.Fprintf(&sb, "%d %d %v", res.Slots, res.Events, res.Energy)
			fresh := traceDevices(t, Config{Graph: g, Model: model, Seed: seed},
				contendingProcs(20, 25))
			if sb.String() != fresh {
				t.Fatalf("model %v seed %d: reused simulator diverges from fresh run", model, seed)
			}
		}
	}
}

// TestSimulatorSeedEntry checks the public RunDevices(seed, devs) entry:
// the template config's model is kept and the seed drives the device
// streams.
func TestSimulatorSeedEntry(t *testing.T) {
	g := graph.Clique(8)
	sim, err := NewSimulator(g, Config{Graph: g, Model: CD})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := sim.RunDevices(3, contendingProcs(8, 20))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sim.RunDevices(3, contendingProcs(8, 20))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Events != r2.Events || r1.Slots != r2.Slots {
		t.Fatalf("same seed differs across reuses: %+v vs %+v", r1, r2)
	}
	// Result slices must stay valid after later runs.
	e0 := append([]int(nil), r1.Energy...)
	if _, err := sim.RunDevices(4, contendingProcs(8, 20)); err != nil {
		t.Fatal(err)
	}
	for i := range e0 {
		if r1.Energy[i] != e0[i] {
			t.Fatal("earlier Result clobbered by a later run")
		}
	}
}

// TestSimulatorReuseAfterAbort exercises the error/reset path: a budget
// abort ends the run mid-flight, and the next run on the same Simulator
// must still be exact.
func TestSimulatorReuseAfterAbort(t *testing.T) {
	g := graph.Path(6)
	sim, err := NewSimulator(g, Config{Graph: g, Model: NoCD, MaxSlots: 10})
	if err != nil {
		t.Fatal(err)
	}
	over := make([]Device, 6)
	for v := range over {
		var s uint64
		over[v].Proc = ProcFunc(func(Channel, Feedback) Action {
			s += 5
			return Transmit(s, nil)
		})
	}
	if _, err := sim.RunDevices(1, over); err == nil || !errors.Is(err, ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
	// Clean run on the recycled, previously aborted engine.
	res, err := sim.run(Config{Graph: g, Model: NoCD, Seed: 2}, contendingProcs(6, 8))
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := RunDevices(Config{Graph: g, Model: NoCD, Seed: 2}, contendingProcs(6, 8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Events != fresh.Events || res.Slots != fresh.Slots {
		t.Fatalf("post-abort reuse diverges: %+v vs %+v", res, fresh)
	}
	// Same again after a device-panic run.
	boom := make([]Device, 6)
	for v := range boom {
		if v == 3 {
			boom[v].Proc = ProcFunc(func(Channel, Feedback) Action { panic("boom") })
		} else {
			boom[v].Proc = ContProc(func(Channel) Cont { return Then(Listen(1), nil) })
		}
	}
	if _, err := sim.RunDevices(5, boom); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("want device panic, got %v", err)
	}
	if _, err := sim.RunDevices(6, contendingProcs(6, 8)); err != nil {
		t.Fatalf("reuse after device panic: %v", err)
	}
}

// TestSimulatorConcurrentUseRejected guards the single-goroutine
// contract with a fail-fast error instead of corruption.
func TestSimulatorConcurrentUseRejected(t *testing.T) {
	g := graph.Path(2)
	sim, err := NewSimulator(g, Config{Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		sim.RunDevices(1, Procs([]Proc{
			ProcFunc(func(Channel, Feedback) Action {
				close(started)
				<-release
				return Halt()
			}),
			idleProc(),
		}))
	}()
	<-started
	if _, err := sim.RunDevices(2, fill(2, nil)); err == nil {
		t.Error("concurrent run accepted")
	}
	close(release)
}

// TestSchedulerPanicKeepsSimulatorReusable pins the scheduler-side panic
// path: a panicking Trace callback must surface to the caller, and the
// Simulator must stay reusable afterwards.
func TestSchedulerPanicKeepsSimulatorReusable(t *testing.T) {
	g := graph.Path(4)
	sim, err := NewSimulator(g, Config{Graph: g, Model: NoCD})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Graph: g, Model: NoCD, Seed: 1,
		Trace: func(Event) { panic("trace boom") }}
	func() {
		defer func() {
			if r := recover(); r == nil || fmt.Sprint(r) != "trace boom" {
				t.Fatalf("want trace panic to surface, got %v", r)
			}
		}()
		sim.run(cfg, contendingProcs(4, 5))
		t.Fatal("run returned normally despite trace panic")
	}()
	// A reused run must be exact.
	res, err := sim.RunDevices(2, contendingProcs(4, 5))
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := RunDevices(Config{Graph: g, Model: NoCD, Seed: 2}, contendingProcs(4, 5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Events != fresh.Events || res.Slots != fresh.Slots {
		t.Fatalf("post-panic reuse diverges: %+v vs %+v", res, fresh)
	}
}

// TestSimCacheReuse checks Config.Sims: byte-identical results, graph-
// keyed cache hits, and LRU eviction at the cap.
func TestSimCacheReuse(t *testing.T) {
	g := graph.Star(10)
	cache := &SimCache{}
	var with, without string
	for seed := uint64(1); seed <= 3; seed++ {
		with = traceDevices(t, Config{Graph: g, Model: CD, Seed: seed, Sims: cache},
			contendingProcs(10, 15))
		without = traceDevices(t, Config{Graph: g, Model: CD, Seed: seed},
			contendingProcs(10, 15))
		if with != without {
			t.Fatalf("seed %d: cached run diverges from fresh run", seed)
		}
	}
	if cache.Len() != 1 {
		t.Fatalf("cache has %d simulators for one graph", cache.Len())
	}
	for i := 0; i < 2*simCacheCap; i++ {
		gi := graph.Path(3 + i)
		if _, err := RunDevices(Config{Graph: gi, Sims: cache}, fill(gi.N(), nil)); err != nil {
			t.Fatal(err)
		}
	}
	if cache.Len() > simCacheCap {
		t.Fatalf("cache grew to %d, cap is %d", cache.Len(), simCacheCap)
	}
}

// TestPayloadCollectableMidRun pins the payload-retention fix: a large
// transmit payload must become garbage-collectable as soon as its slot
// has resolved and every delivered reference is dropped, not at the end
// of the run.
func TestPayloadCollectableMidRun(t *testing.T) {
	type blob struct{ data [1 << 20]byte }
	var finalized atomic.Bool
	g := graph.Path(2)
	txStep := 0
	tx := ProcFunc(func(Channel, Feedback) Action {
		txStep++
		switch txStep {
		case 1:
			b := new(blob)
			b.data[0] = 1
			runtime.SetFinalizer(b, func(*blob) { finalized.Store(true) })
			return Transmit(1, b)
		case 2:
			return Transmit(2, "x")
		case 3:
			// Slot 1 resolved two rounds ago and the listener has since
			// been re-stepped, clearing its feedback cell — the blob must
			// now be collectable while the run is still going. Poll the
			// finalizer across forced GC cycles.
			for i := 0; i < 100 && !finalized.Load(); i++ {
				runtime.GC()
				time.Sleep(time.Millisecond)
			}
			return Transmit(3, "done")
		default:
			return Halt()
		}
	})
	rxSlot := uint64(0)
	rx := ProcFunc(func(ch Channel, fb Feedback) Action {
		if rxSlot == 1 && fb.Status != Received {
			t.Errorf("listener missed the blob: %v", fb.Status)
		}
		rxSlot++
		if rxSlot > 3 {
			return Halt()
		}
		return Listen(rxSlot)
	})
	if _, err := RunDevices(Config{Graph: g, Model: NoCD},
		[]Device{{Proc: tx}, {Proc: rx}}); err != nil {
		t.Fatal(err)
	}
	if !finalized.Load() {
		t.Fatal("1 MiB payload stayed pinned after its slot resolved (retention regression)")
	}
}

// TestResultArenaIndependence pins the batched-Result contract: every
// run's Result is a distinct region that stays valid and untouched
// across later runs on the same recycled Simulator, including across a
// chunk refill.
func TestResultArenaIndependence(t *testing.T) {
	g := graph.Clique(8)
	sim, err := NewSimulator(g, Config{Graph: g, Model: CD})
	if err != nil {
		t.Fatal(err)
	}
	// Enough runs to exhaust at least one arena chunk (chunk holds
	// resultChunkBytes/(3*8*8) = many results; cap is 128).
	const runs = 200
	results := make([]*Result, runs)
	snapshots := make([][]int, runs)
	for i := 0; i < runs; i++ {
		res, err := sim.RunDevices(uint64(i%5), contendingProcs(8, 10))
		if err != nil {
			t.Fatal(err)
		}
		results[i] = res
		snapshots[i] = append([]int(nil), res.Energy...)
	}
	for i, res := range results {
		for j, e := range res.Energy {
			if e != snapshots[i][j] {
				t.Fatalf("run %d energy[%d] mutated by later runs: %d -> %d", i, j, snapshots[i][j], e)
			}
		}
		if &res.Energy[0] == &results[(i+1)%runs].Energy[0] {
			t.Fatalf("runs %d and %d share counter storage", i, (i+1)%runs)
		}
	}
	// Same seed, different runs: identical measurements out of distinct
	// arena regions.
	if results[0].Slots != results[5].Slots || results[0].Events != results[5].Events {
		t.Fatal("same-seed runs diverged under arena allocation")
	}
}
