package radio

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/graph"
)

// traceString runs cfg+programs and returns the full formatted event
// stream plus aggregate counters, for byte-exact comparisons.
func traceString(t *testing.T, cfg Config, programs []Program) string {
	t.Helper()
	var sb strings.Builder
	cfg.Trace = func(ev Event) {
		sb.WriteString(formatEvent(ev))
		sb.WriteByte('\n')
	}
	res, err := Run(cfg, programs)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&sb, "%d %d %v", res.Slots, res.Events, res.Energy)
	return sb.String()
}

// contendingPrograms is a randomized mixed transmit/listen workload.
func contendingPrograms(n int, slots uint64) []Program {
	ps := make([]Program, n)
	for v := 0; v < n; v++ {
		ps[v] = func(e *Env) {
			for s := uint64(1); s <= slots; s++ {
				if e.Rand().Uint64()&3 == 0 {
					e.Transmit(s, e.Index())
				} else {
					e.Listen(s)
				}
			}
		}
	}
	return ps
}

// TestSimulatorReuseMatchesFreshRuns pins the reuse contract: a recycled
// Simulator produces the byte-identical event stream and measurements a
// fresh engine produces, for every seed and across all models.
func TestSimulatorReuseMatchesFreshRuns(t *testing.T) {
	g := graph.GNP(20, 0.3, 7)
	for _, model := range []Model{NoCD, CD, CDStar, Local} {
		sim, err := NewSimulator(g, Config{Graph: g, Model: model})
		if err != nil {
			t.Fatal(err)
		}
		for seed := uint64(1); seed <= 5; seed++ {
			var sb strings.Builder
			simCfg := Config{Graph: g, Model: model, Seed: seed, Trace: func(ev Event) {
				sb.WriteString(formatEvent(ev))
				sb.WriteByte('\n')
			}}
			res, err := sim.run(simCfg, Programs(contendingPrograms(20, 25)))
			if err != nil {
				t.Fatal(err)
			}
			fmt.Fprintf(&sb, "%d %d %v", res.Slots, res.Events, res.Energy)
			fresh := traceString(t, Config{Graph: g, Model: model, Seed: seed},
				contendingPrograms(20, 25))
			if sb.String() != fresh {
				t.Fatalf("model %v seed %d: reused simulator diverges from fresh run", model, seed)
			}
		}
	}
}

// TestSimulatorRunSeedOverride checks the public Run(seed, programs)
// entry: the template config's model is kept and the seed drives the
// device streams.
func TestSimulatorRunSeedOverride(t *testing.T) {
	g := graph.Clique(8)
	sim, err := NewSimulator(g, Config{Graph: g, Model: CD})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := sim.Run(3, contendingPrograms(8, 20))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sim.Run(3, contendingPrograms(8, 20))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Events != r2.Events || r1.Slots != r2.Slots {
		t.Fatalf("same seed differs across reuses: %+v vs %+v", r1, r2)
	}
	// Result slices must stay valid after later runs.
	e0 := append([]int(nil), r1.Energy...)
	if _, err := sim.Run(4, contendingPrograms(8, 20)); err != nil {
		t.Fatal(err)
	}
	for i := range e0 {
		if r1.Energy[i] != e0[i] {
			t.Fatal("earlier Result clobbered by a later run")
		}
	}
}

// TestSimulatorReuseAfterAbort exercises the abort/reset path: a budget
// abort leaves semaphores with stray signals, and the next run on the
// same Simulator must absorb them and still be exact.
func TestSimulatorReuseAfterAbort(t *testing.T) {
	g := graph.Path(6)
	sim, err := NewSimulator(g, Config{Graph: g, Model: NoCD, MaxSlots: 10})
	if err != nil {
		t.Fatal(err)
	}
	over := make([]Program, 6)
	for v := range over {
		over[v] = func(e *Env) {
			for s := uint64(1); ; s += 5 {
				e.Transmit(s, nil)
			}
		}
	}
	if _, err := sim.Run(1, over); err == nil || !errors.Is(err, ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
	// Clean run on the recycled, previously aborted engine.
	res, err := sim.run(Config{Graph: g, Model: NoCD, Seed: 2}, Programs(contendingPrograms(6, 8)))
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Run(Config{Graph: g, Model: NoCD, Seed: 2}, contendingPrograms(6, 8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Events != fresh.Events || res.Slots != fresh.Slots {
		t.Fatalf("post-abort reuse diverges: %+v vs %+v", res, fresh)
	}
	// Same again after a device-panic run.
	boom := make([]Program, 6)
	for v := range boom {
		if v == 3 {
			boom[v] = func(e *Env) { panic("boom") }
		} else {
			boom[v] = func(e *Env) { e.Listen(1) }
		}
	}
	if _, err := sim.Run(5, boom); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("want device panic, got %v", err)
	}
	if _, err := sim.Run(6, contendingPrograms(6, 8)); err != nil {
		t.Fatalf("reuse after device panic: %v", err)
	}
}

// TestSimulatorConcurrentUseRejected guards the single-goroutine
// contract with a fail-fast error instead of corruption.
func TestSimulatorConcurrentUseRejected(t *testing.T) {
	g := graph.Path(2)
	sim, err := NewSimulator(g, Config{Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		sim.Run(1, []Program{
			func(e *Env) { close(started); <-release; e.Listen(1) },
			func(e *Env) {},
		})
	}()
	<-started
	if _, err := sim.Run(2, []Program{func(e *Env) {}, func(e *Env) {}}); err == nil {
		t.Error("concurrent Run accepted")
	}
	close(release)
}

// TestSchedulerPanicReleasesDevices pins the scheduler-side panic path:
// a panicking Trace callback must surface to the caller without
// stranding parked device goroutines, and the Simulator must stay
// reusable afterwards.
func TestSchedulerPanicReleasesDevices(t *testing.T) {
	g := graph.Path(4)
	sim, err := NewSimulator(g, Config{Graph: g, Model: NoCD})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Graph: g, Model: NoCD, Seed: 1,
		Trace: func(Event) { panic("trace boom") }}
	func() {
		defer func() {
			if r := recover(); r == nil || fmt.Sprint(r) != "trace boom" {
				t.Fatalf("want trace panic to surface, got %v", r)
			}
		}()
		sim.run(cfg, Programs(contendingPrograms(4, 5)))
		t.Fatal("run returned normally despite trace panic")
	}()
	// All device goroutines must have drained; a reused run must be exact.
	res, err := sim.Run(2, contendingPrograms(4, 5))
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Run(Config{Graph: g, Model: NoCD, Seed: 2}, contendingPrograms(4, 5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Events != fresh.Events || res.Slots != fresh.Slots {
		t.Fatalf("post-panic reuse diverges: %+v vs %+v", res, fresh)
	}
}

// TestSimCacheReuse checks Config.Sims: byte-identical results, graph-
// keyed cache hits, and LRU eviction at the cap.
func TestSimCacheReuse(t *testing.T) {
	g := graph.Star(10)
	cache := &SimCache{}
	var with, without string
	for seed := uint64(1); seed <= 3; seed++ {
		with = traceString(t, Config{Graph: g, Model: CD, Seed: seed, Sims: cache},
			contendingPrograms(10, 15))
		without = traceString(t, Config{Graph: g, Model: CD, Seed: seed},
			contendingPrograms(10, 15))
		if with != without {
			t.Fatalf("seed %d: cached run diverges from fresh run", seed)
		}
	}
	if cache.Len() != 1 {
		t.Fatalf("cache has %d simulators for one graph", cache.Len())
	}
	for i := 0; i < 2*simCacheCap; i++ {
		gi := graph.Path(3 + i)
		idle := make([]Program, gi.N())
		for v := range idle {
			idle[v] = func(e *Env) {}
		}
		if _, err := Run(Config{Graph: gi, Sims: cache}, idle); err != nil {
			t.Fatal(err)
		}
	}
	if cache.Len() > simCacheCap {
		t.Fatalf("cache grew to %d, cap is %d", cache.Len(), simCacheCap)
	}
}

// TestPayloadCollectableMidRun pins the lastTxMsg retention fix: a large
// transmit payload must become garbage-collectable as soon as its slot
// has resolved, not at the end of the run. The old engine pinned every
// device's last payload in lastTxMsg for the whole run.
func TestPayloadCollectableMidRun(t *testing.T) {
	type blob struct{ data [1 << 20]byte }
	var finalized atomic.Bool
	g := graph.Path(2)
	programs := []Program{
		func(e *Env) {
			b := new(blob)
			b.data[0] = 1
			runtime.SetFinalizer(b, func(*blob) { finalized.Store(true) })
			e.Transmit(1, b)
			b = nil
			_ = b
			// The run is still going: the blob's slot has resolved, so it
			// must now be collectable. Poll the finalizer across forced
			// GC cycles while keeping the device alive in virtual time.
			for i := 0; i < 100 && !finalized.Load(); i++ {
				runtime.GC()
				time.Sleep(time.Millisecond)
			}
			e.Transmit(2, "done")
		},
		func(e *Env) {
			fb := e.Listen(1)
			if fb.Status != Received {
				t.Errorf("listener missed the blob: %v", fb.Status)
			}
			fb = Feedback{} // drop the only delivered reference
			_ = fb
			e.Listen(2)
		},
	}
	if _, err := Run(Config{Graph: g, Model: NoCD}, programs); err != nil {
		t.Fatal(err)
	}
	if !finalized.Load() {
		t.Fatal("1 MiB payload stayed pinned after its slot resolved (retention regression)")
	}
}

// TestResultArenaIndependence pins the batched-Result contract: every
// run's Result is a distinct region that stays valid and untouched
// across later runs on the same recycled Simulator, including across a
// chunk refill.
func TestResultArenaIndependence(t *testing.T) {
	g := graph.Clique(8)
	sim, err := NewSimulator(g, Config{Graph: g, Model: CD})
	if err != nil {
		t.Fatal(err)
	}
	// Enough runs to exhaust at least one arena chunk (chunk holds
	// resultChunkBytes/(3*8*8) = many results; cap is 128).
	const runs = 200
	results := make([]*Result, runs)
	snapshots := make([][]int, runs)
	for i := 0; i < runs; i++ {
		res, err := sim.Run(uint64(i%5), contendingPrograms(8, 10))
		if err != nil {
			t.Fatal(err)
		}
		results[i] = res
		snapshots[i] = append([]int(nil), res.Energy...)
	}
	for i, res := range results {
		for j, e := range res.Energy {
			if e != snapshots[i][j] {
				t.Fatalf("run %d energy[%d] mutated by later runs: %d -> %d", i, j, snapshots[i][j], e)
			}
		}
		if &res.Energy[0] == &results[(i+1)%runs].Energy[0] {
			t.Fatalf("runs %d and %d share counter storage", i, (i+1)%runs)
		}
	}
	// Same seed, different runs: identical measurements out of distinct
	// arena regions.
	if results[0].Slots != results[5].Slots || results[0].Events != results[5].Events {
		t.Fatal("same-seed runs diverged under arena allocation")
	}
}
