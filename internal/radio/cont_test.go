package radio

import (
	"testing"

	"repro/internal/graph"
)

// These tests exercise the Cont combinators in isolation — sequencing,
// feedback binding, and the deferred-state-read discipline — without
// any protocol on top, so a combinator regression points here instead
// of at a ported package's trace test.

// runConts runs one continuation per vertex of g and returns the result.
func runConts(t *testing.T, g *graph.Graph, model Model, mk func(v int) Cont) *Result {
	t.Helper()
	devs := make([]Device, g.N())
	for v := range devs {
		v := v
		devs[v].Proc = ContProc(func(Channel) Cont { return mk(v) })
	}
	res, err := RunDevices(Config{Graph: g, Model: model, Seed: 1}, devs)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestThenSequencing pins that a Then chain performs its actions in
// order, one per scheduler step, and that a nil tail halts.
func TestThenSequencing(t *testing.T) {
	g := graph.Path(2)
	var order []string
	res := runConts(t, g, Local, func(v int) Cont {
		if v != 0 {
			return nil // ContProc treats a nil initial chain as halt
		}
		return Then(Sleep(1),
			Do(func() { order = append(order, "after-sleep") },
				Then(Transmit(2, "x"),
					Do(func() { order = append(order, "after-tx") },
						Then(Listen(3), nil)))))
	})
	if len(order) != 2 || order[0] != "after-sleep" || order[1] != "after-tx" {
		t.Fatalf("order = %v", order)
	}
	if res.Transmits[0] != 1 || res.Listens[0] != 1 {
		t.Errorf("counters = %d tx %d listen", res.Transmits[0], res.Listens[0])
	}
	if res.Energy[0] != 2 {
		t.Errorf("energy = %d, want 2 (sleep is free)", res.Energy[0])
	}
}

// TestRecvBindsFeedback checks Recv hands the listen's feedback to its
// binder, and that the binder's returned continuation (or nil) decides
// what happens next.
func TestRecvBindsFeedback(t *testing.T) {
	g := graph.Path(2)
	var got Feedback
	var second Feedback
	runConts(t, g, Local, func(v int) Cont {
		if v == 1 {
			return Then(Transmit(1, "m1"), Then(Transmit(2, "m2"), nil))
		}
		return Recv(1, func(fb Feedback) Cont {
			got = fb
			// Chain a second Recv from inside the binder.
			return Recv(2, func(fb Feedback) Cont {
				second = fb
				return nil
			})
		})
	})
	if got.Status != Received || got.Payload != "m1" {
		t.Errorf("first feedback = %+v", got)
	}
	if second.Status != Received || second.Payload != "m2" {
		t.Errorf("second feedback = %+v", second)
	}
}

// TestEvalDefersStateRead pins the discipline the combinator file
// documents: the continuation tree is assembled eagerly, but an Eval
// thunk reads mutable state at its window's start — not at assembly
// time.
func TestEvalDefersStateRead(t *testing.T) {
	g := graph.Path(2)
	heard := false
	var relayed any
	runConts(t, g, Local, func(v int) Cont {
		if v == 1 {
			return Then(Transmit(1, "late"), nil)
		}
		// Assembled before slot 1's feedback exists: if Eval ran its
		// thunk eagerly, the relay branch would see heard == false.
		return Recv(1, func(fb Feedback) Cont {
			return Do(func() { heard = fb.Status == Received; relayed = fb.Payload }, Eval(func() Cont {
				if !heard {
					return nil
				}
				return Then(Transmit(2, relayed), nil)
			}))
		})
	})
	if !heard {
		t.Fatal("receiver heard nothing")
	}
	if relayed != "late" {
		t.Errorf("relayed = %v", relayed)
	}
}

// TestEvalChSeesDeviceIdentity checks EvalCh runs with the device's own
// channel handle — clock and random stream included — at its scheduled
// point in the chain.
func TestEvalChSeesDeviceIdentity(t *testing.T) {
	g := graph.Clique(3)
	nows := make([]uint64, 3)
	draws := make([]uint64, 3)
	runConts(t, g, CD, func(v int) Cont {
		return Then(Sleep(uint64(v+1)), EvalCh(func(ch Channel) Cont {
			nows[v] = ch.Now()
			draws[v] = ch.Rand().Uint64()
			return nil
		}))
	})
	for v := 0; v < 3; v++ {
		if nows[v] != uint64(v+1) {
			t.Errorf("device %d: Now() = %d after Sleep(%d)", v, nows[v], v+1)
		}
	}
	if draws[0] == draws[1] && draws[1] == draws[2] {
		t.Error("all devices drew the same value — per-device streams not independent")
	}
}

// TestDoRunsOncePerStep pins Do's effect timing: the effect fires when
// its chain position is reached, exactly once, even though the chain
// value itself was built earlier.
func TestDoRunsOncePerStep(t *testing.T) {
	g := graph.Path(2)
	count := 0
	runConts(t, g, Local, func(v int) Cont {
		if v != 0 {
			return nil
		}
		return Then(Sleep(1), Do(func() { count++ }, Then(Sleep(2), nil)))
	})
	if count != 1 {
		t.Errorf("Do effect ran %d times, want 1", count)
	}
}

// TestNilContinuationsHalt checks every combinator's nil path maps to a
// device halt rather than a panic or a stuck device.
func TestNilContinuationsHalt(t *testing.T) {
	g := graph.Path(2)
	cases := map[string]Cont{
		"then-nil":   Then(Sleep(1), nil),
		"eval-nil":   Eval(func() Cont { return nil }),
		"evalch-nil": EvalCh(func(Channel) Cont { return nil }),
		"do-nil":     Do(func() {}, nil),
		"recv-nil":   Recv(1, func(Feedback) Cont { return nil }),
		"proc-nil":   ProcCont(idleProc(), nil),
	}
	for name, k := range cases {
		k := k
		res, err := RunDevices(Config{Graph: g, Model: Local}, fill(2, map[int]Proc{
			0: ContProc(func(Channel) Cont { return k }),
		}))
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if res.Slots > 1 {
			t.Errorf("%s: ran %d slots, want <= 1", name, res.Slots)
		}
	}
}

// TestProcContNesting drives a sub-proc inside a chain: the sub-proc's
// actions happen, its halt is consumed, and the outer chain resumes.
func TestProcContNesting(t *testing.T) {
	g := graph.Path(2)
	resumed := false
	var got Feedback
	sub := ContProc(func(Channel) Cont { return Then(Transmit(1, "sub"), nil) })
	runConts(t, g, Local, func(v int) Cont {
		if v == 0 {
			return ProcCont(sub, Do(func() { resumed = true }, Then(Listen(2), nil)))
		}
		return Recv(1, func(fb Feedback) Cont {
			got = fb
			return Then(Transmit(2, "ack"), nil)
		})
	})
	if got.Payload != "sub" {
		t.Errorf("sub-proc transmit not delivered: %+v", got)
	}
	if !resumed {
		t.Error("outer chain did not resume after the sub-proc's halt")
	}
}
