package radio

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/rng"
)

// heapEntry is one pending device in the slot-ordered min-heap. Each
// device has at most one pending request, so the heap never exceeds n.
type heapEntry struct {
	slot uint64
	dev  int32
}

// Simulator is a reusable execution engine bound to one topology. It
// preallocates every per-device structure — envs, action lanes, random
// streams, the scheduler heap and scratch — once, so that repeated runs
// on the same graph (Monte-Carlo trials, benchmark iterations) stop
// churning the allocator: a run allocates one Result and its counter
// backing array, nothing else.
//
// Per-device action state lives in structure-of-arrays lanes (slot,
// kind, payload, feedback, error) rather than a padded per-device
// struct: with every proc stepped on the scheduler goroutine there is
// no cross-goroutine sharing to pad against, and the cohort loops scan
// each lane contiguously.
//
// A Simulator is NOT safe for concurrent use; run one per goroutine
// (internal/sweep keeps one cache per worker). Determinism is untouched
// by reuse: every run fully reseeds and resets the per-device state, so
// a run yields the byte-identical event stream whether the Simulator is
// fresh or recycled.
type Simulator struct {
	g      *graph.Graph
	off    []int32 // CSR row offsets, shared with g
	adj    []int32 // CSR neighbor array, shared with g
	n      int
	maxDeg int
	base   Config // template captured by NewSimulator (Seed overridden per run)

	// diameter cache for Config.KnowDiameter runs.
	diamComputed bool
	diamCached   int
	diamErr      error

	// per-run binding (scalars from the run's Config).
	model     Model
	trace     func(Event)
	maxSlots  uint64
	maxEvents uint64
	diam      int // exposed to devices; -1 when unknown
	idSpace   int
	ids       []int

	// fault injection (see internal/fault). fplan is the run's bound
	// decision procedure; the three booleans cache its kind so the hot
	// loops pay one predictable branch when faults are off. sleepUntil[v]
	// is the first slot after v's current sleep window (0 = not asleep).
	fplan      fault.Plan
	faultCrash bool
	faultSleep bool
	faultLoss  bool
	sleepUntil []uint64

	// preallocated machinery. slots/kinds/payloads/fbs/errs are the
	// per-device action lanes: the device's pending request (written by
	// stepDevice) and its feedback for the next step (written by the
	// cohort resolution).
	envs       []Env
	pcgs       []rand.PCG
	slots      []uint64
	kinds      []actionKind
	payloads   []any // in-flight transmit payloads (cleared per slot)
	fbs        []Feedback
	errs       []error
	heap       []heapEntry
	cohort     []int32
	posted     []int32 // per-round scratch: non-halt posts, ascending device order
	awaiting   []int32 // devices whose next action the scheduler is waiting on
	txs        []int32 // per-listener scratch: transmitting neighbors
	lastTxSlot []uint64
	procs      []Proc // per-run device step machines
	intBox     []any  // lazily grown boxed-integer interning table (BoxInt)

	running atomic.Bool

	res *Result // current run's result, owned by the scheduler loop

	// loop state, held on the struct so a BatchSimulator can drive the
	// run one scheduler round at a time (gather / resolveSlot) and park
	// the lane between rounds.
	live     int   // devices not yet halted
	firstErr error // first device error, reported when the run ends

	// Result arena: per-run Results and their counter backing arrays are
	// carved out of batch-allocated chunks (see newResult), amortizing
	// the two per-run allocations a recycled Simulator used to make
	// across ~a chunk's worth of Monte-Carlo trials.
	resArena   []int
	resStructs []Result
}

// NewSimulator builds a reusable engine for g. cfg provides the run
// template: model, budgets, diameter/ID exposure, and trace sink; its
// Graph field is ignored in favor of g and its Seed is overridden by
// each run call. The per-run scalars can also be rebound wholesale by
// the package-level RunDevices with a SimCache.
func NewSimulator(g *graph.Graph, cfg Config) (*Simulator, error) {
	if g == nil || g.N() == 0 {
		return nil, errors.New("radio: nil or empty graph")
	}
	n := g.N()
	off, adj := g.CSR()
	s := &Simulator{
		g:          g,
		off:        off,
		adj:        adj,
		n:          n,
		maxDeg:     g.MaxDegree(),
		base:       cfg,
		ids:        make([]int, n),
		envs:       make([]Env, n),
		pcgs:       make([]rand.PCG, n),
		slots:      make([]uint64, n),
		kinds:      make([]actionKind, n),
		payloads:   make([]any, n),
		fbs:        make([]Feedback, n),
		errs:       make([]error, n),
		heap:       make([]heapEntry, 0, n),
		cohort:     make([]int32, 0, n),
		posted:     make([]int32, 0, n),
		awaiting:   make([]int32, 0, n),
		txs:        make([]int32, 0, 8),
		lastTxSlot: make([]uint64, n),
		sleepUntil: make([]uint64, n),
		procs:      make([]Proc, n),
	}
	s.base.Graph = g
	for v := 0; v < n; v++ {
		s.envs[v] = Env{
			sim:   s,
			index: v,
			rand:  rand.New(&s.pcgs[v]),
		}
	}
	return s, nil
}

// RunDevices executes one device per vertex under the Simulator's
// template config with the given seed, reusing every preallocated
// structure. The returned Result is freshly allocated and remains valid
// across later runs. Procs are single-use state machines: pass freshly
// initialized ones per run. Feedback lifetime contract: in the Local
// model the Payloads slice handed to a device is a per-device buffer
// valid until that device's next channel action — copy it to retain it.
func (s *Simulator) RunDevices(seed uint64, devs []Device) (*Result, error) {
	cfg := s.base
	cfg.Seed = seed
	return s.run(cfg, devs)
}

// bind installs one run's scalar configuration, validating exactly as the
// original one-shot engine did.
func (s *Simulator) bind(cfg Config) error {
	s.model = cfg.Model
	s.trace = cfg.Trace
	s.maxSlots = cfg.MaxSlots
	if s.maxSlots == 0 {
		s.maxSlots = 1 << 40
	}
	s.maxEvents = cfg.MaxEvents
	if s.maxEvents == 0 {
		s.maxEvents = 1 << 28
	}
	s.diam = -1
	if cfg.KnowDiameter {
		d := cfg.Diameter
		if d == 0 {
			if !s.diamComputed {
				s.diamCached, s.diamErr = s.g.Diameter()
				s.diamComputed = true
			}
			if s.diamErr != nil {
				return fmt.Errorf("radio: KnowDiameter: %w", s.diamErr)
			}
			d = s.diamCached
		}
		s.diam = d
	}
	if err := cfg.Fault.Validate(); err != nil {
		return fmt.Errorf("radio: %w", err)
	}
	s.fplan = cfg.Fault.Plan(cfg.Seed)
	s.faultCrash = s.fplan.Kind() == fault.Crash
	s.faultSleep = s.fplan.Kind() == fault.Sleep
	s.faultLoss = s.fplan.Kind() == fault.Loss
	s.idSpace = cfg.IDSpace
	if cfg.IDSpace > 0 {
		if cfg.IDs != nil {
			if len(cfg.IDs) != s.n {
				return fmt.Errorf("radio: %d IDs for %d vertices", len(cfg.IDs), s.n)
			}
			seen := make(map[int]bool, s.n)
			for _, id := range cfg.IDs {
				if id < 1 || id > cfg.IDSpace {
					return fmt.Errorf("radio: ID %d outside {1..%d}", id, cfg.IDSpace)
				}
				if seen[id] {
					return fmt.Errorf("radio: duplicate ID %d", id)
				}
				seen[id] = true
			}
			copy(s.ids, cfg.IDs)
		} else {
			if cfg.IDSpace < s.n {
				return fmt.Errorf("radio: IDSpace %d < n %d", cfg.IDSpace, s.n)
			}
			for i := range s.ids {
				s.ids[i] = i + 1
			}
		}
	} else {
		for i := range s.ids {
			s.ids[i] = 0
		}
	}
	return nil
}

// run resets all reusable state, installs the device population, and
// drives the scheduler loop to completion.
func (s *Simulator) run(cfg Config, devs []Device) (*Result, error) {
	if !s.running.CompareAndSwap(false, true) {
		return nil, errors.New("radio: Simulator used concurrently")
	}
	defer s.running.Store(false)
	res, err := s.prepare(cfg, devs)
	if err != nil {
		return nil, err
	}
	// A scheduler-side panic (e.g. a user Trace callback) must not
	// poison the Simulator for reuse: drop the run's references, then
	// let the panic surface.
	defer func() {
		if r := recover(); r != nil {
			s.finish()
			panic(r)
		}
	}()
	err = s.loop()
	s.finish()
	return res, err
}

// prepare validates one run's configuration and population and resets
// every reusable structure, leaving the Simulator ready for its first
// gather round. The returned Result is the run's output, already carved
// from the arena.
func (s *Simulator) prepare(cfg Config, devs []Device) (*Result, error) {
	if len(devs) != s.n {
		return nil, fmt.Errorf("radio: %d devices for %d vertices", len(devs), s.n)
	}
	for v := range devs {
		if devs[v].Proc == nil {
			return nil, fmt.Errorf("radio: device %d has no Proc", v)
		}
	}
	if err := s.bind(cfg); err != nil {
		return nil, err
	}
	n := s.n
	res := s.newResult()
	s.res = res
	s.heap = s.heap[:0]
	s.cohort = s.cohort[:0]
	s.awaiting = s.awaiting[:0]
	for v := 0; v < n; v++ {
		s.slots[v], s.kinds[v], s.payloads[v], s.fbs[v], s.errs[v] = 0, 0, nil, Feedback{}, nil
		s.lastTxSlot[v] = 0
		s.sleepUntil[v] = 0
		e := &s.envs[v]
		e.now = 0
		e.devID = s.ids[v]
		clearAny(e.pbuf)
		rng.ReseedChild(&s.pcgs[v], cfg.Seed, uint64(v))
		s.procs[v] = devs[v].Proc
		s.awaiting = append(s.awaiting, int32(v))
	}
	s.live = n
	s.firstErr = nil
	return res, nil
}

// finish drops the run's references so a recycled Simulator does not pin
// the previous run's result or device state machines.
func (s *Simulator) finish() {
	s.res = nil
	for v := range s.procs {
		s.procs[v] = nil
	}
}

// resultChunkBytes sizes the Result arena chunks: enough counter words
// for ~a hundred small-graph runs per allocation without any chunk
// growing past a quarter megabyte on large graphs.
const resultChunkBytes = 1 << 18

// newResult carves one run's Result — the struct and the single backing
// array for its three per-device counters — out of the Simulator's
// batch-allocated arena, refilling the arena with a fresh chunk when
// exhausted. Chunks are never recycled, so every carved region is
// untouched zero memory and every returned Result stays valid across
// later runs, exactly as the per-run make() did; the change is purely
// that the two allocations now happen once per chunk instead of once
// per run. Retaining one Result pins at most its chunk.
func (s *Simulator) newResult() *Result {
	n := s.n
	if len(s.resStructs) == 0 {
		batch := resultChunkBytes / (3 * n * 8)
		if batch < 1 {
			batch = 1
		}
		if batch > 128 {
			batch = 128
		}
		s.resArena = make([]int, 3*n*batch)
		s.resStructs = make([]Result, batch)
	}
	counters := s.resArena[: 3*n : 3*n]
	s.resArena = s.resArena[3*n:]
	res := &s.resStructs[0]
	s.resStructs = s.resStructs[1:]
	res.Energy = counters[0*n : 1*n : 1*n]
	res.Transmits = counters[1*n : 2*n : 2*n]
	res.Listens = counters[2*n : 3*n : 3*n]
	return res
}

// clearAny nils a payload buffer through its full capacity so a recycled
// Simulator does not pin the previous run's delivered messages.
func clearAny(buf []any) {
	buf = buf[:cap(buf)]
	for i := range buf {
		buf[i] = nil
	}
}

// loop is the scheduler: it steps every awaited device to its next
// channel action, advances to the minimum requested slot, resolves the
// channel there in ascending device order — the exact order the
// pre-batching engine used, which the golden trace test pins — and
// hands each cohort member its feedback for the next round's step.
//
// The two halves, gather and resolveSlot, are separate methods so a
// BatchSimulator can drive W lanes through the identical round sequence
// in lockstep, parking each lane between its gather and the moment the
// batch clock reaches its requested slot.
func (s *Simulator) loop() error {
	for {
		t, done := s.gather()
		if done {
			return s.firstErr
		}
		if err := s.resolveSlot(t); err != nil {
			return err
		}
	}
}

// gather steps every awaited device to its next channel action, retires
// halted devices, and selects the next populated slot and its cohort.
// done reports that every device has halted (the run's outcome is then
// s.firstErr); otherwise the returned slot's cohort is staged in
// s.cohort, ready for resolveSlot.
func (s *Simulator) gather() (t uint64, done bool) {
	// The awaiting list is in ascending device order (it is the previous
	// cohort, or all devices initially), so posted inherits that order.
	s.stepAwaited()
	heapWasEmpty := len(s.heap) == 0
	s.posted = s.posted[:0]
	minSlot, maxSlot := ^uint64(0), uint64(0)
	for _, v := range s.awaiting {
		if s.kinds[v] == actHalt {
			s.live--
			if s.errs[v] != nil && s.firstErr == nil {
				s.firstErr = s.errs[v]
			}
			s.errs[v] = nil
			continue
		}
		s.posted = append(s.posted, v)
		if s.slots[v] < minSlot {
			minSlot = s.slots[v]
		}
		if s.slots[v] > maxSlot {
			maxSlot = s.slots[v]
		}
	}
	s.awaiting = s.awaiting[:0]
	if s.live == 0 {
		return 0, true
	}
	if heapWasEmpty && minSlot == maxSlot {
		// Lockstep fast path: no pending future requests and every
		// live device asked for the same slot — the cohort is the
		// posted list itself (already ascending), no heap traffic.
		t = minSlot
		s.cohort = append(s.cohort[:0], s.posted...)
	} else {
		for _, v := range s.posted {
			s.heapPush(heapEntry{slot: s.slots[v], dev: v})
		}
		// The next populated slot is the heap minimum; pop its cohort
		// (ascending device order, by the heap tie-break).
		t = s.heap[0].slot
		s.cohort = s.cohort[:0]
		for len(s.heap) > 0 && s.heap[0].slot == t {
			s.cohort = append(s.cohort, s.heapPop().dev)
		}
	}
	return t, false
}

// resolveSlot resolves the gathered cohort at slot t: budget checks,
// energy accounting, trace emission and listener feedback, in ascending
// device order. The cohort is re-awaited for the next gather round.
func (s *Simulator) resolveSlot(t uint64) error {
	if t > s.maxSlots {
		return fmt.Errorf("%w: slot %d > MaxSlots %d", ErrBudget, t, s.maxSlots)
	}
	if t > s.res.Slots {
		s.res.Slots = t
	}
	// Inject crash and sleep faults before any action is recorded, so a
	// faulted device's transmit is never heard and its listen costs no
	// energy. Loss faults are injected per listener inside resolve.
	if s.faultCrash {
		s.injectCrashes(t)
	} else if s.faultSleep {
		s.injectSleeps(t)
	}
	// Record transmissions first so every listener sees them; payloads
	// stay parked in the transmitters' lane cells.
	for _, v := range s.cohort {
		k := s.kinds[v]
		if k == actTransmit || k == actTransmitListen {
			s.lastTxSlot[v] = t + 1
		}
	}
	// Account energy, emit traces, compute feedback — in device order.
	for _, v := range s.cohort {
		switch s.kinds[v] {
		case actTransmit:
			s.res.Energy[v]++
			s.res.Transmits[v]++
			s.res.Events++
			s.emit(Event{Slot: t, Dev: int(v), Kind: EventTransmit, Payload: s.payloads[v], From: -1})
		case actListen:
			s.res.Energy[v]++
			s.res.Listens[v]++
			s.res.Events++
			s.fbs[v] = s.resolve(v, t)
		case actTransmitListen:
			// Awake for one slot: energy 1 even though both action
			// counters advance (the paper charges per non-idle slot).
			s.res.Energy[v]++
			s.res.Transmits[v]++
			s.res.Listens[v]++
			s.res.Events += 2
			s.emit(Event{Slot: t, Dev: int(v), Kind: EventTransmit, Payload: s.payloads[v], From: -1})
			s.fbs[v] = s.resolve(v, t)
		}
		if s.res.Events > s.maxEvents {
			return fmt.Errorf("%w: events > MaxEvents %d", ErrBudget, s.maxEvents)
		}
	}
	// The slot is fully resolved: its payloads are dead. Clearing the
	// cells here is what makes a long-lived payload collectable
	// mid-run.
	for _, v := range s.cohort {
		s.payloads[v] = nil
	}
	// The cohort's feedback is in place; its members are stepped
	// again at the top of the next round.
	s.awaiting = append(s.awaiting, s.cohort...)
	return nil
}

// injectCrashes applies crash-stop faults to the slot-t cohort: a device
// whose positional hash fires is removed from the cohort (its action —
// transmit, listen, or both — simply never happens) and retired for the
// rest of the run, exactly like a halt but without an error. Compaction
// preserves the cohort's ascending device order, so the surviving round
// is resolved in the order a fault-free engine would use.
func (s *Simulator) injectCrashes(t uint64) {
	kept := s.cohort[:0]
	for _, v := range s.cohort {
		if s.fplan.Fires(v, t) {
			s.res.FaultCrashes++
			s.payloads[v] = nil
			s.live--
			continue
		}
		kept = append(kept, v)
	}
	s.cohort = kept
}

// injectSleeps applies sleep faults to the slot-t cohort: a device whose
// hash fires — or that is still inside an earlier window — has this
// slot's action suppressed (kinds set to actNone: no energy, transmit
// unheard, listen observes silence via its zeroed feedback). The device
// stays in the cohort and is re-awaited normally; it resumes acting once
// the window passes.
func (s *Simulator) injectSleeps(t uint64) {
	for _, v := range s.cohort {
		asleep := t < s.sleepUntil[v]
		if !asleep && s.fplan.Fires(v, t) {
			s.res.FaultSleeps++
			s.sleepUntil[v] = t + s.fplan.Window()
			asleep = true
		}
		if asleep {
			s.kinds[v] = actNone
		}
	}
}

// stepLimit bounds the consecutive actionless steps (sleeps) the
// scheduler will drive one device through before declaring it stuck —
// a backstop against a proc that keeps returning non-advancing sleeps,
// which would otherwise wedge the scheduler.
const stepLimit = 1 << 20

// stepAwaited advances every awaited device to its next channel action.
// The deferred panic handler is installed once per contiguous run of
// non-panicking devices rather than once per device step; a panicking
// device is halted with its error and stepping resumes with the next.
func (s *Simulator) stepAwaited() {
	for i := 0; i < len(s.awaiting); {
		i = s.stepFrom(i)
	}
}

// stepFrom steps awaiting[start:] in order, returning the index to
// resume from after a device panic (len(awaiting) when none panicked).
// A panic out of Step — including the slot-ordering violation the
// engine enforces — becomes the same halt-with-error outcome a device
// panic has always had.
func (s *Simulator) stepFrom(start int) (next int) {
	i := start
	defer func() {
		if r := recover(); r != nil {
			v := s.awaiting[i]
			s.kinds[v] = actHalt
			s.errs[v] = fmt.Errorf("radio: device %d panicked: %v", v, r)
			next = i + 1
		}
	}()
	for ; i < len(s.awaiting); i++ {
		s.stepDevice(s.awaiting[i])
	}
	return i
}

// stepDevice advances one proc until it produces a channel action or
// halts, publishing the result into the device's lane cells. Sleeps
// only move the device clock.
func (s *Simulator) stepDevice(v int32) {
	e := &s.envs[v]
	fb := s.fbs[v]
	s.fbs[v] = Feedback{}
	for i := 0; ; i++ {
		act := s.procs[v].Step(e, fb)
		fb = Feedback{}
		switch act.Kind {
		case ActSleep:
			if act.Slot > e.now {
				e.now = act.Slot
			}
			if i >= stepLimit {
				s.kinds[v] = actHalt
				s.errs[v] = fmt.Errorf("radio: device %d stepped %d times without a channel action", v, i)
				return
			}
		case ActHalt:
			s.kinds[v] = actHalt
			return
		case ActTransmit, ActListen, ActTransmitListen:
			if act.Slot <= e.now {
				panic(fmt.Sprintf("radio: device %d scheduled slot %d, but its clock is already at %d", v, act.Slot, e.now))
			}
			s.slots[v] = act.Slot
			s.payloads[v] = act.Payload
			switch act.Kind {
			case ActTransmit:
				s.kinds[v] = actTransmit
			case ActListen:
				s.kinds[v] = actListen
			default:
				s.kinds[v] = actTransmitListen
			}
			e.now = act.Slot
			return
		default:
			panic(fmt.Sprintf("radio: device %d returned invalid action kind %d", v, act.Kind))
		}
	}
}

func (s *Simulator) emit(ev Event) {
	if s.trace != nil {
		s.trace(ev)
	}
}

// resolve computes listener v's feedback at slot t, first applying any
// lossy-slot fault: when the listener's positional hash fires and the
// channel outcome would have been a delivery, the delivery is erased to
// silence (trace included). Noise and silence are not "successful
// transmissions", so they are never erased — a lossy CD slot still
// reports its collision.
func (s *Simulator) resolve(v int32, t uint64) Feedback {
	if s.faultLoss && s.fplan.Fires(v, t) && s.wouldReceive(v, t) {
		s.res.FaultErasures++
		s.emit(Event{Slot: t, Dev: int(v), Kind: EventSilence, From: -1})
		return Feedback{Status: Silence}
	}
	return s.resolveChannel(v, t)
}

// wouldReceive reports whether listener v's slot-t outcome would be
// Received under the run's model: at least one transmitting neighbor for
// CD* and Local, exactly one for CD and No-CD.
func (s *Simulator) wouldReceive(v int32, t uint64) bool {
	cnt := 0
	for _, w := range s.adj[s.off[v]:s.off[v+1]] {
		if s.lastTxSlot[w] == t+1 {
			cnt++
			if cnt >= 2 {
				break
			}
		}
	}
	if s.model == Local || s.model == CDStar {
		return cnt >= 1
	}
	return cnt == 1
}

// resolveChannel computes listener v's feedback at slot t under the
// run's model. Neighbors come from the CSR mirror and are sorted
// ascending by the graph invariant, so transmitter sets need no
// per-listener sort and the scan stops as soon as the model's outcome is
// decided: after the first transmitter for CD* (it delivers the
// lowest-index one), after the second for CD and No-CD (noise/silence
// either way). Single payloads resolve straight out of the transmitter's
// lane cell; the Local model fills the listener's reusable per-env
// buffer (valid until the device's next action).
func (s *Simulator) resolveChannel(v int32, t uint64) Feedback {
	need := 2 // CD and No-CD outcomes are fixed once two transmitters are seen
	switch s.model {
	case Local:
		need = int(^uint(0) >> 1)
	case CDStar:
		need = 1
	}
	txs := s.txs[:0]
	for _, w := range s.adj[s.off[v]:s.off[v+1]] {
		if s.lastTxSlot[w] == t+1 {
			txs = append(txs, w)
			if len(txs) >= need {
				break
			}
		}
	}
	s.txs = txs
	switch s.model {
	case Local:
		if len(txs) == 0 {
			s.emit(Event{Slot: t, Dev: int(v), Kind: EventSilence, From: -1})
			return Feedback{Status: Silence}
		}
		e := &s.envs[v]
		payloads := e.pbuf[:0]
		for _, w := range txs {
			p := s.payloads[w]
			payloads = append(payloads, p)
			s.emit(Event{Slot: t, Dev: int(v), Kind: EventReceive, Payload: p, From: int(w)})
		}
		// Nil the tail beyond this delivery so payloads from a larger
		// earlier delivery don't stay pinned by the buffer's backing
		// array (the previous slice is contractually invalid by now).
		clearAny(payloads[len(payloads):cap(payloads)])
		e.pbuf = payloads
		return Feedback{Status: Received, Payload: payloads[0], Payloads: payloads}
	case CDStar:
		if len(txs) == 0 {
			s.emit(Event{Slot: t, Dev: int(v), Kind: EventSilence, From: -1})
			return Feedback{Status: Silence}
		}
		w := txs[0] // arbitrary choice, fixed deterministically
		p := s.payloads[w]
		s.emit(Event{Slot: t, Dev: int(v), Kind: EventReceive, Payload: p, From: int(w)})
		return Feedback{Status: Received, Payload: p}
	case CD:
		switch len(txs) {
		case 0:
			s.emit(Event{Slot: t, Dev: int(v), Kind: EventSilence, From: -1})
			return Feedback{Status: Silence}
		case 1:
			w := txs[0]
			p := s.payloads[w]
			s.emit(Event{Slot: t, Dev: int(v), Kind: EventReceive, Payload: p, From: int(w)})
			return Feedback{Status: Received, Payload: p}
		default:
			s.emit(Event{Slot: t, Dev: int(v), Kind: EventNoise, From: -1})
			return Feedback{Status: Noise}
		}
	default: // NoCD
		if len(txs) == 1 {
			w := txs[0]
			p := s.payloads[w]
			s.emit(Event{Slot: t, Dev: int(v), Kind: EventReceive, Payload: p, From: int(w)})
			return Feedback{Status: Received, Payload: p}
		}
		s.emit(Event{Slot: t, Dev: int(v), Kind: EventSilence, From: -1})
		return Feedback{Status: Silence}
	}
}

// less orders entries by slot, breaking ties by device index so cohorts
// pop in ascending-device order — the deterministic order the engine has
// always used.
func (s *Simulator) less(a, b heapEntry) bool {
	if a.slot != b.slot {
		return a.slot < b.slot
	}
	return a.dev < b.dev
}

func (s *Simulator) heapPush(e heapEntry) {
	s.heap = append(s.heap, e)
	i := len(s.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(s.heap[i], s.heap[parent]) {
			break
		}
		s.heap[i], s.heap[parent] = s.heap[parent], s.heap[i]
		i = parent
	}
}

func (s *Simulator) heapPop() heapEntry {
	top := s.heap[0]
	last := len(s.heap) - 1
	s.heap[0] = s.heap[last]
	s.heap = s.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(s.heap) && s.less(s.heap[l], s.heap[smallest]) {
			smallest = l
		}
		if r < len(s.heap) && s.less(s.heap[r], s.heap[smallest]) {
			smallest = r
		}
		if smallest == i {
			return top
		}
		s.heap[i], s.heap[smallest] = s.heap[smallest], s.heap[i]
		i = smallest
	}
}

// internCap bounds the boxed-integer interning table: values in
// [0, internCap) are boxed at most once per Simulator lifetime, larger
// or negative values fall back to a plain (allocating) conversion.
const internCap = 1 << 16

// BoxInt returns v boxed as an `any` without a per-call heap allocation
// when ch is a physical Env: the box is served from the simulator's
// interning table, grown lazily and filled once per distinct value.
// Boxed integers are immutable, so handing the same box to every
// listener — and reusing it across runs of a recycled Simulator — is
// safe. On a virtual channel it falls back to the ordinary conversion,
// so protocol code can call it unconditionally.
func BoxInt(ch Channel, v int) any {
	if e, ok := ch.(*Env); ok {
		return e.sim.boxInt(v)
	}
	return v
}

// boxInt serves v from the interning table. Scheduler goroutine only.
func (s *Simulator) boxInt(v int) any {
	if v < 0 || v >= internCap {
		return v
	}
	if v >= len(s.intBox) {
		newLen := len(s.intBox)
		if newLen == 0 {
			newLen = 256
		}
		for newLen <= v {
			newLen *= 2
		}
		if newLen > internCap {
			newLen = internCap
		}
		grown := make([]any, newLen)
		copy(grown, s.intBox)
		s.intBox = grown
	}
	if s.intBox[v] == nil {
		s.intBox[v] = v
	}
	return s.intBox[v]
}

// simCacheCap bounds a SimCache's MRU list. Sweep cells run many trials
// on one long-lived graph (a guaranteed hit) while some algorithms build
// short-lived derived graphs per trial; a small cap lets the hot graph
// stay resident without the derived ones accumulating.
const simCacheCap = 4

// SimCache reuses Simulators across runs, keyed by graph identity. It is
// NOT safe for concurrent use — keep one per worker goroutine (as
// internal/sweep does) and thread it through Config.Sims; RunDevices
// then serves same-graph runs from the cache instead of rebuilding envs,
// random streams, and scheduler scratch per run.
type SimCache struct {
	sims    []*Simulator      // MRU order, most recent first
	batches []*BatchSimulator // MRU order, most recent first
	stats   CacheStats
}

// CacheStats counts a SimCache's lookups, split by MRU list. A hit
// serves the run from a resident simulator; a miss pays a full
// NewSimulator/NewBatchSimulator build. Plain (non-atomic) counters:
// the cache itself is single-goroutine, and telemetry publishes a copy.
type CacheStats struct {
	SoloHits    uint64
	SoloMisses  uint64
	BatchHits   uint64
	BatchMisses uint64
}

// Stats returns the cache's lookup counters so far.
func (c *SimCache) Stats() CacheStats { return c.stats }

// get returns the cached Simulator for g, creating and caching it on a
// miss (evicting the least recently used entry beyond the cap).
func (c *SimCache) get(g *graph.Graph) (*Simulator, error) {
	for i, s := range c.sims {
		if s.g == g {
			if i != 0 {
				copy(c.sims[1:i+1], c.sims[:i])
				c.sims[0] = s
			}
			c.stats.SoloHits++
			return s, nil
		}
	}
	c.stats.SoloMisses++
	s, err := NewSimulator(g, Config{Graph: g})
	if err != nil {
		return nil, err
	}
	c.sims = append(c.sims, nil)
	copy(c.sims[1:], c.sims)
	c.sims[0] = s
	if len(c.sims) > simCacheCap {
		c.sims = c.sims[:simCacheCap]
	}
	return s, nil
}

// getBatch returns the cached BatchSimulator for g, creating and
// caching it on a miss (same MRU policy as get, separate list: a cell's
// batched trials and an algorithm's solo derived-graph runs do not
// evict each other).
func (c *SimCache) getBatch(g *graph.Graph) (*BatchSimulator, error) {
	for i, b := range c.batches {
		if b.g == g {
			if i != 0 {
				copy(c.batches[1:i+1], c.batches[:i])
				c.batches[0] = b
			}
			c.stats.BatchHits++
			return b, nil
		}
	}
	c.stats.BatchMisses++
	b, err := NewBatchSimulator(g)
	if err != nil {
		return nil, err
	}
	c.batches = append(c.batches, nil)
	copy(c.batches[1:], c.batches)
	c.batches[0] = b
	if len(c.batches) > simCacheCap {
		c.batches = c.batches[:simCacheCap]
	}
	return b, nil
}

// Len reports the number of cached simulators (for tests).
func (c *SimCache) Len() int { return len(c.sims) }
