package radio

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/rng"
)

// sema is a strict binary handoff semaphore. The engine's protocol
// signals and waits in strict alternation (at most one signal is ever
// outstanding), so a one-slot buffer is exactly a binary semaphore: wait
// parks until the pending signal arrives, signal never blocks.
//
// The implementation is a cap-1 channel rather than a locked sync.Mutex
// because the mutex slow path pays two runtime_nanotime calls per park
// for starvation accounting — measurably slower on machines with an
// expensive clocksource — while the buffered-channel park/unpark path
// touches no clock. What makes the engine "channel-free" is the handoff
// protocol, not the parking primitive: requests flow through mailboxes
// with one atomic counter decrement per action and one batched cohort
// release, instead of two rendezvous through a shared unbuffered request
// channel plus per-device response channels.
type sema struct{ ch chan struct{} }

func newSema() sema { return sema{ch: make(chan struct{}, 1)} }

// reset drains any stray signal a previous aborted run may have left
// behind, restoring the empty state.
func (s *sema) reset() {
	select {
	case <-s.ch:
	default:
	}
}
func (s *sema) wait()   { <-s.ch }
func (s *sema) signal() { s.ch <- struct{}{} }

// mailbox is the per-device communication cell between a device goroutine
// and the scheduler. The device owns it from release to post; the
// scheduler owns it from post to release. The payload field doubles as
// the run-local message cell of the payload-interning scheme: a transmit
// parks its boxed payload here, listeners resolve it at delivery, and the
// scheduler clears the cell as soon as the cohort's slot is fully
// resolved — so payloads are never retained past their transmission slot
// (the old engine's lastTxMsg array pinned them for the whole run).
//
// The struct is padded to 128 bytes so adjacent devices' semaphores never
// share a cache line.
type mailbox struct {
	slot    uint64
	kind    actionKind
	err     error    // actHalt: device panic, if any
	payload any      // in-flight transmit payload (cleared per slot)
	fb      Feedback // scheduler -> device feedback
	sem     sema     // device parks here awaiting feedback
	_       [24]byte
}

// heapEntry is one pending device in the slot-ordered min-heap. Each
// device has at most one pending request, so the heap never exceeds n.
type heapEntry struct {
	slot uint64
	dev  int32
}

// Simulator is a reusable execution engine bound to one topology. It
// preallocates every per-device structure — envs, mailboxes, random
// streams, the scheduler heap and scratch — once, so that repeated Run
// calls on the same graph (Monte-Carlo trials, benchmark iterations)
// stop churning the allocator: a run allocates one Result and its
// counter backing array, nothing else.
//
// A Simulator is NOT safe for concurrent use; run one per goroutine
// (internal/sweep keeps one cache per worker). Determinism is untouched
// by reuse: every Run fully reseeds and resets the per-device state, so
// Run(seed, p) yields the byte-identical event stream whether the
// Simulator is fresh or recycled.
type Simulator struct {
	g      *graph.Graph
	off    []int32 // CSR row offsets, shared with g
	adj    []int32 // CSR neighbor array, shared with g
	n      int
	maxDeg int
	base   Config // template captured by NewSimulator (Seed overridden per Run)

	// diameter cache for Config.KnowDiameter runs.
	diamComputed bool
	diamCached   int
	diamErr      error

	// per-run binding (scalars from the run's Config).
	model     Model
	trace     func(Event)
	maxSlots  uint64
	maxEvents uint64
	diam      int // exposed to devices; -1 when unknown
	idSpace   int
	ids       []int

	// preallocated machinery.
	mail       []mailbox
	envs       []Env
	pcgs       []rand.PCG
	heap       []heapEntry
	cohort     []int32
	posted     []int32 // per-round scratch: non-halt posts, ascending device order
	awaiting   []int32 // devices whose next action the scheduler is waiting on
	txs        []int32 // per-listener scratch: transmitting neighbors
	lastTxSlot []uint64
	halted     []bool
	procs      []Proc // per-run: inline step procs (nil = goroutine-backed)
	intBox     []any  // lazily grown boxed-integer interning table (BoxInt)

	outstanding atomic.Int64 // awaited devices that have not yet posted
	schedSem    sema
	aborted     atomic.Bool
	running     atomic.Bool
	wg          sync.WaitGroup

	res *Result // current run's result, owned by the scheduler loop

	// Result arena: per-run Results and their counter backing arrays are
	// carved out of batch-allocated chunks (see newResult), amortizing
	// the two per-run allocations a recycled Simulator used to make
	// across ~a chunk's worth of Monte-Carlo trials.
	resArena   []int
	resStructs []Result
}

// NewSimulator builds a reusable engine for g. cfg provides the run
// template: model, budgets, diameter/ID exposure, and trace sink; its
// Graph field is ignored in favor of g and its Seed is overridden by
// each Run call. The per-run scalars can also be rebound wholesale by
// the package-level Run with a SimCache.
func NewSimulator(g *graph.Graph, cfg Config) (*Simulator, error) {
	if g == nil || g.N() == 0 {
		return nil, errors.New("radio: nil or empty graph")
	}
	n := g.N()
	off, adj := g.CSR()
	s := &Simulator{
		g:          g,
		off:        off,
		adj:        adj,
		n:          n,
		maxDeg:     g.MaxDegree(),
		base:       cfg,
		ids:        make([]int, n),
		mail:       make([]mailbox, n),
		envs:       make([]Env, n),
		pcgs:       make([]rand.PCG, n),
		heap:       make([]heapEntry, 0, n),
		cohort:     make([]int32, 0, n),
		posted:     make([]int32, 0, n),
		awaiting:   make([]int32, 0, n),
		txs:        make([]int32, 0, 8),
		lastTxSlot: make([]uint64, n),
		halted:     make([]bool, n),
		procs:      make([]Proc, n),
	}
	s.base.Graph = g
	s.schedSem = newSema()
	for v := 0; v < n; v++ {
		s.mail[v].sem = newSema()
		s.envs[v] = Env{
			sim:   s,
			mail:  &s.mail[v],
			index: v,
			rand:  rand.New(&s.pcgs[v]),
		}
	}
	return s, nil
}

// Run executes one blocking program per vertex under the Simulator's
// template config with the given seed, reusing every preallocated
// structure. The returned Result is freshly allocated and remains valid
// across later runs. Feedback lifetime contract: in the Local model the
// Payloads slice handed to a device is a per-device buffer valid until
// that device's next channel action — copy it to retain it.
func (s *Simulator) Run(seed uint64, programs []Program) (*Result, error) {
	return s.RunDevices(seed, Programs(programs))
}

// RunDevices executes one device per vertex — inline step procs on the
// scheduler goroutine, blocking programs on their own goroutines —
// under the Simulator's template config with the given seed. Procs are
// single-use state machines: pass freshly initialized ones per run.
func (s *Simulator) RunDevices(seed uint64, devs []Device) (*Result, error) {
	cfg := s.base
	cfg.Seed = seed
	return s.run(cfg, devs)
}

// bind installs one run's scalar configuration, validating exactly as the
// original one-shot engine did.
func (s *Simulator) bind(cfg Config) error {
	s.model = cfg.Model
	s.trace = cfg.Trace
	s.maxSlots = cfg.MaxSlots
	if s.maxSlots == 0 {
		s.maxSlots = 1 << 40
	}
	s.maxEvents = cfg.MaxEvents
	if s.maxEvents == 0 {
		s.maxEvents = 1 << 28
	}
	s.diam = -1
	if cfg.KnowDiameter {
		d := cfg.Diameter
		if d == 0 {
			if !s.diamComputed {
				s.diamCached, s.diamErr = s.g.Diameter()
				s.diamComputed = true
			}
			if s.diamErr != nil {
				return fmt.Errorf("radio: KnowDiameter: %w", s.diamErr)
			}
			d = s.diamCached
		}
		s.diam = d
	}
	s.idSpace = cfg.IDSpace
	if cfg.IDSpace > 0 {
		if cfg.IDs != nil {
			if len(cfg.IDs) != s.n {
				return fmt.Errorf("radio: %d IDs for %d vertices", len(cfg.IDs), s.n)
			}
			seen := make(map[int]bool, s.n)
			for _, id := range cfg.IDs {
				if id < 1 || id > cfg.IDSpace {
					return fmt.Errorf("radio: ID %d outside {1..%d}", id, cfg.IDSpace)
				}
				if seen[id] {
					return fmt.Errorf("radio: duplicate ID %d", id)
				}
				seen[id] = true
			}
			copy(s.ids, cfg.IDs)
		} else {
			if cfg.IDSpace < s.n {
				return fmt.Errorf("radio: IDSpace %d < n %d", cfg.IDSpace, s.n)
			}
			for i := range s.ids {
				s.ids[i] = i + 1
			}
		}
	} else {
		for i := range s.ids {
			s.ids[i] = 0
		}
	}
	return nil
}

// run resets all reusable state, installs the device population —
// spawning goroutines only for blocking programs — and drives the
// scheduler loop to completion.
func (s *Simulator) run(cfg Config, devs []Device) (*Result, error) {
	if len(devs) != s.n {
		return nil, fmt.Errorf("radio: %d devices for %d vertices", len(devs), s.n)
	}
	for v := range devs {
		if devs[v].Proc == nil && devs[v].Program == nil {
			return nil, fmt.Errorf("radio: device %d has neither Proc nor Program", v)
		}
	}
	if !s.running.CompareAndSwap(false, true) {
		return nil, errors.New("radio: Simulator used concurrently")
	}
	defer s.running.Store(false)
	if err := s.bind(cfg); err != nil {
		return nil, err
	}
	n := s.n
	res := s.newResult()
	s.res = res
	s.aborted.Store(false)
	s.heap = s.heap[:0]
	s.cohort = s.cohort[:0]
	s.awaiting = s.awaiting[:0]
	s.schedSem.reset()
	goroutines := 0
	for v := 0; v < n; v++ {
		m := &s.mail[v]
		m.slot, m.kind, m.err, m.payload, m.fb = 0, 0, nil, nil, Feedback{}
		m.sem.reset()
		s.halted[v] = false
		s.lastTxSlot[v] = 0
		e := &s.envs[v]
		e.now = 0
		e.devID = s.ids[v]
		clearAny(e.pbuf)
		rng.ReseedChild(&s.pcgs[v], cfg.Seed, uint64(v))
		s.procs[v] = devs[v].Proc
		if devs[v].Proc == nil {
			goroutines++
		}
		s.awaiting = append(s.awaiting, int32(v))
	}
	s.outstanding.Store(int64(goroutines))
	s.wg.Add(goroutines)
	for v := 0; v < n; v++ {
		if s.procs[v] == nil {
			go s.device(int32(v), devs[v].Program)
		}
	}
	// A scheduler-side panic (e.g. a user Trace callback) must not strand
	// parked devices or poison the Simulator for reuse: release everyone,
	// drain the goroutines, then let the panic surface — the equivalent
	// of the old engine's deferred abort-channel close.
	defer func() {
		if r := recover(); r != nil {
			s.abort()
			s.wg.Wait()
			s.res = nil
			panic(r)
		}
	}()
	err := s.loop(goroutines)
	s.wg.Wait()
	s.res = nil
	// Drop the proc references so a recycled Simulator does not pin the
	// previous run's device state machines.
	for v := range s.procs {
		s.procs[v] = nil
	}
	return res, err
}

// resultChunkBytes sizes the Result arena chunks: enough counter words
// for ~a hundred small-graph runs per allocation without any chunk
// growing past a quarter megabyte on large graphs.
const resultChunkBytes = 1 << 18

// newResult carves one run's Result — the struct and the single backing
// array for its three per-device counters — out of the Simulator's
// batch-allocated arena, refilling the arena with a fresh chunk when
// exhausted. Chunks are never recycled, so every carved region is
// untouched zero memory and every returned Result stays valid across
// later runs, exactly as the per-run make() did; the change is purely
// that the two allocations now happen once per chunk instead of once
// per run. Retaining one Result pins at most its chunk.
func (s *Simulator) newResult() *Result {
	n := s.n
	if len(s.resStructs) == 0 {
		batch := resultChunkBytes / (3 * n * 8)
		if batch < 1 {
			batch = 1
		}
		if batch > 128 {
			batch = 128
		}
		s.resArena = make([]int, 3*n*batch)
		s.resStructs = make([]Result, batch)
	}
	counters := s.resArena[: 3*n : 3*n]
	s.resArena = s.resArena[3*n:]
	res := &s.resStructs[0]
	s.resStructs = s.resStructs[1:]
	res.Energy = counters[0*n : 1*n : 1*n]
	res.Transmits = counters[1*n : 2*n : 2*n]
	res.Listens = counters[2*n : 3*n : 3*n]
	return res
}

// clearAny nils a payload buffer through its full capacity so a recycled
// Simulator does not pin the previous run's delivered messages.
func clearAny(buf []any) {
	buf = buf[:cap(buf)]
	for i := range buf {
		buf[i] = nil
	}
}

// device is the goroutine wrapper around one Program: it converts panics
// into the halt protocol and guarantees a halt post on every non-aborted
// exit path.
func (s *Simulator) device(v int32, prog Program) {
	defer s.wg.Done()
	var devErr error
	defer func() {
		if r := recover(); r != nil {
			switch r {
			case errAborted:
				// Scheduler already gave up on us; just exit.
				return
			case errExit:
				// Voluntary exit: fall through to halt.
			default:
				devErr = fmt.Errorf("radio: device %d panicked: %v", v, r)
			}
		}
		if s.aborted.Load() {
			return
		}
		m := &s.mail[v]
		m.kind = actHalt
		m.err = devErr
		s.post()
	}()
	prog(&s.envs[v])
}

// post publishes the device's mailbox to the scheduler: one atomic
// decrement, plus a single scheduler wake when this was the last awaited
// device. The mailbox write happens-before the decrement, and the
// zero-crossing signal happens-before the scheduler's wake, so the
// scheduler reads fully published mailboxes.
func (s *Simulator) post() {
	if s.outstanding.Add(-1) == 0 {
		s.schedSem.signal()
	}
}

// abort marks the run dead and wakes every live goroutine-backed device
// exactly once (inline procs have no goroutine to release). It is only
// called between a completed gather and the next cohort release, when
// every non-halted goroutine device has posted and is parked (or about
// to park) on its own semaphore — so a single signal per device
// suffices and no device will post again afterwards. Idempotent: a
// second call (budget abort followed by a panic unwind) must not
// double-signal.
func (s *Simulator) abort() {
	if !s.aborted.CompareAndSwap(false, true) {
		return
	}
	for v := 0; v < s.n; v++ {
		if !s.halted[v] && s.procs[v] == nil {
			s.mail[v].sem.signal()
		}
	}
}

// loop is the scheduler: it collects every awaited device's next action
// — stepping inline procs directly on this goroutine, then sleeping
// until the goroutine-backed stragglers have posted (one semaphore wait
// per cohort, not per action; none at all in an all-proc run) —
// advances to the minimum requested slot, resolves the channel there in
// ascending device order — the exact order the pre-batching engine used,
// which the golden trace test pins — and then releases the whole
// cohort's feedback in one batched wake. gAwait counts the
// goroutine-backed devices among the awaited cohort.
func (s *Simulator) loop(gAwait int) error {
	live := s.n
	var firstErr error
	for {
		// Gather. The awaiting list is in ascending device order (it is
		// the previous cohort, or all devices initially), so posted
		// inherits that order. Inline procs are stepped first — their
		// actions are computed right here, overlapping any goroutine
		// devices still publishing theirs — then one park covers the
		// whole round's stragglers.
		for _, v := range s.awaiting {
			if s.procs[v] != nil {
				s.stepDevice(v)
			}
		}
		if gAwait > 0 {
			s.schedSem.wait()
		}
		heapWasEmpty := len(s.heap) == 0
		s.posted = s.posted[:0]
		minSlot, maxSlot := ^uint64(0), uint64(0)
		for _, v := range s.awaiting {
			m := &s.mail[v]
			if m.kind == actHalt {
				live--
				s.halted[v] = true
				if m.err != nil && firstErr == nil {
					firstErr = m.err
				}
				m.err = nil
				continue
			}
			s.posted = append(s.posted, v)
			if m.slot < minSlot {
				minSlot = m.slot
			}
			if m.slot > maxSlot {
				maxSlot = m.slot
			}
		}
		s.awaiting = s.awaiting[:0]
		if live == 0 {
			return firstErr
		}
		var t uint64
		if heapWasEmpty && minSlot == maxSlot {
			// Lockstep fast path: no pending future requests and every
			// live device asked for the same slot — the cohort is the
			// posted list itself (already ascending), no heap traffic.
			t = minSlot
			s.cohort = append(s.cohort[:0], s.posted...)
		} else {
			for _, v := range s.posted {
				s.heapPush(heapEntry{slot: s.mail[v].slot, dev: v})
			}
			// The next populated slot is the heap minimum; pop its cohort
			// (ascending device order, by the heap tie-break).
			t = s.heap[0].slot
			s.cohort = s.cohort[:0]
			for len(s.heap) > 0 && s.heap[0].slot == t {
				s.cohort = append(s.cohort, s.heapPop().dev)
			}
		}
		if t > s.maxSlots {
			s.abort()
			return fmt.Errorf("%w: slot %d > MaxSlots %d", ErrBudget, t, s.maxSlots)
		}
		if t > s.res.Slots {
			s.res.Slots = t
		}
		// Record transmissions first so every listener sees them; payloads
		// stay parked in the transmitters' mailbox cells.
		for _, v := range s.cohort {
			k := s.mail[v].kind
			if k == actTransmit || k == actTransmitListen {
				s.lastTxSlot[v] = t + 1
			}
		}
		// Account energy, emit traces, compute feedback — in device order.
		for _, v := range s.cohort {
			m := &s.mail[v]
			switch m.kind {
			case actTransmit:
				s.res.Energy[v]++
				s.res.Transmits[v]++
				s.res.Events++
				s.emit(Event{Slot: t, Dev: int(v), Kind: EventTransmit, Payload: m.payload, From: -1})
			case actListen:
				s.res.Energy[v]++
				s.res.Listens[v]++
				s.res.Events++
				m.fb = s.resolve(v, t)
			case actTransmitListen:
				// Awake for one slot: energy 1 even though both action
				// counters advance (the paper charges per non-idle slot).
				s.res.Energy[v]++
				s.res.Transmits[v]++
				s.res.Listens[v]++
				s.res.Events += 2
				s.emit(Event{Slot: t, Dev: int(v), Kind: EventTransmit, Payload: m.payload, From: -1})
				m.fb = s.resolve(v, t)
			}
			if s.res.Events > s.maxEvents {
				s.abort()
				return fmt.Errorf("%w: events > MaxEvents %d", ErrBudget, s.maxEvents)
			}
		}
		// The slot is fully resolved: its payloads are dead. Clearing the
		// cells here (before the wake) is what makes a long-lived payload
		// collectable mid-run.
		for _, v := range s.cohort {
			s.mail[v].payload = nil
		}
		// Batched wake: all feedback is in place, release the cohort.
		// Inline procs need no wake — their feedback sits in the mailbox
		// until the next gather steps them; only goroutine-backed devices
		// are counted outstanding and signalled.
		s.awaiting = append(s.awaiting, s.cohort...)
		gAwait = 0
		for _, v := range s.cohort {
			if s.procs[v] == nil {
				gAwait++
			}
		}
		if gAwait > 0 {
			s.outstanding.Add(int64(gAwait))
			for _, v := range s.cohort {
				if s.procs[v] == nil {
					s.mail[v].sem.signal()
				}
			}
		}
	}
}

// stepLimit bounds the consecutive actionless steps (sleeps) the
// scheduler will drive one device through before declaring it stuck —
// a backstop against a proc that keeps returning non-advancing sleeps,
// which in the blocking ABI would be an ordinary infinite loop on the
// device's own goroutine but here would wedge the scheduler.
const stepLimit = 1 << 20

// stepDevice advances one inline proc until it produces a channel
// action or halts, publishing the result into the device's mailbox
// exactly as a goroutine device's post would. Sleeps only move the
// device clock. Panics out of Step — including Env.Exit and the
// slot-ordering violation the blocking ABI also enforces — become the
// same halt-with-error protocol the goroutine wrapper uses.
func (s *Simulator) stepDevice(v int32) {
	m := &s.mail[v]
	e := &s.envs[v]
	fb := m.fb
	m.fb = Feedback{}
	halted := false
	var devErr error
	func() {
		defer func() {
			if r := recover(); r != nil {
				halted = true
				if r != errExit {
					devErr = fmt.Errorf("radio: device %d panicked: %v", v, r)
				}
			}
		}()
		for i := 0; ; i++ {
			act := s.procs[v].Step(e, fb)
			fb = Feedback{}
			switch act.Kind {
			case ActSleep:
				if act.Slot > e.now {
					e.now = act.Slot
				}
				if i >= stepLimit {
					halted = true
					devErr = fmt.Errorf("radio: device %d stepped %d times without a channel action", v, i)
					return
				}
			case ActHalt:
				halted = true
				return
			case ActTransmit, ActListen, ActTransmitListen:
				if act.Slot <= e.now {
					panic(fmt.Sprintf("radio: device %d scheduled slot %d, but its clock is already at %d", v, act.Slot, e.now))
				}
				m.slot = act.Slot
				m.payload = act.Payload
				switch act.Kind {
				case ActTransmit:
					m.kind = actTransmit
				case ActListen:
					m.kind = actListen
				default:
					m.kind = actTransmitListen
				}
				e.now = act.Slot
				return
			default:
				panic(fmt.Sprintf("radio: device %d returned invalid action kind %d", v, act.Kind))
			}
		}
	}()
	if halted {
		m.kind = actHalt
		m.err = devErr
	}
}

func (s *Simulator) emit(ev Event) {
	if s.trace != nil {
		s.trace(ev)
	}
}

// resolve computes listener v's feedback at slot t under the run's model.
// Neighbors come from the CSR mirror and are sorted ascending by the
// graph invariant, so transmitter sets need no per-listener sort and the
// scan stops as soon as the model's outcome is decided: after the first
// transmitter for CD* (it delivers the lowest-index one), after the
// second for CD and No-CD (noise/silence either way). Single payloads
// resolve straight out of the transmitter's mailbox cell; the Local
// model fills the listener's reusable per-env buffer (valid until the
// device's next action).
func (s *Simulator) resolve(v int32, t uint64) Feedback {
	need := 2 // CD and No-CD outcomes are fixed once two transmitters are seen
	switch s.model {
	case Local:
		need = int(^uint(0) >> 1)
	case CDStar:
		need = 1
	}
	txs := s.txs[:0]
	for _, w := range s.adj[s.off[v]:s.off[v+1]] {
		if s.lastTxSlot[w] == t+1 {
			txs = append(txs, w)
			if len(txs) >= need {
				break
			}
		}
	}
	s.txs = txs
	switch s.model {
	case Local:
		if len(txs) == 0 {
			s.emit(Event{Slot: t, Dev: int(v), Kind: EventSilence, From: -1})
			return Feedback{Status: Silence}
		}
		e := &s.envs[v]
		payloads := e.pbuf[:0]
		for _, w := range txs {
			p := s.mail[w].payload
			payloads = append(payloads, p)
			s.emit(Event{Slot: t, Dev: int(v), Kind: EventReceive, Payload: p, From: int(w)})
		}
		// Nil the tail beyond this delivery so payloads from a larger
		// earlier delivery don't stay pinned by the buffer's backing
		// array (the previous slice is contractually invalid by now).
		clearAny(payloads[len(payloads):cap(payloads)])
		e.pbuf = payloads
		return Feedback{Status: Received, Payload: payloads[0], Payloads: payloads}
	case CDStar:
		if len(txs) == 0 {
			s.emit(Event{Slot: t, Dev: int(v), Kind: EventSilence, From: -1})
			return Feedback{Status: Silence}
		}
		w := txs[0] // arbitrary choice, fixed deterministically
		p := s.mail[w].payload
		s.emit(Event{Slot: t, Dev: int(v), Kind: EventReceive, Payload: p, From: int(w)})
		return Feedback{Status: Received, Payload: p}
	case CD:
		switch len(txs) {
		case 0:
			s.emit(Event{Slot: t, Dev: int(v), Kind: EventSilence, From: -1})
			return Feedback{Status: Silence}
		case 1:
			w := txs[0]
			p := s.mail[w].payload
			s.emit(Event{Slot: t, Dev: int(v), Kind: EventReceive, Payload: p, From: int(w)})
			return Feedback{Status: Received, Payload: p}
		default:
			s.emit(Event{Slot: t, Dev: int(v), Kind: EventNoise, From: -1})
			return Feedback{Status: Noise}
		}
	default: // NoCD
		if len(txs) == 1 {
			w := txs[0]
			p := s.mail[w].payload
			s.emit(Event{Slot: t, Dev: int(v), Kind: EventReceive, Payload: p, From: int(w)})
			return Feedback{Status: Received, Payload: p}
		}
		s.emit(Event{Slot: t, Dev: int(v), Kind: EventSilence, From: -1})
		return Feedback{Status: Silence}
	}
}

// less orders entries by slot, breaking ties by device index so cohorts
// pop in ascending-device order — the deterministic order the engine has
// always used.
func (s *Simulator) less(a, b heapEntry) bool {
	if a.slot != b.slot {
		return a.slot < b.slot
	}
	return a.dev < b.dev
}

func (s *Simulator) heapPush(e heapEntry) {
	s.heap = append(s.heap, e)
	i := len(s.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(s.heap[i], s.heap[parent]) {
			break
		}
		s.heap[i], s.heap[parent] = s.heap[parent], s.heap[i]
		i = parent
	}
}

func (s *Simulator) heapPop() heapEntry {
	top := s.heap[0]
	last := len(s.heap) - 1
	s.heap[0] = s.heap[last]
	s.heap = s.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(s.heap) && s.less(s.heap[l], s.heap[smallest]) {
			smallest = l
		}
		if r < len(s.heap) && s.less(s.heap[r], s.heap[smallest]) {
			smallest = r
		}
		if smallest == i {
			return top
		}
		s.heap[i], s.heap[smallest] = s.heap[smallest], s.heap[i]
		i = smallest
	}
}

// internCap bounds the boxed-integer interning table: values in
// [0, internCap) are boxed at most once per Simulator lifetime, larger
// or negative values fall back to a plain (allocating) conversion.
const internCap = 1 << 16

// BoxInt returns v boxed as an `any` without a per-call heap
// allocation when ch is a physical Env driven as an inline proc: the
// box is served from the simulator's interning table, grown lazily and
// filled once per distinct value. Boxed integers are immutable, so
// handing the same box to every listener — and reusing it across runs
// of a recycled Simulator — is safe. In any other context (blocking
// programs, which run concurrently and would race on the table, or
// virtual channels) it falls back to the ordinary conversion, so
// protocol code can call it unconditionally.
//
// This is the non-constant-payload fix for the Sparse scheduler bench:
// a device transmitting a fresh small integer every action previously
// paid one 8-byte heap allocation per transmit at the conversion site.
func BoxInt(ch Channel, v int) any {
	if e, ok := ch.(*Env); ok && e.sim.procs[e.index] != nil {
		return e.sim.boxInt(v)
	}
	return v
}

// boxInt serves v from the interning table. Scheduler goroutine only.
func (s *Simulator) boxInt(v int) any {
	if v < 0 || v >= internCap {
		return v
	}
	if v >= len(s.intBox) {
		newLen := len(s.intBox)
		if newLen == 0 {
			newLen = 256
		}
		for newLen <= v {
			newLen *= 2
		}
		if newLen > internCap {
			newLen = internCap
		}
		grown := make([]any, newLen)
		copy(grown, s.intBox)
		s.intBox = grown
	}
	if s.intBox[v] == nil {
		s.intBox[v] = v
	}
	return s.intBox[v]
}

// simCacheCap bounds a SimCache's MRU list. Sweep cells run many trials
// on one long-lived graph (a guaranteed hit) while some algorithms build
// short-lived derived graphs per trial; a small cap lets the hot graph
// stay resident without the derived ones accumulating.
const simCacheCap = 4

// SimCache reuses Simulators across runs, keyed by graph identity. It is
// NOT safe for concurrent use — keep one per worker goroutine (as
// internal/sweep does) and thread it through Config.Sims; radio.Run then
// serves same-graph runs from the cache instead of rebuilding envs,
// random streams, and scheduler scratch per run.
type SimCache struct {
	sims []*Simulator // MRU order, most recent first
}

// get returns the cached Simulator for g, creating and caching it on a
// miss (evicting the least recently used entry beyond the cap).
func (c *SimCache) get(g *graph.Graph) (*Simulator, error) {
	for i, s := range c.sims {
		if s.g == g {
			if i != 0 {
				copy(c.sims[1:i+1], c.sims[:i])
				c.sims[0] = s
			}
			return s, nil
		}
	}
	s, err := NewSimulator(g, Config{Graph: g})
	if err != nil {
		return nil, err
	}
	c.sims = append(c.sims, nil)
	copy(c.sims[1:], c.sims)
	c.sims[0] = s
	if len(c.sims) > simCacheCap {
		c.sims = c.sims[:simCacheCap]
	}
	return s, nil
}

// Len reports the number of cached simulators (for tests).
func (c *SimCache) Len() int { return len(c.sims) }
