package radio

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/graph"
)

// laneState tracks where one batch lane is in its scheduler round.
type laneState uint8

const (
	laneGather laneState = iota // needs its next gather round
	laneParked                  // gathered; waiting for the batch clock
	laneDone                    // run ended (halt, budget, or prepare error)
)

// BatchSimulator advances W independent same-graph trials ("lanes") in
// lockstep on one goroutine. Every lane is a full Simulator sharing the
// graph's CSR adjacency; the batch driver interleaves their scheduler
// rounds by global slot time, so the W trials sweep the same adjacency
// rows and slot range together instead of W cold passes in sequence.
//
// Each lane executes exactly the round sequence a solo Simulator.run
// would: prepare, then alternating gather / resolveSlot calls where
// every resolveSlot receives the lane's own gathered slot (a lane is
// resolved only when the batch clock reaches its pending slot). Lane
// results and errors are therefore bit-identical to W separate runs
// with the same seeds — the invariant internal/sweep relies on to keep
// aggregates, raw CSV rows, and checkpoint replay stable for any W.
//
// Like Simulator, a BatchSimulator is NOT safe for concurrent use; keep
// one per worker goroutine, via SimCache.
type BatchSimulator struct {
	g     *graph.Graph
	lanes []*Simulator
	pend  []uint64 // lane's gathered slot, valid while laneParked
	state []laneState

	running atomic.Bool
}

// NewBatchSimulator builds an empty batch engine for g; lanes are
// created on demand by RunBatch, so one BatchSimulator serves any W.
func NewBatchSimulator(g *graph.Graph) (*BatchSimulator, error) {
	if g == nil || g.N() == 0 {
		return nil, errors.New("radio: nil or empty graph")
	}
	return &BatchSimulator{g: g}, nil
}

// grow ensures at least w lanes exist.
func (b *BatchSimulator) grow(w int) error {
	for len(b.lanes) < w {
		s, err := NewSimulator(b.g, Config{Graph: b.g})
		if err != nil {
			return err
		}
		b.lanes = append(b.lanes, s)
		b.pend = append(b.pend, 0)
		b.state = append(b.state, laneDone)
	}
	return nil
}

// RunBatch executes len(seeds) trials in lockstep. cfg supplies the
// scalar configuration shared by every lane (its Seed is ignored and
// its Graph must be the batch's graph); seeds[i] seeds lane i and
// pops[i] is lane i's device population. The first two return values
// are per-lane: results[i] and errs[i] are exactly what a solo
// RunDevices with seeds[i] would have returned (a budget-aborted lane
// has both a partial result and an error, matching Simulator.run). The
// final error reports whole-batch misuse: length mismatch, a Trace
// sink, or concurrent use.
//
// Trace is rejected because lanes interleave by slot time — a merged
// event stream would not be any single trial's trace. Traced runs stay
// on the solo path.
func (b *BatchSimulator) RunBatch(cfg Config, seeds []uint64, pops [][]Device) ([]*Result, []error, error) {
	if len(pops) != len(seeds) {
		return nil, nil, fmt.Errorf("radio: %d populations for %d seeds", len(pops), len(seeds))
	}
	if cfg.Trace != nil {
		return nil, nil, errors.New("radio: BatchSimulator does not support Trace")
	}
	if cfg.Graph != nil && cfg.Graph != b.g {
		return nil, nil, errors.New("radio: Config.Graph is not the BatchSimulator's graph")
	}
	if !b.running.CompareAndSwap(false, true) {
		return nil, nil, errors.New("radio: BatchSimulator used concurrently")
	}
	defer b.running.Store(false)
	w := len(seeds)
	if err := b.grow(w); err != nil {
		return nil, nil, err
	}
	results := make([]*Result, w)
	errs := make([]error, w)
	// A scheduler-side panic must not poison the lanes for reuse: drop
	// every live lane's run references, then let the panic surface.
	defer func() {
		if r := recover(); r != nil {
			for i := 0; i < w; i++ {
				if b.state[i] != laneDone {
					b.lanes[i].finish()
					b.state[i] = laneDone
				}
			}
			panic(r)
		}
	}()
	live := 0
	for i := 0; i < w; i++ {
		laneCfg := cfg
		laneCfg.Graph = b.g
		laneCfg.Seed = seeds[i]
		results[i], errs[i] = b.lanes[i].prepare(laneCfg, pops[i])
		if errs[i] != nil {
			b.state[i] = laneDone
			continue
		}
		b.state[i] = laneGather
		live++
	}
	for live > 0 {
		// Gather every lane that finished its previous slot.
		for i := 0; i < w; i++ {
			if b.state[i] != laneGather {
				continue
			}
			t, done := b.lanes[i].gather()
			if done {
				errs[i] = b.lanes[i].firstErr
				b.lanes[i].finish()
				b.state[i] = laneDone
				live--
				continue
			}
			b.pend[i] = t
			b.state[i] = laneParked
		}
		if live == 0 {
			break
		}
		// Advance the batch clock to the minimum pending slot and
		// resolve every lane parked exactly there; later lanes stay
		// parked, so each lane resolves only its own gathered slot.
		minT := ^uint64(0)
		for i := 0; i < w; i++ {
			if b.state[i] == laneParked && b.pend[i] < minT {
				minT = b.pend[i]
			}
		}
		for i := 0; i < w; i++ {
			if b.state[i] != laneParked || b.pend[i] != minT {
				continue
			}
			if err := b.lanes[i].resolveSlot(minT); err != nil {
				errs[i] = err
				b.lanes[i].finish()
				b.state[i] = laneDone
				live--
				continue
			}
			b.state[i] = laneGather
		}
	}
	return results, errs, nil
}

// RunBatchDevices executes len(seeds) same-graph trials in lockstep on
// one BatchSimulator (the cache's engine for cfg.Graph when cfg.Sims is
// set, a fresh one otherwise). See BatchSimulator.RunBatch for the
// per-lane result/error contract.
func RunBatchDevices(cfg Config, seeds []uint64, pops [][]Device) ([]*Result, []error, error) {
	var b *BatchSimulator
	var err error
	if cfg.Sims != nil && cfg.Graph != nil {
		b, err = cfg.Sims.getBatch(cfg.Graph)
	} else {
		b, err = NewBatchSimulator(cfg.Graph)
	}
	if err != nil {
		return nil, nil, err
	}
	return b.RunBatch(cfg, seeds, pops)
}
