package radio

// This file is the device ABI: resumable step functions (Proc) that the
// scheduler drives inline on its own goroutine, with zero park/wake
// cost per action. Procs nest — a driver proc (such as the coloring
// package's LOCAL-over-No-CD simulation) steps an inner proc itself and
// translates its actions — so layered protocols compose without any
// blocking adapter.

// ActionKind classifies what a Proc does next. The zero value halts, so
// a forgotten return ends the device instead of wedging the scheduler.
type ActionKind uint8

// Action kinds returned by Proc.Step.
const (
	// ActHalt ends the device's participation; remaining devices keep
	// running.
	ActHalt ActionKind = iota
	// ActTransmit sends Payload in slot Slot (energy 1).
	ActTransmit
	// ActListen tunes in during slot Slot (energy 1); the feedback
	// arrives in the next Step call.
	ActListen
	// ActTransmitListen transmits and listens in the same slot (full
	// duplex, energy 1 — the device is awake for one slot, which is
	// what the paper's energy measure charges; the feedback reflects
	// the other transmitters only). The paper uses full duplex in the
	// LOCAL path algorithm (Section 8) and in single-hop leader
	// election (Theorem 2); multi-hop CD/No-CD algorithms must not use
	// it (Theorem 3 notes the simulation forbids it).
	ActTransmitListen
	// ActSleep advances the device clock to Slot without energy cost
	// and immediately re-steps the proc — bookkeeping only; the next
	// channel action's slot is what synchronizes devices.
	ActSleep
)

// Action is one device decision: what to do and when. Slot must exceed
// the device's clock for the channel actions.
type Action struct {
	Kind    ActionKind
	Slot    uint64
	Payload any
}

// Transmit returns a transmit action for the given future slot.
func Transmit(slot uint64, payload any) Action {
	return Action{Kind: ActTransmit, Slot: slot, Payload: payload}
}

// Listen returns a listen action for the given future slot.
func Listen(slot uint64) Action {
	return Action{Kind: ActListen, Slot: slot}
}

// TransmitListen returns a full-duplex action for the given future slot.
func TransmitListen(slot uint64, payload any) Action {
	return Action{Kind: ActTransmitListen, Slot: slot, Payload: payload}
}

// Sleep returns a free clock advance to the given slot.
func Sleep(slot uint64) Action {
	return Action{Kind: ActSleep, Slot: slot}
}

// Halt returns the terminating action.
func Halt() Action {
	return Action{Kind: ActHalt}
}

// Proc is a resumable device program: a state machine the scheduler
// steps inline on its own goroutine, paying no park/wake per action.
//
// Step receives the channel handle and the feedback of the proc's
// previous action — the zero Feedback on the first call and after
// non-listening actions — and returns the next action. The scheduler
// passes the device's *Env as ch; a driver proc passes whatever virtual
// Channel it owns, so the same machine nests inside virtual channels
// unchanged.
//
// A Proc carries its own state and is therefore single-use: build a
// fresh one (or re-initialize the same struct) for every run. Step is
// always called from a single goroutine, never concurrently.
type Proc interface {
	Step(ch Channel, fb Feedback) Action
}

// ProcFunc adapts a plain step function to the Proc interface.
type ProcFunc func(ch Channel, fb Feedback) Action

// Step calls f.
func (f ProcFunc) Step(ch Channel, fb Feedback) Action { return f(ch, fb) }

// Cont is a continuation-passing step: it consumes the feedback of the
// previously returned action and yields the next action together with
// the continuation to resume afterwards. A nil continuation halts the
// device. Conts are how deeply structured protocols (detcast's nested
// passes and recursions) port to the step ABI without hand-flattening
// every loop into a state enum: each blocking call site becomes a
// closure over the surrounding state.
type Cont func(ch Channel, fb Feedback) (Action, Cont)

// contProc drives a continuation chain as a Proc, building the chain
// lazily on the first step so constructors can read the channel
// (Index, AssignedID, Rand) before emitting any action.
type contProc struct {
	init    func(ch Channel) Cont
	k       Cont
	started bool
}

func (p *contProc) Step(ch Channel, fb Feedback) Action {
	if !p.started {
		p.k = p.init(ch)
		p.started = true
	}
	if p.k == nil {
		return Halt()
	}
	act, next := p.k(ch, fb)
	p.k = next
	return act
}

// ContProc wraps a lazily built continuation chain as a Proc. init runs
// on the first Step call with the device's channel handle.
func ContProc(init func(ch Channel) Cont) Proc {
	return &contProc{init: init}
}

// Device binds one vertex to its step machine. The struct survives the
// old two-ABI engine so call sites keep their shape; its only field now
// is the Proc.
type Device struct {
	Proc Proc
}

// Procs wraps a proc slice as a device population.
func Procs(procs []Proc) []Device {
	devs := make([]Device, len(procs))
	for i, p := range procs {
		devs[i].Proc = p
	}
	return devs
}

// RunDevices executes one device per vertex, stepping every proc on the
// calling goroutine, and returns the measured result. The returned
// error wraps ErrBudget on budget exhaustion, or surfaces the first
// device panic. When cfg.Sims is set, the run reuses the cache's engine
// for cfg.Graph; otherwise a fresh Simulator is built and discarded.
func RunDevices(cfg Config, devs []Device) (*Result, error) {
	var sim *Simulator
	var err error
	if cfg.Sims != nil && cfg.Graph != nil {
		sim, err = cfg.Sims.get(cfg.Graph)
	} else {
		sim, err = NewSimulator(cfg.Graph, cfg)
	}
	if err != nil {
		return nil, err
	}
	return sim.run(cfg, devs)
}
