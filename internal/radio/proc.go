package radio

// This file is the coroutine-style half of the device ABI: resumable
// step functions (Proc) that the scheduler drives inline on its own
// goroutine, with zero park/wake cost per action, plus the adapters
// that let step procs and blocking Programs coexist in one run and
// nest inside each other.
//
// The two directions of adaptation are:
//
//   - Program -> scheduler: the legacy blocking ABI keeps working
//     unchanged; a Device with only a Program set runs on its own
//     goroutine exactly as before.
//   - Proc -> Channel: Drive executes a step proc over any blocking
//     Channel (the physical Env or a virtual channel such as the
//     Theorem 3 simulation), which is how ported protocols keep their
//     blocking entry points as one-line wrappers.

// ActionKind classifies what a Proc does next. The zero value halts, so
// a forgotten return ends the device instead of wedging the scheduler.
type ActionKind uint8

// Action kinds returned by Proc.Step.
const (
	// ActHalt ends the device's participation; remaining devices keep
	// running (the step equivalent of a Program returning).
	ActHalt ActionKind = iota
	// ActTransmit sends Payload in slot Slot (energy 1).
	ActTransmit
	// ActListen tunes in during slot Slot (energy 1); the feedback
	// arrives in the next Step call.
	ActListen
	// ActTransmitListen transmits and listens in the same slot (full
	// duplex, energy 1; see Env.TransmitListen for when the paper
	// permits it).
	ActTransmitListen
	// ActSleep advances the device clock to Slot without energy cost
	// and immediately re-steps the proc — bookkeeping only, exactly
	// like Env.SleepUntil.
	ActSleep
)

// Action is one device decision: what to do and when. Slot must exceed
// the device's clock for the channel actions (the same contract the
// blocking Env enforces).
type Action struct {
	Kind    ActionKind
	Slot    uint64
	Payload any
}

// Transmit returns a transmit action for the given future slot.
func Transmit(slot uint64, payload any) Action {
	return Action{Kind: ActTransmit, Slot: slot, Payload: payload}
}

// Listen returns a listen action for the given future slot.
func Listen(slot uint64) Action {
	return Action{Kind: ActListen, Slot: slot}
}

// TransmitListen returns a full-duplex action for the given future slot.
func TransmitListen(slot uint64, payload any) Action {
	return Action{Kind: ActTransmitListen, Slot: slot, Payload: payload}
}

// Sleep returns a free clock advance to the given slot.
func Sleep(slot uint64) Action {
	return Action{Kind: ActSleep, Slot: slot}
}

// Halt returns the terminating action.
func Halt() Action {
	return Action{Kind: ActHalt}
}

// Proc is a resumable device program: a state machine the scheduler
// steps inline on its own goroutine, paying no park/wake per action
// (the blocking Program ABI costs one goroutine rendezvous per action).
//
// Step receives the channel handle and the feedback of the proc's
// previous action — the zero Feedback on the first call and after
// non-listening actions — and returns the next action. The scheduler
// passes the device's *Env as ch; Drive passes whatever blocking
// Channel it was given, so the same machine nests inside virtual
// channels and legacy programs unchanged.
//
// A Proc carries its own state and is therefore single-use: build a
// fresh one (or re-initialize the same struct) for every run. Step is
// always called from a single goroutine, never concurrently.
type Proc interface {
	Step(ch Channel, fb Feedback) Action
}

// ProcFunc adapts a plain step function to the Proc interface.
type ProcFunc func(ch Channel, fb Feedback) Action

// Step calls f.
func (f ProcFunc) Step(ch Channel, fb Feedback) Action { return f(ch, fb) }

// Cont is a continuation-passing step: it consumes the feedback of the
// previously returned action and yields the next action together with
// the continuation to resume afterwards. A nil continuation halts the
// device. Conts are how deeply structured protocols (detcast's nested
// passes and recursions) port to the step ABI without hand-flattening
// every loop into a state enum: each blocking call site becomes a
// closure over the surrounding state.
type Cont func(ch Channel, fb Feedback) (Action, Cont)

// contProc drives a continuation chain as a Proc, building the chain
// lazily on the first step so constructors can read the channel
// (Index, AssignedID, Rand) before emitting any action.
type contProc struct {
	init    func(ch Channel) Cont
	k       Cont
	started bool
}

func (p *contProc) Step(ch Channel, fb Feedback) Action {
	if !p.started {
		p.k = p.init(ch)
		p.started = true
	}
	if p.k == nil {
		return Halt()
	}
	act, next := p.k(ch, fb)
	p.k = next
	return act
}

// ContProc wraps a lazily built continuation chain as a Proc. init runs
// on the first Step call with the device's channel handle.
func ContProc(init func(ch Channel) Cont) Proc {
	return &contProc{init: init}
}

// FullDuplex is the optional Channel extension for TransmitListen. The
// physical *Env provides it; virtual channels may not.
type FullDuplex interface {
	Channel
	TransmitListen(slot uint64, payload any) Feedback
}

// Env satisfies FullDuplex.
var _ FullDuplex = (*Env)(nil)

// Drive runs p to completion over a blocking Channel, translating each
// action into the corresponding Channel call. It is the Proc-to-blocking
// adapter: ported protocols keep their legacy blocking entry points as
// Drive one-liners, and step machines compose under virtual channels
// (e.g. the coloring package's LOCAL-over-No-CD simulation) for free.
// ActTransmitListen requires ch to implement FullDuplex.
func Drive(ch Channel, p Proc) {
	var fb Feedback
	for {
		act := p.Step(ch, fb)
		fb = Feedback{}
		switch act.Kind {
		case ActTransmit:
			ch.Transmit(act.Slot, act.Payload)
		case ActListen:
			fb = ch.Listen(act.Slot)
		case ActTransmitListen:
			fd, ok := ch.(FullDuplex)
			if !ok {
				panic("radio: Drive: channel does not support TransmitListen")
			}
			fb = fd.TransmitListen(act.Slot, act.Payload)
		case ActSleep:
			ch.SleepUntil(act.Slot)
		case ActHalt:
			return
		default:
			panic("radio: Drive: invalid action kind")
		}
	}
}

// ProcProgram adapts a step proc into a blocking Program, for call
// sites that still assemble goroutine-backed populations.
func ProcProgram(p Proc) Program {
	return func(e *Env) { Drive(e, p) }
}

// Device binds one vertex to its behavior: an inline step Proc
// (preferred — the scheduler steps it with zero park/wake), or a
// blocking Program run on its own goroutine when Proc is nil. One run
// may mix both freely; measurements and determinism are identical for
// the same action sequences either way.
type Device struct {
	Proc    Proc
	Program Program
}

// Procs wraps a proc slice as an all-inline device population.
func Procs(procs []Proc) []Device {
	devs := make([]Device, len(procs))
	for i, p := range procs {
		devs[i].Proc = p
	}
	return devs
}

// Programs wraps a program slice as an all-goroutine device population.
func Programs(programs []Program) []Device {
	devs := make([]Device, len(programs))
	for i, p := range programs {
		devs[i].Program = p
	}
	return devs
}

// RunDevices executes one device per vertex — inline procs stepped on
// the scheduler goroutine, blocking programs on their own goroutines —
// and returns the measured result. It is the mixed-population
// generalization of Run, with the same Config contract (including
// SimCache reuse through cfg.Sims).
func RunDevices(cfg Config, devs []Device) (*Result, error) {
	var sim *Simulator
	var err error
	if cfg.Sims != nil && cfg.Graph != nil {
		sim, err = cfg.Sims.get(cfg.Graph)
	} else {
		sim, err = NewSimulator(cfg.Graph, cfg)
	}
	if err != nil {
		return nil, err
	}
	return sim.run(cfg, devs)
}
