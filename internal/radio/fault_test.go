package radio

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fault"
	"repro/internal/graph"
)

// TestFaultRateZeroGoldenTrace pins the fault layer's first contract:
// any fault kind at rate 0 is byte-identical to the fault-free engine,
// down to the slot-level event stream. Fault decisions come from a
// dedicated positional hash stream, so merely enabling the plumbing
// must never consume a protocol coin flip or reorder an event.
func TestFaultRateZeroGoldenTrace(t *testing.T) {
	golden, err := os.ReadFile(filepath.Join("testdata", "golden_trace.txt"))
	if err != nil {
		t.Fatalf("missing golden trace: %v", err)
	}
	specs := []fault.Spec{
		{Kind: fault.Crash, Rate: 0},
		{Kind: fault.Sleep, Rate: 0},
		{Kind: fault.Loss, Rate: 0},
		{},
	}
	for _, fs := range specs {
		if got := renderGoldenTraceFault(t, fs); got != string(golden) {
			t.Errorf("fault %+v at rate 0 perturbs the golden trace", fs)
		}
	}
}

// faultProcs builds a simple randomized gossip population: every device
// listens or transmits at random for `slots` slots, then halts.
func faultProcs(n int, slots uint64) []Proc {
	ps := make([]Proc, n)
	for v := 0; v < n; v++ {
		s := uint64(0)
		ps[v] = ProcFunc(func(e Channel, fb Feedback) Action {
			s++
			if s > slots {
				return Halt()
			}
			if e.Rand().Uint64()&3 == 0 {
				return Transmit(s, e.Index())
			}
			return Listen(s)
		})
	}
	return ps
}

// TestFaultInjectionCountersAndInvariants runs each fault kind at a
// visible rate and checks that (a) only that kind's counter moves,
// (b) MaxEnergy() <= Slots survives injection — sleep and crash faults
// must only ever remove awake slots, never mint them.
func TestFaultInjectionCountersAndInvariants(t *testing.T) {
	g := graph.GNP(32, 0.25, 5)
	for _, tc := range []struct {
		name string
		spec fault.Spec
	}{
		{"crash", fault.Spec{Kind: fault.Crash, Rate: 0.01}},
		{"sleep", fault.Spec{Kind: fault.Sleep, Rate: 0.02, Window: 4}},
		{"loss", fault.Spec{Kind: fault.Loss, Rate: 0.05}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{Graph: g, Model: CD, Seed: 99, Fault: tc.spec}
			res, err := RunDevices(cfg, Procs(faultProcs(g.N(), 40)))
			if err != nil {
				t.Fatal(err)
			}
			total := res.FaultCrashes + res.FaultSleeps + res.FaultErasures
			if total == 0 {
				t.Fatalf("no %s faults injected at rate %v", tc.name, tc.spec.Rate)
			}
			switch tc.spec.Kind {
			case fault.Crash:
				if res.FaultCrashes != total {
					t.Errorf("crash spec moved foreign counters: %+v", res)
				}
			case fault.Sleep:
				if res.FaultSleeps != total {
					t.Errorf("sleep spec moved foreign counters: %+v", res)
				}
			case fault.Loss:
				if res.FaultErasures != total {
					t.Errorf("loss spec moved foreign counters: %+v", res)
				}
			}
			if uint64(res.MaxEnergy()) > res.Slots {
				t.Errorf("MaxEnergy %d exceeds Slots %d under %s faults",
					res.MaxEnergy(), res.Slots, tc.name)
			}
		})
	}
}

// TestFaultDeterministicAcrossRuns pins scheduling independence at the
// engine level: two runs of the same faulted config produce identical
// counters and energy vectors.
func TestFaultDeterministicAcrossRuns(t *testing.T) {
	g := graph.Cycle(24)
	run := func() *Result {
		cfg := Config{Graph: g, Model: NoCD, Seed: 7,
			Fault: fault.Spec{Kind: fault.Sleep, Rate: 0.03, Window: 3}}
		res, err := RunDevices(cfg, Procs(faultProcs(g.N(), 30)))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Slots != b.Slots || a.FaultSleeps != b.FaultSleeps ||
		a.TotalEnergy() != b.TotalEnergy() {
		t.Fatalf("faulted runs diverge: %+v vs %+v", a, b)
	}
}
