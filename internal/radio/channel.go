package radio

import "math/rand/v2"

// Channel is the device-side view shared by the physical network (*Env)
// and virtual channels layered on top of it (such as the Theorem 3
// LOCAL-over-No-CD simulation in package coloring). Procs written
// against Channel run unchanged on either.
//
// Channel is purely informational: devices act on the network by
// returning Actions from Step, never by calling into the engine, so a
// virtual channel only has to answer queries — the driver that steps
// the inner proc interprets its actions.
type Channel interface {
	// Index is the device's vertex index (see Env.Index).
	Index() int
	// N is the number of vertices.
	N() int
	// MaxDegree is the maximum-degree bound Delta.
	MaxDegree() int
	// Diameter returns the diameter and whether devices know it.
	Diameter() (int, bool)
	// IDSpace is the deterministic ID bound N (0 if unassigned).
	IDSpace() int
	// AssignedID is the device's distinct ID in {1..IDSpace}, or 0.
	AssignedID() int
	// Model is the channel's collision model.
	Model() Model
	// Rand is the device's private random stream.
	Rand() *rand.Rand
	// Now is the device's local clock (last slot acted or slept through).
	Now() uint64
}

// Env satisfies Channel.
var _ Channel = (*Env)(nil)
