package radio

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/graph"
)

// updateGoldenTrace regenerates testdata/golden_trace.txt from the current
// engine. Run `go test ./internal/radio -run GoldenSlotTrace -update-golden`
// ONLY when an intentional semantic change to the engine is being made; the
// file pins the slot-level event stream byte for byte so that scheduler
// rewrites (cohort batching, payload interning, CSR adjacency, the
// goroutine-ABI deletion) can prove they preserve the exact execution
// order.
var updateGoldenTrace = flag.Bool("update-golden", false, "rewrite testdata/golden_trace.txt")

// traceScenario is one deterministic run whose full Event stream is pinned.
type traceScenario struct {
	name  string
	model Model
	seed  uint64
	build func() *graph.Graph
	procs func(n int) []Proc
}

// goldenTraceScenarios covers all four collision models, mixed cohorts,
// full duplex, early halting, idle slots, and randomized schedules. The
// graphs are chosen from families whose adjacency order is canonical
// (ascending), so the trace is independent of construction order.
//
// The step machines below reproduce, action for action and random draw
// for random draw, the blocking programs the golden file was first
// recorded from — which is why the file survives the blocking ABI's
// deletion unchanged.
func goldenTraceScenarios() []traceScenario {
	return []traceScenario{
		{
			// Randomized contention on a sparse random graph: dense cohorts,
			// every CD feedback kind (silence, receive, noise).
			name:  "cd-gnp24",
			model: CD,
			seed:  7,
			build: func() *graph.Graph { return graph.GNP(24, 8.0/24, 31) },
			procs: func(n int) []Proc {
				ps := make([]Proc, n)
				for v := 0; v < n; v++ {
					s := uint64(0)
					ps[v] = ProcFunc(func(e Channel, fb Feedback) Action {
						s++
						if s > 30 {
							return Halt()
						}
						if e.Rand().Uint64()&3 == 0 {
							return Transmit(s, e.Index())
						}
						return Listen(s)
					})
				}
				return ps
			},
		},
		{
			// LOCAL model on a path: multi-payload delivery plus full duplex.
			name:  "local-path9",
			model: Local,
			seed:  11,
			build: func() *graph.Graph { return graph.Path(9) },
			procs: func(n int) []Proc {
				ps := make([]Proc, n)
				for v := 0; v < n; v++ {
					s := uint64(0)
					ps[v] = ProcFunc(func(e Channel, fb Feedback) Action {
						for {
							s++
							if s > 12 {
								return Halt()
							}
							switch {
							case (uint64(e.Index())+s)%3 == 0:
								return TransmitListen(s, e.Index()*100+int(s))
							case (uint64(e.Index())+s)%3 == 1:
								return Listen(s)
							}
							// Third case: idle through slot s — free, invisible.
						}
					})
				}
				return ps
			},
		},
		{
			// No-CD star: the center hears exactly the singleton slots.
			name:  "nocd-star8",
			model: NoCD,
			seed:  3,
			build: func() *graph.Graph { return graph.Star(8) },
			procs: func(n int) []Proc {
				ps := make([]Proc, n)
				s0 := uint64(0)
				ps[0] = ProcFunc(func(e Channel, fb Feedback) Action {
					s0++
					if s0 > 10 {
						return Halt()
					}
					return Listen(s0)
				})
				for v := 1; v < n; v++ {
					s := uint64(0)
					ps[v] = ProcFunc(func(e Channel, fb Feedback) Action {
						for {
							s++
							if s > 10 {
								return Halt()
							}
							if e.Rand().Uint64()&1 == 0 {
								return Transmit(s, e.Index())
							}
							// Tails: idle through slot s.
						}
					})
				}
				return ps
			},
		},
		{
			// CD* clique with staggered halts: shrinking cohorts, arbitrary-
			// (lowest-index-)transmitter delivery.
			name:  "cdstar-clique6",
			model: CDStar,
			seed:  19,
			build: func() *graph.Graph { return graph.Clique(6) },
			procs: func(n int) []Proc {
				ps := make([]Proc, n)
				for v := 0; v < n; v++ {
					s := uint64(0)
					ps[v] = ProcFunc(func(e Channel, fb Feedback) Action {
						s++
						if s > uint64(4+2*e.Index()) {
							return Halt()
						}
						if e.Rand().Uint64()%3 == 0 {
							return Transmit(s, e.Index())
						}
						return Listen(s)
					})
				}
				return ps
			},
		},
	}
}

// formatEvent renders one Event as a stable single-line record.
func formatEvent(ev Event) string {
	kind := ""
	switch ev.Kind {
	case EventTransmit:
		kind = "tx"
	case EventReceive:
		kind = "rx"
	case EventSilence:
		kind = "sil"
	case EventNoise:
		kind = "noise"
	default:
		kind = fmt.Sprintf("kind(%d)", ev.Kind)
	}
	return fmt.Sprintf("%d %d %s %v %d", ev.Slot, ev.Dev, kind, ev.Payload, ev.From)
}

// renderGoldenTrace runs every scenario and serializes the concatenated
// event streams plus the run's aggregate counters.
func renderGoldenTrace(t *testing.T) string {
	return renderGoldenTraceFault(t, fault.Spec{})
}

// renderGoldenTraceFault is renderGoldenTrace with a fault spec threaded
// into every scenario — the hook the rate-0 byte-identity pin uses.
func renderGoldenTraceFault(t *testing.T, fs fault.Spec) string {
	t.Helper()
	var sb strings.Builder
	for _, sc := range goldenTraceScenarios() {
		g := sc.build()
		sb.WriteString("# scenario " + sc.name + "\n")
		cfg := Config{
			Graph: g,
			Model: sc.model,
			Seed:  sc.seed,
			Fault: fs,
			Trace: func(ev Event) {
				sb.WriteString(formatEvent(ev))
				sb.WriteByte('\n')
			},
		}
		res, err := RunDevices(cfg, Procs(sc.procs(g.N())))
		if err != nil {
			t.Fatalf("%s: %v", sc.name, err)
		}
		fmt.Fprintf(&sb, "= slots=%d events=%d maxE=%d totE=%d energy=%v tx=%v listen=%v\n",
			res.Slots, res.Events, res.MaxEnergy(), res.TotalEnergy(),
			res.Energy, res.Transmits, res.Listens)
	}
	return sb.String()
}

// TestGoldenSlotTrace pins the engine's slot-level event stream — the order
// and content of every trace event, for fixed seeds on fixed graphs —
// byte for byte against testdata/golden_trace.txt. Any scheduler change
// must reproduce this stream exactly: cohort release order is (slot, then
// device index), and feedback, energy accounting, and event emission all
// follow that order.
func TestGoldenSlotTrace(t *testing.T) {
	got := renderGoldenTrace(t)
	path := filepath.Join("testdata", "golden_trace.txt")
	if *updateGoldenTrace {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden trace (run with -update-golden to create): %v", err)
	}
	if got != string(want) {
		// Find the first diverging line for a readable failure.
		gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if gl[i] != wl[i] {
				t.Fatalf("trace diverges at line %d:\n got: %s\nwant: %s", i+1, gl[i], wl[i])
			}
		}
		t.Fatalf("trace length differs: got %d lines, want %d", len(gl), len(wl))
	}
}

// TestGoldenSlotTraceDeterministic guards the guard: two renders of the
// scenario suite in the same process must be identical, otherwise the
// golden comparison would be meaningless.
func TestGoldenSlotTraceDeterministic(t *testing.T) {
	if renderGoldenTrace(t) != renderGoldenTrace(t) {
		t.Fatal("golden trace scenarios are not deterministic")
	}
}
