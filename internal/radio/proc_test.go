package radio

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/graph"
)

// traceDevices runs cfg+devs and returns the formatted event stream plus
// aggregate counters, for byte-exact comparisons against blocking runs.
func traceDevices(t *testing.T, cfg Config, devs []Device) string {
	t.Helper()
	var sb strings.Builder
	cfg.Trace = func(ev Event) {
		sb.WriteString(formatEvent(ev))
		sb.WriteByte('\n')
	}
	res, err := RunDevices(cfg, devs)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&sb, "%d %d %v", res.Slots, res.Events, res.Energy)
	return sb.String()
}

// contendProc is the step-ABI twin of contendingPrograms: identical
// action schedule, identical per-device random draws.
type contendProc struct {
	slots uint64
	s     uint64
}

func (p *contendProc) Step(ch Channel, fb Feedback) Action {
	p.s++
	if p.s > p.slots {
		return Halt()
	}
	if ch.Rand().Uint64()&3 == 0 {
		return Transmit(p.s, ch.Index())
	}
	return Listen(p.s)
}

func contendingProcs(n int, slots uint64) []Device {
	devs := make([]Device, n)
	for v := 0; v < n; v++ {
		devs[v].Proc = &contendProc{slots: slots}
	}
	return devs
}

// TestProcMatchesBlockingTrace pins the tentpole determinism contract:
// an all-proc population yields the byte-identical event stream and
// measurements of the equivalent blocking population, on every model.
func TestProcMatchesBlockingTrace(t *testing.T) {
	g := graph.GNP(16, 0.3, 9)
	for _, model := range []Model{NoCD, CD, CDStar, Local} {
		for seed := uint64(1); seed <= 4; seed++ {
			cfg := Config{Graph: g, Model: model, Seed: seed}
			procs := traceDevices(t, cfg, contendingProcs(16, 20))
			blocking := traceString(t, cfg, contendingPrograms(16, 20))
			if procs != blocking {
				t.Fatalf("model %v seed %d: proc trace diverges from blocking trace", model, seed)
			}
		}
	}
}

// TestMixedPopulationMatchesBlocking runs half the devices as inline
// procs and half as goroutine programs in one simulation: the trace must
// still be byte-identical to the all-blocking run.
func TestMixedPopulationMatchesBlocking(t *testing.T) {
	g := graph.GNP(16, 0.3, 9)
	for seed := uint64(1); seed <= 4; seed++ {
		cfg := Config{Graph: g, Model: CD, Seed: seed}
		mixed := contendingProcs(16, 20)
		legacy := contendingPrograms(16, 20)
		for v := range mixed {
			if v%2 == 1 {
				mixed[v] = Device{Program: legacy[v]}
			}
		}
		got := traceDevices(t, cfg, mixed)
		want := traceString(t, cfg, contendingPrograms(16, 20))
		if got != want {
			t.Fatalf("seed %d: mixed population diverges from blocking run", seed)
		}
	}
}

// TestProcSimulatorReuse checks RunDevices on a recycled Simulator:
// fresh procs per run, identical results run over run.
func TestProcSimulatorReuse(t *testing.T) {
	g := graph.Clique(8)
	sim, err := NewSimulator(g, Config{Graph: g, Model: CD})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := sim.RunDevices(3, contendingProcs(8, 20))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sim.RunDevices(3, contendingProcs(8, 20))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Events != r2.Events || r1.Slots != r2.Slots || r1.MaxEnergy() != r2.MaxEnergy() {
		t.Fatalf("same seed differs across reuses: %+v vs %+v", r1, r2)
	}
	fresh, err := RunDevices(Config{Graph: g, Model: CD, Seed: 3}, contendingProcs(8, 20))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Events != fresh.Events || r1.Slots != fresh.Slots {
		t.Fatalf("recycled simulator diverges from fresh: %+v vs %+v", r1, fresh)
	}
}

// sleepyProc interleaves sleeps with actions; the scheduler must treat
// sleeps as free clock moves, including a redundant (non-advancing) one.
type sleepyProc struct{ phase int }

func (p *sleepyProc) Step(ch Channel, fb Feedback) Action {
	p.phase++
	switch p.phase {
	case 1:
		return Sleep(5)
	case 2:
		return Transmit(6, "x")
	case 3:
		return Sleep(6) // non-advancing: a no-op, not an error
	case 4:
		return Listen(9)
	default:
		return Halt()
	}
}

func TestProcSleepSemantics(t *testing.T) {
	g := graph.Path(2)
	res, err := RunDevices(Config{Graph: g, Model: NoCD, Seed: 1},
		[]Device{{Proc: &sleepyProc{}}, {Proc: &sleepyProc{}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Slots != 9 {
		t.Fatalf("slots = %d, want 9", res.Slots)
	}
	for v, e := range res.Energy {
		if e != 2 {
			t.Fatalf("device %d energy = %d, want 2 (sleeps are free)", v, e)
		}
	}
}

// TestProcErrorPaths covers the halt protocol for inline procs: zero
// Action halts, a panic inside Step surfaces as the run error, a
// non-future slot is the same contract violation the blocking ABI
// enforces, and the simulator stays reusable after each.
func TestProcErrorPaths(t *testing.T) {
	g := graph.Path(3)
	sim, err := NewSimulator(g, Config{Graph: g, Model: NoCD})
	if err != nil {
		t.Fatal(err)
	}
	// Zero Action = halt: the run ends immediately with no events.
	res, err := sim.RunDevices(1, Procs([]Proc{
		ProcFunc(func(ch Channel, fb Feedback) Action { return Action{} }),
		ProcFunc(func(ch Channel, fb Feedback) Action { return Action{} }),
		ProcFunc(func(ch Channel, fb Feedback) Action { return Action{} }),
	}))
	if err != nil || res.Events != 0 {
		t.Fatalf("zero-action run: res=%+v err=%v", res, err)
	}
	// Panic inside Step becomes the run error; other devices finish.
	_, err = sim.RunDevices(2, Procs([]Proc{
		ProcFunc(func(ch Channel, fb Feedback) Action { panic("step boom") }),
		&contendProc{slots: 4},
		&contendProc{slots: 4},
	}))
	if err == nil || !strings.Contains(err.Error(), "step boom") {
		t.Fatalf("want step panic surfaced, got %v", err)
	}
	// Scheduling a non-future slot is a device error, not a hang.
	_, err = sim.RunDevices(3, Procs([]Proc{
		ProcFunc(func(ch Channel, fb Feedback) Action { return Transmit(0, nil) }),
		&contendProc{slots: 2},
		&contendProc{slots: 2},
	}))
	if err == nil || !strings.Contains(err.Error(), "clock") {
		t.Fatalf("want slot-ordering violation, got %v", err)
	}
	// Blocking Env calls inside Step are rejected, not deadlocked.
	_, err = sim.RunDevices(4, Procs([]Proc{
		ProcFunc(func(ch Channel, fb Feedback) Action {
			ch.Listen(1)
			return Halt()
		}),
		&contendProc{slots: 2},
		&contendProc{slots: 2},
	}))
	if err == nil || !strings.Contains(err.Error(), "inline proc") {
		t.Fatalf("want blocking-call rejection, got %v", err)
	}
	// Exit() inside Step is a clean voluntary halt.
	res, err = sim.RunDevices(5, Procs([]Proc{
		ProcFunc(func(ch Channel, fb Feedback) Action {
			ch.(*Env).Exit()
			return Action{}
		}),
		&contendProc{slots: 2},
		&contendProc{slots: 2},
	}))
	if err != nil {
		t.Fatalf("Exit inside Step: %v", err)
	}
	// And the recycled engine still matches a fresh one.
	r1, err := sim.RunDevices(6, contendingProcs(3, 6))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunDevices(Config{Graph: g, Model: NoCD, Seed: 6}, contendingProcs(3, 6))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Events != r2.Events || r1.Slots != r2.Slots {
		t.Fatalf("post-error reuse diverges: %+v vs %+v", r1, r2)
	}
}

// TestProcBudgetAbort checks ErrBudget on an all-proc population (no
// goroutines to unwind) and on a mixed one (parked goroutines must be
// released).
func TestProcBudgetAbort(t *testing.T) {
	g := graph.Path(4)
	everyFive := func() Proc {
		var s uint64
		return ProcFunc(func(ch Channel, fb Feedback) Action {
			s += 5
			return Transmit(s, nil)
		})
	}
	cfg := Config{Graph: g, Model: NoCD, Seed: 1, MaxSlots: 12}
	_, err := RunDevices(cfg, []Device{
		{Proc: everyFive()}, {Proc: everyFive()}, {Proc: everyFive()}, {Proc: everyFive()},
	})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("all-proc: want ErrBudget, got %v", err)
	}
	_, err = RunDevices(cfg, []Device{
		{Proc: everyFive()},
		{Program: func(e *Env) {
			for s := uint64(1); ; s += 5 {
				e.Transmit(s, nil)
			}
		}},
		{Proc: everyFive()},
		{Proc: everyFive()},
	})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("mixed: want ErrBudget, got %v", err)
	}
}

// TestDriveComposition nests a step proc inside a blocking program via
// Drive: the combined run must match the fully blocking equivalent.
func TestDriveComposition(t *testing.T) {
	g := graph.Path(5)
	cfg := Config{Graph: g, Model: NoCD, Seed: 7}
	driven := make([]Program, 5)
	for v := range driven {
		driven[v] = ProcProgram(&contendProc{slots: 10})
	}
	got := traceString(t, cfg, driven)
	want := traceString(t, cfg, contendingPrograms(5, 10))
	if got != want {
		t.Fatal("Drive-adapted procs diverge from blocking programs")
	}
}

// TestContProcChain exercises the continuation machinery: lazy init,
// feedback threading, and nil-continuation halt.
func TestContProcChain(t *testing.T) {
	g := graph.Path(2)
	heard := -1
	listener := ContProc(func(ch Channel) Cont {
		var await Cont
		await = func(ch Channel, fb Feedback) (Action, Cont) {
			if fb.Status == Received {
				heard = fb.Payload.(int)
				return Halt(), nil
			}
			return Listen(ch.Now() + 1), await
		}
		return func(ch Channel, fb Feedback) (Action, Cont) {
			return Listen(1), await
		}
	})
	talker := ContProc(func(ch Channel) Cont {
		return func(ch Channel, fb Feedback) (Action, Cont) {
			return Transmit(3, 42), nil
		}
	})
	res, err := RunDevices(Config{Graph: g, Model: NoCD, Seed: 1},
		[]Device{{Proc: listener}, {Proc: talker}})
	if err != nil {
		t.Fatal(err)
	}
	if heard != 42 {
		t.Fatalf("continuation listener heard %d, want 42", heard)
	}
	if res.Energy[0] != 3 || res.Energy[1] != 1 {
		t.Fatalf("energy = %v, want [3 1]", res.Energy)
	}
}

// TestBoxIntInterning pins the non-constant-payload fix: inside an
// inline proc, BoxInt returns the identical boxed value on repeat
// calls (no per-call allocation), delivery still carries the right
// integers, and outside the inline context it degrades to plain boxing.
func TestBoxIntInterning(t *testing.T) {
	g := graph.Path(2)
	var first, second any
	speaker := ProcFunc(func(ch Channel, fb Feedback) Action {
		switch ch.Now() {
		case 0:
			first = BoxInt(ch, 4242)
			return Transmit(1, first)
		case 1:
			second = BoxInt(ch, 4242)
			return Transmit(2, second)
		default:
			return Halt()
		}
	})
	var got []any
	listener := ProcFunc(func(ch Channel, fb Feedback) Action {
		if fb.Status == Received {
			got = append(got, fb.Payload)
		}
		if ch.Now() >= 2 {
			return Halt()
		}
		return Listen(ch.Now() + 1)
	})
	if _, err := RunDevices(Config{Graph: g, Model: NoCD, Seed: 1},
		[]Device{{Proc: speaker}, {Proc: listener}}); err != nil {
		t.Fatal(err)
	}
	if first == nil || first != second {
		t.Fatalf("BoxInt did not intern: %v vs %v", first, second)
	}
	if len(got) != 2 || got[0].(int) != 4242 || got[1].(int) != 4242 {
		t.Fatalf("delivered payloads = %v", got)
	}
	// Out-of-range and blocking-context calls still box correctly.
	if v := BoxInt(nil, -3); v.(int) != -3 {
		t.Fatalf("fallback boxing = %v", v)
	}
	if v := BoxInt(nil, internCap+1); v.(int) != internCap+1 {
		t.Fatalf("fallback boxing = %v", v)
	}
}
