package radio

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/graph"
)

// traceDevices runs cfg+devs and returns the formatted event stream plus
// aggregate counters, for byte-exact run-over-run comparisons.
func traceDevices(t *testing.T, cfg Config, devs []Device) string {
	t.Helper()
	var sb strings.Builder
	cfg.Trace = func(ev Event) {
		sb.WriteString(formatEvent(ev))
		sb.WriteByte('\n')
	}
	res, err := RunDevices(cfg, devs)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&sb, "%d %d %v", res.Slots, res.Events, res.Energy)
	return sb.String()
}

// contendProc is the canonical contention step machine: each slot, draw
// one random and transmit with probability 1/4, otherwise listen.
type contendProc struct {
	slots uint64
	s     uint64
}

func (p *contendProc) Step(ch Channel, fb Feedback) Action {
	p.s++
	if p.s > p.slots {
		return Halt()
	}
	if ch.Rand().Uint64()&3 == 0 {
		return Transmit(p.s, ch.Index())
	}
	return Listen(p.s)
}

func contendingProcs(n int, slots uint64) []Device {
	devs := make([]Device, n)
	for v := 0; v < n; v++ {
		devs[v].Proc = &contendProc{slots: slots}
	}
	return devs
}

// TestProcTraceDeterministic pins the determinism contract: the same
// population on the same seed yields the byte-identical event stream and
// measurements, run over run and on every model.
func TestProcTraceDeterministic(t *testing.T) {
	g := graph.GNP(16, 0.3, 9)
	for _, model := range []Model{NoCD, CD, CDStar, Local} {
		for seed := uint64(1); seed <= 4; seed++ {
			cfg := Config{Graph: g, Model: model, Seed: seed}
			first := traceDevices(t, cfg, contendingProcs(16, 20))
			second := traceDevices(t, cfg, contendingProcs(16, 20))
			if first != second {
				t.Fatalf("model %v seed %d: trace differs run over run", model, seed)
			}
		}
	}
}

// TestProcSimulatorReuse checks RunDevices on a recycled Simulator:
// fresh procs per run, identical results run over run.
func TestProcSimulatorReuse(t *testing.T) {
	g := graph.Clique(8)
	sim, err := NewSimulator(g, Config{Graph: g, Model: CD})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := sim.RunDevices(3, contendingProcs(8, 20))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sim.RunDevices(3, contendingProcs(8, 20))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Events != r2.Events || r1.Slots != r2.Slots || r1.MaxEnergy() != r2.MaxEnergy() {
		t.Fatalf("same seed differs across reuses: %+v vs %+v", r1, r2)
	}
	fresh, err := RunDevices(Config{Graph: g, Model: CD, Seed: 3}, contendingProcs(8, 20))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Events != fresh.Events || r1.Slots != fresh.Slots {
		t.Fatalf("recycled simulator diverges from fresh: %+v vs %+v", r1, fresh)
	}
}

// sleepyProc interleaves sleeps with actions; the scheduler must treat
// sleeps as free clock moves, including a redundant (non-advancing) one.
type sleepyProc struct{ phase int }

func (p *sleepyProc) Step(ch Channel, fb Feedback) Action {
	p.phase++
	switch p.phase {
	case 1:
		return Sleep(5)
	case 2:
		return Transmit(6, "x")
	case 3:
		return Sleep(6) // non-advancing: a no-op, not an error
	case 4:
		return Listen(9)
	default:
		return Halt()
	}
}

func TestProcSleepSemantics(t *testing.T) {
	g := graph.Path(2)
	res, err := RunDevices(Config{Graph: g, Model: NoCD, Seed: 1},
		[]Device{{Proc: &sleepyProc{}}, {Proc: &sleepyProc{}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Slots != 9 {
		t.Fatalf("slots = %d, want 9", res.Slots)
	}
	for v, e := range res.Energy {
		if e != 2 {
			t.Fatalf("device %d energy = %d, want 2 (sleeps are free)", v, e)
		}
	}
}

// TestProcErrorPaths covers the halt protocol: zero Action halts, a
// panic inside Step surfaces as the run error, a non-future slot is a
// contract violation, and the simulator stays reusable after each.
func TestProcErrorPaths(t *testing.T) {
	g := graph.Path(3)
	sim, err := NewSimulator(g, Config{Graph: g, Model: NoCD})
	if err != nil {
		t.Fatal(err)
	}
	// Zero Action = halt: the run ends immediately with no events.
	res, err := sim.RunDevices(1, Procs([]Proc{
		ProcFunc(func(ch Channel, fb Feedback) Action { return Action{} }),
		ProcFunc(func(ch Channel, fb Feedback) Action { return Action{} }),
		ProcFunc(func(ch Channel, fb Feedback) Action { return Action{} }),
	}))
	if err != nil || res.Events != 0 {
		t.Fatalf("zero-action run: res=%+v err=%v", res, err)
	}
	// Panic inside Step becomes the run error; other devices finish.
	_, err = sim.RunDevices(2, Procs([]Proc{
		ProcFunc(func(ch Channel, fb Feedback) Action { panic("step boom") }),
		&contendProc{slots: 4},
		&contendProc{slots: 4},
	}))
	if err == nil || !strings.Contains(err.Error(), "step boom") {
		t.Fatalf("want step panic surfaced, got %v", err)
	}
	// Scheduling a non-future slot is a device error, not a hang.
	_, err = sim.RunDevices(3, Procs([]Proc{
		ProcFunc(func(ch Channel, fb Feedback) Action { return Transmit(0, nil) }),
		&contendProc{slots: 2},
		&contendProc{slots: 2},
	}))
	if err == nil || !strings.Contains(err.Error(), "clock") {
		t.Fatalf("want slot-ordering violation, got %v", err)
	}
	// A proc spinning on non-advancing sleeps is halted with an error,
	// not allowed to wedge the scheduler.
	_, err = sim.RunDevices(4, Procs([]Proc{
		ProcFunc(func(ch Channel, fb Feedback) Action { return Sleep(1) }),
		&contendProc{slots: 2},
		&contendProc{slots: 2},
	}))
	if err == nil || !strings.Contains(err.Error(), "without a channel action") {
		t.Fatalf("want sleep-spin backstop, got %v", err)
	}
	// And the recycled engine still matches a fresh one.
	r1, err := sim.RunDevices(6, contendingProcs(3, 6))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunDevices(Config{Graph: g, Model: NoCD, Seed: 6}, contendingProcs(3, 6))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Events != r2.Events || r1.Slots != r2.Slots {
		t.Fatalf("post-error reuse diverges: %+v vs %+v", r1, r2)
	}
}

// TestProcBudgetAbort checks that budget exhaustion surfaces ErrBudget
// and leaves the engine reusable.
func TestProcBudgetAbort(t *testing.T) {
	g := graph.Path(4)
	everyFive := func() Proc {
		var s uint64
		return ProcFunc(func(ch Channel, fb Feedback) Action {
			s += 5
			return Transmit(s, nil)
		})
	}
	cfg := Config{Graph: g, Model: NoCD, Seed: 1, MaxSlots: 12}
	_, err := RunDevices(cfg, []Device{
		{Proc: everyFive()}, {Proc: everyFive()}, {Proc: everyFive()}, {Proc: everyFive()},
	})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
	if _, err := RunDevices(Config{Graph: g, Model: NoCD, Seed: 1}, contendingProcs(4, 6)); err != nil {
		t.Fatalf("engine unusable after budget abort: %v", err)
	}
}

// TestContProcChain exercises the continuation machinery: lazy init,
// feedback threading, and nil-continuation halt.
func TestContProcChain(t *testing.T) {
	g := graph.Path(2)
	heard := -1
	listener := ContProc(func(ch Channel) Cont {
		var await Cont
		await = func(ch Channel, fb Feedback) (Action, Cont) {
			if fb.Status == Received {
				heard = fb.Payload.(int)
				return Halt(), nil
			}
			return Listen(ch.Now() + 1), await
		}
		return func(ch Channel, fb Feedback) (Action, Cont) {
			return Listen(1), await
		}
	})
	talker := ContProc(func(ch Channel) Cont {
		return func(ch Channel, fb Feedback) (Action, Cont) {
			return Transmit(3, 42), nil
		}
	})
	res, err := RunDevices(Config{Graph: g, Model: NoCD, Seed: 1},
		[]Device{{Proc: listener}, {Proc: talker}})
	if err != nil {
		t.Fatal(err)
	}
	if heard != 42 {
		t.Fatalf("continuation listener heard %d, want 42", heard)
	}
	if res.Energy[0] != 3 || res.Energy[1] != 1 {
		t.Fatalf("energy = %v, want [3 1]", res.Energy)
	}
}

// TestBoxIntInterning pins the non-constant-payload fix: inside a proc,
// BoxInt returns the identical boxed value on repeat calls (no per-call
// allocation), delivery still carries the right integers, and outside
// the engine context it degrades to plain boxing.
func TestBoxIntInterning(t *testing.T) {
	g := graph.Path(2)
	var first, second any
	speaker := ProcFunc(func(ch Channel, fb Feedback) Action {
		switch ch.Now() {
		case 0:
			first = BoxInt(ch, 4242)
			return Transmit(1, first)
		case 1:
			second = BoxInt(ch, 4242)
			return Transmit(2, second)
		default:
			return Halt()
		}
	})
	var got []any
	listener := ProcFunc(func(ch Channel, fb Feedback) Action {
		if fb.Status == Received {
			got = append(got, fb.Payload)
		}
		if ch.Now() >= 2 {
			return Halt()
		}
		return Listen(ch.Now() + 1)
	})
	if _, err := RunDevices(Config{Graph: g, Model: NoCD, Seed: 1},
		[]Device{{Proc: speaker}, {Proc: listener}}); err != nil {
		t.Fatal(err)
	}
	if first == nil || first != second {
		t.Fatalf("BoxInt did not intern: %v vs %v", first, second)
	}
	if len(got) != 2 || got[0].(int) != 4242 || got[1].(int) != 4242 {
		t.Fatalf("delivered payloads = %v", got)
	}
	// Out-of-range and engine-external calls still box correctly.
	if v := BoxInt(nil, -3); v.(int) != -3 {
		t.Fatalf("fallback boxing = %v", v)
	}
	if v := BoxInt(nil, internCap+1); v.(int) != internCap+1 {
		t.Fatalf("fallback boxing = %v", v)
	}
}
