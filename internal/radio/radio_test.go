package radio

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/graph"
)

// idle returns a program that does nothing.
func idle() Program { return func(e *Env) {} }

// fill pads programs with idlers up to n.
func fill(n int, m map[int]Program) []Program {
	ps := make([]Program, n)
	for i := range ps {
		if p, ok := m[i]; ok {
			ps[i] = p
		} else {
			ps[i] = idle()
		}
	}
	return ps
}

func TestSingleDelivery(t *testing.T) {
	for _, model := range []Model{NoCD, CD, CDStar, Local} {
		g := graph.Path(2)
		var got Feedback
		res, err := Run(Config{Graph: g, Model: model}, fill(2, map[int]Program{
			0: func(e *Env) { e.Transmit(1, "hello") },
			1: func(e *Env) { got = e.Listen(1) },
		}))
		if err != nil {
			t.Fatalf("%v: %v", model, err)
		}
		if got.Status != Received || got.Payload != "hello" {
			t.Errorf("%v: feedback = %+v", model, got)
		}
		if res.Slots != 1 {
			t.Errorf("%v: slots = %d", model, res.Slots)
		}
		if res.Energy[0] != 1 || res.Energy[1] != 1 {
			t.Errorf("%v: energy = %v", model, res.Energy)
		}
		if res.Transmits[0] != 1 || res.Listens[1] != 1 {
			t.Errorf("%v: transmit/listen counts wrong", model)
		}
	}
}

func TestCollisionSemantics(t *testing.T) {
	// Star: 0 is the listener center; 1 and 2 transmit simultaneously.
	cases := []struct {
		model      Model
		wantStatus Status
	}{
		{NoCD, Silence},
		{CD, Noise},
		{CDStar, Received},
		{Local, Received},
	}
	for _, c := range cases {
		g := graph.Star(3)
		var got Feedback
		_, err := Run(Config{Graph: g, Model: c.model}, fill(3, map[int]Program{
			0: func(e *Env) { got = e.Listen(1) },
			1: func(e *Env) { e.Transmit(1, "from1") },
			2: func(e *Env) { e.Transmit(1, "from2") },
		}))
		if err != nil {
			t.Fatalf("%v: %v", c.model, err)
		}
		if got.Status != c.wantStatus {
			t.Errorf("%v: status = %v, want %v", c.model, got.Status, c.wantStatus)
		}
		if c.model == CDStar && got.Payload != "from1" {
			t.Errorf("CDStar should deliver lowest-index transmitter, got %v", got.Payload)
		}
		if c.model == Local {
			if len(got.Payloads) != 2 || got.Payloads[0] != "from1" || got.Payloads[1] != "from2" {
				t.Errorf("Local payloads = %v", got.Payloads)
			}
		}
	}
}

func TestSilenceWhenNobodyTransmits(t *testing.T) {
	for _, model := range []Model{NoCD, CD, CDStar, Local} {
		g := graph.Path(2)
		var got Feedback
		_, err := Run(Config{Graph: g, Model: model}, fill(2, map[int]Program{
			1: func(e *Env) { got = e.Listen(5) },
		}))
		if err != nil {
			t.Fatalf("%v: %v", model, err)
		}
		if got.Status != Silence {
			t.Errorf("%v: status = %v, want silence", model, got.Status)
		}
	}
}

func TestNonNeighborNotHeard(t *testing.T) {
	// Path 0-1-2: 0 transmits, 2 listens; they are not adjacent.
	g := graph.Path(3)
	var got Feedback
	_, err := Run(Config{Graph: g, Model: Local}, fill(3, map[int]Program{
		0: func(e *Env) { e.Transmit(1, "x") },
		2: func(e *Env) { got = e.Listen(1) },
	}))
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != Silence {
		t.Errorf("non-neighbor heard a message: %+v", got)
	}
}

func TestTransmissionIsSlotLocal(t *testing.T) {
	// A listener in slot 2 must not hear a slot-1 transmission.
	g := graph.Path(2)
	var got Feedback
	_, err := Run(Config{Graph: g, Model: Local}, fill(2, map[int]Program{
		0: func(e *Env) { e.Transmit(1, "x") },
		1: func(e *Env) { got = e.Listen(2) },
	}))
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != Silence {
		t.Errorf("stale transmission heard: %+v", got)
	}
}

func TestFullDuplex(t *testing.T) {
	// Two adjacent devices both TransmitListen: each hears the other.
	g := graph.Path(2)
	var fb [2]Feedback
	res, err := Run(Config{Graph: g, Model: Local}, []Program{
		func(e *Env) { fb[0] = e.TransmitListen(1, "a") },
		func(e *Env) { fb[1] = e.TransmitListen(1, "b") },
	})
	if err != nil {
		t.Fatal(err)
	}
	if fb[0].Status != Received || fb[0].Payload != "b" {
		t.Errorf("device 0 heard %+v", fb[0])
	}
	if fb[1].Status != Received || fb[1].Payload != "a" {
		t.Errorf("device 1 heard %+v", fb[1])
	}
	// Awake-slot semantics: one slot awake costs 1, even full duplex; the
	// per-action split counters still see one transmit and one listen.
	if res.Energy[0] != 1 || res.Energy[1] != 1 {
		t.Errorf("full duplex should cost 1 awake slot: %v", res.Energy)
	}
	if res.Transmits[0] != 1 || res.Listens[0] != 1 || res.Transmits[1] != 1 || res.Listens[1] != 1 {
		t.Errorf("full duplex split counters wrong: tx=%v listen=%v", res.Transmits, res.Listens)
	}
}

func TestIdleSlotsAreSkipped(t *testing.T) {
	// A device acting at slot 1e9 must not cost 1e9 wall iterations.
	g := graph.Path(1)
	res, err := Run(Config{Graph: g, Model: NoCD}, []Program{
		func(e *Env) { e.Transmit(1_000_000_000, "late") },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Slots != 1_000_000_000 {
		t.Errorf("slots = %d", res.Slots)
	}
	if res.Events != 1 {
		t.Errorf("events = %d", res.Events)
	}
}

func TestMaxSlotsBudget(t *testing.T) {
	g := graph.Path(1)
	_, err := Run(Config{Graph: g, Model: NoCD, MaxSlots: 10}, []Program{
		func(e *Env) { e.Transmit(11, "x") },
	})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
}

func TestMaxEventsBudget(t *testing.T) {
	g := graph.Path(1)
	_, err := Run(Config{Graph: g, Model: NoCD, MaxEvents: 5}, []Program{
		func(e *Env) {
			for i := uint64(1); ; i++ {
				e.Transmit(i, "x")
			}
		},
	})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
}

func TestDevicePanicSurfaces(t *testing.T) {
	g := graph.Path(2)
	_, err := Run(Config{Graph: g, Model: NoCD}, fill(2, map[int]Program{
		0: func(e *Env) { panic("boom") },
	}))
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("want device panic error, got %v", err)
	}
}

func TestSchedulingInPastPanicsDeterministically(t *testing.T) {
	g := graph.Path(1)
	_, err := Run(Config{Graph: g, Model: NoCD}, []Program{
		func(e *Env) {
			e.Transmit(5, "x")
			e.Transmit(3, "y") // in the past: protocol bug
		},
	})
	if err == nil || !strings.Contains(err.Error(), "clock") {
		t.Fatalf("want clock error, got %v", err)
	}
}

func TestExitTerminatesDeviceCleanly(t *testing.T) {
	g := graph.Path(2)
	res, err := Run(Config{Graph: g, Model: NoCD}, fill(2, map[int]Program{
		0: func(e *Env) {
			e.Transmit(1, "x")
			e.Exit()
			// unreachable:
			e.Transmit(2, "y")
		},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Transmits[0] != 1 {
		t.Errorf("Exit did not stop the device: %d transmits", res.Transmits[0])
	}
}

func TestDeterministicForFixedSeed(t *testing.T) {
	run := func() (*Result, []int) {
		g := graph.Clique(8)
		heard := make([]int, 8)
		programs := make([]Program, 8)
		for i := 0; i < 8; i++ {
			programs[i] = func(e *Env) {
				for round := uint64(1); round <= 50; round++ {
					if e.Rand().Float64() < 0.3 {
						e.Transmit(round, e.Index())
					} else {
						if fb := e.Listen(round); fb.Status == Received {
							heard[e.Index()]++
						}
					}
				}
			}
		}
		res, err := Run(Config{Graph: g, Model: CD, Seed: 42}, programs)
		if err != nil {
			t.Fatal(err)
		}
		return res, heard
	}
	r1, h1 := run()
	r2, h2 := run()
	if r1.Slots != r2.Slots || r1.Events != r2.Events {
		t.Fatal("runs differ in slots/events")
	}
	for i := range h1 {
		if h1[i] != h2[i] || r1.Energy[i] != r2.Energy[i] {
			t.Fatalf("device %d differs across identical runs", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	run := func(seed uint64) uint64 {
		g := graph.Clique(8)
		programs := make([]Program, 8)
		var mu sync.Mutex
		total := uint64(0)
		for i := 0; i < 8; i++ {
			programs[i] = func(e *Env) {
				for round := uint64(1); round <= 30; round++ {
					if e.Rand().Float64() < 0.5 {
						e.Transmit(round, 0)
						mu.Lock()
						total += round
						mu.Unlock()
					}
				}
			}
		}
		if _, err := Run(Config{Graph: g, Model: CD, Seed: seed}, programs); err != nil {
			t.Fatal(err)
		}
		return total
	}
	if run(1) == run(2) && run(3) == run(4) {
		t.Fatal("different seeds produced identical transmission patterns twice")
	}
}

func TestIDAssignment(t *testing.T) {
	g := graph.Path(3)
	got := make([]int, 3)
	ps := make([]Program, 3)
	for i := range ps {
		ps[i] = func(e *Env) { got[e.Index()] = e.AssignedID() }
	}
	if _, err := Run(Config{Graph: g, Model: CD, IDSpace: 10}, ps); err != nil {
		t.Fatal(err)
	}
	for i, id := range got {
		if id != i+1 {
			t.Errorf("default ID of %d = %d", i, id)
		}
	}
	// Explicit IDs.
	ps2 := make([]Program, 3)
	got2 := make([]int, 3)
	for i := range ps2 {
		ps2[i] = func(e *Env) { got2[e.Index()] = e.AssignedID() }
	}
	if _, err := Run(Config{Graph: g, Model: CD, IDSpace: 10, IDs: []int{7, 3, 9}}, ps2); err != nil {
		t.Fatal(err)
	}
	if got2[0] != 7 || got2[1] != 3 || got2[2] != 9 {
		t.Errorf("explicit IDs = %v", got2)
	}
}

func TestIDValidation(t *testing.T) {
	g := graph.Path(2)
	ps := fill(2, nil)
	if _, err := Run(Config{Graph: g, Model: CD, IDSpace: 5, IDs: []int{1, 1}}, ps); err == nil {
		t.Error("duplicate IDs accepted")
	}
	if _, err := Run(Config{Graph: g, Model: CD, IDSpace: 5, IDs: []int{0, 1}}, ps); err == nil {
		t.Error("ID below 1 accepted")
	}
	if _, err := Run(Config{Graph: g, Model: CD, IDSpace: 1}, ps); err == nil {
		t.Error("IDSpace < n accepted")
	}
	if _, err := Run(Config{Graph: g, Model: CD, IDSpace: 5, IDs: []int{1}}, ps); err == nil {
		t.Error("short IDs slice accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{Graph: nil, Model: NoCD}, nil); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := Run(Config{Graph: graph.New(0), Model: NoCD}, nil); err == nil {
		t.Error("empty graph accepted")
	}
	if _, err := Run(Config{Graph: graph.Path(3), Model: NoCD}, fill(2, nil)); err == nil {
		t.Error("program count mismatch accepted")
	}
}

func TestDiameterExposure(t *testing.T) {
	g := graph.Path(5)
	var d int
	var known bool
	ps := fill(5, map[int]Program{0: func(e *Env) { d, known = e.Diameter() }})
	if _, err := Run(Config{Graph: g, Model: NoCD}, ps); err != nil {
		t.Fatal(err)
	}
	if known {
		t.Error("diameter known without KnowDiameter")
	}
	ps = fill(5, map[int]Program{0: func(e *Env) { d, known = e.Diameter() }})
	if _, err := Run(Config{Graph: g, Model: NoCD, KnowDiameter: true}, ps); err != nil {
		t.Fatal(err)
	}
	if !known || d != 4 {
		t.Errorf("diameter = %d, known = %v", d, known)
	}
}

func TestEnvAccessors(t *testing.T) {
	g := graph.Star(4)
	var n, maxDeg, idx int
	var model Model
	ps := fill(4, map[int]Program{2: func(e *Env) {
		n, maxDeg, idx, model = e.N(), e.MaxDegree(), e.Index(), e.Model()
	}})
	if _, err := Run(Config{Graph: g, Model: CDStar}, ps); err != nil {
		t.Fatal(err)
	}
	if n != 4 || maxDeg != 3 || idx != 2 || model != CDStar {
		t.Errorf("accessors: n=%d maxDeg=%d idx=%d model=%v", n, maxDeg, idx, model)
	}
}

func TestSleepUntilAndNow(t *testing.T) {
	g := graph.Path(1)
	_, err := Run(Config{Graph: g, Model: NoCD}, []Program{func(e *Env) {
		e.SleepUntil(100)
		if e.Now() != 100 {
			t.Errorf("Now = %d after SleepUntil(100)", e.Now())
		}
		e.SleepUntil(50) // must not go backwards
		if e.Now() != 100 {
			t.Errorf("SleepUntil went backwards to %d", e.Now())
		}
		e.Transmit(101, "x")
		if e.Now() != 101 {
			t.Errorf("Now = %d after Transmit(101)", e.Now())
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTraceEvents(t *testing.T) {
	g := graph.Path(2)
	var events []Event
	cfg := Config{Graph: g, Model: CD, Trace: func(ev Event) { events = append(events, ev) }}
	_, err := Run(cfg, fill(2, map[int]Program{
		0: func(e *Env) { e.Transmit(1, "m") },
		1: func(e *Env) { e.Listen(1); e.Listen(2) },
	}))
	if err != nil {
		t.Fatal(err)
	}
	var kinds []EventKind
	for _, ev := range events {
		kinds = append(kinds, ev.Kind)
	}
	wantTx, wantRx, wantSil := 0, 0, 0
	for _, k := range kinds {
		switch k {
		case EventTransmit:
			wantTx++
		case EventReceive:
			wantRx++
		case EventSilence:
			wantSil++
		}
	}
	if wantTx != 1 || wantRx != 1 || wantSil != 1 {
		t.Errorf("trace events = %v", kinds)
	}
	for _, ev := range events {
		if ev.Kind == EventReceive && ev.From != 0 {
			t.Errorf("receive event From = %d", ev.From)
		}
	}
}

func TestConvenienceNextHelpers(t *testing.T) {
	g := graph.Path(2)
	var fb Feedback
	_, err := Run(Config{Graph: g, Model: NoCD}, fill(2, map[int]Program{
		0: func(e *Env) {
			e.SleepUntil(4)
			e.TransmitNext("n") // slot 5
		},
		1: func(e *Env) {
			e.SleepUntil(4)
			fb = e.ListenNext() // slot 5
		},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if fb.Status != Received || fb.Payload != "n" {
		t.Errorf("next helpers misaligned: %+v", fb)
	}
}

func TestResultAggregates(t *testing.T) {
	r := &Result{Energy: []int{3, 0, 5, 2}}
	if r.MaxEnergy() != 5 {
		t.Errorf("MaxEnergy = %d", r.MaxEnergy())
	}
	if r.TotalEnergy() != 10 {
		t.Errorf("TotalEnergy = %d", r.TotalEnergy())
	}
}

func TestModelAndStatusStrings(t *testing.T) {
	if NoCD.String() != "No-CD" || CD.String() != "CD" || CDStar.String() != "CD*" || Local.String() != "LOCAL" {
		t.Error("model names wrong")
	}
	if Model(99).String() == "" || Status(99).String() == "" {
		t.Error("unknown enum should still stringify")
	}
	if Silence.String() != "silence" || Received.String() != "received" || Noise.String() != "noise" {
		t.Error("status names wrong")
	}
}

func TestManyDevicesLockstep(t *testing.T) {
	// n devices each transmit in their own slot; a hub listens to each.
	// Verifies cohort release ordering over many slots.
	const n = 64
	g := graph.Star(n + 1)
	heard := 0
	ps := make([]Program, n+1)
	ps[0] = func(e *Env) {
		for s := uint64(1); s <= n; s++ {
			if fb := e.Listen(s); fb.Status == Received {
				heard++
			}
		}
	}
	for i := 1; i <= n; i++ {
		ps[i] = func(e *Env) { e.Transmit(uint64(e.Index()), e.Index()) }
	}
	res, err := Run(Config{Graph: g, Model: CD}, ps)
	if err != nil {
		t.Fatal(err)
	}
	if heard != n {
		t.Errorf("hub heard %d of %d", heard, n)
	}
	if res.Slots != n {
		t.Errorf("slots = %d", res.Slots)
	}
}
